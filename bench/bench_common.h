// Shared fixtures for the benchmark binaries: one generated graph per
// process, built lazily at first use.

#ifndef SNB_BENCH_BENCH_COMMON_H_
#define SNB_BENCH_BENCH_COMMON_H_

#include <cstdint>

#include "datagen/datagen.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

namespace snb::bench {

struct BenchData {
  storage::Graph graph;
  std::vector<datagen::UpdateEvent> updates;
  params::WorkloadParameters params;
};

/// Graph of `persons` persons (activity scale 0.6), memoized per size.
inline BenchData& DataFor(uint64_t persons) {
  static std::map<uint64_t, BenchData*>* cache =
      new std::map<uint64_t, BenchData*>();
  BenchData*& slot = (*cache)[persons];
  if (slot == nullptr) {
    datagen::DatagenConfig cfg;
    cfg.num_persons = persons;
    cfg.activity_scale = 0.6;
    datagen::GeneratedData generated = datagen::Generate(cfg);
    slot = new BenchData{storage::Graph(std::move(generated.network)),
                         std::move(generated.updates),
                         {}};
    params::CurationConfig pc;
    pc.per_query = 10;
    slot->params = params::CurateParameters(slot->graph, pc);
  }
  return *slot;
}

}  // namespace snb::bench

#endif  // SNB_BENCH_BENCH_COMMON_H_

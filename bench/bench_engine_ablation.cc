// Ablation benchmarks for the design decisions called out in DESIGN.md
// (experiment id ABL):
//   * top-k pushdown (CP-1.3) vs sort-everything,
//   * CSR adjacency BFS vs edge-list rescanning (CP-3.2/3.3),
//   * precomputed thread roots vs replyOf* chasing (CP-7.2/7.3).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "engine/bfs.h"
#include "engine/top_k.h"
#include "util/rng.h"

namespace snb::bench {
namespace {

constexpr uint64_t kPersons = 800;

// ---- Top-k pushdown vs full sort -------------------------------------------

std::vector<int64_t> MakeValues(size_t n) {
  util::Rng rng(7, n);
  std::vector<int64_t> values(n);
  for (int64_t& v : values) v = rng.UniformInt(0, 1 << 30);
  return values;
}

void BM_TopK_Heap(benchmark::State& state) {
  std::vector<int64_t> values = MakeValues(static_cast<size_t>(state.range(0)));
  auto less = [](int64_t a, int64_t b) { return a < b; };
  for (auto _ : state) {
    engine::TopK<int64_t, decltype(less)> top(100, less);
    for (int64_t v : values) top.Add(v);
    benchmark::DoNotOptimize(top.Take());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TopK_Heap)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_TopK_FullSort(benchmark::State& state) {
  std::vector<int64_t> values = MakeValues(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<int64_t> copy = values;
    std::sort(copy.begin(), copy.end());
    copy.resize(std::min<size_t>(copy.size(), 100));
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TopK_FullSort)->Arg(10000)->Arg(100000)->Arg(1000000);

// ---- CSR BFS vs edge-list BFS ----------------------------------------------

void BM_Bfs_Csr(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  uint32_t src = 0;
  for (auto _ : state) {
    auto dist = engine::BfsDistances(data.graph.Knows(), src, 3);
    benchmark::DoNotOptimize(dist);
    src = (src + 17) % static_cast<uint32_t>(data.graph.NumPersons());
  }
}
BENCHMARK(BM_Bfs_Csr);

void BM_Bfs_EdgeListRescan(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  // Materialize the undirected edge list once (the "table" a naive engine
  // scans per BFS level).
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t a = 0; a < data.graph.NumPersons(); ++a) {
    data.graph.Knows().ForEach(a, [&](uint32_t b) {
      if (a < b) edges.emplace_back(a, b);
    });
  }
  uint32_t src = 0;
  for (auto _ : state) {
    std::vector<int32_t> dist(data.graph.NumPersons(), -1);
    dist[src] = 0;
    for (int32_t depth = 1; depth <= 3; ++depth) {
      bool changed = false;
      for (const auto& [a, b] : edges) {
        if (dist[a] == depth - 1 && dist[b] < 0) {
          dist[b] = depth;
          changed = true;
        }
        if (dist[b] == depth - 1 && dist[a] < 0) {
          dist[a] = depth;
          changed = true;
        }
      }
      if (!changed) break;
    }
    benchmark::DoNotOptimize(dist);
    src = (src + 17) % static_cast<uint32_t>(data.graph.NumPersons());
  }
}
BENCHMARK(BM_Bfs_EdgeListRescan);

// ---- Thread roots: precomputed column vs replyOf* chase ----------------------

void BM_ThreadRoot_Precomputed(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  for (auto _ : state) {
    uint64_t acc = 0;
    for (uint32_t c = 0; c < data.graph.NumComments(); ++c) {
      acc += data.graph.CommentRootPost(c);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.graph.NumComments()));
}
BENCHMARK(BM_ThreadRoot_Precomputed);

void BM_ThreadRoot_Chase(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  for (auto _ : state) {
    uint64_t acc = 0;
    for (uint32_t c = 0; c < data.graph.NumComments(); ++c) {
      uint32_t msg = data.graph.CommentReplyOf(c);
      while (!storage::Graph::IsPost(msg)) {
        msg = data.graph.CommentReplyOf(storage::Graph::AsComment(msg));
      }
      acc += storage::Graph::AsPost(msg);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.graph.NumComments()));
}
BENCHMARK(BM_ThreadRoot_Chase);

// ---- Reverse index vs scan (tag → messages) ----------------------------------

void BM_TagMessages_ReverseIndex(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  uint32_t tag = 0;
  for (auto _ : state) {
    int64_t count = 0;
    data.graph.TagPosts().ForEach(tag, [&](uint32_t) { ++count; });
    data.graph.TagComments().ForEach(tag, [&](uint32_t) { ++count; });
    benchmark::DoNotOptimize(count);
    tag = (tag + 1) % static_cast<uint32_t>(data.graph.NumTags());
  }
}
BENCHMARK(BM_TagMessages_ReverseIndex);

void BM_TagMessages_FullScan(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  uint32_t tag = 0;
  for (auto _ : state) {
    int64_t count = 0;
    data.graph.ForEachMessage([&](uint32_t msg) {
      data.graph.ForEachMessageTag(msg, [&](uint32_t t) {
        if (t == tag) ++count;
      });
    });
    benchmark::DoNotOptimize(count);
    tag = (tag + 1) % static_cast<uint32_t>(data.graph.NumTags());
  }
}
BENCHMARK(BM_TagMessages_FullScan);

}  // namespace
}  // namespace snb::bench

BENCHMARK_MAIN();

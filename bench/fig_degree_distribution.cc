// Reproduces the "Facebook-like degree distribution" of spec §2.3.3.2
// (experiment id F2.2deg): prints the knows-degree histogram in log2
// buckets as an ASCII figure, plus the mean-degree densification law
// across network sizes.

#include <cinttypes>
#include <cstdio>

#include "datagen/datagen.h"
#include "datagen/person_generator.h"
#include "datagen/statistics.h"

int main() {
  using namespace snb;  // NOLINT

  datagen::DatagenConfig cfg;
  cfg.num_persons = 2000;
  cfg.update_fraction = 1e-9;
  datagen::GeneratedData data = datagen::Generate(cfg);
  datagen::DatasetStatistics s = datagen::ComputeStatistics(data.network);

  std::printf("Knows-degree distribution at %zu persons "
              "(avg %.1f, max %u)\n\n",
              s.num_persons, s.avg_degree, s.max_degree);
  size_t peak = 1;
  for (size_t c : s.degree_histogram_log2) peak = std::max(peak, c);
  for (size_t b = 0; b < s.degree_histogram_log2.size(); ++b) {
    size_t lo = size_t{1} << b;
    size_t hi = (size_t{1} << (b + 1)) - 1;
    size_t count = s.degree_histogram_log2[b];
    int bar = static_cast<int>(60.0 * static_cast<double>(count) /
                               static_cast<double>(peak));
    std::printf("deg %5zu–%-5zu %6zu |", lo, hi, count);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }

  std::printf("\nDensification law (mean degree ~ n^(0.512 - 0.028 log10 n),"
              " Ugander et al.):\n");
  std::printf("%10s %12s %12s\n", "persons", "law", "measured");
  for (uint64_t n : {500, 1000, 2000, 4000}) {
    datagen::DatagenConfig c;
    c.num_persons = n;
    c.update_fraction = 1e-9;
    c.activity_scale = 0.1;  // knows graph only matters here
    datagen::GeneratedData d = datagen::Generate(c);
    double measured = 2.0 * static_cast<double>(d.network.knows.size()) /
                      static_cast<double>(n);
    std::printf("%10" PRIu64 " %12.1f %12.1f\n", n,
                datagen::MeanDegreeForNetworkSize(n), measured);
  }
  std::printf("\n(The measured mean sits below the law's target because "
              "window saturation\nand late joiners cap edge budgets; the "
              "heavy tail and densification trend\nare the reproduced "
              "properties.)\n");
  return 0;
}

// Reproduces spec Table A.1 (choke-point coverage matrix): which read
// queries cover which choke points (experiment id TA.1).

#include <cstdio>
#include <string>

#include "core/choke_points.h"

int main() {
  using namespace snb::core;  // NOLINT

  std::printf("Table A.1 — coverage of choke points by queries\n\n");

  // Matrix: rows = queries, columns = choke points.
  std::printf("%-7s", "");
  for (const ChokePointInfo& cp : AllChokePoints()) {
    std::printf("%d.%d ", cp.id.group, cp.id.item);
  }
  std::printf("\n");

  size_t total_marks = 0;
  for (const QueryChokePoints& q : AllQueryChokePoints()) {
    std::printf("%-7s", QueryName(q.workload, q.number).c_str());
    for (const ChokePointInfo& cp : AllChokePoints()) {
      bool covered = false;
      for (const ChokePointId& id : q.choke_points) {
        if (id == cp.id) covered = true;
      }
      total_marks += covered ? 1 : 0;
      // Column widths track the "g.i " headers (3 + 1 chars).
      std::printf("%-4s", covered ? " x" : " .");
    }
    std::printf("\n");
  }

  std::printf("\nPer choke point (area, title, #covering queries):\n");
  for (const ChokePointInfo& cp : AllChokePoints()) {
    std::printf("CP-%d.%d [%s] %-55s %2zu queries\n", cp.id.group, cp.id.item,
                cp.area.c_str(), cp.title.c_str(),
                QueriesCovering(cp.id).size());
  }
  std::printf("\nTotal coverage marks: %zu across %zu queries and %zu choke"
              " points\n",
              total_marks, AllQueryChokePoints().size(),
              AllChokePoints().size());
  return 0;
}

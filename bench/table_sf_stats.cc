// Reproduces spec Table 2.12 (scale factor statistics): runs Datagen at the
// micro scale factors, reports measured persons / nodes / edges, and
// compares the nodes-per-person and edges-per-node shape against the
// paper's reference rows (experiment id T2.12 in DESIGN.md; results
// recorded in EXPERIMENTS.md).

#include <cinttypes>
#include <cstdio>

#include "core/scale_factors.h"
#include "datagen/datagen.h"
#include "datagen/statistics.h"

int main() {
  using namespace snb;  // NOLINT

  std::printf("Table 2.12 reproduction — dataset metrics per scale factor\n");
  std::printf(
      "%-8s %10s %12s %12s %10s %10s\n", "SF", "persons", "nodes", "edges",
      "nodes/p", "edges/n");
  std::printf("measured (micro SFs, activity_scale=1.0):\n");

  for (const char* sf : {"0.001", "0.003", "0.01", "0.03"}) {
    auto info = core::FindScaleFactor(sf);
    if (!info.has_value()) continue;
    datagen::DatagenConfig cfg;
    cfg.num_persons = info->num_persons;
    cfg.update_fraction = 1e-9;  // whole network, as Table 2.12 counts it
    datagen::GeneratedData data = datagen::Generate(cfg);
    datagen::DatasetStatistics s = datagen::ComputeStatistics(data.network);
    std::printf("%-8s %10zu %12zu %12zu %10.1f %10.2f\n", sf, s.num_persons,
                s.num_nodes, s.num_edges,
                static_cast<double>(s.num_nodes) /
                    static_cast<double>(s.num_persons),
                static_cast<double>(s.num_edges) /
                    static_cast<double>(s.num_nodes));
  }

  std::printf("\npaper reference rows (spec Table 2.12):\n");
  for (const core::ScaleFactorInfo& info : core::AllScaleFactors()) {
    if (info.paper_nodes == 0) continue;
    std::printf("%-8s %10" PRIu64 " %12" PRIu64 " %12" PRIu64
                " %10.1f %10.2f\n",
                info.name.c_str(), info.num_persons, info.paper_nodes,
                info.paper_edges,
                static_cast<double>(info.paper_nodes) /
                    static_cast<double>(info.num_persons),
                static_cast<double>(info.paper_edges) /
                    static_cast<double>(info.paper_nodes));
  }
  std::printf(
      "\nShape check: paper nodes/person grows from ~218 (SF0.1) to ~750\n"
      "(SF1000) with edges/node ~4.5–6.3; the measured micro rows should\n"
      "show the same densification trend at smaller absolute volume.\n");
  return 0;
}

// Datagen and graph-build throughput across network sizes (experiment id
// GEN-tp in DESIGN.md).

#include <benchmark/benchmark.h>

#include <filesystem>

#include "datagen/datagen.h"
#include "datagen/serializer.h"
#include "storage/graph.h"

namespace snb::bench {
namespace {

void BM_Generate(benchmark::State& state) {
  datagen::DatagenConfig cfg;
  cfg.num_persons = static_cast<uint64_t>(state.range(0));
  cfg.activity_scale = 0.6;
  size_t messages = 0;
  for (auto _ : state) {
    datagen::GeneratedData data = datagen::Generate(cfg);
    messages = data.total_posts + data.total_comments;
    benchmark::DoNotOptimize(data.network.persons.data());
  }
  state.counters["messages"] =
      benchmark::Counter(static_cast<double>(messages));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Generate)->Arg(300)->Arg(1000)->Arg(3000)->Unit(
    benchmark::kMillisecond);

void BM_GraphBuild(benchmark::State& state) {
  datagen::DatagenConfig cfg;
  cfg.num_persons = static_cast<uint64_t>(state.range(0));
  cfg.activity_scale = 0.6;
  datagen::GeneratedData data = datagen::Generate(cfg);
  for (auto _ : state) {
    state.PauseTiming();
    core::SocialNetwork copy = data.network;
    state.ResumeTiming();
    storage::Graph graph(std::move(copy));
    benchmark::DoNotOptimize(graph.NumMessages());
  }
}
BENCHMARK(BM_GraphBuild)->Arg(300)->Arg(1000)->Arg(3000)->Unit(
    benchmark::kMillisecond);

void BM_SerializeCsvBasic(benchmark::State& state) {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 500;
  cfg.activity_scale = 0.5;
  datagen::GeneratedData data = datagen::Generate(cfg);
  const std::string out = "/tmp/snb_bench_serialize";
  for (auto _ : state) {
    auto status = datagen::WriteCsvBasic(data.network, out);
    benchmark::DoNotOptimize(status.ok());
  }
  std::filesystem::remove_all(out);
}
BENCHMARK(BM_SerializeCsvBasic)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace snb::bench

BENCHMARK_MAIN();

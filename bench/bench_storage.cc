// Storage-layer benchmarks: CSV load, graph build, export, consistency
// check, and raw adjacency scan bandwidth.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "datagen/datagen.h"
#include "util/check.h"
#include "datagen/serializer.h"
#include "storage/consistency.h"
#include "storage/export.h"
#include "storage/graph.h"
#include "storage/loader.h"

namespace snb::bench {
namespace {

const std::string& DatasetDir() {
  static std::string* dir = [] {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 800;
    cfg.activity_scale = 0.6;
    datagen::GeneratedData data = datagen::Generate(cfg);
    auto* d = new std::string("/tmp/snb_bench_storage");
    std::filesystem::remove_all(*d);
    SNB_CHECK(datagen::WriteCsvBasic(data.network, *d).ok());
    return d;
  }();
  return *dir;
}

void BM_LoadCsvBasic(benchmark::State& state) {
  const std::string& dir = DatasetDir();
  for (auto _ : state) {
    auto result = storage::LoadCsvBasic(dir);
    SNB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().persons.size());
  }
}
BENCHMARK(BM_LoadCsvBasic)->Unit(benchmark::kMillisecond);

storage::Graph& BenchGraph() {
  static storage::Graph* graph = [] {
    auto result = storage::LoadCsvBasic(DatasetDir());
    SNB_CHECK(result.ok());
    return new storage::Graph(std::move(result.value()));
  }();
  return *graph;
}

void BM_ConsistencyCheck(benchmark::State& state) {
  storage::Graph& graph = BenchGraph();
  for (auto _ : state) {
    auto issues = storage::CheckGraphConsistency(graph);
    SNB_CHECK(issues.empty());
    benchmark::DoNotOptimize(issues);
  }
}
BENCHMARK(BM_ConsistencyCheck)->Unit(benchmark::kMillisecond);

void BM_ExportNetwork(benchmark::State& state) {
  storage::Graph& graph = BenchGraph();
  for (auto _ : state) {
    core::SocialNetwork net = storage::ExportNetwork(graph);
    benchmark::DoNotOptimize(net.persons.size());
  }
}
BENCHMARK(BM_ExportNetwork)->Unit(benchmark::kMillisecond);

void BM_KnowsScanBandwidth(benchmark::State& state) {
  storage::Graph& graph = BenchGraph();
  size_t edges = graph.Knows().num_edges();
  for (auto _ : state) {
    uint64_t acc = 0;
    for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
      graph.Knows().ForEach(p, [&](uint32_t q) { acc += q; });
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edges));
}
BENCHMARK(BM_KnowsScanBandwidth);

void BM_MessageColumnScan(benchmark::State& state) {
  storage::Graph& graph = BenchGraph();
  for (auto _ : state) {
    int64_t count = 0;
    graph.ForEachMessage([&](uint32_t msg) {
      if (graph.MessageCreationDate(msg) >
          core::DateTimeFromCivil(2011, 6, 1)) {
        ++count;
      }
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(graph.NumMessages()));
}
BENCHMARK(BM_MessageColumnScan);

}  // namespace
}  // namespace snb::bench

BENCHMARK_MAIN();

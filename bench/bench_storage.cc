// Columnar-storage density benchmark: generates two scale points with the
// bounded-memory streaming datagen, loads each into the compressed graph
// store, and reports the headline densities the compression work is judged
// by — bytes/edge and bytes/message against the seed layout's raw
// equivalent — plus load time and a peak-RSS proxy (Linux VmHWM).
//
// Writes bench/out/BENCH_storage.json (gitignored — compare against the
// committed baseline bench/BENCH_storage.json) and echoes it to stdout.
//
// Usage: bench_storage [--sf1=400] [--sf2=800] [--seed=42]
//                      [--out=bench/out/BENCH_storage.json]

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "datagen/streaming.h"
#include "storage/graph.h"
#include "storage/loader.h"
#include "util/check.h"

namespace {

using namespace snb;
using Clock = std::chrono::steady_clock;

struct Options {
  uint64_t sf1 = 400;
  uint64_t sf2 = 800;
  uint64_t seed = 42;
  std::string out = "bench/out/BENCH_storage.json";
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--sf1", &v)) {
      opt.sf1 = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--sf2", &v)) {
      opt.sf2 = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--out", &v)) {
      opt.out = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_storage [--sf1=N] [--sf2=N] [--seed=N] "
                   "[--out=bench/out/BENCH_storage.json]\n");
      std::exit(2);
    }
  }
  return opt;
}

/// Peak resident set size in KiB from /proc/self/status, 0 if unavailable.
size_t VmHwmKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

struct ScalePoint {
  uint64_t persons = 0;
  datagen::StreamingStats datagen;
  double datagen_ms = 0;
  double load_ms = 0;
  storage::columnar::MemoryBreakdown memory;
  size_t vm_hwm_kb = 0;
};

ScalePoint RunScale(uint64_t persons, uint64_t seed) {
  ScalePoint sp;
  sp.persons = persons;

  std::string dir = "/tmp/snb_bench_storage_" + std::to_string(persons);
  std::filesystem::remove_all(dir);
  datagen::StreamingOptions options;
  options.datagen.seed = seed;
  options.datagen.num_persons = persons;
  options.out_dir = dir;
  options.spill_dir = dir + "/.spill";
  options.memory_budget_bytes = size_t{64} << 20;

  std::fprintf(stderr, "generating %" PRIu64 " persons (streaming)...\n",
               persons);
  Clock::time_point t0 = Clock::now();
  SNB_CHECK_OK(datagen::GenerateStreaming(options, &sp.datagen));
  sp.datagen_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  std::fprintf(stderr, "loading...\n");
  t0 = Clock::now();
  auto loaded = storage::LoadCsvBasic(dir);
  SNB_CHECK(loaded.ok());
  storage::Graph graph(std::move(loaded.value()));
  sp.load_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  sp.memory = graph.Memory();
  sp.vm_hwm_kb = VmHwmKb();
  std::filesystem::remove_all(dir);
  return sp;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = ParseOptions(argc, argv);

  std::vector<ScalePoint> points;
  points.push_back(RunScale(opt.sf1, opt.seed));
  points.push_back(RunScale(opt.sf2, opt.seed));

  std::string json;
  auto emit = [&json](const char* fmt, auto... args) {
    char line[512];
    std::snprintf(line, sizeof(line), fmt, args...);
    json += line;
  };

  emit("{\n");
  emit("  \"benchmark\": \"columnar_storage\",\n");
  emit("  \"seed\": %" PRIu64 ",\n", opt.seed);
  emit("  \"scale_points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& sp = points[i];
    const auto& mb = sp.memory;
    emit("    {\n");
    emit("      \"persons\": %" PRIu64 ",\n", sp.persons);
    emit("      \"posts\": %zu,\n", sp.datagen.posts);
    emit("      \"comments\": %zu,\n", sp.datagen.comments);
    emit("      \"datagen_ms\": %.1f,\n", sp.datagen_ms);
    emit("      \"datagen_spill_runs\": %zu,\n", sp.datagen.spill_runs);
    emit("      \"load_ms\": %.1f,\n", sp.load_ms);
    emit("      \"num_edges\": %zu,\n", mb.num_edges);
    emit("      \"num_messages\": %zu,\n", mb.num_messages);
    emit("      \"bytes_per_edge\": %.2f,\n", mb.BytesPerEdge());
    emit("      \"raw_bytes_per_edge\": %.2f,\n", mb.RawBytesPerEdge());
    emit("      \"edge_compression\": %.2f,\n",
         mb.BytesPerEdge() > 0 ? mb.RawBytesPerEdge() / mb.BytesPerEdge()
                               : 0.0);
    emit("      \"bytes_per_message\": %.2f,\n", mb.BytesPerMessage());
    emit("      \"raw_bytes_per_message\": %.2f,\n", mb.RawBytesPerMessage());
    emit("      \"total_bytes\": %zu,\n", mb.total_bytes());
    emit("      \"total_raw_bytes\": %zu,\n", mb.total_raw_bytes());
    emit("      \"peak_rss_proxy_kb\": %zu,\n", sp.vm_hwm_kb);
    emit("      \"families\": [\n");
    for (size_t j = 0; j < mb.families.size(); ++j) {
      const auto& f = mb.families[j];
      emit("        {\"name\": \"%s\", \"bytes\": %zu, \"raw_bytes\": %zu, "
           "\"items\": %zu}%s\n",
           f.name.c_str(), f.bytes, f.raw_bytes, f.items,
           j + 1 < mb.families.size() ? "," : "");
    }
    emit("      ]\n");
    emit("    }%s\n", i + 1 < points.size() ? "," : "");
  }
  emit("  ]\n");
  emit("}\n");

  std::fputs(json.c_str(), stdout);
  std::filesystem::create_directories(
      std::filesystem::path(opt.out).parent_path());
  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", opt.out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  return 0;
}

// Driver throughput benchmarks (experiment id DRV-tp): the full Interactive
// mix (updates + complex reads + short reads per Table 3.1 frequencies) and
// the sequential BI stream.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "driver/driver.h"

namespace snb::bench {
namespace {

void BM_InteractiveWorkload(benchmark::State& state) {
  BenchData& data = DataFor(600);
  size_t ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // A fresh graph per iteration: updates mutate it.
    datagen::DatagenConfig cfg;
    cfg.num_persons = 600;
    cfg.activity_scale = 0.6;
    datagen::GeneratedData generated = datagen::Generate(cfg);
    storage::Graph graph(std::move(generated.network));
    state.ResumeTiming();

    driver::DriverConfig dc;
    dc.max_updates = static_cast<size_t>(state.range(0));
    driver::DriverReport report = driver::RunInteractiveWorkload(
        graph, generated.updates, data.params, dc);
    ops = report.total_operations;
    benchmark::DoNotOptimize(report.total_operations);
  }
  state.counters["ops"] = benchmark::Counter(static_cast<double>(ops));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ops));
}
BENCHMARK(BM_InteractiveWorkload)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_BiStream(benchmark::State& state) {
  BenchData& data = DataFor(600);
  for (auto _ : state) {
    driver::DriverReport report =
        driver::RunBiWorkload(data.graph, data.params, 1);
    benchmark::DoNotOptimize(report.total_operations);
  }
}
BENCHMARK(BM_BiStream)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace snb::bench

BENCHMARK_MAIN();

// Reproduces spec Tables 2.13 / 2.14: serializes a micro dataset and lists
// the produced CsvBasic (33) and CsvMergeForeign (20) files with their row
// counts (experiment id T2.13).

#include <cstdio>
#include <filesystem>
#include <map>

#include "datagen/datagen.h"
#include "datagen/serializer.h"
#include "util/csv.h"

int main() {
  using namespace snb;  // NOLINT
  namespace fs = std::filesystem;

  datagen::DatagenConfig cfg;
  cfg.num_persons = 200;
  cfg.activity_scale = 0.4;
  datagen::GeneratedData data = datagen::Generate(cfg);

  const std::string dir = "/tmp/snb_table_serializer";
  fs::remove_all(dir);
  if (!datagen::WriteCsvBasic(data.network, dir + "/basic").ok() ||
      !datagen::WriteCsvMergeForeign(data.network, dir + "/merge").ok()) {
    std::fprintf(stderr, "serialization failed\n");
    return 1;
  }

  auto list = [&](const std::string& root, const char* title,
                  size_t expected) {
    std::printf("%s (%zu files expected):\n", title, expected);
    std::map<std::string, size_t> rows;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      auto table = util::ReadCsv(entry.path().string());
      rows[entry.path().parent_path().filename().string() + "/" +
           entry.path().filename().string()] =
          table.ok() ? table.value().rows.size() : 0;
    }
    for (const auto& [name, count] : rows) {
      std::printf("  %-55s %8zu rows\n", name.c_str(), count);
    }
    std::printf("  → %zu files\n\n", rows.size());
  };

  list(dir + "/basic", "Table 2.13 — CsvBasic serializer output", 33);
  list(dir + "/merge", "Table 2.14 — CsvMergeForeign serializer output", 20);
  fs::remove_all(dir);
  return 0;
}

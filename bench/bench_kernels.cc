// Kernel pushdown report (CP-1.3 over CP-2.2/2.3): for every BI query with
// top-k bound pushdown (BI 2, 3, 6, 12, 14) plus the hot-column rewrite
// (BI 18), times three plans —
//
//   baseline   the naive engine: full scans, no index, no pruning
//   pushdown   the optimized sequential engine (zone maps + shared bound)
//   adaptive   the scheduler path: engine::DispatchModel decides per query
//              between the pushdown-sequential and morsel engines
//
// — verifies all plans return bit-identical rows, and collects the
// storage::ScanStats counters (rows decoded, blocks skipped by date zones,
// blocks/rows skipped by the bound) proving the pruning actually fires.
// Results go to bench/out/BENCH_kernels.json (gitignored — compare against
// the committed baseline bench/BENCH_kernels.json) and stdout.
//
// With --smoke the run additionally asserts (exit 1 on violation):
//   * every plan of every query returned identical rows,
//   * every zone-mapped query skipped at least one prune unit,
//   * every bounded query dropped at least one candidate by bound compare,
//   * the adaptive model never chose morsel for a query whose *measured*
//     parallel speedup in this same run was below 1×.
//
//   bench_kernels [--persons=8000] [--activity=0.5] [--reps=3]
//                 [--bindings=1] [--seed=42] [--threads=4] [--smoke]
//                 [--out=bench/out/BENCH_kernels.json]

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bi/bi.h"
#include "bi/naive.h"
#include "bi/parallel.h"
#include "core/date_time.h"
#include "datagen/datagen.h"
#include "engine/dispatch.h"
#include "params/parameter_curation.h"
#include "sched/stream.h"
#include "storage/graph.h"
#include "storage/scan_stats.h"
#include "util/thread_pool.h"

namespace {

using namespace snb;
using Clock = std::chrono::steady_clock;

struct Options {
  uint64_t persons = 8000;
  double activity = 0.5;
  size_t reps = 3;
  size_t bindings = 1;
  uint64_t seed = 42;
  size_t threads = 4;
  bool smoke = false;
  std::string out = "bench/out/BENCH_kernels.json";
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--persons", &v)) {
      opt.persons = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--activity", &v)) {
      opt.activity = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--reps", &v)) {
      opt.reps = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--bindings", &v)) {
      opt.bindings = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--threads", &v)) {
      opt.threads = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (ParseFlag(argv[i], "--out", &v)) {
      opt.out = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_kernels [--persons=8000] [--activity=0.5] "
                   "[--reps=3] [--bindings=1] [--seed=42] [--threads=4] "
                   "[--smoke] [--out=bench/out/BENCH_kernels.json]\n");
      std::exit(2);
    }
  }
  if (opt.reps == 0) opt.reps = 1;
  if (opt.threads == 0) opt.threads = 1;
  return opt;
}

/// Minimum wall-clock milliseconds of `fn` over `reps` runs.
double BestMs(size_t reps, const std::function<void()>& fn) {
  double best = 0;
  for (size_t r = 0; r < reps; ++r) {
    Clock::time_point t0 = Clock::now();
    fn();
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct KernelReport {
  std::string name;
  int query = 0;
  bool has_morsel_variant = false;
  double baseline_ms = 0;
  double pushdown_ms = 0;
  double parallel_ms = 0;
  double adaptive_ms = 0;
  bool adaptive_chose_morsel = false;
  double predicted_speedup = 0;
  uint64_t rows_decoded = 0;
  uint64_t blocks_skipped_date = 0;
  uint64_t blocks_skipped_bound = 0;
  uint64_t rows_skipped_bound = 0;
  bool results_match = true;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);

  std::fprintf(stderr, "generating %" PRIu64 " persons...\n", opt.persons);
  datagen::DatagenConfig dg;
  dg.seed = opt.seed;
  dg.num_persons = opt.persons;
  dg.activity_scale = opt.activity;
  datagen::GeneratedData data = datagen::Generate(dg);
  storage::Graph graph(std::move(data.network));

  std::fprintf(stderr, "curating parameters...\n");
  params::CurationConfig pc;
  pc.seed = opt.seed;
  pc.per_query = std::max<size_t>(1, opt.bindings);
  params::WorkloadParameters params = params::CurateParameters(graph, pc);

  if (opt.smoke) {
    // Synthetic bindings that exercise every pruning path by construction,
    // independent of what parameter curation happened to pick at smoke
    // scale: a mid-index date makes the date zones prune roughly half the
    // base, and zero thresholds over wide windows overfill the top-100 so
    // the CP-1.3 bound must start dropping candidates.
    const storage::MessageDateIndex& index = graph.MessageIndex();
    if (index.base_size() > 0) {
      const core::Date mid =
          core::DateFromDateTime(index.BaseDateAt(index.base_size() / 2));
      if (!params.bi12.empty()) params.bi12.push_back({mid, 0});
      if (!params.bi18.empty() && graph.NumPosts() > 0) {
        bi::Bi18Params p18 = params.bi18[0];
        p18.date = mid;
        p18.length_threshold = 1 << 30;
        p18.languages.push_back(graph.PostAt(0).language);
        params.bi18.push_back(p18);
      }
      if (!params.bi2.empty()) {
        bi::Bi2Params p2 = params.bi2[0];
        p2.start_date = 0;             // 1970 — the whole timeline
        p2.end_date = mid + 36500;     // ~100 years past the data
        p2.threshold = 0;
        params.bi2.push_back(p2);
      }
      if (!params.bi3.empty()) {
        const core::CivilDate c = core::CivilFromDate(mid);
        params.bi3.push_back({c.year, c.month});
      }
    }
  }

  util::ThreadPool pool(opt.threads);
  engine::DispatchModel model(opt.threads,
                              std::thread::hardware_concurrency());
  model.Calibrate(graph);
  std::fprintf(stderr, "calibrated %.2f ns/element\n",
               model.ns_per_element());

  std::vector<KernelReport> reports;

  // One report per pushdown query. `has_par = false` (BI 18) skips the
  // morsel and adaptive plans — BI 18 has no morsel variant; its win is the
  // index range scan plus the dictionary-coded hot columns.
  auto bench = [&](const char* name, int qnum, const auto& bindings,
                   auto&& naive_fn, auto&& seq_fn, auto&& par_fn,
                   bool has_par) {
    if (bindings.empty()) return;
    KernelReport r;
    r.name = name;
    r.query = qnum;
    r.has_morsel_variant = has_par;
    std::fprintf(stderr, "%s...\n", name);

    // Correctness first: every plan must return bit-identical rows.
    for (size_t b = 0; b < bindings.size(); ++b) {
      auto oracle = naive_fn(graph, bindings[b]);
      if (seq_fn(graph, bindings[b]) != oracle) r.results_match = false;
      if (has_par && par_fn(graph, bindings[b], pool) != oracle) {
        r.results_match = false;
      }
    }

    // Instrumented pushdown pass: one run per binding under a ScanStats
    // sink, so the counters prove the pruning fires on this exact workload.
    storage::ScanStats stats;
    {
      storage::ScopedScanStats guard(&stats);
      for (const auto& b : bindings) seq_fn(graph, b);
    }
    r.rows_decoded = stats.rows_decoded.load();
    r.blocks_skipped_date = stats.blocks_skipped_date.load();
    r.blocks_skipped_bound = stats.blocks_skipped_bound.load();
    r.rows_skipped_bound = stats.rows_skipped_bound.load();

    r.baseline_ms = BestMs(opt.reps, [&] {
      for (const auto& b : bindings) naive_fn(graph, b);
    });
    r.pushdown_ms = BestMs(opt.reps, [&] {
      for (const auto& b : bindings) seq_fn(graph, b);
    });
    if (has_par) {
      r.parallel_ms = BestMs(opt.reps, [&] {
        for (const auto& b : bindings) par_fn(graph, b, pool);
      });
      // Adaptive plan through the scheduler's own dispatch point, so the
      // decision recorded here is exactly what a power run would take.
      r.adaptive_ms = BestMs(opt.reps, [&] {
        for (size_t b = 0; b < bindings.size(); ++b) {
          sched::OpOutcome out = sched::ExecuteStreamOp(
              graph, params, {qnum, b}, nullptr, &pool, &model);
          if (out.dispatch_considered) {
            r.predicted_speedup = out.dispatch.predicted_speedup;
            if (out.dispatch.choice == engine::DispatchChoice::kMorsel) {
              r.adaptive_chose_morsel = true;
            }
          }
        }
      });
    }
    reports.push_back(std::move(r));
  };

  bench("BI 2", 2, params.bi2, bi::naive::RunBi2, bi::RunBi2,
        bi::parallel::RunBi2, true);
  bench("BI 3", 3, params.bi3, bi::naive::RunBi3, bi::RunBi3,
        bi::parallel::RunBi3, true);
  bench("BI 6", 6, params.bi6, bi::naive::RunBi6, bi::RunBi6,
        bi::parallel::RunBi6, true);
  bench("BI 12", 12, params.bi12, bi::naive::RunBi12, bi::RunBi12,
        bi::parallel::RunBi12, true);
  bench("BI 14", 14, params.bi14, bi::naive::RunBi14, bi::RunBi14,
        bi::parallel::RunBi14, true);
  bench("BI 18", 18, params.bi18, bi::naive::RunBi18, bi::RunBi18,
        [](const storage::Graph& g, const bi::Bi18Params& b,
           util::ThreadPool&) { return bi::RunBi18(g, b); },
        false);

  std::string json;
  char line[320];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    json += line;
  };
  emit("{\n");
  emit("  \"benchmark\": \"kernel_pushdown\",\n");
  emit("  \"num_persons\": %" PRIu64 ",\n", opt.persons);
  emit("  \"activity_scale\": %g,\n", opt.activity);
  emit("  \"bindings_per_query\": %zu,\n", pc.per_query);
  emit("  \"reps\": %zu,\n", opt.reps);
  emit("  \"threads\": %zu,\n", opt.threads);
  emit("  \"hardware_threads\": %u,\n", std::thread::hardware_concurrency());
  emit("  \"calibrated_ns_per_element\": %.3f,\n", model.ns_per_element());
  emit("  \"queries\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const KernelReport& r = reports[i];
    emit("    {\"query\": \"%s\",\n", r.name.c_str());
    emit("     \"baseline_ms\": %.3f, \"pushdown_ms\": %.3f, "
         "\"speedup_vs_baseline\": %.3f,\n",
         r.baseline_ms, r.pushdown_ms,
         r.pushdown_ms == 0 ? 0.0 : r.baseline_ms / r.pushdown_ms);
    if (r.has_morsel_variant) {
      emit("     \"parallel_ms\": %.3f, \"measured_parallel_speedup\": "
           "%.3f,\n",
           r.parallel_ms,
           r.parallel_ms == 0 ? 0.0 : r.pushdown_ms / r.parallel_ms);
      emit("     \"adaptive_ms\": %.3f, \"adaptive_choice\": \"%s\", "
           "\"predicted_speedup\": %.3f,\n",
           r.adaptive_ms, r.adaptive_chose_morsel ? "morsel" : "sequential",
           r.predicted_speedup);
    }
    emit("     \"rows_decoded\": %" PRIu64 ", \"blocks_skipped_date\": "
         "%" PRIu64 ",\n",
         r.rows_decoded, r.blocks_skipped_date);
    emit("     \"blocks_skipped_bound\": %" PRIu64 ", "
         "\"rows_skipped_bound\": %" PRIu64 ",\n",
         r.blocks_skipped_bound, r.rows_skipped_bound);
    emit("     \"results_match\": %s}%s\n", r.results_match ? "true" : "false",
         i + 1 == reports.size() ? "" : ",");
  }
  emit("  ]\n");
  emit("}\n");

  std::fputs(json.c_str(), stdout);
  std::filesystem::path out_path(opt.out);
  if (out_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(out_path.parent_path(), ec);
  }
  if (std::FILE* f = std::fopen(opt.out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", opt.out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }

  if (!opt.smoke) return 0;

  // --smoke assertions.
  int failures = 0;
  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "SMOKE FAIL: %s\n", msg.c_str());
    ++failures;
  };
  for (const KernelReport& r : reports) {
    if (!r.results_match) {
      fail(r.name + ": plans disagree with the naive oracle");
    }
    // Zone-mapped scans must have pruned at least one unit. BI 6 is exempt:
    // it scans tag adjacency, not the date index — its pruning is the
    // per-candidate bound check below.
    if (r.query != 6 &&
        r.blocks_skipped_date + r.blocks_skipped_bound == 0) {
      fail(r.name + ": no blocks skipped (zone pruning never fired)");
    }
    // Bounded top-k finishers must have dropped at least one candidate.
    // BI 18 is exempt: it is a full-histogram query with no top-k bound.
    if (r.query != 18 &&
        r.blocks_skipped_bound + r.rows_skipped_bound == 0) {
      fail(r.name + ": no bound skips (CP-1.3 pushdown never fired)");
    }
    // The adaptive model may only fan out when fanning out actually paid
    // off in this very run.
    if (r.has_morsel_variant && r.adaptive_chose_morsel &&
        r.parallel_ms > r.pushdown_ms) {
      fail(r.name + ": adaptive chose morsel but measured speedup < 1x");
    }
  }
  if (failures > 0) return 1;
  std::fprintf(stderr, "smoke OK: pruning fired on every kernel, all plans "
                       "bit-identical\n");
  return 0;
}

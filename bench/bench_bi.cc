// Per-query BI benchmarks: optimized engine vs naive baseline on the same
// graph and parameter bindings — the per-query latency axis of the
// workload's evaluation (experiment id BI-lat in DESIGN.md).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "bi/bi.h"
#include "bi/naive.h"

namespace snb::bench {
namespace {

constexpr uint64_t kPersons = 800;

#define SNB_BI_BENCH(N)                                              \
  void BM_Bi##N##_Optimized(benchmark::State& state) {               \
    BenchData& data = DataFor(kPersons);                             \
    size_t i = 0;                                                    \
    for (auto _ : state) {                                           \
      auto rows = bi::RunBi##N(                                      \
          data.graph,                                                \
          data.params.bi##N[i++ % data.params.bi##N.size()]);        \
      benchmark::DoNotOptimize(rows);                                \
    }                                                                \
  }                                                                  \
  BENCHMARK(BM_Bi##N##_Optimized);                                   \
  void BM_Bi##N##_Naive(benchmark::State& state) {                   \
    BenchData& data = DataFor(kPersons);                             \
    size_t i = 0;                                                    \
    for (auto _ : state) {                                           \
      auto rows = bi::naive::RunBi##N(                               \
          data.graph,                                                \
          data.params.bi##N[i++ % data.params.bi##N.size()]);        \
      benchmark::DoNotOptimize(rows);                                \
    }                                                                \
  }                                                                  \
  BENCHMARK(BM_Bi##N##_Naive)->Iterations(3);

SNB_BI_BENCH(1)
SNB_BI_BENCH(2)
SNB_BI_BENCH(3)
SNB_BI_BENCH(4)
SNB_BI_BENCH(5)
SNB_BI_BENCH(6)
SNB_BI_BENCH(7)
SNB_BI_BENCH(8)
SNB_BI_BENCH(9)
SNB_BI_BENCH(10)
SNB_BI_BENCH(11)
SNB_BI_BENCH(12)
SNB_BI_BENCH(13)
SNB_BI_BENCH(14)
SNB_BI_BENCH(15)
SNB_BI_BENCH(16)
SNB_BI_BENCH(17)
SNB_BI_BENCH(18)
SNB_BI_BENCH(19)
SNB_BI_BENCH(20)
SNB_BI_BENCH(21)
SNB_BI_BENCH(22)
SNB_BI_BENCH(23)
SNB_BI_BENCH(24)
SNB_BI_BENCH(25)

#undef SNB_BI_BENCH

}  // namespace
}  // namespace snb::bench

BENCHMARK_MAIN();

// Reproduces the homophily of the knows graph (spec §2.3.3.2, experiment id
// F2.2corr): the probability that connected persons share a country, a
// university or an interest, against the random-pairing baseline.

#include <cinttypes>
#include <cstdio>

#include "datagen/datagen.h"
#include "datagen/statistics.h"

int main() {
  using namespace snb;  // NOLINT

  std::printf("Knows-edge correlation vs random pairing "
              "(homophily, spec 2.3.3.2)\n\n");
  std::printf("%10s | %22s | %22s | %22s\n", "persons",
              "same country (edge/rand)", "same university",
              "common interest");
  for (uint64_t n : {500, 1000, 2000}) {
    datagen::DatagenConfig cfg;
    cfg.num_persons = n;
    cfg.update_fraction = 1e-9;
    cfg.activity_scale = 0.1;
    datagen::GeneratedData data = datagen::Generate(cfg);
    datagen::DatasetStatistics s = datagen::ComputeStatistics(data.network);
    std::printf("%10" PRIu64 " |   %6.3f / %6.3f (%4.1fx) "
                "|   %6.3f / %6.3f (%4.1fx) |   %6.3f / %6.3f (%4.1fx)\n",
                n, s.frac_same_country, s.random_same_country,
                s.frac_same_country / std::max(s.random_same_country, 1e-9),
                s.frac_same_university, s.random_same_university,
                s.frac_same_university /
                    std::max(s.random_same_university, 1e-9),
                s.frac_common_interest, s.random_common_interest,
                s.frac_common_interest /
                    std::max(s.random_common_interest, 1e-9));
  }
  std::printf("\nEvery ratio > 1 means the correlation dimensions (study,\n"
              "interest) dominate the random dimension, reproducing the\n"
              "triangle-rich structure real social networks show.\n");
  return 0;
}

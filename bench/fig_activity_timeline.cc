// Reproduces the flashmob time-correlation of spec §2.3.3.2 (experiment id
// F2.2time): posts-per-week timeline with spikes over the uniform
// background, plus spike statistics.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <vector>

#include "datagen/datagen.h"
#include "datagen/statistics.h"

int main() {
  using namespace snb;  // NOLINT

  datagen::DatagenConfig cfg;
  cfg.num_persons = 1500;
  cfg.update_fraction = 1e-9;
  datagen::GeneratedData data = datagen::Generate(cfg);
  datagen::DatasetStatistics s = datagen::ComputeStatistics(data.network);

  // Weekly bucketing for a readable figure.
  std::map<int32_t, size_t> weekly;
  for (const auto& [day, count] : s.posts_per_day) {
    weekly[day / 7] += count;
  }
  size_t peak = 1;
  for (const auto& [week, count] : weekly) peak = std::max(peak, count);

  std::printf("Posts per week, %zu posts over the simulation "
              "(flashmob events + uniform background)\n\n",
              s.num_posts);
  for (const auto& [week, count] : weekly) {
    int bar = static_cast<int>(70.0 * static_cast<double>(count) /
                               static_cast<double>(peak));
    std::printf("%s %6zu |",
                core::FormatDate(week * 7).c_str(), count);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }

  // Spike statistics over days.
  std::vector<size_t> daily;
  for (const auto& [day, count] : s.posts_per_day) daily.push_back(count);
  std::sort(daily.begin(), daily.end());
  size_t median = daily[daily.size() / 2];
  size_t p99 = daily[daily.size() * 99 / 100];
  std::printf("\nDaily volume: median %zu, p99 %zu, max %zu "
              "(peak/median ratio %.1fx)\n",
              median, p99, daily.back(),
              static_cast<double>(daily.back()) /
                  static_cast<double>(std::max<size_t>(median, 1)));
  std::printf("A ratio well above 1 reproduces the Leskovec-style event "
              "spikes the spec requires.\n");
  return 0;
}

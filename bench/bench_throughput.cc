// The benchmark's headline scores: Power@SF and Throughput@SF (paper §6).
//
// Generates the requested scale factor's dataset, curates substitution
// parameters, then runs
//   1. a power run  — one sequential BI stream through the scheduler, and
//   2. a throughput run — --streams concurrent permuted streams on a fixed
//      worker pool,
// and emits a single JSON report with both scores, the raw queries/hour
// figures, the multi-stream speedup, and per-template latency statistics
// from the fixed-bucket histograms.
//
//   bench_throughput --sf=0.1 --streams=4 [--workers=N] [--bindings=K]
//                    [--activity=X] [--deadline-ms=D] [--seed=S]
//                    [--max-in-flight=M]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/scale_factors.h"
#include "datagen/datagen.h"
#include "params/parameter_curation.h"
#include "sched/scheduler.h"
#include "sched/score.h"
#include "storage/graph.h"

namespace {

using namespace snb;

struct Options {
  std::string sf = "0.1";
  size_t streams = 4;
  size_t workers = 0;  // 0 = hardware concurrency
  size_t bindings = 4;
  size_t max_in_flight = 1;
  double activity = 0.5;
  double deadline_ms = 0;
  uint64_t seed = 42;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--sf", &v)) {
      opt.sf = v;
    } else if (ParseFlag(argv[i], "--streams", &v)) {
      opt.streams = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      opt.workers = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--bindings", &v)) {
      opt.bindings = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--max-in-flight", &v)) {
      opt.max_in_flight = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--activity", &v)) {
      opt.activity = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--deadline-ms", &v)) {
      opt.deadline_ms = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_throughput [--sf=0.1] [--streams=4] "
                   "[--workers=0] [--bindings=4] [--max-in-flight=1] "
                   "[--activity=0.5] [--deadline-ms=0] [--seed=42]\n");
      std::exit(2);
    }
  }
  if (opt.streams == 0) opt.streams = 1;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);

  auto sf_info = core::FindScaleFactor(opt.sf);
  if (!sf_info) {
    std::fprintf(stderr, "unknown scale factor '%s'\n", opt.sf.c_str());
    return 2;
  }

  std::fprintf(stderr, "generating SF %s (%" PRIu64 " persons)...\n",
               sf_info->name.c_str(), sf_info->num_persons);
  datagen::DatagenConfig dg;
  dg.seed = opt.seed;
  dg.num_persons = sf_info->num_persons;
  dg.activity_scale = opt.activity;
  datagen::GeneratedData data = datagen::Generate(dg);
  storage::Graph graph(std::move(data.network));

  std::fprintf(stderr, "curating parameters...\n");
  params::CurationConfig pc;
  pc.seed = opt.seed;
  pc.per_query = opt.bindings;
  params::WorkloadParameters params = params::CurateParameters(graph, pc);

  sched::SchedulerConfig base;
  base.num_workers = opt.workers;
  base.max_in_flight_per_stream = opt.max_in_flight;
  base.bindings_per_query = opt.bindings;
  base.query_deadline_ms = opt.deadline_ms;
  base.seed = opt.seed;

  std::fprintf(stderr, "power run (1 stream)...\n");
  sched::SchedulerConfig power_cfg = base;
  power_cfg.num_streams = 1;
  sched::ScheduleResult power_run = sched::RunStreams(graph, params, power_cfg);
  sched::PowerScore power = sched::ComputePowerScore(power_run, sf_info->sf);

  std::fprintf(stderr, "throughput run (%zu streams)...\n", opt.streams);
  sched::SchedulerConfig tp_cfg = base;
  tp_cfg.num_streams = opt.streams;
  sched::ScheduleResult tp_run = sched::RunStreams(graph, params, tp_cfg);
  sched::ThroughputScore throughput =
      sched::ComputeThroughputScore(tp_run, sf_info->sf);

  const double single_qph = power_run.QueriesPerHour();
  const double multi_qph = tp_run.QueriesPerHour();

  std::printf("{\n");
  std::printf("  \"benchmark\": \"snb-bi\",\n");
  std::printf("  \"scale_factor\": \"%s\",\n", sf_info->name.c_str());
  std::printf("  \"num_persons\": %" PRIu64 ",\n", sf_info->num_persons);
  std::printf("  \"activity_scale\": %g,\n", opt.activity);
  std::printf("  \"bindings_per_query\": %zu,\n", opt.bindings);
  std::printf("  \"workers\": %zu,\n", tp_run.workers_used);
  std::printf("  \"power\": {\n");
  std::printf("    \"power_at_sf\": %.3f,\n", power.power_at_sf);
  std::printf("    \"geomean_seconds\": %.6f,\n", power.geomean_seconds);
  std::printf("    \"wall_seconds\": %.3f,\n", power_run.wall_seconds);
  std::printf("    \"queries_per_hour\": %.1f,\n", single_qph);
  std::printf("    \"completed\": %zu,\n", power_run.total_completed);
  std::printf("    \"cancelled\": %zu\n", power_run.total_cancelled);
  std::printf("  },\n");
  std::printf("  \"throughput\": {\n");
  std::printf("    \"streams\": %zu,\n", opt.streams);
  std::printf("    \"throughput_at_sf\": %.3f,\n", throughput.throughput_at_sf);
  std::printf("    \"wall_seconds\": %.3f,\n", tp_run.wall_seconds);
  std::printf("    \"queries_per_hour\": %.1f,\n", multi_qph);
  std::printf("    \"completed\": %zu,\n", tp_run.total_completed);
  std::printf("    \"cancelled\": %zu\n", tp_run.total_cancelled);
  std::printf("  },\n");
  std::printf("  \"multi_stream_speedup\": %.3f,\n",
              single_qph == 0 ? 0.0 : multi_qph / single_qph);
  std::printf("  \"per_query\": [\n");
  size_t emitted = 0;
  for (const auto& [name, hist] : tp_run.per_query) {
    std::printf("    {\"query\": \"%s\", \"count\": %zu, \"mean_ms\": %.3f, "
                "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"max_ms\": %.3f}%s\n",
                name.c_str(), hist.count(), hist.MeanMs(),
                hist.PercentileMs(0.50), hist.PercentileMs(0.95),
                hist.max_ms(),
                ++emitted == tp_run.per_query.size() ? "" : ",");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}

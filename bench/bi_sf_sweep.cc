// The headline evaluation table (experiment id BI-lat): per-query BI
// runtimes across scale factors, optimized engine vs naive baseline —
// the "who wins, by what factor, how does it scale" shape of the
// GRADES-NDA 2018 evaluation.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <memory>

#include "bi/bi.h"
#include "bi/naive.h"
#include "datagen/datagen.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

namespace {

using Clock = std::chrono::steady_clock;
using snb::params::WorkloadParameters;
using snb::storage::Graph;

double TimeMs(const std::function<void()>& fn) {
  auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

// Graph is immovable (it owns a mutex), so hold it behind a unique_ptr.
struct Sized {
  uint64_t persons;
  std::unique_ptr<Graph> graph;
  WorkloadParameters params;
};

}  // namespace

int main() {
  using namespace snb;  // NOLINT

  std::vector<Sized> sizes;
  for (uint64_t persons : {300, 800, 2000}) {
    datagen::DatagenConfig cfg;
    cfg.num_persons = persons;
    cfg.activity_scale = 0.6;
    datagen::GeneratedData data = datagen::Generate(cfg);
    auto graph = std::make_unique<Graph>(std::move(data.network));
    params::CurationConfig pc;
    pc.per_query = 3;
    WorkloadParameters params = params::CurateParameters(*graph, pc);
    sizes.push_back({persons, std::move(graph), std::move(params)});
  }

  std::printf("BI query runtime (ms, mean of 3 curated bindings), optimized"
              " vs naive, per network size\n\n");
  std::printf("%-6s", "Query");
  for (const Sized& s : sizes) {
    std::printf(" | %8" PRIu64 "p opt %8" PRIu64 "p nai %7s", s.persons,
                s.persons, "speedup");
  }
  std::printf("\n");

#define SNB_SWEEP(N)                                                       \
  {                                                                        \
    std::printf("BI %-3d", N);                                             \
    for (Sized& s : sizes) {                                               \
      double opt = 0, nai = 0;                                             \
      for (const auto& p : s.params.bi##N) {                               \
        opt += TimeMs([&] { bi::RunBi##N(*s.graph, p); });                 \
        nai += TimeMs([&] { bi::naive::RunBi##N(*s.graph, p); });          \
      }                                                                    \
      double n = static_cast<double>(s.params.bi##N.size());               \
      opt /= n;                                                            \
      nai /= n;                                                            \
      std::printf(" | %9.2f   %9.2f   %6.1fx", opt, nai,                   \
                  opt > 0 ? nai / opt : 0.0);                              \
    }                                                                      \
    std::printf("\n");                                                     \
  }

  SNB_SWEEP(1)
  SNB_SWEEP(2)
  SNB_SWEEP(3)
  SNB_SWEEP(4)
  SNB_SWEEP(5)
  SNB_SWEEP(6)
  SNB_SWEEP(7)
  SNB_SWEEP(8)
  SNB_SWEEP(9)
  SNB_SWEEP(10)
  SNB_SWEEP(11)
  SNB_SWEEP(12)
  SNB_SWEEP(13)
  SNB_SWEEP(14)
  SNB_SWEEP(15)
  SNB_SWEEP(16)
  SNB_SWEEP(17)
  SNB_SWEEP(18)
  SNB_SWEEP(19)
  SNB_SWEEP(20)
  SNB_SWEEP(21)
  SNB_SWEEP(22)
  SNB_SWEEP(23)
  SNB_SWEEP(24)
  SNB_SWEEP(25)
#undef SNB_SWEEP

  std::printf("\nExpected shape: the optimized engine wins on selective\n"
              "queries (BI 4–8, 16: reverse indexes + top-k pushdown) by\n"
              "one to two orders of magnitude and roughly ties on full-scan\n"
              "aggregations (BI 1, 18), with the gap widening as the\n"
              "network grows.\n");
  return 0;
}

// Interactive workload benchmarks: complex reads IC 1–14, short reads
// IS 1–7, and update application throughput (experiment ids IC-lat,
// IS/IU-lat in DESIGN.md).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "interactive/interactive.h"
#include "interactive/updates.h"
#include "util/check.h"

namespace snb::bench {
namespace {

constexpr uint64_t kPersons = 800;

#define SNB_IC_BENCH(N)                                              \
  void BM_Ic##N(benchmark::State& state) {                           \
    BenchData& data = DataFor(kPersons);                             \
    size_t i = 0;                                                    \
    for (auto _ : state) {                                           \
      auto rows = interactive::RunIc##N(                             \
          data.graph,                                                \
          data.params.ic##N[i++ % data.params.ic##N.size()]);        \
      benchmark::DoNotOptimize(rows);                                \
    }                                                                \
  }                                                                  \
  BENCHMARK(BM_Ic##N);

SNB_IC_BENCH(1)
SNB_IC_BENCH(2)
SNB_IC_BENCH(3)
SNB_IC_BENCH(4)
SNB_IC_BENCH(5)
SNB_IC_BENCH(6)
SNB_IC_BENCH(7)
SNB_IC_BENCH(8)
SNB_IC_BENCH(9)
SNB_IC_BENCH(10)
SNB_IC_BENCH(11)
SNB_IC_BENCH(12)

#undef SNB_IC_BENCH

void BM_Ic13(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  size_t i = 0;
  for (auto _ : state) {
    auto row = interactive::RunIc13(
        data.graph, data.params.ic13[i++ % data.params.ic13.size()]);
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_Ic13);

void BM_Ic14(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  size_t i = 0;
  for (auto _ : state) {
    auto rows = interactive::RunIc14(
        data.graph, data.params.ic14[i++ % data.params.ic14.size()]);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_Ic14);

void BM_Is1Profile(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  core::Id person = data.params.ic1[0].person_id;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interactive::RunIs1(data.graph, person));
  }
}
BENCHMARK(BM_Is1Profile);

void BM_Is2RecentMessages(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  core::Id person = data.params.ic1[0].person_id;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interactive::RunIs2(data.graph, person));
  }
}
BENCHMARK(BM_Is2RecentMessages);

void BM_Is3Friends(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  core::Id person = data.params.ic1[0].person_id;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interactive::RunIs3(data.graph, person));
  }
}
BENCHMARK(BM_Is3Friends);

void BM_Is7Replies(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  core::Id post = data.graph.PostAt(0).id;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interactive::RunIs7(data.graph, post, true));
  }
}
BENCHMARK(BM_Is7Replies);

/// Update replay throughput: applies the whole stream to a fresh graph.
void BM_UpdateReplay(benchmark::State& state) {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 400;
  cfg.activity_scale = 0.5;
  datagen::GeneratedData generated = datagen::Generate(cfg);
  for (auto _ : state) {
    state.PauseTiming();
    core::SocialNetwork copy = generated.network;
    storage::Graph graph(std::move(copy));
    state.ResumeTiming();
    for (const datagen::UpdateEvent& e : generated.updates) {
      SNB_CHECK(interactive::ApplyUpdate(graph, e).ok());
    }
    benchmark::DoNotOptimize(graph.NumPersons());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(generated.updates.size()));
}
BENCHMARK(BM_UpdateReplay);

}  // namespace
}  // namespace snb::bench

BENCHMARK_MAIN();

// Parameter-curation benchmark (experiment id CURA): the P1 property of
// spec §3.3 measured directly — runtime variance of a query template under
// curated parameters vs uniformly random parameters.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>

#include "bench_common.h"
#include "interactive/interactive.h"
#include "util/rng.h"

namespace snb::bench {
namespace {

constexpr uint64_t kPersons = 800;

double RunIc9LatencyMs(const storage::Graph& graph, core::Id person) {
  auto t0 = std::chrono::steady_clock::now();
  auto rows = interactive::RunIc9(
      graph, {person, core::DateFromCivil(2012, 12, 1)});
  benchmark::DoNotOptimize(rows);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Coefficient of variation of IC 9 latency over a parameter set; exported
/// as a counter so `curated` can be compared against `random` directly in
/// the benchmark output.
void MeasureVariance(benchmark::State& state,
                     const std::vector<core::Id>& persons) {
  BenchData& data = DataFor(kPersons);
  double cv = 0;
  for (auto _ : state) {
    double sum = 0, sq = 0;
    for (core::Id p : persons) {
      double ms = RunIc9LatencyMs(data.graph, p);
      sum += ms;
      sq += ms * ms;
    }
    double n = static_cast<double>(persons.size());
    double mean = sum / n;
    double var = sq / n - mean * mean;
    cv = mean > 0 ? std::sqrt(std::max(var, 0.0)) / mean : 0;
    benchmark::DoNotOptimize(cv);
  }
  state.counters["latency_cv"] = benchmark::Counter(cv);
}

void BM_Ic9_CuratedParams(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  std::vector<core::Id> persons;
  for (const auto& p : data.params.ic9) persons.push_back(p.person_id);
  MeasureVariance(state, persons);
}
BENCHMARK(BM_Ic9_CuratedParams)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_Ic9_RandomParams(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  util::Rng rng(1234);
  std::vector<core::Id> persons;
  for (size_t i = 0; i < data.params.ic9.size(); ++i) {
    persons.push_back(data.graph
                          .PersonAt(static_cast<uint32_t>(rng.UniformInt(
                              0,
                              static_cast<int64_t>(data.graph.NumPersons()) -
                                  1)))
                          .id);
  }
  MeasureVariance(state, persons);
}
BENCHMARK(BM_Ic9_RandomParams)->Iterations(3)->Unit(benchmark::kMillisecond);

/// Deterministic P1 metric: the coefficient of variation of the *work* a
/// per-person query template touches (friend-adjacent messages — IC 2's
/// candidate set), curated vs random. Timing-noise-free.
double WorkCv(const storage::Graph& graph,
              const std::vector<core::Id>& persons) {
  double sum = 0, sq = 0;
  for (core::Id id : persons) {
    uint32_t idx = graph.PersonIdx(id);
    double work = 0;
    graph.Knows().ForEach(idx, [&](uint32_t f) {
      work += static_cast<double>(graph.PersonPosts().Degree(f) +
                                  graph.PersonComments().Degree(f));
    });
    sum += work;
    sq += work * work;
  }
  double n = static_cast<double>(persons.size());
  double mean = sum / n;
  double var = sq / n - mean * mean;
  return mean > 0 ? std::sqrt(std::max(var, 0.0)) / mean : 0;
}

void BM_WorkVariance_Curated(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  std::vector<core::Id> persons;
  for (const auto& p : data.params.ic2) persons.push_back(p.person_id);
  double cv = 0;
  for (auto _ : state) {
    cv = WorkCv(data.graph, persons);
    benchmark::DoNotOptimize(cv);
  }
  state.counters["work_cv"] = benchmark::Counter(cv);
}
BENCHMARK(BM_WorkVariance_Curated)->Iterations(1);

void BM_WorkVariance_Random(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  util::Rng rng(777);
  std::vector<core::Id> persons;
  for (size_t i = 0; i < data.params.ic2.size(); ++i) {
    persons.push_back(data.graph
                          .PersonAt(static_cast<uint32_t>(rng.UniformInt(
                              0,
                              static_cast<int64_t>(data.graph.NumPersons()) -
                                  1)))
                          .id);
  }
  double cv = 0;
  for (auto _ : state) {
    cv = WorkCv(data.graph, persons);
    benchmark::DoNotOptimize(cv);
  }
  state.counters["work_cv"] = benchmark::Counter(cv);
}
BENCHMARK(BM_WorkVariance_Random)->Iterations(1);

}  // namespace
}  // namespace snb::bench

BENCHMARK_MAIN();

// Reproduces spec Table 3.1 / Table B.1 (Interactive complex-read
// frequencies per scale factor) from the encoded constants, and verifies
// the driver realizes those ratios by running a short workload
// (experiment id T3.1/B.1).

#include <cstdio>

#include "core/scale_factors.h"
#include "datagen/datagen.h"
#include "driver/driver.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

int main() {
  using namespace snb;  // NOLINT

  std::printf("Table B.1 — frequencies for each complex read and SF\n");
  std::printf("%-10s", "Query");
  for (const auto& row : core::AllInteractiveFrequencies()) {
    std::printf(" %6s", ("SF" + row.sf_name).c_str());
  }
  std::printf("\n");
  for (int q = 0; q < 14; ++q) {
    std::printf("IC %-7d", q + 1);
    for (const auto& row : core::AllInteractiveFrequencies()) {
      std::printf(" %6d", row.freq[q]);
    }
    std::printf("\n");
  }

  // Driver realization check at SF1 frequencies.
  datagen::DatagenConfig cfg;
  cfg.num_persons = 300;
  cfg.activity_scale = 0.5;
  datagen::GeneratedData data = datagen::Generate(cfg);
  storage::Graph graph(std::move(data.network));
  params::CurationConfig pc;
  pc.per_query = 8;
  params::WorkloadParameters params =
      params::CurateParameters(graph, pc);
  driver::DriverConfig dc;
  dc.max_updates = 4000;
  dc.short_read_probability = 0;
  driver::DriverReport report =
      driver::RunInteractiveWorkload(graph, data.updates, params, dc);

  std::printf("\nDriver realization (%zu updates, SF1 frequencies):\n",
              report.update_operations);
  std::printf("%-8s %10s %10s\n", "Query", "expected", "executed");
  const core::InteractiveFrequencies freq =
      core::FrequenciesForScaleFactor("1");
  for (int q = 0; q < 14; ++q) {
    std::string op = "IC " + std::to_string(q + 1);
    auto it = report.per_operation.find(op);
    size_t actual = it == report.per_operation.end() ? 0 : it->second.count;
    std::printf("%-8s %10zu %10zu\n", op.c_str(),
                report.update_operations / static_cast<size_t>(freq.freq[q]),
                actual);
  }
  return 0;
}

// Parallel-execution benchmarks: intra-query parallel group-by (CP-1.2,
// BI 1 / BI 20) and the inter-query parallel BI stream vs the sequential
// stream (CP-6.1 territory).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "bi/bi.h"
#include "bi/parallel.h"
#include "driver/driver.h"
#include "util/thread_pool.h"

namespace snb::bench {
namespace {

constexpr uint64_t kPersons = 2000;

void BM_Bi1_Sequential(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bi::RunBi1(data.graph, data.params.bi1[0]));
  }
}
BENCHMARK(BM_Bi1_Sequential);

void BM_Bi1_Parallel(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  util::ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bi::parallel::RunBi1(data.graph, data.params.bi1[0], pool));
  }
}
BENCHMARK(BM_Bi1_Parallel)->Arg(2)->Arg(4)->Arg(8);

void BM_Bi20_Sequential(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bi::RunBi20(data.graph, data.params.bi20[0]));
  }
}
BENCHMARK(BM_Bi20_Sequential);

void BM_Bi20_Parallel(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  util::ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bi::parallel::RunBi20(data.graph, data.params.bi20[0], pool));
  }
}
BENCHMARK(BM_Bi20_Parallel)->Arg(2)->Arg(4);

void BM_BiStream_Sequential(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        driver::RunBiWorkload(data.graph, data.params, 1).total_operations);
  }
}
BENCHMARK(BM_BiStream_Sequential)->Unit(benchmark::kMillisecond);

void BM_BiStream_Parallel(benchmark::State& state) {
  BenchData& data = DataFor(kPersons);
  util::ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        driver::RunBiWorkloadParallel(data.graph, data.params, 1, pool)
            .total_operations);
  }
}
BENCHMARK(BM_BiStream_Parallel)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace snb::bench

BENCHMARK_MAIN();

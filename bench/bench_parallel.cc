// Morsel-parallel speedup report (CP-1.2 / CP-2.2): times every BI query
// with a morsel-parallel variant sequentially and on 2/4/8-worker pools,
// plus the zone-map pruning ratio of a one-month index window, and emits
// the result as bench/out/BENCH_parallel.json (gitignored — compare against
// the committed baseline bench/BENCH_parallel.json) and echoed to stdout.
//
// Each query row also records what the adaptive dispatch model would do
// with the measured workload ("adaptive_choice" / "predicted_speedup",
// same field names as BENCH_kernels.json), taken from the scheduler's own
// dispatch point — so the raw speedup table and the model's verdict on it
// sit side by side in one report.
//
// Speedups are a property of the host: on a single-core container every
// ratio degenerates to ~1× (the report still records the measured values);
// on a multi-core machine the scan-dominated queries (BI 1, 13, 20, ...)
// approach the worker count until the merge step dominates.
//
//   bench_parallel [--persons=2000] [--activity=0.5] [--reps=3]
//                  [--bindings=1] [--seed=42]
//                  [--out=bench/out/BENCH_parallel.json]

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bi/bi.h"
#include "bi/parallel.h"
#include "core/date_time.h"
#include "datagen/datagen.h"
#include "engine/dispatch.h"
#include "params/parameter_curation.h"
#include "sched/stream.h"
#include "storage/graph.h"
#include "storage/message_index.h"
#include "util/thread_pool.h"

namespace {

using namespace snb;
using Clock = std::chrono::steady_clock;

struct Options {
  uint64_t persons = 2000;
  double activity = 0.5;
  size_t reps = 3;
  size_t bindings = 1;
  uint64_t seed = 42;
  std::string out = "bench/out/BENCH_parallel.json";
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--persons", &v)) {
      opt.persons = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--activity", &v)) {
      opt.activity = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--reps", &v)) {
      opt.reps = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--bindings", &v)) {
      opt.bindings = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--out", &v)) {
      opt.out = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel [--persons=2000] [--activity=0.5] "
                   "[--reps=3] [--bindings=1] [--seed=42] "
                   "[--out=bench/out/BENCH_parallel.json]\n");
      std::exit(2);
    }
  }
  if (opt.reps == 0) opt.reps = 1;
  return opt;
}

/// Minimum wall-clock milliseconds of `fn` over `reps` runs.
double BestMs(size_t reps, const std::function<void()>& fn) {
  double best = 0;
  for (size_t r = 0; r < reps; ++r) {
    Clock::time_point t0 = Clock::now();
    fn();
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct QueryReport {
  std::string name;
  double seq_ms = 0;
  std::vector<std::pair<size_t, double>> parallel_ms;  // (threads, ms)
  bool dispatch_considered = false;
  bool adaptive_chose_morsel = false;
  double predicted_speedup = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);

  std::fprintf(stderr, "generating %" PRIu64 " persons...\n", opt.persons);
  datagen::DatagenConfig dg;
  dg.seed = opt.seed;
  dg.num_persons = opt.persons;
  dg.activity_scale = opt.activity;
  datagen::GeneratedData data = datagen::Generate(dg);
  storage::Graph graph(std::move(data.network));

  std::fprintf(stderr, "curating parameters...\n");
  params::CurationConfig pc;
  pc.seed = opt.seed;
  pc.per_query = std::max<size_t>(1, opt.bindings);
  params::WorkloadParameters params = params::CurateParameters(graph, pc);

  const size_t kThreadCounts[] = {2, 4, 8};
  std::vector<QueryReport> reports;

  // The dispatch model the scheduler would consult for these queries,
  // calibrated on this exact graph; decisions below come through
  // sched::ExecuteStreamOp so they are the scheduler's, not a re-derivation.
  const size_t kDispatchWorkers = 8;
  util::ThreadPool dispatch_pool(kDispatchWorkers);
  engine::DispatchModel model(kDispatchWorkers,
                              std::thread::hardware_concurrency());
  model.Calibrate(graph);
  std::fprintf(stderr, "calibrated %.2f ns/element\n",
               model.ns_per_element());

  // One entry per morsel-parallel query: run every curated binding once per
  // timed repetition so skewed bindings do not dominate the comparison.
  auto bench = [&](const char* name, int qnum, auto&& bindings, auto&& seq,
                   auto&& par) {
    if (bindings.empty()) return;
    QueryReport r;
    r.name = name;
    std::fprintf(stderr, "%s...\n", name);
    r.seq_ms = BestMs(opt.reps, [&] {
      for (const auto& b : bindings) seq(graph, b);
    });
    for (size_t threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      r.parallel_ms.emplace_back(threads, BestMs(opt.reps, [&] {
                                   for (const auto& b : bindings) {
                                     par(graph, b, pool);
                                   }
                                 }));
    }
    // Untimed adaptive pass: what would the scheduler's dispatch point do
    // with these bindings? Records the last binding's decision, matching
    // BENCH_kernels.json.
    for (size_t b = 0; b < bindings.size(); ++b) {
      sched::OpOutcome out = sched::ExecuteStreamOp(
          graph, params, {qnum, b}, nullptr, &dispatch_pool, &model);
      if (out.dispatch_considered) {
        r.dispatch_considered = true;
        r.predicted_speedup = out.dispatch.predicted_speedup;
        r.adaptive_chose_morsel =
            out.dispatch.choice == engine::DispatchChoice::kMorsel;
      }
    }
    reports.push_back(std::move(r));
  };

  bench("BI 1", 1, params.bi1, bi::RunBi1, bi::parallel::RunBi1);
  bench("BI 2", 2, params.bi2, bi::RunBi2, bi::parallel::RunBi2);
  bench("BI 3", 3, params.bi3, bi::RunBi3, bi::parallel::RunBi3);
  bench("BI 6", 6, params.bi6, bi::RunBi6, bi::parallel::RunBi6);
  bench("BI 12", 12, params.bi12, bi::RunBi12, bi::parallel::RunBi12);
  bench("BI 13", 13, params.bi13, bi::RunBi13, bi::parallel::RunBi13);
  bench("BI 14", 14, params.bi14, bi::RunBi14, bi::parallel::RunBi14);
  bench("BI 17", 17, params.bi17, bi::RunBi17, bi::parallel::RunBi17);
  bench("BI 20", 20, params.bi20, bi::RunBi20, bi::parallel::RunBi20);
  bench("BI 23", 23, params.bi23, bi::RunBi23, bi::parallel::RunBi23);
  bench("BI 24", 24, params.bi24, bi::RunBi24, bi::parallel::RunBi24);

  // Zone-map pruning: how many index entries a one-month window examines
  // vs the full message count. The window is the median base month, so it
  // always carries data.
  const storage::MessageDateIndex& index = graph.MessageIndex();
  const size_t total_messages = graph.NumMessages();
  core::DateTime mid = index.base_size() == 0
                           ? core::DateTimeFromCivil(2010, 6, 1)
                           : index.BaseDateAt(index.base_size() / 2);
  int32_t wy = core::Year(mid), wm = core::Month(mid);
  int32_t ny = wm == 12 ? wy + 1 : wy, nm = wm == 12 ? 1 : wm + 1;
  const core::DateTime w0 = core::DateTimeFromCivil(wy, wm, 1);
  const core::DateTime w1 = core::DateTimeFromCivil(ny, nm, 1);
  const size_t candidates = index.CandidatesInRange(w0, w1);

  std::string json;
  char line[256];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    json += line;
  };
  emit("{\n");
  emit("  \"benchmark\": \"morsel_parallel\",\n");
  emit("  \"num_persons\": %" PRIu64 ",\n", opt.persons);
  emit("  \"activity_scale\": %g,\n", opt.activity);
  emit("  \"bindings_per_query\": %zu,\n", pc.per_query);
  emit("  \"reps\": %zu,\n", opt.reps);
  emit("  \"hardware_threads\": %u,\n",
       std::thread::hardware_concurrency());
  emit("  \"dispatch_model\": {\"workers\": %zu, "
       "\"ns_per_element\": %.3f},\n",
       model.workers(), model.ns_per_element());
  emit("  \"zone_map\": {\n");
  emit("    \"window_year\": %d,\n", wy);
  emit("    \"window_month\": %d,\n", wm);
  emit("    \"candidates\": %zu,\n", candidates);
  emit("    \"total_messages\": %zu,\n", total_messages);
  emit("    \"scan_fraction\": %.6f\n",
       total_messages == 0
           ? 0.0
           : static_cast<double>(candidates) /
                 static_cast<double>(total_messages));
  emit("  },\n");
  emit("  \"queries\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const QueryReport& r = reports[i];
    emit("    {\"query\": \"%s\", \"sequential_ms\": %.3f, "
         "\"adaptive_choice\": \"%s\", \"predicted_speedup\": %.3f, "
         "\"parallel\": [",
         r.name.c_str(), r.seq_ms,
         !r.dispatch_considered ? "unconsidered"
         : r.adaptive_chose_morsel ? "morsel"
                                   : "sequential",
         r.predicted_speedup);
    for (size_t j = 0; j < r.parallel_ms.size(); ++j) {
      const auto& [threads, ms] = r.parallel_ms[j];
      emit("%s{\"threads\": %zu, \"ms\": %.3f, \"speedup\": %.3f}",
           j == 0 ? "" : ", ", threads, ms,
           ms == 0 ? 0.0 : r.seq_ms / ms);
    }
    emit("]}%s\n", i + 1 == reports.size() ? "" : ",");
  }
  emit("  ]\n");
  emit("}\n");

  std::fputs(json.c_str(), stdout);
  std::filesystem::path out_path(opt.out);
  if (out_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(out_path.parent_path(), ec);
  }
  if (std::FILE* f = std::fopen(opt.out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", opt.out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  return 0;
}

// Audit run: the benchmark-execution workflow of spec §6 — load, validate
// the query implementations, run the measured workload, and print an
// FDR-style (full disclosure report) summary with the §6.2 on-time check
// and the Appendix C checklist answers.
//
//   ./audit_run [num_persons]

#include <cstdio>
#include <cstdlib>

#include "datagen/datagen.h"
#include "driver/driver.h"
#include "driver/validation.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

int main(int argc, char** argv) {
  using namespace snb;  // NOLINT

  datagen::DatagenConfig config;
  config.num_persons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;
  std::printf("== Preparation (spec 6.1) ==\n");
  std::printf("Datagen: %llu persons, seed %llu, %d years from %d\n",
              static_cast<unsigned long long>(config.num_persons),
              static_cast<unsigned long long>(config.seed), config.num_years,
              config.start_year);
  datagen::GeneratedData data = datagen::Generate(config);
  std::printf("Load: bulk dataset with %zu persons / %zu messages; "
              "%zu update-stream operations withheld\n",
              data.network.persons.size(),
              data.network.posts.size() + data.network.comments.size(),
              data.updates.size());
  storage::Graph graph(std::move(data.network));

  params::CurationConfig pc;
  pc.per_query = 10;
  params::WorkloadParameters params = params::CurateParameters(graph, pc);

  std::printf("\n== Validation (spec 6.2 step 1) ==\n");
  driver::ValidationReport validation =
      driver::ValidateBiImplementations(graph, params, 3);
  std::printf("BI reads: %zu queries x 3 bindings cross-validated against "
              "the reference (naive) engine: %s\n",
              validation.queries_checked,
              validation.ok() ? "PASS" : "FAIL");
  if (!validation.ok()) {
    for (const std::string& q : validation.mismatched_queries) {
      std::printf("  mismatch in %s\n", q.c_str());
    }
    return 1;
  }

  std::printf("\n== Measured run (spec 6.2 step 3) ==\n");
  driver::DriverConfig dc;
  dc.sf_name = "1";
  driver::DriverReport report =
      driver::RunInteractiveWorkload(graph, data.updates, params, dc);
  std::printf("operations: %zu total (%zu updates, %zu complex reads, "
              "%zu short reads)\n",
              report.total_operations, report.update_operations,
              report.complex_reads, report.short_reads);
  std::printf("wall time: %.2f s — throughput %.0f ops/s\n",
              report.wall_seconds, report.throughput_ops_per_sec);
  std::printf("on-time fraction (<1 s late): %.1f%% — audit requires 95%%: "
              "%s\n",
              100 * report.on_time_fraction,
              report.on_time_fraction >= 0.95 ? "PASS" : "FAIL");

  util::Status log_status = driver::WriteResultsLog(
      report.results_log, "/tmp/snb_results_log.csv");
  std::printf("results log: %s (%zu rows) -> /tmp/snb_results_log.csv\n",
              log_status.ok() ? "written" : "FAILED",
              report.results_log.size());

  std::printf("\nresults summary (per operation type):\n");
  std::printf("%-8s %8s %10s %10s %10s\n", "op", "count", "mean ms",
              "p95 ms", "max ms");
  for (const auto& [op, stats] : report.per_operation) {
    std::printf("%-8s %8zu %10.3f %10.3f %10.3f\n", op.c_str(), stats.count,
                stats.MeanMs(), stats.PercentileMs(0.95), stats.max_ms);
  }

  std::printf("\n== Benchmark checklist (spec Appendix C) ==\n");
  std::printf("  cross-validated at one scale factor:   yes (naive engine)\n");
  std::printf("  persistent storage:                    no (in-memory SUT)\n");
  std::printf("  ACID transactions:                     no (single-writer)\n");
  std::printf("  fault tolerance:                       no\n");
  std::printf("  warmup rounds:                         0 (cold run)\n");
  std::printf("  execution rounds:                      1\n");
  std::printf("  summary statistic:                     mean/p95 per op\n");
  std::printf("  loading included in query times:       no\n");
  return 0;
}

// Datagen CLI: generates a dataset and serializes all spec artefacts —
// the CsvBasic dataset (Table 2.13), the CsvMergeForeign variant
// (Table 2.14), the update streams (Tables 2.17–2.18) and the substitution
// parameters (§2.3.4.4) — into an output directory, mirroring the
// reference Datagen's social_network/ layout.
//
//   ./datagen_tool <output_dir> [--sf <name> | --persons <n>] [--seed <s>]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/scale_factors.h"
#include "datagen/datagen.h"
#include "datagen/serializer.h"
#include "datagen/statistics.h"
#include "datagen/update_stream.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

int main(int argc, char** argv) {
  using namespace snb;  // NOLINT

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <output_dir> [--sf <name> | --persons <n>] "
                 "[--seed <s>]\n",
                 argv[0]);
    return 2;
  }
  std::string out_dir = argv[1];
  datagen::DatagenConfig config;
  config.num_persons = 1500;  // SF 0.1 by default
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--sf") == 0) {
      auto sf = core::FindScaleFactor(argv[i + 1]);
      if (!sf.has_value()) {
        std::fprintf(stderr, "unknown scale factor %s\n", argv[i + 1]);
        return 2;
      }
      config.num_persons = sf->num_persons;
    } else if (std::strcmp(argv[i], "--persons") == 0) {
      config.num_persons = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("Generating %llu persons (seed %llu)...\n",
              static_cast<unsigned long long>(config.num_persons),
              static_cast<unsigned long long>(config.seed));
  datagen::GeneratedData data = datagen::Generate(config);
  datagen::DatasetStatistics stats =
      datagen::ComputeStatistics(data.network);
  std::printf("  nodes %zu, edges %zu, avg knows-degree %.1f\n",
              stats.num_nodes, stats.num_edges, stats.avg_degree);

  std::string social = out_dir + "/social_network";
  struct Serializer {
    const char* name;
    const char* subdir;
    util::Status (*write)(const core::SocialNetwork&, const std::string&);
  };
  const Serializer serializers[] = {
      {"CsvBasic", "/social_network", &datagen::WriteCsvBasic},
      {"CsvMergeForeign", "/social_network_merge",
       &datagen::WriteCsvMergeForeign},
      {"CsvComposite", "/social_network_composite",
       &datagen::WriteCsvComposite},
      {"CsvCompositeMergeForeign", "/social_network_composite_merge",
       &datagen::WriteCsvCompositeMergeForeign},
      {"Turtle", "/social_network_turtle", &datagen::WriteTurtle},
  };
  for (const Serializer& ser : serializers) {
    util::Status status = ser.write(data.network, out_dir + ser.subdir);
    if (!status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", ser.name,
                   status.ToString().c_str());
      return 1;
    }
  }
  util::Status status = datagen::WriteUpdateStreams(data.updates, social);
  if (!status.ok()) {
    std::fprintf(stderr, "update streams failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Substitution parameters require the count-collection pass over the
  // built graph (spec §3.3 stage 1).
  storage::Graph graph(std::move(data.network));
  params::CurationConfig pc;
  pc.seed = config.seed;
  params::WorkloadParameters wp = params::CurateParameters(graph, pc);
  status = params::WriteSubstitutionParameters(
      wp, out_dir + "/substitution_parameters");
  if (!status.ok()) {
    std::fprintf(stderr, "substitution parameters failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  std::printf(
      "Wrote:\n"
      "  %s/  (CsvBasic dataset, Table 2.13 + update streams)\n"
      "  %s_merge/  (CsvMergeForeign, Table 2.14)\n"
      "  %s_composite/  (CsvComposite, Table 2.15)\n"
      "  %s_composite_merge/  (CsvCompositeMergeForeign, Table 2.16)\n"
      "  %s_turtle/  (Turtle RDF)\n"
      "  %s/substitution_parameters/  (39 parameter files)\n",
      social.c_str(), social.c_str(), social.c_str(), social.c_str(),
      social.c_str(), out_dir.c_str());
  return 0;
}

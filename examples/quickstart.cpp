// Quickstart: generate a social network, build the graph store, and run
// one BI query and one Interactive query through the public API.
//
//   ./quickstart [num_persons]

#include <cstdio>
#include <cstdlib>

#include "bi/bi.h"
#include "datagen/datagen.h"
#include "interactive/interactive.h"
#include "storage/graph.h"

int main(int argc, char** argv) {
  using namespace snb;  // NOLINT

  // 1. Generate a deterministic synthetic social network (spec §2.3.3).
  datagen::DatagenConfig config;
  config.num_persons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  config.seed = 42;
  std::printf("Generating a network of %llu persons...\n",
              static_cast<unsigned long long>(config.num_persons));
  datagen::GeneratedData data = datagen::Generate(config);
  std::printf("  bulk dataset: %zu persons, %zu posts, %zu comments, "
              "%zu knows edges (+%zu update events)\n",
              data.network.persons.size(), data.network.posts.size(),
              data.network.comments.size(), data.network.knows.size(),
              data.updates.size());

  // 2. Build the in-memory graph store (CSR adjacency + reverse indexes).
  storage::Graph graph(std::move(data.network));

  // 3. A BI read: BI 1 "Posting summary".
  bi::Bi1Params bi1;
  bi1.date = core::DateFromCivil(2013, 1, 1);
  std::printf("\nBI 1 — posting summary before %s:\n",
              core::FormatDate(bi1.date).c_str());
  std::printf("%6s %10s %9s %9s %8s %7s\n", "year", "type", "lengthCat",
              "count", "avgLen", "pct");
  for (const bi::Bi1Row& row : bi::RunBi1(graph, bi1)) {
    std::printf("%6d %10s %9d %9lld %8.1f %6.1f%%\n", row.year,
                row.is_comment ? "comment" : "post", row.length_category,
                static_cast<long long>(row.message_count),
                row.average_message_length,
                100.0 * row.percentage_of_messages);
  }

  // 4. An Interactive read: IC 13 shortest path between two persons.
  core::Id a = graph.PersonAt(0).id;
  core::Id b = graph.PersonAt(static_cast<uint32_t>(graph.NumPersons() / 2)).id;
  interactive::Ic13Row path = interactive::RunIc13(graph, {a, b});
  std::printf("\nIC 13 — shortest knows-path between person %lld and %lld: "
              "%d hops\n",
              static_cast<long long>(a), static_cast<long long>(b),
              path.shortest_path_length);
  return 0;
}

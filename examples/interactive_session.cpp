// Interactive session: simulates one user's session against the store —
// profile loads, feed reads, friend lookups, a new post, a like — the
// user-centric scenario the Interactive workload models (spec §4).
//
//   ./interactive_session [num_persons]

#include <cstdio>
#include <cstdlib>

#include "datagen/datagen.h"
#include "interactive/interactive.h"
#include "storage/graph.h"

int main(int argc, char** argv) {
  using namespace snb;  // NOLINT

  datagen::DatagenConfig config;
  config.num_persons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;
  datagen::GeneratedData data = datagen::Generate(config);
  storage::Graph graph(std::move(data.network));

  // Log in as the best-connected person.
  uint32_t me_idx = 0;
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (graph.Knows().Degree(p) > graph.Knows().Degree(me_idx)) me_idx = p;
  }
  core::Id me = graph.PersonAt(me_idx).id;

  auto profile = interactive::RunIs1(graph, me);
  std::printf("Logged in as %s %s (person %lld, %zu friends)\n",
              profile[0].first_name.c_str(), profile[0].last_name.c_str(),
              static_cast<long long>(me), graph.Knows().Degree(me_idx));

  std::printf("\n-- Friend list (IS 3, newest friendships first) --\n");
  auto friends = interactive::RunIs3(graph, me);
  for (size_t i = 0; i < friends.size() && i < 5; ++i) {
    std::printf("  %s %s (since %s)\n", friends[i].first_name.c_str(),
                friends[i].last_name.c_str(),
                core::FormatDateTime(friends[i].friendship_creation_date)
                    .c_str());
  }

  std::printf("\n-- News feed (IC 2: recent messages by friends) --\n");
  auto feed = interactive::RunIc2(graph, {me, core::DateFromCivil(2013, 1, 1)});
  for (size_t i = 0; i < feed.size() && i < 5; ++i) {
    std::printf("  [%s] %s %s: %.60s\n",
                core::FormatDateTime(feed[i].creation_date).c_str(),
                feed[i].first_name.c_str(), feed[i].last_name.c_str(),
                feed[i].content.c_str());
  }

  std::printf("\n-- Who liked my content? (IC 7: recent likers) --\n");
  for (const auto& liker : interactive::RunIc7(graph, {me})) {
    std::printf("  %s %s liked message %lld after %d minutes%s\n",
                liker.first_name.c_str(), liker.last_name.c_str(),
                static_cast<long long>(liker.message_id),
                liker.minutes_latency, liker.is_new ? "  [not a friend!]" : "");
    break;  // top one is enough for the demo
  }

  std::printf("\n-- Friend recommendations (IC 10) --\n");
  auto recs = interactive::RunIc10(graph, {me, 6});
  for (size_t i = 0; i < recs.size() && i < 3; ++i) {
    std::printf("  %s %s from %s (interest score %lld)\n",
                recs[i].first_name.c_str(), recs[i].last_name.c_str(),
                recs[i].city_name.c_str(),
                static_cast<long long>(recs[i].common_interest_score));
  }

  // Write path: post to my wall, then a friend likes it (IU 6 + IU 2).
  std::printf("\n-- Posting an update (IU 6) --\n");
  uint32_t wall = storage::kNoIdx;
  graph.PersonModerates().ForEach(me_idx, [&](uint32_t forum) {
    if (graph.ForumAt(forum).kind == core::ForumKind::kWall) wall = forum;
  });
  core::Post post;
  post.id = static_cast<core::Id>(graph.NumPosts()) + 1000000;
  post.creation_date = core::DateTimeFromCivil(2012, 12, 30, 12, 0, 0);
  post.creator = me;
  post.forum = graph.ForumAt(wall).id;
  post.country = graph.PlaceAt(graph.PersonCountry(me_idx)).id;
  post.language = "en";
  post.content = "Trying out the new analytics dashboard!";
  post.length = static_cast<int32_t>(post.content.size());
  post.browser_used = profile[0].browser_used;
  post.location_ip = profile[0].location_ip;
  graph.AddPost(post);
  std::printf("  posted message %lld to \"%s\"\n",
              static_cast<long long>(post.id),
              graph.ForumAt(wall).title.c_str());

  if (!friends.empty()) {
    graph.AddLikePost(friends[0].person_id, post.id,
                      post.creation_date + core::kMillisPerHour);
    std::printf("  %s liked it an hour later (IU 2)\n",
                friends[0].first_name.c_str());
  }

  auto replies = interactive::RunIs7(graph, post.id, /*is_post=*/true);
  auto likers_check = interactive::RunIc7(graph, {me});
  std::printf("  post now visible through IS 7 (%zu replies) and IC 7 "
              "(top liker: %s)\n",
              replies.size(),
              likers_check.empty() ? "-"
                                   : likers_check[0].first_name.c_str());
  std::printf("\nSession complete.\n");
  return 0;
}

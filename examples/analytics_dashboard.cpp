// Analytics dashboard: the "business-critical questions" scenario the BI
// workload motivates — a social-network operator's monthly report built
// from BI queries over the public API.
//
//   ./analytics_dashboard [num_persons]

#include <cstdio>
#include <cstdlib>

#include "bi/bi.h"
#include "datagen/datagen.h"
#include "storage/graph.h"

namespace {

void Header(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snb;  // NOLINT

  datagen::DatagenConfig config;
  config.num_persons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1200;
  datagen::GeneratedData data = datagen::Generate(config);
  storage::Graph graph(std::move(data.network));

  std::printf("SNB Analytics — operator report over %zu persons, "
              "%zu messages\n",
              graph.NumPersons(), graph.NumMessages());

  Header("Content mix (BI 1: posting summary)");
  bi::Bi1Params bi1{core::DateFromCivil(2013, 1, 1)};
  for (const bi::Bi1Row& row : bi::RunBi1(graph, bi1)) {
    if (row.year != 2012) continue;  // focus the report on the last year
    std::printf("  2012 %-8s length-cat %d: %6lld messages (%.1f%%)\n",
                row.is_comment ? "comments" : "posts", row.length_category,
                static_cast<long long>(row.message_count),
                100 * row.percentage_of_messages);
  }

  Header("Trending content (BI 12: most-liked recent messages)");
  bi::Bi12Params bi12{core::DateFromCivil(2012, 1, 1), 2};
  auto trending = bi::RunBi12(graph, bi12);
  for (size_t i = 0; i < trending.size() && i < 5; ++i) {
    std::printf("  #%zu  message %lld by %s %s — %lld likes\n", i + 1,
                static_cast<long long>(trending[i].message_id),
                trending[i].creator_first_name.c_str(),
                trending[i].creator_last_name.c_str(),
                static_cast<long long>(trending[i].like_count));
  }

  Header("Hot markets (BI 13: popular tags per month, largest country)");
  // Pick the country with the most persons.
  uint32_t best_country = storage::kNoIdx;
  size_t best_count = 0;
  for (uint32_t place = 0; place < graph.NumPlaces(); ++place) {
    if (graph.PlaceAt(place).type != core::PlaceType::kCountry) continue;
    size_t n = graph.CountryPersons().Degree(place);
    if (n > best_count) {
      best_count = n;
      best_country = place;
    }
  }
  const std::string country = graph.PlaceAt(best_country).name;
  std::printf("  market: %s (%zu members)\n", country.c_str(), best_count);
  auto months = bi::RunBi13(graph, {country});
  for (size_t i = 0; i < months.size() && i < 3; ++i) {
    std::printf("  %d-%02d:", months[i].year, months[i].month);
    for (const auto& [tag, count] : months[i].popular_tags) {
      std::printf("  %s(%lld)", tag.c_str(), static_cast<long long>(count));
    }
    std::printf("\n");
  }

  Header("Community health (BI 21: zombie accounts)");
  auto zombies = bi::RunBi21(graph, {country, core::DateFromCivil(2012, 6, 1)});
  std::printf("  %zu dormant accounts in %s; highest zombie scores:\n",
              zombies.size(), country.c_str());
  for (size_t i = 0; i < zombies.size() && i < 3; ++i) {
    std::printf("    person %lld: score %.2f (%lld/%lld zombie likes)\n",
                static_cast<long long>(zombies[i].zombie_id),
                zombies[i].zombie_score,
                static_cast<long long>(zombies[i].zombie_like_count),
                static_cast<long long>(zombies[i].total_like_count));
  }

  Header("Engagement graph (BI 17: friend triangles per market)");
  for (const char* c : {"China", "India", "United States", "Germany"}) {
    auto rows = bi::RunBi17(graph, {c});
    std::printf("  %-15s %lld triangles\n", c,
                static_cast<long long>(rows[0].count));
  }

  Header("Topic taxonomy rollup (BI 20: high-level topics)");
  for (const bi::Bi20Row& row :
       bi::RunBi20(graph, {{"Person", "Work", "Sport", "Technology"}})) {
    std::printf("  %-12s %lld messages\n", row.tag_class.c_str(),
                static_cast<long long>(row.message_count));
  }

  std::printf("\nReport complete.\n");
  return 0;
}

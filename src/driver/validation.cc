#include "driver/validation.h"

#include <algorithm>

#include "bi/bi.h"
#include "bi/naive.h"

namespace snb::driver {

ValidationReport ValidateBiImplementations(
    const storage::Graph& graph, const params::WorkloadParameters& params,
    size_t bindings_per_query) {
  ValidationReport report;

  auto check = [&](const std::string& name, const auto& bindings,
                   auto&& optimized, auto&& naive_fn) {
    ++report.queries_checked;
    size_t n = std::min(bindings_per_query, bindings.size());
    bool mismatch = false;
    for (size_t i = 0; i < n; ++i) {
      ++report.bindings_checked;
      if (optimized(graph, bindings[i]) != naive_fn(graph, bindings[i])) {
        mismatch = true;
      }
    }
    if (mismatch) report.mismatched_queries.push_back(name);
  };

  check("BI 1", params.bi1, bi::RunBi1, bi::naive::RunBi1);
  check("BI 2", params.bi2, bi::RunBi2, bi::naive::RunBi2);
  check("BI 3", params.bi3, bi::RunBi3, bi::naive::RunBi3);
  check("BI 4", params.bi4, bi::RunBi4, bi::naive::RunBi4);
  check("BI 5", params.bi5, bi::RunBi5, bi::naive::RunBi5);
  check("BI 6", params.bi6, bi::RunBi6, bi::naive::RunBi6);
  check("BI 7", params.bi7, bi::RunBi7, bi::naive::RunBi7);
  check("BI 8", params.bi8, bi::RunBi8, bi::naive::RunBi8);
  check("BI 9", params.bi9, bi::RunBi9, bi::naive::RunBi9);
  check("BI 10", params.bi10, bi::RunBi10, bi::naive::RunBi10);
  check("BI 11", params.bi11, bi::RunBi11, bi::naive::RunBi11);
  check("BI 12", params.bi12, bi::RunBi12, bi::naive::RunBi12);
  check("BI 13", params.bi13, bi::RunBi13, bi::naive::RunBi13);
  check("BI 14", params.bi14, bi::RunBi14, bi::naive::RunBi14);
  check("BI 15", params.bi15, bi::RunBi15, bi::naive::RunBi15);
  check("BI 16", params.bi16, bi::RunBi16, bi::naive::RunBi16);
  check("BI 17", params.bi17, bi::RunBi17, bi::naive::RunBi17);
  check("BI 18", params.bi18, bi::RunBi18, bi::naive::RunBi18);
  check("BI 19", params.bi19, bi::RunBi19, bi::naive::RunBi19);
  check("BI 20", params.bi20, bi::RunBi20, bi::naive::RunBi20);
  check("BI 21", params.bi21, bi::RunBi21, bi::naive::RunBi21);
  check("BI 22", params.bi22, bi::RunBi22, bi::naive::RunBi22);
  check("BI 23", params.bi23, bi::RunBi23, bi::naive::RunBi23);
  check("BI 24", params.bi24, bi::RunBi24, bi::naive::RunBi24);
  check("BI 25", params.bi25, bi::RunBi25, bi::naive::RunBi25);

  return report;
}

}  // namespace snb::driver

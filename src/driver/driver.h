// The workload driver (spec §3.4 load definition, §6.2 run rules).
//
// Executes the Interactive workload against a live graph: update operations
// are replayed at their simulation timestamps; one complex read of type i is
// interleaved every frequency[i] updates (Table 3.1/B.1); each complex read
// is followed by short-read sequences with geometrically decaying
// probability, parameterized from previous results. A Time Compression
// Ratio maps simulation time to wall-clock time; the results log records
// scheduled vs actual start for the §6.2 95 %-on-time audit check.
//
// The same driver also runs the BI read mix (sequential analytic queries,
// one stream), which is what the BI workload draft prescribes.

#ifndef SNB_DRIVER_DRIVER_H_
#define SNB_DRIVER_DRIVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/scale_factors.h"
#include "datagen/datagen.h"
#include "params/parameter_curation.h"
#include "sched/histogram.h"
#include "sched/scheduler.h"
#include "storage/graph.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace snb::driver {

struct DriverConfig {
  /// Scale-factor name used to look up the complex-read frequencies.
  std::string sf_name = "1";

  /// Simulation-milliseconds executed per wall-clock millisecond. The
  /// spec's Time Compression Ratio "squeezes" the workload; large values
  /// approximate as-fast-as-possible.
  double acceleration = 1e6;

  /// When true, never sleeps (throughput mode); scheduled times are still
  /// tracked for the on-time metric.
  bool as_fast_as_possible = true;

  /// Caps the number of update operations consumed (0 = all).
  size_t max_updates = 0;

  /// Initial probability of issuing a short-read sequence after a complex
  /// read, halving per issued sequence (spec §3.4).
  double short_read_probability = 0.5;

  uint64_t seed = 42;

  /// --- BI multi-stream mode (RunBiWorkloadMultiStream) ---

  /// Concurrent BI query streams (1 = the power run's sequential stream).
  size_t bi_streams = 1;

  /// Worker threads shared by the streams; 0 = hardware concurrency.
  size_t bi_workers = 0;

  /// Queries of one stream allowed in flight at once (admission control).
  size_t bi_max_in_flight_per_stream = 1;

  /// Per-query cooperative deadline in milliseconds; 0 disables.
  double bi_query_deadline_ms = 0;

  /// Engine choice for power runs (one stream, several workers):
  /// kSequential never fans out, kMorsel always does, kAdaptive lets the
  /// calibrated cost model refuse fan-out per query. Throughput runs always
  /// use streams-only parallelism regardless; see SchedulerConfig.
  sched::DispatchPolicy bi_dispatch = sched::DispatchPolicy::kAdaptive;
};

struct OperationStats {
  size_t count = 0;
  double total_ms = 0;
  double max_ms = 0;
  /// Bounded-memory latency record (replaces the old unbounded per-sample
  /// vector); percentiles are exact within one histogram bucket ratio.
  sched::LatencyHistogram latencies;

  /// Folds one latency sample into count/total/max and the histogram.
  void Record(double latency_ms) {
    ++count;
    total_ms += latency_ms;
    if (latency_ms > max_ms) max_ms = latency_ms;
    latencies.Record(latency_ms);
  }

  double MeanMs() const { return count == 0 ? 0 : total_ms / count; }
  double PercentileMs(double p) const { return latencies.PercentileMs(p); }
};

/// One row of the results log (spec §6.2: scheduled vs actual start per
/// operation feed the 95 %-on-time audit check).
struct ResultsLogEntry {
  std::string operation;
  double scheduled_start_ms = 0;
  double actual_start_ms = 0;
  double duration_ms = 0;
  size_t result_rows = 0;
};

/// Writes the results log as results_log.csv ('|'-separated, with header).
util::Status WriteResultsLog(const std::vector<ResultsLogEntry>& log,
                             const std::string& path);

struct DriverReport {
  size_t total_operations = 0;
  size_t update_operations = 0;
  size_t complex_reads = 0;
  size_t short_reads = 0;
  /// Queries abandoned by the cooperative per-query deadline (BI
  /// multi-stream mode only; 0 elsewhere).
  size_t cancelled_reads = 0;
  double wall_seconds = 0;
  double throughput_ops_per_sec = 0;
  /// Fraction of operations with actual_start - scheduled_start < 1 s
  /// (spec §6.2 requires ≥ 95 %). Always 1.0 in as-fast-as-possible mode.
  double on_time_fraction = 1.0;
  /// Adaptive-dispatch tally (BI multi-stream power runs only; 0 elsewhere):
  /// morsel-capable queries the cost model fanned out vs kept sequential.
  size_t bi_morsel_chosen = 0;
  size_t bi_morsel_refused = 0;

  /// Per operation type ("IC 1".."IC 14", "IS 1".."IS 7", "IU 1".."IU 8").
  std::map<std::string, OperationStats> per_operation;

  /// Full per-operation log in execution order (results_log.csv content).
  std::vector<ResultsLogEntry> results_log;
};

/// Runs the Interactive workload: replays `updates` into `graph`,
/// interleaving complex and short reads per the SF frequencies.
DriverReport RunInteractiveWorkload(storage::Graph& graph,
                                    const std::vector<datagen::UpdateEvent>& updates,
                                    const params::WorkloadParameters& params,
                                    const DriverConfig& config);

/// Runs one sequential BI stream: every BI query once per parameter binding.
DriverReport RunBiWorkload(const storage::Graph& graph,
                           const params::WorkloadParameters& params,
                           size_t bindings_per_query);

/// Runs the BI workload concurrently with the insert stream — the mixed
/// read/write mode the spec's §5.2 task-force note points towards (and
/// which the later BI versions adopted): one BI read is issued every
/// `updates_per_read` update operations, round-robin over the 25 query
/// templates. Returns combined statistics.
DriverReport RunBiReadWriteWorkload(storage::Graph& graph,
                                    const std::vector<datagen::UpdateEvent>& updates,
                                    const params::WorkloadParameters& params,
                                    size_t updates_per_read,
                                    size_t max_updates = 0);

/// Runs the BI stream with inter-query parallelism: every (query, binding)
/// pair becomes a pool task over the read-only graph (CP-6.1 territory:
/// concurrent analytic streams). Aggregated counts match the sequential
/// run; wall time shrinks with cores.
DriverReport RunBiWorkloadParallel(const storage::Graph& graph,
                                   const params::WorkloadParameters& params,
                                   size_t bindings_per_query,
                                   util::ThreadPool& pool);

/// Runs `config.bi_streams` concurrent BI query streams through the
/// sched:: scheduler (the paper's throughput run): each stream is a permuted
/// sequence of the 25 reads, admission-controlled on a fixed worker pool,
/// with per-query cooperative deadlines. Per-stream sequential semantics
/// (bi_max_in_flight_per_stream = 1) match RunBiWorkload's results exactly.
DriverReport RunBiWorkloadMultiStream(const storage::Graph& graph,
                                      const params::WorkloadParameters& params,
                                      size_t bindings_per_query,
                                      const DriverConfig& config);

}  // namespace snb::driver

#endif  // SNB_DRIVER_DRIVER_H_

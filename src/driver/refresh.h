// Crash-safe batched refresh — the BI workload's defining operation
// (PAPER.md §5): daily microbatches of updates applied *atomically* between
// read windows, with write-ahead durability and retry-with-backoff on
// transient failures.
//
// Execution model per batch (one or more whole simulation days):
//
//   1. LOG    BatchBegin(day) + every event + BatchCommit(day) into the WAL
//             (storage/wal.h). After the commit fsync the batch is durable:
//             a crash anywhere later is repaired by RecoveryManager replay.
//             A failure mid-log truncates the partial batch (Wal::AbortBatch)
//             and, if transient, retries with exponential backoff + jitter.
//   2. APPLY  Build a shadow graph — a private copy of the current snapshot
//             (Graph(ExportNetwork(*live))) — apply the batch to it, then
//             atomically publish it through GraphHandle::Replace. Readers
//             hold shared_ptr snapshots, so concurrent query streams keep
//             serving the pre-batch graph for as long as they need it and
//             *never observe a half-applied day*; a failed apply simply
//             discards the shadow and retries. Copy-per-batch trades memory
//             bandwidth for zero read-side coordination — the right trade
//             at BI's one-batch-per-day refresh cadence (a delta-apply
//             variant could reuse the same handle contract later).
//   3. CHECK  Optionally every N batches: export the published snapshot as
//             a new checkpoint (storage/recovery.h rotation protocol), which
//             bounds recovery replay time.
//
// Resume: after RecoveryManager::Recover, pass last_committed_day as
// `resume_after_day`; the driver skips batches the store already contains,
// so crash → recover → rerun converges to the same final state as a run
// that never crashed (tests/wal_recovery_test.cc proves bit-equality on
// BI 1/6/12).

#ifndef SNB_DRIVER_REFRESH_H_
#define SNB_DRIVER_REFRESH_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/date_time.h"
#include "datagen/datagen.h"
#include "storage/graph.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace snb::driver {

/// Publication point for the refresh loop's snapshots. Readers call
/// Current() and may hold the returned shared_ptr across a whole query (or
/// stream); the writer publishes a new snapshot with Replace(). Old
/// snapshots stay alive until their last reader drops them.
class GraphHandle {
 public:
  explicit GraphHandle(std::shared_ptr<const storage::Graph> graph)
      : graph_(std::move(graph)) {}

  std::shared_ptr<const storage::Graph> Current() const SNB_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return graph_;
  }

  void Replace(std::shared_ptr<const storage::Graph> graph)
      SNB_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    graph_ = std::move(graph);
  }

 private:
  mutable util::Mutex mu_{SNB_LOCK_SITE("driver.graph_handle.mu")};
  std::shared_ptr<const storage::Graph> graph_ SNB_GUARDED_BY(mu_);
};

struct RetryConfig {
  /// Attempts per phase (log / apply / checkpoint) before giving up; the
  /// first attempt counts, so 1 means "no retries".
  int max_attempts = 5;

  /// Exponential backoff: sleep initial_backoff_ms * multiplier^k between
  /// attempt k and k+1, each scaled by a uniform jitter in
  /// [1 - jitter, 1 + jitter] to de-synchronize colliding retriers.
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  double jitter = 0.2;
};

struct RefreshConfig {
  /// Simulation days per atomic batch (1 = the BI daily microbatch).
  int batch_days = 1;

  RetryConfig retry;

  /// WAL durability policy (kOnCommit = the paper's contract).
  storage::WalSyncPolicy wal_sync = storage::WalSyncPolicy::kOnCommit;

  /// Export a rotated checkpoint every N applied batches; 0 = never.
  /// Checkpoints bound recovery replay but cost an O(graph) export.
  int checkpoint_every_batches = 0;

  /// Batches whose (last) day is <= this are skipped — set it to
  /// RecoveryResult::last_committed_day to resume after a crash.
  core::Date resume_after_day = std::numeric_limits<core::Date>::min();

  /// Seed for retry jitter (deterministic runs stay deterministic).
  uint64_t seed = 42;

  /// Compact the shadow before publishing when a batch left tombstones
  /// (export the live subgraph and rebuild, bumping the compaction epoch).
  /// Published snapshots are then always tombstone-free; readers never pay
  /// the filtered scan paths. Tests that exercise tombstoned reads set
  /// this to false to publish the bitmaps as-is.
  bool compact_deletes = true;
};

struct RefreshReport {
  size_t batches_applied = 0;
  size_t events_applied = 0;
  /// Events skipped by resume_after_day.
  size_t events_skipped = 0;
  /// Failed attempts that were retried (any phase).
  size_t retries = 0;
  size_t checkpoints_written = 0;
  core::Date last_committed_day = std::numeric_limits<core::Date>::min();
  double wall_seconds = 0;
};

/// Applies `updates` to the store at `store_dir` in atomic daily batches,
/// publishing each committed batch through `handle`. The handle must hold
/// the store's current graph (fresh InitStore load or RecoveryResult). On
/// a non-transient error (or transient retries exhausted) returns the
/// error; the WAL then holds every *committed* batch and recovery brings
/// store and memory back in sync.
util::StatusOr<RefreshReport> RunBatchedRefresh(
    const std::string& store_dir, GraphHandle& handle,
    const std::vector<datagen::UpdateEvent>& updates,
    const RefreshConfig& config);

}  // namespace snb::driver

#endif  // SNB_DRIVER_REFRESH_H_

#include "driver/driver.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "bi/bi.h"
#include "interactive/interactive.h"
#include "interactive/updates.h"
#include "sched/scheduler.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "validate/validator.h"

// With SNB_CHECK_INVARIANTS defined (cmake -DSNB_CHECK_INVARIANTS=ON), the
// driver re-validates every representation invariant after phases that
// mutate the store. A violation aborts with the full per-invariant report —
// the debug mode for chasing update-path corruption.
#ifdef SNB_CHECK_INVARIANTS
#define SNB_VALIDATE_STORE(graph)                                     \
  do {                                                                \
    ::snb::validate::ValidationReport snb_vr =                        \
        ::snb::validate::ValidateGraph(graph);                        \
    SNB_CHECK_MSG(snb_vr.ok(), snb_vr.ToString().c_str());            \
  } while (0)
#else
#define SNB_VALIDATE_STORE(graph) \
  do {                            \
  } while (0)
#endif

namespace snb::driver {

using Clock = std::chrono::steady_clock;

namespace {

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

class Recorder {
 public:
  explicit Recorder(DriverReport& report) : report_(report) {}

  template <typename Fn>
  size_t Run(const std::string& op, double scheduled_ms,
             Clock::time_point t0, Fn&& fn) {
    double actual_ms = MsSince(t0);
    size_t rows = fn();
    double end_ms = MsSince(t0);
    double latency = end_ms - actual_ms;
    report_.per_operation[op].Record(latency);
    ++report_.total_operations;
    report_.results_log.push_back(
        {op, scheduled_ms, actual_ms, latency, rows});
    if (actual_ms - scheduled_ms >= 1000.0) ++late_;
    return rows;
  }

  size_t late() const { return late_; }

 private:
  DriverReport& report_;
  size_t late_ = 0;
};

}  // namespace

DriverReport RunInteractiveWorkload(
    storage::Graph& graph, const std::vector<datagen::UpdateEvent>& updates,
    const params::WorkloadParameters& params, const DriverConfig& config) {
  DriverReport report;
  Recorder recorder(report);
  util::Rng rng(config.seed, uint64_t{0xd417e});

  const core::InteractiveFrequencies freq =
      core::FrequenciesForScaleFactor(config.sf_name);

  // Cursors into the parameter lists, advanced round-robin.
  size_t cursor[14] = {0};
  // Update countdowns per complex-read type.
  int32_t countdown[14];
  for (int i = 0; i < 14; ++i) countdown[i] = freq.freq[i];

  // Short-read substitution state, fed from complex-read results.
  std::vector<core::Id> recent_persons;
  std::vector<std::pair<core::Id, bool>> recent_messages;  // (id, is_post)
  auto remember_person = [&](core::Id id) {
    recent_persons.push_back(id);
    if (recent_persons.size() > 64) {
      recent_persons.erase(recent_persons.begin());
    }
  };
  auto remember_message = [&](core::Id id, bool is_post) {
    recent_messages.emplace_back(id, is_post);
    if (recent_messages.size() > 64) {
      recent_messages.erase(recent_messages.begin());
    }
  };

  const Clock::time_point t0 = Clock::now();
  const core::DateTime sim_t0 =
      updates.empty() ? 0 : updates.front().timestamp;
  auto scheduled_ms_of = [&](core::DateTime sim_t) {
    return static_cast<double>(sim_t - sim_t0) / config.acceleration;
  };

  auto maybe_pace = [&](double scheduled_ms) {
    if (config.as_fast_as_possible) return;
    double now = MsSince(t0);
    if (now < scheduled_ms) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(scheduled_ms - now));
    }
  };

  auto run_short_read_sequence = [&](bool person_centric,
                                     double scheduled_ms) {
    double p = config.short_read_probability;
    while (rng.NextDouble() < p) {
      p *= 0.5;
      if (person_centric && !recent_persons.empty()) {
        core::Id person = recent_persons[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(recent_persons.size()) - 1))];
        recorder.Run("IS 1", scheduled_ms, t0, [&] {
          return interactive::RunIs1(graph, person).size();
        });
        recorder.Run("IS 2", scheduled_ms, t0, [&] {
          auto rows = interactive::RunIs2(graph, person);
          for (const auto& r : rows) {
            remember_message(r.original_post_id, true);
          }
          return rows.size();
        });
        recorder.Run("IS 3", scheduled_ms, t0, [&] {
          auto rows = interactive::RunIs3(graph, person);
          for (const auto& r : rows) remember_person(r.person_id);
          return rows.size();
        });
        ++report.short_reads;
        report.short_reads += 2;
      } else if (!recent_messages.empty()) {
        auto [message, is_post] =
            recent_messages[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(recent_messages.size()) - 1))];
        recorder.Run("IS 4", scheduled_ms, t0, [&] {
          return interactive::RunIs4(graph, message, is_post).size();
        });
        recorder.Run("IS 5", scheduled_ms, t0, [&] {
          auto rows = interactive::RunIs5(graph, message, is_post);
          for (const auto& r : rows) remember_person(r.person_id);
          return rows.size();
        });
        recorder.Run("IS 6", scheduled_ms, t0, [&] {
          return interactive::RunIs6(graph, message, is_post).size();
        });
        recorder.Run("IS 7", scheduled_ms, t0, [&] {
          auto rows = interactive::RunIs7(graph, message, is_post);
          for (const auto& r : rows) remember_person(r.author_id);
          return rows.size();
        });
        report.short_reads += 4;
      } else {
        break;
      }
    }
  };

  auto run_complex = [&](int type, double scheduled_ms) {
    const std::string op = "IC " + std::to_string(type + 1);
    bool person_centric = true;
    switch (type + 1) {
      case 1: {
        auto& ps = params.ic1;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          auto rows =
              interactive::RunIc1(graph, ps[cursor[type]++ % ps.size()]);
          for (const auto& r : rows) remember_person(r.friend_id);
          return rows.size();
        });
        break;
      }
      case 2: {
        auto& ps = params.ic2;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          auto rows =
              interactive::RunIc2(graph, ps[cursor[type]++ % ps.size()]);
          for (const auto& r : rows) remember_person(r.person_id);
          return rows.size();
        });
        person_centric = false;
        break;
      }
      case 3: {
        auto& ps = params.ic3;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          return interactive::RunIc3(graph, ps[cursor[type]++ % ps.size()])
              .size();
        });
        break;
      }
      case 4: {
        auto& ps = params.ic4;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          return interactive::RunIc4(graph, ps[cursor[type]++ % ps.size()])
              .size();
        });
        break;
      }
      case 5: {
        auto& ps = params.ic5;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          return interactive::RunIc5(graph, ps[cursor[type]++ % ps.size()])
              .size();
        });
        break;
      }
      case 6: {
        auto& ps = params.ic6;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          return interactive::RunIc6(graph, ps[cursor[type]++ % ps.size()])
              .size();
        });
        break;
      }
      case 7: {
        auto& ps = params.ic7;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          auto rows =
              interactive::RunIc7(graph, ps[cursor[type]++ % ps.size()]);
          for (const auto& r : rows) remember_person(r.person_id);
          return rows.size();
        });
        person_centric = false;
        break;
      }
      case 8: {
        auto& ps = params.ic8;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          auto rows =
              interactive::RunIc8(graph, ps[cursor[type]++ % ps.size()]);
          for (const auto& r : rows) remember_person(r.person_id);
          return rows.size();
        });
        person_centric = false;
        break;
      }
      case 9: {
        auto& ps = params.ic9;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          auto rows =
              interactive::RunIc9(graph, ps[cursor[type]++ % ps.size()]);
          for (const auto& r : rows) remember_person(r.person_id);
          return rows.size();
        });
        break;
      }
      case 10: {
        auto& ps = params.ic10;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          auto rows =
              interactive::RunIc10(graph, ps[cursor[type]++ % ps.size()]);
          for (const auto& r : rows) remember_person(r.person_id);
          return rows.size();
        });
        break;
      }
      case 11: {
        auto& ps = params.ic11;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          return interactive::RunIc11(graph, ps[cursor[type]++ % ps.size()])
              .size();
        });
        break;
      }
      case 12: {
        auto& ps = params.ic12;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          auto rows =
              interactive::RunIc12(graph, ps[cursor[type]++ % ps.size()]);
          for (const auto& r : rows) remember_person(r.person_id);
          return rows.size();
        });
        break;
      }
      case 13: {
        auto& ps = params.ic13;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          interactive::RunIc13(graph, ps[cursor[type]++ % ps.size()]);
          return size_t{1};
        });
        break;
      }
      case 14: {
        auto& ps = params.ic14;
        if (ps.empty()) return;
        recorder.Run(op, scheduled_ms, t0, [&] {
          return interactive::RunIc14(graph, ps[cursor[type]++ % ps.size()])
              .size();
        });
        break;
      }
      default:
        SNB_UNREACHABLE();
    }
    ++report.complex_reads;
    run_short_read_sequence(person_centric, scheduled_ms);
  };

  size_t limit = config.max_updates == 0 ? updates.size()
                                         : std::min(config.max_updates,
                                                    updates.size());
  for (size_t u = 0; u < limit; ++u) {
    const datagen::UpdateEvent& event = updates[u];
    double scheduled_ms = scheduled_ms_of(event.timestamp);
    maybe_pace(scheduled_ms);
    const std::string op = "IU " + std::to_string(static_cast<int>(event.kind));
    recorder.Run(op, scheduled_ms, t0, [&] {
      SNB_CHECK(interactive::ApplyUpdate(graph, event).ok());
      return size_t{1};
    });
    ++report.update_operations;
    // Seed the short-read parameter pool from the update itself.
    switch (event.kind) {
      case datagen::UpdateKind::kAddPerson:
        remember_person(std::get<core::Person>(event.payload).id);
        break;
      case datagen::UpdateKind::kAddLikePost:
      case datagen::UpdateKind::kAddLikeComment: {
        const core::Like& like = std::get<core::Like>(event.payload);
        remember_person(like.person);
        remember_message(like.message, like.is_post);
        break;
      }
      case datagen::UpdateKind::kAddPost:
        remember_message(std::get<core::Post>(event.payload).id, true);
        break;
      case datagen::UpdateKind::kAddComment:
        remember_message(std::get<core::Comment>(event.payload).id, false);
        break;
      case datagen::UpdateKind::kAddKnows:
        remember_person(std::get<core::Knows>(event.payload).person1);
        break;
      default:
        break;
    }
    for (int type = 0; type < 14; ++type) {
      if (--countdown[type] == 0) {
        countdown[type] = freq.freq[type];
        run_complex(type, scheduled_ms);
      }
    }
  }
  SNB_VALIDATE_STORE(graph);

  report.wall_seconds = MsSince(t0) / 1000.0;
  report.throughput_ops_per_sec =
      report.wall_seconds == 0
          ? 0
          : static_cast<double>(report.total_operations) / report.wall_seconds;
  report.on_time_fraction =
      report.total_operations == 0
          ? 1.0
          : 1.0 - static_cast<double>(recorder.late()) /
                      static_cast<double>(report.total_operations);
  return report;
}

DriverReport RunBiWorkload(const storage::Graph& graph,
                           const params::WorkloadParameters& params,
                           size_t bindings_per_query) {
  DriverReport report;
  Recorder recorder(report);
  const Clock::time_point t0 = Clock::now();

  auto run = [&](const std::string& op, auto&& bindings, auto&& query) {
    size_t n = std::min(bindings_per_query, bindings.size());
    for (size_t i = 0; i < n; ++i) {
      recorder.Run(op, 0.0, t0,
                   [&] { return query(graph, bindings[i]).size(); });
    }
  };

  run("BI 1", params.bi1, bi::RunBi1);
  run("BI 2", params.bi2, bi::RunBi2);
  run("BI 3", params.bi3, bi::RunBi3);
  run("BI 4", params.bi4, bi::RunBi4);
  run("BI 5", params.bi5, bi::RunBi5);
  run("BI 6", params.bi6, bi::RunBi6);
  run("BI 7", params.bi7, bi::RunBi7);
  run("BI 8", params.bi8, bi::RunBi8);
  run("BI 9", params.bi9, bi::RunBi9);
  run("BI 10", params.bi10, bi::RunBi10);
  run("BI 11", params.bi11, bi::RunBi11);
  run("BI 12", params.bi12, bi::RunBi12);
  run("BI 13", params.bi13, bi::RunBi13);
  run("BI 14", params.bi14, bi::RunBi14);
  run("BI 15", params.bi15, bi::RunBi15);
  run("BI 16", params.bi16, bi::RunBi16);
  run("BI 17", params.bi17, bi::RunBi17);
  run("BI 18", params.bi18, bi::RunBi18);
  run("BI 19", params.bi19, bi::RunBi19);
  run("BI 20", params.bi20, bi::RunBi20);
  run("BI 21", params.bi21, bi::RunBi21);
  run("BI 22", params.bi22, bi::RunBi22);
  run("BI 23", params.bi23, bi::RunBi23);
  run("BI 24", params.bi24, bi::RunBi24);
  run("BI 25", params.bi25, bi::RunBi25);

  report.wall_seconds = MsSince(t0) / 1000.0;
  report.throughput_ops_per_sec =
      report.wall_seconds == 0
          ? 0
          : static_cast<double>(report.total_operations) / report.wall_seconds;
  return report;
}


util::Status WriteResultsLog(const std::vector<ResultsLogEntry>& log,
                             const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::IoError("cannot open results log " + path);
  }
  std::fputs(
      "operation|scheduled_start_time|actual_start_time|duration|"
      "result_rows\n",
      f);
  for (const ResultsLogEntry& e : log) {
    std::fprintf(f, "%s|%.3f|%.3f|%.3f|%zu\n", e.operation.c_str(),
                 e.scheduled_start_ms, e.actual_start_ms, e.duration_ms,
                 e.result_rows);
  }
  if (std::fclose(f) != 0) {
    return util::Status::IoError("fclose failed for results log");
  }
  return util::Status::Ok();
}


DriverReport RunBiWorkloadParallel(const storage::Graph& graph,
                                   const params::WorkloadParameters& params,
                                   size_t bindings_per_query,
                                   util::ThreadPool& pool) {
  DriverReport report;
  struct Sample {
    std::string op;
    double latency_ms;
    size_t rows;
  };
  // Workers funnel their samples through the annotated sink; direct access
  // to the vector without the lock is a clang thread-safety error.
  struct SampleSink {
    util::Mutex mu{SNB_LOCK_SITE("driver.sample_sink.mu")};
    std::vector<Sample> samples SNB_GUARDED_BY(mu);
    void Add(Sample s) SNB_EXCLUDES(mu) {
      util::MutexLock lock(mu);
      samples.push_back(std::move(s));
    }
    std::vector<Sample> Take() SNB_EXCLUDES(mu) {
      util::MutexLock lock(mu);
      return std::move(samples);
    }
  };
  SampleSink sink;
  const Clock::time_point t0 = Clock::now();

  auto submit = [&](const std::string& op, auto&& bindings, auto&& query) {
    size_t n = std::min(bindings_per_query, bindings.size());
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([&, op, i] {
        double start = MsSince(t0);
        size_t rows = query(graph, bindings[i]).size();
        double latency = MsSince(t0) - start;
        sink.Add({op, latency, rows});
      });
    }
  };

  submit("BI 1", params.bi1, bi::RunBi1);
  submit("BI 2", params.bi2, bi::RunBi2);
  submit("BI 3", params.bi3, bi::RunBi3);
  submit("BI 4", params.bi4, bi::RunBi4);
  submit("BI 5", params.bi5, bi::RunBi5);
  submit("BI 6", params.bi6, bi::RunBi6);
  submit("BI 7", params.bi7, bi::RunBi7);
  submit("BI 8", params.bi8, bi::RunBi8);
  submit("BI 9", params.bi9, bi::RunBi9);
  submit("BI 10", params.bi10, bi::RunBi10);
  submit("BI 11", params.bi11, bi::RunBi11);
  submit("BI 12", params.bi12, bi::RunBi12);
  submit("BI 13", params.bi13, bi::RunBi13);
  submit("BI 14", params.bi14, bi::RunBi14);
  submit("BI 15", params.bi15, bi::RunBi15);
  submit("BI 16", params.bi16, bi::RunBi16);
  submit("BI 17", params.bi17, bi::RunBi17);
  submit("BI 18", params.bi18, bi::RunBi18);
  submit("BI 19", params.bi19, bi::RunBi19);
  submit("BI 20", params.bi20, bi::RunBi20);
  submit("BI 21", params.bi21, bi::RunBi21);
  submit("BI 22", params.bi22, bi::RunBi22);
  submit("BI 23", params.bi23, bi::RunBi23);
  submit("BI 24", params.bi24, bi::RunBi24);
  submit("BI 25", params.bi25, bi::RunBi25);
  pool.Wait();

  for (const Sample& s : sink.Take()) {
    report.per_operation[s.op].Record(s.latency_ms);
    report.results_log.push_back({s.op, 0.0, 0.0, s.latency_ms, s.rows});
    ++report.total_operations;
  }
  report.wall_seconds = MsSince(t0) / 1000.0;
  report.throughput_ops_per_sec =
      report.wall_seconds == 0
          ? 0
          : static_cast<double>(report.total_operations) / report.wall_seconds;
  return report;
}


DriverReport RunBiWorkloadMultiStream(
    const storage::Graph& graph, const params::WorkloadParameters& params,
    size_t bindings_per_query, const DriverConfig& config) {
  sched::SchedulerConfig sc;
  sc.num_streams = config.bi_streams;
  sc.num_workers = config.bi_workers;
  sc.max_in_flight_per_stream = config.bi_max_in_flight_per_stream;
  sc.bindings_per_query = bindings_per_query;
  sc.query_deadline_ms = config.bi_query_deadline_ms;
  sc.dispatch = config.bi_dispatch;
  sc.seed = config.seed;
  sched::ScheduleResult run = sched::RunStreams(graph, params, sc);

  DriverReport report;
  report.wall_seconds = run.wall_seconds;
  report.complex_reads = run.total_completed;
  report.cancelled_reads = run.total_cancelled;
  report.bi_morsel_chosen = run.morsel_chosen;
  report.bi_morsel_refused = run.morsel_refused;
  for (const sched::StreamResult& stream : run.streams) {
    for (const sched::OpOutcome& o : stream.outcomes) {
      if (o.cancelled) continue;
      report.per_operation[sched::StreamOpName(o.op)].Record(o.latency_ms);
      report.results_log.push_back(
          {sched::StreamOpName(o.op), 0.0, 0.0, o.latency_ms, o.rows});
      ++report.total_operations;
    }
  }
  report.throughput_ops_per_sec =
      report.wall_seconds == 0
          ? 0
          : static_cast<double>(report.total_operations) / report.wall_seconds;
  return report;
}


DriverReport RunBiReadWriteWorkload(
    storage::Graph& graph, const std::vector<datagen::UpdateEvent>& updates,
    const params::WorkloadParameters& params, size_t updates_per_read,
    size_t max_updates) {
  SNB_CHECK_GE(updates_per_read, 1u);
  DriverReport report;
  Recorder recorder(report);
  const Clock::time_point t0 = Clock::now();

  // Round-robin BI read dispatcher.
  size_t next_query = 0;
  size_t cursor[25] = {0};
  auto run_next_read = [&] {
    size_t q = next_query;
    next_query = (next_query + 1) % 25;
    const std::string op = "BI " + std::to_string(q + 1);
    auto dispatch = [&](auto&& bindings, auto&& query) {
      if (bindings.empty()) return;
      recorder.Run(op, 0.0, t0, [&] {
        return query(graph, bindings[cursor[q]++ % bindings.size()]).size();
      });
    };
    switch (q + 1) {
      case 1: dispatch(params.bi1, bi::RunBi1); break;
      case 2: dispatch(params.bi2, bi::RunBi2); break;
      case 3: dispatch(params.bi3, bi::RunBi3); break;
      case 4: dispatch(params.bi4, bi::RunBi4); break;
      case 5: dispatch(params.bi5, bi::RunBi5); break;
      case 6: dispatch(params.bi6, bi::RunBi6); break;
      case 7: dispatch(params.bi7, bi::RunBi7); break;
      case 8: dispatch(params.bi8, bi::RunBi8); break;
      case 9: dispatch(params.bi9, bi::RunBi9); break;
      case 10: dispatch(params.bi10, bi::RunBi10); break;
      case 11: dispatch(params.bi11, bi::RunBi11); break;
      case 12: dispatch(params.bi12, bi::RunBi12); break;
      case 13: dispatch(params.bi13, bi::RunBi13); break;
      case 14: dispatch(params.bi14, bi::RunBi14); break;
      case 15: dispatch(params.bi15, bi::RunBi15); break;
      case 16: dispatch(params.bi16, bi::RunBi16); break;
      case 17: dispatch(params.bi17, bi::RunBi17); break;
      case 18: dispatch(params.bi18, bi::RunBi18); break;
      case 19: dispatch(params.bi19, bi::RunBi19); break;
      case 20: dispatch(params.bi20, bi::RunBi20); break;
      case 21: dispatch(params.bi21, bi::RunBi21); break;
      case 22: dispatch(params.bi22, bi::RunBi22); break;
      case 23: dispatch(params.bi23, bi::RunBi23); break;
      case 24: dispatch(params.bi24, bi::RunBi24); break;
      case 25: dispatch(params.bi25, bi::RunBi25); break;
      default: SNB_UNREACHABLE();
    }
    ++report.complex_reads;
  };

  size_t limit = max_updates == 0 ? updates.size()
                                  : std::min(max_updates, updates.size());
  size_t countdown = updates_per_read;
  for (size_t u = 0; u < limit; ++u) {
    const datagen::UpdateEvent& event = updates[u];
    const std::string op =
        "IU " + std::to_string(static_cast<int>(event.kind));
    recorder.Run(op, 0.0, t0, [&] {
      SNB_CHECK(interactive::ApplyUpdate(graph, event).ok());
      return size_t{1};
    });
    ++report.update_operations;
    if (--countdown == 0) {
      countdown = updates_per_read;
      run_next_read();
    }
  }
  SNB_VALIDATE_STORE(graph);

  report.wall_seconds = MsSince(t0) / 1000.0;
  report.throughput_ops_per_sec =
      report.wall_seconds == 0
          ? 0
          : static_cast<double>(report.total_operations) / report.wall_seconds;
  return report;
}

}  // namespace snb::driver

// Validation mode (spec §6.2 "validating the query implementations"):
// cross-validates the optimized engine against the naive baseline on the
// same parameter bindings — our equivalent of the official validation
// datasets, with the naive engine playing the role of the reference
// implementation.

#ifndef SNB_DRIVER_VALIDATION_H_
#define SNB_DRIVER_VALIDATION_H_

#include <string>
#include <vector>

#include "params/parameter_curation.h"
#include "storage/graph.h"

namespace snb::driver {

struct ValidationReport {
  size_t queries_checked = 0;
  size_t bindings_checked = 0;
  /// Query names ("BI 7") that produced at least one mismatch.
  std::vector<std::string> mismatched_queries;

  bool ok() const { return mismatched_queries.empty(); }
};

/// Runs every BI query on up to `bindings_per_query` bindings through both
/// engines and compares results exactly.
ValidationReport ValidateBiImplementations(
    const storage::Graph& graph, const params::WorkloadParameters& params,
    size_t bindings_per_query);

}  // namespace snb::driver

#endif  // SNB_DRIVER_VALIDATION_H_

#include "driver/refresh.h"

#include <chrono>
#include <thread>
#include <utility>

#include "interactive/updates.h"
#include "storage/export.h"
#include "storage/recovery.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace snb::driver {

namespace {

/// Runs `attempt` up to retry.max_attempts times, sleeping exponential
/// backoff with jitter between tries. Only kTransient failures are retried;
/// anything else (and an exhausted budget) propagates to the caller.
template <typename Fn>
util::Status RetryTransient(const RetryConfig& retry, util::Rng& rng,
                            size_t* retries, Fn&& attempt) {
  double backoff_ms = retry.initial_backoff_ms;
  for (int tries = 1;; ++tries) {
    util::Status st = attempt();
    if (st.ok() || !st.IsTransient() || tries >= retry.max_attempts) {
      return st;
    }
    ++*retries;
    double jitter_scale =
        1.0 + retry.jitter * (2.0 * rng.NextDouble() - 1.0);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms * jitter_scale));
    backoff_ms = std::min(backoff_ms * retry.backoff_multiplier,
                          retry.max_backoff_ms);
  }
}

struct Batch {
  /// Last day the batch covers — the commit marker day.
  core::Date day = std::numeric_limits<core::Date>::min();
  std::vector<const datagen::UpdateEvent*> events;
  /// DEL 1–8 events in the batch (drives the WAL delete-batch marker).
  uint32_t delete_count = 0;
};

/// Groups the (timestamp-ordered) update stream into batches of
/// `batch_days` whole simulation days.
std::vector<Batch> GroupIntoBatches(
    const std::vector<datagen::UpdateEvent>& updates, int batch_days) {
  std::vector<Batch> batches;
  int64_t current_group = std::numeric_limits<int64_t>::min();
  for (const datagen::UpdateEvent& event : updates) {
    core::Date day = core::DateFromDateTime(event.timestamp);
    // Floor division so pre-1970 days still group correctly.
    int64_t group = day >= 0 ? day / batch_days
                             : (day - (batch_days - 1)) / batch_days;
    if (group != current_group) {
      batches.emplace_back();
      current_group = group;
    }
    batches.back().events.push_back(&event);
    batches.back().day = std::max(batches.back().day, day);
    if (datagen::IsDeleteKind(event.kind)) ++batches.back().delete_count;
  }
  return batches;
}

}  // namespace

util::StatusOr<RefreshReport> RunBatchedRefresh(
    const std::string& store_dir, GraphHandle& handle,
    const std::vector<datagen::UpdateEvent>& updates,
    const RefreshConfig& config) {
  SNB_CHECK_GE(config.batch_days, 1);
  SNB_CHECK_GE(config.retry.max_attempts, 1);

  const auto t0 = std::chrono::steady_clock::now();
  RefreshReport report;
  util::Rng rng(config.seed, uint64_t{0xbac0ff});

  storage::Wal wal;
  SNB_RETURN_IF_ERROR(
      wal.Open(storage::WalPath(store_dir), {config.wal_sync}));

  std::vector<Batch> batches =
      GroupIntoBatches(updates, config.batch_days);

  size_t applied_since_checkpoint = 0;
  for (const Batch& batch : batches) {
    if (batch.day <= config.resume_after_day) {
      report.events_skipped += batch.events.size();
      continue;
    }

    // Phase 1 — LOG. The commit fsync is the batch's durability point;
    // a failed attempt truncates the partial batch before retrying so the
    // log never holds two copies of one day.
    util::Status logged =
        RetryTransient(config.retry, rng, &report.retries, [&] {
          util::Status st = [&] {
            SNB_RETURN_IF_ERROR(wal.BatchBegin(batch.day));
            if (batch.delete_count > 0) {
              SNB_RETURN_IF_ERROR(
                  wal.NoteDeleteBatch(batch.day, batch.delete_count));
            }
            for (const datagen::UpdateEvent* event : batch.events) {
              SNB_RETURN_IF_ERROR(wal.Append(*event));
            }
            return wal.BatchCommit(batch.day);
          }();
          if (!st.ok()) {
            util::Status aborted = wal.AbortBatch();
            if (!aborted.ok()) return aborted;  // escalate: can't clean up
          }
          return st;
        });
    if (!logged.ok()) return logged;

    // Phase 2 — APPLY to a shadow copy, publish atomically. The WAL batch
    // is already committed, so this phase never touches the log: a crash
    // here is repaired by recovery replay, a transient failure rebuilds
    // the shadow from the still-published pre-batch snapshot.
    util::Status applied =
        RetryTransient(config.retry, rng, &report.retries, [&] {
          SNB_FAILPOINT_STATUS("refresh.apply");
          std::shared_ptr<const storage::Graph> base = handle.Current();
          auto shadow = std::make_shared<storage::Graph>(
              storage::ExportNetwork(*base), base->CompactionEpoch());
          for (const datagen::UpdateEvent* event : batch.events) {
            SNB_FAILPOINT("refresh.apply.event");
            util::Status st = interactive::ApplyUpdate(*shadow, *event);
            if (!st.ok()) {
              // A torn cascade only exists in this private shadow; dropping
              // the shadow and rebuilding from the still-published base is
              // a complete rollback, so the interruption is retryable.
              return util::Status::Transient("cascade interrupted: " +
                                             st.ToString());
            }
          }
          // Compact before publishing: readers only ever see cascades as
          // completed wholes, and (by default) never see tombstones at all.
          if (config.compact_deletes && shadow->HasTombstones()) {
            SNB_FAILPOINT_STATUS("refresh.compact");
            shadow = std::make_shared<storage::Graph>(
                storage::ExportNetwork(*shadow),
                shadow->CompactionEpoch() + 1);
          }
          SNB_FAILPOINT_STATUS("refresh.swap");
          handle.Replace(std::move(shadow));
          return util::Status::Ok();
        });
    if (!applied.ok()) return applied;

    ++report.batches_applied;
    report.events_applied += batch.events.size();
    report.last_committed_day = batch.day;
    ++applied_since_checkpoint;

    // Phase 3 — CHECKPOINT every N batches to bound recovery replay.
    if (config.checkpoint_every_batches > 0 &&
        applied_since_checkpoint >=
            static_cast<size_t>(config.checkpoint_every_batches)) {
      util::Status checkpointed =
          RetryTransient(config.retry, rng, &report.retries, [&] {
            return storage::WriteCheckpoint(
                store_dir, storage::ExportNetwork(*handle.Current()),
                batch.day);
          });
      if (!checkpointed.ok()) return checkpointed;
      ++report.checkpoints_written;
      applied_since_checkpoint = 0;
    }
  }

  SNB_RETURN_IF_ERROR(wal.Close());
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace snb::driver

#include "storage/graph.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/failpoint.h"

namespace snb::storage {

namespace {

template <typename T>
std::unordered_map<core::Id, uint32_t> IndexById(const std::vector<T>& rows) {
  std::unordered_map<core::Id, uint32_t> map;
  map.reserve(rows.size() * 2);
  for (size_t i = 0; i < rows.size(); ++i) {
    bool inserted =
        map.emplace(rows[i].id, static_cast<uint32_t>(i)).second;
    SNB_CHECK(inserted);  // ids must be unique within an entity type
  }
  return map;
}

}  // namespace

Graph::Graph(core::SocialNetwork net, uint32_t compaction_epoch)
    : persons_(std::move(net.persons)),
      forums_(std::move(net.forums)),
      posts_(std::move(net.posts)),
      comments_(std::move(net.comments)),
      tags_(std::move(net.tags)),
      tag_classes_(std::move(net.tag_classes)),
      places_(std::move(net.places)),
      organisations_(std::move(net.organisations)),
      compaction_epoch_(compaction_epoch) {
  person_dead_.Resize(persons_.size());
  forum_dead_.Resize(forums_.size());
  post_dead_.Resize(posts_.size());
  comment_dead_.Resize(comments_.size());
  person_idx_ = IndexById(persons_);
  forum_idx_ = IndexById(forums_);
  post_idx_ = IndexById(posts_);
  comment_idx_ = IndexById(comments_);
  tag_idx_ = IndexById(tags_);
  tag_class_idx_ = IndexById(tag_classes_);
  place_idx_ = IndexById(places_);
  organisation_idx_ = IndexById(organisations_);

  place_name_code_.resize(places_.size());
  for (size_t i = 0; i < places_.size(); ++i) {
    place_by_name_[places_[i].name] = static_cast<uint32_t>(i);
    place_name_code_[i] = dict_.GetOrAdd(places_[i].name);
  }
  tag_name_code_.resize(tags_.size());
  for (size_t i = 0; i < tags_.size(); ++i) {
    tag_by_name_[tags_[i].name] = static_cast<uint32_t>(i);
    tag_name_code_[i] = dict_.GetOrAdd(tags_[i].name);
  }
  for (size_t i = 0; i < tag_classes_.size(); ++i) {
    tag_class_by_name_[tag_classes_[i].name] = static_cast<uint32_t>(i);
  }

  // ---- Static structure columns -------------------------------------------
  place_part_of_.resize(places_.size());
  for (size_t i = 0; i < places_.size(); ++i) {
    place_part_of_[i] =
        places_[i].part_of == core::kNoId ? kNoIdx : PlaceIdx(places_[i].part_of);
  }
  tag_class_parent_.resize(tag_classes_.size());
  {
    std::vector<EdgeInput> child_edges;
    for (size_t i = 0; i < tag_classes_.size(); ++i) {
      if (tag_classes_[i].parent == core::kNoId) {
        tag_class_parent_[i] = kNoIdx;
      } else {
        tag_class_parent_[i] = TagClassIdx(tag_classes_[i].parent);
        child_edges.push_back(
            {tag_class_parent_[i], static_cast<uint32_t>(i)});
      }
    }
    tag_class_children_.Build(tag_classes_.size(), std::move(child_edges),
                              false);
  }
  tag_class_of_tag_.resize(tags_.size());
  {
    std::vector<EdgeInput> class_tags;
    for (size_t i = 0; i < tags_.size(); ++i) {
      tag_class_of_tag_[i] = TagClassIdx(tags_[i].tag_class);
      class_tags.push_back({tag_class_of_tag_[i], static_cast<uint32_t>(i)});
    }
    tag_class_tags_.Build(tag_classes_.size(), std::move(class_tags), false);
  }

  // ---- Person columns -------------------------------------------------------
  person_creation_.resize(persons_.size());
  person_city_.resize(persons_.size());
  person_country_.resize(persons_.size());
  person_is_female_.resize(persons_.size());
  {
    std::vector<EdgeInput> country_persons, interests;
    person_gender_code_.resize(persons_.size());
    person_browser_code_.resize(persons_.size());
    for (size_t i = 0; i < persons_.size(); ++i) {
      person_creation_[i] = persons_[i].creation_date;
      person_is_female_[i] = persons_[i].gender == "female" ? 1 : 0;
      person_gender_code_[i] = dict_.GetOrAdd(persons_[i].gender);
      person_browser_code_[i] = dict_.GetOrAdd(persons_[i].browser_used);
      person_city_[i] = PlaceIdx(persons_[i].city);
      SNB_CHECK_NE(person_city_[i], kNoIdx);
      person_country_[i] = CountryOfPlace(person_city_[i]);
      country_persons.push_back(
          {person_country_[i], static_cast<uint32_t>(i)});
      for (core::Id t : persons_[i].interests) {
        interests.push_back({static_cast<uint32_t>(i), TagIdx(t)});
      }
    }
    country_persons_.Build(places_.size(), std::move(country_persons), false);
    std::vector<EdgeInput> interests_rev;
    interests_rev.reserve(interests.size());
    for (const EdgeInput& e : interests) {
      interests_rev.push_back({e.dst, e.src});
    }
    person_interests_.Build(persons_.size(), std::move(interests), false);
    tag_persons_.Build(tags_.size(), std::move(interests_rev), false);
  }

  // ---- Knows ----------------------------------------------------------------
  {
    std::vector<EdgeInput> edges;
    edges.reserve(net.knows.size() * 2);
    for (const core::Knows& k : net.knows) {
      uint32_t a = PersonIdx(k.person1);
      uint32_t b = PersonIdx(k.person2);
      SNB_CHECK(a != kNoIdx && b != kNoIdx);
      edges.push_back({a, b, k.creation_date});
      edges.push_back({b, a, k.creation_date});
    }
    knows_.Build(persons_.size(), std::move(edges), true);
  }

  // ---- Forums ----------------------------------------------------------------
  {
    std::vector<EdgeInput> moderates, ftags, tag_forums;
    for (size_t i = 0; i < forums_.size(); ++i) {
      uint32_t mod = PersonIdx(forums_[i].moderator);
      SNB_CHECK_NE(mod, kNoIdx);
      moderates.push_back({mod, static_cast<uint32_t>(i)});
      for (core::Id t : forums_[i].tags) {
        uint32_t tag = TagIdx(t);
        ftags.push_back({static_cast<uint32_t>(i), tag});
        tag_forums.push_back({tag, static_cast<uint32_t>(i)});
      }
    }
    person_moderates_.Build(persons_.size(), std::move(moderates), false);
    forum_tags_.Build(forums_.size(), std::move(ftags), false);
    tag_forums_.Build(tags_.size(), std::move(tag_forums), false);

    std::vector<EdgeInput> members, member_of;
    members.reserve(net.memberships.size());
    member_of.reserve(net.memberships.size());
    for (const core::ForumMembership& m : net.memberships) {
      uint32_t f = ForumIdx(m.forum);
      uint32_t p = PersonIdx(m.person);
      SNB_CHECK(f != kNoIdx && p != kNoIdx);
      members.push_back({f, p, m.join_date});
      member_of.push_back({p, f, m.join_date});
    }
    forum_members_.Build(forums_.size(), std::move(members), true);
    person_forums_.Build(persons_.size(), std::move(member_of), true);
  }

  // ---- Posts -----------------------------------------------------------------
  post_creation_.resize(posts_.size());
  post_creator_.resize(posts_.size());
  post_forum_.resize(posts_.size());
  post_country_.resize(posts_.size());
  // Per-person message-date zones start at the empty sentinel (min above
  // max), so persons without messages overlap no window.
  person_msg_date_min_.assign(persons_.size(), kMaxMessageDate);
  person_msg_date_max_.assign(persons_.size(), kMinMessageDate);
  {
    std::vector<EdgeInput> person_posts, forum_posts, ptags, tag_posts;
    post_browser_code_.resize(posts_.size());
    post_length_class_code_.resize(posts_.size());
    post_language_code_.resize(posts_.size());
    for (size_t i = 0; i < posts_.size(); ++i) {
      const core::Post& p = posts_[i];
      post_creation_[i] = p.creation_date;
      post_browser_code_[i] = dict_.GetOrAdd(p.browser_used);
      post_length_class_code_[i] = dict_.GetOrAdd(LengthClassName(p.length));
      post_language_code_[i] = dict_.GetOrAdd(p.language);
      post_creator_[i] = PersonIdx(p.creator);
      post_forum_[i] = ForumIdx(p.forum);
      post_country_[i] = PlaceIdx(p.country);
      SNB_CHECK_NE(post_creator_[i], kNoIdx);
      SNB_CHECK_NE(post_forum_[i], kNoIdx);
      person_msg_date_min_[post_creator_[i]] =
          std::min(person_msg_date_min_[post_creator_[i]], p.creation_date);
      person_msg_date_max_[post_creator_[i]] =
          std::max(person_msg_date_max_[post_creator_[i]], p.creation_date);
      person_posts.push_back({post_creator_[i], static_cast<uint32_t>(i)});
      forum_posts.push_back({post_forum_[i], static_cast<uint32_t>(i)});
      for (core::Id t : p.tags) {
        uint32_t tag = TagIdx(t);
        ptags.push_back({static_cast<uint32_t>(i), tag});
        tag_posts.push_back({tag, static_cast<uint32_t>(i)});
      }
    }
    person_posts_.Build(persons_.size(), std::move(person_posts), false);
    forum_posts_.Build(forums_.size(), std::move(forum_posts), false);
    post_tags_.Build(posts_.size(), std::move(ptags), false);
    tag_posts_.Build(tags_.size(), std::move(tag_posts), false);
  }

  // ---- Comments --------------------------------------------------------------
  comment_creation_.resize(comments_.size());
  comment_creator_.resize(comments_.size());
  comment_country_.resize(comments_.size());
  comment_reply_of_.resize(comments_.size());
  comment_root_post_.resize(comments_.size());
  {
    std::vector<EdgeInput> person_comments, post_replies, comment_replies,
        ctags, tag_comments;
    comment_browser_code_.resize(comments_.size());
    comment_length_class_code_.resize(comments_.size());
    comment_root_language_code_.resize(comments_.size());
    for (size_t i = 0; i < comments_.size(); ++i) {
      const core::Comment& c = comments_[i];
      comment_creation_[i] = c.creation_date;
      comment_browser_code_[i] = dict_.GetOrAdd(c.browser_used);
      comment_length_class_code_[i] =
          dict_.GetOrAdd(LengthClassName(c.length));
      comment_creator_[i] = PersonIdx(c.creator);
      comment_country_[i] = PlaceIdx(c.country);
      SNB_CHECK_NE(comment_creator_[i], kNoIdx);
      person_msg_date_min_[comment_creator_[i]] =
          std::min(person_msg_date_min_[comment_creator_[i]], c.creation_date);
      person_msg_date_max_[comment_creator_[i]] =
          std::max(person_msg_date_max_[comment_creator_[i]], c.creation_date);
      person_comments.push_back(
          {comment_creator_[i], static_cast<uint32_t>(i)});
      if (c.reply_of_post != core::kNoId) {
        uint32_t post = PostIdx(c.reply_of_post);
        SNB_CHECK_NE(post, kNoIdx);
        comment_reply_of_[i] = MessageOfPost(post);
        comment_root_post_[i] = post;
        post_replies.push_back({post, static_cast<uint32_t>(i)});
      } else {
        uint32_t parent = CommentIdx(c.reply_of_comment);
        SNB_CHECK_NE(parent, kNoIdx);
        // Datagen emits comments in thread order, but loaded data may not be
        // ordered; resolve roots transitively afterwards when needed.
        SNB_CHECK_LT(parent, i);  // replies always follow their target
        comment_reply_of_[i] = MessageOfComment(parent);
        comment_root_post_[i] = comment_root_post_[parent];
        comment_replies.push_back({parent, static_cast<uint32_t>(i)});
      }
      comment_root_language_code_[i] =
          post_language_code_[comment_root_post_[i]];
      for (core::Id t : c.tags) {
        uint32_t tag = TagIdx(t);
        ctags.push_back({static_cast<uint32_t>(i), tag});
        tag_comments.push_back({tag, static_cast<uint32_t>(i)});
      }
    }
    person_comments_.Build(persons_.size(), std::move(person_comments),
                           false);
    post_replies_.Build(posts_.size(), std::move(post_replies), false);
    comment_replies_.Build(comments_.size(), std::move(comment_replies),
                           false);
    comment_tags_.Build(comments_.size(), std::move(ctags), false);
    tag_comments_.Build(tags_.size(), std::move(tag_comments), false);
  }
  {
    // Materialize the comment → forum 2-hop endpoint (via the thread's root
    // post) as a bit-packed column: the hot loops of BI 4/5/25-style forum
    // joins become one probe instead of two dependent loads.
    std::vector<uint32_t> forums(comments_.size());
    for (size_t i = 0; i < comments_.size(); ++i) {
      forums[i] = post_forum_[comment_root_post_[i]];
    }
    comment_forum_ = columnar::AppendableU32Column(forums);
  }

  // ---- Likes -----------------------------------------------------------------
  {
    std::vector<EdgeInput> person_likes, post_likers, comment_likers;
    person_likes.reserve(net.likes.size());
    for (const core::Like& l : net.likes) {
      uint32_t person = PersonIdx(l.person);
      SNB_CHECK_NE(person, kNoIdx);
      if (l.is_post) {
        uint32_t post = PostIdx(l.message);
        SNB_CHECK_NE(post, kNoIdx);
        person_likes.push_back({person, MessageOfPost(post), l.creation_date});
        post_likers.push_back({post, person, l.creation_date});
      } else {
        uint32_t comment = CommentIdx(l.message);
        SNB_CHECK_NE(comment, kNoIdx);
        person_likes.push_back(
            {person, MessageOfComment(comment), l.creation_date});
        comment_likers.push_back({comment, person, l.creation_date});
      }
    }
    person_likes_.Build(persons_.size(), std::move(person_likes), true);
    post_likers_.Build(posts_.size(), std::move(post_likers), true);
    comment_likers_.Build(comments_.size(), std::move(comment_likers), true);
  }

  // ---- Creation-date message index -------------------------------------------
  message_index_.Build(post_creation_, comment_creation_);
  // Like-count zones over the sorted base, from the bulk-loaded like
  // degrees (the update path maintains them through NoteLike).
  message_index_.BuildLikeZones([this](uint32_t ref) -> uint32_t {
    return static_cast<uint32_t>(
        IsPost(ref) ? post_likers_.Degree(ref)
                    : comment_likers_.Degree(AsComment(ref)));
  });
}

columnar::MemoryBreakdown Graph::Memory() const {
  columnar::MemoryBreakdown mb;

  const std::pair<const char*, const AdjacencyList*> relations[] = {
      {"adj/knows", &knows_},
      {"adj/person-posts", &person_posts_},
      {"adj/person-comments", &person_comments_},
      {"adj/person-likes", &person_likes_},
      {"adj/post-likers", &post_likers_},
      {"adj/comment-likers", &comment_likers_},
      {"adj/forum-members", &forum_members_},
      {"adj/person-forums", &person_forums_},
      {"adj/forum-posts", &forum_posts_},
      {"adj/person-moderates", &person_moderates_},
      {"adj/post-replies", &post_replies_},
      {"adj/comment-replies", &comment_replies_},
      {"adj/post-tags", &post_tags_},
      {"adj/comment-tags", &comment_tags_},
      {"adj/forum-tags", &forum_tags_},
      {"adj/person-interests", &person_interests_},
      {"adj/tag-posts", &tag_posts_},
      {"adj/tag-comments", &tag_comments_},
      {"adj/tag-forums", &tag_forums_},
      {"adj/tag-persons", &tag_persons_},
      {"adj/country-persons", &country_persons_},
      {"adj/tag-class-children", &tag_class_children_},
      {"adj/tag-class-tags", &tag_class_tags_},
  };
  for (const auto& [name, adj] : relations) {
    columnar::MemoryFamily f;
    f.name = name;
    f.bytes = adj->ByteSize();
    f.raw_bytes = adj->RawByteSize();
    f.items = adj->num_edges();
    mb.edge_bytes += f.bytes;
    mb.edge_raw_bytes += f.raw_bytes;
    mb.num_edges += f.items;
    mb.families.push_back(std::move(f));
  }

  {
    columnar::MemoryFamily f;
    f.name = "index/message-date";
    f.bytes = message_index_.ByteSize();
    f.raw_bytes = message_index_.RawByteSize();
    f.items = message_index_.size();
    mb.message_bytes += f.bytes;
    mb.message_raw_bytes += f.raw_bytes;
    mb.families.push_back(std::move(f));
  }
  {
    // Per-message hot columns: same flat layout in both representations.
    columnar::MemoryFamily f;
    f.name = "cols/message";
    auto vec_bytes = [](const auto& v) {
      return v.capacity() * sizeof(v[0]);
    };
    f.bytes = vec_bytes(post_creation_) + vec_bytes(post_creator_) +
              vec_bytes(post_forum_) + vec_bytes(post_country_) +
              vec_bytes(comment_creation_) + vec_bytes(comment_creator_) +
              vec_bytes(comment_country_) + vec_bytes(comment_reply_of_) +
              vec_bytes(comment_root_post_);
    f.raw_bytes = f.bytes;
    f.items = NumMessages();
    mb.message_bytes += f.bytes;
    mb.message_raw_bytes += f.raw_bytes;
    mb.families.push_back(std::move(f));
  }
  mb.num_messages = NumMessages();

  {
    columnar::MemoryFamily f;
    f.name = "dict";
    f.bytes = dict_.ByteSize();
    // Raw equivalent: the strings stay inline in the entity structs either
    // way (SSO); the dictionary itself is pure addition, so raw is zero.
    f.raw_bytes = 0;
    f.items = dict_.size();
    mb.families.push_back(std::move(f));
  }
  {
    columnar::MemoryFamily f;
    f.name = "cols/codes";
    auto vec_bytes = [](const std::vector<uint32_t>& v) {
      return v.capacity() * sizeof(uint32_t);
    };
    f.bytes = vec_bytes(person_gender_code_) +
              vec_bytes(person_browser_code_) + vec_bytes(post_browser_code_) +
              vec_bytes(comment_browser_code_) +
              vec_bytes(post_length_class_code_) +
              vec_bytes(comment_length_class_code_) +
              vec_bytes(tag_name_code_) + vec_bytes(place_name_code_) +
              vec_bytes(post_language_code_) +
              vec_bytes(comment_root_language_code_);
    f.raw_bytes = 0;  // pure addition over the seed layout
    f.items = persons_.size() * 2 + posts_.size() * 3 + comments_.size() * 3 +
              tags_.size() + places_.size();
    mb.families.push_back(std::move(f));
  }
  {
    // Materialized 2-hop endpoint: comment → thread's forum, bit-packed.
    columnar::MemoryFamily f;
    f.name = "cols/comment-forum";
    f.bytes = comment_forum_.ByteSize();
    f.raw_bytes = 0;  // pure addition over the seed layout
    f.items = comment_forum_.size();
    mb.families.push_back(std::move(f));
  }
  {
    // Per-person message-date zones (scan pruning at person granularity).
    columnar::MemoryFamily f;
    f.name = "cols/person-msg-zones";
    f.bytes = person_msg_date_min_.capacity() * sizeof(core::DateTime) +
              person_msg_date_max_.capacity() * sizeof(core::DateTime);
    f.raw_bytes = 0;  // pure addition over the seed layout
    f.items = persons_.size();
    mb.families.push_back(std::move(f));
  }

  return mb;
}

uint32_t Graph::CountryOfPlace(uint32_t place) const {
  // Walks city → country; a country maps to itself.
  if (places_[place].type == core::PlaceType::kCountry) return place;
  uint32_t parent = place_part_of_[place];
  SNB_CHECK_NE(parent, kNoIdx);
  return parent;
}

uint32_t Graph::PlaceByName(const std::string& name) const {
  auto it = place_by_name_.find(name);
  return it == place_by_name_.end() ? kNoIdx : it->second;
}

uint32_t Graph::TagByName(const std::string& name) const {
  auto it = tag_by_name_.find(name);
  return it == tag_by_name_.end() ? kNoIdx : it->second;
}

uint32_t Graph::TagClassByName(const std::string& name) const {
  auto it = tag_class_by_name_.find(name);
  return it == tag_class_by_name_.end() ? kNoIdx : it->second;
}

// ---------------------------------------------------------------------------
// Mutators (IU 1–8)
// ---------------------------------------------------------------------------

uint32_t Graph::AddPerson(const core::Person& person) {
  SNB_CHECK_EQ(PersonIdx(person.id), kNoIdx);
  uint32_t idx = static_cast<uint32_t>(persons_.size());
  persons_.push_back(person);
  person_dead_.Append();
  person_idx_[person.id] = idx;
  person_creation_.push_back(person.creation_date);
  person_is_female_.push_back(person.gender == "female" ? 1 : 0);
  person_gender_code_.push_back(dict_.GetOrAdd(person.gender));
  person_browser_code_.push_back(dict_.GetOrAdd(person.browser_used));
  uint32_t city = PlaceIdx(person.city);
  SNB_CHECK_NE(city, kNoIdx);
  person_city_.push_back(city);
  uint32_t country = CountryOfPlace(city);
  person_country_.push_back(country);
  country_persons_.Append(country, idx);
  person_msg_date_min_.push_back(kMaxMessageDate);  // empty zone sentinel
  person_msg_date_max_.push_back(kMinMessageDate);

  knows_.AddNodes(1);
  person_posts_.AddNodes(1);
  person_comments_.AddNodes(1);
  person_likes_.AddNodes(1);
  person_forums_.AddNodes(1);
  person_moderates_.AddNodes(1);
  person_interests_.AddNodes(1);
  for (core::Id t : person.interests) {
    uint32_t tag = TagIdx(t);
    SNB_CHECK_NE(tag, kNoIdx);
    person_interests_.Append(idx, tag);
    tag_persons_.Append(tag, idx);
  }
  return idx;
}

void Graph::AddLikePost(core::Id person, core::Id post, core::DateTime date) {
  uint32_t p = PersonIdx(person);
  uint32_t m = PostIdx(post);
  SNB_CHECK(p != kNoIdx && m != kNoIdx);
  // Raise the like-count zone max *before* the like becomes visible, so a
  // concurrent bound-pruned scan never sees a degree above its block's zone.
  message_index_.NoteLike(
      MessageOfPost(m), post_creation_[m],
      static_cast<uint32_t>(post_likers_.Degree(m)) + 1);
  person_likes_.Append(p, MessageOfPost(m), date);
  post_likers_.Append(m, p, date);
}

void Graph::AddLikeComment(core::Id person, core::Id comment,
                           core::DateTime date) {
  uint32_t p = PersonIdx(person);
  uint32_t m = CommentIdx(comment);
  SNB_CHECK(p != kNoIdx && m != kNoIdx);
  message_index_.NoteLike(
      MessageOfComment(m), comment_creation_[m],
      static_cast<uint32_t>(comment_likers_.Degree(m)) + 1);
  person_likes_.Append(p, MessageOfComment(m), date);
  comment_likers_.Append(m, p, date);
}

uint32_t Graph::AddForum(const core::Forum& forum) {
  SNB_CHECK_EQ(ForumIdx(forum.id), kNoIdx);
  uint32_t idx = static_cast<uint32_t>(forums_.size());
  forums_.push_back(forum);
  forum_dead_.Append();
  forum_idx_[forum.id] = idx;
  forum_members_.AddNodes(1);
  forum_posts_.AddNodes(1);
  forum_tags_.AddNodes(1);
  uint32_t mod = PersonIdx(forum.moderator);
  SNB_CHECK_NE(mod, kNoIdx);
  person_moderates_.Append(mod, idx);
  for (core::Id t : forum.tags) {
    uint32_t tag = TagIdx(t);
    SNB_CHECK_NE(tag, kNoIdx);
    forum_tags_.Append(idx, tag);
    tag_forums_.Append(tag, idx);
  }
  return idx;
}

void Graph::AddMembership(core::Id person, core::Id forum,
                          core::DateTime join_date) {
  uint32_t p = PersonIdx(person);
  uint32_t f = ForumIdx(forum);
  SNB_CHECK(p != kNoIdx && f != kNoIdx);
  forum_members_.Append(f, p, join_date);
  person_forums_.Append(p, f, join_date);
}

uint32_t Graph::AddPost(const core::Post& post) {
  SNB_CHECK_EQ(PostIdx(post.id), kNoIdx);
  uint32_t idx = static_cast<uint32_t>(posts_.size());
  posts_.push_back(post);
  post_dead_.Append();
  post_idx_[post.id] = idx;
  post_creation_.push_back(post.creation_date);
  post_browser_code_.push_back(dict_.GetOrAdd(post.browser_used));
  post_length_class_code_.push_back(
      dict_.GetOrAdd(LengthClassName(post.length)));
  post_language_code_.push_back(dict_.GetOrAdd(post.language));
  uint32_t creator = PersonIdx(post.creator);
  uint32_t forum = ForumIdx(post.forum);
  uint32_t country = PlaceIdx(post.country);
  SNB_CHECK(creator != kNoIdx && forum != kNoIdx && country != kNoIdx);
  post_creator_.push_back(creator);
  post_forum_.push_back(forum);
  post_country_.push_back(country);
  person_msg_date_min_[creator] =
      std::min(person_msg_date_min_[creator], post.creation_date);
  person_msg_date_max_[creator] =
      std::max(person_msg_date_max_[creator], post.creation_date);
  person_posts_.Append(creator, idx);
  forum_posts_.Append(forum, idx);
  post_tags_.AddNodes(1);
  post_replies_.AddNodes(1);
  post_likers_.AddNodes(1);
  for (core::Id t : post.tags) {
    uint32_t tag = TagIdx(t);
    SNB_CHECK_NE(tag, kNoIdx);
    post_tags_.Append(idx, tag);
    tag_posts_.Append(tag, idx);
  }
  message_index_.Append(MessageOfPost(idx), post.creation_date);
  return idx;
}

uint32_t Graph::AddComment(const core::Comment& comment) {
  SNB_CHECK_EQ(CommentIdx(comment.id), kNoIdx);
  uint32_t idx = static_cast<uint32_t>(comments_.size());
  comments_.push_back(comment);
  comment_dead_.Append();
  comment_idx_[comment.id] = idx;
  comment_creation_.push_back(comment.creation_date);
  comment_browser_code_.push_back(dict_.GetOrAdd(comment.browser_used));
  comment_length_class_code_.push_back(
      dict_.GetOrAdd(LengthClassName(comment.length)));
  uint32_t creator = PersonIdx(comment.creator);
  uint32_t country = PlaceIdx(comment.country);
  SNB_CHECK(creator != kNoIdx && country != kNoIdx);
  comment_creator_.push_back(creator);
  comment_country_.push_back(country);
  person_msg_date_min_[creator] =
      std::min(person_msg_date_min_[creator], comment.creation_date);
  person_msg_date_max_[creator] =
      std::max(person_msg_date_max_[creator], comment.creation_date);
  person_comments_.Append(creator, idx);
  comment_tags_.AddNodes(1);
  comment_replies_.AddNodes(1);
  comment_likers_.AddNodes(1);
  if (comment.reply_of_post != core::kNoId) {
    uint32_t post = PostIdx(comment.reply_of_post);
    SNB_CHECK_NE(post, kNoIdx);
    comment_reply_of_.push_back(MessageOfPost(post));
    comment_root_post_.push_back(post);
    post_replies_.Append(post, idx);
  } else {
    uint32_t parent = CommentIdx(comment.reply_of_comment);
    SNB_CHECK_NE(parent, kNoIdx);
    comment_reply_of_.push_back(MessageOfComment(parent));
    comment_root_post_.push_back(comment_root_post_[parent]);
    comment_replies_.Append(parent, idx);
  }
  comment_forum_.Append(post_forum_[comment_root_post_.back()]);
  comment_root_language_code_.push_back(
      post_language_code_[comment_root_post_.back()]);
  for (core::Id t : comment.tags) {
    uint32_t tag = TagIdx(t);
    SNB_CHECK_NE(tag, kNoIdx);
    comment_tags_.Append(idx, tag);
    tag_comments_.Append(tag, idx);
  }
  message_index_.Append(MessageOfComment(idx), comment.creation_date);
  return idx;
}

void Graph::AddKnows(core::Id person1, core::Id person2, core::DateTime date) {
  uint32_t a = PersonIdx(person1);
  uint32_t b = PersonIdx(person2);
  SNB_CHECK(a != kNoIdx && b != kNoIdx);
  knows_.Append(a, b, date);
  knows_.Append(b, a, date);
}

// ---------------------------------------------------------------------------
// Mutators (DEL 1–8) — the five-stage cascade
// ---------------------------------------------------------------------------

void Graph::MarkMessageDead(uint32_t msg, std::vector<uint32_t>* work) {
  TombstoneBitmap& bitmap = IsPost(msg) ? post_dead_ : comment_dead_;
  const uint32_t row = IsPost(msg) ? msg : AsComment(msg);
  if (!bitmap.Set(row)) return;  // already dead: cascades are idempotent
  work->push_back(msg);
  if (!IsPost(msg)) {
    // The parent's live-reply delta only matters while the parent itself is
    // alive; a dead parent's counters are frozen and never read.
    const uint32_t parent = comment_reply_of_[AsComment(msg)];
    if (MessageAlive(parent)) ++dead_replies_per_msg_[parent];
  }
}

util::Status Graph::RunCascade(CascadeTargets targets) {
  // Stage 1: person tombstones.
  SNB_FAILPOINT_STATUS("graph.delete.person");
  std::vector<uint32_t> new_dead_persons;
  for (uint32_t p : targets.persons) {
    if (person_dead_.Set(p)) new_dead_persons.push_back(p);
  }

  // Stage 2: forum tombstones — explicit targets plus every forum moderated
  // by a newly dead person (the person's walls/albums/groups go with them).
  SNB_FAILPOINT_STATUS("graph.delete.forums");
  std::vector<uint32_t> new_dead_forums;
  for (uint32_t f : targets.forums) {
    if (forum_dead_.Set(f)) new_dead_forums.push_back(f);
  }
  for (uint32_t p : new_dead_persons) {
    person_moderates_.ForEach(p, [&](uint32_t f) {
      if (forum_dead_.Set(f)) new_dead_forums.push_back(f);
    });
  }

  // Stage 3: message tombstones — explicit roots, dead persons' authored
  // messages, dead forums' posts; then BFS through the reply subtrees
  // (deleting a message deletes every transitive reply).
  SNB_FAILPOINT_STATUS("graph.delete.messages");
  std::vector<uint32_t> work;
  for (uint32_t m : targets.message_roots) MarkMessageDead(m, &work);
  for (uint32_t p : new_dead_persons) {
    person_posts_.ForEach(
        p, [&](uint32_t post) { MarkMessageDead(MessageOfPost(post), &work); });
    person_comments_.ForEach(p, [&](uint32_t c) {
      MarkMessageDead(MessageOfComment(c), &work);
    });
  }
  for (uint32_t f : new_dead_forums) {
    forum_posts_.ForEach(
        f, [&](uint32_t post) { MarkMessageDead(MessageOfPost(post), &work); });
  }
  for (size_t i = 0; i < work.size(); ++i) {
    const uint32_t msg = work[i];
    const AdjacencyList& replies =
        IsPost(msg) ? post_replies_ : comment_replies_;
    replies.ForEach(IsPost(msg) ? msg : AsComment(msg), [&](uint32_t c) {
      MarkMessageDead(MessageOfComment(c), &work);
    });
  }

  // Stage 4: edge tombstones — explicit DEL 2/3/5/8 targets plus the dead
  // persons' outgoing likes (their like no longer counts toward any live
  // message). Explicitly-deleted likes are excluded to avoid double counting.
  SNB_FAILPOINT_STATUS("graph.delete.likes");
  for (uint64_t key : targets.like_keys) {
    if (deleted_likes_.insert(key).second) {
      ++dead_likes_per_msg_[static_cast<uint32_t>(key)];
    }
  }
  for (uint64_t key : targets.membership_keys) {
    deleted_memberships_.insert(key);
  }
  for (uint64_t key : targets.knows_keys) deleted_knows_.insert(key);
  for (uint32_t p : new_dead_persons) {
    person_likes_.ForEach(p, [&](uint32_t msg) {
      if (MessageAlive(msg) &&
          deleted_likes_.find(EdgeKey(p, msg)) == deleted_likes_.end()) {
        ++dead_likes_per_msg_[msg];
      }
    });
  }

  // Stage 5: index maintenance — dead persons' message-date zones collapse
  // to the empty sentinel so person-granular pruning skips them, then the
  // epoch bump publishes cascade completion.
  SNB_FAILPOINT_STATUS("graph.delete.index");
  for (uint32_t p : new_dead_persons) {
    person_msg_date_min_[p] = kMaxMessageDate;
    person_msg_date_max_[p] = kMinMessageDate;
  }
  ++tombstone_epoch_;
  return util::Status::Ok();
}

util::Status Graph::DeletePerson(core::Id person) {
  const uint32_t p = PersonIdx(person);
  if (p == kNoIdx || !PersonAlive(p)) return util::Status::Ok();
  CascadeTargets targets;
  targets.persons.push_back(p);
  return RunCascade(std::move(targets));
}

util::Status Graph::DeleteLikePost(core::Id person, core::Id post) {
  const uint32_t p = PersonIdx(person);
  const uint32_t m = PostIdx(post);
  if (p == kNoIdx || m == kNoIdx) return util::Status::Ok();
  if (!PersonAlive(p) || !PostAlive(m)) return util::Status::Ok();
  const uint32_t msg = MessageOfPost(m);
  if (deleted_likes_.find(EdgeKey(p, msg)) != deleted_likes_.end()) {
    return util::Status::Ok();
  }
  bool found = false;
  person_likes_.ForEach(p, [&](uint32_t ref) { found |= ref == msg; });
  if (!found) return util::Status::Ok();  // replayed after compaction
  CascadeTargets targets;
  targets.like_keys.push_back(EdgeKey(p, msg));
  return RunCascade(std::move(targets));
}

util::Status Graph::DeleteLikeComment(core::Id person, core::Id comment) {
  const uint32_t p = PersonIdx(person);
  const uint32_t m = CommentIdx(comment);
  if (p == kNoIdx || m == kNoIdx) return util::Status::Ok();
  if (!PersonAlive(p) || !CommentAlive(m)) return util::Status::Ok();
  const uint32_t msg = MessageOfComment(m);
  if (deleted_likes_.find(EdgeKey(p, msg)) != deleted_likes_.end()) {
    return util::Status::Ok();
  }
  bool found = false;
  person_likes_.ForEach(p, [&](uint32_t ref) { found |= ref == msg; });
  if (!found) return util::Status::Ok();
  CascadeTargets targets;
  targets.like_keys.push_back(EdgeKey(p, msg));
  return RunCascade(std::move(targets));
}

util::Status Graph::DeleteForum(core::Id forum) {
  const uint32_t f = ForumIdx(forum);
  if (f == kNoIdx || !ForumAlive(f)) return util::Status::Ok();
  CascadeTargets targets;
  targets.forums.push_back(f);
  return RunCascade(std::move(targets));
}

util::Status Graph::DeleteMembership(core::Id person, core::Id forum) {
  const uint32_t p = PersonIdx(person);
  const uint32_t f = ForumIdx(forum);
  if (p == kNoIdx || f == kNoIdx) return util::Status::Ok();
  if (!PersonAlive(p) || !ForumAlive(f)) return util::Status::Ok();
  const uint64_t key = EdgeKey(p, f);
  if (deleted_memberships_.find(key) != deleted_memberships_.end()) {
    return util::Status::Ok();
  }
  bool found = false;
  person_forums_.ForEach(p, [&](uint32_t ref) { found |= ref == f; });
  if (!found) return util::Status::Ok();
  CascadeTargets targets;
  targets.membership_keys.push_back(key);
  return RunCascade(std::move(targets));
}

util::Status Graph::DeletePost(core::Id post) {
  const uint32_t m = PostIdx(post);
  if (m == kNoIdx || !PostAlive(m)) return util::Status::Ok();
  CascadeTargets targets;
  targets.message_roots.push_back(MessageOfPost(m));
  return RunCascade(std::move(targets));
}

util::Status Graph::DeleteComment(core::Id comment) {
  const uint32_t m = CommentIdx(comment);
  if (m == kNoIdx || !CommentAlive(m)) return util::Status::Ok();
  CascadeTargets targets;
  targets.message_roots.push_back(MessageOfComment(m));
  return RunCascade(std::move(targets));
}

util::Status Graph::DeleteKnows(core::Id person1, core::Id person2) {
  const uint32_t a = PersonIdx(person1);
  const uint32_t b = PersonIdx(person2);
  if (a == kNoIdx || b == kNoIdx) return util::Status::Ok();
  if (!PersonAlive(a) || !PersonAlive(b)) return util::Status::Ok();
  const uint64_t key = UnorderedEdgeKey(a, b);
  if (deleted_knows_.find(key) != deleted_knows_.end()) {
    return util::Status::Ok();
  }
  bool found = false;
  knows_.ForEach(a, [&](uint32_t ref) { found |= ref == b; });
  if (!found) return util::Status::Ok();
  CascadeTargets targets;
  targets.knows_keys.push_back(key);
  return RunCascade(std::move(targets));
}

}  // namespace snb::storage

// Bulk loader: reads a CsvBasic dataset directory (spec Table 2.13) back
// into a core::SocialNetwork, ready for Graph construction. This is the
// "Load Data" phase of the audit workflow (§6.1.3): every file is read, no
// rows are filtered.

#ifndef SNB_STORAGE_LOADER_H_
#define SNB_STORAGE_LOADER_H_

#include <string>

#include "core/schema.h"
#include "util/status.h"

namespace snb::storage {

/// Loads <dir>/static/*.csv and <dir>/dynamic/*.csv (CsvBasic layout).
util::StatusOr<core::SocialNetwork> LoadCsvBasic(const std::string& dir);

}  // namespace snb::storage

#endif  // SNB_STORAGE_LOADER_H_

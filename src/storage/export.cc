#include "storage/export.h"

namespace snb::storage {

core::SocialNetwork ExportNetwork(const Graph& graph) {
  core::SocialNetwork net;

  // Static entities and entity records are stored verbatim.
  net.places.reserve(graph.NumPlaces());
  for (uint32_t i = 0; i < graph.NumPlaces(); ++i) {
    net.places.push_back(graph.PlaceAt(i));
  }
  net.organisations.reserve(graph.NumOrganisations());
  for (uint32_t i = 0; i < graph.NumOrganisations(); ++i) {
    net.organisations.push_back(graph.OrganisationAt(i));
  }
  net.tag_classes.reserve(graph.NumTagClasses());
  for (uint32_t i = 0; i < graph.NumTagClasses(); ++i) {
    net.tag_classes.push_back(graph.TagClassAt(i));
  }
  net.tags.reserve(graph.NumTags());
  for (uint32_t i = 0; i < graph.NumTags(); ++i) {
    net.tags.push_back(graph.TagAt(i));
  }

  // Dynamic entities: tombstoned rows are dropped here — export followed by
  // a rebuild *is* compaction, the only point where deletes become physical.
  net.persons.reserve(graph.NumLivePersons());
  for (uint32_t i = 0; i < graph.NumPersons(); ++i) {
    if (graph.PersonAlive(i)) net.persons.push_back(graph.PersonAt(i));
  }
  net.forums.reserve(graph.NumLiveForums());
  for (uint32_t i = 0; i < graph.NumForums(); ++i) {
    if (graph.ForumAlive(i)) net.forums.push_back(graph.ForumAt(i));
  }
  net.posts.reserve(graph.NumLivePosts());
  for (uint32_t i = 0; i < graph.NumPosts(); ++i) {
    if (graph.PostAlive(i)) net.posts.push_back(graph.PostAt(i));
  }
  net.comments.reserve(graph.NumLiveComments());
  for (uint32_t i = 0; i < graph.NumComments(); ++i) {
    if (graph.CommentAlive(i)) net.comments.push_back(graph.CommentAt(i));
  }

  // Pure-edge relations are only held in adjacency; rebuild their rows,
  // filtering edges whose endpoints died or that were tombstoned directly.
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (!graph.PersonAlive(p)) continue;
    core::Id p_id = graph.PersonAt(p).id;
    graph.Knows().ForEachDated(p, [&](uint32_t q, core::DateTime when) {
      if (q > p && graph.KnowsAlive(p, q)) {  // one row per undirected edge
        net.knows.push_back({p_id, graph.PersonAt(q).id, when});
      }
    });
    graph.PersonLikes().ForEachDated(p, [&](uint32_t msg,
                                            core::DateTime when) {
      if (graph.LikeAlive(p, msg)) {
        net.likes.push_back(
            {p_id, graph.MessageId(msg), Graph::IsPost(msg), when});
      }
    });
  }
  for (uint32_t f = 0; f < graph.NumForums(); ++f) {
    if (!graph.ForumAlive(f)) continue;
    core::Id f_id = graph.ForumAt(f).id;
    graph.ForumMembers().ForEachDated(
        f, [&](uint32_t member, core::DateTime join) {
          if (graph.MembershipAlive(member, f)) {
            net.memberships.push_back({f_id, graph.PersonAt(member).id, join});
          }
        });
  }

  return net;
}

}  // namespace snb::storage

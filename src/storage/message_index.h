// Creation-date index over the unified message view (posts ∪ comments).
//
// The BI workload is scan-dominated and most of its scans carry a creation-
// date window (choke points CP-2.2/CP-2.3: scan pruning through sorted data
// and zone maps). This index keeps every *bulk-loaded* message reference in
// one array sorted by (creationDate, ref); the parallel date column is
// delta + bit-packed into zoned column blocks (storage/columnar) — sorted
// dates have tiny deltas, so the 8 B/entry seed column compresses ~8×, and
// a date window reduces to a zone-searched block plus an in-block scan.
// Refs stay a plain uint32 array: the comment bit (bit 31) scatters them
// across the full 32-bit range, so packing would buy nothing, and
// MessageRangeView random-probes them from every morsel worker.
//
// Messages appended later by the update workload (IU 6/7) land in an
// *unsorted tail* in arrival order — appends never reshuffle the base, so
// concurrently running readers of the base stay valid (the store's
// single-writer / multi-reader contract). The tail carries per-block
// min/max creation-date zone maps; since IU streams arrive in roughly
// chronological order the zone maps prune the tail nearly as well as
// sorting would.
//
// Concurrency: the tail is written only through Append, which serializes
// writers on `append_mu_` (annotated, so an unlocked write path is a clang
// compile error). Readers deliberately do NOT take the lock — the store's
// single-writer / multi-reader discipline has readers either running against
// a quiesced store or tolerating an in-progress append not yet being
// visible; those read paths carry SNB_NO_THREAD_SAFETY_ANALYSIS with this
// contract spelled out at each site.
//
// All ranges are [start, end) over DateTime millis; use kMinMessageDate /
// kMaxMessageDate for open ends.

#ifndef SNB_STORAGE_MESSAGE_INDEX_H_
#define SNB_STORAGE_MESSAGE_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/date_time.h"
#include "storage/columnar/column_block.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::storage {

constexpr core::DateTime kMinMessageDate =
    std::numeric_limits<core::DateTime>::min();
constexpr core::DateTime kMaxMessageDate =
    std::numeric_limits<core::DateTime>::max();

class MessageDateIndex {
 public:
  /// Tail entries covered by one zone-map block.
  static constexpr size_t kTailBlock = 256;

  /// Min/max creation date of one tail block (validator introspection).
  struct Zone {
    core::DateTime min = kMaxMessageDate;
    core::DateTime max = kMinMessageDate;
  };

  /// Order-preserving bijection DateTime → uint64: flip the sign bit so
  /// signed order becomes unsigned order, which is what the delta blocks
  /// sort and zone-search in. Exposed so the validator can interpret the
  /// base-date column's zone metadata.
  static uint64_t DateKey(core::DateTime d) {
    return static_cast<uint64_t>(d) ^ (1ull << 63);
  }
  static core::DateTime DateOfKey(uint64_t key) {
    return static_cast<core::DateTime>(key ^ (1ull << 63));
  }

  /// Builds the sorted base from the hot creation-date columns; entry i of
  /// `post_dates` / `comment_dates` indexes post / comment i. Ties sort by
  /// message ref, so the order is a pure function of the data.
  void Build(const std::vector<core::DateTime>& post_dates,
             const std::vector<core::DateTime>& comment_dates);

  /// Appends one message to the unsorted tail (the IU 6/7 path). Serializes
  /// concurrent writers; see the class comment for the reader contract.
  void Append(uint32_t msg, core::DateTime date) SNB_EXCLUDES(append_mu_);

  size_t base_size() const { return base_refs_.size(); }
  // Single-writer/multi-reader contract: tail reads are unlocked by design
  // (readers observe a prefix of the tail; the writer only appends).
  size_t tail_size() const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return tail_refs_.size();
  }
  size_t size() const { return base_size() + tail_size(); }

  /// Positions [first, second) of the sorted base whose creation date lies
  /// in [start, end). Zone-searched through the compressed date column.
  std::pair<size_t, size_t> BaseRange(core::DateTime start,
                                      core::DateTime end) const {
    return {base_dates_.LowerBound(DateKey(start)),
            base_dates_.LowerBound(DateKey(end))};
  }

  uint32_t BaseAt(size_t pos) const { return base_refs_[pos]; }

  /// Date of one base entry. Routes through the delta blocks, so a point
  /// probe costs an in-block prefix sum — use ForEachBase for full walks.
  core::DateTime BaseDateAt(size_t pos) const {
    return DateOfKey(base_dates_.At(pos));
  }

  /// Visits every base entry in index order: f(pos, ref, date). Decodes the
  /// date column blockwise (sequential cost, unlike per-entry BaseDateAt).
  template <typename F>
  void ForEachBase(F&& f) const {
    std::vector<uint64_t> keys;
    keys.reserve(columnar::ColumnBlock::kMaxValues);
    size_t pos = 0;
    for (size_t b = 0; b < base_dates_.num_blocks(); ++b) {
      keys.clear();
      base_dates_.block(b).DecodeAll(&keys);
      for (uint64_t key : keys) {
        f(pos, base_refs_[pos], DateOfKey(key));
        ++pos;
      }
    }
  }

  /// The compressed base-date column (block-zone validation, accounting).
  const columnar::ZonedColumn& BaseDateColumn() const { return base_dates_; }

  // ---- Tail introspection (validator / tests / bench report) ---------------
  // Unlocked under the same single-writer/multi-reader contract as the scan
  // paths below.

  uint32_t TailAt(size_t pos) const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return tail_refs_[pos];
  }
  core::DateTime TailDateAt(size_t pos) const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return tail_dates_[pos];
  }
  size_t NumTailBlocks() const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return tail_zones_.size();
  }
  Zone TailZoneAt(size_t block) const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return tail_zones_[block];
  }

  /// Visits every tail message with creation date in [start, end): blocks
  /// whose zone map misses the window are skipped whole; survivors are
  /// filtered per entry.
  // Single-writer/multi-reader contract: unlocked tail scan by design.
  template <typename F>
  void ForEachTailInRange(core::DateTime start, core::DateTime end,
                          F&& f) const SNB_NO_THREAD_SAFETY_ANALYSIS {
    for (size_t b = 0; b < tail_zones_.size(); ++b) {
      const Zone& z = tail_zones_[b];
      if (z.max < start || z.min >= end) continue;
      const size_t lo = b * kTailBlock;
      const size_t hi = std::min(lo + kTailBlock, tail_refs_.size());
      for (size_t i = lo; i < hi; ++i) {
        if (tail_dates_[i] >= start && tail_dates_[i] < end) f(tail_refs_[i]);
      }
    }
  }

  /// Number of index entries a range scan must examine: the base slice plus
  /// every entry of each tail block whose zone map overlaps the window. The
  /// pruning tests and bench report compare this against the full message
  /// count.
  // Single-writer/multi-reader contract: unlocked tail scan by design.
  size_t CandidatesInRange(core::DateTime start, core::DateTime end) const
      SNB_NO_THREAD_SAFETY_ANALYSIS {
    auto [lo, hi] = BaseRange(start, end);
    size_t n = hi - lo;
    for (size_t b = 0; b < tail_zones_.size(); ++b) {
      const Zone& z = tail_zones_[b];
      if (z.max < start || z.min >= end) continue;
      n += std::min(b * kTailBlock + kTailBlock, tail_refs_.size()) -
           b * kTailBlock;
    }
    return n;
  }

  /// Heap bytes actually held (memory accounting).
  size_t ByteSize() const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return base_refs_.capacity() * sizeof(uint32_t) + base_dates_.ByteSize() +
           tail_refs_.capacity() * sizeof(uint32_t) +
           tail_dates_.capacity() * sizeof(core::DateTime) +
           tail_zones_.capacity() * sizeof(Zone);
  }

  /// Seed-layout bytes for the same content: 4 B ref + 8 B date per entry
  /// (base and tail) plus the tail zone maps.
  size_t RawByteSize() const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return size() * (sizeof(uint32_t) + sizeof(core::DateTime)) +
           tail_zones_.size() * sizeof(Zone);
  }

 private:
  friend struct TestAccess;  // corruption seeding in tests (test_access.h)

  // Base: refs sorted by (date, ref); the date column is delta + bit-packed
  // in DateKey space. Written only by Build (before the store is shared).
  std::vector<uint32_t> base_refs_;
  columnar::ZonedColumn base_dates_;

  // Tail: arrival order plus per-kTailBlock zone maps. Guarded against
  // concurrent *writers*; readers are lock-free per the class contract.
  util::Mutex append_mu_{SNB_LOCK_SITE("storage.message_index.append_mu")};
  std::vector<uint32_t> tail_refs_ SNB_GUARDED_BY(append_mu_);
  std::vector<core::DateTime> tail_dates_ SNB_GUARDED_BY(append_mu_);
  std::vector<Zone> tail_zones_ SNB_GUARDED_BY(append_mu_);
};

}  // namespace snb::storage

#endif  // SNB_STORAGE_MESSAGE_INDEX_H_

// Creation-date index over the unified message view (posts ∪ comments).
//
// The BI workload is scan-dominated and most of its scans carry a creation-
// date window (choke points CP-2.2/CP-2.3: scan pruning through sorted data
// and zone maps). This index keeps every *bulk-loaded* message reference in
// one array sorted by (creationDate, ref); the parallel date column is
// delta + bit-packed into zoned column blocks (storage/columnar) — sorted
// dates have tiny deltas, so the 8 B/entry seed column compresses ~8×, and
// a date window reduces to a zone-searched block plus an in-block scan.
// Refs stay a plain uint32 array: the comment bit (bit 31) scatters them
// across the full 32-bit range, so packing would buy nothing, and
// MessageRangeView random-probes them from every morsel worker.
//
// Messages appended later by the update workload (IU 6/7) land in an
// *unsorted tail* in arrival order — appends never reshuffle the base, so
// concurrently running readers of the base stay valid (the store's
// single-writer / multi-reader contract). The tail carries per-block
// min/max creation-date zone maps; since IU streams arrive in roughly
// chronological order the zone maps prune the tail nearly as well as
// sorting would.
//
// Concurrency: the tail is written only through Append, which serializes
// writers on `append_mu_` (annotated, so an unlocked write path is a clang
// compile error). Readers deliberately do NOT take the lock — the store's
// single-writer / multi-reader discipline has readers either running against
// a quiesced store or tolerating an in-progress append not yet being
// visible; those read paths carry SNB_NO_THREAD_SAFETY_ANALYSIS with this
// contract spelled out at each site.
//
// All ranges are [start, end) over DateTime millis; use kMinMessageDate /
// kMaxMessageDate for open ends.

#ifndef SNB_STORAGE_MESSAGE_INDEX_H_
#define SNB_STORAGE_MESSAGE_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/date_time.h"
#include "storage/columnar/column_block.h"
#include "storage/scan_stats.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::storage {

constexpr core::DateTime kMinMessageDate =
    std::numeric_limits<core::DateTime>::min();
constexpr core::DateTime kMaxMessageDate =
    std::numeric_limits<core::DateTime>::max();

class MessageDateIndex {
 public:
  /// Tail entries covered by one zone-map block.
  static constexpr size_t kTailBlock = 256;

  /// Min/max creation date of one tail block (validator introspection), plus
  /// the block's like-count zone: an upper bound on the like degree of every
  /// member message, maintained by NoteLike. Top-k bound pushdown (CP-1.3)
  /// skips whole blocks whose max cannot beat the current k-th bound.
  struct Zone {
    core::DateTime min = kMaxMessageDate;
    core::DateTime max = kMinMessageDate;
    uint32_t max_likes = 0;
  };

  /// Order-preserving bijection DateTime → uint64: flip the sign bit so
  /// signed order becomes unsigned order, which is what the delta blocks
  /// sort and zone-search in. Exposed so the validator can interpret the
  /// base-date column's zone metadata.
  static uint64_t DateKey(core::DateTime d) {
    return static_cast<uint64_t>(d) ^ (1ull << 63);
  }
  static core::DateTime DateOfKey(uint64_t key) {
    return static_cast<core::DateTime>(key ^ (1ull << 63));
  }

  /// Builds the sorted base from the hot creation-date columns; entry i of
  /// `post_dates` / `comment_dates` indexes post / comment i. Ties sort by
  /// message ref, so the order is a pure function of the data.
  void Build(const std::vector<core::DateTime>& post_dates,
             const std::vector<core::DateTime>& comment_dates);

  /// Appends one message to the unsorted tail (the IU 6/7 path). Serializes
  /// concurrent writers; see the class comment for the reader contract.
  void Append(uint32_t msg, core::DateTime date) SNB_EXCLUDES(append_mu_);

  /// Builds the per-base-block like-count zones: `like_count_of(ref)` returns
  /// the current like degree of a message reference. Called once at graph
  /// build, after the bulk likes are loaded; the tail is empty at that point
  /// (tail zones start at 0 and are maintained by NoteLike).
  template <typename LikeCountFn>
  void BuildLikeZones(LikeCountFn&& like_count_of) SNB_EXCLUDES(append_mu_) {
    util::MutexLock lock(append_mu_);
    const size_t kBlock = columnar::ColumnBlock::kMaxValues;
    base_like_max_.assign(base_dates_.num_blocks(), 0);
    for (size_t i = 0; i < base_refs_.size(); ++i) {
      uint32_t& m = base_like_max_[i / kBlock];
      m = std::max(m, like_count_of(base_refs_[i]));
    }
  }

  /// Records that message `msg` (creation date `date`) now has `likes`
  /// likes, raising its block's like-count zone max so bound pruning stays
  /// an upper bound (the IU 2/3 path). Degrees only grow, so zones never
  /// need lowering. The (date, ref)-sorted base makes the position binary-
  /// searchable; tail entries fall back to a linear scan (the tail is the
  /// small post-load overflow).
  void NoteLike(uint32_t msg, core::DateTime date, uint32_t likes)
      SNB_EXCLUDES(append_mu_);

  /// Like-count zone max of one base block (validator / test introspection).
  // Single-writer/multi-reader contract: unlocked read by design.
  uint32_t BaseBlockMaxLikes(size_t block) const
      SNB_NO_THREAD_SAFETY_ANALYSIS {
    return base_like_max_[block];
  }

  size_t base_size() const { return base_refs_.size(); }
  // Single-writer/multi-reader contract: tail reads are unlocked by design
  // (readers observe a prefix of the tail; the writer only appends).
  size_t tail_size() const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return tail_refs_.size();
  }
  size_t size() const { return base_size() + tail_size(); }

  /// Positions [first, second) of the sorted base whose creation date lies
  /// in [start, end). Zone-searched through the compressed date column.
  std::pair<size_t, size_t> BaseRange(core::DateTime start,
                                      core::DateTime end) const {
    return {base_dates_.LowerBound(DateKey(start)),
            base_dates_.LowerBound(DateKey(end))};
  }

  uint32_t BaseAt(size_t pos) const { return base_refs_[pos]; }

  /// Date of one base entry. Routes through the delta blocks, so a point
  /// probe costs an in-block prefix sum — use ForEachBase for full walks.
  core::DateTime BaseDateAt(size_t pos) const {
    return DateOfKey(base_dates_.At(pos));
  }

  /// Visits every base entry in index order: f(pos, ref, date). Decodes the
  /// date column blockwise (sequential cost, unlike per-entry BaseDateAt).
  template <typename F>
  void ForEachBase(F&& f) const {
    std::vector<uint64_t> keys;
    keys.reserve(columnar::ColumnBlock::kMaxValues);
    size_t pos = 0;
    for (size_t b = 0; b < base_dates_.num_blocks(); ++b) {
      keys.clear();
      base_dates_.block(b).DecodeAll(&keys);
      for (uint64_t key : keys) {
        f(pos, base_refs_[pos], DateOfKey(key));
        ++pos;
      }
    }
  }

  /// The compressed base-date column (block-zone validation, accounting).
  const columnar::ZonedColumn& BaseDateColumn() const { return base_dates_; }

  /// Visits every base entry with creation date in [start, end) in date
  /// order, counting the zone-searched date pruning into the ambient
  /// ScanStats sink (blocks the window never touches count as date skips).
  template <typename F>
  void ForEachBaseInRange(core::DateTime start, core::DateTime end,
                          F&& f) const {
    auto [lo, hi] = BaseRange(start, end);
    CountBlocksSkippedDate(base_dates_.num_blocks() - TouchedBlocks(lo, hi));
    CountRowsDecoded(hi - lo);
    for (size_t i = lo; i < hi; ++i) f(base_refs_[i]);
  }

  /// Bound-pushdown base scan: like ForEachBaseInRange, but each surviving
  /// 1024-entry block is first offered to `skip(block_max_likes)` — a true
  /// return prunes the whole block before any ref is decoded (CP-1.3 over
  /// the CP-2.2/2.3 zones). `skip` must be monotone in its argument (a
  /// block max that fails implies every member fails).
  // Single-writer/multi-reader contract: unlocked zone read by design.
  template <typename SkipFn, typename F>
  void ForEachBaseInRangeBounded(core::DateTime start, core::DateTime end,
                                 SkipFn&& skip, F&& f) const
      SNB_NO_THREAD_SAFETY_ANALYSIS {
    const size_t kBlock = columnar::ColumnBlock::kMaxValues;
    auto [lo, hi] = BaseRange(start, end);
    CountBlocksSkippedDate(base_dates_.num_blocks() - TouchedBlocks(lo, hi));
    size_t i = lo;
    while (i < hi) {
      const size_t b = i / kBlock;
      const size_t block_end = std::min(hi, (b + 1) * kBlock);
      if (skip(static_cast<int64_t>(base_like_max_[b]))) {
        CountBlocksSkippedBound(1);
        i = block_end;
        continue;
      }
      CountRowsDecoded(block_end - i);
      for (; i < block_end; ++i) f(base_refs_[i]);
    }
  }

  // ---- Tail introspection (validator / tests / bench report) ---------------
  // Unlocked under the same single-writer/multi-reader contract as the scan
  // paths below.

  uint32_t TailAt(size_t pos) const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return tail_refs_[pos];
  }
  core::DateTime TailDateAt(size_t pos) const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return tail_dates_[pos];
  }
  size_t NumTailBlocks() const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return tail_zones_.size();
  }
  Zone TailZoneAt(size_t block) const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return tail_zones_[block];
  }

  /// Visits every tail message with creation date in [start, end): blocks
  /// whose zone map misses the window are skipped whole; survivors are
  /// filtered per entry.
  // Single-writer/multi-reader contract: unlocked tail scan by design.
  template <typename F>
  void ForEachTailInRange(core::DateTime start, core::DateTime end,
                          F&& f) const SNB_NO_THREAD_SAFETY_ANALYSIS {
    for (size_t b = 0; b < tail_zones_.size(); ++b) {
      const Zone& z = tail_zones_[b];
      if (z.max < start || z.min >= end) {
        CountBlocksSkippedDate(1);
        continue;
      }
      const size_t lo = b * kTailBlock;
      const size_t hi = std::min(lo + kTailBlock, tail_refs_.size());
      CountRowsDecoded(hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        if (tail_dates_[i] >= start && tail_dates_[i] < end) f(tail_refs_[i]);
      }
    }
  }

  /// Bound-pushdown tail scan: ForEachTailInRange plus a like-count zone
  /// check per surviving block (same `skip` contract as the base variant).
  // Single-writer/multi-reader contract: unlocked tail scan by design.
  template <typename SkipFn, typename F>
  void ForEachTailInRangeBounded(core::DateTime start, core::DateTime end,
                                 SkipFn&& skip, F&& f) const
      SNB_NO_THREAD_SAFETY_ANALYSIS {
    for (size_t b = 0; b < tail_zones_.size(); ++b) {
      const Zone& z = tail_zones_[b];
      if (z.max < start || z.min >= end) {
        CountBlocksSkippedDate(1);
        continue;
      }
      if (skip(static_cast<int64_t>(z.max_likes))) {
        CountBlocksSkippedBound(1);
        continue;
      }
      const size_t lo = b * kTailBlock;
      const size_t hi = std::min(lo + kTailBlock, tail_refs_.size());
      CountRowsDecoded(hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        if (tail_dates_[i] >= start && tail_dates_[i] < end) f(tail_refs_[i]);
      }
    }
  }

  /// Number of index entries a range scan must examine: the base slice plus
  /// every entry of each tail block whose zone map overlaps the window. The
  /// pruning tests and bench report compare this against the full message
  /// count.
  // Single-writer/multi-reader contract: unlocked tail scan by design.
  size_t CandidatesInRange(core::DateTime start, core::DateTime end) const
      SNB_NO_THREAD_SAFETY_ANALYSIS {
    auto [lo, hi] = BaseRange(start, end);
    size_t n = hi - lo;
    for (size_t b = 0; b < tail_zones_.size(); ++b) {
      const Zone& z = tail_zones_[b];
      if (z.max < start || z.min >= end) continue;
      n += std::min(b * kTailBlock + kTailBlock, tail_refs_.size()) -
           b * kTailBlock;
    }
    return n;
  }

  /// Heap bytes actually held (memory accounting).
  size_t ByteSize() const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return base_refs_.capacity() * sizeof(uint32_t) + base_dates_.ByteSize() +
           base_like_max_.capacity() * sizeof(uint32_t) +
           tail_refs_.capacity() * sizeof(uint32_t) +
           tail_dates_.capacity() * sizeof(core::DateTime) +
           tail_zones_.capacity() * sizeof(Zone);
  }

  /// Seed-layout bytes for the same content: 4 B ref + 8 B date per entry
  /// (base and tail) plus the tail zone maps.
  size_t RawByteSize() const SNB_NO_THREAD_SAFETY_ANALYSIS {
    return size() * (sizeof(uint32_t) + sizeof(core::DateTime)) +
           tail_zones_.size() * sizeof(Zone);
  }

 private:
  friend struct TestAccess;  // corruption seeding in tests (test_access.h)

  /// Base-date blocks overlapped by positions [lo, hi).
  static size_t TouchedBlocks(size_t lo, size_t hi) {
    if (lo >= hi) return 0;
    const size_t kBlock = columnar::ColumnBlock::kMaxValues;
    return (hi + kBlock - 1) / kBlock - lo / kBlock;
  }

  // Base: refs sorted by (date, ref); the date column is delta + bit-packed
  // in DateKey space. Written only by Build (before the store is shared).
  // snb-lint-allow(guarded-by): written only by Build, before sharing
  std::vector<uint32_t> base_refs_;
  // snb-lint-allow(guarded-by): written only by Build, before sharing
  columnar::ZonedColumn base_dates_;

  // Per-base-block like-count zone maxima (1024-aligned, one per date-column
  // block). Written by BuildLikeZones/NoteLike under append_mu_; scans read
  // them unlocked per the single-writer/multi-reader contract (a stale value
  // is a *looser* bound — less pruning, never a wrong skip, because degrees
  // only grow and the zone is raised before the like becomes visible).
  // snb-lint-allow(guarded-by): single-writer under append_mu_; unlocked
  // readers tolerate staleness (bound is monotone, see above)
  std::vector<uint32_t> base_like_max_;

  // Tail: arrival order plus per-kTailBlock zone maps. Guarded against
  // concurrent *writers*; readers are lock-free per the class contract.
  util::Mutex append_mu_{SNB_LOCK_SITE("storage.message_index.append_mu")};
  std::vector<uint32_t> tail_refs_ SNB_GUARDED_BY(append_mu_);
  std::vector<core::DateTime> tail_dates_ SNB_GUARDED_BY(append_mu_);
  std::vector<Zone> tail_zones_ SNB_GUARDED_BY(append_mu_);
};

}  // namespace snb::storage

#endif  // SNB_STORAGE_MESSAGE_INDEX_H_

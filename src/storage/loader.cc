#include "storage/loader.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "core/date_time.h"
#include "util/csv.h"
#include "util/failpoint.h"

namespace snb::storage {

using core::SocialNetwork;
using util::CsvTable;
using util::Status;
using util::StatusOr;

namespace {

core::Id ToId(const std::string& s) { return std::strtoll(s.c_str(), nullptr, 10); }
int32_t ToI32(const std::string& s) {
  return static_cast<int32_t>(std::strtol(s.c_str(), nullptr, 10));
}

StatusOr<CsvTable> Read(const std::string& dir, const std::string& sub,
                        const std::string& stem) {
  return util::ReadCsv(dir + "/" + sub + "/" + stem + "_0_0.csv");
}

Status ParseDateField(const std::string& text, core::Date* out) {
  if (!core::ParseDate(text, out)) {
    return Status::Corruption("bad date: " + text);
  }
  return Status::Ok();
}

Status ParseDateTimeField(const std::string& text, core::DateTime* out) {
  if (!core::ParseDateTime(text, out)) {
    return Status::Corruption("bad datetime: " + text);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<SocialNetwork> LoadCsvBasic(const std::string& dir) {
  SNB_FAILPOINT_STATUS("loader.load_csv");
  SocialNetwork net;

#define SNB_LOAD(var, sub, stem)                  \
  auto var##_or = Read(dir, sub, stem);           \
  if (!var##_or.ok()) return var##_or.status();   \
  CsvTable& var = var##_or.value()

  // ---- static ----
  {
    SNB_LOAD(t, "static", "place");
    for (auto& row : t.rows) {
      core::Place p;
      p.id = ToId(row[0]);
      p.name = row[1];
      p.url = row[2];
      p.type = row[3] == "city"      ? core::PlaceType::kCity
               : row[3] == "country" ? core::PlaceType::kCountry
                                     : core::PlaceType::kContinent;
      net.places.push_back(std::move(p));
    }
    SNB_LOAD(rel, "static", "place_isPartOf_place");
    std::unordered_map<core::Id, core::Id> part_of;
    for (auto& row : rel.rows) part_of[ToId(row[0])] = ToId(row[1]);
    for (core::Place& p : net.places) {
      auto it = part_of.find(p.id);
      p.part_of = it == part_of.end() ? core::kNoId : it->second;
    }
  }
  {
    SNB_LOAD(t, "static", "organisation");
    for (auto& row : t.rows) {
      core::Organisation o;
      o.id = ToId(row[0]);
      o.type = row[1] == "university" ? core::OrganisationType::kUniversity
                                      : core::OrganisationType::kCompany;
      o.name = row[2];
      o.url = row[3];
      net.organisations.push_back(std::move(o));
    }
    SNB_LOAD(rel, "static", "organisation_isLocatedIn_place");
    std::unordered_map<core::Id, core::Id> located;
    for (auto& row : rel.rows) located[ToId(row[0])] = ToId(row[1]);
    for (core::Organisation& o : net.organisations) o.place = located[o.id];
  }
  {
    SNB_LOAD(t, "static", "tagclass");
    for (auto& row : t.rows) {
      core::TagClass tc;
      tc.id = ToId(row[0]);
      tc.name = row[1];
      tc.url = row[2];
      net.tag_classes.push_back(std::move(tc));
    }
    SNB_LOAD(rel, "static", "tagclass_isSubclassOf_tagclass");
    std::unordered_map<core::Id, core::Id> parent;
    for (auto& row : rel.rows) parent[ToId(row[0])] = ToId(row[1]);
    for (core::TagClass& tc : net.tag_classes) {
      auto it = parent.find(tc.id);
      tc.parent = it == parent.end() ? core::kNoId : it->second;
    }
  }
  {
    SNB_LOAD(t, "static", "tag");
    for (auto& row : t.rows) {
      core::Tag tag;
      tag.id = ToId(row[0]);
      tag.name = row[1];
      tag.url = row[2];
      net.tags.push_back(std::move(tag));
    }
    SNB_LOAD(rel, "static", "tag_hasType_tagclass");
    std::unordered_map<core::Id, core::Id> type_of;
    for (auto& row : rel.rows) type_of[ToId(row[0])] = ToId(row[1]);
    for (core::Tag& tag : net.tags) tag.tag_class = type_of[tag.id];
  }

  // ---- persons ----
  std::unordered_map<core::Id, size_t> person_pos;
  {
    SNB_LOAD(t, "dynamic", "person");
    for (auto& row : t.rows) {
      core::Person p;
      p.id = ToId(row[0]);
      p.first_name = row[1];
      p.last_name = row[2];
      p.gender = row[3];
      SNB_RETURN_IF_ERROR(ParseDateField(row[4], &p.birthday));
      SNB_RETURN_IF_ERROR(ParseDateTimeField(row[5], &p.creation_date));
      p.location_ip = row[6];
      p.browser_used = row[7];
      person_pos[p.id] = net.persons.size();
      net.persons.push_back(std::move(p));
    }
    SNB_LOAD(city, "dynamic", "person_isLocatedIn_place");
    for (auto& row : city.rows) {
      net.persons[person_pos[ToId(row[0])]].city = ToId(row[1]);
    }
    SNB_LOAD(email, "dynamic", "person_email_emailaddress");
    for (auto& row : email.rows) {
      net.persons[person_pos[ToId(row[0])]].emails.push_back(row[1]);
    }
    SNB_LOAD(speaks, "dynamic", "person_speaks_language");
    for (auto& row : speaks.rows) {
      net.persons[person_pos[ToId(row[0])]].speaks.push_back(row[1]);
    }
    SNB_LOAD(interest, "dynamic", "person_hasInterest_tag");
    for (auto& row : interest.rows) {
      net.persons[person_pos[ToId(row[0])]].interests.push_back(ToId(row[1]));
    }
    SNB_LOAD(study, "dynamic", "person_studyAt_organisation");
    for (auto& row : study.rows) {
      net.persons[person_pos[ToId(row[0])]].study_at.push_back(
          {ToId(row[1]), ToI32(row[2])});
    }
    SNB_LOAD(work, "dynamic", "person_workAt_organisation");
    for (auto& row : work.rows) {
      net.persons[person_pos[ToId(row[0])]].work_at.push_back(
          {ToId(row[1]), ToI32(row[2])});
    }
    SNB_LOAD(knows, "dynamic", "person_knows_person");
    for (auto& row : knows.rows) {
      core::Knows k;
      k.person1 = ToId(row[0]);
      k.person2 = ToId(row[1]);
      SNB_RETURN_IF_ERROR(ParseDateTimeField(row[2], &k.creation_date));
      net.knows.push_back(k);
    }
  }

  // ---- forums ----
  std::unordered_map<core::Id, size_t> forum_pos;
  {
    SNB_LOAD(t, "dynamic", "forum");
    for (auto& row : t.rows) {
      core::Forum f;
      f.id = ToId(row[0]);
      f.title = row[1];
      SNB_RETURN_IF_ERROR(ParseDateTimeField(row[2], &f.creation_date));
      f.kind = f.title.rfind("Wall", 0) == 0    ? core::ForumKind::kWall
               : f.title.rfind("Album", 0) == 0 ? core::ForumKind::kAlbum
                                                : core::ForumKind::kGroup;
      forum_pos[f.id] = net.forums.size();
      net.forums.push_back(std::move(f));
    }
    SNB_LOAD(mod, "dynamic", "forum_hasModerator_person");
    for (auto& row : mod.rows) {
      net.forums[forum_pos[ToId(row[0])]].moderator = ToId(row[1]);
    }
    SNB_LOAD(ftag, "dynamic", "forum_hasTag_tag");
    for (auto& row : ftag.rows) {
      net.forums[forum_pos[ToId(row[0])]].tags.push_back(ToId(row[1]));
    }
    SNB_LOAD(member, "dynamic", "forum_hasMember_person");
    for (auto& row : member.rows) {
      core::ForumMembership m;
      m.forum = ToId(row[0]);
      m.person = ToId(row[1]);
      SNB_RETURN_IF_ERROR(ParseDateTimeField(row[2], &m.join_date));
      net.memberships.push_back(m);
    }
  }

  // ---- posts ----
  std::unordered_map<core::Id, size_t> post_pos;
  {
    SNB_LOAD(t, "dynamic", "post");
    for (auto& row : t.rows) {
      core::Post p;
      p.id = ToId(row[0]);
      p.image_file = row[1];
      SNB_RETURN_IF_ERROR(ParseDateTimeField(row[2], &p.creation_date));
      p.location_ip = row[3];
      p.browser_used = row[4];
      p.language = row[5];
      p.content = row[6];
      p.length = ToI32(row[7]);
      post_pos[p.id] = net.posts.size();
      net.posts.push_back(std::move(p));
    }
    SNB_LOAD(creator, "dynamic", "post_hasCreator_person");
    for (auto& row : creator.rows) {
      net.posts[post_pos[ToId(row[0])]].creator = ToId(row[1]);
    }
    SNB_LOAD(container, "dynamic", "forum_containerOf_post");
    for (auto& row : container.rows) {
      net.posts[post_pos[ToId(row[1])]].forum = ToId(row[0]);
    }
    SNB_LOAD(loc, "dynamic", "post_isLocatedIn_place");
    for (auto& row : loc.rows) {
      net.posts[post_pos[ToId(row[0])]].country = ToId(row[1]);
    }
    SNB_LOAD(ptag, "dynamic", "post_hasTag_tag");
    for (auto& row : ptag.rows) {
      net.posts[post_pos[ToId(row[0])]].tags.push_back(ToId(row[1]));
    }
  }

  // ---- comments ----
  std::unordered_map<core::Id, size_t> comment_pos;
  {
    SNB_LOAD(t, "dynamic", "comment");
    for (auto& row : t.rows) {
      core::Comment c;
      c.id = ToId(row[0]);
      SNB_RETURN_IF_ERROR(ParseDateTimeField(row[1], &c.creation_date));
      c.location_ip = row[2];
      c.browser_used = row[3];
      c.content = row[4];
      c.length = ToI32(row[5]);
      comment_pos[c.id] = net.comments.size();
      net.comments.push_back(std::move(c));
    }
    SNB_LOAD(creator, "dynamic", "comment_hasCreator_person");
    for (auto& row : creator.rows) {
      net.comments[comment_pos[ToId(row[0])]].creator = ToId(row[1]);
    }
    SNB_LOAD(loc, "dynamic", "comment_isLocatedIn_place");
    for (auto& row : loc.rows) {
      net.comments[comment_pos[ToId(row[0])]].country = ToId(row[1]);
    }
    SNB_LOAD(rp, "dynamic", "comment_replyOf_post");
    for (auto& row : rp.rows) {
      net.comments[comment_pos[ToId(row[0])]].reply_of_post = ToId(row[1]);
    }
    SNB_LOAD(rc, "dynamic", "comment_replyOf_comment");
    for (auto& row : rc.rows) {
      net.comments[comment_pos[ToId(row[0])]].reply_of_comment = ToId(row[1]);
    }
    SNB_LOAD(ctag, "dynamic", "comment_hasTag_tag");
    for (auto& row : ctag.rows) {
      net.comments[comment_pos[ToId(row[0])]].tags.push_back(ToId(row[1]));
    }
  }

  // ---- likes ----
  {
    SNB_LOAD(lp, "dynamic", "person_likes_post");
    for (auto& row : lp.rows) {
      core::Like l;
      l.person = ToId(row[0]);
      l.message = ToId(row[1]);
      l.is_post = true;
      SNB_RETURN_IF_ERROR(ParseDateTimeField(row[2], &l.creation_date));
      net.likes.push_back(l);
    }
    SNB_LOAD(lc, "dynamic", "person_likes_comment");
    for (auto& row : lc.rows) {
      core::Like l;
      l.person = ToId(row[0]);
      l.message = ToId(row[1]);
      l.is_post = false;
      SNB_RETURN_IF_ERROR(ParseDateTimeField(row[2], &l.creation_date));
      net.likes.push_back(l);
    }
  }

#undef SNB_LOAD

  // Graph construction requires comments ordered so that replies follow
  // their targets; creation-date order guarantees it.
  std::sort(net.comments.begin(), net.comments.end(),
            [](const core::Comment& a, const core::Comment& b) {
              return a.creation_date != b.creation_date
                         ? a.creation_date < b.creation_date
                         : a.id < b.id;
            });

  return net;
}

}  // namespace snb::storage

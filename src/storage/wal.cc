#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "datagen/update_stream.h"
#include "util/check.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace snb::storage {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'B', 'W', 'A', 'L', '0', '1'};
constexpr size_t kRecordHeaderSize = 8;  // u32 len + u32 crc

enum RecordType : uint8_t {
  kBatchBegin = 1,
  kEvent = 2,
  kBatchCommit = 3,
  kDeleteBatch = 4,
};

void PutU32(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
  out[2] = static_cast<uint8_t>(v >> 16);
  out[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

/// write(2) until done; short writes from the kernel are retried, so a
/// genuinely torn record can only come from a crash (or the injected
/// torn-write fail point below).
util::Status WriteAll(int fd, const void* data, size_t n) {
  const auto* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      return util::Status::IoError("WAL write failed: " +
                                   std::string(std::strerror(errno)));
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  return util::Status::Ok();
}

std::vector<uint8_t> FrameRecord(uint8_t type, const void* payload,
                                 size_t len) {
  std::vector<uint8_t> buf;
  buf.reserve(kRecordHeaderSize + 1 + len);
  buf.resize(kRecordHeaderSize);
  buf.push_back(type);
  const auto* p = static_cast<const uint8_t*>(payload);
  buf.insert(buf.end(), p, p + len);
  PutU32(buf.data(), static_cast<uint32_t>(buf.size() - kRecordHeaderSize));
  PutU32(buf.data() + 4, util::Crc32c(buf.data() + kRecordHeaderSize,
                                      buf.size() - kRecordHeaderSize));
  return buf;
}

}  // namespace

std::string WalPath(const std::string& store_dir) {
  return store_dir + "/wal.log";
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

util::Status Wal::Open(const std::string& path, WalOptions options) {
  SNB_CHECK(fd_ < 0);
  SNB_FAILPOINT_STATUS("wal.open");
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return util::Status::IoError("cannot open WAL " + path + ": " +
                                 std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size == 0) {
    util::Status st = WriteAll(fd, kMagic, sizeof(kMagic));
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
    size = sizeof(kMagic);
  } else if (size < static_cast<off_t>(sizeof(kMagic))) {
    // A crash before the magic completed: nothing was ever committed here,
    // so restart the file from scratch.
    if (::ftruncate(fd, 0) != 0 ||
        !WriteAll(fd, kMagic, sizeof(kMagic)).ok()) {
      ::close(fd);
      return util::Status::IoError("cannot re-initialize torn WAL " + path);
    }
    size = sizeof(kMagic);
    if (::lseek(fd, size, SEEK_SET) < 0) {
      ::close(fd);
      return util::Status::IoError("lseek failed on WAL " + path);
    }
  }
  fd_ = fd;
  path_ = path;
  options_ = options;
  offset_ = static_cast<uint64_t>(size);
  in_batch_ = false;
  dirty_ = false;
  return util::Status::Ok();
}

util::Status Wal::WriteRecord(uint8_t type, const void* payload, size_t len) {
  SNB_CHECK(fd_ >= 0);
  SNB_FAILPOINT_STATUS("wal.append");
  std::vector<uint8_t> buf = FrameRecord(type, payload, len);

  // Torn-write site: when armed, persist only the first half of the frame
  // before firing. In crash mode the process dies leaving a short record on
  // disk (what a real power cut mid-write leaves); in error mode the torn
  // prefix stays behind and the injected Status is returned — the caller's
  // AbortBatch/truncate path must cope with both.
  static const bool torn_site_registered =
      util::failpoint::RegisterSite("wal.append.short_write");
  (void)torn_site_registered;
  if (util::failpoint::AnyArmed() &&
      util::failpoint::IsArmed("wal.append.short_write")) {
    SNB_RETURN_IF_ERROR(WriteAll(fd_, buf.data(), buf.size() / 2));
    offset_ += buf.size() / 2;
    util::Status injected = util::failpoint::Hit("wal.append.short_write");
    if (!injected.ok()) return injected;
    // Armed but the spec did not fire (e.g. nth-hit not reached yet):
    // complete the record so the log stays well-formed.
    SNB_RETURN_IF_ERROR(
        WriteAll(fd_, buf.data() + buf.size() / 2, buf.size() - buf.size() / 2));
    offset_ += buf.size() - buf.size() / 2;
  } else {
    SNB_RETURN_IF_ERROR(WriteAll(fd_, buf.data(), buf.size()));
    offset_ += buf.size();
  }

  if (options_.sync == WalSyncPolicy::kEveryRecord) {
    SNB_RETURN_IF_ERROR(Sync());
  }
  return util::Status::Ok();
}

util::Status Wal::BatchBegin(core::Date day) {
  SNB_CHECK(!in_batch_);
  // Mark the rollback point *before* any bytes go out: a failure inside
  // WriteRecord leaves a torn record that AbortBatch must be able to cut.
  batch_start_ = offset_;
  dirty_ = true;
  uint8_t payload[4];
  PutU32(payload, static_cast<uint32_t>(day));
  SNB_RETURN_IF_ERROR(WriteRecord(kBatchBegin, payload, sizeof(payload)));
  SNB_FAILPOINT_STATUS("wal.batch_begin");
  in_batch_ = true;
  return util::Status::Ok();
}

util::Status Wal::NoteDeleteBatch(core::Date day, uint32_t delete_count) {
  SNB_CHECK(in_batch_);
  uint8_t payload[8];
  PutU32(payload, static_cast<uint32_t>(day));
  PutU32(payload + 4, delete_count);
  SNB_RETURN_IF_ERROR(WriteRecord(kDeleteBatch, payload, sizeof(payload)));
  SNB_FAILPOINT_STATUS("wal.delete_batch");
  return util::Status::Ok();
}

util::Status Wal::Append(const datagen::UpdateEvent& event) {
  SNB_CHECK(in_batch_);
  std::string line = datagen::FormatUpdateEventLine(event);
  return WriteRecord(kEvent, line.data(), line.size());
}

util::Status Wal::BatchCommit(core::Date day) {
  SNB_CHECK(in_batch_);
  uint8_t payload[4];
  PutU32(payload, static_cast<uint32_t>(day));
  SNB_RETURN_IF_ERROR(WriteRecord(kBatchCommit, payload, sizeof(payload)));
  SNB_FAILPOINT_STATUS("wal.commit.before_sync");
  if (options_.sync == WalSyncPolicy::kOnCommit) {
    SNB_RETURN_IF_ERROR(Sync());
  }
  SNB_FAILPOINT_STATUS("wal.commit.after_sync");
  in_batch_ = false;
  dirty_ = false;
  return util::Status::Ok();
}

util::Status Wal::AbortBatch() {
  if (!dirty_) return util::Status::Ok();
  in_batch_ = false;
  dirty_ = false;
  if (::ftruncate(fd_, static_cast<off_t>(batch_start_)) != 0) {
    return util::Status::IoError("WAL abort-truncate failed: " +
                                 std::string(std::strerror(errno)));
  }
  if (::lseek(fd_, static_cast<off_t>(batch_start_), SEEK_SET) < 0) {
    return util::Status::IoError("WAL abort-seek failed");
  }
  offset_ = batch_start_;
  return util::Status::Ok();
}

util::Status Wal::Sync() {
  SNB_CHECK(fd_ >= 0);
  SNB_FAILPOINT_STATUS("wal.sync");
  if (::fsync(fd_) != 0) {
    return util::Status::IoError("WAL fsync failed: " +
                                 std::string(std::strerror(errno)));
  }
  return util::Status::Ok();
}

util::Status Wal::Close() {
  if (fd_ < 0) return util::Status::Ok();
  util::Status st = util::Status::Ok();
  if (options_.sync != WalSyncPolicy::kNone) st = Sync();
  if (::close(fd_) != 0 && st.ok()) {
    st = util::Status::IoError("WAL close failed");
  }
  fd_ = -1;
  return st;
}

util::StatusOr<WalScan> ScanWal(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::NotFound("no WAL at " + path);
  }

  WalScan scan;
  std::vector<uint8_t> file;
  {
    char chunk[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
      file.insert(file.end(), chunk, chunk + n);
    }
    ::close(fd);
    if (n < 0) return util::Status::IoError("cannot read WAL " + path);
  }
  scan.total_bytes = file.size();

  if (file.size() < sizeof(kMagic) ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    if (file.empty() || file.size() < sizeof(kMagic)) {
      // Crash before the magic completed — an empty log, all tail.
      scan.valid_bytes = 0;
      scan.torn_tail = !file.empty();
      scan.tail_reason = file.empty() ? "" : "torn magic";
      return scan;
    }
    return util::Status::Corruption("bad WAL magic in " + path);
  }

  size_t pos = sizeof(kMagic);
  scan.valid_bytes = pos;
  WalBatch open_batch;
  bool in_batch = false;
  auto tail = [&](std::string reason) {
    scan.torn_tail = true;
    scan.tail_reason = std::move(reason);
  };

  while (pos < file.size()) {
    if (file.size() - pos < kRecordHeaderSize) {
      tail("short record header");
      break;
    }
    uint32_t len = GetU32(file.data() + pos);
    uint32_t crc = GetU32(file.data() + pos + 4);
    if (len == 0 || len > (64u << 20) ||
        file.size() - pos - kRecordHeaderSize < len) {
      tail("short record payload");
      break;
    }
    const uint8_t* payload = file.data() + pos + kRecordHeaderSize;
    if (util::Crc32c(payload, len) != crc) {
      tail("record CRC mismatch");
      break;
    }
    uint8_t type = payload[0];
    const uint8_t* body = payload + 1;
    size_t body_len = len - 1;
    if (type == kBatchBegin) {
      if (in_batch || body_len != 4) {
        tail(in_batch ? "BatchBegin inside open batch" : "bad BatchBegin");
        break;
      }
      open_batch = WalBatch{};
      open_batch.day = static_cast<core::Date>(GetU32(body));
      in_batch = true;
    } else if (type == kEvent) {
      if (!in_batch) {
        tail("event outside a batch");
        break;
      }
      datagen::UpdateEvent event;
      std::string line(reinterpret_cast<const char*>(body), body_len);
      util::Status st = datagen::ParseUpdateEventLine(line, &event);
      if (!st.ok()) {
        tail("unparseable event: " + st.ToString());
        break;
      }
      open_batch.events.push_back(std::move(event));
    } else if (type == kDeleteBatch) {
      if (!in_batch || body_len != 8 ||
          static_cast<core::Date>(GetU32(body)) != open_batch.day) {
        tail("delete-batch marker does not match open batch");
        break;
      }
      open_batch.delete_count = GetU32(body + 4);
    } else if (type == kBatchCommit) {
      if (!in_batch || body_len != 4 ||
          static_cast<core::Date>(GetU32(body)) != open_batch.day) {
        tail("commit marker does not match open batch");
        break;
      }
      scan.batches.push_back(std::move(open_batch));
      in_batch = false;
      scan.valid_bytes = pos + kRecordHeaderSize + len;
    } else {
      tail("unknown record type " + std::to_string(type));
      break;
    }
    pos += kRecordHeaderSize + len;
  }
  // A clean-looking but uncommitted batch at EOF is tail too: its commit
  // marker never reached the disk.
  if (!scan.torn_tail && in_batch) tail("uncommitted batch at end of log");
  if (!scan.torn_tail && scan.valid_bytes < file.size()) {
    tail("trailing bytes after last committed batch");
  }
  return scan;
}

util::Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  // Truncating to a zero-byte prefix would also drop the magic; rewrite the
  // header so the file stays a valid (empty) log.
  if (valid_bytes < sizeof(kMagic)) {
    int fd = ::open(path.c_str(), O_WRONLY | O_TRUNC);
    if (fd < 0) return util::Status::IoError("cannot truncate WAL " + path);
    util::Status st = WriteAll(fd, kMagic, sizeof(kMagic));
    if (st.ok() && ::fsync(fd) != 0) {
      st = util::Status::IoError("fsync after WAL truncate failed");
    }
    ::close(fd);
    return st;
  }
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return util::Status::IoError("cannot truncate WAL " + path + ": " +
                                 std::strerror(errno));
  }
  return util::Status::Ok();
}

}  // namespace snb::storage

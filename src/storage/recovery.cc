#include "storage/recovery.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <utility>
#include <vector>

#include "datagen/serializer.h"
#include "interactive/updates.h"
#include "storage/export.h"
#include "storage/loader.h"
#include "storage/wal.h"
#include "util/failpoint.h"
#include "validate/validator.h"

namespace snb::storage {

namespace {

namespace fs = std::filesystem;

constexpr char kManifestName[] = "_MANIFEST";

struct StorePaths {
  std::string checkpoint;
  std::string checkpoint_next;
  std::string checkpoint_old;
  std::string wal;
};

StorePaths MakeStorePaths(const std::string& store_dir) {
  return {store_dir + "/checkpoint", store_dir + "/checkpoint.next",
          store_dir + "/checkpoint.old", WalPath(store_dir)};
}

/// Writes <dir>/_MANIFEST and fsyncs it — the commit point of a checkpoint.
util::Status WriteManifest(const std::string& dir, core::Date day) {
  std::string path = dir + "/" + kManifestName;
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Status::IoError("cannot write manifest " + path);
  }
  std::string text = "day=" + std::to_string(day) + "\n";
  const char* p = text.data();
  size_t n = text.size();
  while (n > 0) {
    ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      ::close(fd);
      return util::Status::IoError("manifest write failed: " +
                                   std::string(std::strerror(errno)));
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  bool synced = ::fsync(fd) == 0;
  if (::close(fd) != 0 || !synced) {
    return util::Status::IoError("manifest fsync/close failed for " + path);
  }
  return util::Status::Ok();
}

/// Reads <dir>/_MANIFEST; NotFound marks the directory as torn/absent.
util::StatusOr<core::Date> ReadManifest(const std::string& dir) {
  std::string path = dir + "/" + kManifestName;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return util::Status::NotFound("no manifest in " + dir);
  }
  char buf[64] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (std::strncmp(buf, "day=", 4) != 0 || n <= 4) {
    return util::Status::Corruption("malformed manifest " + path);
  }
  return static_cast<core::Date>(std::strtol(buf + 4, nullptr, 10));
}

/// Best-effort directory fsync so renames inside `dir` survive power loss.
void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

util::Status Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return util::Status::IoError("rename " + from + " → " + to + ": " +
                                 ec.message());
  }
  return util::Status::Ok();
}

}  // namespace

util::Status WriteCheckpoint(const std::string& store_dir,
                             const core::SocialNetwork& net,
                             core::Date last_applied_day) {
  StorePaths paths = MakeStorePaths(store_dir);
  std::error_code ec;
  fs::create_directories(store_dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create store dir " + store_dir);
  }
  fs::remove_all(paths.checkpoint_next, ec);  // stale attempt, never committed

  SNB_FAILPOINT_STATUS("checkpoint.export");
  SNB_RETURN_IF_ERROR(datagen::WriteCsvBasic(net, paths.checkpoint_next));
  SNB_RETURN_IF_ERROR(WriteManifest(paths.checkpoint_next, last_applied_day));
  // The manifest is durable: checkpoint.next is now a committed checkpoint
  // whatever happens below — recovery will find it by its manifest.
  SNB_FAILPOINT_STATUS("checkpoint.manifest");

  if (fs::exists(paths.checkpoint)) {
    fs::remove_all(paths.checkpoint_old, ec);
    SNB_RETURN_IF_ERROR(Rename(paths.checkpoint, paths.checkpoint_old));
  }
  // The window with no checkpoint/ at all: recovery falls back to
  // checkpoint.next (newer) or checkpoint.old (older), both committed.
  SNB_FAILPOINT_STATUS("checkpoint.rotate");
  SNB_RETURN_IF_ERROR(Rename(paths.checkpoint_next, paths.checkpoint));
  fs::remove_all(paths.checkpoint_old, ec);
  SyncDir(store_dir);
  return util::Status::Ok();
}

util::Status InitStore(const std::string& store_dir,
                       const core::SocialNetwork& net,
                       core::Date last_applied_day) {
  return WriteCheckpoint(store_dir, net, last_applied_day);
}

util::StatusOr<RecoveryResult> RecoveryManager::Recover(
    const RecoveryOptions& options) const {
  StorePaths paths = MakeStorePaths(store_dir_);
  std::error_code ec;

  // 1. Pick the committed checkpoint with the newest last-applied day.
  //    Ties prefer the canonical location (rotation completed).
  struct Candidate {
    std::string dir;
    core::Date day;
  };
  std::optional<Candidate> chosen;
  for (const std::string& dir :
       {paths.checkpoint, paths.checkpoint_next, paths.checkpoint_old}) {
    util::StatusOr<core::Date> day = ReadManifest(dir);
    if (!day.ok()) {
      if (day.status().IsCorruption()) return day.status();
      continue;  // absent or torn — not a candidate
    }
    if (!chosen.has_value() || day.value() > chosen->day) {
      chosen = Candidate{dir, day.value()};
    }
  }
  if (!chosen.has_value()) {
    return util::Status::NotFound("no committed checkpoint under " +
                                  store_dir_);
  }

  // 2. Normalize the layout: the chosen checkpoint becomes checkpoint/,
  //    leftovers of interrupted rotations are deleted.
  if (chosen->dir != paths.checkpoint) {
    fs::remove_all(paths.checkpoint, ec);
    SNB_RETURN_IF_ERROR(Rename(chosen->dir, paths.checkpoint));
  }
  fs::remove_all(paths.checkpoint_next, ec);
  fs::remove_all(paths.checkpoint_old, ec);
  SyncDir(store_dir_);

  RecoveryResult result;
  result.checkpoint_day = chosen->day;
  result.last_committed_day = chosen->day;

  // 3. Scan the WAL; truncate the torn tail at the first bad record or
  //    uncommitted batch so later scans are clean.
  WalScan scan;
  {
    util::StatusOr<WalScan> scanned = ScanWal(paths.wal);
    if (scanned.ok()) {
      scan = std::move(scanned).value();
    } else if (scanned.status().code() != util::StatusCode::kNotFound) {
      return scanned.status();  // unreadable or bad magic
    }
  }
  if (scan.torn_tail) {
    SNB_RETURN_IF_ERROR(TruncateWal(paths.wal, scan.valid_bytes));
    result.truncated_bytes = scan.total_bytes - scan.valid_bytes;
    result.truncation_reason = scan.tail_reason;
  }

  // 4. Load the checkpoint and replay every committed batch newer than it.
  //    Replayed delete batches re-run their cascades from the start — the
  //    cascade torn by the crash never reached a published snapshot, so
  //    re-running it on the checkpoint graph is the roll-forward repair
  //    (Delete* no-ops on already-gone targets keep this idempotent).
  auto loaded = LoadCsvBasic(paths.checkpoint);
  if (!loaded.ok()) return loaded.status();
  result.graph = std::make_unique<Graph>(std::move(loaded).value());
  for (const WalBatch& batch : scan.batches) {
    if (batch.day <= result.checkpoint_day) continue;  // in the checkpoint
    for (const datagen::UpdateEvent& event : batch.events) {
      util::Status st = interactive::ApplyUpdate(*result.graph, event);
      if (!st.ok()) {
        return util::Status::Corruption("replay of day " +
                                        std::to_string(batch.day) +
                                        " failed: " + st.ToString());
      }
      ++result.replayed_events;
    }
    ++result.replayed_batches;
    result.last_committed_day = batch.day;
  }

  // 4b. Compact replayed deletes: the recovered store hands out a
  //     tombstone-free graph, same as the refresh path publishes.
  if (result.graph->HasTombstones()) {
    result.graph = std::make_unique<Graph>(
        ExportNetwork(*result.graph), result.graph->CompactionEpoch() + 1);
  }

  // 5. Never serve unvalidated data off a crash path.
  if (options.validate) {
    validate::ValidationReport report =
        validate::ValidateGraph(*result.graph);
    if (!report.ok()) {
      return util::Status::Corruption("recovered store fails validation:\n" +
                                      report.ToString());
    }
  }
  return result;
}

}  // namespace snb::storage

// Tombstone bitmaps for deep deletes (DEL 1–8, arXiv 2307.04820).
//
// Deletion over the columnar store is logical: a cascade marks rows dead in
// word-packed bitmaps while the underlying tables, adjacency spans, and zone
// maps stay physically intact. Readers filter through the bitmaps; physical
// reclamation happens only at compaction, when the live subgraph is exported
// and rebuilt into a fresh Graph (bumping its compaction epoch). Keeping the
// raw rows in place is what preserves the zone-map safety argument: a zone
// maximum computed over all rows still upper-bounds the live subset.

#ifndef SNB_STORAGE_TOMBSTONE_H_
#define SNB_STORAGE_TOMBSTONE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snb::storage {

/// Word-packed deletion bitmap over a dense row space. Append-only in size
/// (rows are added by the IU insert path), monotone in content (a set bit is
/// never cleared — resurrection is not a benchmark operation; compaction
/// rebuilds instead).
class TombstoneBitmap {
 public:
  TombstoneBitmap() = default;
  explicit TombstoneBitmap(size_t n) { Resize(n); }

  /// Grows the row space to `n` rows (new rows live). Never shrinks.
  void Resize(size_t n) {
    if (n > size_) {
      size_ = n;
      words_.resize((n + 63) / 64, 0);
    }
  }

  /// Appends one live row — the insert-path hook.
  void Append() { Resize(size_ + 1); }

  size_t size() const { return size_; }

  /// Number of dead rows.
  size_t count() const { return count_; }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Marks row `i` dead; returns true when the bit was newly set. The
  /// return value is what makes cascades idempotent: re-marking a dead row
  /// is a no-op and must not re-trigger downstream cascade work.
  bool Set(size_t i) {
    uint64_t& w = words_[i >> 6];
    const uint64_t bit = uint64_t{1} << (i & 63);
    if (w & bit) return false;
    w |= bit;
    ++count_;
    return true;
  }

  size_t ByteSize() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
  size_t count_ = 0;
};

}  // namespace snb::storage

#endif  // SNB_STORAGE_TOMBSTONE_H_

// Graph-store consistency checker: the "tool to perform arbitrary checks of
// the data" the audit workflow asks the test sponsor to provide
// (spec §6.1.3). Validates referential integrity, forward/reverse index
// agreement and precomputed-column correctness; used by tests after bulk
// load and after update replay, and available to library users as a
// diagnostic.

#ifndef SNB_STORAGE_CONSISTENCY_H_
#define SNB_STORAGE_CONSISTENCY_H_

#include <string>
#include <vector>

#include "storage/graph.h"

namespace snb::storage {

/// Runs all invariant checks; returns human-readable violation
/// descriptions (empty = consistent). Cost is O(V + E).
std::vector<std::string> CheckGraphConsistency(const Graph& graph);

}  // namespace snb::storage

#endif  // SNB_STORAGE_CONSISTENCY_H_

// Graph → raw-network export: the inverse of Graph construction,
// reconstructing a core::SocialNetwork from the store's tables and
// adjacency. Together with the CSV serializers this gives checkpointing:
// a mutated graph can be snapshotted to disk and reloaded — the mechanism
// behind the spec §6.3 recovery test.

#ifndef SNB_STORAGE_EXPORT_H_
#define SNB_STORAGE_EXPORT_H_

#include "core/schema.h"
#include "storage/graph.h"

namespace snb::storage {

/// Materializes the graph's current state (bulk data plus every applied
/// update) as a raw network. Round-trip property:
/// Graph(ExportNetwork(g)) is observationally equal to g.
core::SocialNetwork ExportNetwork(const Graph& graph);

}  // namespace snb::storage

#endif  // SNB_STORAGE_EXPORT_H_

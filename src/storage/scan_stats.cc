#include "storage/scan_stats.h"

namespace snb::storage::internal {

ScanStats*& CurrentScanStatsSlot() noexcept {
  thread_local ScanStats* slot = nullptr;
  return slot;
}

}  // namespace snb::storage::internal

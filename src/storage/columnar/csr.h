// Compressed sparse row over zoned column blocks.
//
// The bulk-loaded part of a relation as three FOR-packed columns:
//
//   offsets  num_nodes+1 non-decreasing edge positions (FOR per block keeps
//            Degree() and span lookup O(1), unlike delta)
//   targets  neighbour indices, sorted by (src, dst, date) — the same store
//            invariant the raw CSR kept, so spans stay binary-searchable
//   dates    optional parallel DateTime payload
//
// Against the seed layout (8 B offset/node, 4 B target + 8 B date/edge)
// the packed columns typically cut bytes/edge by 2–4×: a block of 1024
// targets spans only the live index range (≈⌈log2 n⌉ bits), a block of
// offsets spans only the edges under 1024 nodes, and dates share their
// high bits within any one block. RawByteSize() reports the seed-layout
// cost for the same content so the win is a measured number.
//
// Immutable once built — the update path lives in AdjacencyList's overflow
// arena, never here.

#ifndef SNB_STORAGE_COLUMNAR_CSR_H_
#define SNB_STORAGE_COLUMNAR_CSR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/date_time.h"
#include "storage/columnar/column_block.h"
#include "util/check.h"

namespace snb::storage::columnar {

/// One directed edge with an optional DateTime payload, used at build time.
struct EdgeInput {
  uint32_t src;
  uint32_t dst;
  core::DateTime date = 0;
};

class CompressedCsr {
 public:
  CompressedCsr() = default;

  /// Builds the three columns from an edge list (consumed). Edges are
  /// sorted by (src, dst, date), so every node's span comes out sorted by
  /// (target, date) — the `adjacency-sorted` validator invariant.
  void Build(size_t num_nodes, std::vector<EdgeInput> edges, bool with_dates);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return num_edges_; }
  bool with_dates() const { return with_dates_; }

  /// Edge positions [EdgeBegin, EdgeEnd) of `node`'s span.
  uint64_t EdgeBegin(uint32_t node) const {
    SNB_DCHECK(node < num_nodes_);
    return offsets_.At(node);
  }
  uint64_t EdgeEnd(uint32_t node) const {
    SNB_DCHECK(node < num_nodes_);
    return offsets_.At(node + 1);
  }

  uint32_t TargetAt(uint64_t k) const {
    return static_cast<uint32_t>(targets_.At(k));
  }
  core::DateTime DateAt(uint64_t k) const {
    SNB_DCHECK(with_dates_);
    return static_cast<core::DateTime>(dates_.At(k));
  }

  // Column introspection (validator block-zone checks, corruption seeding).
  const ZonedColumn& offsets() const { return offsets_; }
  const ZonedColumn& targets() const { return targets_; }
  const ZonedColumn& dates() const { return dates_; }
  ZonedColumn& mutable_targets() { return targets_; }
  ZonedColumn& mutable_dates() { return dates_; }

  /// Heap bytes held by the packed columns.
  size_t ByteSize() const {
    return offsets_.ByteSize() + targets_.ByteSize() + dates_.ByteSize();
  }

  /// Seed-layout bytes for the same content: 8 B/offset, 4 B/target,
  /// 8 B/date when dated.
  size_t RawByteSize() const {
    return (num_nodes_ + 1) * sizeof(uint64_t) +
           num_edges_ * sizeof(uint32_t) +
           (with_dates_ ? num_edges_ * sizeof(core::DateTime) : 0);
  }

 private:
  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;
  bool with_dates_ = false;
  ZonedColumn offsets_;  // num_nodes_ + 1 values
  ZonedColumn targets_;  // num_edges_ values
  ZonedColumn dates_;    // num_edges_ values, empty when !with_dates_
};

}  // namespace snb::storage::columnar

#endif  // SNB_STORAGE_COLUMNAR_CSR_H_

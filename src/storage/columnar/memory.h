// Memory accounting for the columnar store.
//
// Every column family reports the heap bytes it actually holds AND the
// bytes the seed (uncompressed) layout would have needed for the same
// logical content — so the compression win is a measured pair of numbers
// on the same store, not a cross-run comparison. Graph::Memory() aggregates
// families and derives the two headline densities the bench tracks:
//
//   bytes/edge     Σ adjacency-family bytes / Σ stored directed edges
//   bytes/message  (message-date index + per-message hot columns) /
//                  (#posts + #comments)
//
// The raw-equivalent figures use the seed representation's exact shape:
// 8 B offset per node(+1), 4 B target per edge, 8 B date per dated edge,
// 4 B ref + 8 B date per indexed message.

#ifndef SNB_STORAGE_COLUMNAR_MEMORY_H_
#define SNB_STORAGE_COLUMNAR_MEMORY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace snb::storage::columnar {

/// One accounted column family (an adjacency relation, an index, the
/// dictionary, a hot-column group).
struct MemoryFamily {
  std::string name;       // e.g. "adj/knows", "index/message-date", "dict"
  size_t bytes = 0;       // heap bytes actually held
  size_t raw_bytes = 0;   // seed-layout bytes for the same content
  size_t items = 0;       // edges / entries / codes in the family
};

struct MemoryBreakdown {
  std::vector<MemoryFamily> families;

  size_t edge_bytes = 0;      // Σ bytes over adjacency families
  size_t edge_raw_bytes = 0;  // Σ raw_bytes over adjacency families
  size_t num_edges = 0;

  size_t message_bytes = 0;      // index + message hot columns
  size_t message_raw_bytes = 0;
  size_t num_messages = 0;

  size_t total_bytes() const {
    size_t t = 0;
    for (const MemoryFamily& f : families) t += f.bytes;
    return t;
  }
  size_t total_raw_bytes() const {
    size_t t = 0;
    for (const MemoryFamily& f : families) t += f.raw_bytes;
    return t;
  }

  double BytesPerEdge() const {
    return num_edges == 0 ? 0.0
                          : static_cast<double>(edge_bytes) / num_edges;
  }
  double RawBytesPerEdge() const {
    return num_edges == 0 ? 0.0
                          : static_cast<double>(edge_raw_bytes) / num_edges;
  }
  double BytesPerMessage() const {
    return num_messages == 0
               ? 0.0
               : static_cast<double>(message_bytes) / num_messages;
  }
  double RawBytesPerMessage() const {
    return num_messages == 0
               ? 0.0
               : static_cast<double>(message_raw_bytes) / num_messages;
  }

  /// Multi-line human-readable table (bench logs, tools/snb_scale_smoke).
  std::string ToString() const;
};

}  // namespace snb::storage::columnar

#endif  // SNB_STORAGE_COLUMNAR_MEMORY_H_

// Fixed-width bit-packing: the primitive under every columnar encoding.
//
// A PackedArray stores n unsigned values of a uniform bit width b (0..64)
// in ceil(n*b/64)+1 words; value i occupies bits [i*b, (i+1)*b) in
// little-endian bit order, so At(i) is two aligned word reads, a shift and
// a mask — O(1) and branch-predictable, which is what lets the compressed
// CSR keep the same random-access contract as the raw uint32 arrays it
// replaces (choke points CP-3.2/3.3 care about scan locality, not about
// giving up point lookups).
//
// The one extra tail word makes the unaligned two-word read always safe
// without a bounds branch in the hot path.

#ifndef SNB_STORAGE_COLUMNAR_BITPACK_H_
#define SNB_STORAGE_COLUMNAR_BITPACK_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace snb::storage::columnar {

/// Smallest width that can represent `v` (0 for v == 0 — a run of equal
/// values FOR-encodes to width zero and costs only its block header).
inline unsigned BitWidth(uint64_t v) {
  unsigned bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

class PackedArray {
 public:
  PackedArray() = default;

  /// Packs `values` at width `bits`; every value must fit (checked).
  PackedArray(std::span<const uint64_t> values, unsigned bits)
      : size_(values.size()), bits_(bits) {
    SNB_CHECK_LE(bits, 64u);
    words_.assign(WordCount(size_, bits), 0);
    for (size_t i = 0; i < values.size(); ++i) {
      SNB_DCHECK(BitWidth(values[i]) <= bits_);
      Set(i, values[i]);
    }
  }

  /// Adopts pre-packed words (the deserialization path). `words` must hold
  /// WordCount(size, bits) entries — validated by the caller, which is what
  /// the Status-returning block decoder is for.
  PackedArray(std::vector<uint64_t> words, size_t size, unsigned bits)
      : words_(std::move(words)), size_(size), bits_(bits) {
    SNB_CHECK_LE(bits, 64u);
    SNB_CHECK_EQ(words_.size(), WordCount(size, bits));
  }

  /// Words needed for `size` values at width `bits` (incl. the safety word).
  static size_t WordCount(size_t size, unsigned bits) {
    if (bits == 0) return 0;
    return (size * bits + 63) / 64 + 1;
  }

  size_t size() const { return size_; }
  unsigned bits() const { return bits_; }
  bool empty() const { return size_ == 0; }

  uint64_t At(size_t i) const {
    SNB_DCHECK(i < size_);
    if (bits_ == 0) return 0;
    const size_t bit = i * bits_;
    const size_t w = bit >> 6;
    const unsigned off = bit & 63;
    uint64_t v = words_[w] >> off;
    if (off + bits_ > 64) v |= words_[w + 1] << (64 - off);
    return v & Mask();
  }

  /// Overwrites slot i; bits of `v` beyond the width are dropped (the
  /// corruption-seeding hook in tests relies on the masked write staying
  /// in-slot, so damage lands exactly where aimed).
  void Set(size_t i, uint64_t v) {
    SNB_DCHECK(i < size_);
    if (bits_ == 0) return;
    v &= Mask();
    const size_t bit = i * bits_;
    const size_t w = bit >> 6;
    const unsigned off = bit & 63;
    words_[w] = (words_[w] & ~(Mask() << off)) | (v << off);
    if (off + bits_ > 64) {
      const unsigned spill = off + bits_ - 64;
      const uint64_t hi_mask = (spill >= 64) ? ~0ull : ((1ull << spill) - 1);
      words_[w + 1] = (words_[w + 1] & ~hi_mask) | (v >> (64 - off));
    }
  }

  /// Heap bytes held (memory-accounting API).
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  std::span<const uint64_t> words() const { return words_; }

 private:
  uint64_t Mask() const {
    return bits_ >= 64 ? ~0ull : ((1ull << bits_) - 1);
  }

  std::vector<uint64_t> words_;
  size_t size_ = 0;
  unsigned bits_ = 0;
};

}  // namespace snb::storage::columnar

#endif  // SNB_STORAGE_COLUMNAR_BITPACK_H_

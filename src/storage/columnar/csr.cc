#include "storage/columnar/csr.h"

#include <algorithm>

namespace snb::storage::columnar {

void CompressedCsr::Build(size_t num_nodes, std::vector<EdgeInput> edges,
                          bool with_dates) {
  num_nodes_ = num_nodes;
  num_edges_ = edges.size();
  with_dates_ = with_dates;
  // Establish the sorted-base invariant (same contract as the raw CSR).
  std::sort(edges.begin(), edges.end(),
            [](const EdgeInput& a, const EdgeInput& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.date < b.date;
            });
  std::vector<uint64_t> offsets(num_nodes + 1, 0);
  for (const EdgeInput& e : edges) {
    SNB_CHECK_LT(e.src, num_nodes);
    ++offsets[e.src + 1];
  }
  for (size_t i = 1; i <= num_nodes; ++i) offsets[i] += offsets[i - 1];
  offsets_ = ZonedColumn::BuildFor(offsets);

  std::vector<uint64_t> column(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) column[i] = edges[i].dst;
  targets_ = ZonedColumn::BuildFor(column);

  if (with_dates) {
    for (size_t i = 0; i < edges.size(); ++i) {
      column[i] = static_cast<uint64_t>(edges[i].date);
    }
    dates_ = ZonedColumn::BuildFor(column);
  } else {
    dates_ = ZonedColumn();
  }
}

}  // namespace snb::storage::columnar

// Immutable encoded column blocks with zone metadata.
//
// A ColumnBlock holds up to kMaxValues uint64 values under one of two
// encodings:
//
//   kForPacked    frame-of-reference: store min(values) once, bit-pack
//                 value − min at the canonical width. O(1) random access —
//                 the encoding for columns that must keep the raw-array
//                 access contract (CSR targets/dates/offsets).
//   kDeltaPacked  for non-decreasing columns: store the first value, then
//                 bit-pack consecutive differences. Denser than FOR when
//                 the column is sorted (deltas are small even when the
//                 range is wide); access is a prefix sum, so it suits
//                 columns that are scanned or zone-searched rather than
//                 random-probed (the message-date index base).
//
// Every block carries exact min/max zone metadata, so range pruning à la
// CP-2.2/2.3 falls out of the format: a scan skips whole blocks whose
// [min, max] misses the window before touching packed words.
//
// Blocks also serialize to a self-describing byte format whose decoder is
// total — DecodeColumnBlock returns util::Status on any malformed input and
// never crashes; it is the entry point fuzz/fuzz_column_block drives. The
// decoder is strict: it re-derives the zone metadata and canonical bit
// width from the payload and rejects mismatches as kCorruption, so
// encode → serialize → decode is a fixed point on valid blocks.
//
// ZonedColumn strings blocks into a whole-column view with O(1) routing,
// aggregate byte accounting, and lower-bound search over sorted content.

#ifndef SNB_STORAGE_COLUMNAR_COLUMN_BLOCK_H_
#define SNB_STORAGE_COLUMNAR_COLUMN_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/columnar/bitpack.h"
#include "util/status.h"

namespace snb::storage::columnar {

enum class BlockEncoding : uint8_t {
  kForPacked = 1,
  kDeltaPacked = 2,
};

class ColumnBlock {
 public:
  /// Capacity of one block. 1024 × 8B raw = one 8 KiB leaf — large enough
  /// to amortize the 40-byte header, small enough that zone pruning has
  /// useful resolution.
  static constexpr size_t kMaxValues = 1024;

  ColumnBlock() = default;

  /// Frame-of-reference encodes `values` (1..kMaxValues entries).
  static ColumnBlock EncodeFor(std::span<const uint64_t> values);

  /// Delta encodes `values`, which must be non-decreasing (checked).
  static ColumnBlock EncodeDelta(std::span<const uint64_t> values);

  size_t size() const { return count_; }
  BlockEncoding encoding() const { return encoding_; }
  unsigned bits() const { return packed_.bits(); }

  /// Exact zone metadata: min/max of the contained values.
  uint64_t zone_min() const { return min_; }
  uint64_t zone_max() const { return max_; }

  /// Value at `i`. O(1) for kForPacked; O(i) prefix sum for kDeltaPacked —
  /// delta blocks are meant to be scanned via DecodeAll or zone-searched.
  uint64_t At(size_t i) const;

  /// Appends all `size()` values to `out` in order (sequential decode).
  void DecodeAll(std::vector<uint64_t>* out) const;

  /// Heap bytes held by the packed payload.
  size_t ByteSize() const { return packed_.ByteSize(); }

  /// Appends the self-describing byte format to `out`.
  void SerializeTo(std::string* out) const;

  /// Test-only corruption hook: overwrites packed slot `i` (masked to the
  /// block width) without touching the zone metadata — exactly the damage
  /// the block-zone-covers-contents invariant exists to catch.
  void CorruptPackedSlotForTest(size_t i, uint64_t raw) {
    packed_.Set(i, raw);
  }

  /// Test-only: rewrites slot `i` so it decodes to `v`. kForPacked blocks
  /// only; `v` must be representable at the block's width and base.
  void SetValueForTest(size_t i, uint64_t v) {
    SNB_CHECK(encoding_ == BlockEncoding::kForPacked);
    SNB_CHECK_GE(v, base_);
    packed_.Set(i, v - base_);
  }

  /// Test-only: overwrites the zone metadata, leaving the payload intact —
  /// a stale zone map, the other damage class the zone invariant catches.
  void CorruptZoneForTest(uint64_t zone_min, uint64_t zone_max) {
    min_ = zone_min;
    max_ = zone_max;
  }

 private:
  friend util::Status DecodeColumnBlock(std::span<const uint8_t> bytes,
                                        ColumnBlock* out, size_t* consumed);

  BlockEncoding encoding_ = BlockEncoding::kForPacked;
  uint32_t count_ = 0;
  uint64_t base_ = 0;  // FOR reference (== min) / first value for delta
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  PackedArray packed_;
};

/// Parses one serialized block from the front of `bytes`. Total: any input
/// yields either an OK block (with `*consumed` bytes eaten) or a
/// kCorruption/kInvalidArgument Status — never a crash. Strictness contract:
/// the payload must round-trip (zone metadata and bit width are re-derived
/// and compared), so accepted bytes re-serialize to themselves.
SNB_NODISCARD util::Status DecodeColumnBlock(std::span<const uint8_t> bytes,
                               ColumnBlock* out, size_t* consumed);

/// A whole column as a vector of blocks plus routing; built once, immutable.
class ZonedColumn {
 public:
  ZonedColumn() = default;

  /// Encodes `values` into FOR blocks (O(1) At).
  static ZonedColumn BuildFor(std::span<const uint64_t> values);

  /// Encodes non-decreasing `values` into delta blocks (scan/search access).
  static ZonedColumn BuildDelta(std::span<const uint64_t> values);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint64_t At(size_t i) const {
    SNB_DCHECK(i < size_);
    return blocks_[i / ColumnBlock::kMaxValues].At(i % ColumnBlock::kMaxValues);
  }

  /// First index whose value is ≥ `v`; size() when none. Requires the
  /// column to be non-decreasing (as built by BuildDelta). Zone metadata
  /// narrows the search to one block, then a sequential decode finds the
  /// in-block position — O(log #blocks + kMaxValues).
  size_t LowerBound(uint64_t v) const;

  size_t num_blocks() const { return blocks_.size(); }
  const ColumnBlock& block(size_t b) const { return blocks_[b]; }
  ColumnBlock& mutable_block(size_t b) { return blocks_[b]; }

  /// Test-only: routes ColumnBlock::SetValueForTest to position `i`.
  void SetValueForTest(size_t i, uint64_t v) {
    blocks_[i / ColumnBlock::kMaxValues].SetValueForTest(
        i % ColumnBlock::kMaxValues, v);
  }

  /// Total heap bytes across blocks (packed words + per-block bookkeeping).
  size_t ByteSize() const;

 private:
  static ZonedColumn Build(std::span<const uint64_t> values, bool delta);

  std::vector<ColumnBlock> blocks_;
  size_t size_ = 0;
};

}  // namespace snb::storage::columnar

#endif  // SNB_STORAGE_COLUMNAR_COLUMN_BLOCK_H_

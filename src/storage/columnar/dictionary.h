// Shared dictionary encoder for low-cardinality strings.
//
// The store sees the same few dozen distinct strings millions of times:
// genders, browsers, country names, tag names, content-length classes.
// The dictionary maps each distinct string to a stable dense uint32 code —
// codes are assigned in first-seen order and never change or move, so a
// code column written at load time stays valid across every later append
// (the IU update path only ever adds codes). Decode is O(1): codes index a
// deque whose element addresses are stable under growth, so readers hold
// `const std::string&` across concurrent GetOrAdd calls.
//
// Concurrency matches the store's single-writer / multi-reader contract:
// GetOrAdd serializes writers on an annotated mutex; Decode/size take the
// same lock (they are off the query hot path — engines scan code columns,
// not strings) so the structure is safe even if a reader races the writer.

#ifndef SNB_STORAGE_COLUMNAR_DICTIONARY_H_
#define SNB_STORAGE_COLUMNAR_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::storage::columnar {

class Dictionary {
 public:
  static constexpr uint32_t kNoCode = UINT32_MAX;

  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Returns the code for `value`, assigning the next dense code on first
  /// sight. Codes are stable for the lifetime of the dictionary.
  uint32_t GetOrAdd(std::string_view value) SNB_EXCLUDES(mu_);

  /// Code for `value` if present, kNoCode otherwise (no insertion).
  uint32_t Find(std::string_view value) const SNB_EXCLUDES(mu_);

  /// The string for `code`; the reference is stable (deque storage) and
  /// remains valid across later GetOrAdd calls. `code` must be in range.
  const std::string& Decode(uint32_t code) const SNB_EXCLUDES(mu_);

  /// Number of distinct values == smallest invalid code. The validator's
  /// dictionary-code-in-range invariant checks every code column against
  /// this bound.
  size_t size() const SNB_EXCLUDES(mu_);

  /// Heap bytes held (strings + hash index), for MemoryBreakdown.
  size_t ByteSize() const SNB_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_{SNB_LOCK_SITE("storage.columnar.dictionary.mu")};
  std::deque<std::string> values_ SNB_GUARDED_BY(mu_);
  std::unordered_map<std::string_view, uint32_t> index_ SNB_GUARDED_BY(mu_);
};

}  // namespace snb::storage::columnar

#endif  // SNB_STORAGE_COLUMNAR_DICTIONARY_H_

// Appendable bit-packed uint32 column: the storage for hot endpoint
// materialization (message → forum and friends).
//
// The TuGraph SNB plugins' fastest trick is materializing the endpoint a
// query re-derives through a second edge list directly onto the message, so
// the hot loop is one column probe instead of a pointer chase. Those
// columns are dense uint32 code/offset values, so the bulk-loaded prefix
// bit-packs at the width of the largest loaded value (FOR with base 0 —
// O(1) At, no prefix sums), while IU appends land in a plain uint32
// overflow vector. At(i) routes on the prefix length; the overflow stays
// tiny relative to the load (refresh batches are ~1% of the store), so the
// packed savings dominate.

#ifndef SNB_STORAGE_COLUMNAR_PACKED_COLUMN_H_
#define SNB_STORAGE_COLUMNAR_PACKED_COLUMN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "storage/columnar/bitpack.h"
#include "util/check.h"

namespace snb::storage::columnar {

class AppendableU32Column {
 public:
  AppendableU32Column() = default;

  /// Bulk-loads `values` as the packed immutable base.
  explicit AppendableU32Column(std::span<const uint32_t> values) {
    unsigned bits = 0;
    std::vector<uint64_t> wide(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      wide[i] = values[i];
      bits = std::max(bits, BitWidth(values[i]));
    }
    base_ = PackedArray(wide, bits);
  }

  size_t size() const { return base_.size() + tail_.size(); }
  bool empty() const { return size() == 0; }

  uint32_t At(size_t i) const {
    SNB_DCHECK(i < size());
    if (i < base_.size()) return static_cast<uint32_t>(base_.At(i));
    return tail_[i - base_.size()];
  }

  /// IU append; the value goes to the plain overflow tail (a value wider
  /// than the packed base width must not silently truncate).
  void Append(uint32_t v) { tail_.push_back(v); }

  /// Heap bytes held (memory-accounting API).
  size_t ByteSize() const {
    return base_.ByteSize() + tail_.capacity() * sizeof(uint32_t);
  }

  /// Test-only corruption hook: overwrites slot `i` (routing to the packed
  /// base or the overflow tail) — the damage the hot-endpoint validator
  /// invariant exists to catch. The value must fit the base width.
  void SetForTest(size_t i, uint32_t v) {
    if (i < base_.size()) {
      SNB_CHECK(BitWidth(v) <= base_.bits());
      base_.Set(i, v);
    } else {
      tail_[i - base_.size()] = v;
    }
  }

 private:
  PackedArray base_;            // packed bulk-loaded prefix
  std::vector<uint32_t> tail_;  // IU overflow appends
};

}  // namespace snb::storage::columnar

#endif  // SNB_STORAGE_COLUMNAR_PACKED_COLUMN_H_

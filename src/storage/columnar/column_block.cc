#include "storage/columnar/column_block.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace snb::storage::columnar {

namespace {

// Serialized layout (little-endian, 40-byte header + packed words):
//   [0]      magic 0xCB
//   [1]      format version (1)
//   [2]      encoding (BlockEncoding)
//   [3]      bit width (0..64)
//   [4..5]   value count (1..kMaxValues)
//   [6..7]   reserved, must be zero
//   [8..15]  base  (FOR reference / first delta value)
//   [16..23] zone min
//   [24..31] zone max
//   [32..39] packed word count
//   [40..]   packed words, 8 bytes each
constexpr uint8_t kMagic = 0xCB;
constexpr uint8_t kVersion = 1;
constexpr size_t kHeaderBytes = 40;

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

ColumnBlock ColumnBlock::EncodeFor(std::span<const uint64_t> values) {
  SNB_CHECK(!values.empty());
  SNB_CHECK_LE(values.size(), kMaxValues);
  ColumnBlock block;
  block.encoding_ = BlockEncoding::kForPacked;
  block.count_ = static_cast<uint32_t>(values.size());
  block.min_ = *std::min_element(values.begin(), values.end());
  block.max_ = *std::max_element(values.begin(), values.end());
  block.base_ = block.min_;
  std::vector<uint64_t> rebased(values.size());
  for (size_t i = 0; i < values.size(); ++i) rebased[i] = values[i] - block.min_;
  block.packed_ =
      PackedArray(rebased, BitWidth(block.max_ - block.min_));
  return block;
}

ColumnBlock ColumnBlock::EncodeDelta(std::span<const uint64_t> values) {
  SNB_CHECK(!values.empty());
  SNB_CHECK_LE(values.size(), kMaxValues);
  ColumnBlock block;
  block.encoding_ = BlockEncoding::kDeltaPacked;
  block.count_ = static_cast<uint32_t>(values.size());
  block.base_ = values.front();
  block.min_ = values.front();
  block.max_ = values.back();
  std::vector<uint64_t> deltas(values.size() - 1);
  uint64_t widest = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    SNB_CHECK_MSG(values[i] >= values[i - 1],
                  "EncodeDelta requires a non-decreasing column");
    deltas[i - 1] = values[i] - values[i - 1];
    widest = std::max(widest, deltas[i - 1]);
  }
  block.packed_ = PackedArray(deltas, BitWidth(widest));
  return block;
}

uint64_t ColumnBlock::At(size_t i) const {
  SNB_DCHECK(i < count_);
  if (encoding_ == BlockEncoding::kForPacked) {
    return base_ + packed_.At(i);
  }
  uint64_t v = base_;
  for (size_t k = 0; k < i; ++k) v += packed_.At(k);
  return v;
}

void ColumnBlock::DecodeAll(std::vector<uint64_t>* out) const {
  if (encoding_ == BlockEncoding::kForPacked) {
    for (size_t i = 0; i < count_; ++i) out->push_back(base_ + packed_.At(i));
    return;
  }
  uint64_t v = base_;
  out->push_back(v);
  for (size_t k = 0; k + 1 < count_; ++k) {
    v += packed_.At(k);
    out->push_back(v);
  }
}

void ColumnBlock::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(kMagic));
  out->push_back(static_cast<char>(kVersion));
  out->push_back(static_cast<char>(encoding_));
  out->push_back(static_cast<char>(packed_.bits()));
  PutU16(out, static_cast<uint16_t>(count_));
  PutU16(out, 0);  // reserved
  PutU64(out, base_);
  PutU64(out, min_);
  PutU64(out, max_);
  PutU64(out, packed_.words().size());
  for (uint64_t w : packed_.words()) PutU64(out, w);
}

util::Status DecodeColumnBlock(std::span<const uint8_t> bytes,
                               ColumnBlock* out, size_t* consumed) {
  if (bytes.size() < kHeaderBytes) {
    return util::Status::Corruption("column block: truncated header");
  }
  if (bytes[0] != kMagic || bytes[1] != kVersion) {
    return util::Status::Corruption("column block: bad magic/version");
  }
  const uint8_t enc_raw = bytes[2];
  if (enc_raw != static_cast<uint8_t>(BlockEncoding::kForPacked) &&
      enc_raw != static_cast<uint8_t>(BlockEncoding::kDeltaPacked)) {
    return util::Status::Corruption("column block: unknown encoding");
  }
  const BlockEncoding enc = static_cast<BlockEncoding>(enc_raw);
  const unsigned bits = bytes[3];
  if (bits > 64) {
    return util::Status::Corruption("column block: bit width > 64");
  }
  const uint32_t count = GetU16(bytes.data() + 4);
  if (count == 0 || count > ColumnBlock::kMaxValues) {
    return util::Status::Corruption("column block: count out of range");
  }
  if (GetU16(bytes.data() + 6) != 0) {
    return util::Status::Corruption("column block: reserved bytes set");
  }
  const uint64_t base = GetU64(bytes.data() + 8);
  const uint64_t min = GetU64(bytes.data() + 16);
  const uint64_t max = GetU64(bytes.data() + 24);
  if (min > max) {
    return util::Status::Corruption("column block: zone min > max");
  }
  const size_t packed_count =
      enc == BlockEncoding::kForPacked ? count : count - 1;
  const uint64_t want_words = PackedArray::WordCount(packed_count, bits);
  const uint64_t nwords = GetU64(bytes.data() + 32);
  if (nwords != want_words) {
    return util::Status::Corruption("column block: word count mismatch");
  }
  if (bytes.size() - kHeaderBytes < nwords * 8) {
    return util::Status::Corruption("column block: truncated payload");
  }
  std::vector<uint64_t> words(nwords);
  for (size_t i = 0; i < nwords; ++i) {
    words[i] = GetU64(bytes.data() + kHeaderBytes + 8 * i);
  }
  PackedArray packed(std::move(words), packed_count, bits);

  // Semantic validation: re-derive the zone metadata and canonical width
  // from the payload. Rejecting any mismatch as corruption is what makes
  // decode a fixed point of encode — accepted bytes are exactly the bytes
  // the encoder would produce for the decoded values.
  if (enc == BlockEncoding::kForPacked) {
    if (base != min) {
      return util::Status::Corruption("column block: FOR base != zone min");
    }
    if (bits != BitWidth(max - min)) {
      return util::Status::Corruption("column block: non-canonical FOR width");
    }
    uint64_t seen_min = UINT64_MAX, seen_max = 0;
    for (size_t i = 0; i < packed_count; ++i) {
      const uint64_t off = packed.At(i);
      if (off > max - min) {
        return util::Status::Corruption("column block: value above zone max");
      }
      seen_min = std::min(seen_min, off);
      seen_max = std::max(seen_max, off);
    }
    if (seen_min != 0 || base + seen_max != max) {
      return util::Status::Corruption("column block: stale FOR zone metadata");
    }
  } else {
    if (base != min) {
      return util::Status::Corruption("column block: delta first != zone min");
    }
    uint64_t widest = 0;
    uint64_t v = base;
    for (size_t i = 0; i < packed_count; ++i) {
      const uint64_t d = packed.At(i);
      widest = std::max(widest, d);
      const uint64_t next = v + d;
      if (next < v) {
        return util::Status::Corruption("column block: delta sum overflow");
      }
      v = next;
    }
    if (v != max) {
      return util::Status::Corruption("column block: stale delta zone max");
    }
    if (bits != BitWidth(widest)) {
      return util::Status::Corruption(
          "column block: non-canonical delta width");
    }
  }

  out->encoding_ = enc;
  out->count_ = count;
  out->base_ = base;
  out->min_ = min;
  out->max_ = max;
  out->packed_ = std::move(packed);
  if (consumed != nullptr) *consumed = kHeaderBytes + nwords * 8;
  return util::Status::Ok();
}

ZonedColumn ZonedColumn::Build(std::span<const uint64_t> values, bool delta) {
  ZonedColumn col;
  col.size_ = values.size();
  col.blocks_.reserve(
      (values.size() + ColumnBlock::kMaxValues - 1) / ColumnBlock::kMaxValues);
  for (size_t i = 0; i < values.size(); i += ColumnBlock::kMaxValues) {
    const size_t n = std::min(ColumnBlock::kMaxValues, values.size() - i);
    auto chunk = values.subspan(i, n);
    col.blocks_.push_back(delta ? ColumnBlock::EncodeDelta(chunk)
                                : ColumnBlock::EncodeFor(chunk));
  }
  return col;
}

ZonedColumn ZonedColumn::BuildFor(std::span<const uint64_t> values) {
  return Build(values, /*delta=*/false);
}

ZonedColumn ZonedColumn::BuildDelta(std::span<const uint64_t> values) {
  return Build(values, /*delta=*/true);
}

size_t ZonedColumn::LowerBound(uint64_t v) const {
  // Zone search: first block whose max is ≥ v holds the answer (the column
  // is globally non-decreasing, so earlier blocks are entirely < v).
  size_t lo = 0, hi = blocks_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (blocks_[mid].zone_max() < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == blocks_.size()) return size_;
  std::vector<uint64_t> decoded;
  decoded.reserve(blocks_[lo].size());
  blocks_[lo].DecodeAll(&decoded);
  const size_t in_block = static_cast<size_t>(
      std::lower_bound(decoded.begin(), decoded.end(), v) - decoded.begin());
  return lo * ColumnBlock::kMaxValues + in_block;
}

size_t ZonedColumn::ByteSize() const {
  size_t bytes = blocks_.capacity() * sizeof(ColumnBlock);
  for (const ColumnBlock& b : blocks_) bytes += b.ByteSize();
  return bytes;
}

}  // namespace snb::storage::columnar

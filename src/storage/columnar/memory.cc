#include "storage/columnar/memory.h"

#include <cstdio>

namespace snb::storage::columnar {

std::string MemoryBreakdown::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %12s %12s %10s\n", "family",
                "bytes", "raw_bytes", "items");
  out += line;
  for (const MemoryFamily& f : families) {
    std::snprintf(line, sizeof(line), "%-28s %12zu %12zu %10zu\n",
                  f.name.c_str(), f.bytes, f.raw_bytes, f.items);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-28s %12zu %12zu\n", "total",
                total_bytes(), total_raw_bytes());
  out += line;
  std::snprintf(line, sizeof(line),
                "bytes/edge %.2f (raw %.2f, %.2fx)  bytes/message %.2f "
                "(raw %.2f, %.2fx)\n",
                BytesPerEdge(), RawBytesPerEdge(),
                BytesPerEdge() > 0 ? RawBytesPerEdge() / BytesPerEdge() : 0.0,
                BytesPerMessage(), RawBytesPerMessage(),
                BytesPerMessage() > 0
                    ? RawBytesPerMessage() / BytesPerMessage()
                    : 0.0);
  out += line;
  return out;
}

}  // namespace snb::storage::columnar

#include "storage/columnar/dictionary.h"

#include "util/check.h"

namespace snb::storage::columnar {

uint32_t Dictionary::GetOrAdd(std::string_view value) {
  util::MutexLock lock(mu_);
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  const uint32_t code = static_cast<uint32_t>(values_.size());
  SNB_CHECK_LT(code, kNoCode);
  values_.emplace_back(value);
  // The key views the deque-owned string: deque growth never moves
  // elements, so the view stays valid for the dictionary's lifetime.
  index_.emplace(std::string_view(values_.back()), code);
  return code;
}

uint32_t Dictionary::Find(std::string_view value) const {
  util::MutexLock lock(mu_);
  auto it = index_.find(value);
  return it == index_.end() ? kNoCode : it->second;
}

const std::string& Dictionary::Decode(uint32_t code) const {
  util::MutexLock lock(mu_);
  SNB_CHECK_LT(code, values_.size());
  return values_[code];
}

size_t Dictionary::size() const {
  util::MutexLock lock(mu_);
  return values_.size();
}

size_t Dictionary::ByteSize() const {
  util::MutexLock lock(mu_);
  size_t bytes = 0;
  for (const std::string& s : values_) {
    bytes += sizeof(std::string) + s.capacity();
  }
  bytes += index_.size() *
           (sizeof(std::string_view) + sizeof(uint32_t) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace snb::storage::columnar

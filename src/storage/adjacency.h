// Appendable CSR adjacency.
//
// The bulk-loaded part of every relation is stored as a compressed sparse
// row structure (offset array + target array, optionally a parallel payload
// array of DateTimes) for scan locality — choke point CP-3.2/3.3. Inserts
// arriving through the update workload land in per-node overflow vectors;
// iteration walks base then overflow, so readers see a single merged list.

#ifndef SNB_STORAGE_ADJACENCY_H_
#define SNB_STORAGE_ADJACENCY_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/date_time.h"
#include "util/check.h"

namespace snb::storage {

/// One directed edge with an optional DateTime payload, used at build time.
struct EdgeInput {
  uint32_t src;
  uint32_t dst;
  core::DateTime date = 0;
};

class AdjacencyList {
 public:
  AdjacencyList() = default;

  /// Builds the CSR base from an edge list (consumed). `with_dates` controls
  /// whether the payload array is materialized. Each node's base span comes
  /// out sorted by (target, date) regardless of input order — a store
  /// invariant the validator checks (`adjacency-sorted`), and what makes
  /// Base() spans binary-searchable.
  void Build(size_t num_nodes, std::vector<EdgeInput> edges, bool with_dates);

  size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t num_edges() const { return targets_.size() + num_extra_edges_; }

  /// Grows the node space (new nodes start with no edges).
  void AddNodes(size_t count);

  /// Appends one edge (update path).
  void Append(uint32_t src, uint32_t dst, core::DateTime date = 0);

  size_t Degree(uint32_t node) const {
    SNB_DCHECK(node < num_nodes());
    size_t d = offsets_[node + 1] - offsets_[node];
    if (node < extra_.size()) d += extra_[node].size();
    return d;
  }

  /// Base (bulk-loaded) neighbours only — a contiguous span.
  std::span<const uint32_t> Base(uint32_t node) const {
    SNB_DCHECK(node < num_nodes());
    return {targets_.data() + offsets_[node],
            targets_.data() + offsets_[node + 1]};
  }

  /// Visits every neighbour: f(target).
  template <typename F>
  void ForEach(uint32_t node, F&& f) const {
    SNB_DCHECK(node < num_nodes());
    for (size_t k = offsets_[node]; k < offsets_[node + 1]; ++k) {
      f(targets_[k]);
    }
    if (node < extra_.size()) {
      for (uint32_t t : extra_[node]) f(t);
    }
  }

  /// Visits every neighbour with its payload: f(target, date).
  template <typename F>
  void ForEachDated(uint32_t node, F&& f) const {
    SNB_DCHECK(node < num_nodes());
    SNB_DCHECK(!dates_.empty() || targets_.empty());
    for (size_t k = offsets_[node]; k < offsets_[node + 1]; ++k) {
      f(targets_[k], dates_[k]);
    }
    if (node < extra_.size()) {
      const auto& ex = extra_[node];
      const auto& exd = extra_dates_[node];
      for (size_t k = 0; k < ex.size(); ++k) f(ex[k], exd[k]);
    }
  }

  /// Materializes the merged neighbour list (used by callers that need to
  /// sort or binary-search).
  std::vector<uint32_t> Collect(uint32_t node) const {
    std::vector<uint32_t> out;
    out.reserve(Degree(node));
    ForEach(node, [&out](uint32_t t) { out.push_back(t); });
    return out;
  }

  /// True when `dst` is among `src`'s neighbours (linear scan; callers on
  /// hot paths should build hash sets instead).
  bool Contains(uint32_t src, uint32_t dst) const {
    bool found = false;
    ForEach(src, [&found, dst](uint32_t t) {
      if (t == dst) found = true;
    });
    return found;
  }

 private:
  friend struct TestAccess;  // corruption seeding in tests (test_access.h)

  std::vector<uint64_t> offsets_;   // size num_nodes + 1
  std::vector<uint32_t> targets_;
  std::vector<core::DateTime> dates_;  // parallel to targets_, may be empty

  std::vector<std::vector<uint32_t>> extra_;
  std::vector<std::vector<core::DateTime>> extra_dates_;
  size_t num_extra_edges_ = 0;
  bool with_dates_ = false;
};

inline void AdjacencyList::Build(size_t num_nodes,
                                 std::vector<EdgeInput> edges,
                                 bool with_dates) {
  with_dates_ = with_dates;
  // Establish the sorted-base invariant: the counting fill below preserves
  // input order within each node, so sorting the whole edge list by
  // (src, dst, date) leaves every base span sorted by (dst, date).
  std::sort(edges.begin(), edges.end(),
            [](const EdgeInput& a, const EdgeInput& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.date < b.date;
            });
  offsets_.assign(num_nodes + 1, 0);
  for (const EdgeInput& e : edges) {
    SNB_CHECK_LT(e.src, num_nodes);
    ++offsets_[e.src + 1];
  }
  for (size_t i = 1; i <= num_nodes; ++i) offsets_[i] += offsets_[i - 1];
  targets_.resize(edges.size());
  if (with_dates) dates_.resize(edges.size());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const EdgeInput& e : edges) {
    uint64_t pos = cursor[e.src]++;
    targets_[pos] = e.dst;
    if (with_dates) dates_[pos] = e.date;
  }
}

inline void AdjacencyList::AddNodes(size_t count) {
  uint64_t last = offsets_.empty() ? 0 : offsets_.back();
  if (offsets_.empty()) offsets_.push_back(0);
  for (size_t i = 0; i < count; ++i) offsets_.push_back(last);
}

inline void AdjacencyList::Append(uint32_t src, uint32_t dst,
                                  core::DateTime date) {
  SNB_CHECK_LT(src, num_nodes());
  if (extra_.size() < num_nodes()) {
    extra_.resize(num_nodes());
    extra_dates_.resize(num_nodes());
  }
  extra_[src].push_back(dst);
  extra_dates_[src].push_back(date);
  ++num_extra_edges_;
}

}  // namespace snb::storage

#endif  // SNB_STORAGE_ADJACENCY_H_

// Appendable adjacency over the compressed columnar CSR.
//
// The bulk-loaded part of every relation lives in a columnar::CompressedCsr
// (FOR-packed offset/target/date columns with per-block zone metadata — see
// storage/columnar/csr.h) for scan locality and density — choke points
// CP-3.2/3.3. Inserts arriving through the update workload land in a
// chunked overflow arena: one append-only entry pool threaded into
// per-node insertion-ordered chains, replacing the seed's per-vertex
// vector-of-vectors (24 B of header per node per relation before the first
// element). Iteration walks base then overflow, so readers see a single
// merged list, and appends never move an existing entry — the store's
// single-writer / multi-reader contract.

#ifndef SNB_STORAGE_ADJACENCY_H_
#define SNB_STORAGE_ADJACENCY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/date_time.h"
#include "storage/columnar/csr.h"
#include "util/check.h"

namespace snb::storage {

/// One directed edge with an optional DateTime payload, used at build time.
using EdgeInput = columnar::EdgeInput;

class AdjacencyList {
 public:
  AdjacencyList() = default;

  /// Builds the CSR base from an edge list (consumed). `with_dates` controls
  /// whether the payload column is materialized. Each node's base span comes
  /// out sorted by (target, date) regardless of input order — a store
  /// invariant the validator checks (`adjacency-sorted`), and what makes
  /// base spans binary-searchable.
  void Build(size_t num_nodes, std::vector<EdgeInput> edges, bool with_dates) {
    with_dates_ = with_dates;
    num_nodes_ = num_nodes;
    csr_.Build(num_nodes, std::move(edges), with_dates);
  }

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return csr_.num_edges() + overflow_.size(); }
  size_t num_base_edges() const { return csr_.num_edges(); }
  size_t num_overflow_edges() const { return overflow_.size(); }

  /// Grows the node space (new nodes start with no edges).
  void AddNodes(size_t count) { num_nodes_ += count; }

  /// Appends one edge (update path).
  void Append(uint32_t src, uint32_t dst, core::DateTime date = 0) {
    SNB_CHECK_LT(src, num_nodes_);
    if (head_.size() < num_nodes_) {
      head_.resize(num_nodes_, kNilEntry);
      tail_.resize(num_nodes_, kNilEntry);
    }
    const uint32_t entry = static_cast<uint32_t>(overflow_.size());
    SNB_CHECK_LT(entry, kNilEntry);
    overflow_.push_back(OverflowEntry{dst, kNilEntry, date});
    if (head_[src] == kNilEntry) {
      head_[src] = entry;
    } else {
      overflow_[tail_[src]].next = entry;
    }
    tail_[src] = entry;
  }

  size_t Degree(uint32_t node) const {
    SNB_DCHECK(node < num_nodes_);
    size_t d = BaseDegree(node);
    if (node < head_.size()) {
      for (uint32_t e = head_[node]; e != kNilEntry; e = overflow_[e].next) {
        ++d;
      }
    }
    return d;
  }

  /// Size of the bulk-loaded (sorted) part of `node`'s list.
  size_t BaseDegree(uint32_t node) const {
    SNB_DCHECK(node < num_nodes_);
    if (node >= csr_.num_nodes()) return 0;  // node added after bulk load
    return csr_.EdgeEnd(node) - csr_.EdgeBegin(node);
  }

  /// Visits only the bulk-loaded (sorted) neighbours: f(target). The
  /// validator's adjacency-sorted invariant is over exactly this sequence.
  template <typename F>
  void ForEachBase(uint32_t node, F&& f) const {
    SNB_DCHECK(node < num_nodes_);
    if (node >= csr_.num_nodes()) return;
    const uint64_t end = csr_.EdgeEnd(node);
    for (uint64_t k = csr_.EdgeBegin(node); k < end; ++k) {
      f(csr_.TargetAt(k));
    }
  }

  /// Materializes the sorted base span (validator / tests).
  std::vector<uint32_t> BaseCollect(uint32_t node) const {
    std::vector<uint32_t> out;
    out.reserve(BaseDegree(node));
    ForEachBase(node, [&out](uint32_t t) { out.push_back(t); });
    return out;
  }

  /// Visits every neighbour: f(target).
  template <typename F>
  void ForEach(uint32_t node, F&& f) const {
    ForEachBase(node, f);
    if (node < head_.size()) {
      for (uint32_t e = head_[node]; e != kNilEntry; e = overflow_[e].next) {
        f(overflow_[e].target);
      }
    }
  }

  /// Visits every neighbour with its payload: f(target, date).
  template <typename F>
  void ForEachDated(uint32_t node, F&& f) const {
    SNB_DCHECK(node < num_nodes_);
    SNB_DCHECK(with_dates_ || csr_.num_edges() == 0);
    if (node < csr_.num_nodes()) {
      const uint64_t end = csr_.EdgeEnd(node);
      for (uint64_t k = csr_.EdgeBegin(node); k < end; ++k) {
        f(csr_.TargetAt(k), csr_.DateAt(k));
      }
    }
    if (node < head_.size()) {
      for (uint32_t e = head_[node]; e != kNilEntry; e = overflow_[e].next) {
        f(overflow_[e].target, overflow_[e].date);
      }
    }
  }

  /// Materializes the merged neighbour list (used by callers that need to
  /// sort or binary-search).
  std::vector<uint32_t> Collect(uint32_t node) const {
    std::vector<uint32_t> out;
    out.reserve(Degree(node));
    ForEach(node, [&out](uint32_t t) { out.push_back(t); });
    return out;
  }

  /// True when `dst` is among `src`'s neighbours (linear scan; callers on
  /// hot paths should build hash sets instead).
  bool Contains(uint32_t src, uint32_t dst) const {
    bool found = false;
    ForEach(src, [&found, dst](uint32_t t) {
      if (t == dst) found = true;
    });
    return found;
  }

  /// The packed base columns (memory accounting, block-zone validation).
  const columnar::CompressedCsr& csr() const { return csr_; }

  /// Heap bytes actually held: packed base columns + overflow arena.
  size_t ByteSize() const {
    return csr_.ByteSize() + overflow_.capacity() * sizeof(OverflowEntry) +
           (head_.capacity() + tail_.capacity()) * sizeof(uint32_t);
  }

  /// Seed-layout bytes for the same content: raw CSR arrays plus per-vertex
  /// overflow vectors (two 24 B vector headers per node once any overflow
  /// exists, 4 B target + 8 B date per overflow edge).
  size_t RawByteSize() const {
    size_t raw = csr_.RawByteSize();
    if (!overflow_.empty()) {
      raw += num_nodes_ * 2 * 24;
      raw += overflow_.size() *
             (sizeof(uint32_t) + (with_dates_ ? sizeof(core::DateTime) : 0));
    }
    return raw;
  }

 private:
  friend struct TestAccess;  // corruption seeding in tests (test_access.h)

  static constexpr uint32_t kNilEntry = UINT32_MAX;

  /// One overflow edge; `next` threads the per-node chain in append order.
  struct OverflowEntry {
    uint32_t target;
    uint32_t next;
    core::DateTime date;
  };

  columnar::CompressedCsr csr_;
  std::vector<OverflowEntry> overflow_;  // chunk-grown append-only arena
  std::vector<uint32_t> head_, tail_;    // per-node chain ends, lazily sized
  size_t num_nodes_ = 0;
  bool with_dates_ = false;
};

}  // namespace snb::storage

#endif  // SNB_STORAGE_ADJACENCY_H_

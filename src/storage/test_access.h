// Test-only backdoor into the storage layer.
//
// The validator tests (tests/validate_test.cc) need to *corrupt* a loaded
// graph — dangle an edge, unsort an adjacency span, tamper a zone map — and
// assert that the right invariant catches it. The store's public API
// deliberately cannot express such states, so this header hands tests
// mutable references into the private representation. Production code must
// never include it; scripts/lint.sh enforces that it is only included from
// tests/.

#ifndef SNB_STORAGE_TEST_ACCESS_H_
#define SNB_STORAGE_TEST_ACCESS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/adjacency.h"
#include "storage/graph.h"
#include "storage/message_index.h"
#include "storage/tombstone.h"
#include "util/thread_annotations.h"

namespace snb::storage {

struct TestAccess {
  // ---- Graph tables ---------------------------------------------------------

  static std::vector<core::Person>& Persons(Graph& g) { return g.persons_; }
  static std::vector<uint8_t>& PersonIsFemale(Graph& g) {
    return g.person_is_female_;
  }
  static std::vector<uint32_t>& PostCreator(Graph& g) {
    return g.post_creator_;
  }
  static std::vector<uint32_t>& PersonGenderCode(Graph& g) {
    return g.person_gender_code_;
  }
  static std::vector<uint32_t>& TagNameCode(Graph& g) {
    return g.tag_name_code_;
  }
  static std::vector<uint32_t>& CommentCreator(Graph& g) {
    return g.comment_creator_;
  }
  static columnar::AppendableU32Column& CommentForum(Graph& g) {
    return g.comment_forum_;
  }
  static std::vector<uint32_t>& PostLanguageCode(Graph& g) {
    return g.post_language_code_;
  }
  static std::vector<uint32_t>& CommentRootLanguageCode(Graph& g) {
    return g.comment_root_language_code_;
  }
  static std::vector<core::DateTime>& PersonMsgDateMin(Graph& g) {
    return g.person_msg_date_min_;
  }
  static std::vector<core::DateTime>& PersonMsgDateMax(Graph& g) {
    return g.person_msg_date_max_;
  }
  static AdjacencyList& Knows(Graph& g) { return g.knows_; }
  static AdjacencyList& PersonPosts(Graph& g) { return g.person_posts_; }
  static AdjacencyList& ForumMembers(Graph& g) { return g.forum_members_; }
  static MessageDateIndex& MessageIndex(Graph& g) { return g.message_index_; }

  // ---- Tombstone state ------------------------------------------------------
  // Tests seed torn-cascade states (a dead person whose messages stayed
  // alive, a stale live-count delta, an uncollapsed zone) that the public
  // Delete* cascade can never produce, then assert the tombstone-* validator
  // invariants catch each one.

  static TombstoneBitmap& PersonDead(Graph& g) { return g.person_dead_; }
  static TombstoneBitmap& ForumDead(Graph& g) { return g.forum_dead_; }
  static TombstoneBitmap& PostDead(Graph& g) { return g.post_dead_; }
  static TombstoneBitmap& CommentDead(Graph& g) { return g.comment_dead_; }
  static std::unordered_map<uint32_t, uint32_t>& DeadLikesPerMsg(Graph& g) {
    return g.dead_likes_per_msg_;
  }
  static std::unordered_map<uint32_t, uint32_t>& DeadRepliesPerMsg(Graph& g) {
    return g.dead_replies_per_msg_;
  }
  static uint32_t& TombstoneEpoch(Graph& g) { return g.tombstone_epoch_; }

  // ---- Adjacency representation --------------------------------------------

  /// The packed base columns. Tests corrupt them through the ZonedColumn /
  /// ColumnBlock *ForTest hooks: SetValueForTest rewrites one packed slot
  /// in place (zone metadata untouched), CorruptZoneForTest tampers a
  /// block's min/max — each the precise damage one invariant exists to
  /// catch.
  static columnar::CompressedCsr& Csr(AdjacencyList& a) { return a.csr_; }

  // ---- Message index representation ----------------------------------------
  // Tests run single-threaded against a quiesced store, so reaching past the
  // writer mutex is safe here and only here.

  static std::vector<uint32_t>& BaseRefs(MessageDateIndex& idx) {
    return idx.base_refs_;
  }
  static columnar::ZonedColumn& BaseDateColumn(MessageDateIndex& idx) {
    return idx.base_dates_;
  }
  static std::vector<uint32_t>& TailRefs(MessageDateIndex& idx)
      SNB_NO_THREAD_SAFETY_ANALYSIS {
    return idx.tail_refs_;
  }
  static std::vector<core::DateTime>& TailDates(MessageDateIndex& idx)
      SNB_NO_THREAD_SAFETY_ANALYSIS {
    return idx.tail_dates_;
  }
  static std::vector<MessageDateIndex::Zone>& TailZones(MessageDateIndex& idx)
      SNB_NO_THREAD_SAFETY_ANALYSIS {
    return idx.tail_zones_;
  }
  static std::vector<uint32_t>& BaseLikeMax(MessageDateIndex& idx)
      SNB_NO_THREAD_SAFETY_ANALYSIS {
    return idx.base_like_max_;
  }
};

}  // namespace snb::storage

#endif  // SNB_STORAGE_TEST_ACCESS_H_

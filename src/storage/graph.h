// The in-memory social-network graph store.
//
// Entities live in columnar-ish tables (the raw record vectors plus flat
// "hot" columns for scan-heavy attributes); every relation is materialized
// as forward and, where queries need it, reverse appendable-CSR adjacency
// (see adjacency.h). External spec ids map to dense uint32 indices at build
// time; all traversal is index-based.
//
// Posts and comments are distinct tables; a *message reference* encodes
// either in one uint32: bit 31 clear → post index, bit 31 set → comment
// index. The encoding is stable under appends (updates can add posts and
// comments without invalidating existing references) and gives the unified
// "Message" view the BI workload queries over.
//
// The store is single-writer / multi-reader: Add* mutators (the Interactive
// update operations IU 1–8) append to overflow regions without invalidating
// base CSR spans.
//
// Deep deletes (DEL 1–8) are logical: Delete* mutators run a five-stage
// cascade (persons → forums → messages → likes → index) that marks rows dead
// in tombstone bitmaps (tombstone.h) without touching the physical layout.
// Scans filter through the bitmaps only when tombstones exist, so
// insert-only graphs keep their unfiltered fast paths. Physical reclamation
// is compaction: ExportNetwork skips dead rows and the re-built Graph
// carries a bumped compaction epoch.

#ifndef SNB_STORAGE_GRAPH_H_
#define SNB_STORAGE_GRAPH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/schema.h"
#include "storage/adjacency.h"
#include "storage/columnar/dictionary.h"
#include "storage/columnar/memory.h"
#include "storage/columnar/packed_column.h"
#include "storage/message_index.h"
#include "storage/tombstone.h"
#include "util/status.h"

namespace snb::storage {

constexpr uint32_t kNoIdx = UINT32_MAX;

class Graph {
 public:
  /// Builds all indexes from a raw network (consumed). `compaction_epoch`
  /// stamps the generation this graph belongs to: 0 for a bulk load,
  /// previous epoch + 1 when rebuilding from a tombstoned graph's export.
  explicit Graph(core::SocialNetwork net, uint32_t compaction_epoch = 0);

  // Non-copyable and non-movable: the message index carries a mutex, and
  // queries hold references into the tables.
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // ---- Entity tables ------------------------------------------------------

  size_t NumPersons() const { return persons_.size(); }
  size_t NumForums() const { return forums_.size(); }
  size_t NumPosts() const { return posts_.size(); }
  size_t NumComments() const { return comments_.size(); }
  size_t NumMessages() const { return posts_.size() + comments_.size(); }
  size_t NumTags() const { return tags_.size(); }
  size_t NumTagClasses() const { return tag_classes_.size(); }
  size_t NumPlaces() const { return places_.size(); }
  size_t NumOrganisations() const { return organisations_.size(); }

  const core::Person& PersonAt(uint32_t i) const { return persons_[i]; }
  const core::Forum& ForumAt(uint32_t i) const { return forums_[i]; }
  const core::Post& PostAt(uint32_t i) const { return posts_[i]; }
  const core::Comment& CommentAt(uint32_t i) const { return comments_[i]; }
  const core::Tag& TagAt(uint32_t i) const { return tags_[i]; }
  const core::TagClass& TagClassAt(uint32_t i) const {
    return tag_classes_[i];
  }
  const core::Place& PlaceAt(uint32_t i) const { return places_[i]; }
  const core::Organisation& OrganisationAt(uint32_t i) const {
    return organisations_[i];
  }

  // ---- Id ↔ index ----------------------------------------------------------

  uint32_t PersonIdx(core::Id id) const { return Lookup(person_idx_, id); }
  uint32_t ForumIdx(core::Id id) const { return Lookup(forum_idx_, id); }
  uint32_t PostIdx(core::Id id) const { return Lookup(post_idx_, id); }
  uint32_t CommentIdx(core::Id id) const { return Lookup(comment_idx_, id); }
  uint32_t TagIdx(core::Id id) const { return Lookup(tag_idx_, id); }
  uint32_t TagClassIdx(core::Id id) const {
    return Lookup(tag_class_idx_, id);
  }
  uint32_t PlaceIdx(core::Id id) const { return Lookup(place_idx_, id); }
  uint32_t OrganisationIdx(core::Id id) const {
    return Lookup(organisation_idx_, id);
  }

  /// Name lookups for query parameters given by name (countries, tags,
  /// tag classes). Return kNoIdx when absent.
  uint32_t PlaceByName(const std::string& name) const;
  uint32_t TagByName(const std::string& name) const;
  uint32_t TagClassByName(const std::string& name) const;

  // ---- Message references --------------------------------------------------

  static constexpr uint32_t kCommentBit = 0x80000000u;

  static bool IsPost(uint32_t msg) { return (msg & kCommentBit) == 0; }
  static uint32_t AsPost(uint32_t msg) { return msg; }
  static uint32_t AsComment(uint32_t msg) { return msg & ~kCommentBit; }
  static uint32_t MessageOfPost(uint32_t post) { return post; }
  static uint32_t MessageOfComment(uint32_t comment) {
    return comment | kCommentBit;
  }

  // ---- Tombstones (deep deletes DEL 1–8) -----------------------------------

  bool PersonAlive(uint32_t p) const { return !person_dead_.Test(p); }
  bool ForumAlive(uint32_t f) const { return !forum_dead_.Test(f); }
  bool PostAlive(uint32_t i) const { return !post_dead_.Test(i); }
  bool CommentAlive(uint32_t i) const { return !comment_dead_.Test(i); }
  bool MessageAlive(uint32_t msg) const {
    return IsPost(msg) ? PostAlive(msg) : CommentAlive(AsComment(msg));
  }

  /// Edge liveness: an edge is live when both endpoints are alive and it was
  /// not explicitly tombstoned (DEL 2/3/5/8).
  bool KnowsAlive(uint32_t p, uint32_t q) const {
    return PersonAlive(p) && PersonAlive(q) &&
           deleted_knows_.find(UnorderedEdgeKey(p, q)) == deleted_knows_.end();
  }
  bool LikeAlive(uint32_t person, uint32_t msg) const {
    return PersonAlive(person) && MessageAlive(msg) &&
           deleted_likes_.find(EdgeKey(person, msg)) == deleted_likes_.end();
  }
  bool MembershipAlive(uint32_t person, uint32_t forum) const {
    return PersonAlive(person) && ForumAlive(forum) &&
           deleted_memberships_.find(EdgeKey(person, forum)) ==
               deleted_memberships_.end();
  }

  size_t NumLivePersons() const { return persons_.size() - person_dead_.count(); }
  size_t NumLiveForums() const { return forums_.size() - forum_dead_.count(); }
  size_t NumLivePosts() const { return posts_.size() - post_dead_.count(); }
  size_t NumLiveComments() const {
    return comments_.size() - comment_dead_.count();
  }

  /// True when any logical deletion exists (vertex or edge) — the signal for
  /// refresh/recovery to compact before publishing.
  bool HasTombstones() const {
    return HasDeadMessages() || person_dead_.count() > 0 ||
           forum_dead_.count() > 0 || !deleted_likes_.empty() ||
           !deleted_memberships_.empty() || !deleted_knows_.empty();
  }

  /// Completed-cascade counter: bumped once per finished Delete* cascade.
  /// A torn cascade (crash or injected fault mid-stage) leaves it unbumped.
  uint32_t TombstoneEpoch() const { return tombstone_epoch_; }
  /// Rebuild generation (0 for a bulk load; +1 per compaction).
  uint32_t CompactionEpoch() const { return compaction_epoch_; }

  /// Number of likes whose target is `msg` and whose edge is still live —
  /// the delete-aware replacement for PostLikers()/CommentLikers() Degree.
  int64_t LiveLikeCount(uint32_t msg) const {
    int64_t n = static_cast<int64_t>(
        IsPost(msg) ? post_likers_.Degree(msg)
                    : comment_likers_.Degree(AsComment(msg)));
    if (!dead_likes_per_msg_.empty()) {
      auto it = dead_likes_per_msg_.find(msg);
      if (it != dead_likes_per_msg_.end()) n -= it->second;
    }
    return n;
  }

  /// Live direct replies of `msg` (only meaningful for live messages: a dead
  /// parent's counter is not maintained past its own death).
  int64_t LiveReplyCount(uint32_t msg) const {
    int64_t n = static_cast<int64_t>(
        IsPost(msg) ? post_replies_.Degree(msg)
                    : comment_replies_.Degree(AsComment(msg)));
    if (!dead_replies_per_msg_.empty()) {
      auto it = dead_replies_per_msg_.find(msg);
      if (it != dead_replies_per_msg_.end()) n -= it->second;
    }
    return n;
  }

  /// Visits every live message reference: first posts, then comments.
  /// Insert-only graphs take the unfiltered fast path.
  template <typename F>
  void ForEachMessage(F&& f) const {
    if (!HasDeadMessages()) {
      for (uint32_t i = 0; i < posts_.size(); ++i) f(MessageOfPost(i));
      for (uint32_t i = 0; i < comments_.size(); ++i) f(MessageOfComment(i));
      return;
    }
    for (uint32_t i = 0; i < posts_.size(); ++i) {
      if (PostAlive(i)) f(MessageOfPost(i));
    }
    for (uint32_t i = 0; i < comments_.size(); ++i) {
      if (CommentAlive(i)) f(MessageOfComment(i));
    }
  }

  /// Visits exactly the messages with creationDate in [start, end), pruned
  /// through the creation-date index: the sorted base contributes a
  /// binary-searched slice, the unsorted update tail is zone-map filtered
  /// (CP-2.2/2.3). Visit order is date order over the base followed by
  /// arrival order over the tail — callers must be order-insensitive.
  template <typename F>
  void ForEachMessageInRange(core::DateTime start, core::DateTime end,
                             F&& f) const {
    if (!HasDeadMessages()) {
      message_index_.ForEachBaseInRange(start, end, f);
      message_index_.ForEachTailInRange(start, end, f);
      return;
    }
    auto live = [this, &f](uint32_t msg) {
      if (MessageAlive(msg)) f(msg);
    };
    message_index_.ForEachBaseInRange(start, end, live);
    message_index_.ForEachTailInRange(start, end, live);
  }

  /// Bound-pushdown range scan (CP-1.3): before a zone-mapped block is
  /// decoded, `skip` is offered its like-count zone maximum — a true return
  /// prunes the whole block unseen. `skip(max)` must be monotone: true for
  /// a block max implies every member message (whose like count is ≤ max)
  /// would also be rejected, which is what keeps the pushdown engines
  /// bit-identical to the sort-everything oracle. Zone maxima are computed
  /// over all rows, so they still upper-bound live like counts after
  /// deletes: the skip stays safe (merely less selective) under tombstones.
  template <typename SkipFn, typename F>
  void ForEachMessageInRangeBounded(core::DateTime start, core::DateTime end,
                                    SkipFn&& skip, F&& f) const {
    if (!HasDeadMessages()) {
      message_index_.ForEachBaseInRangeBounded(start, end, skip, f);
      message_index_.ForEachTailInRangeBounded(start, end, skip, f);
      return;
    }
    auto live = [this, &f](uint32_t msg) {
      if (MessageAlive(msg)) f(msg);
    };
    message_index_.ForEachBaseInRangeBounded(start, end, skip, live);
    message_index_.ForEachTailInRangeBounded(start, end, skip, live);
  }

  /// Random-access view over exactly the messages with creationDate in
  /// [start, end): the sorted-base slice followed by the matching tail
  /// entries (materialized — the tail holds only post-load appends and stays
  /// small). Indexable concurrently from many threads; the morsel engine
  /// partitions it.
  class MessageRangeView {
   public:
    size_t size() const { return base_count_ + tail_.size(); }
    uint32_t operator[](size_t i) const {
      return i < base_count_ ? index_->BaseAt(base_begin_ + i)
                             : tail_[i - base_count_];
    }

    /// View positions [0, base_count()) come from the sorted base and carry
    /// aligned like-count zones; the materialized tail follows.
    size_t base_count() const { return base_count_; }

    /// Upper bound on the like count of every message in the zone holding
    /// view position `i`. Tail positions return INT64_MAX (the tail was
    /// already zone-filtered at view construction and has no aligned zones
    /// in view coordinates), so bound skips never fire there.
    int64_t BoundZoneMax(size_t i) const {
      if (i >= base_count_) return std::numeric_limits<int64_t>::max();
      return static_cast<int64_t>(index_->BaseBlockMaxLikes(
          (base_begin_ + i) / columnar::ColumnBlock::kMaxValues));
    }

    /// One past the last view position sharing position `i`'s zone — the
    /// stride for block-at-a-time bound pruning inside a morsel.
    size_t ZoneEnd(size_t i) const {
      if (i >= base_count_) return size();
      const size_t block = columnar::ColumnBlock::kMaxValues;
      const size_t abs_end = ((base_begin_ + i) / block + 1) * block;
      return std::min(base_count_, abs_end - base_begin_);
    }

   private:
    friend class Graph;
    const MessageDateIndex* index_ = nullptr;
    size_t base_begin_ = 0;
    size_t base_count_ = 0;
    std::vector<uint32_t> tail_;
  };

  MessageRangeView MessageRange(core::DateTime start,
                                core::DateTime end) const {
    MessageRangeView view;
    view.index_ = &message_index_;
    auto [lo, hi] = message_index_.BaseRange(start, end);
    if (!HasDeadMessages()) {
      view.base_begin_ = lo;
      view.base_count_ = hi - lo;
      message_index_.ForEachTailInRange(
          start, end, [&view](uint32_t msg) { view.tail_.push_back(msg); });
      return view;
    }
    // Tombstoned graph: materialize the live subset into the tail so view
    // positions stay dense. Bound pruning degrades (tail zones answer
    // INT64_MAX) but the skip predicate never fires on a stale maximum,
    // which keeps pushdown engines bit-identical to the oracle.
    for (size_t i = lo; i < hi; ++i) {
      const uint32_t msg = message_index_.BaseAt(i);
      if (MessageAlive(msg)) view.tail_.push_back(msg);
    }
    message_index_.ForEachTailInRange(start, end, [this, &view](uint32_t msg) {
      if (MessageAlive(msg)) view.tail_.push_back(msg);
    });
    return view;
  }

  /// The underlying creation-date index (zone-map introspection for tests
  /// and the bench report).
  const MessageDateIndex& MessageIndex() const { return message_index_; }

  core::DateTime MessageCreationDate(uint32_t msg) const {
    return IsPost(msg) ? post_creation_[msg]
                       : comment_creation_[AsComment(msg)];
  }
  uint32_t MessageCreator(uint32_t msg) const {
    return IsPost(msg) ? post_creator_[msg] : comment_creator_[AsComment(msg)];
  }
  /// Country *place index* of the message.
  uint32_t MessageCountry(uint32_t msg) const {
    return IsPost(msg) ? post_country_[msg] : comment_country_[AsComment(msg)];
  }
  int32_t MessageLength(uint32_t msg) const {
    return IsPost(msg) ? posts_[msg].length
                       : comments_[AsComment(msg)].length;
  }
  /// Message id in the external id space of its entity type.
  core::Id MessageId(uint32_t msg) const {
    return IsPost(msg) ? posts_[msg].id : comments_[AsComment(msg)].id;
  }
  /// content for comments and text posts, imageFile for image posts.
  const std::string& MessageContent(uint32_t msg) const {
    if (IsPost(msg)) {
      const core::Post& p = posts_[msg];
      return p.content.empty() ? p.image_file : p.content;
    }
    return comments_[AsComment(msg)].content;
  }
  bool MessageHasContent(uint32_t msg) const {
    return IsPost(msg) ? !posts_[msg].content.empty() : true;
  }

  /// Visits the tag indices of a message.
  template <typename F>
  void ForEachMessageTag(uint32_t msg, F&& f) const {
    if (IsPost(msg)) {
      post_tags_.ForEach(msg, f);
    } else {
      comment_tags_.ForEach(AsComment(msg), f);
    }
  }

  // ---- Hot columns ----------------------------------------------------------

  // ---- Dictionary-encoded columns -------------------------------------------
  // One dictionary shared across every low-cardinality string family
  // (genders, browsers, place names, tag names, content-length classes):
  // stable dense uint32 codes assigned at load, O(1) decode, appended to —
  // never reassigned — by the IU update path. The validator's
  // dictionary-code-in-range invariant checks every code column below
  // against Dict().size().

  const columnar::Dictionary& Dict() const { return dict_; }

  uint32_t PersonGenderCode(uint32_t p) const {
    return person_gender_code_[p];
  }
  uint32_t PersonBrowserCode(uint32_t p) const {
    return person_browser_code_[p];
  }
  uint32_t TagNameCode(uint32_t t) const { return tag_name_code_[t]; }
  uint32_t PlaceNameCode(uint32_t pl) const { return place_name_code_[pl]; }
  uint32_t MessageBrowserCode(uint32_t msg) const {
    return IsPost(msg) ? post_browser_code_[msg]
                       : comment_browser_code_[AsComment(msg)];
  }
  uint32_t MessageLengthClassCode(uint32_t msg) const {
    return IsPost(msg) ? post_length_class_code_[msg]
                       : comment_length_class_code_[AsComment(msg)];
  }

  /// Content-length class of a message (BI queries group by the spec's
  /// short/medium/long split rather than raw lengths).
  static const char* LengthClassName(int32_t length) {
    if (length <= 0) return "len:empty";
    if (length < 40) return "len:short";
    if (length < 160) return "len:medium";
    return "len:long";
  }

  /// Per-family heap accounting for the columnar store: bytes held vs the
  /// seed layout's bytes for the same content, plus bytes/edge and
  /// bytes/message (see storage/columnar/memory.h).
  columnar::MemoryBreakdown Memory() const;

  core::DateTime PersonCreation(uint32_t p) const {
    return person_creation_[p];
  }
  /// City place index of the person.
  uint32_t PersonCity(uint32_t p) const { return person_city_[p]; }
  /// Country place index of the person (city's parent, precomputed).
  uint32_t PersonCountry(uint32_t p) const { return person_country_[p]; }
  /// Gender hot column: the BI group-bys only ever need the binary split,
  /// so scans avoid the per-row string compare against Person::gender.
  bool PersonIsFemale(uint32_t p) const { return person_is_female_[p] != 0; }

  /// Per-person creation-date zone over the person's own messages: true
  /// when `p` created at least one message in [start, end). Sentinel zones
  /// (min = kMaxMessageDate, max = kMinMessageDate) make a person with no
  /// messages overlap nothing, so scans skip them without touching their
  /// adjacency (CP-2.3 pruning at person granularity).
  bool PersonHasMessagesIn(uint32_t p, core::DateTime start,
                           core::DateTime end) const {
    return person_msg_date_min_[p] < end && person_msg_date_max_[p] >= start;
  }

  core::DateTime PostCreation(uint32_t i) const { return post_creation_[i]; }
  uint32_t PostCreator(uint32_t i) const { return post_creator_[i]; }
  uint32_t PostForum(uint32_t i) const { return post_forum_[i]; }
  uint32_t PostCountry(uint32_t i) const { return post_country_[i]; }
  /// Dictionary code of the post's language (kNoCode when the post has no
  /// language, e.g. image posts).
  uint32_t PostLanguageCode(uint32_t i) const {
    return post_language_code_[i];
  }

  core::DateTime CommentCreation(uint32_t i) const {
    return comment_creation_[i];
  }
  uint32_t CommentCreator(uint32_t i) const { return comment_creator_[i]; }
  uint32_t CommentCountry(uint32_t i) const { return comment_country_[i]; }
  /// Direct reply target as a message reference.
  uint32_t CommentReplyOf(uint32_t i) const { return comment_reply_of_[i]; }
  /// Post at the root of the comment's thread (precomputed).
  uint32_t CommentRootPost(uint32_t i) const { return comment_root_post_[i]; }
  /// Forum containing the comment's thread — the materialized 2-hop
  /// endpoint (comment → root post → forum), bit-packed so the hot loop is
  /// one column probe instead of two dependent loads (TuGraph idiom).
  uint32_t CommentForum(uint32_t i) const { return comment_forum_.At(i); }
  /// Language code of the comment's thread root post (2-hop endpoint).
  uint32_t CommentRootLanguageCode(uint32_t i) const {
    return comment_root_language_code_[i];
  }

  /// Forum of any message reference: the post's forum, or the containing
  /// thread's forum for a comment — one probe either way.
  uint32_t MessageForum(uint32_t msg) const {
    return IsPost(msg) ? post_forum_[msg] : comment_forum_.At(AsComment(msg));
  }

  /// Parent place index (city→country, country→continent); kNoIdx for
  /// continents.
  uint32_t PlacePartOf(uint32_t place) const { return place_part_of_[place]; }
  /// Parent tag-class index; kNoIdx at the root.
  uint32_t TagClassParent(uint32_t tc) const { return tag_class_parent_[tc]; }
  /// Tag-class index of a tag.
  uint32_t TagClassOfTag(uint32_t t) const { return tag_class_of_tag_[t]; }

  // ---- Adjacency ------------------------------------------------------------

  const AdjacencyList& Knows() const { return knows_; }                // dated
  const AdjacencyList& PersonPosts() const { return person_posts_; }
  const AdjacencyList& PersonComments() const { return person_comments_; }
  /// person → message references, dated with the like creation date.
  const AdjacencyList& PersonLikes() const { return person_likes_; }
  /// post/comment → liker person, dated.
  const AdjacencyList& PostLikers() const { return post_likers_; }
  const AdjacencyList& CommentLikers() const { return comment_likers_; }
  const AdjacencyList& ForumMembers() const { return forum_members_; }  // dated
  /// person → forums they are a member of, dated with joinDate.
  const AdjacencyList& PersonForums() const { return person_forums_; }
  const AdjacencyList& ForumPosts() const { return forum_posts_; }
  /// person → forums they moderate.
  const AdjacencyList& PersonModerates() const { return person_moderates_; }
  /// post → direct reply comments.
  const AdjacencyList& PostReplies() const { return post_replies_; }
  /// comment → direct reply comments.
  const AdjacencyList& CommentReplies() const { return comment_replies_; }
  const AdjacencyList& PostTags() const { return post_tags_; }
  const AdjacencyList& CommentTags() const { return comment_tags_; }
  const AdjacencyList& ForumTags() const { return forum_tags_; }
  const AdjacencyList& PersonInterests() const { return person_interests_; }
  const AdjacencyList& TagPosts() const { return tag_posts_; }
  const AdjacencyList& TagComments() const { return tag_comments_; }
  const AdjacencyList& TagForums() const { return tag_forums_; }
  const AdjacencyList& TagPersons() const { return tag_persons_; }
  /// country place index → persons located there.
  const AdjacencyList& CountryPersons() const { return country_persons_; }
  /// tag-class index → child class indices.
  const AdjacencyList& TagClassChildren() const { return tag_class_children_; }
  /// tag-class index → tags of that class.
  const AdjacencyList& TagClassTags() const { return tag_class_tags_; }

  // ---- Mutators (Interactive updates IU 1–8) --------------------------------

  uint32_t AddPerson(const core::Person& person);              // IU 1
  void AddLikePost(core::Id person, core::Id post,
                   core::DateTime date);                       // IU 2
  void AddLikeComment(core::Id person, core::Id comment,
                      core::DateTime date);                    // IU 3
  uint32_t AddForum(const core::Forum& forum);                 // IU 4
  void AddMembership(core::Id person, core::Id forum,
                     core::DateTime join_date);                // IU 5
  uint32_t AddPost(const core::Post& post);                    // IU 6
  uint32_t AddComment(const core::Comment& comment);           // IU 7
  void AddKnows(core::Id person1, core::Id person2,
                core::DateTime date);                          // IU 8

  // ---- Mutators (deep deletes DEL 1–8) --------------------------------------
  //
  // Each runs the shared five-stage cascade (see RunCascade). Deleting a
  // person also removes every forum they moderate, every message they
  // authored, those messages' reply subtrees, and all their incident
  // likes/memberships/knows edges. Missing or already-dead targets are Ok
  // no-ops — that is what makes WAL replay and resume-after-crash
  // idempotent (a delete re-applied after compaction finds nothing).
  // A returned error (only from injected faults / failpoints) means the
  // cascade is torn: tombstones from completed stages are in place but the
  // epoch was not bumped, and like/reply deltas of later stages are
  // missing. A torn graph must be discarded — the refresh path throws away
  // its shadow copy and rebuilds from the published base; recovery restarts
  // replay from the WAL. (Re-calling the same Delete* is NOT a repair: the
  // root is already tombstoned, so it would no-op.)

  util::Status DeletePerson(core::Id person);                  // DEL 1
  util::Status DeleteLikePost(core::Id person, core::Id post);     // DEL 2
  util::Status DeleteLikeComment(core::Id person, core::Id comment);  // DEL 3
  util::Status DeleteForum(core::Id forum);                    // DEL 4
  util::Status DeleteMembership(core::Id person, core::Id forum);  // DEL 5
  util::Status DeletePost(core::Id post);                      // DEL 6
  util::Status DeleteComment(core::Id comment);                // DEL 7
  util::Status DeleteKnows(core::Id person1, core::Id person2);    // DEL 8

 private:
  friend struct TestAccess;  // corruption seeding in tests (test_access.h)

  static uint32_t Lookup(const std::unordered_map<core::Id, uint32_t>& map,
                         core::Id id) {
    auto it = map.find(id);
    return it == map.end() ? kNoIdx : it->second;
  }

  uint32_t CountryOfPlace(uint32_t place) const;

  // ---- Cascade machinery ----------------------------------------------------

  static uint64_t EdgeKey(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  static uint64_t UnorderedEdgeKey(uint32_t a, uint32_t b) {
    return a < b ? EdgeKey(a, b) : EdgeKey(b, a);
  }

  bool HasDeadMessages() const {
    return post_dead_.count() + comment_dead_.count() > 0;
  }

  /// Root sets collected by the Delete* mutators before the cascade runs.
  struct CascadeTargets {
    std::vector<uint32_t> persons;        // person indices
    std::vector<uint32_t> forums;         // forum indices
    std::vector<uint32_t> message_roots;  // message references
    std::vector<uint64_t> like_keys;      // EdgeKey(person, message ref)
    std::vector<uint64_t> membership_keys;  // EdgeKey(person, forum)
    std::vector<uint64_t> knows_keys;       // UnorderedEdgeKey(person, person)
  };

  /// The five-stage cascade driver shared by all Delete* mutators:
  /// persons → forums → messages (reply-subtree BFS) → likes/edges → index.
  /// Each stage opens with one fail-point site (graph.delete.*); an injected
  /// fault returns mid-cascade, leaving a torn cascade for recovery to
  /// re-run or discard.
  util::Status RunCascade(CascadeTargets targets);

  /// Marks one message dead; appends it to `work` (the BFS frontier) when
  /// newly dead and maintains the parent's live-reply delta.
  void MarkMessageDead(uint32_t msg, std::vector<uint32_t>* work);

  // Raw entity tables.
  std::vector<core::Person> persons_;
  std::vector<core::Forum> forums_;
  std::vector<core::Post> posts_;
  std::vector<core::Comment> comments_;
  std::vector<core::Tag> tags_;
  std::vector<core::TagClass> tag_classes_;
  std::vector<core::Place> places_;
  std::vector<core::Organisation> organisations_;

  // Id maps.
  std::unordered_map<core::Id, uint32_t> person_idx_, forum_idx_, post_idx_,
      comment_idx_, tag_idx_, tag_class_idx_, place_idx_, organisation_idx_;
  std::unordered_map<std::string, uint32_t> place_by_name_, tag_by_name_,
      tag_class_by_name_;

  // Hot columns.
  std::vector<core::DateTime> person_creation_;
  std::vector<uint32_t> person_city_, person_country_;
  std::vector<uint8_t> person_is_female_;
  std::vector<core::DateTime> post_creation_;
  std::vector<uint32_t> post_creator_, post_forum_, post_country_;
  std::vector<core::DateTime> comment_creation_;
  std::vector<uint32_t> comment_creator_, comment_country_;
  std::vector<uint32_t> comment_reply_of_;   // message reference
  std::vector<uint32_t> comment_root_post_;  // post index
  std::vector<uint32_t> place_part_of_;
  std::vector<uint32_t> tag_class_parent_, tag_class_of_tag_;

  // Shared dictionary + code columns (low-cardinality string families).
  columnar::Dictionary dict_;
  std::vector<uint32_t> person_gender_code_, person_browser_code_;
  std::vector<uint32_t> post_browser_code_, comment_browser_code_;
  std::vector<uint32_t> post_length_class_code_, comment_length_class_code_;
  std::vector<uint32_t> tag_name_code_, place_name_code_;
  std::vector<uint32_t> post_language_code_, comment_root_language_code_;

  // Materialized hot endpoints + per-person message-date zones.
  columnar::AppendableU32Column comment_forum_;  // comment → thread's forum
  std::vector<core::DateTime> person_msg_date_min_, person_msg_date_max_;

  // Adjacency.
  AdjacencyList knows_;
  AdjacencyList person_posts_, person_comments_, person_likes_;
  AdjacencyList post_likers_, comment_likers_;
  AdjacencyList forum_members_, person_forums_, forum_posts_,
      person_moderates_;
  AdjacencyList post_replies_, comment_replies_;
  AdjacencyList post_tags_, comment_tags_, forum_tags_, person_interests_;
  AdjacencyList tag_posts_, tag_comments_, tag_forums_, tag_persons_;
  AdjacencyList country_persons_;
  AdjacencyList tag_class_children_, tag_class_tags_;

  // Creation-date message index: sorted base + zone-mapped update tail.
  MessageDateIndex message_index_;

  // Tombstone state (deep deletes). Vertex bitmaps are sized with the
  // tables; edge tombstones are explicit key sets; the per-message delta
  // maps turn raw adjacency degrees into live counts without rewriting CSR
  // spans. dead_likes_per_msg_ / dead_replies_per_msg_ only track deltas
  // for *live* target messages — a dead target's counters are frozen at
  // death and never read.
  TombstoneBitmap person_dead_, forum_dead_, post_dead_, comment_dead_;
  std::unordered_set<uint64_t> deleted_likes_;        // EdgeKey(person, msg)
  std::unordered_set<uint64_t> deleted_memberships_;  // EdgeKey(person, forum)
  std::unordered_set<uint64_t> deleted_knows_;        // UnorderedEdgeKey
  std::unordered_map<uint32_t, uint32_t> dead_likes_per_msg_;
  std::unordered_map<uint32_t, uint32_t> dead_replies_per_msg_;
  uint32_t tombstone_epoch_ = 0;
  uint32_t compaction_epoch_ = 0;
};

}  // namespace snb::storage

#endif  // SNB_STORAGE_GRAPH_H_

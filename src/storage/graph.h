// The in-memory social-network graph store.
//
// Entities live in columnar-ish tables (the raw record vectors plus flat
// "hot" columns for scan-heavy attributes); every relation is materialized
// as forward and, where queries need it, reverse appendable-CSR adjacency
// (see adjacency.h). External spec ids map to dense uint32 indices at build
// time; all traversal is index-based.
//
// Posts and comments are distinct tables; a *message reference* encodes
// either in one uint32: bit 31 clear → post index, bit 31 set → comment
// index. The encoding is stable under appends (updates can add posts and
// comments without invalidating existing references) and gives the unified
// "Message" view the BI workload queries over.
//
// The store is single-writer / multi-reader: Add* mutators (the Interactive
// update operations IU 1–8) append to overflow regions without invalidating
// base CSR spans.

#ifndef SNB_STORAGE_GRAPH_H_
#define SNB_STORAGE_GRAPH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schema.h"
#include "storage/adjacency.h"
#include "storage/columnar/dictionary.h"
#include "storage/columnar/memory.h"
#include "storage/columnar/packed_column.h"
#include "storage/message_index.h"

namespace snb::storage {

constexpr uint32_t kNoIdx = UINT32_MAX;

class Graph {
 public:
  /// Builds all indexes from a raw network (consumed).
  explicit Graph(core::SocialNetwork net);

  // Non-copyable and non-movable: the message index carries a mutex, and
  // queries hold references into the tables.
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // ---- Entity tables ------------------------------------------------------

  size_t NumPersons() const { return persons_.size(); }
  size_t NumForums() const { return forums_.size(); }
  size_t NumPosts() const { return posts_.size(); }
  size_t NumComments() const { return comments_.size(); }
  size_t NumMessages() const { return posts_.size() + comments_.size(); }
  size_t NumTags() const { return tags_.size(); }
  size_t NumTagClasses() const { return tag_classes_.size(); }
  size_t NumPlaces() const { return places_.size(); }
  size_t NumOrganisations() const { return organisations_.size(); }

  const core::Person& PersonAt(uint32_t i) const { return persons_[i]; }
  const core::Forum& ForumAt(uint32_t i) const { return forums_[i]; }
  const core::Post& PostAt(uint32_t i) const { return posts_[i]; }
  const core::Comment& CommentAt(uint32_t i) const { return comments_[i]; }
  const core::Tag& TagAt(uint32_t i) const { return tags_[i]; }
  const core::TagClass& TagClassAt(uint32_t i) const {
    return tag_classes_[i];
  }
  const core::Place& PlaceAt(uint32_t i) const { return places_[i]; }
  const core::Organisation& OrganisationAt(uint32_t i) const {
    return organisations_[i];
  }

  // ---- Id ↔ index ----------------------------------------------------------

  uint32_t PersonIdx(core::Id id) const { return Lookup(person_idx_, id); }
  uint32_t ForumIdx(core::Id id) const { return Lookup(forum_idx_, id); }
  uint32_t PostIdx(core::Id id) const { return Lookup(post_idx_, id); }
  uint32_t CommentIdx(core::Id id) const { return Lookup(comment_idx_, id); }
  uint32_t TagIdx(core::Id id) const { return Lookup(tag_idx_, id); }
  uint32_t TagClassIdx(core::Id id) const {
    return Lookup(tag_class_idx_, id);
  }
  uint32_t PlaceIdx(core::Id id) const { return Lookup(place_idx_, id); }
  uint32_t OrganisationIdx(core::Id id) const {
    return Lookup(organisation_idx_, id);
  }

  /// Name lookups for query parameters given by name (countries, tags,
  /// tag classes). Return kNoIdx when absent.
  uint32_t PlaceByName(const std::string& name) const;
  uint32_t TagByName(const std::string& name) const;
  uint32_t TagClassByName(const std::string& name) const;

  // ---- Message references --------------------------------------------------

  static constexpr uint32_t kCommentBit = 0x80000000u;

  static bool IsPost(uint32_t msg) { return (msg & kCommentBit) == 0; }
  static uint32_t AsPost(uint32_t msg) { return msg; }
  static uint32_t AsComment(uint32_t msg) { return msg & ~kCommentBit; }
  static uint32_t MessageOfPost(uint32_t post) { return post; }
  static uint32_t MessageOfComment(uint32_t comment) {
    return comment | kCommentBit;
  }

  /// Visits every message reference: first all posts, then all comments.
  template <typename F>
  void ForEachMessage(F&& f) const {
    for (uint32_t i = 0; i < posts_.size(); ++i) f(MessageOfPost(i));
    for (uint32_t i = 0; i < comments_.size(); ++i) f(MessageOfComment(i));
  }

  /// Visits exactly the messages with creationDate in [start, end), pruned
  /// through the creation-date index: the sorted base contributes a
  /// binary-searched slice, the unsorted update tail is zone-map filtered
  /// (CP-2.2/2.3). Visit order is date order over the base followed by
  /// arrival order over the tail — callers must be order-insensitive.
  template <typename F>
  void ForEachMessageInRange(core::DateTime start, core::DateTime end,
                             F&& f) const {
    message_index_.ForEachBaseInRange(start, end, f);
    message_index_.ForEachTailInRange(start, end, f);
  }

  /// Bound-pushdown range scan (CP-1.3): before a zone-mapped block is
  /// decoded, `skip` is offered its like-count zone maximum — a true return
  /// prunes the whole block unseen. `skip(max)` must be monotone: true for
  /// a block max implies every member message (whose like count is ≤ max)
  /// would also be rejected, which is what keeps the pushdown engines
  /// bit-identical to the sort-everything oracle.
  template <typename SkipFn, typename F>
  void ForEachMessageInRangeBounded(core::DateTime start, core::DateTime end,
                                    SkipFn&& skip, F&& f) const {
    message_index_.ForEachBaseInRangeBounded(start, end, skip, f);
    message_index_.ForEachTailInRangeBounded(start, end, skip, f);
  }

  /// Random-access view over exactly the messages with creationDate in
  /// [start, end): the sorted-base slice followed by the matching tail
  /// entries (materialized — the tail holds only post-load appends and stays
  /// small). Indexable concurrently from many threads; the morsel engine
  /// partitions it.
  class MessageRangeView {
   public:
    size_t size() const { return base_count_ + tail_.size(); }
    uint32_t operator[](size_t i) const {
      return i < base_count_ ? index_->BaseAt(base_begin_ + i)
                             : tail_[i - base_count_];
    }

    /// View positions [0, base_count()) come from the sorted base and carry
    /// aligned like-count zones; the materialized tail follows.
    size_t base_count() const { return base_count_; }

    /// Upper bound on the like count of every message in the zone holding
    /// view position `i`. Tail positions return INT64_MAX (the tail was
    /// already zone-filtered at view construction and has no aligned zones
    /// in view coordinates), so bound skips never fire there.
    int64_t BoundZoneMax(size_t i) const {
      if (i >= base_count_) return std::numeric_limits<int64_t>::max();
      return static_cast<int64_t>(index_->BaseBlockMaxLikes(
          (base_begin_ + i) / columnar::ColumnBlock::kMaxValues));
    }

    /// One past the last view position sharing position `i`'s zone — the
    /// stride for block-at-a-time bound pruning inside a morsel.
    size_t ZoneEnd(size_t i) const {
      if (i >= base_count_) return size();
      const size_t block = columnar::ColumnBlock::kMaxValues;
      const size_t abs_end = ((base_begin_ + i) / block + 1) * block;
      return std::min(base_count_, abs_end - base_begin_);
    }

   private:
    friend class Graph;
    const MessageDateIndex* index_ = nullptr;
    size_t base_begin_ = 0;
    size_t base_count_ = 0;
    std::vector<uint32_t> tail_;
  };

  MessageRangeView MessageRange(core::DateTime start,
                                core::DateTime end) const {
    MessageRangeView view;
    view.index_ = &message_index_;
    auto [lo, hi] = message_index_.BaseRange(start, end);
    view.base_begin_ = lo;
    view.base_count_ = hi - lo;
    message_index_.ForEachTailInRange(
        start, end, [&view](uint32_t msg) { view.tail_.push_back(msg); });
    return view;
  }

  /// The underlying creation-date index (zone-map introspection for tests
  /// and the bench report).
  const MessageDateIndex& MessageIndex() const { return message_index_; }

  core::DateTime MessageCreationDate(uint32_t msg) const {
    return IsPost(msg) ? post_creation_[msg]
                       : comment_creation_[AsComment(msg)];
  }
  uint32_t MessageCreator(uint32_t msg) const {
    return IsPost(msg) ? post_creator_[msg] : comment_creator_[AsComment(msg)];
  }
  /// Country *place index* of the message.
  uint32_t MessageCountry(uint32_t msg) const {
    return IsPost(msg) ? post_country_[msg] : comment_country_[AsComment(msg)];
  }
  int32_t MessageLength(uint32_t msg) const {
    return IsPost(msg) ? posts_[msg].length
                       : comments_[AsComment(msg)].length;
  }
  /// Message id in the external id space of its entity type.
  core::Id MessageId(uint32_t msg) const {
    return IsPost(msg) ? posts_[msg].id : comments_[AsComment(msg)].id;
  }
  /// content for comments and text posts, imageFile for image posts.
  const std::string& MessageContent(uint32_t msg) const {
    if (IsPost(msg)) {
      const core::Post& p = posts_[msg];
      return p.content.empty() ? p.image_file : p.content;
    }
    return comments_[AsComment(msg)].content;
  }
  bool MessageHasContent(uint32_t msg) const {
    return IsPost(msg) ? !posts_[msg].content.empty() : true;
  }

  /// Visits the tag indices of a message.
  template <typename F>
  void ForEachMessageTag(uint32_t msg, F&& f) const {
    if (IsPost(msg)) {
      post_tags_.ForEach(msg, f);
    } else {
      comment_tags_.ForEach(AsComment(msg), f);
    }
  }

  // ---- Hot columns ----------------------------------------------------------

  // ---- Dictionary-encoded columns -------------------------------------------
  // One dictionary shared across every low-cardinality string family
  // (genders, browsers, place names, tag names, content-length classes):
  // stable dense uint32 codes assigned at load, O(1) decode, appended to —
  // never reassigned — by the IU update path. The validator's
  // dictionary-code-in-range invariant checks every code column below
  // against Dict().size().

  const columnar::Dictionary& Dict() const { return dict_; }

  uint32_t PersonGenderCode(uint32_t p) const {
    return person_gender_code_[p];
  }
  uint32_t PersonBrowserCode(uint32_t p) const {
    return person_browser_code_[p];
  }
  uint32_t TagNameCode(uint32_t t) const { return tag_name_code_[t]; }
  uint32_t PlaceNameCode(uint32_t pl) const { return place_name_code_[pl]; }
  uint32_t MessageBrowserCode(uint32_t msg) const {
    return IsPost(msg) ? post_browser_code_[msg]
                       : comment_browser_code_[AsComment(msg)];
  }
  uint32_t MessageLengthClassCode(uint32_t msg) const {
    return IsPost(msg) ? post_length_class_code_[msg]
                       : comment_length_class_code_[AsComment(msg)];
  }

  /// Content-length class of a message (BI queries group by the spec's
  /// short/medium/long split rather than raw lengths).
  static const char* LengthClassName(int32_t length) {
    if (length <= 0) return "len:empty";
    if (length < 40) return "len:short";
    if (length < 160) return "len:medium";
    return "len:long";
  }

  /// Per-family heap accounting for the columnar store: bytes held vs the
  /// seed layout's bytes for the same content, plus bytes/edge and
  /// bytes/message (see storage/columnar/memory.h).
  columnar::MemoryBreakdown Memory() const;

  core::DateTime PersonCreation(uint32_t p) const {
    return person_creation_[p];
  }
  /// City place index of the person.
  uint32_t PersonCity(uint32_t p) const { return person_city_[p]; }
  /// Country place index of the person (city's parent, precomputed).
  uint32_t PersonCountry(uint32_t p) const { return person_country_[p]; }
  /// Gender hot column: the BI group-bys only ever need the binary split,
  /// so scans avoid the per-row string compare against Person::gender.
  bool PersonIsFemale(uint32_t p) const { return person_is_female_[p] != 0; }

  /// Per-person creation-date zone over the person's own messages: true
  /// when `p` created at least one message in [start, end). Sentinel zones
  /// (min = kMaxMessageDate, max = kMinMessageDate) make a person with no
  /// messages overlap nothing, so scans skip them without touching their
  /// adjacency (CP-2.3 pruning at person granularity).
  bool PersonHasMessagesIn(uint32_t p, core::DateTime start,
                           core::DateTime end) const {
    return person_msg_date_min_[p] < end && person_msg_date_max_[p] >= start;
  }

  core::DateTime PostCreation(uint32_t i) const { return post_creation_[i]; }
  uint32_t PostCreator(uint32_t i) const { return post_creator_[i]; }
  uint32_t PostForum(uint32_t i) const { return post_forum_[i]; }
  uint32_t PostCountry(uint32_t i) const { return post_country_[i]; }
  /// Dictionary code of the post's language (kNoCode when the post has no
  /// language, e.g. image posts).
  uint32_t PostLanguageCode(uint32_t i) const {
    return post_language_code_[i];
  }

  core::DateTime CommentCreation(uint32_t i) const {
    return comment_creation_[i];
  }
  uint32_t CommentCreator(uint32_t i) const { return comment_creator_[i]; }
  uint32_t CommentCountry(uint32_t i) const { return comment_country_[i]; }
  /// Direct reply target as a message reference.
  uint32_t CommentReplyOf(uint32_t i) const { return comment_reply_of_[i]; }
  /// Post at the root of the comment's thread (precomputed).
  uint32_t CommentRootPost(uint32_t i) const { return comment_root_post_[i]; }
  /// Forum containing the comment's thread — the materialized 2-hop
  /// endpoint (comment → root post → forum), bit-packed so the hot loop is
  /// one column probe instead of two dependent loads (TuGraph idiom).
  uint32_t CommentForum(uint32_t i) const { return comment_forum_.At(i); }
  /// Language code of the comment's thread root post (2-hop endpoint).
  uint32_t CommentRootLanguageCode(uint32_t i) const {
    return comment_root_language_code_[i];
  }

  /// Forum of any message reference: the post's forum, or the containing
  /// thread's forum for a comment — one probe either way.
  uint32_t MessageForum(uint32_t msg) const {
    return IsPost(msg) ? post_forum_[msg] : comment_forum_.At(AsComment(msg));
  }

  /// Parent place index (city→country, country→continent); kNoIdx for
  /// continents.
  uint32_t PlacePartOf(uint32_t place) const { return place_part_of_[place]; }
  /// Parent tag-class index; kNoIdx at the root.
  uint32_t TagClassParent(uint32_t tc) const { return tag_class_parent_[tc]; }
  /// Tag-class index of a tag.
  uint32_t TagClassOfTag(uint32_t t) const { return tag_class_of_tag_[t]; }

  // ---- Adjacency ------------------------------------------------------------

  const AdjacencyList& Knows() const { return knows_; }                // dated
  const AdjacencyList& PersonPosts() const { return person_posts_; }
  const AdjacencyList& PersonComments() const { return person_comments_; }
  /// person → message references, dated with the like creation date.
  const AdjacencyList& PersonLikes() const { return person_likes_; }
  /// post/comment → liker person, dated.
  const AdjacencyList& PostLikers() const { return post_likers_; }
  const AdjacencyList& CommentLikers() const { return comment_likers_; }
  const AdjacencyList& ForumMembers() const { return forum_members_; }  // dated
  /// person → forums they are a member of, dated with joinDate.
  const AdjacencyList& PersonForums() const { return person_forums_; }
  const AdjacencyList& ForumPosts() const { return forum_posts_; }
  /// person → forums they moderate.
  const AdjacencyList& PersonModerates() const { return person_moderates_; }
  /// post → direct reply comments.
  const AdjacencyList& PostReplies() const { return post_replies_; }
  /// comment → direct reply comments.
  const AdjacencyList& CommentReplies() const { return comment_replies_; }
  const AdjacencyList& PostTags() const { return post_tags_; }
  const AdjacencyList& CommentTags() const { return comment_tags_; }
  const AdjacencyList& ForumTags() const { return forum_tags_; }
  const AdjacencyList& PersonInterests() const { return person_interests_; }
  const AdjacencyList& TagPosts() const { return tag_posts_; }
  const AdjacencyList& TagComments() const { return tag_comments_; }
  const AdjacencyList& TagForums() const { return tag_forums_; }
  const AdjacencyList& TagPersons() const { return tag_persons_; }
  /// country place index → persons located there.
  const AdjacencyList& CountryPersons() const { return country_persons_; }
  /// tag-class index → child class indices.
  const AdjacencyList& TagClassChildren() const { return tag_class_children_; }
  /// tag-class index → tags of that class.
  const AdjacencyList& TagClassTags() const { return tag_class_tags_; }

  // ---- Mutators (Interactive updates IU 1–8) --------------------------------

  uint32_t AddPerson(const core::Person& person);              // IU 1
  void AddLikePost(core::Id person, core::Id post,
                   core::DateTime date);                       // IU 2
  void AddLikeComment(core::Id person, core::Id comment,
                      core::DateTime date);                    // IU 3
  uint32_t AddForum(const core::Forum& forum);                 // IU 4
  void AddMembership(core::Id person, core::Id forum,
                     core::DateTime join_date);                // IU 5
  uint32_t AddPost(const core::Post& post);                    // IU 6
  uint32_t AddComment(const core::Comment& comment);           // IU 7
  void AddKnows(core::Id person1, core::Id person2,
                core::DateTime date);                          // IU 8

 private:
  friend struct TestAccess;  // corruption seeding in tests (test_access.h)

  static uint32_t Lookup(const std::unordered_map<core::Id, uint32_t>& map,
                         core::Id id) {
    auto it = map.find(id);
    return it == map.end() ? kNoIdx : it->second;
  }

  uint32_t CountryOfPlace(uint32_t place) const;

  // Raw entity tables.
  std::vector<core::Person> persons_;
  std::vector<core::Forum> forums_;
  std::vector<core::Post> posts_;
  std::vector<core::Comment> comments_;
  std::vector<core::Tag> tags_;
  std::vector<core::TagClass> tag_classes_;
  std::vector<core::Place> places_;
  std::vector<core::Organisation> organisations_;

  // Id maps.
  std::unordered_map<core::Id, uint32_t> person_idx_, forum_idx_, post_idx_,
      comment_idx_, tag_idx_, tag_class_idx_, place_idx_, organisation_idx_;
  std::unordered_map<std::string, uint32_t> place_by_name_, tag_by_name_,
      tag_class_by_name_;

  // Hot columns.
  std::vector<core::DateTime> person_creation_;
  std::vector<uint32_t> person_city_, person_country_;
  std::vector<uint8_t> person_is_female_;
  std::vector<core::DateTime> post_creation_;
  std::vector<uint32_t> post_creator_, post_forum_, post_country_;
  std::vector<core::DateTime> comment_creation_;
  std::vector<uint32_t> comment_creator_, comment_country_;
  std::vector<uint32_t> comment_reply_of_;   // message reference
  std::vector<uint32_t> comment_root_post_;  // post index
  std::vector<uint32_t> place_part_of_;
  std::vector<uint32_t> tag_class_parent_, tag_class_of_tag_;

  // Shared dictionary + code columns (low-cardinality string families).
  columnar::Dictionary dict_;
  std::vector<uint32_t> person_gender_code_, person_browser_code_;
  std::vector<uint32_t> post_browser_code_, comment_browser_code_;
  std::vector<uint32_t> post_length_class_code_, comment_length_class_code_;
  std::vector<uint32_t> tag_name_code_, place_name_code_;
  std::vector<uint32_t> post_language_code_, comment_root_language_code_;

  // Materialized hot endpoints + per-person message-date zones.
  columnar::AppendableU32Column comment_forum_;  // comment → thread's forum
  std::vector<core::DateTime> person_msg_date_min_, person_msg_date_max_;

  // Adjacency.
  AdjacencyList knows_;
  AdjacencyList person_posts_, person_comments_, person_likes_;
  AdjacencyList post_likers_, comment_likers_;
  AdjacencyList forum_members_, person_forums_, forum_posts_,
      person_moderates_;
  AdjacencyList post_replies_, comment_replies_;
  AdjacencyList post_tags_, comment_tags_, forum_tags_, person_interests_;
  AdjacencyList tag_posts_, tag_comments_, tag_forums_, tag_persons_;
  AdjacencyList country_persons_;
  AdjacencyList tag_class_children_, tag_class_tags_;

  // Creation-date message index: sorted base + zone-mapped update tail.
  MessageDateIndex message_index_;
};

}  // namespace snb::storage

#endif  // SNB_STORAGE_GRAPH_H_

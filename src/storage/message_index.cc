#include "storage/message_index.h"

#include <numeric>

namespace snb::storage {

namespace {

// Mirrors Graph's message-reference encoding (bit 31 set → comment). Kept
// local to avoid a header cycle with graph.h.
constexpr uint32_t kCommentBit = 0x80000000u;

}  // namespace

void MessageDateIndex::Build(const std::vector<core::DateTime>& post_dates,
                             const std::vector<core::DateTime>& comment_dates) {
  const size_t n = post_dates.size() + comment_dates.size();
  base_refs_.resize(n);
  std::iota(base_refs_.begin(), base_refs_.begin() + post_dates.size(), 0u);
  for (size_t i = 0; i < comment_dates.size(); ++i) {
    base_refs_[post_dates.size() + i] =
        static_cast<uint32_t>(i) | kCommentBit;
  }
  auto date_of = [&](uint32_t ref) {
    return (ref & kCommentBit) == 0 ? post_dates[ref]
                                    : comment_dates[ref & ~kCommentBit];
  };
  std::sort(base_refs_.begin(), base_refs_.end(),
            [&](uint32_t a, uint32_t b) {
              core::DateTime da = date_of(a), db = date_of(b);
              if (da != db) return da < db;
              return a < b;
            });
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = DateKey(date_of(base_refs_[i]));
  base_dates_ = columnar::ZonedColumn::BuildDelta(keys);
}

void MessageDateIndex::Append(uint32_t msg, core::DateTime date) {
  util::MutexLock lock(append_mu_);
  if (tail_refs_.size() % kTailBlock == 0) tail_zones_.emplace_back();
  tail_refs_.push_back(msg);
  tail_dates_.push_back(date);
  Zone& z = tail_zones_.back();
  z.min = std::min(z.min, date);
  z.max = std::max(z.max, date);
}

void MessageDateIndex::NoteLike(uint32_t msg, core::DateTime date,
                                uint32_t likes) {
  util::MutexLock lock(append_mu_);
  // Base lookup: entries with one creation date form a contiguous run sorted
  // by ref (Build's tie-break), so the position is two binary searches.
  auto [lo, hi] = BaseRange(date, date + 1);
  auto first = base_refs_.begin() + static_cast<ptrdiff_t>(lo);
  auto last = base_refs_.begin() + static_cast<ptrdiff_t>(hi);
  auto it = std::lower_bound(first, last, msg);
  if (it != last && *it == msg) {
    const size_t block = static_cast<size_t>(it - base_refs_.begin()) /
                         columnar::ColumnBlock::kMaxValues;
    base_like_max_[block] = std::max(base_like_max_[block], likes);
    return;
  }
  // Not bulk-loaded → it lives in the (small) update tail.
  for (size_t i = 0; i < tail_refs_.size(); ++i) {
    if (tail_refs_[i] == msg) {
      Zone& z = tail_zones_[i / kTailBlock];
      z.max_likes = std::max(z.max_likes, likes);
      return;
    }
  }
}

}  // namespace snb::storage

#include "storage/consistency.h"

#include <unordered_set>

namespace snb::storage {

namespace {

void Check(bool ok, std::vector<std::string>& issues, std::string message) {
  if (!ok) issues.push_back(std::move(message));
}

}  // namespace

std::vector<std::string> CheckGraphConsistency(const Graph& graph) {
  std::vector<std::string> issues;

  // ---- Id maps round-trip ---------------------------------------------------
  for (uint32_t i = 0; i < graph.NumPersons(); ++i) {
    if (graph.PersonIdx(graph.PersonAt(i).id) != i) {
      issues.push_back("person id map broken at index " + std::to_string(i));
      break;
    }
  }
  for (uint32_t i = 0; i < graph.NumPosts(); ++i) {
    if (graph.PostIdx(graph.PostAt(i).id) != i) {
      issues.push_back("post id map broken at index " + std::to_string(i));
      break;
    }
  }
  for (uint32_t i = 0; i < graph.NumComments(); ++i) {
    if (graph.CommentIdx(graph.CommentAt(i).id) != i) {
      issues.push_back("comment id map broken at index " + std::to_string(i));
      break;
    }
  }

  // ---- Knows symmetry --------------------------------------------------------
  {
    size_t asym = 0;
    for (uint32_t p = 0; p < graph.NumPersons() && asym == 0; ++p) {
      graph.Knows().ForEach(p, [&](uint32_t q) {
        if (!graph.Knows().Contains(q, p)) ++asym;
      });
    }
    Check(asym == 0, issues, "knows relation is not symmetric");
  }

  // ---- Forward/reverse edge-count agreement -----------------------------------
  {
    size_t person_posts = 0;
    for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
      person_posts += graph.PersonPosts().Degree(p);
    }
    Check(person_posts == graph.NumPosts(), issues,
          "person→posts degree sum != post count");

    size_t person_comments = 0;
    for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
      person_comments += graph.PersonComments().Degree(p);
    }
    Check(person_comments == graph.NumComments(), issues,
          "person→comments degree sum != comment count");

    size_t likes_fwd = 0, likes_rev = 0;
    for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
      likes_fwd += graph.PersonLikes().Degree(p);
    }
    for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
      likes_rev += graph.PostLikers().Degree(post);
    }
    for (uint32_t c = 0; c < graph.NumComments(); ++c) {
      likes_rev += graph.CommentLikers().Degree(c);
    }
    Check(likes_fwd == likes_rev, issues,
          "person→likes vs message→likers edge counts disagree");

    size_t members = 0, member_of = 0;
    for (uint32_t f = 0; f < graph.NumForums(); ++f) {
      members += graph.ForumMembers().Degree(f);
    }
    for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
      member_of += graph.PersonForums().Degree(p);
    }
    Check(members == member_of, issues,
          "forum→members vs person→forums edge counts disagree");

    size_t tag_fwd = 0, tag_rev = 0;
    for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
      tag_fwd += graph.PostTags().Degree(post);
    }
    for (uint32_t c = 0; c < graph.NumComments(); ++c) {
      tag_fwd += graph.CommentTags().Degree(c);
    }
    for (uint32_t t = 0; t < graph.NumTags(); ++t) {
      tag_rev += graph.TagPosts().Degree(t) + graph.TagComments().Degree(t);
    }
    Check(tag_fwd == tag_rev, issues,
          "message→tags vs tag→messages edge counts disagree");
  }

  // ---- Column correctness ------------------------------------------------------
  {
    size_t bad_creator = 0;
    for (uint32_t p = 0; p < graph.NumPersons() && bad_creator == 0; ++p) {
      graph.PersonPosts().ForEach(p, [&](uint32_t post) {
        if (graph.PostCreator(post) != p) ++bad_creator;
      });
    }
    Check(bad_creator == 0, issues,
          "post_creator column disagrees with person→posts adjacency");

    size_t bad_root = 0;
    for (uint32_t c = 0; c < graph.NumComments(); ++c) {
      uint32_t msg = graph.CommentReplyOf(c);
      while (!Graph::IsPost(msg)) {
        msg = graph.CommentReplyOf(Graph::AsComment(msg));
      }
      if (graph.CommentRootPost(c) != Graph::AsPost(msg)) ++bad_root;
    }
    Check(bad_root == 0, issues,
          std::to_string(bad_root) + " precomputed comment roots wrong");

    size_t bad_country = 0;
    for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
      uint32_t city = graph.PersonCity(p);
      if (graph.PlaceAt(city).type != core::PlaceType::kCity ||
          graph.PlacePartOf(city) != graph.PersonCountry(p)) {
        ++bad_country;
      }
    }
    Check(bad_country == 0, issues,
          "person country column disagrees with the place hierarchy");
  }

  // ---- CountryPersons partition -------------------------------------------------
  {
    size_t assigned = 0;
    bool misplaced = false;
    for (uint32_t place = 0; place < graph.NumPlaces(); ++place) {
      graph.CountryPersons().ForEach(place, [&](uint32_t p) {
        ++assigned;
        if (graph.PersonCountry(p) != place) misplaced = true;
      });
    }
    Check(assigned == graph.NumPersons() && !misplaced, issues,
          "country→persons index does not partition the persons");
  }

  return issues;
}

}  // namespace snb::storage

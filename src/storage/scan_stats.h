// Ambient per-thread scan instrumentation for zone-mapped index scans.
//
// The pushdown work (CP-1.3 bound pruning over CP-2.2/2.3 zone maps) is only
// credible with counters proving the pruning fires: bench/bench_kernels
// reports rows decoded and blocks skipped per query, and check.sh's smoke
// stage asserts skips are non-zero. Rather than widening every scan
// signature, the sink is ambient — installed per thread with a
// ScopedScanStats guard, exactly like bi::ScopedCancelToken. A count with no
// installed sink is a single thread-local load and a branch, so production
// query paths pay essentially nothing.
//
// Counter semantics:
//   rows_decoded         index entries delivered to a query callback
//   blocks_skipped_date  prune units skipped by creation-date zones (base
//                        1024-blocks, tail 256-blocks, per-person date zones)
//   blocks_skipped_bound prune units skipped by a top-k bound or threshold
//                        against a block's like-count zone max
//   rows_skipped_bound   individual candidates dropped by a bound compare
//                        before any vertex/string dereference
//
// Counters are relaxed atomics so morsel slots on different threads can
// share one sink: the totals are exact (every increment lands), only the
// interleaving is unordered.

#ifndef SNB_STORAGE_SCAN_STATS_H_
#define SNB_STORAGE_SCAN_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace snb::storage {

struct ScanStats {
  std::atomic<uint64_t> rows_decoded{0};
  std::atomic<uint64_t> blocks_skipped_date{0};
  std::atomic<uint64_t> blocks_skipped_bound{0};
  std::atomic<uint64_t> rows_skipped_bound{0};

  void Reset() noexcept {
    rows_decoded.store(0, std::memory_order_relaxed);
    blocks_skipped_date.store(0, std::memory_order_relaxed);
    blocks_skipped_bound.store(0, std::memory_order_relaxed);
    rows_skipped_bound.store(0, std::memory_order_relaxed);
  }
};

namespace internal {
ScanStats*& CurrentScanStatsSlot() noexcept;
}  // namespace internal

/// The sink installed for this thread, or nullptr.
inline ScanStats* CurrentScanStats() noexcept {
  return internal::CurrentScanStatsSlot();
}

inline void CountRowsDecoded(uint64_t n) noexcept {
  if (ScanStats* s = internal::CurrentScanStatsSlot()) {
    s->rows_decoded.fetch_add(n, std::memory_order_relaxed);
  }
}

inline void CountBlocksSkippedDate(uint64_t n) noexcept {
  if (ScanStats* s = internal::CurrentScanStatsSlot()) {
    s->blocks_skipped_date.fetch_add(n, std::memory_order_relaxed);
  }
}

inline void CountBlocksSkippedBound(uint64_t n) noexcept {
  if (ScanStats* s = internal::CurrentScanStatsSlot()) {
    s->blocks_skipped_bound.fetch_add(n, std::memory_order_relaxed);
  }
}

inline void CountRowsSkippedBound(uint64_t n) noexcept {
  if (ScanStats* s = internal::CurrentScanStatsSlot()) {
    s->rows_skipped_bound.fetch_add(n, std::memory_order_relaxed);
  }
}

/// RAII installer: while alive, `stats` is the ambient sink for scans on
/// this thread. Nestable (restores the previous sink). Morsel wrappers
/// re-install the caller's sink on helper threads, so one ScanStats
/// aggregates a whole parallel query.
class ScopedScanStats {
 public:
  explicit ScopedScanStats(ScanStats* stats) noexcept
      : prev_(internal::CurrentScanStatsSlot()) {
    internal::CurrentScanStatsSlot() = stats;
  }
  ~ScopedScanStats() { internal::CurrentScanStatsSlot() = prev_; }

  ScopedScanStats(const ScopedScanStats&) = delete;
  ScopedScanStats& operator=(const ScopedScanStats&) = delete;

 private:
  ScanStats* prev_;
};

}  // namespace snb::storage

#endif  // SNB_STORAGE_SCAN_STATS_H_

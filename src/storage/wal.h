// Write-ahead log for batched refresh (the BI workload's daily insert
// microbatches, PAPER.md §5, and the LDBC auditing rule that a system must
// survive a crash mid-refresh and recover to the last committed batch).
//
// The WAL is a redo log: a batch's events and its commit marker are durable
// *before* the batch is applied to the in-memory store, so recovery =
// checkpoint + replay of every committed batch. File layout:
//
//   ┌──────────┐
//   │ SNBWAL01 │  8-byte magic
//   ├──────────┴──────────────────────────────────────────────┐
//   │ record: u32 payload_len │ u32 crc32c(payload) │ payload │  repeated
//   └─────────────────────────────────────────────────────────┘
//
// payload[0] is the record type; the rest depends on it:
//   kBatchBegin  (1)  i32 LE day    — first record of a daily batch
//   kEvent       (2)  update-stream text line (datagen::FormatUpdateEventLine)
//   kBatchCommit (3)  i32 LE day    — the batch's durability point
//   kDeleteBatch (4)  i32 LE day, u32 LE count — declares the batch carries
//                     `count` delete (DEL 1–8) events; written right after
//                     BatchBegin so recovery knows, before replaying a
//                     single event, that the batch will run cascades. Logs
//                     written before this record type existed parse
//                     unchanged (insert-only batches never carry it).
//
// Torn-tail truncation rule (applied by Scan/Recover): the valid prefix of
// a WAL ends after the last complete, CRC-clean BatchCommit record. A short
// header, short payload, CRC mismatch, unknown record type, or a batch
// whose commit marker never made it to disk all invalidate the tail from
// the enclosing batch's BatchBegin onward — partially logged batches were
// never promised to anyone.
//
// Only this module touches the WAL file (scripts/lint.sh enforces it);
// recovery.cc and the refresh driver go through these functions.

#ifndef SNB_STORAGE_WAL_H_
#define SNB_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/date_time.h"
#include "datagen/datagen.h"
#include "util/status.h"

namespace snb::storage {

/// When the log forces data to stable storage.
enum class WalSyncPolicy : uint8_t {
  kNone = 0,      // never fsync (tests, or callers who checkpoint often)
  kOnCommit = 1,  // fsync once per BatchCommit — the durability contract
  kEveryRecord = 2,  // fsync after every record (paranoid / slow)
};

struct WalOptions {
  WalSyncPolicy sync = WalSyncPolicy::kOnCommit;
};

/// Path of the WAL inside a store directory (see recovery.h for the store
/// layout). Centralised so the lint gate can pin every use to this module.
std::string WalPath(const std::string& store_dir);

/// Append-only writer. One writer per file; not thread-safe (the refresh
/// driver is the single writer by construction).
class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if absent) the log at `path` for appending. A fresh
  /// file gets the magic; an existing file must start with it.
  SNB_NODISCARD util::Status Open(const std::string& path, WalOptions options = {});

  /// Starts a new batch covering `day`. Batches must not nest.
  SNB_NODISCARD util::Status BatchBegin(core::Date day);

  /// Declares that the open batch carries `delete_count` DEL events. Must
  /// be called (if at all) between BatchBegin and the first Append, so the
  /// declaration precedes every cascade in the log.
  SNB_NODISCARD util::Status NoteDeleteBatch(core::Date day,
                                             uint32_t delete_count);

  /// Appends one event of the open batch.
  SNB_NODISCARD util::Status Append(const datagen::UpdateEvent& event);

  /// Commits the open batch: writes the marker and (per policy) fsyncs.
  /// After this returns OK the batch is durable and recovery will replay it.
  SNB_NODISCARD util::Status BatchCommit(core::Date day);

  /// Abandons the open batch by truncating the file back to where the
  /// batch began — the retry path after a mid-batch failure, keeping the
  /// on-disk prefix equal to "every byte belongs to a committed batch or
  /// to nothing".
  SNB_NODISCARD util::Status AbortBatch();

  SNB_NODISCARD util::Status Sync();
  SNB_NODISCARD util::Status Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t bytes_written() const { return offset_; }

 private:
  util::Status WriteRecord(uint8_t type, const void* payload, size_t len);

  int fd_ = -1;
  std::string path_;
  WalOptions options_;
  uint64_t offset_ = 0;        // current end-of-file offset
  uint64_t batch_start_ = 0;   // offset of the open batch's BatchBegin
  bool in_batch_ = false;
  /// Bytes past batch_start_ exist that no commit covers (set on
  /// BatchBegin entry, cleared by a successful commit or an abort) —
  /// AbortBatch's truncation predicate, which must also cover a torn
  /// BatchBegin record itself.
  bool dirty_ = false;
};

/// One batch as read back from the log.
struct WalBatch {
  core::Date day = 0;
  std::vector<datagen::UpdateEvent> events;
  /// Declared DEL-event count from the kDeleteBatch marker (0 when the
  /// batch is insert-only / the marker is absent).
  uint32_t delete_count = 0;
};

/// Result of scanning a WAL file.
struct WalScan {
  /// Fully committed batches, in log order.
  std::vector<WalBatch> batches;
  /// End offset of the valid prefix (byte after the last committed batch).
  uint64_t valid_bytes = 0;
  /// Size of the file as scanned; total_bytes - valid_bytes is the tail.
  uint64_t total_bytes = 0;
  /// True when bytes past valid_bytes exist (torn tail or uncommitted
  /// batch); `tail_reason` says what was found there.
  bool torn_tail = false;
  std::string tail_reason;
};

/// Reads committed batches up to the first invalid record (bad CRC, short
/// record, unknown type, unparseable event, batch protocol violation) —
/// framing is lost there, so that point becomes the tail. A torn tail is
/// the normal after-crash state and is reported via `torn_tail`, not as an
/// error; only an unreadable file or bad magic returns a failure Status.
SNB_NODISCARD util::StatusOr<WalScan> ScanWal(const std::string& path);

/// Truncates the log to `valid_bytes` (from a prior ScanWal). Recovery
/// calls this so a once-recovered log scans clean forever after.
SNB_NODISCARD util::Status TruncateWal(const std::string& path, uint64_t valid_bytes);

}  // namespace snb::storage

#endif  // SNB_STORAGE_WAL_H_

// Crash recovery for a batched-refresh store (LDBC auditing rule: the
// system must survive a crash mid-refresh and come back at the last
// committed daily batch, spec §6.3).
//
// A *store directory* is the durable form of a graph under refresh:
//
//   <store>/
//     checkpoint/        committed CsvBasic dataset + _MANIFEST
//     checkpoint.next/   in-flight checkpoint (ignored until its manifest
//                        is durable)
//     checkpoint.old/    previous checkpoint, mid-rotation window only
//     wal.log            redo log of daily batches since *store creation*
//                        (storage/wal.h)
//
// The _MANIFEST file is written and fsynced last, so a checkpoint directory
// without one is by definition torn and is never loaded. Checkpoint
// rotation (WriteCheckpoint) is: fill checkpoint.next → write manifest →
// rename checkpoint → checkpoint.old → rename checkpoint.next → checkpoint
// → delete checkpoint.old. A crash in any window leaves at least one
// manifest-complete directory, and recovery picks the one with the highest
// last-applied day.
//
// RecoveryManager::Recover =
//   pick newest committed checkpoint
//   → scan the WAL, truncate the torn tail (first bad CRC / short record /
//     uncommitted batch)
//   → load the checkpoint, replay every committed batch newer than it
//   → run validate::ValidateGraph before the store serves anything.
//
// The WAL is never truncated at checkpoint time — it spans the store's
// whole life, and replay simply skips batches the checkpoint already
// contains. That trades log size for a much simpler crash matrix (no
// checkpoint/log-truncation interleavings); at BI refresh-stream volumes
// the log is small next to the dataset.

#ifndef SNB_STORAGE_RECOVERY_H_
#define SNB_STORAGE_RECOVERY_H_

#include <memory>
#include <string>

#include "core/date_time.h"
#include "core/schema.h"
#include "storage/graph.h"
#include "util/status.h"

namespace snb::storage {

/// Creates <store_dir> with an initial committed checkpoint of `net` and no
/// WAL yet. `last_applied_day` seeds the manifest: replay skips batches at
/// or before it (use the day before the first update for a bulk load).
SNB_NODISCARD util::Status InitStore(const std::string& store_dir,
                       const core::SocialNetwork& net,
                       core::Date last_applied_day);

/// Writes a new checkpoint of `net` and atomically rotates it in (see the
/// file comment for the rename dance and its crash windows).
SNB_NODISCARD util::Status WriteCheckpoint(const std::string& store_dir,
                             const core::SocialNetwork& net,
                             core::Date last_applied_day);

struct RecoveryOptions {
  /// Run validate::ValidateGraph on the recovered graph; a violation turns
  /// into kCorruption (a recovered store must never serve bad data).
  bool validate = true;
};

struct RecoveryResult {
  std::unique_ptr<Graph> graph;

  /// Last-applied day recorded by the checkpoint that was loaded.
  core::Date checkpoint_day = 0;

  /// Last committed batch day after WAL replay (== checkpoint_day when the
  /// WAL held nothing newer). Refresh resumes after this day.
  core::Date last_committed_day = 0;

  size_t replayed_batches = 0;
  size_t replayed_events = 0;

  /// Torn-tail bytes dropped from the WAL (0 when the log scanned clean).
  uint64_t truncated_bytes = 0;
  std::string truncation_reason;
};

/// Opens a store directory after a (real or simulated) crash.
class RecoveryManager {
 public:
  explicit RecoveryManager(std::string store_dir)
      : store_dir_(std::move(store_dir)) {}

  /// Recovers to the last committed batch. Idempotent: recovering an
  /// already-clean store is a no-op load.
  SNB_NODISCARD util::StatusOr<RecoveryResult> Recover(
      const RecoveryOptions& options = {}) const;

 private:
  std::string store_dir_;
};

}  // namespace snb::storage

#endif  // SNB_STORAGE_RECOVERY_H_

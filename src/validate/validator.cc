#include "validate/validator.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "storage/consistency.h"

namespace snb::validate {

namespace {

using storage::AdjacencyList;
using storage::Graph;
using storage::MessageDateIndex;

/// Accumulates violations with a per-invariant cap so a corrupted bulk load
/// cannot balloon the report.
class Recorder {
 public:
  Recorder(ValidationReport& report, size_t cap)
      : report_(report), cap_(cap) {}

  void BeginInvariant(const std::string& name) {
    name_ = name;
    recorded_ = 0;
    ++report_.invariants_checked;
  }

  void Add(const std::string& detail) {
    if (recorded_ < cap_) {
      report_.violations.push_back({name_, detail});
    } else {
      ++report_.suppressed;
    }
    ++recorded_;
  }

  template <typename... Args>
  void Addf(Args&&... args) {
    if (recorded_ >= cap_) {  // cheap path: don't format suppressed entries
      ++report_.suppressed;
      ++recorded_;
      return;
    }
    std::ostringstream os;
    (os << ... << args);
    Add(os.str());
  }

 private:
  ValidationReport& report_;
  size_t cap_;
  std::string name_;
  size_t recorded_ = 0;
};

/// One relation under test: the list plus its target-domain size and, for
/// relations whose targets are message references, a flag switching target
/// validation to the post/comment split domain.
struct Relation {
  const char* name;
  const AdjacencyList* adj;
  size_t expected_nodes;  // source-domain size
  size_t target_domain;   // ignored when targets_are_messages
  bool targets_are_messages = false;
};

std::vector<Relation> AllRelations(const Graph& g) {
  const size_t p = g.NumPersons(), f = g.NumForums(), po = g.NumPosts(),
               c = g.NumComments(), t = g.NumTags(), tc = g.NumTagClasses(),
               pl = g.NumPlaces();
  return {
      {"knows", &g.Knows(), p, p},
      {"person-posts", &g.PersonPosts(), p, po},
      {"person-comments", &g.PersonComments(), p, c},
      {"person-likes", &g.PersonLikes(), p, 0, /*messages=*/true},
      {"post-likers", &g.PostLikers(), po, p},
      {"comment-likers", &g.CommentLikers(), c, p},
      {"forum-members", &g.ForumMembers(), f, p},
      {"person-forums", &g.PersonForums(), p, f},
      {"forum-posts", &g.ForumPosts(), f, po},
      {"person-moderates", &g.PersonModerates(), p, f},
      {"post-replies", &g.PostReplies(), po, c},
      {"comment-replies", &g.CommentReplies(), c, c},
      {"post-tags", &g.PostTags(), po, t},
      {"comment-tags", &g.CommentTags(), c, t},
      {"forum-tags", &g.ForumTags(), f, t},
      {"person-interests", &g.PersonInterests(), p, t},
      {"tag-posts", &g.TagPosts(), t, po},
      {"tag-comments", &g.TagComments(), t, c},
      {"tag-forums", &g.TagForums(), t, f},
      {"tag-persons", &g.TagPersons(), t, p},
      {"country-persons", &g.CountryPersons(), pl, p},
      {"tag-class-children", &g.TagClassChildren(), tc, tc},
      {"tag-class-tags", &g.TagClassTags(), tc, t},
  };
}

bool ValidMessageRef(const Graph& g, uint32_t msg) {
  return Graph::IsPost(msg) ? msg < g.NumPosts()
                            : Graph::AsComment(msg) < g.NumComments();
}

// ---- edge-endpoints ---------------------------------------------------------

void CheckEdgeEndpoints(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("edge-endpoints");
  for (const Relation& r : AllRelations(g)) {
    if (r.adj->num_nodes() != r.expected_nodes) {
      rec.Addf(r.name, ": ", r.adj->num_nodes(), " source nodes, expected ",
               r.expected_nodes);
      continue;
    }
    for (uint32_t node = 0; node < r.adj->num_nodes(); ++node) {
      r.adj->ForEach(node, [&](uint32_t target) {
        const bool ok = r.targets_are_messages
                            ? ValidMessageRef(g, target)
                            : target < r.target_domain;
        if (!ok) {
          rec.Addf(r.name, ": node ", node, " -> dangling target ", target,
                   r.targets_are_messages
                       ? " (invalid message ref)"
                       : "");
        }
      });
    }
  }
}

// ---- message-author ---------------------------------------------------------

void CheckMessageAuthor(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("message-author");
  for (uint32_t i = 0; i < g.NumPosts(); ++i) {
    if (g.PostCreator(i) >= g.NumPersons()) {
      rec.Addf("post ", i, ": creator ", g.PostCreator(i), " >= ",
               g.NumPersons(), " persons");
    }
    if (g.PostForum(i) >= g.NumForums()) {
      rec.Addf("post ", i, ": container forum ", g.PostForum(i), " >= ",
               g.NumForums(), " forums");
    }
  }
  for (uint32_t i = 0; i < g.NumComments(); ++i) {
    if (g.CommentCreator(i) >= g.NumPersons()) {
      rec.Addf("comment ", i, ": creator ", g.CommentCreator(i), " >= ",
               g.NumPersons(), " persons");
    }
    if (!ValidMessageRef(g, g.CommentReplyOf(i))) {
      rec.Addf("comment ", i, ": replyOf is an invalid message ref");
    }
    if (g.CommentRootPost(i) >= g.NumPosts()) {
      rec.Addf("comment ", i, ": root post ", g.CommentRootPost(i), " >= ",
               g.NumPosts(), " posts");
    }
  }
}

// ---- adjacency-sorted / adjacency-dedup -------------------------------------

void CheckAdjacencyOrder(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("adjacency-sorted");
  for (const Relation& r : AllRelations(g)) {
    const size_t nodes = std::min<size_t>(r.adj->num_nodes(),
                                          r.expected_nodes);
    for (uint32_t node = 0; node < nodes; ++node) {
      uint32_t prev = 0;
      size_t k = 0;
      bool reported = false;
      r.adj->ForEachBase(node, [&](uint32_t target) {
        if (k > 0 && prev > target && !reported) {
          rec.Addf(r.name, ": node ", node, " base span unsorted at offset ",
                   k, " (", prev, " > ", target, ")");
          reported = true;  // one finding per span is enough
        }
        prev = target;
        ++k;
      });
    }
  }
}

void CheckAdjacencyDedup(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("adjacency-dedup");
  for (const Relation& r : AllRelations(g)) {
    const size_t nodes = std::min<size_t>(r.adj->num_nodes(),
                                          r.expected_nodes);
    for (uint32_t node = 0; node < nodes; ++node) {
      // Merged list (base + overflow): every relation is semantically a set.
      std::vector<uint32_t> all = r.adj->Collect(node);
      std::sort(all.begin(), all.end());
      auto dup = std::adjacent_find(all.begin(), all.end());
      if (dup != all.end()) {
        rec.Addf(r.name, ": node ", node, " lists neighbour ", *dup,
                 " more than once");
      }
    }
  }
}

// ---- message-index-order / zone-map-coverage --------------------------------

void CheckMessageIndex(const Graph& g, Recorder& rec) {
  const MessageDateIndex& idx = g.MessageIndex();

  rec.BeginInvariant("message-index-order");
  if (idx.size() != g.NumMessages()) {
    rec.Addf("index holds ", idx.size(), " entries but the store has ",
             g.NumMessages(), " messages");
  }
  std::unordered_set<uint32_t> seen;
  seen.reserve(idx.size());
  std::pair<core::DateTime, uint32_t> prev;
  idx.ForEachBase([&](size_t i, uint32_t msg, core::DateTime date) {
    if (!ValidMessageRef(g, msg)) {
      rec.Addf("base[", i, "]: invalid message ref");
      return;
    }
    if (!seen.insert(msg).second) {
      rec.Addf("base[", i, "]: message indexed twice");
    }
    if (date != g.MessageCreationDate(msg)) {
      rec.Addf("base[", i, "]: cached date ", date,
               " != message creationDate ", g.MessageCreationDate(msg));
    }
    const auto cur = std::make_pair(date, msg);
    if (i > 0 && !(prev < cur)) {
      rec.Addf("base[", i, "]: (date, ref) order violated: (", prev.first,
               ", ", prev.second, ") !< (", cur.first, ", ", cur.second, ")");
    }
    prev = cur;
  });
  for (size_t i = 0; i < idx.tail_size(); ++i) {
    const uint32_t msg = idx.TailAt(i);
    if (!ValidMessageRef(g, msg)) {
      rec.Addf("tail[", i, "]: invalid message ref");
      continue;
    }
    if (!seen.insert(msg).second) {
      rec.Addf("tail[", i, "]: message indexed twice");
    }
    if (idx.TailDateAt(i) != g.MessageCreationDate(msg)) {
      rec.Addf("tail[", i, "]: cached date ", idx.TailDateAt(i),
               " != message creationDate ", g.MessageCreationDate(msg));
    }
  }

  rec.BeginInvariant("zone-map-coverage");
  const size_t want_blocks =
      (idx.tail_size() + MessageDateIndex::kTailBlock - 1) /
      MessageDateIndex::kTailBlock;
  if (idx.NumTailBlocks() != want_blocks) {
    rec.Addf("tail of ", idx.tail_size(), " entries has ",
             idx.NumTailBlocks(), " zone blocks, expected ", want_blocks);
    return;  // block geometry is broken; per-block checks would misreport
  }
  for (size_t b = 0; b < idx.NumTailBlocks(); ++b) {
    const MessageDateIndex::Zone z = idx.TailZoneAt(b);
    const size_t lo = b * MessageDateIndex::kTailBlock;
    const size_t hi = std::min(lo + MessageDateIndex::kTailBlock,
                               idx.tail_size());
    for (size_t i = lo; i < hi; ++i) {
      const core::DateTime d = idx.TailDateAt(i);
      if (d < z.min || d > z.max) {
        rec.Addf("tail block ", b, ": entry ", i, " date ", d,
                 " outside zone [", z.min, ", ", z.max,
                 "] — range scans would skip it");
        break;
      }
    }
  }
}

// ---- dictionary-code-in-range -----------------------------------------------

void CheckDictionaryCodes(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("dictionary-code-in-range");
  const size_t bound = g.Dict().size();
  struct CodeColumn {
    const char* name;
    size_t rows;
    uint32_t (Graph::*code)(uint32_t) const;
  };
  const CodeColumn columns[] = {
      {"person-gender", g.NumPersons(), &Graph::PersonGenderCode},
      {"person-browser", g.NumPersons(), &Graph::PersonBrowserCode},
      {"tag-name", g.NumTags(), &Graph::TagNameCode},
      {"place-name", g.NumPlaces(), &Graph::PlaceNameCode},
  };
  for (const CodeColumn& col : columns) {
    for (uint32_t i = 0; i < col.rows; ++i) {
      const uint32_t code = (g.*col.code)(i);
      if (code >= bound) {
        rec.Addf(col.name, "[", i, "]: code ", code, " >= dictionary size ",
                 bound);
      }
    }
  }
  // Message code columns go through the ref-based accessors so posts and
  // comments are both covered.
  for (uint32_t i = 0; i < g.NumPosts(); ++i) {
    const uint32_t m = Graph::MessageOfPost(i);
    if (g.MessageBrowserCode(m) >= bound ||
        g.MessageLengthClassCode(m) >= bound) {
      rec.Addf("post[", i, "]: browser/length-class code >= dictionary size ",
               bound);
    }
  }
  for (uint32_t i = 0; i < g.NumComments(); ++i) {
    const uint32_t m = Graph::MessageOfComment(i);
    if (g.MessageBrowserCode(m) >= bound ||
        g.MessageLengthClassCode(m) >= bound) {
      rec.Addf("comment[", i,
               "]: browser/length-class code >= dictionary size ", bound);
    }
  }
}

// ---- block-zone-covers-contents ---------------------------------------------

void CheckColumnZones(const snb::storage::columnar::ZonedColumn& col,
                      const char* what, Recorder& rec,
                      std::vector<uint64_t>& scratch) {
  for (size_t b = 0; b < col.num_blocks(); ++b) {
    scratch.clear();
    col.block(b).DecodeAll(&scratch);
    const auto [mn, mx] = std::minmax_element(scratch.begin(), scratch.end());
    if (*mn != col.block(b).zone_min() || *mx != col.block(b).zone_max()) {
      rec.Addf(what, ": block ", b, " zone [", col.block(b).zone_min(), ", ",
               col.block(b).zone_max(), "] != contents [", *mn, ", ", *mx,
               "] — zone pruning would mis-skip");
    }
  }
}

void CheckBlockZones(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("block-zone-covers-contents");
  std::vector<uint64_t> scratch;
  scratch.reserve(snb::storage::columnar::ColumnBlock::kMaxValues);
  std::string label;
  for (const Relation& r : AllRelations(g)) {
    const auto& csr = r.adj->csr();
    label = std::string(r.name) + ".targets";
    CheckColumnZones(csr.targets(), label.c_str(), rec, scratch);
    label = std::string(r.name) + ".offsets";
    CheckColumnZones(csr.offsets(), label.c_str(), rec, scratch);
    if (csr.with_dates()) {
      label = std::string(r.name) + ".dates";
      CheckColumnZones(csr.dates(), label.c_str(), rec, scratch);
    }
  }
  CheckColumnZones(g.MessageIndex().BaseDateColumn(), "message-index.dates",
                   rec, scratch);
}

// ---- hot-column-endpoints ---------------------------------------------------

// The pushdown kernels read materialized endpoint columns (comment → thread
// forum, post/comment-root language codes) instead of chasing the 2-hop
// pointers at scan time. A stale endpoint silently changes query results, so
// every entry is re-derived from the pointer chain it caches.
void CheckHotColumnEndpoints(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("hot-column-endpoints");
  const size_t dict = g.Dict().size();
  for (uint32_t i = 0; i < g.NumPosts(); ++i) {
    const uint32_t code = g.PostLanguageCode(i);
    if (code >= dict) {
      rec.Addf("post ", i, ": language code ", code, " >= dictionary size ",
               dict);
    } else if (g.Dict().Decode(code) != g.PostAt(i).language) {
      rec.Addf("post ", i, ": language column decodes to \"",
               g.Dict().Decode(code), "\" but Post::language is \"",
               g.PostAt(i).language, "\"");
    }
  }
  for (uint32_t c = 0; c < g.NumComments(); ++c) {
    const uint32_t root = g.CommentRootPost(c);
    if (root >= g.NumPosts()) continue;  // message-author reports this
    if (g.CommentForum(c) != g.PostForum(root)) {
      rec.Addf("comment ", c, ": forum column ", g.CommentForum(c),
               " != root post's forum ", g.PostForum(root));
    }
    if (g.CommentRootLanguageCode(c) != g.PostLanguageCode(root)) {
      rec.Addf("comment ", c, ": root-language column ",
               g.CommentRootLanguageCode(c),
               " != root post's language code ", g.PostLanguageCode(root));
    }
  }
}

// ---- like-zone-bounds -------------------------------------------------------

// Bound pushdown skips whole index blocks whose like-count zone max cannot
// beat the current top-k bound, and whole persons whose message-date zone
// misses the scan window. Either zone understating its contents makes the
// skip drop real candidates, so each is checked against the raw degrees and
// dates it summarizes.
void CheckLikeZoneBounds(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("like-zone-bounds");
  const MessageDateIndex& idx = g.MessageIndex();
  const size_t block_values = snb::storage::columnar::ColumnBlock::kMaxValues;
  auto likes_of = [&](uint32_t msg) -> size_t {
    return Graph::IsPost(msg)
               ? g.PostLikers().Degree(msg)
               : g.CommentLikers().Degree(Graph::AsComment(msg));
  };
  auto creator_of = [&](uint32_t msg) -> uint32_t {
    return Graph::IsPost(msg) ? g.PostCreator(msg)
                              : g.CommentCreator(Graph::AsComment(msg));
  };
  auto check_person_zone = [&](const char* where, size_t i, uint32_t msg,
                               core::DateTime date) {
    // Dead rows are exempt: the cascade collapses a dead person's zone on
    // purpose so scans skip them (tombstone-zone-bounds covers live rows).
    if (!g.MessageAlive(msg)) return;
    const uint32_t p = creator_of(msg);
    if (p >= g.NumPersons()) return;  // message-author reports this
    if (!g.PersonAlive(p)) return;
    if (!g.PersonHasMessagesIn(p, date, date + 1)) {
      rec.Addf(where, "[", i, "]: creation date ", date,
               " outside creator ", p,
               "'s message-date zone — person pruning would skip it");
    }
  };
  idx.ForEachBase([&](size_t i, uint32_t msg, core::DateTime date) {
    if (!ValidMessageRef(g, msg)) return;  // message-index-order reports this
    const size_t block = i / block_values;
    const size_t likes = likes_of(msg);
    if (likes > idx.BaseBlockMaxLikes(block)) {
      rec.Addf("base block ", block, ": entry ", i, " has ", likes,
               " likes > zone max ", idx.BaseBlockMaxLikes(block),
               " — bound pruning would skip a top-k candidate");
    }
    check_person_zone("base", i, msg, date);
  });
  for (size_t b = 0; b < idx.NumTailBlocks(); ++b) {
    const MessageDateIndex::Zone z = idx.TailZoneAt(b);
    const size_t lo = b * MessageDateIndex::kTailBlock;
    const size_t hi = std::min(lo + MessageDateIndex::kTailBlock,
                               idx.tail_size());
    for (size_t i = lo; i < hi; ++i) {
      const uint32_t msg = idx.TailAt(i);
      if (!ValidMessageRef(g, msg)) continue;
      const size_t likes = likes_of(msg);
      if (likes > z.max_likes) {
        rec.Addf("tail block ", b, ": entry ", i, " has ", likes,
                 " likes > zone max ", z.max_likes,
                 " — bound pruning would skip a top-k candidate");
      }
      check_person_zone("tail", i, msg, idx.TailDateAt(i));
    }
  }
}

// ---- tombstone-dangling -----------------------------------------------------

// Cascade completeness: nothing live may reference a tombstoned vertex. The
// cascade (graph.cc RunCascade) kills a dead person's forums, messages and
// the whole reply subtree of every dead message, so a live entity whose
// creator / container / reply target is dead means a cascade stopped partway
// through — exactly the torn state recovery must never publish. Checked by
// walking *from* each dead vertex: everything downstream must be dead too.
void CheckTombstoneDangling(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("tombstone-dangling");
  if (!g.HasTombstones()) return;  // trivially holds on insert-only graphs
  for (uint32_t p = 0; p < g.NumPersons(); ++p) {
    if (g.PersonAlive(p)) continue;
    g.PersonModerates().ForEach(p, [&](uint32_t f) {
      if (g.ForumAlive(f)) {
        rec.Addf("forum ", f, " alive but its moderator person ", p,
                 " is tombstoned");
      }
    });
    g.PersonPosts().ForEach(p, [&](uint32_t post) {
      if (g.PostAlive(post)) {
        rec.Addf("post ", post, " alive but its creator person ", p,
                 " is tombstoned");
      }
    });
    g.PersonComments().ForEach(p, [&](uint32_t c) {
      if (g.CommentAlive(c)) {
        rec.Addf("comment ", c, " alive but its creator person ", p,
                 " is tombstoned");
      }
    });
  }
  for (uint32_t f = 0; f < g.NumForums(); ++f) {
    if (g.ForumAlive(f)) continue;
    g.ForumPosts().ForEach(f, [&](uint32_t post) {
      if (g.PostAlive(post)) {
        rec.Addf("post ", post, " alive but its forum ", f, " is tombstoned");
      }
    });
  }
  for (uint32_t post = 0; post < g.NumPosts(); ++post) {
    if (g.PostAlive(post)) continue;
    g.PostReplies().ForEach(post, [&](uint32_t c) {
      if (g.CommentAlive(c)) {
        rec.Addf("comment ", c, " alive but replies to tombstoned post ",
                 post);
      }
    });
  }
  for (uint32_t c = 0; c < g.NumComments(); ++c) {
    if (g.CommentAlive(c)) continue;
    g.CommentReplies().ForEach(c, [&](uint32_t reply) {
      if (g.CommentAlive(reply)) {
        rec.Addf("comment ", reply, " alive but replies to tombstoned "
                 "comment ", c);
      }
    });
  }
}

// ---- tombstone-index-agreement ----------------------------------------------

// The bitmaps, the live-count bookkeeping and the dead-delta maps must tell
// one story: NumLive* equals a from-scratch census, LiveLikeCount /
// LiveReplyCount of every live message equals a recount over its actual
// live edges, and a dead person's message-date zone is collapsed to the
// sentinel so person-granular pruning skips them.
void CheckTombstoneIndexAgreement(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("tombstone-index-agreement");
  size_t live_p = 0, live_f = 0, live_po = 0, live_c = 0;
  for (uint32_t i = 0; i < g.NumPersons(); ++i) live_p += g.PersonAlive(i);
  for (uint32_t i = 0; i < g.NumForums(); ++i) live_f += g.ForumAlive(i);
  for (uint32_t i = 0; i < g.NumPosts(); ++i) live_po += g.PostAlive(i);
  for (uint32_t i = 0; i < g.NumComments(); ++i) live_c += g.CommentAlive(i);
  if (live_p != g.NumLivePersons()) {
    rec.Addf("NumLivePersons() = ", g.NumLivePersons(), " but ", live_p,
             " persons test alive");
  }
  if (live_f != g.NumLiveForums()) {
    rec.Addf("NumLiveForums() = ", g.NumLiveForums(), " but ", live_f,
             " forums test alive");
  }
  if (live_po != g.NumLivePosts()) {
    rec.Addf("NumLivePosts() = ", g.NumLivePosts(), " but ", live_po,
             " posts test alive");
  }
  if (live_c != g.NumLiveComments()) {
    rec.Addf("NumLiveComments() = ", g.NumLiveComments(), " but ", live_c,
             " comments test alive");
  }
  g.ForEachMessage([&](uint32_t msg) {  // visits live messages only
    int64_t likes = 0;
    if (Graph::IsPost(msg)) {
      g.PostLikers().ForEach(msg, [&](uint32_t p) {
        likes += g.LikeAlive(p, msg);
      });
    } else {
      g.CommentLikers().ForEach(Graph::AsComment(msg), [&](uint32_t p) {
        likes += g.LikeAlive(p, msg);
      });
    }
    if (likes != g.LiveLikeCount(msg)) {
      rec.Addf("message ", msg, ": LiveLikeCount = ", g.LiveLikeCount(msg),
               " but ", likes, " live like edges exist");
    }
    int64_t replies = 0;
    if (Graph::IsPost(msg)) {
      g.PostReplies().ForEach(msg, [&](uint32_t c) {
        replies += g.CommentAlive(c);
      });
    } else {
      g.CommentReplies().ForEach(Graph::AsComment(msg), [&](uint32_t c) {
        replies += g.CommentAlive(c);
      });
    }
    if (replies != g.LiveReplyCount(msg)) {
      rec.Addf("message ", msg, ": LiveReplyCount = ", g.LiveReplyCount(msg),
               " but ", replies, " live replies exist");
    }
  });
  for (uint32_t p = 0; p < g.NumPersons(); ++p) {
    if (g.PersonAlive(p)) continue;
    if (g.PersonHasMessagesIn(p, storage::kMinMessageDate,
                              storage::kMaxMessageDate)) {
      rec.Addf("dead person ", p, ": message-date zone not collapsed — "
               "person pruning would still visit them");
    }
  }
}

// ---- tombstone-zone-bounds --------------------------------------------------

// After deletes, zone maxima are computed over *all* rows (dead included),
// so they must still upper-bound every live row — live likes can only be
// fewer than raw likes, and a live message's date zone is untouched. If a
// compaction rebuilt the zones and got this wrong, bound pushdown would
// skip live top-k candidates. Only live rows are held to the bound; dead
// rows are unreachable through the pruned scans.
void CheckTombstoneZoneBounds(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("tombstone-zone-bounds");
  const MessageDateIndex& idx = g.MessageIndex();
  const size_t block_values = snb::storage::columnar::ColumnBlock::kMaxValues;
  idx.ForEachBase([&](size_t i, uint32_t msg, core::DateTime date) {
    (void)date;
    if (!ValidMessageRef(g, msg) || !g.MessageAlive(msg)) return;
    const size_t block = i / block_values;
    const int64_t live = g.LiveLikeCount(msg);
    if (live > static_cast<int64_t>(idx.BaseBlockMaxLikes(block))) {
      rec.Addf("base block ", block, ": live message ", msg, " has ", live,
               " live likes > zone max ", idx.BaseBlockMaxLikes(block));
    }
  });
  for (size_t b = 0; b < idx.NumTailBlocks(); ++b) {
    const MessageDateIndex::Zone z = idx.TailZoneAt(b);
    const size_t lo = b * MessageDateIndex::kTailBlock;
    const size_t hi = std::min(lo + MessageDateIndex::kTailBlock,
                               idx.tail_size());
    for (size_t i = lo; i < hi; ++i) {
      const uint32_t msg = idx.TailAt(i);
      if (!ValidMessageRef(g, msg) || !g.MessageAlive(msg)) continue;
      const int64_t live = g.LiveLikeCount(msg);
      if (live > static_cast<int64_t>(z.max_likes)) {
        rec.Addf("tail block ", b, ": live message ", msg, " has ", live,
                 " live likes > zone max ", z.max_likes);
      }
    }
  }
}

// ---- hot-column-gender ------------------------------------------------------

void CheckHotColumnGender(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("hot-column-gender");
  for (uint32_t p = 0; p < g.NumPersons(); ++p) {
    const bool from_string = g.PersonAt(p).gender == "female";
    if (g.PersonIsFemale(p) != from_string) {
      rec.Addf("person ", p, ": hot column says ",
               g.PersonIsFemale(p) ? "female" : "not female",
               " but Person::gender is \"", g.PersonAt(p).gender, "\"");
    }
  }
}

// ---- unique-id --------------------------------------------------------------

template <typename GetId>
void CheckUniqueIds(Recorder& rec, const char* table, size_t n, GetId&& id) {
  std::unordered_set<core::Id> seen;
  seen.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!seen.insert(id(i)).second) {
      rec.Addf(table, " ", i, ": duplicate external id ", id(i));
    }
  }
}

void CheckUniqueId(const Graph& g, Recorder& rec) {
  rec.BeginInvariant("unique-id");
  CheckUniqueIds(rec, "person", g.NumPersons(),
                 [&](uint32_t i) { return g.PersonAt(i).id; });
  CheckUniqueIds(rec, "forum", g.NumForums(),
                 [&](uint32_t i) { return g.ForumAt(i).id; });
  CheckUniqueIds(rec, "post", g.NumPosts(),
                 [&](uint32_t i) { return g.PostAt(i).id; });
  CheckUniqueIds(rec, "comment", g.NumComments(),
                 [&](uint32_t i) { return g.CommentAt(i).id; });
  CheckUniqueIds(rec, "tag", g.NumTags(),
                 [&](uint32_t i) { return g.TagAt(i).id; });
}

// ---- cardinality ------------------------------------------------------------

void CheckCardinality(const Graph& g, const core::ScaleFactorInfo& sf,
                      Recorder& rec) {
  rec.BeginInvariant("cardinality");
  if (g.NumPersons() != sf.num_persons) {
    rec.Addf("store has ", g.NumPersons(), " persons but SF", sf.name,
             " (Table 2.12) fixes ", sf.num_persons);
  }
  // The datagen never produces an all-quiet network: every SF row implies
  // forums and message activity. Catch truncated loads.
  if (sf.num_persons > 0) {
    if (g.NumForums() == 0) rec.Add("store has persons but zero forums");
    if (g.NumMessages() == 0) rec.Add("store has persons but zero messages");
  }
}

}  // namespace

size_t ValidationReport::CountFor(const std::string& invariant) const {
  size_t n = 0;
  for (const Violation& v : violations) {
    if (v.invariant == invariant) ++n;
  }
  return n;
}

std::string ValidationReport::ToString() const {
  if (ok()) return "";
  std::ostringstream os;
  os << violations.size() << " invariant violation(s)";
  if (suppressed > 0) os << " (+" << suppressed << " suppressed)";
  os << ":\n";
  for (const Violation& v : violations) {
    os << "  [" << v.invariant << "] " << v.detail << "\n";
  }
  return os.str();
}

ValidationReport ValidateGraph(const storage::Graph& graph,
                               const ValidatorOptions& options) {
  ValidationReport report;
  Recorder rec(report, options.max_violations_per_invariant);

  CheckEdgeEndpoints(graph, rec);
  CheckMessageAuthor(graph, rec);
  CheckAdjacencyOrder(graph, rec);
  CheckAdjacencyDedup(graph, rec);
  CheckMessageIndex(graph, rec);
  CheckDictionaryCodes(graph, rec);
  CheckBlockZones(graph, rec);
  CheckHotColumnEndpoints(graph, rec);
  CheckLikeZoneBounds(graph, rec);
  CheckTombstoneDangling(graph, rec);
  CheckTombstoneIndexAgreement(graph, rec);
  CheckTombstoneZoneBounds(graph, rec);
  CheckHotColumnGender(graph, rec);
  CheckUniqueId(graph, rec);
  if (options.expect_sf.has_value()) {
    CheckCardinality(graph, *options.expect_sf, rec);
  }
  if (options.run_store_consistency) {
    rec.BeginInvariant("store-consistency");
    for (const std::string& problem : storage::CheckGraphConsistency(graph)) {
      rec.Add(problem);
    }
  }
  return report;
}

}  // namespace snb::validate

// Graph-invariant validator: the structural-correctness companion to the
// benchmark driver (spec §6.1.3 asks the test sponsor for "a tool to perform
// arbitrary checks of the data").
//
// Where storage/consistency.h answers "do the forward and reverse indexes
// agree", this subsystem checks the *representation invariants* the engine's
// performance model relies on — the properties that, when silently broken,
// do not crash queries but make them return wrong answers or lose their
// pruning power:
//
//   edge-endpoints       every adjacency target lies inside its entity table
//   message-author       every message's creator/container references exist
//   adjacency-sorted     every CSR base span is sorted by target
//   adjacency-dedup      no relation lists the same neighbour twice
//   message-index-order  the date index base is sorted by (date, ref) and
//                        base+tail cover every message exactly once
//   zone-map-coverage    every tail zone map bounds its block's dates
//   dictionary-code-in-range
//                        every dictionary code column stays below the
//                        shared dictionary's size
//   block-zone-covers-contents
//                        every columnar block's min/max zone metadata
//                        exactly bounds its decoded contents
//   tombstone-dangling   no live entity references a tombstoned vertex
//                        (dead person → their forums/messages dead, dead
//                        forum → its posts dead, dead message → its reply
//                        subtree dead) — a violation is a torn cascade
//   tombstone-index-agreement
//                        NumLive* counters, LiveLikeCount/LiveReplyCount
//                        deltas and the collapsed zones of dead persons all
//                        agree with a from-scratch census of the bitmaps
//   tombstone-zone-bounds
//                        like-count zone maxima still upper-bound every
//                        *live* row after deletes/compaction, so bound
//                        pushdown never skips a live top-k candidate
//   hot-column-gender    PersonIsFemale agrees with the gender string
//   unique-id            external ids are unique per entity table
//   cardinality          entity counts match the claimed scale factor
//   store-consistency    the full O(V+E) forward/reverse cross-check
//                        (storage/consistency.h), folded into the report
//
// Each finding names its invariant, so tests can seed a specific corruption
// and assert the *right* check caught it, and CI logs say what class of
// damage occurred rather than just "validation failed".

#ifndef SNB_VALIDATE_VALIDATOR_H_
#define SNB_VALIDATE_VALIDATOR_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/scale_factors.h"
#include "storage/graph.h"

namespace snb::validate {

/// One invariant violation: which invariant, and a human-readable locus.
struct Violation {
  std::string invariant;  // e.g. "edge-endpoints"
  std::string detail;     // e.g. "knows: node 3 → target 9999 ≥ 300 persons"
};

struct ValidationReport {
  std::vector<Violation> violations;
  size_t invariants_checked = 0;  // number of invariant classes run
  size_t suppressed = 0;          // violations dropped by the per-invariant cap

  bool ok() const { return violations.empty(); }

  /// Violations recorded against one invariant name.
  size_t CountFor(const std::string& invariant) const;

  /// True when at least one violation names `invariant`.
  bool Has(const std::string& invariant) const {
    return CountFor(invariant) > 0;
  }

  /// Multi-line human-readable report ("" when ok).
  std::string ToString() const;
};

struct ValidatorOptions {
  /// When set, the `cardinality` invariant checks entity counts against this
  /// scale-factor row (spec Table 2.12); when absent the check is skipped.
  std::optional<core::ScaleFactorInfo> expect_sf;

  /// Cap on recorded violations per invariant; the remainder is counted in
  /// ValidationReport::suppressed so a corrupted bulk load cannot allocate
  /// an unbounded report.
  size_t max_violations_per_invariant = 16;

  /// Also run the O(V+E) forward/reverse cross-check from
  /// storage/consistency.h (invariant name "store-consistency").
  bool run_store_consistency = true;
};

/// Runs every invariant check against the graph. Read-only; safe on a
/// quiesced store of any size (cost is O(V + E log E) due to the dedup
/// sort). Returns a structured per-invariant report.
ValidationReport ValidateGraph(const storage::Graph& graph,
                               const ValidatorOptions& options = {});

}  // namespace snb::validate

#endif  // SNB_VALIDATE_VALIDATOR_H_

#include "analysis/lock_graph.h"

#include <execinfo.h>
#include <pthread.h>
#include <sched.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace snb::analysis {

namespace {

constexpr int kDeadlockExitCode = 87;
constexpr int kMaxFrames = 24;

/// One recorded acquisition context: the backtrace captured when an edge
/// (or report) was first created. Raw addresses; symbolized only when a
/// report is actually printed.
struct Backtrace {
  void* frames[kMaxFrames];
  int depth = 0;
};

Backtrace CaptureBacktrace() {
  Backtrace bt;
  bt.depth = backtrace(bt.frames, kMaxFrames);
  return bt;
}

struct Edge {
  SiteId to = -1;
  Backtrace first_seen;          // stack of the acquisition that created it
  unsigned long first_thread = 0;  // pthread_self() of that acquisition
};

struct Node {
  std::string name;
  std::string file;
  int line = 0;
  int level = kNoLevel;
  const LockSiteInfo* key = nullptr;  // dedup handle for named sites
  std::vector<Edge> out;
};

/// The analyzer's own critical sections use a spinlock, not util::Mutex:
/// the instrumentation must never recurse into itself, and the sections
/// are tiny (graph lookups over dozens of nodes).
class SpinLock {
 public:
  void lock() {
    // Yield instead of burning the quantum: detection builds run on the
    // 1-core CI container, where a pure spin would stall the lock holder.
    while (flag_.test_and_set(std::memory_order_acquire)) sched_yield();
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

struct SpinLockGuard {
  explicit SpinLockGuard(SpinLock& l) : lock(l) { lock.lock(); }
  ~SpinLockGuard() { lock.unlock(); }
  SpinLock& lock;
};

struct AllowedWaitPair {
  std::string held;
  std::string wait;
};

/// All mutable global state, behind one spinlock. Leaked on purpose
/// (never destroyed) so instrumented mutexes in static objects can run
/// during process teardown.
struct GlobalState {
  SpinLock mu;
  std::vector<Node> nodes;
  std::vector<AllowedWaitPair> allowed_waits;
  std::atomic<size_t> report_count{0};
  std::atomic<int> report_mode{static_cast<int>(ReportMode::kAbort)};
};

GlobalState& State() {
  static GlobalState* state = new GlobalState();
  return *state;
}

/// One entry of the calling thread's held-lock stack, in acquisition order.
struct HeldLock {
  MutexDebug* instance = nullptr;
  SiteId site = -1;
};

std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> held;
  return held;
}

/// Registers (or looks up) the node for `mu`, assigning its SiteId on first
/// acquisition. Named mutexes dedup on the static LockSiteInfo pointer so
/// every instance born at one source line shares a node; anonymous mutexes
/// get a fresh per-instance node (sound: it can only miss cross-instance
/// cycles, never invent one).
SiteId EnsureSite(MutexDebug* mu) {
  SiteId id = mu->site.load(std::memory_order_acquire);
  if (id >= 0) return id;

  GlobalState& st = State();
  SpinLockGuard guard(st.mu);
  // Re-check under the lock: another thread may have registered this
  // instance (or this instance's named site) concurrently.
  // relaxed: st.mu is held; the registering store also ran under st.mu.
  id = mu->site.load(std::memory_order_relaxed);
  if (id >= 0) return id;

  if (mu->static_site != nullptr) {
    for (size_t i = 0; i < st.nodes.size(); ++i) {
      if (st.nodes[i].key == mu->static_site) {
        mu->site.store(static_cast<SiteId>(i), std::memory_order_release);
        return static_cast<SiteId>(i);
      }
    }
  }

  Node node;
  if (mu->static_site != nullptr) {
    node.name = mu->static_site->name;
    node.file = mu->static_site->file;
    node.line = mu->static_site->line;
    node.level = mu->static_site->level;
    node.key = mu->static_site;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "<anonymous-mutex-%zu>",
                  st.nodes.size());
    node.name = buf;
    node.file = "<unknown>";
  }
  st.nodes.push_back(std::move(node));
  id = static_cast<SiteId>(st.nodes.size() - 1);
  mu->site.store(id, std::memory_order_release);
  return id;
}

void PrintBacktrace(const Backtrace& bt) {
  char** symbols = backtrace_symbols(bt.frames, bt.depth);
  for (int i = 0; i < bt.depth; ++i) {
    std::fprintf(stderr, "      #%d %s\n", i,
                 symbols != nullptr ? symbols[i] : "<?>");
  }
  std::free(symbols);
}

const char* NodeDesc(const Node& n, char* buf, size_t buf_size) {
  std::snprintf(buf, buf_size, "%s (%s:%d)", n.name.c_str(), n.file.c_str(),
                n.line);
  return buf;
}

/// Finishes a report that the caller already printed the body of: counts
/// it and, in abort mode, kills the process with the marker exit code.
/// `st.mu` must be held by the caller; released before _Exit so the exit
/// path cannot wedge another thread spinning on the analyzer lock.
void FinishReport() {
  GlobalState& st = State();
  // relaxed: diagnostic counter; readers poll it with no ordering needs.
  st.report_count.fetch_add(1, std::memory_order_relaxed);
  std::fflush(stderr);
  // relaxed: report_mode is an isolated flag set before threads start.
  const auto mode =
      static_cast<ReportMode>(st.report_mode.load(std::memory_order_relaxed));
  if (mode == ReportMode::kAbort) {
    st.mu.unlock();
    std::_Exit(kDeadlockExitCode);
  }
}

/// DFS over the edge set: is `target` reachable from `start`? Fills
/// `parent` for path reconstruction. Caller holds st.mu.
bool Reaches(const std::vector<Node>& nodes, SiteId start, SiteId target,
             std::vector<SiteId>* parent) {
  parent->assign(nodes.size(), -1);
  std::vector<char> visited(nodes.size(), 0);
  std::vector<SiteId> stack{start};
  visited[static_cast<size_t>(start)] = 1;
  while (!stack.empty()) {
    SiteId cur = stack.back();
    stack.pop_back();
    if (cur == target) return true;
    for (const Edge& e : nodes[static_cast<size_t>(cur)].out) {
      if (!visited[static_cast<size_t>(e.to)]) {
        visited[static_cast<size_t>(e.to)] = 1;
        (*parent)[static_cast<size_t>(e.to)] = cur;
        stack.push_back(e.to);
      }
    }
  }
  return false;
}

const Edge* FindEdge(const Node& from, SiteId to) {
  for (const Edge& e : from.out) {
    if (e.to == to) return &e;
  }
  return nullptr;
}

/// Reports the cycle closed by the would-be edge held_site → new_site.
/// Caller holds st.mu and verified Reaches(new_site, held_site).
void ReportCycle(SiteId held_site, SiteId new_site,
                 const std::vector<SiteId>& parent,
                 const Backtrace& current_bt) {
  GlobalState& st = State();
  char a[256], b[256];
  std::fprintf(stderr,
               "\n== SNB_DEADLOCK_DETECT: potential deadlock: lock-order "
               "cycle ==\n");
  std::fprintf(
      stderr, "  acquiring %s while holding %s, but the reverse order is "
              "already on record:\n",
      NodeDesc(st.nodes[static_cast<size_t>(new_site)], a, sizeof(a)),
      NodeDesc(st.nodes[static_cast<size_t>(held_site)], b, sizeof(b)));

  // Walk held_site back to new_site along the recorded path, printing each
  // edge with the backtrace captured when it was first inserted.
  std::vector<SiteId> path;  // new_site ... held_site in forward order
  for (SiteId cur = held_site; cur != -1; cur = parent[static_cast<size_t>(cur)]) {
    path.push_back(cur);
    if (cur == new_site) break;
  }
  for (size_t i = path.size(); i-- > 1;) {
    SiteId from = path[i];
    SiteId to = path[i - 1];
    const Edge* e = FindEdge(st.nodes[static_cast<size_t>(from)], to);
    std::fprintf(stderr, "    recorded edge %s -> %s (thread %lu):\n",
                 NodeDesc(st.nodes[static_cast<size_t>(from)], a, sizeof(a)),
                 NodeDesc(st.nodes[static_cast<size_t>(to)], b, sizeof(b)),
                 e != nullptr ? e->first_thread : 0UL);
    if (e != nullptr) PrintBacktrace(e->first_seen);
  }
  std::fprintf(stderr, "    new edge %s -> %s (this thread, %lu):\n",
               NodeDesc(st.nodes[static_cast<size_t>(held_site)], a,
                        sizeof(a)),
               NodeDesc(st.nodes[static_cast<size_t>(new_site)], b,
                        sizeof(b)),
               (unsigned long)pthread_self());
  PrintBacktrace(current_bt);
  FinishReport();
}

}  // namespace

void OnLockAttempt(MutexDebug* mu) {
  std::vector<HeldLock>& held = HeldStack();
  SiteId site = EnsureSite(mu);

  for (const HeldLock& h : held) {
    if (h.instance == mu) {
      GlobalState& st = State();
      Backtrace bt = CaptureBacktrace();
      SpinLockGuard guard(st.mu);
      char a[256];
      std::fprintf(stderr,
                   "\n== SNB_DEADLOCK_DETECT: self-deadlock: recursive "
                   "acquisition of %s ==\n",
                   NodeDesc(st.nodes[static_cast<size_t>(site)], a,
                            sizeof(a)));
      PrintBacktrace(bt);
      FinishReport();
      return;  // count mode: skip edge bookkeeping, the lock would hang
    }
  }
  if (held.empty()) return;

  Backtrace bt = CaptureBacktrace();
  GlobalState& st = State();
  SpinLockGuard guard(st.mu);
  const Node& acquiring = st.nodes[static_cast<size_t>(site)];
  for (const HeldLock& h : held) {
    if (h.site == site) continue;  // same-site instance nesting: allowed
    Node& holder = st.nodes[static_cast<size_t>(h.site)];

    // Declared lock levels must go strictly upward.
    if (holder.level != kNoLevel && acquiring.level != kNoLevel &&
        acquiring.level <= holder.level) {
      char a[256], b[256];
      std::fprintf(stderr,
                   "\n== SNB_DEADLOCK_DETECT: lock level order violation: "
                   "acquiring %s (level %d) while holding %s (level %d) "
                   "==\n",
                   NodeDesc(acquiring, a, sizeof(a)), acquiring.level,
                   NodeDesc(holder, b, sizeof(b)), holder.level);
      PrintBacktrace(bt);
      FinishReport();
      continue;
    }

    if (FindEdge(holder, site) != nullptr) continue;  // known-good edge

    // New edge h.site → site. If site already reaches h.site, inserting it
    // would close a cycle: report instead of inserting, so one ordering
    // bug yields one report per offending pair rather than cascading.
    std::vector<SiteId> parent;
    if (Reaches(st.nodes, site, h.site, &parent)) {
      ReportCycle(h.site, site, parent, bt);
      continue;
    }
    Edge e;
    e.to = site;
    e.first_seen = bt;
    e.first_thread = (unsigned long)pthread_self();
    holder.out.push_back(std::move(e));
  }
}

void OnLocked(MutexDebug* mu) {
  HeldStack().push_back({mu, EnsureSite(mu)});
}

void OnTryLocked(MutexDebug* mu) {
  HeldStack().push_back({mu, EnsureSite(mu)});
}

void OnUnlock(MutexDebug* mu) {
  std::vector<HeldLock>& held = HeldStack();
  // Unlock order may differ from acquisition order (MutexLock scopes can
  // interleave with manual Lock/Unlock); erase the matching entry wherever
  // it sits.
  for (size_t i = held.size(); i-- > 0;) {
    if (held[i].instance == mu) {
      held.erase(held.begin() + static_cast<long>(i));
      return;
    }
  }
}

void OnCondVarWait(MutexDebug* mu) {
  std::vector<HeldLock>& held = HeldStack();
  if (held.size() <= 1) return;  // only the waited mutex (or none) held
  SiteId wait_site = EnsureSite(mu);

  Backtrace bt = CaptureBacktrace();
  GlobalState& st = State();
  SpinLockGuard guard(st.mu);
  const Node& waited = st.nodes[static_cast<size_t>(wait_site)];
  for (const HeldLock& h : held) {
    if (h.instance == mu) continue;
    const Node& holder = st.nodes[static_cast<size_t>(h.site)];

    // Escape hatch 1: declared lock levels — a strictly lower-level mutex
    // may be held across a wait on a higher-level one.
    if (holder.level != kNoLevel && waited.level != kNoLevel &&
        holder.level < waited.level) {
      continue;
    }
    // Escape hatch 2: the explicit pair allowlist.
    bool allowed = false;
    for (const AllowedWaitPair& p : st.allowed_waits) {
      if (p.held == holder.name && p.wait == waited.name) {
        allowed = true;
        break;
      }
    }
    if (allowed) continue;

    char a[256], b[256];
    std::fprintf(stderr,
                 "\n== SNB_DEADLOCK_DETECT: blocking-while-locked: "
                 "CondVar wait on %s while holding %s ==\n",
                 NodeDesc(waited, a, sizeof(a)),
                 NodeDesc(holder, b, sizeof(b)));
    PrintBacktrace(bt);
    FinishReport();
  }
}

void AllowWaitWhileHolding(const char* held_site, const char* wait_site) {
  GlobalState& st = State();
  SpinLockGuard guard(st.mu);
  st.allowed_waits.push_back({held_site, wait_site});
}

void SetReportMode(ReportMode mode) {
  // relaxed: isolated flag; callers set it before exercising any locks.
  State().report_mode.store(static_cast<int>(mode),
                            std::memory_order_relaxed);
}

size_t ReportCount() {
  // relaxed: diagnostic counter; tests poll it, nothing orders against it.
  return State().report_count.load(std::memory_order_relaxed);
}

int DeadlockExitCode() { return kDeadlockExitCode; }

size_t HeldLockCountForTest() { return HeldStack().size(); }

void ResetForTest() {
  GlobalState& st = State();
  SpinLockGuard guard(st.mu);
  // Keep the node table — long-lived mutexes (e.g. ThreadPool::Default)
  // cache their SiteId and would index a cleared table out of bounds.
  for (Node& n : st.nodes) n.out.clear();
  st.allowed_waits.clear();
  // relaxed: test-only reset under st.mu; no concurrent reporters remain.
  st.report_count.store(0, std::memory_order_relaxed);
}

}  // namespace snb::analysis

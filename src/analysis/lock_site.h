// Static identity of a lock-creation site.
//
// Every util::Mutex can be constructed with a pointer to one of these
// (via the SNB_LOCK_SITE / SNB_LOCK_SITE_LEVEL macros in util/mutex.h);
// all mutexes born at the same source line share the site, so the
// lock-order graph reasons about *classes* of locks ("the scheduler's
// admission mutex") rather than individual instances. The struct is
// defined unconditionally — in builds without SNB_DEADLOCK_DETECT the
// constructor argument is ignored and the struct costs nothing.
//
// This header is the only part of src/analysis/ that util/mutex.h needs
// in every build; the graph itself (lock_graph.h) is included from the
// instrumented paths only.

#ifndef SNB_ANALYSIS_LOCK_SITE_H_
#define SNB_ANALYSIS_LOCK_SITE_H_

namespace snb::analysis {

/// Sites without a declared level are exempt from level-order checking
/// (the lock-order *graph* still covers them); see lock_graph.h.
inline constexpr int kNoLevel = -1;

struct LockSiteInfo {
  const char* name;  // stable human-readable id, e.g. "sched.stream_mu"
  const char* file;
  int line;
  /// Optional lock level: when both the held and the acquired site carry a
  /// level, acquisitions must go strictly upward (held < acquired), and a
  /// CondVar wait with another mutex held is permitted only when the held
  /// site's level is strictly below the waited mutex's level. This is the
  /// declared-ordering escape hatch for known-good nestings such as
  /// scheduler → thread pool.
  int level;
};

/// The declared level assignments, in one place. SNB_LOCK_LEVEL call sites
/// must agree with this table: the dynamic lock graph reads the level from
/// the macro argument, the static analyzer (snb_lint --dump-lock-sites)
/// re-derives it from the same tokens, and the cross-check test in
/// tests/lock_site_crosscheck_test.cc fails on any divergence between this
/// registry and what the tree actually declares. Add a row when you add a
/// level, and keep levels strictly increasing along every sanctioned
/// nesting (see the `level` comment above).
struct DeclaredLockLevel {
  const char* name;
  int level;
};

inline constexpr DeclaredLockLevel kDeclaredLockLevels[] = {
    {"sched.stream_mu", 10},    // held across ThreadPool::Submit by design
    {"util.thread_pool.mu", 20},  // the pool's queue mutex
};

}  // namespace snb::analysis

#endif  // SNB_ANALYSIS_LOCK_SITE_H_

// In-process lock-order analysis (the SNB_DEADLOCK_DETECT runtime).
//
// The clang thread-safety annotations (PR 3) prove that guarded data is
// only touched under its mutex, and TSan (PR 1) catches races on
// interleavings that actually execute. Neither catches a *potential
// deadlock*: two code paths that acquire the same pair of mutexes in
// opposite orders are a time bomb even when the fatal interleaving never
// fires in CI. This module closes that gap in the spirit of absl::Mutex's
// deadlock graph:
//
//   * Every util::Mutex belongs to a *site* — its creation file:line,
//     declared with SNB_LOCK_SITE("name") (anonymous mutexes get a lazily
//     assigned per-instance site on first lock). Sites are graph nodes.
//   * Each acquisition records edges held-site → acquired-site into one
//     global graph. Inserting a new edge runs a DFS cycle check; a cycle
//     means some pair of threads *could* deadlock, and the report carries
//     the acquisition backtrace of every edge on the cycle — the two (or
//     more) call stacks a human needs to pick the canonical order.
//   * Acquisitions are checked BEFORE blocking on the underlying mutex,
//     so a true A→B / B→A inversion is reported even on the execution
//     that would otherwise hang.
//   * CondVar::Wait / WaitFor audit blocking-while-locked: waiting on a
//     condition variable while holding any mutex *other than the one
//     being waited on* stalls every thread that needs the held lock for
//     as long as the predicate stays false. The audit reports such waits
//     unless the held/waited pair is explicitly declared safe, either by
//     lock levels (held.level < waited.level, see lock_site.h) or by the
//     AllowWaitWhileHolding pair allowlist.
//
// Same-site nesting: two *different instances* born at the same site may
// nest silently (per-element locks in a container legitimately do this and
// address-order cycles across instances are out of scope); re-acquiring
// the *same instance* is reported as a self-deadlock.
//
// Reporting: kAbort (default) prints the report and _Exit(DeadlockExitCode())
// — tests assert it through a forked child, and any report during the
// detection-enabled ctest run fails that suite, which is the repo's
// no-false-positive gate. kCount prints but only increments ReportCount(),
// for in-process assertions.
//
// The implementation deliberately depends on nothing above the C runtime
// (its own critical sections use a std::atomic_flag spinlock, NOT
// util::Mutex) so instrumenting every mutex in the repo cannot recurse
// into the analyzer. Overhead when SNB_DEADLOCK_DETECT is not defined:
// zero — util/mutex.h compiles the hooks out entirely.

#ifndef SNB_ANALYSIS_LOCK_GRAPH_H_
#define SNB_ANALYSIS_LOCK_GRAPH_H_

#include <atomic>
#include <cstddef>

#include "analysis/lock_site.h"

namespace snb::analysis {

/// Graph node id. Negative = not yet assigned.
using SiteId = int;

/// Debug state embedded in every util::Mutex in SNB_DEADLOCK_DETECT builds.
/// `static_site` is set at construction (nullptr for anonymous mutexes);
/// `site` is the lazily assigned node id, filled on first acquisition.
struct MutexDebug {
  const LockSiteInfo* static_site = nullptr;
  std::atomic<SiteId> site{-1};
};

/// Called before blocking on Mutex::Lock: records held→acquired edges,
/// runs the cycle check, enforces declared lock levels and reports
/// same-instance re-acquisition.
void OnLockAttempt(MutexDebug* mu);

/// Called after the underlying lock succeeded: pushes the mutex onto the
/// calling thread's held stack.
void OnLocked(MutexDebug* mu);

/// TryLock success: pushes onto the held stack but records no ordering
/// edges — a try-lock cannot block, hence cannot deadlock, but everything
/// acquired while it is held still orders against it.
void OnTryLocked(MutexDebug* mu);

/// Called before Mutex::Unlock: pops the mutex from the held stack.
void OnUnlock(MutexDebug* mu);

/// Blocking-while-locked audit for CondVar::Wait/WaitFor on `mu` (which
/// the caller holds, per the CondVar contract). Reports if any *other*
/// held mutex is not declared safe via levels or the pair allowlist.
void OnCondVarWait(MutexDebug* mu);

/// Declares that waiting on a CondVar bound to site `wait_site` while
/// holding site `held_site` is intended (both are SNB_LOCK_SITE names).
/// The declared-pair allowlist complements lock levels for one-off cases.
void AllowWaitWhileHolding(const char* held_site, const char* wait_site);

enum class ReportMode {
  kAbort,  // print the report, then _Exit(DeadlockExitCode())
  kCount,  // print the report, increment ReportCount(), continue
};

void SetReportMode(ReportMode mode);

/// Number of reports issued since start / the last ResetForTest().
size_t ReportCount();

/// Exit code used by kAbort (distinct from the fail-point crash code so a
/// forked test can tell "analyzer fired" from "fail point fired").
int DeadlockExitCode();

/// Number of mutexes the calling thread currently holds (test hook).
size_t HeldLockCountForTest();

/// Clears the graph, the allowlist and the report counter. Only safe while
/// no other thread is inside a mutex operation; for tests.
void ResetForTest();

}  // namespace snb::analysis

#endif  // SNB_ANALYSIS_LOCK_GRAPH_H_

#include "core/choke_points.h"

namespace snb::core {

const std::vector<ChokePointInfo>& AllChokePoints() {
  static const std::vector<ChokePointInfo>* kTable =
      new std::vector<ChokePointInfo>{
          {{1, 1}, "QOPT", "Interesting orders"},
          {{1, 2}, "QEXE", "High cardinality group-by performance"},
          {{1, 3}, "QOPT", "Top-k pushdown"},
          {{1, 4}, "QEXE", "Low cardinality group-by performance"},
          {{2, 1}, "QOPT", "Rich join order optimization"},
          {{2, 2}, "QOPT", "Late projection"},
          {{2, 3}, "QOPT", "Join type selection"},
          {{2, 4}, "QOPT", "Sparse foreign key joins"},
          {{3, 1}, "QOPT", "Detecting correlation"},
          {{3, 2}, "STORAGE", "Dimensional clustering"},
          {{3, 3}, "QEXE", "Scattered index access patterns"},
          {{4, 1}, "QOPT", "Common subexpression elimination"},
          {{4, 2}, "QOPT", "Complex boolean expression joins and selections"},
          {{4, 3}, "QEXE", "Low overhead expressions interpretation"},
          {{4, 4}, "QEXE", "String matching performance"},
          {{5, 1}, "QOPT", "Flattening sub-queries"},
          {{5, 2}, "QEXE", "Overlap between outer and sub-query"},
          {{5, 3}, "QEXE", "Intra-query result reuse"},
          {{6, 1}, "QEXE", "Inter-query result reuse"},
          {{7, 1}, "QEXE", "Incremental path computation"},
          {{7, 2}, "QOPT", "Cardinality estimation of transitive paths"},
          {{7, 3}, "QEXE", "Execution of a transitive step"},
          {{7, 4}, "QEXE", "Efficient evaluation of termination criteria"},
          {{8, 1}, "LANG", "Complex patterns"},
          {{8, 2}, "LANG", "Complex aggregations"},
          {{8, 3}, "LANG", "Ranking-style queries"},
          {{8, 4}, "LANG", "Query composition"},
          {{8, 5}, "LANG", "Dates and times"},
          {{8, 6}, "LANG", "Handling paths"},
      };
  return *kTable;
}

namespace {

QueryChokePoints Bi(int32_t n, std::vector<ChokePointId> cps) {
  return {QueryWorkload::kBi, n, std::move(cps)};
}

QueryChokePoints Ic(int32_t n, std::vector<ChokePointId> cps) {
  return {QueryWorkload::kInteractiveComplex, n, std::move(cps)};
}

}  // namespace

const std::vector<QueryChokePoints>& AllQueryChokePoints() {
  static const std::vector<QueryChokePoints>* kTable =
      new std::vector<QueryChokePoints>{
          Bi(1, {{1, 2}, {3, 2}, {4, 1}, {8, 5}}),
          Bi(2, {{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 3}, {3, 1}, {3, 2},
                 {8, 5}}),
          Bi(3, {{3, 1}, {3, 2}, {4, 1}, {4, 3}, {5, 3}, {6, 1}, {8, 5}}),
          Bi(4, {{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {2, 4}, {3, 3}}),
          Bi(5, {{1, 2}, {1, 3}, {2, 1}, {2, 2}, {2, 3}, {2, 4}, {3, 3},
                 {5, 3}, {6, 1}, {8, 4}}),
          Bi(6, {{1, 2}, {2, 3}}),
          Bi(7, {{1, 2}, {2, 3}, {3, 2}, {3, 3}, {6, 1}}),
          Bi(8, {{1, 4}, {3, 3}, {5, 2}, {8, 1}}),
          Bi(9, {{1, 2}, {1, 3}, {2, 1}, {2, 3}, {2, 4}}),
          Bi(10, {{1, 2}, {2, 1}, {2, 3}, {3, 2}, {8, 4}, {8, 5}}),
          Bi(11, {{1, 1}, {2, 1}, {2, 2}, {2, 3}, {3, 1}, {3, 2}, {6, 1},
                  {8, 1}, {8, 3}}),
          Bi(12, {{1, 2}, {2, 2}, {3, 1}, {6, 1}, {8, 5}}),
          Bi(13, {{1, 2}, {2, 2}, {2, 3}, {3, 2}, {6, 1}, {8, 3}, {8, 5}}),
          Bi(14, {{1, 2}, {2, 2}, {2, 3}, {3, 2}, {7, 2}, {7, 3}, {7, 4},
                  {8, 1}, {8, 5}}),
          Bi(15, {{1, 2}, {2, 3}, {3, 2}, {3, 3}, {5, 3}, {6, 1}, {8, 4}}),
          Bi(16, {{1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 3}, {5, 3}, {7, 1},
                  {7, 2}, {7, 3}, {8, 1}, {8, 6}}),
          Bi(17, {{1, 1}}),
          Bi(18, {{1, 1}, {1, 2}, {1, 4}, {3, 2}, {4, 2}, {4, 3}, {8, 1},
                  {8, 2}, {8, 3}, {8, 4}, {8, 5}}),
          Bi(19, {{1, 1}, {1, 3}, {2, 1}, {2, 3}, {2, 4}, {3, 3}, {5, 1},
                  {7, 3}, {7, 4}, {8, 1}, {8, 5}}),
          Bi(20, {{1, 4}, {2, 1}, {6, 1}, {8, 1}}),
          Bi(21, {{1, 2}, {2, 1}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {5, 1},
                  {5, 3}, {8, 2}, {8, 4}, {8, 5}}),
          Bi(22, {{1, 3}, {1, 4}, {2, 1}, {3, 1}, {3, 3}, {5, 1}, {5, 2},
                  {5, 3}, {8, 3}, {8, 4}}),
          Bi(23, {{1, 4}, {2, 3}, {3, 3}, {4, 3}, {8, 5}}),
          Bi(24, {{1, 4}, {2, 1}, {2, 3}, {3, 2}, {4, 3}, {8, 5}}),
          Bi(25, {{1, 2}, {2, 1}, {2, 2}, {2, 4}, {3, 3}, {5, 1}, {5, 3},
                  {7, 2}, {7, 3}, {8, 1}, {8, 3}, {8, 4}, {8, 5}, {8, 6}}),
          Ic(1, {{2, 1}, {5, 3}, {8, 2}}),
          Ic(2, {{1, 1}, {2, 2}, {2, 3}, {3, 2}, {8, 5}}),
          Ic(3, {{2, 1}, {3, 1}, {5, 1}, {8, 2}, {8, 5}}),
          Ic(4, {{2, 3}, {8, 2}, {8, 5}}),
          Ic(5, {{2, 3}, {3, 3}, {8, 2}, {8, 5}}),
          Ic(6, {{5, 1}}),
          Ic(7, {{2, 2}, {2, 3}, {3, 3}, {5, 1}, {8, 1}, {8, 3}}),
          Ic(8, {{2, 4}, {3, 2}, {3, 3}, {5, 3}}),
          Ic(9, {{1, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 2}, {3, 3}, {8, 5}}),
          Ic(10, {{2, 3}, {3, 3}, {4, 1}, {4, 2}, {5, 1}, {5, 2}, {6, 1},
                  {7, 1}, {8, 6}}),
          Ic(11, {{1, 3}, {2, 4}, {3, 3}}),
          Ic(12, {{3, 3}, {7, 2}, {7, 3}, {8, 2}}),
          Ic(13, {{3, 3}, {7, 2}, {7, 3}, {8, 1}, {8, 6}}),
          Ic(14, {{3, 3}, {7, 2}, {7, 3}, {8, 1}, {8, 2}, {8, 3}, {8, 6}}),
      };
  return *kTable;
}

std::string QueryName(QueryWorkload workload, int32_t number) {
  return (workload == QueryWorkload::kBi ? "BI " : "IC ") +
         std::to_string(number);
}

std::vector<std::string> QueriesCovering(ChokePointId cp) {
  std::vector<std::string> out;
  for (const QueryChokePoints& q : AllQueryChokePoints()) {
    for (const ChokePointId& id : q.choke_points) {
      if (id == cp) {
        out.push_back(QueryName(q.workload, q.number));
        break;
      }
    }
  }
  return out;
}

}  // namespace snb::core

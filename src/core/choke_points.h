// Choke-point registry: spec Appendix A / Table A.1.
//
// Every read query (BI 1–25, IC 1–14) carries the list of choke points it is
// designed to stress. The canonical per-query lists below are assembled from
// the query cards (§4.1, §5.1) and the per-choke-point query lists of
// Appendix A; the Table A.1 coverage matrix is derived from them by the
// `table_choke_points` bench binary.

#ifndef SNB_CORE_CHOKE_POINTS_H_
#define SNB_CORE_CHOKE_POINTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace snb::core {

/// Choke point identifier; e.g. {1, 2} is CP-1.2.
struct ChokePointId {
  int32_t group;
  int32_t item;

  bool operator==(const ChokePointId&) const = default;
  bool operator<(const ChokePointId& other) const {
    return group != other.group ? group < other.group : item < other.item;
  }
};

/// One choke point's descriptive metadata (Appendix A).
struct ChokePointInfo {
  ChokePointId id;
  std::string area;   // e.g. "QOPT", "QEXE", "STORAGE", "LANG"
  std::string title;  // e.g. "Interesting orders"
};

enum class QueryWorkload : uint8_t { kBi = 0, kInteractiveComplex = 1 };

/// One read query with its choke-point coverage.
struct QueryChokePoints {
  QueryWorkload workload;
  int32_t number;  // BI 1–25 or IC 1–14
  std::vector<ChokePointId> choke_points;
};

/// All 24 choke points of Appendix A (CP-1.1 … CP-8.6).
const std::vector<ChokePointInfo>& AllChokePoints();

/// Per-query choke-point lists for all 39 read queries.
const std::vector<QueryChokePoints>& AllQueryChokePoints();

/// Short display name, e.g. "BI 14" or "IC 3".
std::string QueryName(QueryWorkload workload, int32_t number);

/// Queries covering a given choke point (one Table A.1 column).
std::vector<std::string> QueriesCovering(ChokePointId cp);

}  // namespace snb::core

#endif  // SNB_CORE_CHOKE_POINTS_H_

// Date and DateTime types per spec §2.3.1 (Table 2.1).
//
// Date       — day precision, serialized "yyyy-mm-dd".
// DateTime   — millisecond precision, GMT, serialized
//              "yyyy-mm-ddTHH:MM:ss.sss+0000".
//
// Internally a Date is the count of days since 1970-01-01 and a DateTime the
// count of milliseconds since the epoch; both are plain integers so that
// range predicates compile to integer comparisons. When a query compares a
// DateTime against a Date parameter, the Date converts to midnight GMT
// (spec §3.2 "Comparing Date and DateTime values").

#ifndef SNB_CORE_DATE_TIME_H_
#define SNB_CORE_DATE_TIME_H_

#include <cstdint>
#include <string>

namespace snb::core {

/// Days since 1970-01-01 (may be negative for earlier dates).
using Date = int32_t;

/// Milliseconds since 1970-01-01T00:00:00.000 GMT.
using DateTime = int64_t;

constexpr int64_t kMillisPerSecond = 1000;
constexpr int64_t kMillisPerMinute = 60 * kMillisPerSecond;
constexpr int64_t kMillisPerHour = 60 * kMillisPerMinute;
constexpr int64_t kMillisPerDay = 24 * kMillisPerHour;

/// Calendar date triple.
struct CivilDate {
  int32_t year;
  int32_t month;  // 1..12
  int32_t day;    // 1..31
};

/// Converts a calendar date to days since the epoch (proleptic Gregorian).
Date DateFromCivil(int32_t year, int32_t month, int32_t day);

/// Converts days since the epoch back to the calendar date.
CivilDate CivilFromDate(Date date);

/// Builds a DateTime from calendar components.
DateTime DateTimeFromCivil(int32_t year, int32_t month, int32_t day,
                           int32_t hour = 0, int32_t minute = 0,
                           int32_t second = 0, int32_t millis = 0);

/// Midnight GMT of the given Date — the implicit Date→DateTime conversion
/// mandated by spec §3.2.
constexpr DateTime DateTimeFromDate(Date date) {
  return static_cast<DateTime>(date) * kMillisPerDay;
}

/// The Date containing the given instant (floor for negative values too).
constexpr Date DateFromDateTime(DateTime dt) {
  int64_t d = dt / kMillisPerDay;
  if (dt < 0 && dt % kMillisPerDay != 0) --d;
  return static_cast<Date>(d);
}

/// Extracts the calendar year of the instant (the year() query function).
int32_t Year(DateTime dt);

/// Extracts the calendar month, 1..12 (the month() query function).
int32_t Month(DateTime dt);

/// Extracts the day of month, 1..31.
int32_t DayOfMonth(DateTime dt);

/// Number of months spanned by [from, to] where partial months on both ends
/// count as one month — the BI 21 "zombie" month count (Jan 31 → Mar 1 = 3).
int32_t MonthsSpanInclusive(DateTime from, DateTime to);

/// Whole minutes between two instants (the IC 7 minutesLatency).
constexpr int32_t MinutesBetween(DateTime from, DateTime to) {
  return static_cast<int32_t>((to - from) / kMillisPerMinute);
}

/// Formats as "yyyy-mm-dd".
std::string FormatDate(Date date);

/// Formats as "yyyy-mm-ddTHH:MM:ss.sss+0000".
std::string FormatDateTime(DateTime dt);

/// Parses "yyyy-mm-dd"; returns false on malformed input.
bool ParseDate(const std::string& text, Date* out);

/// Parses "yyyy-mm-ddTHH:MM:ss.sss+0000" (timezone suffix optional);
/// returns false on malformed input.
bool ParseDateTime(const std::string& text, DateTime* out);

}  // namespace snb::core

#endif  // SNB_CORE_DATE_TIME_H_

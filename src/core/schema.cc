#include "core/schema.h"

namespace snb::core {

size_t SocialNetwork::NumEdges() const {
  size_t n = 0;
  // Static edges: organisation isLocatedIn, place isPartOf, tag hasType,
  // tagclass isSubclassOf.
  n += organisations.size();
  for (const Place& p : places) {
    if (p.part_of != kNoId) ++n;
  }
  n += tags.size();
  for (const TagClass& tc : tag_classes) {
    if (tc.parent != kNoId) ++n;
  }
  // Person edges: isLocatedIn, hasInterest, studyAt, workAt, knows.
  for (const Person& p : persons) {
    n += 1;  // isLocatedIn
    n += p.interests.size();
    n += p.study_at.size();
    n += p.work_at.size();
  }
  n += knows.size();
  // Forum edges: hasModerator, hasTag, hasMember, containerOf (== #posts).
  for (const Forum& f : forums) {
    n += 1;  // hasModerator
    n += f.tags.size();
  }
  n += memberships.size();
  // Post edges: hasCreator, containerOf, isLocatedIn, hasTag.
  for (const Post& p : posts) {
    n += 3;
    n += p.tags.size();
  }
  // Comment edges: hasCreator, isLocatedIn, replyOf, hasTag.
  for (const Comment& c : comments) {
    n += 3;
    n += c.tags.size();
  }
  n += likes.size();
  return n;
}

}  // namespace snb::core

// Scale-factor definitions: Table 2.12 (dataset metrics per SF) and
// Table 3.1 / B.1 (Interactive complex-read frequencies per SF).
//
// The benchmark's SF is the CsvBasic on-disk size in GB; the generator is
// parameterized by the person count, which Table 2.12 fixes per SF. We embed
// the paper's reference numbers so benches can report measured-vs-paper
// ratios, and we add "micro" SFs (not in the paper) small enough for unit
// tests and laptop-scale benchmarking.

#ifndef SNB_CORE_SCALE_FACTORS_H_
#define SNB_CORE_SCALE_FACTORS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace snb::core {

/// One row of spec Table 2.12.
struct ScaleFactorInfo {
  std::string name;        // e.g. "0.1", "1", "1000"
  double sf = 0;           // numeric scale factor (GB of CsvBasic output)
  uint64_t num_persons = 0;
  uint64_t paper_nodes = 0;  // 0 when the paper does not report it
  uint64_t paper_edges = 0;
};

/// All SFs of spec Table 2.12 plus the micro SFs used by this repository's
/// tests and benches (paper_nodes/paper_edges = 0 for those).
const std::vector<ScaleFactorInfo>& AllScaleFactors();

/// Looks up an SF row by its name ("0.1", "1", ..., or micro "0.003" etc.).
std::optional<ScaleFactorInfo> FindScaleFactor(const std::string& name);

/// Frequencies of Interactive complex reads IC 1–14 (Table 3.1 / B.1):
/// one complex read of type q is issued every `frequency` update operations.
struct InteractiveFrequencies {
  std::string sf_name;
  int32_t freq[14];  // freq[0] is IC 1
};

/// Table B.1 rows (SF1 .. SF1000).
const std::vector<InteractiveFrequencies>& AllInteractiveFrequencies();

/// Frequencies for an SF; falls back to the SF1 row for micro SFs.
InteractiveFrequencies FrequenciesForScaleFactor(const std::string& name);

}  // namespace snb::core

#endif  // SNB_CORE_SCALE_FACTORS_H_

// The LDBC SNB data schema (spec §2.3.2, Figure 2.1, Tables 2.2–2.10) as
// plain "raw" record structs.
//
// These structs are the interchange format between the data generator, the
// CSV serializers and the columnar graph store. IDs follow the spec's ID
// type: 64-bit, unique within one entity type only (a Forum and a Post may
// share an ID).

#ifndef SNB_CORE_SCHEMA_H_
#define SNB_CORE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/date_time.h"

namespace snb::core {

using Id = int64_t;
constexpr Id kNoId = -1;

// ---------------------------------------------------------------------------
// Static entities
// ---------------------------------------------------------------------------

enum class PlaceType : uint8_t { kCity = 0, kCountry = 1, kContinent = 2 };

/// City / Country / Continent (Table 2.6). `part_of` links City→Country and
/// Country→Continent; kNoId for continents.
struct Place {
  Id id = kNoId;
  std::string name;
  std::string url;
  PlaceType type = PlaceType::kCity;
  Id part_of = kNoId;
};

enum class OrganisationType : uint8_t { kUniversity = 0, kCompany = 1 };

/// University / Company (Table 2.4). Universities are located in a City,
/// companies in a Country.
struct Organisation {
  Id id = kNoId;
  OrganisationType type = OrganisationType::kUniversity;
  std::string name;
  std::string url;
  Id place = kNoId;
};

/// Topic tag (Table 2.8), typed by exactly one TagClass.
struct Tag {
  Id id = kNoId;
  std::string name;
  std::string url;
  Id tag_class = kNoId;
};

/// Node of the tag-class hierarchy (Table 2.9); kNoId parent for the root.
struct TagClass {
  Id id = kNoId;
  std::string name;
  std::string url;
  Id parent = kNoId;
};

// ---------------------------------------------------------------------------
// Dynamic entities
// ---------------------------------------------------------------------------

/// Person.studyAt edge payload (Table 2.10).
struct StudyAt {
  Id university = kNoId;
  int32_t class_year = 0;
};

/// Person.workAt edge payload (Table 2.10).
struct WorkAt {
  Id company = kNoId;
  int32_t work_from = 0;
};

/// Person (Table 2.5) with its 1-to-N attribute edges inlined.
struct Person {
  Id id = kNoId;
  std::string first_name;
  std::string last_name;
  std::string gender;
  Date birthday = 0;
  DateTime creation_date = 0;
  std::string location_ip;
  std::string browser_used;
  Id city = kNoId;
  std::vector<std::string> emails;
  std::vector<std::string> speaks;
  std::vector<Id> interests;    // hasInterest → Tag
  std::vector<StudyAt> study_at;
  std::vector<WorkAt> work_at;
};

/// Undirected knows edge with creationDate payload (Table 2.10).
struct Knows {
  Id person1 = kNoId;
  Id person2 = kNoId;
  DateTime creation_date = 0;
};

enum class ForumKind : uint8_t { kWall = 0, kGroup = 1, kAlbum = 2 };

/// Forum (Table 2.2). The three forum kinds (wall, group, album) are
/// distinguished by title prefix in the spec; we also carry the kind
/// explicitly for the generator's own use.
struct Forum {
  Id id = kNoId;
  std::string title;
  DateTime creation_date = 0;
  Id moderator = kNoId;
  std::vector<Id> tags;
  ForumKind kind = ForumKind::kWall;
};

/// Forum hasMember edge with joinDate payload.
struct ForumMembership {
  Id forum = kNoId;
  Id person = kNoId;
  DateTime join_date = 0;
};

/// Post (Tables 2.3 + 2.7). Exactly one of content / image_file is nonempty.
struct Post {
  Id id = kNoId;
  std::string image_file;
  DateTime creation_date = 0;
  std::string location_ip;
  std::string browser_used;
  std::string language;
  std::string content;
  int32_t length = 0;
  Id creator = kNoId;
  Id forum = kNoId;
  Id country = kNoId;
  std::vector<Id> tags;
};

/// Comment (Table 2.3). Exactly one of reply_of_post / reply_of_comment is
/// set; the other is kNoId.
struct Comment {
  Id id = kNoId;
  DateTime creation_date = 0;
  std::string location_ip;
  std::string browser_used;
  std::string content;
  int32_t length = 0;
  Id creator = kNoId;
  Id country = kNoId;
  Id reply_of_post = kNoId;
  Id reply_of_comment = kNoId;
  std::vector<Id> tags;
};

/// Person likes Post/Comment edge with creationDate payload.
struct Like {
  Id person = kNoId;
  Id message = kNoId;
  bool is_post = true;
  DateTime creation_date = 0;
};

// ---------------------------------------------------------------------------
// Whole-network container
// ---------------------------------------------------------------------------

/// A complete generated social network: the bulk-load dataset (~90 % of the
/// simulated activity; spec §2.3.4) in raw record form.
struct SocialNetwork {
  // Static part.
  std::vector<Place> places;
  std::vector<Organisation> organisations;
  std::vector<TagClass> tag_classes;
  std::vector<Tag> tags;

  // Dynamic part.
  std::vector<Person> persons;
  std::vector<Knows> knows;
  std::vector<Forum> forums;
  std::vector<ForumMembership> memberships;
  std::vector<Post> posts;
  std::vector<Comment> comments;
  std::vector<Like> likes;

  /// Total node count across all entity types (for Table 2.12 statistics).
  size_t NumNodes() const {
    return places.size() + organisations.size() + tag_classes.size() +
           tags.size() + persons.size() + forums.size() + posts.size() +
           comments.size();
  }

  /// Total edge count across all relation types, counting attribute edges
  /// the way the spec's Table 2.12 does (each relation row once).
  size_t NumEdges() const;
};

}  // namespace snb::core

#endif  // SNB_CORE_SCHEMA_H_

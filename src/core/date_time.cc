#include "core/date_time.h"

#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace snb::core {

namespace {

// Howard Hinnant's days-from-civil algorithm (public domain).
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                                // [0,399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;        // [0,146096]
  return era * 146097 + doe - 719468;
}

CivilDate CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                             // [0,146096]
  const int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;        // [0,399]
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);      // [0,365]
  const int64_t mp = (5 * doy + 2) / 153;                           // [0,11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;                   // [1,31]
  const int64_t m = mp + (mp < 10 ? 3 : -9);                        // [1,12]
  return CivilDate{static_cast<int32_t>(y + (m <= 2)),
                   static_cast<int32_t>(m), static_cast<int32_t>(d)};
}

}  // namespace

Date DateFromCivil(int32_t year, int32_t month, int32_t day) {
  return static_cast<Date>(DaysFromCivil(year, month, day));
}

CivilDate CivilFromDate(Date date) { return CivilFromDays(date); }

DateTime DateTimeFromCivil(int32_t year, int32_t month, int32_t day,
                           int32_t hour, int32_t minute, int32_t second,
                           int32_t millis) {
  return DateTimeFromDate(DateFromCivil(year, month, day)) +
         hour * kMillisPerHour + minute * kMillisPerMinute +
         second * kMillisPerSecond + millis;
}

int32_t Year(DateTime dt) { return CivilFromDate(DateFromDateTime(dt)).year; }

int32_t Month(DateTime dt) { return CivilFromDate(DateFromDateTime(dt)).month; }

int32_t DayOfMonth(DateTime dt) {
  return CivilFromDate(DateFromDateTime(dt)).day;
}

int32_t MonthsSpanInclusive(DateTime from, DateTime to) {
  CivilDate a = CivilFromDate(DateFromDateTime(from));
  CivilDate b = CivilFromDate(DateFromDateTime(to));
  return (b.year * 12 + b.month) - (a.year * 12 + a.month) + 1;
}

std::string FormatDate(Date date) {
  CivilDate c = CivilFromDate(date);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string FormatDateTime(DateTime dt) {
  Date date = DateFromDateTime(dt);
  CivilDate c = CivilFromDate(date);
  int64_t ms_of_day = dt - DateTimeFromDate(date);
  int32_t hour = static_cast<int32_t>(ms_of_day / kMillisPerHour);
  int32_t minute =
      static_cast<int32_t>((ms_of_day % kMillisPerHour) / kMillisPerMinute);
  int32_t second =
      static_cast<int32_t>((ms_of_day % kMillisPerMinute) / kMillisPerSecond);
  int32_t millis = static_cast<int32_t>(ms_of_day % kMillisPerSecond);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03d+0000",
                c.year, c.month, c.day, hour, minute, second, millis);
  return buf;
}

namespace {

bool ParseFixedInt(const char* s, int len, int32_t* out) {
  int32_t v = 0;
  for (int i = 0; i < len; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + (s[i] - '0');
  }
  *out = v;
  return true;
}

}  // namespace

bool ParseDate(const std::string& text, Date* out) {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return false;
  int32_t y, m, d;
  if (!ParseFixedInt(text.data(), 4, &y) ||
      !ParseFixedInt(text.data() + 5, 2, &m) ||
      !ParseFixedInt(text.data() + 8, 2, &d)) {
    return false;
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  *out = DateFromCivil(y, m, d);
  return true;
}

bool ParseDateTime(const std::string& text, DateTime* out) {
  // "yyyy-mm-ddTHH:MM:ss.sss" with optional "+0000" suffix.
  if (text.size() < 23 || text[10] != 'T' || text[13] != ':' ||
      text[16] != ':' || text[19] != '.') {
    return false;
  }
  Date date;
  if (!ParseDate(text.substr(0, 10), &date)) return false;
  int32_t hh = 0, mm = 0, ss = 0, ms = 0;
  if (!ParseFixedInt(text.data() + 11, 2, &hh) ||
      !ParseFixedInt(text.data() + 14, 2, &mm) ||
      !ParseFixedInt(text.data() + 17, 2, &ss) ||
      !ParseFixedInt(text.data() + 20, 3, &ms)) {
    return false;
  }
  if (hh > 23 || mm > 59 || ss > 59) return false;
  *out = DateTimeFromDate(date) + hh * kMillisPerHour + mm * kMillisPerMinute +
         ss * kMillisPerSecond + ms;
  return true;
}

}  // namespace snb::core

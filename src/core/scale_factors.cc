#include "core/scale_factors.h"

namespace snb::core {

const std::vector<ScaleFactorInfo>& AllScaleFactors() {
  // Paper rows from spec Table 2.12; micro rows ("0.001", "0.003", "0.01",
  // "0.03") scale the person count linearly below SF 0.1 for test use.
  static const std::vector<ScaleFactorInfo>* kTable =
      new std::vector<ScaleFactorInfo>{
          {"0.001", 0.001, 150, 0, 0},
          {"0.003", 0.003, 300, 0, 0},
          {"0.01", 0.01, 500, 0, 0},
          {"0.03", 0.03, 900, 0, 0},
          {"0.1", 0.1, 1500, 327'600, 1'500'000},
          {"0.3", 0.3, 3500, 908'000, 4'600'000},
          {"1", 1, 11'000, 3'200'000, 17'300'000},
          {"3", 3, 27'000, 9'300'000, 52'700'000},
          {"10", 10, 73'000, 30'000'000, 176'600'000},
          {"30", 30, 182'000, 88'800'000, 540'900'000},
          {"100", 100, 499'000, 282'600'000, 1'800'000'000},
          {"300", 300, 1'250'000, 817'300'000, 5'300'000'000},
          {"1000", 1000, 3'600'000, 2'700'000'000, 17'000'000'000},
      };
  return *kTable;
}

std::optional<ScaleFactorInfo> FindScaleFactor(const std::string& name) {
  for (const ScaleFactorInfo& info : AllScaleFactors()) {
    if (info.name == name) return info;
  }
  return std::nullopt;
}

const std::vector<InteractiveFrequencies>& AllInteractiveFrequencies() {
  // Spec Table B.1 verbatim.
  static const std::vector<InteractiveFrequencies>* kTable =
      new std::vector<InteractiveFrequencies>{
          {"1", {26, 37, 69, 36, 57, 129, 87, 45, 157, 30, 16, 44, 19, 49}},
          {"3", {26, 37, 79, 36, 61, 172, 72, 27, 209, 32, 17, 44, 19, 49}},
          {"10", {26, 37, 92, 36, 66, 236, 54, 15, 287, 35, 19, 44, 19, 49}},
          {"30", {26, 37, 106, 36, 72, 316, 48, 9, 384, 37, 20, 44, 19, 49}},
          {"100", {26, 37, 123, 36, 78, 434, 38, 5, 527, 40, 22, 44, 19, 49}},
          {"300", {26, 37, 142, 36, 84, 580, 32, 3, 705, 44, 24, 44, 19, 49}},
          {"1000", {26, 37, 165, 36, 91, 796, 25, 1, 967, 47, 26, 44, 19, 49}},
      };
  return *kTable;
}

InteractiveFrequencies FrequenciesForScaleFactor(const std::string& name) {
  for (const InteractiveFrequencies& row : AllInteractiveFrequencies()) {
    if (row.sf_name == name) return row;
  }
  InteractiveFrequencies fallback = AllInteractiveFrequencies().front();
  fallback.sf_name = name;
  return fallback;
}

}  // namespace snb::core

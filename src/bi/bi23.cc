#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi23Row> RunBi23(const Graph& graph, const Bi23Params& params) {
  using internal::CountryIdx;
  std::vector<Bi23Row> rows;
  const uint32_t home = CountryIdx(graph, params.country);
  if (home == storage::kNoIdx) return rows;

  // (destination country, month) → count.
  std::unordered_map<uint64_t, int64_t> counts;
  CancelPoller poll;
  graph.ForEachMessage([&](uint32_t msg) {
    poll.Tick();
    uint32_t creator = graph.MessageCreator(msg);
    if (graph.PersonCountry(creator) != home) return;
    uint32_t dest = graph.MessageCountry(msg);
    if (dest == home) return;
    int32_t month = core::Month(graph.MessageCreationDate(msg));
    ++counts[internal::PairKey(dest, static_cast<uint32_t>(month))];
  });

  rows.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    uint32_t dest = static_cast<uint32_t>(key >> 32);
    int32_t month = static_cast<int32_t>(static_cast<uint32_t>(key));
    rows.push_back({count, graph.PlaceAt(dest).name, month});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi23Row& a, const Bi23Row& b) {
        if (a.message_count != b.message_count) {
          return a.message_count > b.message_count;
        }
        if (a.destination != b.destination) {
          return a.destination < b.destination;
        }
        return a.month < b.month;
      },
      100);
  return rows;
}

}  // namespace snb::bi

#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi10Row> RunBi10(const Graph& graph, const Bi10Params& params) {
  std::vector<Bi10Row> rows;
  const uint32_t tag = graph.TagByName(params.tag);
  if (tag == storage::kNoIdx) return rows;
  const core::DateTime after = core::DateTimeFromDate(params.date);

  CancelPoller poll;
  std::unordered_map<uint32_t, int64_t> score;
  graph.TagPersons().ForEach(tag, [&](uint32_t p) { score[p] += 100; });
  auto handle = [&](uint32_t msg) {
    poll.Tick();
    if (graph.MessageCreationDate(msg) > after) {
      ++score[graph.MessageCreator(msg)];
    }
  };
  graph.TagPosts().ForEach(
      tag, [&](uint32_t post) { handle(Graph::MessageOfPost(post)); });
  graph.TagComments().ForEach(tag, [&](uint32_t comment) {
    handle(Graph::MessageOfComment(comment));
  });

  // friendsScore: scatter each scored person's score to their friends.
  std::unordered_map<uint32_t, int64_t> friends_score;
  for (const auto& [person, s] : score) {
    graph.Knows().ForEach(person, [&, s = s](uint32_t f) {
      poll.Tick();
      friends_score[f] += s;
    });
  }

  rows.reserve(score.size() + friends_score.size());
  auto emit = [&](uint32_t person) {
    auto s = score.find(person);
    auto fs = friends_score.find(person);
    rows.push_back({graph.PersonAt(person).id,
                    s == score.end() ? 0 : s->second,
                    fs == friends_score.end() ? 0 : fs->second});
  };
  for (const auto& [person, s] : score) emit(person);
  for (const auto& [person, fs] : friends_score) {
    if (!score.contains(person)) emit(person);
  }

  engine::SortAndLimit(
      rows,
      [](const Bi10Row& a, const Bi10Row& b) {
        int64_t ta = a.score + a.friends_score;
        int64_t tb = b.score + b.friends_score;
        if (ta != tb) return ta > tb;
        return a.person_id < b.person_id;
      },
      100);
  return rows;
}

}  // namespace snb::bi

#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi11Row> RunBi11(const Graph& graph, const Bi11Params& params) {
  using internal::CountryIdx;
  std::vector<Bi11Row> rows;
  const uint32_t country = CountryIdx(graph, params.country);
  if (country == storage::kNoIdx) return rows;

  struct Agg {
    int64_t replies = 0;
    int64_t likes = 0;
  };
  std::unordered_map<uint64_t, Agg> groups;  // (person, tag) packed

  CancelPoller poll;
  graph.CountryPersons().ForEach(country, [&](uint32_t person) {
    graph.PersonComments().ForEach(person, [&](uint32_t comment) {
      poll.Tick();
      uint32_t parent = graph.CommentReplyOf(comment);
      if (!Graph::IsPost(parent)) return;  // direct replies to posts only
      uint32_t post = Graph::AsPost(parent);

      // No tag in common with the parent post.
      bool overlap = false;
      graph.CommentTags().ForEach(comment, [&](uint32_t ct) {
        graph.PostTags().ForEach(post, [&](uint32_t pt) {
          if (ct == pt) overlap = true;
        });
      });
      if (overlap) return;

      // No blacklisted word in the content.
      const std::string& content = graph.CommentAt(comment).content;
      for (const std::string& word : params.blacklist) {
        if (!word.empty() && content.find(word) != std::string::npos) return;
      }

      int64_t likes =
          static_cast<int64_t>(graph.CommentLikers().Degree(comment));
      graph.CommentTags().ForEach(comment, [&](uint32_t tag) {
        Agg& agg = groups[internal::PairKey(person, tag)];
        ++agg.replies;
        agg.likes += likes;
      });
    });
  });

  rows.reserve(groups.size());
  for (const auto& [key, agg] : groups) {
    uint32_t person = static_cast<uint32_t>(key >> 32);
    uint32_t tag = static_cast<uint32_t>(key);
    rows.push_back({graph.PersonAt(person).id, graph.TagAt(tag).name,
                    agg.likes, agg.replies});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi11Row& a, const Bi11Row& b) {
        if (a.like_count != b.like_count) return a.like_count > b.like_count;
        if (a.person_id != b.person_id) return a.person_id < b.person_id;
        return a.tag < b.tag;
      },
      100);
  return rows;
}

}  // namespace snb::bi

// Naive engine, BI 21–25.

#include <algorithm>
#include <map>
#include <unordered_map>
#include <functional>
#include <unordered_set>

#include "bi/naive.h"
#include "bi/naive_common.h"

namespace snb::bi::naive {

using internal::kNoIdx;

std::vector<Bi21Row> RunBi21(const Graph& graph, const Bi21Params& params) {
  uint32_t country = graph.PlaceByName(params.country);
  std::vector<Bi21Row> rows;
  if (country == kNoIdx) return rows;
  const core::DateTime end = core::DateTimeFromDate(params.end_date);

  std::vector<int64_t> messages(graph.NumPersons(), 0);
  graph.ForEachMessage([&](uint32_t msg) {
    if (graph.MessageCreationDate(msg) < end) {
      ++messages[graph.MessageCreator(msg)];
    }
  });
  std::vector<bool> zombie(graph.NumPersons(), false);
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    core::DateTime created = graph.PersonAt(p).creation_date;
    if (created >= end) continue;
    if (messages[p] < core::MonthsSpanInclusive(created, end)) {
      zombie[p] = true;
    }
  }

  struct Agg {
    int64_t zombie_likes = 0, total_likes = 0;
  };
  std::unordered_map<uint32_t, Agg> by_author;
  internal::ForEachLike(graph,
                        [&](uint32_t liker, uint32_t msg, core::DateTime) {
    if (graph.MessageCreationDate(msg) >= end) return;
    if (graph.PersonAt(liker).creation_date >= end) return;
    uint32_t author = graph.MessageCreator(msg);
    if (!zombie[author]) return;
    if (internal::PersonCountrySlow(graph, author) != country) return;
    Agg& agg = by_author[author];
    ++agg.total_likes;
    if (zombie[liker]) ++agg.zombie_likes;
  });

  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (!zombie[p]) continue;
    if (internal::PersonCountrySlow(graph, p) != country) continue;
    auto it = by_author.find(p);
    int64_t zl = it == by_author.end() ? 0 : it->second.zombie_likes;
    int64_t tl = it == by_author.end() ? 0 : it->second.total_likes;
    double score =
        tl == 0 ? 0.0 : static_cast<double>(zl) / static_cast<double>(tl);
    rows.push_back({graph.PersonAt(p).id, zl, tl, score});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi21Row& a, const Bi21Row& b) {
    if (a.zombie_score != b.zombie_score) {
      return a.zombie_score > b.zombie_score;
    }
    return a.zombie_id < b.zombie_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi22Row> RunBi22(const Graph& graph, const Bi22Params& params) {
  uint32_t c1 = graph.PlaceByName(params.country1);
  uint32_t c2 = graph.PlaceByName(params.country2);
  std::vector<Bi22Row> rows;
  if (c1 == kNoIdx || c2 == kNoIdx) return rows;

  std::vector<bool> in1(graph.NumPersons()), in2(graph.NumPersons());
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    uint32_t country = internal::PersonCountrySlow(graph, p);
    in1[p] = country == c1;
    in2[p] = country == c2;
  }
  std::map<std::pair<uint32_t, uint32_t>, int64_t> score;
  auto credit = [&](uint32_t a, uint32_t b, int64_t points) {
    if (in1[a] && in2[b] && a != b) score[{a, b}] += points;
    if (in1[b] && in2[a] && a != b) score[{b, a}] += points;
  };
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    uint32_t replier = graph.PersonIdx(graph.CommentAt(c).creator);
    uint32_t target =
        graph.MessageCreator(internal::ReplyOfSlow(graph, c));
    credit(replier, target, 4);
  }
  internal::ForEachLike(graph,
                        [&](uint32_t liker, uint32_t msg, core::DateTime) {
    credit(liker, graph.MessageCreator(msg), 1);
  });
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    if (in1[a] && in2[b]) score[{a, b}] += 10;
    if (in1[b] && in2[a]) score[{b, a}] += 10;
  });

  for (const auto& [pair, s] : score) {
    rows.push_back({graph.PersonAt(pair.first).id,
                    graph.PersonAt(pair.second).id,
                    graph.PlaceAt(graph.PlaceIdx(
                                      graph.PersonAt(pair.first).city))
                        .name,
                    s});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi22Row& a, const Bi22Row& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.person1_id != b.person1_id) return a.person1_id < b.person1_id;
    return a.person2_id < b.person2_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi23Row> RunBi23(const Graph& graph, const Bi23Params& params) {
  uint32_t home = graph.PlaceByName(params.country);
  std::vector<Bi23Row> rows;
  if (home == kNoIdx) return rows;

  std::map<std::pair<std::string, int32_t>, int64_t> counts;
  graph.ForEachMessage([&](uint32_t msg) {
    uint32_t creator = graph.MessageCreator(msg);
    if (internal::PersonCountrySlow(graph, creator) != home) return;
    uint32_t dest = internal::MessageCountrySlow(graph, msg);
    if (dest == home) return;
    ++counts[{graph.PlaceAt(dest).name,
              core::Month(graph.MessageCreationDate(msg))}];
  });
  for (const auto& [key, count] : counts) {
    rows.push_back({count, key.first, key.second});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi23Row& a, const Bi23Row& b) {
    if (a.message_count != b.message_count) {
      return a.message_count > b.message_count;
    }
    if (a.destination != b.destination) return a.destination < b.destination;
    return a.month < b.month;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi24Row> RunBi24(const Graph& graph, const Bi24Params& params) {
  std::vector<bool> class_tags =
      internal::TagsOfClassSlow(graph, params.tag_class, false);

  std::unordered_map<uint32_t, int64_t> like_counts;
  internal::ForEachLike(
      graph, [&](uint32_t, uint32_t msg, core::DateTime) { ++like_counts[msg]; });

  struct Agg {
    int64_t messages = 0, likes = 0;
  };
  std::map<std::tuple<int32_t, int32_t, std::string>, Agg> groups;
  graph.ForEachMessage([&](uint32_t msg) {
    bool match = false;
    for (uint32_t t : internal::MessageTagsSlow(graph, msg)) {
      if (class_tags[t]) match = true;
    }
    if (!match) return;
    uint32_t country = internal::MessageCountrySlow(graph, msg);
    core::Id continent_id = graph.PlaceAt(country).part_of;
    std::string continent =
        continent_id == core::kNoId
            ? std::string()
            : graph.PlaceAt(graph.PlaceIdx(continent_id)).name;
    core::DateTime created = graph.MessageCreationDate(msg);
    Agg& agg =
        groups[{core::Year(created), core::Month(created), continent}];
    ++agg.messages;
    auto it = like_counts.find(msg);
    if (it != like_counts.end()) agg.likes += it->second;
  });

  std::vector<Bi24Row> rows;
  for (const auto& [key, agg] : groups) {
    rows.push_back({agg.messages, agg.likes, std::get<0>(key),
                    std::get<1>(key), std::get<2>(key)});
    if (rows.size() == 100) break;
  }
  return rows;
}

std::vector<Bi25Row> RunBi25(const Graph& graph, const Bi25Params& params) {
  std::vector<Bi25Row> rows;
  uint32_t p1 = graph.PersonIdx(params.person1_id);
  uint32_t p2 = graph.PersonIdx(params.person2_id);
  if (p1 == kNoIdx || p2 == kNoIdx) return rows;
  const core::DateTime start = core::DateTimeFromDate(params.start_date);
  const core::DateTime end =
      core::DateTimeFromDate(params.end_date) + core::kMillisPerDay;

  // Edge list + layered BFS + DFS path enumeration, all without adjacency.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    edges.emplace_back(a, b);
  });
  std::vector<int32_t> dist(graph.NumPersons(), -1);
  dist[p1] = 0;
  for (int32_t depth = 1;; ++depth) {
    bool changed = false;
    for (const auto& [a, b] : edges) {
      if (dist[a] == depth - 1 && dist[b] < 0) {
        dist[b] = depth;
        changed = true;
      }
      if (dist[b] == depth - 1 && dist[a] < 0) {
        dist[a] = depth;
        changed = true;
      }
    }
    if (!changed || dist[p2] >= 0) break;
  }
  if (dist[p2] < 0) {
    if (p1 == p2) {
      // Single trivial path.
    } else {
      return rows;
    }
  }

  // Enumerate paths backwards from p2.
  std::vector<std::vector<uint32_t>> paths;
  std::vector<uint32_t> current{p2};
  auto predecessors = [&](uint32_t node) {
    std::vector<uint32_t> preds;
    for (const auto& [a, b] : edges) {
      if (a == node && dist[b] == dist[node] - 1) preds.push_back(b);
      if (b == node && dist[a] == dist[node] - 1) preds.push_back(a);
    }
    std::sort(preds.begin(), preds.end());
    return preds;
  };
  std::function<void(uint32_t)> dfs = [&](uint32_t node) {
    if (node == p1) {
      std::vector<uint32_t> path(current.rbegin(), current.rend());
      paths.push_back(std::move(path));
      return;
    }
    for (uint32_t pred : predecessors(node)) {
      current.push_back(pred);
      dfs(pred);
      current.pop_back();
    }
  };
  if (p1 == p2) {
    paths.push_back({p1});
  } else {
    dfs(p2);
  }

  auto forum_in_window = [&](uint32_t msg) {
    uint32_t post = Graph::IsPost(msg)
                        ? Graph::AsPost(msg)
                        : internal::RootPostSlow(graph, Graph::AsComment(msg));
    uint32_t forum = graph.ForumIdx(graph.PostAt(post).forum);
    core::DateTime created = graph.ForumAt(forum).creation_date;
    return created >= start && created < end;
  };
  auto pair_weight = [&](uint32_t a, uint32_t b) {
    double w = 0;
    for (uint32_t c = 0; c < graph.NumComments(); ++c) {
      uint32_t replier = graph.PersonIdx(graph.CommentAt(c).creator);
      if (replier != a && replier != b) continue;
      uint32_t parent = internal::ReplyOfSlow(graph, c);
      uint32_t author = graph.MessageCreator(parent);
      if (!((replier == a && author == b) || (replier == b && author == a))) {
        continue;
      }
      if (!forum_in_window(parent)) continue;
      w += Graph::IsPost(parent) ? 1.0 : 0.5;
    }
    return w;
  };

  for (const std::vector<uint32_t>& path : paths) {
    Bi25Row row;
    for (uint32_t p : path) row.person_ids.push_back(graph.PersonAt(p).id);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      row.weight += pair_weight(path[i], path[i + 1]);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Bi25Row& a, const Bi25Row& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.person_ids < b.person_ids;
  });
  return rows;
}

}  // namespace snb::bi::naive

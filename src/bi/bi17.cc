#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"

namespace snb::bi {

std::vector<Bi17Row> RunBi17(const Graph& graph, const Bi17Params& params) {
  using internal::CountryIdx;
  using internal::PersonsOfCountry;
  const uint32_t country = CountryIdx(graph, params.country);
  if (country == storage::kNoIdx) return {{0}};
  const std::vector<bool> local = PersonsOfCountry(graph, country);

  // Triangle counting by edge iteration with a marked-neighbour bitmap:
  // for each a (ascending), mark a's in-country neighbours > a, then for
  // each such neighbour b scan b's neighbours c > b for marks. Each
  // triangle {a<b<c} is found exactly once.
  std::vector<bool> marked(graph.NumPersons(), false);
  int64_t triangles = 0;
  CancelPoller poll(256);  // per-person work is itself a neighbourhood scan
  for (uint32_t a = 0; a < graph.NumPersons(); ++a) {
    poll.Tick();
    if (!local[a]) continue;
    std::vector<uint32_t> bs;
    graph.Knows().ForEach(a, [&](uint32_t b) {
      if (b > a && local[b]) {
        marked[b] = true;
        bs.push_back(b);
      }
    });
    for (uint32_t b : bs) {
      graph.Knows().ForEach(b, [&](uint32_t c) {
        if (c > b && marked[c]) ++triangles;
      });
    }
    for (uint32_t b : bs) marked[b] = false;
  }
  return {{triangles}};
}

}  // namespace snb::bi

// Naive engine, BI 6–10.

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "bi/naive.h"
#include "bi/naive_common.h"

namespace snb::bi::naive {

using internal::kNoIdx;

namespace {

/// True when the message's record carries the given tag.
bool MessageHasTag(const Graph& graph, uint32_t msg, uint32_t tag) {
  for (uint32_t t : internal::MessageTagsSlow(graph, msg)) {
    if (t == tag) return true;
  }
  return false;
}

/// Likes received per message, from one scan of the likes relation.
std::unordered_map<uint32_t, int64_t> LikeCounts(const Graph& graph) {
  std::unordered_map<uint32_t, int64_t> counts;
  internal::ForEachLike(
      graph, [&](uint32_t, uint32_t msg, core::DateTime) { ++counts[msg]; });
  return counts;
}

}  // namespace

std::vector<Bi6Row> RunBi6(const Graph& graph, const Bi6Params& params) {
  std::vector<Bi6Row> rows;
  uint32_t tag = graph.TagByName(params.tag);
  if (tag == kNoIdx) return rows;
  std::unordered_map<uint32_t, int64_t> like_counts = LikeCounts(graph);

  // Direct reply counts per message from one comment scan.
  std::unordered_map<uint32_t, int64_t> reply_counts;
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    ++reply_counts[internal::ReplyOfSlow(graph, c)];
  }

  struct Agg {
    int64_t messages = 0, replies = 0, likes = 0;
  };
  std::unordered_map<uint32_t, Agg> by_person;
  graph.ForEachMessage([&](uint32_t msg) {
    if (!MessageHasTag(graph, msg, tag)) return;
    uint32_t creator = graph.MessageCreator(msg);
    Agg& a = by_person[creator];
    ++a.messages;
    auto lk = like_counts.find(msg);
    if (lk != like_counts.end()) a.likes += lk->second;
    auto rp = reply_counts.find(msg);
    if (rp != reply_counts.end()) a.replies += rp->second;
  });

  for (const auto& [person, a] : by_person) {
    rows.push_back({graph.PersonAt(person).id, a.replies, a.likes, a.messages,
                    a.messages + 2 * a.replies + 10 * a.likes});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi6Row& a, const Bi6Row& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.person_id < b.person_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi7Row> RunBi7(const Graph& graph, const Bi7Params& params) {
  std::vector<Bi7Row> rows;
  uint32_t tag = graph.TagByName(params.tag);
  if (tag == kNoIdx) return rows;

  // popularity(q) = likes received by q across all messages; one like scan.
  std::unordered_map<uint32_t, int64_t> popularity;
  internal::ForEachLike(graph, [&](uint32_t, uint32_t msg, core::DateTime) {
    ++popularity[graph.MessageCreator(msg)];
  });

  // Every author of a tag-carrying message appears, even with no likers
  // (zero authority) — OPTIONAL MATCH semantics.
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> likers_of_author;
  graph.ForEachMessage([&](uint32_t msg) {
    if (MessageHasTag(graph, msg, tag)) {
      likers_of_author[graph.MessageCreator(msg)];
    }
  });
  internal::ForEachLike(graph,
                        [&](uint32_t liker, uint32_t msg, core::DateTime) {
    if (!MessageHasTag(graph, msg, tag)) return;
    likers_of_author[graph.MessageCreator(msg)].insert(liker);
  });

  for (const auto& [author, likers] : likers_of_author) {
    int64_t score = 0;
    for (uint32_t q : likers) {
      auto it = popularity.find(q);
      if (it != popularity.end()) score += it->second;
    }
    rows.push_back({graph.PersonAt(author).id, score});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi7Row& a, const Bi7Row& b) {
    if (a.authority_score != b.authority_score) {
      return a.authority_score > b.authority_score;
    }
    return a.person_id < b.person_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi8Row> RunBi8(const Graph& graph, const Bi8Params& params) {
  std::vector<Bi8Row> rows;
  uint32_t tag = graph.TagByName(params.tag);
  if (tag == kNoIdx) return rows;

  std::unordered_map<std::string, int64_t> counts;
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    const core::Comment& comment = graph.CommentAt(c);
    if (comment.reply_of_post == core::kNoId) continue;
    uint32_t post = graph.PostIdx(comment.reply_of_post);
    if (!MessageHasTag(graph, Graph::MessageOfPost(post), tag)) continue;
    for (uint32_t t :
         internal::MessageTagsSlow(graph, Graph::MessageOfComment(c))) {
      if (t != tag) ++counts[graph.TagAt(t).name];
    }
  }
  for (const auto& [name, count] : counts) rows.push_back({name, count});
  std::sort(rows.begin(), rows.end(), [](const Bi8Row& a, const Bi8Row& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.related_tag < b.related_tag;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi9Row> RunBi9(const Graph& graph, const Bi9Params& params) {
  std::vector<bool> class1 =
      internal::TagsOfClassSlow(graph, params.tag_class1, false);
  std::vector<bool> class2 =
      internal::TagsOfClassSlow(graph, params.tag_class2, false);

  std::vector<int64_t> member_count(graph.NumForums(), 0);
  internal::ForEachMembership(graph,
                              [&](uint32_t forum, uint32_t, core::DateTime) {
                                ++member_count[forum];
                              });

  std::vector<int64_t> count1(graph.NumForums(), 0),
      count2(graph.NumForums(), 0);
  for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
    bool in1 = false, in2 = false;
    for (uint32_t tag :
         internal::MessageTagsSlow(graph, Graph::MessageOfPost(post))) {
      if (class1[tag]) in1 = true;
      if (class2[tag]) in2 = true;
    }
    uint32_t forum = graph.ForumIdx(graph.PostAt(post).forum);
    if (in1) ++count1[forum];
    if (in2) ++count2[forum];
  }

  std::vector<Bi9Row> rows;
  for (uint32_t forum = 0; forum < graph.NumForums(); ++forum) {
    if (member_count[forum] <= params.threshold) continue;
    if (count1[forum] == 0 && count2[forum] == 0) continue;
    rows.push_back({graph.ForumAt(forum).id, count1[forum], count2[forum]});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi9Row& a, const Bi9Row& b) {
    if (a.count1 != b.count1) return a.count1 > b.count1;
    if (a.count2 != b.count2) return a.count2 > b.count2;
    return a.forum_id < b.forum_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi10Row> RunBi10(const Graph& graph, const Bi10Params& params) {
  std::vector<Bi10Row> rows;
  uint32_t tag = graph.TagByName(params.tag);
  if (tag == kNoIdx) return rows;
  const core::DateTime after = core::DateTimeFromDate(params.date);

  std::unordered_map<uint32_t, int64_t> score;
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    for (core::Id t : graph.PersonAt(p).interests) {
      if (graph.TagIdx(t) == tag) score[p] += 100;
    }
  }
  graph.ForEachMessage([&](uint32_t msg) {
    if (graph.MessageCreationDate(msg) <= after) return;
    if (!MessageHasTag(graph, msg, tag)) return;
    ++score[graph.MessageCreator(msg)];
  });

  std::unordered_map<uint32_t, int64_t> friends_score;
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    auto sa = score.find(a);
    auto sb = score.find(b);
    if (sb != score.end()) friends_score[a] += sb->second;
    if (sa != score.end()) friends_score[b] += sa->second;
  });

  std::unordered_set<uint32_t> emitted;
  auto emit = [&](uint32_t person) {
    if (!emitted.insert(person).second) return;
    auto s = score.find(person);
    auto fs = friends_score.find(person);
    rows.push_back({graph.PersonAt(person).id,
                    s == score.end() ? 0 : s->second,
                    fs == friends_score.end() ? 0 : fs->second});
  };
  for (const auto& [p, s] : score) emit(p);
  for (const auto& [p, fs] : friends_score) emit(p);

  std::sort(rows.begin(), rows.end(), [](const Bi10Row& a, const Bi10Row& b) {
    int64_t ta = a.score + a.friends_score;
    int64_t tb = b.score + b.friends_score;
    if (ta != tb) return ta > tb;
    return a.person_id < b.person_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

}  // namespace snb::bi::naive

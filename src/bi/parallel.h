// Morsel-driven intra-query parallel variants of the scan-dominated BI
// queries (choke point CP-1.2: high-cardinality group-by parallelized as
// per-executor partial aggregation followed by a deterministic
// re-aggregation on the caller).
//
// Every variant is built on engine::ParallelAggregate over either the
// creation-date message index (date-filtered scans, CP-2.2/2.3 pruning
// included) or a materialized domain (persons of a country, messages of a
// tag). The ambient bi::CancelToken of the calling thread is re-installed
// on every executor and polled once per morsel, so deadline enforcement
// works exactly as in the sequential engine. Results are bit-identical to
// the sequential engine at any thread count; tests/parallel_test.cc
// asserts this for every query below against both reference engines.
//
// The calling thread always participates in the morsel loop, so these are
// safe to invoke from a scheduler worker that itself runs on `pool`.

#ifndef SNB_BI_PARALLEL_H_
#define SNB_BI_PARALLEL_H_

#include "bi/bi.h"
#include "util/thread_pool.h"

namespace snb::bi::parallel {

/// BI 1: date-pruned message scan (index range [min, date)), partial
/// (year, isComment, lengthCategory) maps merged on the caller.
std::vector<Bi1Row> RunBi1(const Graph& graph, const Bi1Params& params,
                           util::ThreadPool& pool);

/// BI 2: persons of the two countries as the parallel domain; per-person
/// message expansion uses the PersonIsFemale hot column.
std::vector<Bi2Row> RunBi2(const Graph& graph, const Bi2Params& params,
                           util::ThreadPool& pool);

/// BI 3: date-pruned scan of the two-month window [m1, m3); partial
/// per-tag count columns summed element-wise.
std::vector<Bi3Row> RunBi3(const Graph& graph, const Bi3Params& params,
                           util::ThreadPool& pool);

/// BI 6: messages of the parameter tag as the parallel domain; partial
/// per-person (messages, replies, likes) aggregates.
std::vector<Bi6Row> RunBi6(const Graph& graph, const Bi6Params& params,
                           util::ThreadPool& pool);

/// BI 12: date-pruned scan of (date, ∞); per-executor top-k with the
/// pushdown filter, k-way merged under the total tie-break order.
std::vector<Bi12Row> RunBi12(const Graph& graph, const Bi12Params& params,
                             util::ThreadPool& pool);

/// BI 13: full message scan; partial (year, month) → tag → count maps.
std::vector<Bi13Row> RunBi13(const Graph& graph, const Bi13Params& params,
                             util::ThreadPool& pool);

/// BI 14: two morsel passes over the window [begin, end]: posts fill a
/// shared thread-root bitmap (disjoint writes) and credit creators, then
/// comments probe the bitmap.
std::vector<Bi14Row> RunBi14(const Graph& graph, const Bi14Params& params,
                             util::ThreadPool& pool);

/// BI 17: person domain with per-executor marked-neighbour bitmaps; small
/// morsels because each element is itself a neighbourhood scan.
std::vector<Bi17Row> RunBi17(const Graph& graph, const Bi17Params& params,
                             util::ThreadPool& pool);

/// BI 20: per class, a morsel-parallel count over the full message scan
/// (parallel even for a single-class parameter list, unlike the old
/// one-task-per-class variant).
std::vector<Bi20Row> RunBi20(const Graph& graph, const Bi20Params& params,
                             util::ThreadPool& pool);

/// BI 23: full message scan; partial (destination, month) count maps.
std::vector<Bi23Row> RunBi23(const Graph& graph, const Bi23Params& params,
                             util::ThreadPool& pool);

/// BI 24: full message scan; partial (year, month, continent) aggregates.
std::vector<Bi24Row> RunBi24(const Graph& graph, const Bi24Params& params,
                             util::ThreadPool& pool);

}  // namespace snb::bi::parallel

#endif  // SNB_BI_PARALLEL_H_

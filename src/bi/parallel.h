// Intra-query parallel variants: choke point CP-1.2 (high-cardinality
// group-by parallelization through per-thread partial aggregation followed
// by re-aggregation) demonstrated on the scan-dominated queries BI 1 and
// BI 20. Results are bit-identical to the sequential engine.

#ifndef SNB_BI_PARALLEL_H_
#define SNB_BI_PARALLEL_H_

#include "bi/bi.h"
#include "util/thread_pool.h"

namespace snb::bi::parallel {

/// BI 1 with the message scan partitioned across the pool; each worker
/// builds a partial (year, isComment, lengthCategory) aggregation that is
/// merged on the caller thread (CP-1.2).
std::vector<Bi1Row> RunBi1(const Graph& graph, const Bi1Params& params,
                           util::ThreadPool& pool);

/// BI 20 with one task per tag class (independent rollups — embarrassingly
/// parallel over the UNWIND of the parameter list).
std::vector<Bi20Row> RunBi20(const Graph& graph, const Bi20Params& params,
                             util::ThreadPool& pool);

}  // namespace snb::bi::parallel

#endif  // SNB_BI_PARALLEL_H_

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi21Row> RunBi21(const Graph& graph, const Bi21Params& params) {
  using internal::CountryIdx;
  std::vector<Bi21Row> rows;
  const uint32_t country = CountryIdx(graph, params.country);
  if (country == storage::kNoIdx) return rows;
  const core::DateTime end = core::DateTimeFromDate(params.end_date);

  // Per-person message counts before endDate (needed for *all* persons:
  // likers from any country can be zombies).
  CancelPoller poll;
  std::vector<int64_t> messages(graph.NumPersons(), 0);
  for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
    poll.Tick();
    if (graph.PostCreation(post) < end) ++messages[graph.PostCreator(post)];
  }
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    poll.Tick();
    if (graph.CommentCreation(c) < end) ++messages[graph.CommentCreator(c)];
  }

  // Zombie predicate: created before endDate and < 1 message per month on
  // average (partial months on both ends count — MonthsSpanInclusive).
  std::vector<bool> zombie(graph.NumPersons(), false);
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    core::DateTime created = graph.PersonCreation(p);
    if (created >= end) continue;
    int64_t months = core::MonthsSpanInclusive(created, end);
    if (messages[p] < months) zombie[p] = true;
  }

  graph.CountryPersons().ForEach(country, [&](uint32_t p) {
    if (!zombie[p]) return;
    int64_t zombie_likes = 0, total_likes = 0;
    auto count_likes = [&](const storage::AdjacencyList& likers,
                           uint32_t message) {
      likers.ForEachDated(message, [&](uint32_t liker, core::DateTime) {
        poll.Tick();
        if (graph.PersonCreation(liker) >= end) return;
        ++total_likes;
        if (zombie[liker]) ++zombie_likes;
      });
    };
    graph.PersonPosts().ForEach(p, [&](uint32_t post) {
      if (graph.PostCreation(post) < end) {
        count_likes(graph.PostLikers(), post);
      }
    });
    graph.PersonComments().ForEach(p, [&](uint32_t comment) {
      if (graph.CommentCreation(comment) < end) {
        count_likes(graph.CommentLikers(), comment);
      }
    });
    double score = total_likes == 0 ? 0.0
                                    : static_cast<double>(zombie_likes) /
                                          static_cast<double>(total_likes);
    rows.push_back({graph.PersonAt(p).id, zombie_likes, total_likes, score});
  });

  engine::SortAndLimit(
      rows,
      [](const Bi21Row& a, const Bi21Row& b) {
        if (a.zombie_score != b.zombie_score) {
          return a.zombie_score > b.zombie_score;
        }
        return a.zombie_id < b.zombie_id;
      },
      100);
  return rows;
}

}  // namespace snb::bi

// Internal helpers shared by the BI query implementations. Not part of the
// public API.

#ifndef SNB_BI_COMMON_H_
#define SNB_BI_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/graph.h"

namespace snb::bi::internal {

using storage::Graph;
using storage::kNoIdx;

/// Tag bitmap (size NumTags) of tags whose class is `class_name`;
/// `transitive` includes descendant classes. All-false when the class is
/// unknown.
inline std::vector<bool> TagsOfClass(const Graph& graph,
                                     const std::string& class_name,
                                     bool transitive) {
  std::vector<bool> mask(graph.NumTags(), false);
  uint32_t root = graph.TagClassByName(class_name);
  if (root == kNoIdx) return mask;
  std::vector<uint32_t> classes{root};
  if (transitive) {
    for (size_t i = 0; i < classes.size(); ++i) {
      graph.TagClassChildren().ForEach(
          classes[i], [&](uint32_t child) { classes.push_back(child); });
    }
  }
  for (uint32_t tc : classes) {
    graph.TagClassTags().ForEach(tc, [&](uint32_t t) { mask[t] = true; });
  }
  return mask;
}

/// Country place index by name; kNoIdx when absent or not a country.
inline uint32_t CountryIdx(const Graph& graph, const std::string& name) {
  uint32_t place = graph.PlaceByName(name);
  if (place == kNoIdx ||
      graph.PlaceAt(place).type != core::PlaceType::kCountry) {
    return kNoIdx;
  }
  return place;
}

/// Bitmap (size NumPersons) of persons located in the given country place.
inline std::vector<bool> PersonsOfCountry(const Graph& graph,
                                          uint32_t country) {
  std::vector<bool> mask(graph.NumPersons(), false);
  if (country == kNoIdx) return mask;
  graph.CountryPersons().ForEach(country,
                                 [&](uint32_t p) { mask[p] = true; });
  return mask;
}

/// Continent place index of a country (kNoIdx-safe).
inline uint32_t ContinentOfCountry(const Graph& graph, uint32_t country) {
  return country == kNoIdx ? kNoIdx : graph.PlacePartOf(country);
}

/// Likes a message has received over live like edges (equal to the raw
/// liker degree on graphs without tombstones).
inline int64_t MessageLikeCount(const Graph& graph, uint32_t msg) {
  return graph.LiveLikeCount(msg);
}

/// Forum of a message: a post's container, a comment's thread-root's
/// container — one probe of the materialized endpoint column either way.
inline uint32_t ForumOfMessage(const Graph& graph, uint32_t msg) {
  return graph.MessageForum(msg);
}

/// Packs an ordered person pair into a hash key.
inline uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// BI 1's message length buckets: 0:[0,40) 1:[40,80) 2:[80,160) 3:[160,∞).
inline int32_t Bi1LengthCategory(int32_t length) {
  if (length < 40) return 0;   // short
  if (length < 80) return 1;   // one-liner
  if (length < 160) return 2;  // tweet
  return 3;                    // long
}

/// BI 1's group key with its output order (year ↓, posts first, category ↑).
struct Bi1Key {
  int32_t year;
  bool is_comment;
  int32_t category;
  bool operator<(const Bi1Key& o) const {
    if (year != o.year) return year > o.year;
    if (is_comment != o.is_comment) return !is_comment;
    return category < o.category;
  }
};

struct Bi1Group {
  int64_t count = 0;
  int64_t sum_length = 0;
};

/// BI 2's (country, month, gender, ageGroup, tag) group key.
struct Bi2Key {
  uint32_t country;  // place index
  int32_t month;
  bool gender_female;
  int32_t age_group;
  uint32_t tag;

  bool operator==(const Bi2Key&) const = default;
};

struct Bi2KeyHash {
  size_t operator()(const Bi2Key& k) const {
    uint64_t h = k.country;
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(k.month);
    h = h * 0x9e3779b97f4a7c15ULL + (k.gender_female ? 1 : 2);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(k.age_group);
    h = h * 0x9e3779b97f4a7c15ULL + k.tag;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

}  // namespace snb::bi::internal

#endif  // SNB_BI_COMMON_H_

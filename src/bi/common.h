// Internal helpers shared by the BI query implementations. Not part of the
// public API.

#ifndef SNB_BI_COMMON_H_
#define SNB_BI_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/graph.h"

namespace snb::bi::internal {

using storage::Graph;
using storage::kNoIdx;

/// Tag bitmap (size NumTags) of tags whose class is `class_name`;
/// `transitive` includes descendant classes. All-false when the class is
/// unknown.
inline std::vector<bool> TagsOfClass(const Graph& graph,
                                     const std::string& class_name,
                                     bool transitive) {
  std::vector<bool> mask(graph.NumTags(), false);
  uint32_t root = graph.TagClassByName(class_name);
  if (root == kNoIdx) return mask;
  std::vector<uint32_t> classes{root};
  if (transitive) {
    for (size_t i = 0; i < classes.size(); ++i) {
      graph.TagClassChildren().ForEach(
          classes[i], [&](uint32_t child) { classes.push_back(child); });
    }
  }
  for (uint32_t tc : classes) {
    graph.TagClassTags().ForEach(tc, [&](uint32_t t) { mask[t] = true; });
  }
  return mask;
}

/// Country place index by name; kNoIdx when absent or not a country.
inline uint32_t CountryIdx(const Graph& graph, const std::string& name) {
  uint32_t place = graph.PlaceByName(name);
  if (place == kNoIdx ||
      graph.PlaceAt(place).type != core::PlaceType::kCountry) {
    return kNoIdx;
  }
  return place;
}

/// Bitmap (size NumPersons) of persons located in the given country place.
inline std::vector<bool> PersonsOfCountry(const Graph& graph,
                                          uint32_t country) {
  std::vector<bool> mask(graph.NumPersons(), false);
  if (country == kNoIdx) return mask;
  graph.CountryPersons().ForEach(country,
                                 [&](uint32_t p) { mask[p] = true; });
  return mask;
}

/// Continent place index of a country (kNoIdx-safe).
inline uint32_t ContinentOfCountry(const Graph& graph, uint32_t country) {
  return country == kNoIdx ? kNoIdx : graph.PlacePartOf(country);
}

/// Total likes a message has received.
inline int64_t MessageLikeCount(const Graph& graph, uint32_t msg) {
  return Graph::IsPost(msg)
             ? static_cast<int64_t>(graph.PostLikers().Degree(msg))
             : static_cast<int64_t>(
                   graph.CommentLikers().Degree(Graph::AsComment(msg)));
}

/// Forum of a message: a post's container, a comment's thread-root's
/// container.
inline uint32_t ForumOfMessage(const Graph& graph, uint32_t msg) {
  uint32_t post = Graph::IsPost(msg)
                      ? Graph::AsPost(msg)
                      : graph.CommentRootPost(Graph::AsComment(msg));
  return graph.PostForum(post);
}

/// Packs an ordered person pair into a hash key.
inline uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace snb::bi::internal

#endif  // SNB_BI_COMMON_H_

#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi6Row> RunBi6(const Graph& graph, const Bi6Params& params) {
  std::vector<Bi6Row> rows;
  const uint32_t tag = graph.TagByName(params.tag);
  if (tag == storage::kNoIdx) return rows;

  struct Agg {
    int64_t messages = 0;
    int64_t replies = 0;
    int64_t likes = 0;
  };
  std::unordered_map<uint32_t, Agg> by_person;

  CancelPoller poll;
  auto handle = [&](uint32_t msg) {
    poll.Tick();
    Agg& a = by_person[graph.MessageCreator(msg)];
    ++a.messages;
    a.likes += internal::MessageLikeCount(graph, msg);
    a.replies += Graph::IsPost(msg)
                     ? static_cast<int64_t>(graph.PostReplies().Degree(msg))
                     : static_cast<int64_t>(graph.CommentReplies().Degree(
                           Graph::AsComment(msg)));
  };
  graph.TagPosts().ForEach(
      tag, [&](uint32_t post) { handle(Graph::MessageOfPost(post)); });
  graph.TagComments().ForEach(tag, [&](uint32_t comment) {
    handle(Graph::MessageOfComment(comment));
  });

  rows.reserve(by_person.size());
  for (const auto& [person, a] : by_person) {
    Bi6Row row;
    row.person_id = graph.PersonAt(person).id;
    row.reply_count = a.replies;
    row.like_count = a.likes;
    row.message_count = a.messages;
    row.score = a.messages + 2 * a.replies + 10 * a.likes;
    rows.push_back(row);
  }
  engine::SortAndLimit(
      rows,
      [](const Bi6Row& a, const Bi6Row& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.person_id < b.person_id;
      },
      100);
  return rows;
}

}  // namespace snb::bi

#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/bound.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi6Row> RunBi6(const Graph& graph, const Bi6Params& params) {
  std::vector<Bi6Row> rows;
  const uint32_t tag = graph.TagByName(params.tag);
  if (tag == storage::kNoIdx) return rows;

  struct Agg {
    int64_t messages = 0;
    int64_t replies = 0;
    int64_t likes = 0;
  };
  std::unordered_map<uint32_t, Agg> by_person;

  CancelPoller poll;
  auto handle = [&](uint32_t msg) {
    poll.Tick();
    if (!graph.MessageAlive(msg)) return;  // tag adjacency keeps dead rows
    Agg& a = by_person[graph.MessageCreator(msg)];
    ++a.messages;
    a.likes += internal::MessageLikeCount(graph, msg);
    a.replies += graph.LiveReplyCount(msg);
  };
  graph.TagPosts().ForEach(
      tag, [&](uint32_t post) { handle(Graph::MessageOfPost(post)); });
  graph.TagComments().ForEach(tag, [&](uint32_t comment) {
    handle(Graph::MessageOfComment(comment));
  });

  // Top-k finisher with CP-1.3 bound pushdown: the score is computable from
  // the aggregate alone, so a person strictly below the k-th score is
  // dropped before their Person record (and external id) is dereferenced.
  // Score ties always fall through to the person-id tie-break, keeping the
  // result bit-identical to the sort-everything oracle.
  struct Cand {
    core::Id person_id;
    int64_t replies;
    int64_t likes;
    int64_t messages;
    int64_t score;
  };
  auto better = [](const Cand& a, const Cand& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.person_id < b.person_id;
  };
  engine::BoundRef bound;
  auto key_of = [](const Cand& c) { return c.score; };
  engine::TopK<Cand, decltype(better)> top(100, better);
  for (const auto& [person, a] : by_person) {
    const int64_t score = a.messages + 2 * a.replies + 10 * a.likes;
    if (bound.CannotPlace(score)) {
      storage::CountRowsSkippedBound(1);
      continue;
    }
    Cand c{graph.PersonAt(person).id, a.replies, a.likes, a.messages, score};
    if (top.Add(c)) top.PublishBound(bound, key_of);
  }

  for (const Cand& c : top.Take()) {
    Bi6Row row;
    row.person_id = c.person_id;
    row.reply_count = c.replies;
    row.like_count = c.likes;
    row.message_count = c.messages;
    row.score = c.score;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace snb::bi

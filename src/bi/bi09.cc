#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi9Row> RunBi9(const Graph& graph, const Bi9Params& params) {
  using internal::TagsOfClass;
  const std::vector<bool> class1 =
      TagsOfClass(graph, params.tag_class1, /*transitive=*/false);
  const std::vector<bool> class2 =
      TagsOfClass(graph, params.tag_class2, /*transitive=*/false);

  CancelPoller poll;
  std::vector<Bi9Row> rows;
  for (uint32_t forum = 0; forum < graph.NumForums(); ++forum) {
    poll.Tick();
    if (static_cast<int64_t>(graph.ForumMembers().Degree(forum)) <=
        params.threshold) {
      continue;
    }
    int64_t count1 = 0, count2 = 0;
    graph.ForumPosts().ForEach(forum, [&](uint32_t post) {
      poll.Tick();
      bool in1 = false, in2 = false;
      graph.PostTags().ForEach(post, [&](uint32_t tag) {
        if (class1[tag]) in1 = true;
        if (class2[tag]) in2 = true;
      });
      if (in1) ++count1;
      if (in2) ++count2;
    });
    if (count1 > 0 || count2 > 0) {
      rows.push_back({graph.ForumAt(forum).id, count1, count2});
    }
  }
  engine::SortAndLimit(
      rows,
      [](const Bi9Row& a, const Bi9Row& b) {
        if (a.count1 != b.count1) return a.count1 > b.count1;
        if (a.count2 != b.count2) return a.count2 > b.count2;
        return a.forum_id < b.forum_id;
      },
      100);
  return rows;
}

}  // namespace snb::bi

// Helpers for the naive engine: record-chasing equivalents of the optimized
// engine's precomputed columns and reverse indexes. Internal.

#ifndef SNB_BI_NAIVE_COMMON_H_
#define SNB_BI_NAIVE_COMMON_H_

#include <string>
#include <vector>

#include "storage/graph.h"

namespace snb::bi::naive::internal {

using storage::Graph;
using storage::kNoIdx;

/// Country place index of a person, chased through city records.
inline uint32_t PersonCountrySlow(const Graph& graph, uint32_t person) {
  uint32_t city = graph.PlaceIdx(graph.PersonAt(person).city);
  if (city == kNoIdx) return kNoIdx;
  const core::Place& place = graph.PlaceAt(city);
  if (place.type == core::PlaceType::kCountry) return city;
  return graph.PlaceIdx(place.part_of);
}

/// Country place index recorded on a message.
inline uint32_t MessageCountrySlow(const Graph& graph, uint32_t msg) {
  core::Id country = Graph::IsPost(msg)
                         ? graph.PostAt(Graph::AsPost(msg)).country
                         : graph.CommentAt(Graph::AsComment(msg)).country;
  return graph.PlaceIdx(country);
}

/// Thread-root post of a comment, chased reply-by-reply through records.
inline uint32_t RootPostSlow(const Graph& graph, uint32_t comment) {
  while (true) {
    const core::Comment& c = graph.CommentAt(comment);
    if (c.reply_of_post != core::kNoId) {
      return graph.PostIdx(c.reply_of_post);
    }
    comment = graph.CommentIdx(c.reply_of_comment);
  }
}

/// The direct reply target of a comment as a message reference.
inline uint32_t ReplyOfSlow(const Graph& graph, uint32_t comment) {
  const core::Comment& c = graph.CommentAt(comment);
  if (c.reply_of_post != core::kNoId) {
    return Graph::MessageOfPost(graph.PostIdx(c.reply_of_post));
  }
  return Graph::MessageOfComment(graph.CommentIdx(c.reply_of_comment));
}

/// Full scan of the undirected knows relation; f(a, b) once per edge, a < b.
template <typename F>
void ForEachKnowsEdge(const Graph& graph, F&& f) {
  for (uint32_t a = 0; a < graph.NumPersons(); ++a) {
    graph.Knows().ForEach(a, [&](uint32_t b) {
      if (a < b) f(a, b);
    });
  }
}

/// Full scan of the likes relation; f(person, message_ref, date).
template <typename F>
void ForEachLike(const Graph& graph, F&& f) {
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    graph.PersonLikes().ForEachDated(
        p, [&](uint32_t msg, core::DateTime date) { f(p, msg, date); });
  }
}

/// Full scan of forum memberships; f(forum, person, join_date).
template <typename F>
void ForEachMembership(const Graph& graph, F&& f) {
  for (uint32_t forum = 0; forum < graph.NumForums(); ++forum) {
    graph.ForumMembers().ForEachDated(
        forum,
        [&](uint32_t person, core::DateTime join) { f(forum, person, join); });
  }
}

/// Tag bitmap of a class, resolved through record scans.
inline std::vector<bool> TagsOfClassSlow(const Graph& graph,
                                         const std::string& class_name,
                                         bool transitive) {
  std::vector<bool> class_mask(graph.NumTagClasses(), false);
  for (uint32_t tc = 0; tc < graph.NumTagClasses(); ++tc) {
    if (graph.TagClassAt(tc).name == class_name) class_mask[tc] = true;
  }
  if (transitive) {
    // Fixed-point over the parent records.
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t tc = 0; tc < graph.NumTagClasses(); ++tc) {
        if (class_mask[tc]) continue;
        core::Id parent = graph.TagClassAt(tc).parent;
        if (parent == core::kNoId) continue;
        if (class_mask[graph.TagClassIdx(parent)]) {
          class_mask[tc] = true;
          changed = true;
        }
      }
    }
  }
  std::vector<bool> tags(graph.NumTags(), false);
  for (uint32_t t = 0; t < graph.NumTags(); ++t) {
    tags[t] = class_mask[graph.TagClassIdx(graph.TagAt(t).tag_class)];
  }
  return tags;
}

/// Tag indices of a message from its record.
inline std::vector<uint32_t> MessageTagsSlow(const Graph& graph,
                                             uint32_t msg) {
  const std::vector<core::Id>& ids =
      Graph::IsPost(msg) ? graph.PostAt(Graph::AsPost(msg)).tags
                         : graph.CommentAt(Graph::AsComment(msg)).tags;
  std::vector<uint32_t> out;
  out.reserve(ids.size());
  for (core::Id id : ids) out.push_back(graph.TagIdx(id));
  return out;
}

/// Likes received by a message, by scanning the whole likes relation.
inline int64_t MessageLikesSlow(const Graph& graph, uint32_t msg) {
  int64_t count = 0;
  ForEachLike(graph, [&](uint32_t, uint32_t m, core::DateTime) {
    if (m == msg) ++count;
  });
  return count;
}

}  // namespace snb::bi::naive::internal

#endif  // SNB_BI_NAIVE_COMMON_H_

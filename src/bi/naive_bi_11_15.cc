// Naive engine, BI 11–15.

#include <algorithm>
#include <map>
#include <unordered_map>

#include "bi/naive.h"
#include "bi/naive_common.h"

namespace snb::bi::naive {

using internal::kNoIdx;

std::vector<Bi11Row> RunBi11(const Graph& graph, const Bi11Params& params) {
  uint32_t country = graph.PlaceByName(params.country);
  std::vector<Bi11Row> rows;
  if (country == kNoIdx) return rows;

  std::unordered_map<uint32_t, int64_t> like_counts;
  internal::ForEachLike(graph, [&](uint32_t, uint32_t msg, core::DateTime) {
    if (!Graph::IsPost(msg)) ++like_counts[Graph::AsComment(msg)];
  });

  struct Agg {
    int64_t replies = 0, likes = 0;
  };
  std::map<std::pair<core::Id, std::string>, Agg> groups;
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    const core::Comment& comment = graph.CommentAt(c);
    if (comment.reply_of_post == core::kNoId) continue;
    uint32_t person = graph.PersonIdx(comment.creator);
    if (internal::PersonCountrySlow(graph, person) != country) continue;
    uint32_t post = graph.PostIdx(comment.reply_of_post);
    bool overlap = false;
    for (core::Id ct : comment.tags) {
      for (core::Id pt : graph.PostAt(post).tags) {
        if (ct == pt) overlap = true;
      }
    }
    if (overlap) continue;
    bool blacklisted = false;
    for (const std::string& word : params.blacklist) {
      if (!word.empty() && comment.content.find(word) != std::string::npos) {
        blacklisted = true;
      }
    }
    if (blacklisted) continue;
    auto lk = like_counts.find(c);
    int64_t likes = lk == like_counts.end() ? 0 : lk->second;
    for (core::Id t : comment.tags) {
      Agg& agg = groups[{graph.PersonAt(person).id,
                         graph.TagAt(graph.TagIdx(t)).name}];
      ++agg.replies;
      agg.likes += likes;
    }
  }
  for (const auto& [key, agg] : groups) {
    rows.push_back({key.first, key.second, agg.likes, agg.replies});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi11Row& a, const Bi11Row& b) {
    if (a.like_count != b.like_count) return a.like_count > b.like_count;
    if (a.person_id != b.person_id) return a.person_id < b.person_id;
    return a.tag < b.tag;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi12Row> RunBi12(const Graph& graph, const Bi12Params& params) {
  const core::DateTime after =
      core::DateTimeFromDate(params.date) + core::kMillisPerDay;
  std::unordered_map<uint32_t, int64_t> like_counts;
  internal::ForEachLike(
      graph, [&](uint32_t, uint32_t msg, core::DateTime) { ++like_counts[msg]; });

  std::vector<Bi12Row> rows;
  graph.ForEachMessage([&](uint32_t msg) {
    if (graph.MessageCreationDate(msg) < after) return;
    auto it = like_counts.find(msg);
    int64_t likes = it == like_counts.end() ? 0 : it->second;
    if (likes <= params.like_threshold) return;
    const core::Person& creator = graph.PersonAt(graph.MessageCreator(msg));
    rows.push_back({graph.MessageId(msg), graph.MessageCreationDate(msg),
                    creator.first_name, creator.last_name, likes});
  });
  // Same total tie-break order as the optimized engines (see bi12.cc).
  std::sort(rows.begin(), rows.end(), [](const Bi12Row& a, const Bi12Row& b) {
    if (a.like_count != b.like_count) return a.like_count > b.like_count;
    if (a.message_id != b.message_id) return a.message_id < b.message_id;
    if (a.creation_date != b.creation_date) {
      return a.creation_date < b.creation_date;
    }
    if (a.creator_last_name != b.creator_last_name) {
      return a.creator_last_name < b.creator_last_name;
    }
    return a.creator_first_name < b.creator_first_name;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi13Row> RunBi13(const Graph& graph, const Bi13Params& params) {
  uint32_t country = graph.PlaceByName(params.country);
  std::vector<Bi13Row> rows;
  if (country == kNoIdx) return rows;

  struct MonthKey {
    int32_t year, month;
    bool operator<(const MonthKey& o) const {
      if (year != o.year) return year > o.year;
      return month < o.month;
    }
  };
  std::map<MonthKey, std::map<std::string, int64_t>> groups;
  graph.ForEachMessage([&](uint32_t msg) {
    if (internal::MessageCountrySlow(graph, msg) != country) return;
    core::DateTime created = graph.MessageCreationDate(msg);
    auto& tags = groups[{core::Year(created), core::Month(created)}];
    for (uint32_t t : internal::MessageTagsSlow(graph, msg)) {
      ++tags[graph.TagAt(t).name];
    }
  });

  for (const auto& [key, tag_counts] : groups) {
    std::vector<std::pair<std::string, int64_t>> ranked(tag_counts.begin(),
                                                        tag_counts.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (ranked.size() > 5) ranked.resize(5);
    rows.push_back({key.year, key.month, std::move(ranked)});
    if (rows.size() == 100) break;
  }
  return rows;
}

std::vector<Bi14Row> RunBi14(const Graph& graph, const Bi14Params& params) {
  const core::DateTime begin = core::DateTimeFromDate(params.begin);
  const core::DateTime end =
      core::DateTimeFromDate(params.end) + core::kMillisPerDay;

  struct Agg {
    int64_t threads = 0, messages = 0;
  };
  std::unordered_map<uint32_t, Agg> by_person;
  auto post_in_window = [&](uint32_t post) {
    core::DateTime created = graph.PostAt(post).creation_date;
    return created >= begin && created < end;
  };
  for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
    if (!post_in_window(post)) continue;
    Agg& a = by_person[graph.PersonIdx(graph.PostAt(post).creator)];
    ++a.threads;
    ++a.messages;
  }
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    core::DateTime created = graph.CommentAt(c).creation_date;
    if (created < begin || created >= end) continue;
    uint32_t root = internal::RootPostSlow(graph, c);
    if (!post_in_window(root)) continue;
    ++by_person[graph.PersonIdx(graph.PostAt(root).creator)].messages;
  }

  std::vector<Bi14Row> rows;
  for (const auto& [person, a] : by_person) {
    const core::Person& rec = graph.PersonAt(person);
    rows.push_back(
        {rec.id, rec.first_name, rec.last_name, a.threads, a.messages});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi14Row& a, const Bi14Row& b) {
    if (a.message_count != b.message_count) {
      return a.message_count > b.message_count;
    }
    return a.person_id < b.person_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi15Row> RunBi15(const Graph& graph, const Bi15Params& params) {
  uint32_t country = graph.PlaceByName(params.country);
  std::vector<Bi15Row> rows;
  if (country == kNoIdx) return rows;

  std::vector<bool> local(graph.NumPersons(), false);
  std::vector<uint32_t> locals;
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (internal::PersonCountrySlow(graph, p) == country) {
      local[p] = true;
      locals.push_back(p);
    }
  }
  if (locals.empty()) return rows;

  std::unordered_map<uint32_t, int64_t> counts;
  for (uint32_t p : locals) counts[p] = 0;
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    if (local[a] && local[b]) {
      ++counts[a];
      ++counts[b];
    }
  });
  int64_t total = 0;
  for (uint32_t p : locals) total += counts[p];
  int64_t floor_avg = total / static_cast<int64_t>(locals.size());

  for (uint32_t p : locals) {
    if (counts[p] == floor_avg) {
      rows.push_back({graph.PersonAt(p).id, counts[p]});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Bi15Row& a, const Bi15Row& b) {
    return a.person_id < b.person_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

}  // namespace snb::bi::naive

#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi2Row> RunBi2(const Graph& graph, const Bi2Params& params) {
  using internal::Bi2Key;
  using internal::Bi2KeyHash;
  using internal::CountryIdx;
  const core::DateTime start = core::DateTimeFromDate(params.start_date);
  const core::DateTime end =
      core::DateTimeFromDate(params.end_date) + core::kMillisPerDay;
  const core::DateTime sim_end = core::DateTimeFromDate(params.simulation_end);

  uint32_t countries[2] = {CountryIdx(graph, params.country1),
                           CountryIdx(graph, params.country2)};

  // Age group: whole 5-year buckets of the person's age at simulation end.
  auto age_group_of = [&](uint32_t person) {
    core::DateTime birth =
        core::DateTimeFromDate(graph.PersonAt(person).birthday);
    int64_t years = (sim_end - birth) / (365 * core::kMillisPerDay);
    return static_cast<int32_t>(years / 5);
  };

  std::unordered_map<Bi2Key, int64_t, Bi2KeyHash> counts;

  CancelPoller poll(256);  // per-person work is a message expansion
  auto scan_person_messages = [&](uint32_t person, uint32_t country) {
    poll.Tick();
    bool female = graph.PersonIsFemale(person);
    int32_t age_group = age_group_of(person);
    auto handle = [&](uint32_t msg) {
      core::DateTime created = graph.MessageCreationDate(msg);
      if (created < start || created >= end) return;
      int32_t month = core::Month(created);
      graph.ForEachMessageTag(msg, [&](uint32_t tag) {
        ++counts[{country, month, female, age_group, tag}];
      });
    };
    graph.PersonPosts().ForEach(person, [&](uint32_t post) {
      handle(Graph::MessageOfPost(post));
    });
    graph.PersonComments().ForEach(person, [&](uint32_t comment) {
      handle(Graph::MessageOfComment(comment));
    });
  };

  for (int c = 0; c < 2; ++c) {
    if (countries[c] == storage::kNoIdx) continue;
    if (c == 1 && countries[1] == countries[0]) break;  // same country twice
    graph.CountryPersons().ForEach(countries[c], [&](uint32_t person) {
      scan_person_messages(person, countries[c]);
    });
  }

  std::vector<Bi2Row> rows;
  for (const auto& [key, count] : counts) {
    if (count <= params.threshold) continue;
    Bi2Row row;
    row.country = graph.PlaceAt(key.country).name;
    row.month = key.month;
    row.gender = key.gender_female ? "female" : "male";
    row.age_group = key.age_group;
    row.tag = graph.TagAt(key.tag).name;
    row.message_count = count;
    rows.push_back(std::move(row));
  }
  engine::SortAndLimit(
      rows,
      [](const Bi2Row& a, const Bi2Row& b) {
        if (a.message_count != b.message_count) {
          return a.message_count > b.message_count;
        }
        if (a.tag != b.tag) return a.tag < b.tag;
        if (a.gender != b.gender) return a.gender < b.gender;
        if (a.age_group != b.age_group) return a.age_group < b.age_group;
        if (a.month != b.month) return a.month < b.month;
        return a.country < b.country;
      },
      100);
  return rows;
}

}  // namespace snb::bi

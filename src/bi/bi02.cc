#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/bound.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi2Row> RunBi2(const Graph& graph, const Bi2Params& params) {
  using internal::Bi2Key;
  using internal::Bi2KeyHash;
  using internal::CountryIdx;
  const core::DateTime start = core::DateTimeFromDate(params.start_date);
  const core::DateTime end =
      core::DateTimeFromDate(params.end_date) + core::kMillisPerDay;
  const core::DateTime sim_end = core::DateTimeFromDate(params.simulation_end);

  uint32_t countries[2] = {CountryIdx(graph, params.country1),
                           CountryIdx(graph, params.country2)};

  // Age group: whole 5-year buckets of the person's age at simulation end.
  auto age_group_of = [&](uint32_t person) {
    core::DateTime birth =
        core::DateTimeFromDate(graph.PersonAt(person).birthday);
    int64_t years = (sim_end - birth) / (365 * core::kMillisPerDay);
    return static_cast<int32_t>(years / 5);
  };

  std::unordered_map<Bi2Key, int64_t, Bi2KeyHash> counts;

  CancelPoller poll(256);  // per-person work is a message expansion
  auto scan_person_messages = [&](uint32_t person, uint32_t country) {
    poll.Tick();
    // Person-granularity date-zone pruning (CP-2.3): a person whose message
    // dates all miss the window contributes nothing — skip the expansion
    // before touching either adjacency list.
    if (!graph.PersonHasMessagesIn(person, start, end)) {
      storage::CountBlocksSkippedDate(1);
      return;
    }
    bool female = graph.PersonIsFemale(person);
    int32_t age_group = age_group_of(person);
    auto handle = [&](uint32_t msg) {
      storage::CountRowsDecoded(1);
      core::DateTime created = graph.MessageCreationDate(msg);
      if (created < start || created >= end) return;
      int32_t month = core::Month(created);
      graph.ForEachMessageTag(msg, [&](uint32_t tag) {
        ++counts[{country, month, female, age_group, tag}];
      });
    };
    graph.PersonPosts().ForEach(person, [&](uint32_t post) {
      handle(Graph::MessageOfPost(post));
    });
    graph.PersonComments().ForEach(person, [&](uint32_t comment) {
      handle(Graph::MessageOfComment(comment));
    });
  };

  for (int c = 0; c < 2; ++c) {
    if (countries[c] == storage::kNoIdx) continue;
    if (c == 1 && countries[1] == countries[0]) break;  // same country twice
    graph.CountryPersons().ForEach(countries[c], [&](uint32_t person) {
      scan_person_messages(person, countries[c]);
    });
  }

  // Top-k finisher over integer-keyed candidates: the CP-1.3 bound on the
  // message count drops losing groups before any name string is built (the
  // tie-break legs dereference tag/place names lazily, and only the final
  // ≤100 rows materialize strings). The comparator mirrors the row
  // comparator exactly: "female" < "male", so female-first is the bool leg.
  struct Cand {
    Bi2Key key;
    int64_t count;
  };
  auto better = [&graph](const Cand& a, const Cand& b) {
    if (a.count != b.count) return a.count > b.count;
    const std::string& ta = graph.TagAt(a.key.tag).name;
    const std::string& tb = graph.TagAt(b.key.tag).name;
    if (ta != tb) return ta < tb;
    if (a.key.gender_female != b.key.gender_female) {
      return a.key.gender_female;
    }
    if (a.key.age_group != b.key.age_group) {
      return a.key.age_group < b.key.age_group;
    }
    if (a.key.month != b.key.month) return a.key.month < b.key.month;
    return graph.PlaceAt(a.key.country).name <
           graph.PlaceAt(b.key.country).name;
  };
  engine::BoundRef bound;
  auto key_of = [](const Cand& c) { return c.count; };
  engine::TopK<Cand, decltype(better)> top(100, better);
  for (const auto& [key, count] : counts) {
    if (count <= params.threshold) continue;
    if (bound.CannotPlace(count)) {
      storage::CountRowsSkippedBound(1);
      continue;
    }
    if (top.Add({key, count})) top.PublishBound(bound, key_of);
  }

  std::vector<Bi2Row> rows;
  for (const Cand& c : top.Take()) {
    Bi2Row row;
    row.country = graph.PlaceAt(c.key.country).name;
    row.month = c.key.month;
    row.gender = c.key.gender_female ? "female" : "male";
    row.age_group = c.key.age_group;
    row.tag = graph.TagAt(c.key.tag).name;
    row.message_count = c.count;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace snb::bi

#include <cstdlib>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/bound.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi3Row> RunBi3(const Graph& graph, const Bi3Params& params) {
  // Month windows [m1, m2) and [m2, m3).
  int32_t y2 = params.year, m2 = params.month + 1;
  if (m2 > 12) {
    m2 = 1;
    ++y2;
  }
  int32_t y3 = y2, m3 = m2 + 1;
  if (m3 > 12) {
    m3 = 1;
    ++y3;
  }
  const core::DateTime t1 = core::DateTimeFromCivil(params.year, params.month, 1);
  const core::DateTime t2 = core::DateTimeFromCivil(y2, m2, 1);
  const core::DateTime t3 = core::DateTimeFromCivil(y3, m3, 1);

  // Index range scan over [t1, t3) — the window filter becomes a binary
  // search on the sorted base plus zone-map pruning of the update tail
  // (CP-2.2/2.3).
  std::vector<int64_t> count1(graph.NumTags(), 0), count2(graph.NumTags(), 0);
  CancelPoller poll;
  graph.ForEachMessageInRange(t1, t3, [&](uint32_t msg) {
    poll.Tick();
    std::vector<int64_t>& counts =
        graph.MessageCreationDate(msg) < t2 ? count1 : count2;
    graph.ForEachMessageTag(msg, [&](uint32_t tag) { ++counts[tag]; });
  });

  // Top-k finisher over integer candidates: the CP-1.3 bound on |diff|
  // drops losing tags before their name string is dereferenced; only the
  // final ≤100 rows materialize strings.
  struct Cand {
    uint32_t tag;
    int64_t count1;
    int64_t count2;
    int64_t diff;
  };
  auto better = [&graph](const Cand& a, const Cand& b) {
    if (a.diff != b.diff) return a.diff > b.diff;
    return graph.TagAt(a.tag).name < graph.TagAt(b.tag).name;
  };
  engine::BoundRef bound;
  auto key_of = [](const Cand& c) { return c.diff; };
  engine::TopK<Cand, decltype(better)> top(100, better);
  for (uint32_t t = 0; t < graph.NumTags(); ++t) {
    if (count1[t] == 0 && count2[t] == 0) continue;
    const int64_t diff = std::llabs(count1[t] - count2[t]);
    if (bound.CannotPlace(diff)) {
      storage::CountRowsSkippedBound(1);
      continue;
    }
    if (top.Add({t, count1[t], count2[t], diff})) {
      top.PublishBound(bound, key_of);
    }
  }

  std::vector<Bi3Row> rows;
  for (const Cand& c : top.Take()) {
    Bi3Row row;
    row.tag = graph.TagAt(c.tag).name;
    row.count_month1 = c.count1;
    row.count_month2 = c.count2;
    row.diff = c.diff;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace snb::bi

#include <map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"

namespace snb::bi {

std::vector<Bi1Row> RunBi1(const Graph& graph, const Bi1Params& params) {
  using internal::Bi1Group;
  using internal::Bi1Key;
  const core::DateTime cutoff = core::DateTimeFromDate(params.date);

  // Few distinct (year, isComment, category) groups — an ordered map both
  // aggregates and produces the output order (CP-1.4: low-cardinality
  // group-by). The creation-date index replaces the full scan plus
  // per-message date filter (CP-2.2): only messages before the cutoff are
  // visited.
  std::map<Bi1Key, Bi1Group> groups;
  int64_t total = 0;

  CancelPoller poll;
  graph.ForEachMessageInRange(
      storage::kMinMessageDate, cutoff, [&](uint32_t msg) {
        poll.Tick();
        int32_t length = graph.MessageLength(msg);
        Bi1Group& g =
            groups[{core::Year(graph.MessageCreationDate(msg)),
                    !Graph::IsPost(msg), internal::Bi1LengthCategory(length)}];
        ++g.count;
        g.sum_length += length;
        ++total;
      });

  std::vector<Bi1Row> rows;
  rows.reserve(groups.size());
  for (const auto& [key, g] : groups) {
    Bi1Row row;
    row.year = key.year;
    row.is_comment = key.is_comment;
    row.length_category = key.category;
    row.message_count = g.count;
    row.average_message_length =
        static_cast<double>(g.sum_length) / static_cast<double>(g.count);
    row.sum_message_length = g.sum_length;
    row.percentage_of_messages =
        total == 0 ? 0.0
                   : static_cast<double>(g.count) / static_cast<double>(total);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace snb::bi

#include <map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"

namespace snb::bi {

namespace {

int32_t LengthCategory(int32_t length) {
  if (length < 40) return 0;   // short
  if (length < 80) return 1;   // one-liner
  if (length < 160) return 2;  // tweet
  return 3;                    // long
}

}  // namespace

std::vector<Bi1Row> RunBi1(const Graph& graph, const Bi1Params& params) {
  const core::DateTime cutoff = core::DateTimeFromDate(params.date);

  struct Group {
    int64_t count = 0;
    int64_t sum_length = 0;
  };
  // Few distinct (year, isComment, category) groups — an ordered map both
  // aggregates and produces the output order (CP-1.4: low-cardinality
  // group-by).
  struct Key {
    int32_t year;
    bool is_comment;
    int32_t category;
    bool operator<(const Key& o) const {
      if (year != o.year) return year > o.year;  // year descending
      if (is_comment != o.is_comment) return !is_comment;
      return category < o.category;
    }
  };
  std::map<Key, Group> groups;
  int64_t total = 0;

  CancelPoller poll;
  graph.ForEachMessage([&](uint32_t msg) {
    poll.Tick();
    core::DateTime created = graph.MessageCreationDate(msg);
    if (created >= cutoff) return;
    int32_t length = graph.MessageLength(msg);
    Key key{core::Year(created), !Graph::IsPost(msg), LengthCategory(length)};
    Group& g = groups[key];
    ++g.count;
    g.sum_length += length;
    ++total;
  });

  std::vector<Bi1Row> rows;
  rows.reserve(groups.size());
  for (const auto& [key, g] : groups) {
    Bi1Row row;
    row.year = key.year;
    row.is_comment = key.is_comment;
    row.length_category = key.category;
    row.message_count = g.count;
    row.average_message_length =
        static_cast<double>(g.sum_length) / static_cast<double>(g.count);
    row.sum_message_length = g.sum_length;
    row.percentage_of_messages =
        total == 0 ? 0.0
                   : static_cast<double>(g.count) / static_cast<double>(total);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace snb::bi

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi15Row> RunBi15(const Graph& graph, const Bi15Params& params) {
  using internal::CountryIdx;
  std::vector<Bi15Row> rows;
  const uint32_t country = CountryIdx(graph, params.country);
  if (country == storage::kNoIdx) return rows;

  std::vector<uint32_t> locals;
  graph.CountryPersons().ForEach(country,
                                 [&](uint32_t p) { locals.push_back(p); });
  if (locals.empty()) return rows;

  // Same-country friend counts (shared by the average and the filter —
  // CP-5.3).
  CancelPoller poll;
  std::vector<int64_t> counts(locals.size(), 0);
  int64_t total = 0;
  for (size_t i = 0; i < locals.size(); ++i) {
    int64_t c = 0;
    graph.Knows().ForEach(locals[i], [&](uint32_t f) {
      poll.Tick();
      if (graph.PersonCountry(f) == country) ++c;
    });
    counts[i] = c;
    total += c;
  }
  const int64_t floor_avg = total / static_cast<int64_t>(locals.size());

  for (size_t i = 0; i < locals.size(); ++i) {
    if (counts[i] == floor_avg) {
      rows.push_back({graph.PersonAt(locals[i]).id, counts[i]});
    }
  }
  engine::SortAndLimit(
      rows,
      [](const Bi15Row& a, const Bi15Row& b) {
        return a.person_id < b.person_id;
      },
      100);
  return rows;
}

}  // namespace snb::bi

#include "bi/cancel.h"

namespace snb::bi::internal {

const CancelToken*& CurrentTokenSlot() noexcept {
  thread_local const CancelToken* token = nullptr;
  return token;
}

}  // namespace snb::bi::internal

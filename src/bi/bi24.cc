#include <map>

#include "engine/top_k.h"

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"

namespace snb::bi {

std::vector<Bi24Row> RunBi24(const Graph& graph, const Bi24Params& params) {
  using internal::ContinentOfCountry;
  const std::vector<bool> class_tags =
      internal::TagsOfClass(graph, params.tag_class, /*transitive=*/false);

  struct Key {
    int32_t year;
    int32_t month;
    uint32_t continent;
    bool operator<(const Key& o) const {
      if (year != o.year) return year < o.year;
      if (month != o.month) return month < o.month;
      return continent < o.continent;
    }
  };
  struct Agg {
    int64_t messages = 0;
    int64_t likes = 0;
  };
  std::map<Key, Agg> groups;

  CancelPoller poll;
  graph.ForEachMessage([&](uint32_t msg) {
    poll.Tick();
    bool match = false;
    graph.ForEachMessageTag(msg, [&](uint32_t tag) {
      if (class_tags[tag]) match = true;
    });
    if (!match) return;
    core::DateTime created = graph.MessageCreationDate(msg);
    uint32_t continent =
        ContinentOfCountry(graph, graph.MessageCountry(msg));
    Key key{core::Year(created), core::Month(created), continent};
    Agg& agg = groups[key];
    ++agg.messages;
    agg.likes += internal::MessageLikeCount(graph, msg);
  });

  std::vector<Bi24Row> rows;
  rows.reserve(groups.size());
  for (const auto& [key, agg] : groups) {
    rows.push_back({agg.messages, agg.likes, key.year, key.month,
                    key.continent == storage::kNoIdx
                        ? std::string()
                        : graph.PlaceAt(key.continent).name});
  }
  // The map order is (year ↑, month ↑, continent-index ↑); re-sort by the
  // continent *name* for the final tie-break before applying the limit.
  engine::SortAndLimit(
      rows,
      [](const Bi24Row& a, const Bi24Row& b) {
        if (a.year != b.year) return a.year < b.year;
        if (a.month != b.month) return a.month < b.month;
        return a.continent < b.continent;
      },
      100);
  return rows;
}

}  // namespace snb::bi

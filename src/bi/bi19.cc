#include <unordered_map>
#include <unordered_set>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

namespace {

/// Bitmap of persons who are members of any forum carrying a tag of the
/// given (direct) class.
std::vector<bool> MembersOfClassForums(const storage::Graph& graph,
                                       const std::string& class_name) {
  std::vector<bool> members(graph.NumPersons(), false);
  std::vector<bool> class_tags =
      internal::TagsOfClass(graph, class_name, /*transitive=*/false);
  std::vector<bool> forum_seen(graph.NumForums(), false);
  for (uint32_t tag = 0; tag < graph.NumTags(); ++tag) {
    if (!class_tags[tag]) continue;
    graph.TagForums().ForEach(tag, [&](uint32_t forum) {
      if (forum_seen[forum]) return;
      forum_seen[forum] = true;
      graph.ForumMembers().ForEach(forum,
                                   [&](uint32_t p) { members[p] = true; });
    });
  }
  return members;
}

}  // namespace

std::vector<Bi19Row> RunBi19(const Graph& graph, const Bi19Params& params) {
  // Strangers: members of a class1-tagged forum AND of a class2-tagged forum.
  std::vector<bool> in1 = MembersOfClassForums(graph, params.tag_class1);
  std::vector<bool> in2 = MembersOfClassForums(graph, params.tag_class2);
  std::vector<bool> stranger(graph.NumPersons());
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    stranger[p] = in1[p] && in2[p];
  }

  struct Agg {
    std::unordered_set<uint32_t> strangers;
    int64_t interactions = 0;
  };
  std::unordered_map<uint32_t, Agg> by_person;

  CancelPoller poll;
  for (uint32_t person = 0; person < graph.NumPersons(); ++person) {
    if (graph.PersonAt(person).birthday <= params.date) continue;
    if (graph.PersonComments().Degree(person) == 0) continue;
    // Friend set for the NOT (person)-[:KNOWS]-(stranger) condition.
    std::unordered_set<uint32_t> friends;
    graph.Knows().ForEach(person, [&](uint32_t f) { friends.insert(f); });
    Agg* agg = nullptr;
    graph.PersonComments().ForEach(person, [&](uint32_t comment) {
      // Walk the transitive replyOf* chain; every ancestor message counts.
      uint32_t msg = graph.CommentReplyOf(comment);
      while (true) {
        poll.Tick();
        uint32_t author = graph.MessageCreator(msg);
        if (stranger[author] && author != person &&
            !friends.contains(author)) {
          if (agg == nullptr) agg = &by_person[person];
          agg->strangers.insert(author);
          ++agg->interactions;
        }
        if (Graph::IsPost(msg)) break;
        msg = graph.CommentReplyOf(Graph::AsComment(msg));
      }
    });
  }

  std::vector<Bi19Row> rows;
  rows.reserve(by_person.size());
  for (const auto& [person, agg] : by_person) {
    rows.push_back({graph.PersonAt(person).id,
                    static_cast<int64_t>(agg.strangers.size()),
                    agg.interactions});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi19Row& a, const Bi19Row& b) {
        if (a.interaction_count != b.interaction_count) {
          return a.interaction_count > b.interaction_count;
        }
        return a.person_id < b.person_id;
      },
      100);
  return rows;
}

}  // namespace snb::bi

// Naive engine, BI 16–20.

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "bi/naive.h"
#include "bi/naive_common.h"

namespace snb::bi::naive {

using internal::kNoIdx;

namespace {

/// Level-synchronous BFS that rescans the whole knows edge list per level —
/// the no-adjacency-index baseline.
std::vector<int32_t> EdgeListBfs(const Graph& graph, uint32_t src,
                                 int32_t max_depth) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    edges.emplace_back(a, b);
  });
  std::vector<int32_t> dist(graph.NumPersons(), -1);
  dist[src] = 0;
  for (int32_t depth = 1; max_depth < 0 || depth <= max_depth; ++depth) {
    bool changed = false;
    for (const auto& [a, b] : edges) {
      if (dist[a] == depth - 1 && dist[b] < 0) {
        dist[b] = depth;
        changed = true;
      }
      if (dist[b] == depth - 1 && dist[a] < 0) {
        dist[a] = depth;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

}  // namespace

std::vector<Bi16Row> RunBi16(const Graph& graph, const Bi16Params& params) {
  std::vector<Bi16Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  uint32_t country = graph.PlaceByName(params.country);
  if (start == kNoIdx || country == kNoIdx) return rows;
  std::vector<bool> class_tags =
      internal::TagsOfClassSlow(graph, params.tag_class, false);

  std::vector<int32_t> dist =
      EdgeListBfs(graph, start, params.max_path_distance);

  std::map<std::pair<core::Id, std::string>, int64_t> counts;
  graph.ForEachMessage([&](uint32_t msg) {
    uint32_t creator = graph.MessageCreator(msg);
    if (creator == start) return;
    if (dist[creator] < 1 || dist[creator] > params.max_path_distance) return;
    if (internal::PersonCountrySlow(graph, creator) != country) return;
    std::vector<uint32_t> tags = internal::MessageTagsSlow(graph, msg);
    bool qualifies = false;
    for (uint32_t t : tags) {
      if (class_tags[t]) qualifies = true;
    }
    if (!qualifies) return;
    for (uint32_t t : tags) {
      ++counts[{graph.PersonAt(creator).id, graph.TagAt(t).name}];
    }
  });
  for (const auto& [key, count] : counts) {
    rows.push_back({key.first, key.second, count});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi16Row& a, const Bi16Row& b) {
    if (a.message_count != b.message_count) {
      return a.message_count > b.message_count;
    }
    if (a.tag != b.tag) return a.tag < b.tag;
    return a.person_id < b.person_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi17Row> RunBi17(const Graph& graph, const Bi17Params& params) {
  uint32_t country = graph.PlaceByName(params.country);
  if (country == kNoIdx) return {{0}};

  std::vector<bool> local(graph.NumPersons(), false);
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    local[p] = internal::PersonCountrySlow(graph, p) == country;
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  std::unordered_set<uint64_t> edge_set;
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    if (local[a] && local[b]) {
      edges.emplace_back(a, b);
      edge_set.insert((static_cast<uint64_t>(a) << 32) | b);
    }
  });
  // For every in-country edge (a < b), scan all in-country persons c > b.
  int64_t triangles = 0;
  std::vector<uint32_t> locals;
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (local[p]) locals.push_back(p);
  }
  for (const auto& [a, b] : edges) {
    for (uint32_t c : locals) {
      if (c <= b) continue;
      if (edge_set.contains((static_cast<uint64_t>(a) << 32) | c) &&
          edge_set.contains((static_cast<uint64_t>(b) << 32) | c)) {
        ++triangles;
      }
    }
  }
  return {{triangles}};
}

std::vector<Bi18Row> RunBi18(const Graph& graph, const Bi18Params& params) {
  const core::DateTime after = core::DateTimeFromDate(params.date);
  auto language_ok = [&](const std::string& lang) {
    return std::find(params.languages.begin(), params.languages.end(),
                     lang) != params.languages.end();
  };

  std::unordered_map<uint32_t, int64_t> message_count;
  for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
    const core::Post& p = graph.PostAt(post);
    if (p.content.empty() || p.length >= params.length_threshold ||
        p.creation_date <= after || !language_ok(p.language)) {
      continue;
    }
    ++message_count[graph.PersonIdx(p.creator)];
  }
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    const core::Comment& comment = graph.CommentAt(c);
    if (comment.content.empty() ||
        comment.length >= params.length_threshold ||
        comment.creation_date <= after) {
      continue;
    }
    uint32_t root = internal::RootPostSlow(graph, c);
    if (!language_ok(graph.PostAt(root).language)) continue;
    ++message_count[graph.PersonIdx(comment.creator)];
  }

  std::map<int64_t, int64_t> histogram;
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    auto it = message_count.find(p);
    ++histogram[it == message_count.end() ? 0 : it->second];
  }
  std::vector<Bi18Row> rows;
  for (const auto& [messages, persons] : histogram) {
    rows.push_back({messages, persons});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi18Row& a, const Bi18Row& b) {
    if (a.person_count != b.person_count) {
      return a.person_count > b.person_count;
    }
    return a.message_count > b.message_count;
  });
  return rows;
}

std::vector<Bi19Row> RunBi19(const Graph& graph, const Bi19Params& params) {
  std::vector<bool> class1 =
      internal::TagsOfClassSlow(graph, params.tag_class1, false);
  std::vector<bool> class2 =
      internal::TagsOfClassSlow(graph, params.tag_class2, false);

  // Forum → carries tag of class; via forum records.
  auto forum_in_class = [&](uint32_t forum, const std::vector<bool>& cls) {
    for (core::Id t : graph.ForumAt(forum).tags) {
      if (cls[graph.TagIdx(t)]) return true;
    }
    return false;
  };
  std::vector<bool> in1(graph.NumPersons(), false),
      in2(graph.NumPersons(), false);
  internal::ForEachMembership(
      graph, [&](uint32_t forum, uint32_t person, core::DateTime) {
        if (forum_in_class(forum, class1)) in1[person] = true;
        if (forum_in_class(forum, class2)) in2[person] = true;
      });

  std::unordered_set<uint64_t> knows_set;
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    knows_set.insert((static_cast<uint64_t>(a) << 32) | b);
    knows_set.insert((static_cast<uint64_t>(b) << 32) | a);
  });

  struct Agg {
    std::unordered_set<uint32_t> strangers;
    int64_t interactions = 0;
  };
  std::unordered_map<uint32_t, Agg> by_person;
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    uint32_t person = graph.PersonIdx(graph.CommentAt(c).creator);
    if (graph.PersonAt(person).birthday <= params.date) continue;
    uint32_t msg = internal::ReplyOfSlow(graph, c);
    while (true) {
      uint32_t author = graph.MessageCreator(msg);
      if (in1[author] && in2[author] && author != person &&
          !knows_set.contains((static_cast<uint64_t>(person) << 32) |
                              author)) {
        Agg& agg = by_person[person];
        agg.strangers.insert(author);
        ++agg.interactions;
      }
      if (Graph::IsPost(msg)) break;
      msg = internal::ReplyOfSlow(graph, Graph::AsComment(msg));
    }
  }

  std::vector<Bi19Row> rows;
  for (const auto& [person, agg] : by_person) {
    rows.push_back({graph.PersonAt(person).id,
                    static_cast<int64_t>(agg.strangers.size()),
                    agg.interactions});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi19Row& a, const Bi19Row& b) {
    if (a.interaction_count != b.interaction_count) {
      return a.interaction_count > b.interaction_count;
    }
    return a.person_id < b.person_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi20Row> RunBi20(const Graph& graph, const Bi20Params& params) {
  std::vector<Bi20Row> rows;
  for (const std::string& class_name : params.tag_classes) {
    bool exists = false;
    for (uint32_t tc = 0; tc < graph.NumTagClasses(); ++tc) {
      if (graph.TagClassAt(tc).name == class_name) exists = true;
    }
    if (!exists) continue;
    std::vector<bool> tags =
        internal::TagsOfClassSlow(graph, class_name, true);
    int64_t count = 0;
    graph.ForEachMessage([&](uint32_t msg) {
      for (uint32_t t : internal::MessageTagsSlow(graph, msg)) {
        if (tags[t]) {
          ++count;
          return;
        }
      }
    });
    rows.push_back({class_name, count});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi20Row& a, const Bi20Row& b) {
    if (a.message_count != b.message_count) {
      return a.message_count > b.message_count;
    }
    return a.tag_class < b.tag_class;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

}  // namespace snb::bi::naive

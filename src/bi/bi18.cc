#include <algorithm>
#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi18Row> RunBi18(const Graph& graph, const Bi18Params& params) {
  const core::DateTime after = core::DateTimeFromDate(params.date);

  // Dictionary-encode the language filter once: an absent language maps to
  // kNoCode, which no stored message carries, so it simply never matches.
  std::vector<uint32_t> language_codes;
  language_codes.reserve(params.languages.size());
  for (const std::string& lang : params.languages) {
    language_codes.push_back(graph.Dict().Find(lang));
  }
  auto language_ok = [&](uint32_t code) {
    return std::find(language_codes.begin(), language_codes.end(), code) !=
           language_codes.end();
  };

  // messageCount per person over qualifying messages. creationDate > date
  // ⇔ the index range [date+1, ∞): the scan prunes everything older
  // through the sorted base + tail zone maps (CP-2.2/2.3) instead of
  // filtering full table scans, and the language check probes the
  // dictionary-code hot columns (the comment side reads the materialized
  // thread-root language — a 2-hop endpoint column) rather than comparing
  // strings.
  CancelPoller poll;
  std::vector<int64_t> message_count(graph.NumPersons(), 0);
  graph.ForEachMessageInRange(
      after + 1, storage::kMaxMessageDate, [&](uint32_t msg) {
        poll.Tick();
        if (graph.MessageLength(msg) >= params.length_threshold) return;
        if (Graph::IsPost(msg)) {
          if (!graph.MessageHasContent(msg)) return;  // image posts
          if (!language_ok(graph.PostLanguageCode(msg))) return;
          ++message_count[graph.PostCreator(msg)];
        } else {
          const uint32_t comment = Graph::AsComment(msg);
          if (graph.CommentAt(comment).content.empty()) return;
          // A comment's language is the language of its thread's root post.
          if (!language_ok(graph.CommentRootLanguageCode(comment))) return;
          ++message_count[graph.CommentCreator(comment)];
        }
      });

  // Histogram: persons per messageCount value — including zero.
  std::unordered_map<int64_t, int64_t> histogram;
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    ++histogram[message_count[p]];
  }

  std::vector<Bi18Row> rows;
  rows.reserve(histogram.size());
  for (const auto& [messages, persons] : histogram) {
    rows.push_back({messages, persons});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi18Row& a, const Bi18Row& b) {
        if (a.person_count != b.person_count) {
          return a.person_count > b.person_count;
        }
        return a.message_count > b.message_count;
      },
      0);
  return rows;
}

}  // namespace snb::bi

#include <algorithm>
#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi18Row> RunBi18(const Graph& graph, const Bi18Params& params) {
  const core::DateTime after = core::DateTimeFromDate(params.date);

  auto language_ok = [&](const std::string& lang) {
    return std::find(params.languages.begin(), params.languages.end(),
                     lang) != params.languages.end();
  };

  // messageCount per person over qualifying messages.
  CancelPoller poll;
  std::vector<int64_t> message_count(graph.NumPersons(), 0);
  for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
    poll.Tick();
    const core::Post& p = graph.PostAt(post);
    if (p.content.empty()) continue;
    if (p.length >= params.length_threshold) continue;
    if (p.creation_date <= after) continue;
    if (!language_ok(p.language)) continue;
    ++message_count[graph.PostCreator(post)];
  }
  for (uint32_t comment = 0; comment < graph.NumComments(); ++comment) {
    poll.Tick();
    const core::Comment& c = graph.CommentAt(comment);
    if (c.content.empty()) continue;
    if (c.length >= params.length_threshold) continue;
    if (c.creation_date <= after) continue;
    // A comment's language is the language of its thread's root post.
    if (!language_ok(graph.PostAt(graph.CommentRootPost(comment)).language)) {
      continue;
    }
    ++message_count[graph.CommentCreator(comment)];
  }

  // Histogram: persons per messageCount value — including zero.
  std::unordered_map<int64_t, int64_t> histogram;
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    ++histogram[message_count[p]];
  }

  std::vector<Bi18Row> rows;
  rows.reserve(histogram.size());
  for (const auto& [messages, persons] : histogram) {
    rows.push_back({messages, persons});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi18Row& a, const Bi18Row& b) {
        if (a.person_count != b.person_count) {
          return a.person_count > b.person_count;
        }
        return a.message_count > b.message_count;
      },
      0);
  return rows;
}

}  // namespace snb::bi

#include <unordered_map>
#include <unordered_set>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi5Row> RunBi5(const Graph& graph, const Bi5Params& params) {
  using internal::CountryIdx;
  std::vector<Bi5Row> rows;
  const uint32_t country = CountryIdx(graph, params.country);
  if (country == storage::kNoIdx) return rows;

  // Forum popularity: members living in the country.
  CancelPoller poll;
  std::unordered_map<uint32_t, int64_t> popularity;
  graph.CountryPersons().ForEach(country, [&](uint32_t person) {
    graph.PersonForums().ForEach(person, [&](uint32_t forum) {
      poll.Tick();
      ++popularity[forum];
    });
  });

  struct ForumPop {
    uint32_t forum;
    core::Id forum_id;
    int64_t members;
  };
  auto forum_better = [](const ForumPop& a, const ForumPop& b) {
    if (a.members != b.members) return a.members > b.members;
    return a.forum_id < b.forum_id;
  };
  engine::TopK<ForumPop, decltype(forum_better)> top_forums(100, forum_better);
  for (const auto& [forum, members] : popularity) {
    top_forums.Add({forum, graph.ForumAt(forum).id, members});
  }
  std::vector<ForumPop> forums = top_forums.Take();

  // Members of the top forums and their post counts inside those forums.
  std::unordered_set<uint32_t> members;
  for (const ForumPop& f : forums) {
    graph.ForumMembers().ForEach(f.forum,
                                 [&](uint32_t p) { members.insert(p); });
  }
  std::unordered_map<uint32_t, int64_t> post_count;
  for (uint32_t p : members) post_count[p] = 0;
  for (const ForumPop& f : forums) {
    graph.ForumPosts().ForEach(f.forum, [&](uint32_t post) {
      poll.Tick();
      uint32_t creator = graph.PostCreator(post);
      auto it = post_count.find(creator);
      if (it != post_count.end()) ++it->second;
    });
  }

  rows.reserve(post_count.size());
  for (const auto& [person, count] : post_count) {
    const core::Person& rec = graph.PersonAt(person);
    rows.push_back(
        {rec.id, rec.first_name, rec.last_name, rec.creation_date, count});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi5Row& a, const Bi5Row& b) {
        if (a.post_count != b.post_count) return a.post_count > b.post_count;
        return a.person_id < b.person_id;
      },
      100);
  return rows;
}

}  // namespace snb::bi

// Naive baseline engine: every BI query re-implemented as tuple-at-a-time
// full scans over the entity tables, without reverse adjacency indexes,
// precomputed columns (thread roots, person countries), top-k pushdown or
// memoization. Output (rows, order, limits) is bit-identical to the
// optimized engine — tests cross-validate the two, and the benchmark
// harness uses the gap as the "system quality" axis of the evaluation.
//
// Ground rules for what "naive" may touch:
//   * entity tables (PersonAt, PostAt, …) and their raw record fields,
//   * id → index lookups (primary-key access),
//   * full scans of edge collections (knows, likes, memberships) through
//     the forward adjacency lists — equivalent to scanning an edge table.
// It may NOT use reverse indexes (TagPosts, CountryPersons, PostLikers, …),
// hot columns, or precomputed transitive results.

#ifndef SNB_BI_NAIVE_H_
#define SNB_BI_NAIVE_H_

#include "bi/bi.h"

namespace snb::bi::naive {

std::vector<Bi1Row> RunBi1(const Graph& graph, const Bi1Params& params);
std::vector<Bi2Row> RunBi2(const Graph& graph, const Bi2Params& params);
std::vector<Bi3Row> RunBi3(const Graph& graph, const Bi3Params& params);
std::vector<Bi4Row> RunBi4(const Graph& graph, const Bi4Params& params);
std::vector<Bi5Row> RunBi5(const Graph& graph, const Bi5Params& params);
std::vector<Bi6Row> RunBi6(const Graph& graph, const Bi6Params& params);
std::vector<Bi7Row> RunBi7(const Graph& graph, const Bi7Params& params);
std::vector<Bi8Row> RunBi8(const Graph& graph, const Bi8Params& params);
std::vector<Bi9Row> RunBi9(const Graph& graph, const Bi9Params& params);
std::vector<Bi10Row> RunBi10(const Graph& graph, const Bi10Params& params);
std::vector<Bi11Row> RunBi11(const Graph& graph, const Bi11Params& params);
std::vector<Bi12Row> RunBi12(const Graph& graph, const Bi12Params& params);
std::vector<Bi13Row> RunBi13(const Graph& graph, const Bi13Params& params);
std::vector<Bi14Row> RunBi14(const Graph& graph, const Bi14Params& params);
std::vector<Bi15Row> RunBi15(const Graph& graph, const Bi15Params& params);
std::vector<Bi16Row> RunBi16(const Graph& graph, const Bi16Params& params);
std::vector<Bi17Row> RunBi17(const Graph& graph, const Bi17Params& params);
std::vector<Bi18Row> RunBi18(const Graph& graph, const Bi18Params& params);
std::vector<Bi19Row> RunBi19(const Graph& graph, const Bi19Params& params);
std::vector<Bi20Row> RunBi20(const Graph& graph, const Bi20Params& params);
std::vector<Bi21Row> RunBi21(const Graph& graph, const Bi21Params& params);
std::vector<Bi22Row> RunBi22(const Graph& graph, const Bi22Params& params);
std::vector<Bi23Row> RunBi23(const Graph& graph, const Bi23Params& params);
std::vector<Bi24Row> RunBi24(const Graph& graph, const Bi24Params& params);
std::vector<Bi25Row> RunBi25(const Graph& graph, const Bi25Params& params);

}  // namespace snb::bi::naive

#endif  // SNB_BI_NAIVE_H_

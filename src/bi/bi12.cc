#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/bound.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi12Row> RunBi12(const Graph& graph, const Bi12Params& params) {
  const core::DateTime after =
      core::DateTimeFromDate(params.date) + core::kMillisPerDay;  // exclusive

  // Post and Comment ids live in separate id spaces, so two messages can
  // share an id; creationDate and the creator-name legs break residual ties
  // deterministically (the parallel variant's k-way merge needs the same
  // total order — keep the three engines' comparators in sync). WouldAccept
  // may see empty names, which only ever errs towards accepting; Add
  // re-checks with the projected row.
  auto better = [](const Bi12Row& a, const Bi12Row& b) {
    if (a.like_count != b.like_count) return a.like_count > b.like_count;
    if (a.message_id != b.message_id) return a.message_id < b.message_id;
    if (a.creation_date != b.creation_date) {
      return a.creation_date < b.creation_date;
    }
    if (a.creator_last_name != b.creator_last_name) {
      return a.creator_last_name < b.creator_last_name;
    }
    return a.creator_first_name < b.creator_first_name;
  };
  engine::TopK<Bi12Row, decltype(better)> top(100, better);

  // CP-1.3 bound pushdown: the k-th like count, published once the heap is
  // full, prunes whole zone-mapped blocks (block max ≤ threshold, or
  // strictly below the bound) and individual candidates before any id or
  // name is dereferenced. Ties on the bound always pass through to the full
  // comparator, so the result is bit-identical to the oracle.
  engine::BoundRef bound;
  auto key_of = [](const Bi12Row& r) { return r.like_count; };

  // Index range scan over [date+1, ∞) instead of a full scan with a
  // per-message date filter.
  CancelPoller poll;
  graph.ForEachMessageInRangeBounded(
      after, storage::kMaxMessageDate,
      [&](int64_t block_max_likes) {
        return block_max_likes <= params.like_threshold ||
               bound.CannotPlace(block_max_likes);
      },
      [&](uint32_t msg) {
        poll.Tick();
        int64_t likes = internal::MessageLikeCount(graph, msg);
        if (likes <= params.like_threshold) return;
        if (bound.CannotPlace(likes)) {
          storage::CountRowsSkippedBound(1);
          return;
        }
        Bi12Row row;
        row.message_id = graph.MessageId(msg);
        row.like_count = likes;
        row.creation_date = graph.MessageCreationDate(msg);
        if (!top.WouldAccept(row)) return;  // CP-1.3: skip the projection
        const core::Person& creator =
            graph.PersonAt(graph.MessageCreator(msg));
        row.creator_first_name = creator.first_name;
        row.creator_last_name = creator.last_name;
        if (top.Add(std::move(row))) top.PublishBound(bound, key_of);
      });
  return top.Take();
}

}  // namespace snb::bi

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi12Row> RunBi12(const Graph& graph, const Bi12Params& params) {
  const core::DateTime after =
      core::DateTimeFromDate(params.date) + core::kMillisPerDay;  // exclusive

  // Post and Comment ids live in separate id spaces, so two messages can
  // share an id; creationDate breaks the residual tie deterministically.
  auto better = [](const Bi12Row& a, const Bi12Row& b) {
    if (a.like_count != b.like_count) return a.like_count > b.like_count;
    if (a.message_id != b.message_id) return a.message_id < b.message_id;
    return a.creation_date < b.creation_date;
  };
  engine::TopK<Bi12Row, decltype(better)> top(100, better);

  CancelPoller poll;
  graph.ForEachMessage([&](uint32_t msg) {
    poll.Tick();
    core::DateTime created = graph.MessageCreationDate(msg);
    if (created < after) return;
    int64_t likes = internal::MessageLikeCount(graph, msg);
    if (likes <= params.like_threshold) return;
    Bi12Row row;
    row.message_id = graph.MessageId(msg);
    row.like_count = likes;
    row.creation_date = created;
    if (!top.WouldAccept(row)) return;  // CP-1.3: skip the projection
    const core::Person& creator = graph.PersonAt(graph.MessageCreator(msg));
    row.creator_first_name = creator.first_name;
    row.creator_last_name = creator.last_name;
    top.Add(std::move(row));
  });
  return top.Take();
}

}  // namespace snb::bi

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi4Row> RunBi4(const Graph& graph, const Bi4Params& params) {
  using internal::CountryIdx;
  using internal::TagsOfClass;
  const uint32_t country = CountryIdx(graph, params.country);
  const std::vector<bool> class_tags =
      TagsOfClass(graph, params.tag_class, /*transitive=*/false);
  std::vector<Bi4Row> rows;
  if (country == storage::kNoIdx) return rows;

  CancelPoller poll;
  graph.CountryPersons().ForEach(country, [&](uint32_t moderator) {
    graph.PersonModerates().ForEach(moderator, [&](uint32_t forum) {
      int64_t post_count = 0;
      graph.ForumPosts().ForEach(forum, [&](uint32_t post) {
        poll.Tick();
        bool has_class_tag = false;
        graph.PostTags().ForEach(post, [&](uint32_t tag) {
          if (class_tags[tag]) has_class_tag = true;
        });
        if (has_class_tag) ++post_count;
      });
      if (post_count == 0) return;
      const core::Forum& f = graph.ForumAt(forum);
      rows.push_back({f.id, f.title, f.creation_date,
                      graph.PersonAt(moderator).id, post_count});
    });
  });

  engine::SortAndLimit(
      rows,
      [](const Bi4Row& a, const Bi4Row& b) {
        if (a.post_count != b.post_count) return a.post_count > b.post_count;
        return a.forum_id < b.forum_id;
      },
      20);
  return rows;
}

}  // namespace snb::bi

#include "bi/parallel.h"

#include <map>
#include <mutex>

#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi::parallel {

namespace {

int32_t LengthCategory(int32_t length) {
  if (length < 40) return 0;
  if (length < 80) return 1;
  if (length < 160) return 2;
  return 3;
}

struct Bi1Key {
  int32_t year;
  bool is_comment;
  int32_t category;
  bool operator<(const Bi1Key& o) const {
    if (year != o.year) return year > o.year;
    if (is_comment != o.is_comment) return !is_comment;
    return category < o.category;
  }
};

struct Bi1Group {
  int64_t count = 0;
  int64_t sum_length = 0;
};

}  // namespace

std::vector<Bi1Row> RunBi1(const Graph& graph, const Bi1Params& params,
                           util::ThreadPool& pool) {
  const core::DateTime cutoff = core::DateTimeFromDate(params.date);
  const size_t num_messages = graph.NumMessages();
  const size_t num_posts = graph.NumPosts();

  // Per-shard partial aggregations; message index space is posts followed
  // by comments, so a flat range partitions both tables.
  std::mutex merge_mu;
  std::map<Bi1Key, Bi1Group> groups;
  int64_t total = 0;

  pool.ParallelForShards(num_messages, [&](size_t begin, size_t end) {
    std::map<Bi1Key, Bi1Group> local;
    int64_t local_total = 0;
    for (size_t i = begin; i < end; ++i) {
      uint32_t msg =
          i < num_posts
              ? Graph::MessageOfPost(static_cast<uint32_t>(i))
              : Graph::MessageOfComment(static_cast<uint32_t>(i - num_posts));
      core::DateTime created = graph.MessageCreationDate(msg);
      if (created >= cutoff) continue;
      int32_t length = graph.MessageLength(msg);
      Bi1Key key{core::Year(created), !Graph::IsPost(msg),
                 LengthCategory(length)};
      Bi1Group& g = local[key];
      ++g.count;
      g.sum_length += length;
      ++local_total;
    }
    // Re-aggregation step: merge the partials under a short critical
    // section (few groups, CP-1.2's low-contention merge).
    std::lock_guard<std::mutex> lock(merge_mu);
    for (const auto& [key, g] : local) {
      Bi1Group& target = groups[key];
      target.count += g.count;
      target.sum_length += g.sum_length;
    }
    total += local_total;
  });

  std::vector<Bi1Row> rows;
  rows.reserve(groups.size());
  for (const auto& [key, g] : groups) {
    Bi1Row row;
    row.year = key.year;
    row.is_comment = key.is_comment;
    row.length_category = key.category;
    row.message_count = g.count;
    row.average_message_length =
        static_cast<double>(g.sum_length) / static_cast<double>(g.count);
    row.sum_message_length = g.sum_length;
    row.percentage_of_messages =
        total == 0 ? 0.0
                   : static_cast<double>(g.count) / static_cast<double>(total);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Bi20Row> RunBi20(const Graph& graph, const Bi20Params& params,
                             util::ThreadPool& pool) {
  // One independent rollup per class; keep input order, then sort like the
  // sequential engine.
  std::vector<Bi20Row> rows(params.tag_classes.size());
  std::vector<bool> valid(params.tag_classes.size(), false);
  pool.ParallelFor(params.tag_classes.size(), [&](size_t i) {
    const std::string& class_name = params.tag_classes[i];
    if (graph.TagClassByName(class_name) == storage::kNoIdx) return;
    std::vector<bool> tags =
        internal::TagsOfClass(graph, class_name, /*transitive=*/true);
    int64_t count = 0;
    graph.ForEachMessage([&](uint32_t msg) {
      bool match = false;
      graph.ForEachMessageTag(msg, [&](uint32_t tag) {
        if (tags[tag]) match = true;
      });
      if (match) ++count;
    });
    rows[i] = {class_name, count};
    valid[i] = true;
  });
  std::vector<Bi20Row> out;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (valid[i]) out.push_back(std::move(rows[i]));
  }
  engine::SortAndLimit(
      out,
      [](const Bi20Row& a, const Bi20Row& b) {
        if (a.message_count != b.message_count) {
          return a.message_count > b.message_count;
        }
        return a.tag_class < b.tag_class;
      },
      100);
  return out;
}

}  // namespace snb::bi::parallel

#include "bi/parallel.h"

#include <cstdlib>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/bound.h"
#include "engine/morsel.h"
#include "engine/top_k.h"
#include "storage/scan_stats.h"

namespace snb::bi::parallel {

namespace {

using storage::kMaxMessageDate;
using storage::kMinMessageDate;

/// Elements per morsel when each element expands an adjacency list (person
/// message scans, neighbourhood probes) rather than reading flat columns.
constexpr size_t kExpandMorselSize = 256;

/// engine::ParallelAggregate with the calling thread's ambient CancelToken
/// and ScanStats sink re-installed on every executor, the token polled once
/// per morsel. The engine layer cannot depend on bi/cancel.h or ambient
/// storage sinks (bi links against engine), so the bridge lives here: a
/// deadline fired mid-query surfaces as QueryCancelled on the calling thread
/// after all executors joined, and every slot's zone-skip/bound-skip counts
/// land in the caller's (atomic) ScanStats.
template <typename Init, typename Body, typename Merge>
void Aggregate(util::ThreadPool& pool, size_t n, Init&& init, Body&& body,
               Merge&& merge,
               size_t morsel_size = engine::kDefaultMorselSize) {
  const CancelToken* token = CurrentCancelToken();
  storage::ScanStats* stats = storage::CurrentScanStats();
  engine::ParallelAggregate(
      pool, n, std::forward<Init>(init),
      [&](auto& state, size_t begin, size_t end) {
        ScopedCancelToken guard(token);
        storage::ScopedScanStats stats_guard(stats);
        PollCancel();
        body(state, begin, end);
      },
      std::forward<Merge>(merge), morsel_size);
}

/// Message reference for flat position i of the unified message table
/// (posts first, then comments) — the domain of the full-scan queries.
uint32_t MessageAtFlat(const Graph& graph, size_t i) {
  const size_t num_posts = graph.NumPosts();
  return i < num_posts
             ? Graph::MessageOfPost(static_cast<uint32_t>(i))
             : Graph::MessageOfComment(static_cast<uint32_t>(i - num_posts));
}

}  // namespace

std::vector<Bi1Row> RunBi1(const Graph& graph, const Bi1Params& params,
                           util::ThreadPool& pool) {
  using internal::Bi1Group;
  using internal::Bi1Key;
  const core::DateTime cutoff = core::DateTimeFromDate(params.date);
  // The index range replaces the per-message `created < cutoff` filter.
  const Graph::MessageRangeView range =
      graph.MessageRange(kMinMessageDate, cutoff);

  struct State {
    std::map<Bi1Key, Bi1Group> groups;
    int64_t total = 0;
  };
  std::map<Bi1Key, Bi1Group> groups;
  int64_t total = 0;
  Aggregate(
      pool, range.size(), [] { return State{}; },
      [&](State& s, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t msg = range[i];
          const core::DateTime created = graph.MessageCreationDate(msg);
          const int32_t length = graph.MessageLength(msg);
          Bi1Group& g = s.groups[{core::Year(created), !Graph::IsPost(msg),
                                  internal::Bi1LengthCategory(length)}];
          ++g.count;
          g.sum_length += length;
          ++s.total;
        }
      },
      [&](State& s) {
        for (const auto& [key, g] : s.groups) {
          Bi1Group& target = groups[key];
          target.count += g.count;
          target.sum_length += g.sum_length;
        }
        total += s.total;
      });

  std::vector<Bi1Row> rows;
  rows.reserve(groups.size());
  for (const auto& [key, g] : groups) {
    Bi1Row row;
    row.year = key.year;
    row.is_comment = key.is_comment;
    row.length_category = key.category;
    row.message_count = g.count;
    row.average_message_length =
        static_cast<double>(g.sum_length) / static_cast<double>(g.count);
    row.sum_message_length = g.sum_length;
    row.percentage_of_messages =
        total == 0 ? 0.0
                   : static_cast<double>(g.count) / static_cast<double>(total);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Bi2Row> RunBi2(const Graph& graph, const Bi2Params& params,
                           util::ThreadPool& pool) {
  using internal::Bi2Key;
  using internal::Bi2KeyHash;
  using internal::CountryIdx;
  const core::DateTime start = core::DateTimeFromDate(params.start_date);
  const core::DateTime end =
      core::DateTimeFromDate(params.end_date) + core::kMillisPerDay;
  const core::DateTime sim_end = core::DateTimeFromDate(params.simulation_end);

  uint32_t countries[2] = {CountryIdx(graph, params.country1),
                           CountryIdx(graph, params.country2)};

  // Materialize the (person, country) domain; the morsel loop partitions it.
  std::vector<std::pair<uint32_t, uint32_t>> domain;
  for (int c = 0; c < 2; ++c) {
    if (countries[c] == storage::kNoIdx) continue;
    if (c == 1 && countries[1] == countries[0]) break;  // same country twice
    graph.CountryPersons().ForEach(countries[c], [&](uint32_t person) {
      domain.emplace_back(person, countries[c]);
    });
  }

  auto age_group_of = [&](uint32_t person) {
    core::DateTime birth =
        core::DateTimeFromDate(graph.PersonAt(person).birthday);
    int64_t years = (sim_end - birth) / (365 * core::kMillisPerDay);
    return static_cast<int32_t>(years / 5);
  };

  using CountMap = std::unordered_map<Bi2Key, int64_t, Bi2KeyHash>;
  CountMap counts;
  Aggregate(
      pool, domain.size(), [] { return CountMap{}; },
      [&](CountMap& local, size_t begin, size_t domain_end) {
        for (size_t i = begin; i < domain_end; ++i) {
          const auto [person, country] = domain[i];
          // Person-granularity date-zone pruning (CP-2.3), mirroring the
          // sequential engine: skip the whole expansion when the creator's
          // message-date zone misses the window.
          if (!graph.PersonHasMessagesIn(person, start, end)) {
            storage::CountBlocksSkippedDate(1);
            continue;
          }
          const bool female = graph.PersonIsFemale(person);
          const int32_t age_group = age_group_of(person);
          auto handle = [&](uint32_t msg) {
            storage::CountRowsDecoded(1);
            core::DateTime created = graph.MessageCreationDate(msg);
            if (created < start || created >= end) return;
            int32_t month = core::Month(created);
            graph.ForEachMessageTag(msg, [&](uint32_t tag) {
              ++local[{country, month, female, age_group, tag}];
            });
          };
          graph.PersonPosts().ForEach(person, [&](uint32_t post) {
            handle(Graph::MessageOfPost(post));
          });
          graph.PersonComments().ForEach(person, [&](uint32_t comment) {
            handle(Graph::MessageOfComment(comment));
          });
        }
      },
      [&](CountMap& local) {
        for (const auto& [key, count] : local) counts[key] += count;
      },
      kExpandMorselSize);

  // Bound finisher, identical to the sequential engine: the CP-1.3 bound on
  // the message count drops losing groups before any name string is built.
  // "female" < "male", so female-first is the bool comparator leg.
  struct Cand {
    Bi2Key key;
    int64_t count;
  };
  auto better = [&graph](const Cand& a, const Cand& b) {
    if (a.count != b.count) return a.count > b.count;
    const std::string& ta = graph.TagAt(a.key.tag).name;
    const std::string& tb = graph.TagAt(b.key.tag).name;
    if (ta != tb) return ta < tb;
    if (a.key.gender_female != b.key.gender_female) {
      return a.key.gender_female;
    }
    if (a.key.age_group != b.key.age_group) {
      return a.key.age_group < b.key.age_group;
    }
    if (a.key.month != b.key.month) return a.key.month < b.key.month;
    return graph.PlaceAt(a.key.country).name <
           graph.PlaceAt(b.key.country).name;
  };
  engine::BoundRef bound;
  auto key_of = [](const Cand& c) { return c.count; };
  engine::TopK<Cand, decltype(better)> top(100, better);
  for (const auto& [key, count] : counts) {
    if (count <= params.threshold) continue;
    if (bound.CannotPlace(count)) {
      storage::CountRowsSkippedBound(1);
      continue;
    }
    if (top.Add({key, count})) top.PublishBound(bound, key_of);
  }

  std::vector<Bi2Row> rows;
  for (const Cand& c : top.Take()) {
    Bi2Row row;
    row.country = graph.PlaceAt(c.key.country).name;
    row.month = c.key.month;
    row.gender = c.key.gender_female ? "female" : "male";
    row.age_group = c.key.age_group;
    row.tag = graph.TagAt(c.key.tag).name;
    row.message_count = c.count;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Bi3Row> RunBi3(const Graph& graph, const Bi3Params& params,
                           util::ThreadPool& pool) {
  int32_t y2 = params.year, m2 = params.month + 1;
  if (m2 > 12) {
    m2 = 1;
    ++y2;
  }
  int32_t y3 = y2, m3 = m2 + 1;
  if (m3 > 12) {
    m3 = 1;
    ++y3;
  }
  const core::DateTime t1 =
      core::DateTimeFromCivil(params.year, params.month, 1);
  const core::DateTime t2 = core::DateTimeFromCivil(y2, m2, 1);
  const core::DateTime t3 = core::DateTimeFromCivil(y3, m3, 1);
  const Graph::MessageRangeView range = graph.MessageRange(t1, t3);
  const size_t num_tags = graph.NumTags();

  struct State {
    std::vector<int64_t> count1, count2;
  };
  std::vector<int64_t> count1(num_tags, 0), count2(num_tags, 0);
  Aggregate(
      pool, range.size(),
      [num_tags] {
        return State{std::vector<int64_t>(num_tags, 0),
                     std::vector<int64_t>(num_tags, 0)};
      },
      [&](State& s, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t msg = range[i];
          std::vector<int64_t>& counts =
              graph.MessageCreationDate(msg) < t2 ? s.count1 : s.count2;
          graph.ForEachMessageTag(msg, [&](uint32_t tag) { ++counts[tag]; });
        }
      },
      [&](State& s) {
        for (size_t t = 0; t < num_tags; ++t) {
          count1[t] += s.count1[t];
          count2[t] += s.count2[t];
        }
      });

  // Bound finisher, identical to the sequential engine: the CP-1.3 bound on
  // |diff| drops losing tags before their name string is dereferenced.
  struct Cand {
    uint32_t tag;
    int64_t count1;
    int64_t count2;
    int64_t diff;
  };
  auto better = [&graph](const Cand& a, const Cand& b) {
    if (a.diff != b.diff) return a.diff > b.diff;
    return graph.TagAt(a.tag).name < graph.TagAt(b.tag).name;
  };
  engine::BoundRef bound;
  auto key_of = [](const Cand& c) { return c.diff; };
  engine::TopK<Cand, decltype(better)> top(100, better);
  for (uint32_t t = 0; t < num_tags; ++t) {
    if (count1[t] == 0 && count2[t] == 0) continue;
    const int64_t diff = std::llabs(count1[t] - count2[t]);
    if (bound.CannotPlace(diff)) {
      storage::CountRowsSkippedBound(1);
      continue;
    }
    if (top.Add({t, count1[t], count2[t], diff})) {
      top.PublishBound(bound, key_of);
    }
  }

  std::vector<Bi3Row> rows;
  for (const Cand& c : top.Take()) {
    Bi3Row row;
    row.tag = graph.TagAt(c.tag).name;
    row.count_month1 = c.count1;
    row.count_month2 = c.count2;
    row.diff = c.diff;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Bi6Row> RunBi6(const Graph& graph, const Bi6Params& params,
                           util::ThreadPool& pool) {
  std::vector<Bi6Row> rows;
  const uint32_t tag = graph.TagByName(params.tag);
  if (tag == storage::kNoIdx) return rows;

  // Materialize the tag's live message list so the morsel loop has a flat
  // domain (tag adjacency keeps tombstoned rows until compaction).
  std::vector<uint32_t> domain;
  graph.TagPosts().ForEach(tag, [&](uint32_t post) {
    if (graph.PostAlive(post)) domain.push_back(Graph::MessageOfPost(post));
  });
  graph.TagComments().ForEach(tag, [&](uint32_t comment) {
    if (graph.CommentAlive(comment)) {
      domain.push_back(Graph::MessageOfComment(comment));
    }
  });

  struct Agg {
    int64_t messages = 0;
    int64_t replies = 0;
    int64_t likes = 0;
  };
  using AggMap = std::unordered_map<uint32_t, Agg>;
  AggMap by_person;
  Aggregate(
      pool, domain.size(), [] { return AggMap{}; },
      [&](AggMap& local, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t msg = domain[i];
          Agg& a = local[graph.MessageCreator(msg)];
          ++a.messages;
          a.likes += internal::MessageLikeCount(graph, msg);
          a.replies += graph.LiveReplyCount(msg);
        }
      },
      [&](AggMap& local) {
        for (const auto& [person, a] : local) {
          Agg& target = by_person[person];
          target.messages += a.messages;
          target.replies += a.replies;
          target.likes += a.likes;
        }
      },
      1024);

  // Bound finisher, identical to the sequential engine: a person strictly
  // below the k-th score is dropped before their Person record is touched.
  struct Cand {
    core::Id person_id;
    int64_t replies;
    int64_t likes;
    int64_t messages;
    int64_t score;
  };
  auto better = [](const Cand& a, const Cand& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.person_id < b.person_id;
  };
  engine::BoundRef bound;
  auto key_of = [](const Cand& c) { return c.score; };
  engine::TopK<Cand, decltype(better)> top(100, better);
  for (const auto& [person, a] : by_person) {
    const int64_t score = a.messages + 2 * a.replies + 10 * a.likes;
    if (bound.CannotPlace(score)) {
      storage::CountRowsSkippedBound(1);
      continue;
    }
    Cand c{graph.PersonAt(person).id, a.replies, a.likes, a.messages, score};
    if (top.Add(c)) top.PublishBound(bound, key_of);
  }

  for (const Cand& c : top.Take()) {
    Bi6Row row;
    row.person_id = c.person_id;
    row.reply_count = c.replies;
    row.like_count = c.likes;
    row.message_count = c.messages;
    row.score = c.score;
    rows.push_back(row);
  }
  return rows;
}

std::vector<Bi12Row> RunBi12(const Graph& graph, const Bi12Params& params,
                             util::ThreadPool& pool) {
  const core::DateTime after =
      core::DateTimeFromDate(params.date) + core::kMillisPerDay;  // exclusive
  const Graph::MessageRangeView range =
      graph.MessageRange(after, kMaxMessageDate);

  // Must match the sequential and naive engines exactly; the creator-name
  // legs make the k-way merge of the per-executor top-k sets independent of
  // which executor saw which message.
  auto better = [](const Bi12Row& a, const Bi12Row& b) {
    if (a.like_count != b.like_count) return a.like_count > b.like_count;
    if (a.message_id != b.message_id) return a.message_id < b.message_id;
    if (a.creation_date != b.creation_date) {
      return a.creation_date < b.creation_date;
    }
    if (a.creator_last_name != b.creator_last_name) {
      return a.creator_last_name < b.creator_last_name;
    }
    return a.creator_first_name < b.creator_first_name;
  };
  using Top = engine::TopK<Bi12Row, decltype(better)>;
  Top top(100, better);

  // Shared CP-1.3 bound: every slot that fills its private top-100 publishes
  // its k-th like count, and every slot prunes against the tightest published
  // value. Safe under any interleaving — a candidate strictly below some
  // slot's full-heap k-th cannot enter the merged top-100, and a stale read
  // only loosens the bound (less pruning, never a wrong result). Ties run
  // the full comparator, keeping the merge bit-identical to sequential.
  engine::BoundRef bound;
  auto key_of = [](const Bi12Row& r) { return r.like_count; };

  Aggregate(
      pool, range.size(), [&better] { return Top(100, better); },
      [&](Top& local, size_t begin, size_t end) {
        for (size_t i = begin; i < end;) {
          // Block-at-a-time pruning: test the zone's like-count max against
          // the threshold and the shared bound before decoding any row in
          // it. Tail positions report INT64_MAX and never zone-skip (the
          // tail was already date-filtered at view construction).
          const size_t zone_end = std::min(end, range.ZoneEnd(i));
          const int64_t zone_max = range.BoundZoneMax(i);
          if (zone_max <= params.like_threshold ||
              bound.CannotPlace(zone_max)) {
            storage::CountBlocksSkippedBound(1);
            i = zone_end;
            continue;
          }
          for (; i < zone_end; ++i) {
            const uint32_t msg = range[i];
            if (i < range.base_count()) storage::CountRowsDecoded(1);
            int64_t likes = internal::MessageLikeCount(graph, msg);
            if (likes <= params.like_threshold) continue;
            if (bound.CannotPlace(likes)) {  // strictly below a full k-th
              storage::CountRowsSkippedBound(1);
              continue;
            }
            Bi12Row row;
            row.message_id = graph.MessageId(msg);
            row.like_count = likes;
            row.creation_date = graph.MessageCreationDate(msg);
            if (!local.WouldAccept(row)) continue;  // slot-local pushdown
            const core::Person& creator =
                graph.PersonAt(graph.MessageCreator(msg));
            row.creator_first_name = creator.first_name;
            row.creator_last_name = creator.last_name;
            if (local.Add(std::move(row))) local.PublishBound(bound, key_of);
          }
        }
      },
      [&](Top& local) {
        for (Bi12Row& row : local.Take()) top.Add(std::move(row));
      });
  return top.Take();
}

std::vector<Bi13Row> RunBi13(const Graph& graph, const Bi13Params& params,
                             util::ThreadPool& pool) {
  using internal::CountryIdx;
  std::vector<Bi13Row> rows;
  const uint32_t country = CountryIdx(graph, params.country);
  if (country == storage::kNoIdx) return rows;

  struct MonthKey {
    int32_t year;
    int32_t month;
    bool operator<(const MonthKey& o) const {
      if (year != o.year) return year > o.year;
      return month < o.month;
    }
  };
  using GroupMap = std::map<MonthKey, std::unordered_map<uint32_t, int64_t>>;
  GroupMap groups;
  Aggregate(
      pool, graph.NumMessages(), [] { return GroupMap{}; },
      [&](GroupMap& local, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t msg = MessageAtFlat(graph, i);
          if (graph.MessageCountry(msg) != country) continue;
          core::DateTime created = graph.MessageCreationDate(msg);
          auto& tag_counts =
              local[{core::Year(created), core::Month(created)}];
          graph.ForEachMessageTag(msg,
                                  [&](uint32_t tag) { ++tag_counts[tag]; });
        }
      },
      [&](GroupMap& local) {
        for (auto& [key, tag_counts] : local) {
          auto& target = groups[key];  // keeps empty groups too
          for (const auto& [tag, count] : tag_counts) target[tag] += count;
        }
      });

  for (const auto& [key, tag_counts] : groups) {
    Bi13Row row;
    row.year = key.year;
    row.month = key.month;
    using TagCount = std::pair<std::string, int64_t>;
    auto better = [](const TagCount& a, const TagCount& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    };
    engine::TopK<TagCount, decltype(better)> top(5, better);
    for (const auto& [tag, count] : tag_counts) {
      top.Add({graph.TagAt(tag).name, count});
    }
    row.popular_tags = top.Take();
    rows.push_back(std::move(row));
    if (rows.size() == 100) break;
  }
  return rows;
}

std::vector<Bi14Row> RunBi14(const Graph& graph, const Bi14Params& params,
                             util::ThreadPool& pool) {
  const core::DateTime begin_dt = core::DateTimeFromDate(params.begin);
  const core::DateTime end_dt =
      core::DateTimeFromDate(params.end) + core::kMillisPerDay;  // inclusive
  const Graph::MessageRangeView range = graph.MessageRange(begin_dt, end_dt);

  struct Agg {
    int64_t threads = 0;
    int64_t messages = 0;
  };
  using AggMap = std::unordered_map<uint32_t, Agg>;
  AggMap by_person;

  // Pass 1 — window posts: each post index appears at most once in the
  // range, so the bitmap writes are disjoint across morsels (uint8_t, not
  // vector<bool>: no shared-word bit packing).
  std::vector<uint8_t> post_in_window(graph.NumPosts(), 0);
  Aggregate(
      pool, range.size(), [] { return AggMap{}; },
      [&](AggMap& local, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t msg = range[i];
          if (!Graph::IsPost(msg)) continue;
          post_in_window[Graph::AsPost(msg)] = 1;
          Agg& a = local[graph.PostCreator(Graph::AsPost(msg))];
          ++a.threads;
          ++a.messages;
        }
      },
      [&](AggMap& local) {
        for (const auto& [person, a] : local) {
          Agg& target = by_person[person];
          target.threads += a.threads;
          target.messages += a.messages;
        }
      });
  // Pass 2 — window comments probe the completed bitmap (read-only now).
  Aggregate(
      pool, range.size(), [] { return AggMap{}; },
      [&](AggMap& local, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t msg = range[i];
          if (Graph::IsPost(msg)) continue;
          uint32_t root = graph.CommentRootPost(Graph::AsComment(msg));
          if (!post_in_window[root]) continue;
          ++local[graph.PostCreator(root)].messages;
        }
      },
      [&](AggMap& local) {
        for (const auto& [person, a] : local) {
          by_person[person].messages += a.messages;
        }
      });

  // Bound finisher, identical to the sequential engine: the message count
  // decides all but ties, so losers drop before their Person record is
  // touched and names materialize only for the final ≤100 rows.
  struct Cand {
    uint32_t person;
    core::Id person_id;
    int64_t threads;
    int64_t messages;
  };
  auto better = [](const Cand& a, const Cand& b) {
    if (a.messages != b.messages) return a.messages > b.messages;
    return a.person_id < b.person_id;
  };
  engine::BoundRef bound;
  auto key_of = [](const Cand& c) { return c.messages; };
  engine::TopK<Cand, decltype(better)> top(100, better);
  for (const auto& [person, a] : by_person) {
    if (bound.CannotPlace(a.messages)) {
      storage::CountRowsSkippedBound(1);
      continue;
    }
    Cand c{person, graph.PersonAt(person).id, a.threads, a.messages};
    if (top.Add(c)) top.PublishBound(bound, key_of);
  }

  std::vector<Bi14Row> rows;
  for (const Cand& c : top.Take()) {
    const core::Person& rec = graph.PersonAt(c.person);
    rows.push_back(
        {rec.id, rec.first_name, rec.last_name, c.threads, c.messages});
  }
  return rows;
}

std::vector<Bi17Row> RunBi17(const Graph& graph, const Bi17Params& params,
                             util::ThreadPool& pool) {
  using internal::CountryIdx;
  using internal::PersonsOfCountry;
  const uint32_t country = CountryIdx(graph, params.country);
  if (country == storage::kNoIdx) return {{0}};
  const std::vector<bool> local = PersonsOfCountry(graph, country);
  const size_t num_persons = graph.NumPersons();

  // Partitioning by the lowest triangle vertex keeps every {a<b<c} counted
  // exactly once; each executor carries its own marked-neighbour bitmap.
  struct State {
    std::vector<uint8_t> marked;
    int64_t triangles = 0;
  };
  int64_t triangles = 0;
  Aggregate(
      pool, num_persons,
      [num_persons] { return State{std::vector<uint8_t>(num_persons, 0), 0}; },
      [&](State& s, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t a = static_cast<uint32_t>(i);
          if (!local[a]) continue;
          std::vector<uint32_t> bs;
          graph.Knows().ForEach(a, [&](uint32_t b) {
            if (b > a && local[b]) {
              s.marked[b] = 1;
              bs.push_back(b);
            }
          });
          for (uint32_t b : bs) {
            graph.Knows().ForEach(b, [&](uint32_t c) {
              if (c > b && s.marked[c]) ++s.triangles;
            });
          }
          for (uint32_t b : bs) s.marked[b] = 0;
        }
      },
      [&](State& s) { triangles += s.triangles; }, kExpandMorselSize);
  return {{triangles}};
}

std::vector<Bi20Row> RunBi20(const Graph& graph, const Bi20Params& params,
                             util::ThreadPool& pool) {
  // The outer UNWIND stays sequential; each class rollup is itself a
  // morsel-parallel message scan, so a single-class parameter list still
  // uses the whole pool.
  std::vector<Bi20Row> rows;
  rows.reserve(params.tag_classes.size());
  for (const std::string& class_name : params.tag_classes) {
    if (graph.TagClassByName(class_name) == storage::kNoIdx) continue;
    std::vector<bool> tags =
        internal::TagsOfClass(graph, class_name, /*transitive=*/true);
    int64_t count = 0;
    Aggregate(
        pool, graph.NumMessages(), [] { return int64_t{0}; },
        [&](int64_t& local, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            const uint32_t msg = MessageAtFlat(graph, i);
            bool match = false;
            graph.ForEachMessageTag(msg, [&](uint32_t tag) {
              if (tags[tag]) match = true;
            });
            if (match) ++local;  // distinct messages, not tag occurrences
          }
        },
        [&](int64_t& local) { count += local; });
    rows.push_back({class_name, count});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi20Row& a, const Bi20Row& b) {
        if (a.message_count != b.message_count) {
          return a.message_count > b.message_count;
        }
        return a.tag_class < b.tag_class;
      },
      100);
  return rows;
}

std::vector<Bi23Row> RunBi23(const Graph& graph, const Bi23Params& params,
                             util::ThreadPool& pool) {
  using internal::CountryIdx;
  std::vector<Bi23Row> rows;
  const uint32_t home = CountryIdx(graph, params.country);
  if (home == storage::kNoIdx) return rows;

  using CountMap = std::unordered_map<uint64_t, int64_t>;
  CountMap counts;
  Aggregate(
      pool, graph.NumMessages(), [] { return CountMap{}; },
      [&](CountMap& local, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t msg = MessageAtFlat(graph, i);
          uint32_t creator = graph.MessageCreator(msg);
          if (graph.PersonCountry(creator) != home) continue;
          uint32_t dest = graph.MessageCountry(msg);
          if (dest == home) continue;
          int32_t month = core::Month(graph.MessageCreationDate(msg));
          ++local[internal::PairKey(dest, static_cast<uint32_t>(month))];
        }
      },
      [&](CountMap& local) {
        for (const auto& [key, count] : local) counts[key] += count;
      });

  rows.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    uint32_t dest = static_cast<uint32_t>(key >> 32);
    int32_t month = static_cast<int32_t>(static_cast<uint32_t>(key));
    rows.push_back({count, graph.PlaceAt(dest).name, month});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi23Row& a, const Bi23Row& b) {
        if (a.message_count != b.message_count) {
          return a.message_count > b.message_count;
        }
        if (a.destination != b.destination) {
          return a.destination < b.destination;
        }
        return a.month < b.month;
      },
      100);
  return rows;
}

std::vector<Bi24Row> RunBi24(const Graph& graph, const Bi24Params& params,
                             util::ThreadPool& pool) {
  using internal::ContinentOfCountry;
  const std::vector<bool> class_tags =
      internal::TagsOfClass(graph, params.tag_class, /*transitive=*/false);

  struct Key {
    int32_t year;
    int32_t month;
    uint32_t continent;
    bool operator<(const Key& o) const {
      if (year != o.year) return year < o.year;
      if (month != o.month) return month < o.month;
      return continent < o.continent;
    }
  };
  struct Agg {
    int64_t messages = 0;
    int64_t likes = 0;
  };
  using GroupMap = std::map<Key, Agg>;
  GroupMap groups;
  Aggregate(
      pool, graph.NumMessages(), [] { return GroupMap{}; },
      [&](GroupMap& local, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t msg = MessageAtFlat(graph, i);
          bool match = false;
          graph.ForEachMessageTag(msg, [&](uint32_t tag) {
            if (class_tags[tag]) match = true;
          });
          if (!match) continue;
          core::DateTime created = graph.MessageCreationDate(msg);
          uint32_t continent =
              ContinentOfCountry(graph, graph.MessageCountry(msg));
          Agg& agg =
              local[{core::Year(created), core::Month(created), continent}];
          ++agg.messages;
          agg.likes += internal::MessageLikeCount(graph, msg);
        }
      },
      [&](GroupMap& local) {
        for (const auto& [key, agg] : local) {
          Agg& target = groups[key];
          target.messages += agg.messages;
          target.likes += agg.likes;
        }
      });

  std::vector<Bi24Row> rows;
  rows.reserve(groups.size());
  for (const auto& [key, agg] : groups) {
    rows.push_back({agg.messages, agg.likes, key.year, key.month,
                    key.continent == storage::kNoIdx
                        ? std::string()
                        : graph.PlaceAt(key.continent).name});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi24Row& a, const Bi24Row& b) {
        if (a.year != b.year) return a.year < b.year;
        if (a.month != b.month) return a.month < b.month;
        return a.continent < b.continent;
      },
      100);
  return rows;
}

}  // namespace snb::bi::parallel

#include <algorithm>
#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/bfs.h"

namespace snb::bi {

std::vector<Bi25Row> RunBi25(const Graph& graph, const Bi25Params& params) {
  std::vector<Bi25Row> rows;
  const uint32_t p1 = graph.PersonIdx(params.person1_id);
  const uint32_t p2 = graph.PersonIdx(params.person2_id);
  if (p1 == storage::kNoIdx || p2 == storage::kNoIdx) return rows;
  const core::DateTime start = core::DateTimeFromDate(params.start_date);
  const core::DateTime end =
      core::DateTimeFromDate(params.end_date) + core::kMillisPerDay;

  CancelPoller poll;
  std::vector<std::vector<uint32_t>> paths =
      engine::AllShortestPaths(graph.Knows(), p1, p2, /*max_paths=*/10000);
  if (paths.empty()) return rows;

  auto forum_in_window = [&](uint32_t msg) {
    uint32_t forum = internal::ForumOfMessage(graph, msg);
    core::DateTime created = graph.ForumAt(forum).creation_date;
    return created >= start && created < end;
  };

  // Pair weight = Σ over direct replies between the two persons (both
  // directions) in forums created inside the window: post reply 1.0,
  // comment reply 0.5. Memoized per unordered pair (CP-5.3).
  std::unordered_map<uint64_t, double> weight_memo;
  auto pair_weight = [&](uint32_t a, uint32_t b) {
    uint64_t key = internal::PairKey(std::min(a, b), std::max(a, b));
    auto it = weight_memo.find(key);
    if (it != weight_memo.end()) return it->second;
    double w = 0;
    auto scan = [&](uint32_t replier, uint32_t author) {
      graph.PersonComments().ForEach(replier, [&](uint32_t comment) {
        poll.Tick();
        uint32_t parent = graph.CommentReplyOf(comment);
        if (graph.MessageCreator(parent) != author) return;
        if (!forum_in_window(parent)) return;
        w += Graph::IsPost(parent) ? 1.0 : 0.5;
      });
    };
    scan(a, b);
    scan(b, a);
    weight_memo[key] = w;
    return w;
  };

  rows.reserve(paths.size());
  for (const std::vector<uint32_t>& path : paths) {
    Bi25Row row;
    row.person_ids.reserve(path.size());
    for (uint32_t p : path) row.person_ids.push_back(graph.PersonAt(p).id);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      row.weight += pair_weight(path[i], path[i + 1]);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Bi25Row& a, const Bi25Row& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.person_ids < b.person_ids;
  });
  return rows;
}

}  // namespace snb::bi

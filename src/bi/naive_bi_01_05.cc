// Naive engine, BI 1–5. See naive.h for the ground rules.

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "bi/naive.h"
#include "bi/naive_common.h"

namespace snb::bi::naive {

using internal::kNoIdx;

std::vector<Bi1Row> RunBi1(const Graph& graph, const Bi1Params& params) {
  const core::DateTime cutoff = core::DateTimeFromDate(params.date);
  struct Group {
    int64_t count = 0;
    int64_t sum = 0;
  };
  std::map<std::tuple<int32_t, bool, int32_t>, Group> groups;
  int64_t total = 0;
  auto category = [](int32_t len) {
    return len < 40 ? 0 : len < 80 ? 1 : len < 160 ? 2 : 3;
  };
  auto add = [&](core::DateTime created, bool is_comment, int32_t length) {
    if (created >= cutoff) return;
    Group& g = groups[{core::Year(created), is_comment, category(length)}];
    ++g.count;
    g.sum += length;
    ++total;
  };
  for (uint32_t i = 0; i < graph.NumPosts(); ++i) {
    const core::Post& p = graph.PostAt(i);
    add(p.creation_date, false, p.length);
  }
  for (uint32_t i = 0; i < graph.NumComments(); ++i) {
    const core::Comment& c = graph.CommentAt(i);
    add(c.creation_date, true, c.length);
  }
  std::vector<Bi1Row> rows;
  for (const auto& [key, g] : groups) {
    Bi1Row row;
    row.year = std::get<0>(key);
    row.is_comment = std::get<1>(key);
    row.length_category = std::get<2>(key);
    row.message_count = g.count;
    row.average_message_length =
        static_cast<double>(g.sum) / static_cast<double>(g.count);
    row.sum_message_length = g.sum;
    row.percentage_of_messages =
        total == 0 ? 0.0
                   : static_cast<double>(g.count) / static_cast<double>(total);
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const Bi1Row& a, const Bi1Row& b) {
    if (a.year != b.year) return a.year > b.year;
    if (a.is_comment != b.is_comment) return !a.is_comment;
    return a.length_category < b.length_category;
  });
  return rows;
}

std::vector<Bi2Row> RunBi2(const Graph& graph, const Bi2Params& params) {
  const core::DateTime start = core::DateTimeFromDate(params.start_date);
  const core::DateTime end =
      core::DateTimeFromDate(params.end_date) + core::kMillisPerDay;
  const core::DateTime sim_end = core::DateTimeFromDate(params.simulation_end);
  uint32_t c1 = graph.PlaceByName(params.country1);
  uint32_t c2 = graph.PlaceByName(params.country2);

  std::map<std::tuple<std::string, int32_t, std::string, int32_t, std::string>,
           int64_t>
      counts;
  auto handle = [&](uint32_t msg) {
    core::DateTime created = graph.MessageCreationDate(msg);
    if (created < start || created >= end) return;
    uint32_t creator = graph.MessageCreator(msg);
    uint32_t country = internal::PersonCountrySlow(graph, creator);
    if (country != c1 && country != c2) return;
    const core::Person& person = graph.PersonAt(creator);
    int64_t years = (sim_end - core::DateTimeFromDate(person.birthday)) /
                    (365 * core::kMillisPerDay);
    int32_t age_group = static_cast<int32_t>(years / 5);
    for (uint32_t tag : internal::MessageTagsSlow(graph, msg)) {
      ++counts[{graph.PlaceAt(country).name, core::Month(created),
                person.gender, age_group, graph.TagAt(tag).name}];
    }
  };
  graph.ForEachMessage(handle);

  std::vector<Bi2Row> rows;
  for (const auto& [key, count] : counts) {
    if (count <= params.threshold) continue;
    rows.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key),
                    std::get<3>(key), std::get<4>(key), count});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi2Row& a, const Bi2Row& b) {
    if (a.message_count != b.message_count) {
      return a.message_count > b.message_count;
    }
    if (a.tag != b.tag) return a.tag < b.tag;
    if (a.gender != b.gender) return a.gender < b.gender;
    if (a.age_group != b.age_group) return a.age_group < b.age_group;
    if (a.month != b.month) return a.month < b.month;
    return a.country < b.country;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi3Row> RunBi3(const Graph& graph, const Bi3Params& params) {
  int32_t y2 = params.year, m2 = params.month + 1;
  if (m2 > 12) {
    m2 = 1;
    ++y2;
  }
  int32_t y3 = y2, m3 = m2 + 1;
  if (m3 > 12) {
    m3 = 1;
    ++y3;
  }
  const core::DateTime t1 =
      core::DateTimeFromCivil(params.year, params.month, 1);
  const core::DateTime t2 = core::DateTimeFromCivil(y2, m2, 1);
  const core::DateTime t3 = core::DateTimeFromCivil(y3, m3, 1);

  std::unordered_map<std::string, std::pair<int64_t, int64_t>> counts;
  graph.ForEachMessage([&](uint32_t msg) {
    core::DateTime created = graph.MessageCreationDate(msg);
    if (created < t1 || created >= t3) return;
    for (uint32_t tag : internal::MessageTagsSlow(graph, msg)) {
      auto& c = counts[graph.TagAt(tag).name];
      if (created < t2) {
        ++c.first;
      } else {
        ++c.second;
      }
    }
  });
  std::vector<Bi3Row> rows;
  for (const auto& [tag, c] : counts) {
    rows.push_back({tag, c.first, c.second, std::llabs(c.first - c.second)});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi3Row& a, const Bi3Row& b) {
    if (a.diff != b.diff) return a.diff > b.diff;
    return a.tag < b.tag;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

std::vector<Bi4Row> RunBi4(const Graph& graph, const Bi4Params& params) {
  std::vector<bool> class_tags =
      internal::TagsOfClassSlow(graph, params.tag_class, false);
  uint32_t country = graph.PlaceByName(params.country);

  // Posts with a class tag per forum, from one post scan.
  std::unordered_map<uint32_t, int64_t> posts_per_forum;
  for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
    bool match = false;
    for (uint32_t tag :
         internal::MessageTagsSlow(graph, Graph::MessageOfPost(post))) {
      if (class_tags[tag]) match = true;
    }
    if (match) ++posts_per_forum[graph.ForumIdx(graph.PostAt(post).forum)];
  }

  std::vector<Bi4Row> rows;
  for (uint32_t forum = 0; forum < graph.NumForums(); ++forum) {
    const core::Forum& f = graph.ForumAt(forum);
    uint32_t moderator = graph.PersonIdx(f.moderator);
    if (internal::PersonCountrySlow(graph, moderator) != country) continue;
    auto it = posts_per_forum.find(forum);
    if (it == posts_per_forum.end()) continue;
    rows.push_back({f.id, f.title, f.creation_date,
                    graph.PersonAt(moderator).id, it->second});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi4Row& a, const Bi4Row& b) {
    if (a.post_count != b.post_count) return a.post_count > b.post_count;
    return a.forum_id < b.forum_id;
  });
  if (rows.size() > 20) rows.resize(20);
  return rows;
}

std::vector<Bi5Row> RunBi5(const Graph& graph, const Bi5Params& params) {
  uint32_t country = graph.PlaceByName(params.country);
  std::vector<Bi5Row> rows;
  if (country == kNoIdx) return rows;

  std::unordered_map<uint32_t, int64_t> popularity;
  internal::ForEachMembership(
      graph, [&](uint32_t forum, uint32_t person, core::DateTime) {
        if (internal::PersonCountrySlow(graph, person) == country) {
          ++popularity[forum];
        }
      });

  struct ForumPop {
    uint32_t forum;
    core::Id id;
    int64_t members;
  };
  std::vector<ForumPop> pops;
  for (const auto& [forum, members] : popularity) {
    pops.push_back({forum, graph.ForumAt(forum).id, members});
  }
  std::sort(pops.begin(), pops.end(), [](const ForumPop& a, const ForumPop& b) {
    if (a.members != b.members) return a.members > b.members;
    return a.id < b.id;
  });
  if (pops.size() > 100) pops.resize(100);
  std::unordered_set<uint32_t> top_forums;
  for (const ForumPop& f : pops) top_forums.insert(f.forum);

  std::unordered_map<uint32_t, int64_t> post_count;
  internal::ForEachMembership(
      graph, [&](uint32_t forum, uint32_t person, core::DateTime) {
        if (top_forums.contains(forum)) post_count.emplace(person, 0);
      });
  for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
    uint32_t forum = graph.ForumIdx(graph.PostAt(post).forum);
    if (!top_forums.contains(forum)) continue;
    auto it = post_count.find(graph.PersonIdx(graph.PostAt(post).creator));
    if (it != post_count.end()) ++it->second;
  }

  for (const auto& [person, count] : post_count) {
    const core::Person& rec = graph.PersonAt(person);
    rows.push_back(
        {rec.id, rec.first_name, rec.last_name, rec.creation_date, count});
  }
  std::sort(rows.begin(), rows.end(), [](const Bi5Row& a, const Bi5Row& b) {
    if (a.post_count != b.post_count) return a.post_count > b.post_count;
    return a.person_id < b.person_id;
  });
  if (rows.size() > 100) rows.resize(100);
  return rows;
}

}  // namespace snb::bi::naive

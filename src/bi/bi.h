// The Business Intelligence workload, reads BI 1–25 (spec §5.1, version
// 0.3.3 / GRADES-NDA 2018 draft).
//
// Every query is a pure function of (graph, params) returning typed rows in
// the spec's sort order, truncated to the spec's limit. Queries whose full
// card appears only as an untranscribed figure in the supplied text are
// reconstructed from the official 0.3.3 reference definitions; each such
// reconstruction is documented at its declaration (see DESIGN.md).
//
// A naive tuple-at-a-time baseline of every query lives in bi/naive.h with
// identical signatures; tests cross-validate the two engines on generated
// networks.

#ifndef SNB_BI_BI_H_
#define SNB_BI_BI_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "core/date_time.h"
#include "storage/graph.h"

namespace snb::bi {

using storage::Graph;

// ---------------------------------------------------------------------------
// BI 1 — Posting summary.
// Messages created before $date, grouped by (year, isComment,
// lengthCategory 0:[0,40) 1:[40,80) 2:[80,160) 3:[160,∞)).
// Sort: year ↓, isComment ↑ (posts first), lengthCategory ↑. No limit.
// ---------------------------------------------------------------------------

struct Bi1Params {
  core::Date date = 0;
};

struct Bi1Row {
  int32_t year = 0;
  bool is_comment = false;
  int32_t length_category = 0;
  int64_t message_count = 0;
  double average_message_length = 0;
  int64_t sum_message_length = 0;
  double percentage_of_messages = 0;

  bool operator==(const Bi1Row&) const = default;
};

std::vector<Bi1Row> RunBi1(const Graph& graph, const Bi1Params& params);

// ---------------------------------------------------------------------------
// BI 2 — Top tags for country, age, gender, time. [reconstructed]
// Messages in [startDate, endDate] whose creator lives in $country1 or
// $country2; group by (country, month(creation), creator gender, ageGroup,
// tag) where ageGroup = floor(years between creator birthday and the
// simulation end / 5). Keep groups with messageCount > $threshold (official
// draft uses a fixed 100; exposed as a parameter so micro scale factors
// produce results). Sort: messageCount ↓, tag ↑, gender ↑, ageGroup ↑,
// month ↑, country ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi2Params {
  core::Date start_date = 0;
  core::Date end_date = 0;
  std::string country1;
  std::string country2;
  core::Date simulation_end = 0;  // for the age-group calculation
  int64_t threshold = 100;
};

struct Bi2Row {
  std::string country;
  int32_t month = 0;
  std::string gender;
  int32_t age_group = 0;
  std::string tag;
  int64_t message_count = 0;

  bool operator==(const Bi2Row&) const = default;
};

std::vector<Bi2Row> RunBi2(const Graph& graph, const Bi2Params& params);

// ---------------------------------------------------------------------------
// BI 3 — Tag evolution. [reconstructed]
// Compare per-tag message volume between month ($year,$month) and the next
// month. Sort: |diff| ↓, tag ↑. Limit 100. Tags active in either month.
// ---------------------------------------------------------------------------

struct Bi3Params {
  int32_t year = 0;
  int32_t month = 0;  // 1..12
};

struct Bi3Row {
  std::string tag;
  int64_t count_month1 = 0;
  int64_t count_month2 = 0;
  int64_t diff = 0;  // |count1 - count2|

  bool operator==(const Bi3Row&) const = default;
};

std::vector<Bi3Row> RunBi3(const Graph& graph, const Bi3Params& params);

// ---------------------------------------------------------------------------
// BI 4 — Popular topics in a country. [reconstructed]
// Forums whose moderator lives in $country, counting the forum's posts whose
// tag belongs to $tagClass (direct class, not descendants). Forums with at
// least one such post. Sort: postCount ↓, forum.id ↑. Limit 20.
// ---------------------------------------------------------------------------

struct Bi4Params {
  std::string tag_class;
  std::string country;
};

struct Bi4Row {
  core::Id forum_id = 0;
  std::string forum_title;
  core::DateTime forum_creation_date = 0;
  core::Id moderator_id = 0;
  int64_t post_count = 0;

  bool operator==(const Bi4Row&) const = default;
};

std::vector<Bi4Row> RunBi4(const Graph& graph, const Bi4Params& params);

// ---------------------------------------------------------------------------
// BI 5 — Top posters in a country. [reconstructed]
// The 100 most popular forums of $country (popularity = number of members
// living in the country; ties by forum id ↑). For every member of any of
// those forums, count the posts they created in those forums (0 allowed).
// Sort: postCount ↓, person.id ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi5Params {
  std::string country;
};

struct Bi5Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;
  core::DateTime creation_date = 0;
  int64_t post_count = 0;

  bool operator==(const Bi5Row&) const = default;
};

std::vector<Bi5Row> RunBi5(const Graph& graph, const Bi5Params& params);

// ---------------------------------------------------------------------------
// BI 6 — Most active posters of a given topic. [reconstructed]
// Persons who created a message with $tag: messageCount (their messages with
// the tag), likeCount (likes received on those), replyCount (direct reply
// comments to those); score = messageCount + 2·replyCount + 10·likeCount.
// Sort: score ↓, person.id ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi6Params {
  std::string tag;
};

struct Bi6Row {
  core::Id person_id = 0;
  int64_t reply_count = 0;
  int64_t like_count = 0;
  int64_t message_count = 0;
  int64_t score = 0;

  bool operator==(const Bi6Row&) const = default;
};

std::vector<Bi6Row> RunBi6(const Graph& graph, const Bi6Params& params);

// ---------------------------------------------------------------------------
// BI 7 — Most authoritative users on a given topic. [reconstructed]
// Persons who created a message with $tag. authorityScore = sum, over
// persons q who liked any of those messages, of q's popularity, where
// popularity(q) = total likes on any message q ever created. Each liker
// counts once per (author, liker) pair. Sort: authorityScore ↓,
// person.id ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi7Params {
  std::string tag;
};

struct Bi7Row {
  core::Id person_id = 0;
  int64_t authority_score = 0;

  bool operator==(const Bi7Row&) const = default;
};

std::vector<Bi7Row> RunBi7(const Graph& graph, const Bi7Params& params);

// ---------------------------------------------------------------------------
// BI 8 — Related topics. [reconstructed]
// Tags of comments that directly reply to posts tagged $tag, excluding the
// tag itself; count the reply comments carrying each related tag.
// Sort: count ↓, relatedTag ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi8Params {
  std::string tag;
};

struct Bi8Row {
  std::string related_tag;
  int64_t count = 0;

  bool operator==(const Bi8Row&) const = default;
};

std::vector<Bi8Row> RunBi8(const Graph& graph, const Bi8Params& params);

// ---------------------------------------------------------------------------
// BI 9 — Forum with related tags. [reconstructed]
// Forums with more than $threshold members: count their posts whose tag is
// of $tagClass1 (count1) and of $tagClass2 (count2), direct classes.
// Sort: count1 ↓, count2 ↓, forum.id ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi9Params {
  std::string tag_class1;
  std::string tag_class2;
  int64_t threshold = 0;
};

struct Bi9Row {
  core::Id forum_id = 0;
  int64_t count1 = 0;
  int64_t count2 = 0;

  bool operator==(const Bi9Row&) const = default;
};

std::vector<Bi9Row> RunBi9(const Graph& graph, const Bi9Params& params);

// ---------------------------------------------------------------------------
// BI 10 — Central person for a tag. [reconstructed]
// score(p) = 100·[p has interest $tag] + |p's messages with $tag created
// after $date|. friendsScore = Σ score(friend). Persons with score > 0 or
// friendsScore > 0. Sort: score + friendsScore ↓, person.id ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi10Params {
  std::string tag;
  core::Date date = 0;
};

struct Bi10Row {
  core::Id person_id = 0;
  int64_t score = 0;
  int64_t friends_score = 0;

  bool operator==(const Bi10Row&) const = default;
};

std::vector<Bi10Row> RunBi10(const Graph& graph, const Bi10Params& params);

// ---------------------------------------------------------------------------
// BI 11 — Unrelated replies. [reconstructed]
// Reply comments by persons in $country to posts, where the comment shares
// no tag with the parent post and contains none of the $blacklist words.
// Group by (person, tag of the comment): replyCount, likeCount (likes on
// the qualifying comments carrying the tag).
// Sort: likeCount ↓, person.id ↑, tag ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi11Params {
  std::string country;
  std::vector<std::string> blacklist;
};

struct Bi11Row {
  core::Id person_id = 0;
  std::string tag;
  int64_t like_count = 0;
  int64_t reply_count = 0;

  bool operator==(const Bi11Row&) const = default;
};

std::vector<Bi11Row> RunBi11(const Graph& graph, const Bi11Params& params);

// ---------------------------------------------------------------------------
// BI 12 — Trending posts.
// Messages created after $date (exclusive — interpreted, as in IC 2's
// "excluding that day", as strictly after the given calendar day) with more
// than $likeThreshold likes. Post and Comment ids live in separate id
// spaces, so the id tie-break is refined by creationDate.
// Sort: likeCount ↓, message.id ↑, creationDate ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi12Params {
  core::Date date = 0;
  int64_t like_threshold = 0;
};

struct Bi12Row {
  core::Id message_id = 0;
  core::DateTime creation_date = 0;
  std::string creator_first_name;
  std::string creator_last_name;
  int64_t like_count = 0;

  bool operator==(const Bi12Row&) const = default;
};

std::vector<Bi12Row> RunBi12(const Graph& graph, const Bi12Params& params);

// ---------------------------------------------------------------------------
// BI 13 — Popular tags per month in a country.
// Messages located in $country grouped by creation (year, month); for each
// group the 5 most popular tags (by message count within the group; ties by
// tag name ↑). Groups without tagged messages appear with an empty list.
// Sort: year ↓, month ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi13Params {
  std::string country;
};

struct Bi13Row {
  int32_t year = 0;
  int32_t month = 0;
  std::vector<std::pair<std::string, int64_t>> popular_tags;

  bool operator==(const Bi13Row&) const = default;
};

std::vector<Bi13Row> RunBi13(const Graph& graph, const Bi13Params& params);

// ---------------------------------------------------------------------------
// BI 14 — Top thread initiators.
// threadCount = posts by the person in [begin, end]; messageCount = those
// posts plus all comments in their reply trees created in [begin, end].
// Persons with threadCount > 0. Sort: messageCount ↓, person.id ↑.
// Limit 100.
// ---------------------------------------------------------------------------

struct Bi14Params {
  core::Date begin = 0;
  core::Date end = 0;  // inclusive, converted to < end+1day
};

struct Bi14Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;
  int64_t thread_count = 0;
  int64_t message_count = 0;

  bool operator==(const Bi14Row&) const = default;
};

std::vector<Bi14Row> RunBi14(const Graph& graph, const Bi14Params& params);

// ---------------------------------------------------------------------------
// BI 15 — Social normals. [reconstructed]
// Among persons of $country: average number of friends who also live in
// $country (over the country's persons); report persons whose same-country
// friend count equals floor(average). Sort: person.id ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi15Params {
  std::string country;
};

struct Bi15Row {
  core::Id person_id = 0;
  int64_t count = 0;

  bool operator==(const Bi15Row&) const = default;
};

std::vector<Bi15Row> RunBi15(const Graph& graph, const Bi15Params& params);

// ---------------------------------------------------------------------------
// BI 16 — Experts in social circle.
// Persons living in $country connected to $personId by a knows path of
// length in [minPathDistance, maxPathDistance]. Per the spec's own note,
// reference implementations admit persons also reachable on shorter paths;
// following them, a person qualifies when their shortest distance d
// satisfies 1 ≤ d ≤ maxPathDistance. For each, their messages carrying at
// least one tag of $tagClass (direct); group by (person, tag over *all*
// tags of those messages): messageCount.
// Sort: messageCount ↓, tag ↑, person.id ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi16Params {
  core::Id person_id = 0;
  std::string country;
  std::string tag_class;
  int32_t min_path_distance = 1;
  int32_t max_path_distance = 2;
};

struct Bi16Row {
  core::Id person_id = 0;
  std::string tag;
  int64_t message_count = 0;

  bool operator==(const Bi16Row&) const = default;
};

std::vector<Bi16Row> RunBi16(const Graph& graph, const Bi16Params& params);

// ---------------------------------------------------------------------------
// BI 17 — Friend triangles. [reconstructed]
// The number of distinct person triples {a, b, c}, all living in $country,
// with knows edges a–b, b–c, c–a. Single-row result.
// ---------------------------------------------------------------------------

struct Bi17Params {
  std::string country;
};

struct Bi17Row {
  int64_t count = 0;

  bool operator==(const Bi17Row&) const = default;
};

std::vector<Bi17Row> RunBi17(const Graph& graph, const Bi17Params& params);

// ---------------------------------------------------------------------------
// BI 18 — How many persons have a given number of messages.
// messageCount(p) = p's messages with non-empty content, length <
// $lengthThreshold, creationDate > $date, and thread-root-post language in
// $languages (a post's language is its own attribute; a comment inherits
// the root post's). Every person counts, including those with 0 qualifying
// messages. Result: (messageCount, personCount).
// Sort: personCount ↓, messageCount ↓.
// ---------------------------------------------------------------------------

struct Bi18Params {
  core::Date date = 0;
  int32_t length_threshold = 0;
  std::vector<std::string> languages;
};

struct Bi18Row {
  int64_t message_count = 0;
  int64_t person_count = 0;

  bool operator==(const Bi18Row&) const = default;
};

std::vector<Bi18Row> RunBi18(const Graph& graph, const Bi18Params& params);

// ---------------------------------------------------------------------------
// BI 19 — Stranger's interaction. [reconstructed]
// Strangers: persons who are members of at least one forum tagged with a tag
// of $tagClass1 AND of at least one forum tagged with a tag of $tagClass2.
// For persons born after $date: comments they wrote that transitively reply
// to a message created by a stranger they do not know (and are not
// themselves). Count distinct strangers and total such comments.
// Sort: interactionCount ↓, person.id ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi19Params {
  core::Date date = 0;
  std::string tag_class1;
  std::string tag_class2;
};

struct Bi19Row {
  core::Id person_id = 0;
  int64_t stranger_count = 0;
  int64_t interaction_count = 0;

  bool operator==(const Bi19Row&) const = default;
};

std::vector<Bi19Row> RunBi19(const Graph& graph, const Bi19Params& params);

// ---------------------------------------------------------------------------
// BI 20 — High-level topics.
// For each $tagClasses entry: messages with a tag whose class is the given
// class or any descendant. Sort: messageCount ↓, tagClass ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi20Params {
  std::vector<std::string> tag_classes;
};

struct Bi20Row {
  std::string tag_class;
  int64_t message_count = 0;

  bool operator==(const Bi20Row&) const = default;
};

std::vector<Bi20Row> RunBi20(const Graph& graph, const Bi20Params& params);

// ---------------------------------------------------------------------------
// BI 21 — Zombies in a country.
// Zombies: persons of $country created before $endDate averaging < 1 message
// per month between their creation and $endDate (months counted inclusively
// on both partial ends). zombieLikeCount counts likes from zombie profiles
// created before $endDate; totalLikeCount counts likes from any profile
// created before $endDate; zombieScore = ratio (0.0 when no likes). Only
// likes to messages created before $endDate by the zombie are considered.
// Sort: zombieScore ↓, zombie.id ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi21Params {
  std::string country;
  core::Date end_date = 0;
};

struct Bi21Row {
  core::Id zombie_id = 0;
  int64_t zombie_like_count = 0;
  int64_t total_like_count = 0;
  double zombie_score = 0;

  bool operator==(const Bi21Row&) const = default;
};

std::vector<Bi21Row> RunBi21(const Graph& graph, const Bi21Params& params);

// ---------------------------------------------------------------------------
// BI 22 — International dialog. [reconstructed]
// For person pairs (p1 of $country1, p2 of $country2), score =
// 4·|direct replies between them (either direction)| + 10·[p1 knows p2] +
// 1·|likes between them (either direction)|. Pairs with score > 0; the city
// reported is p1's. Sort: score ↓, p1.id ↑, p2.id ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi22Params {
  std::string country1;
  std::string country2;
};

struct Bi22Row {
  core::Id person1_id = 0;
  core::Id person2_id = 0;
  std::string city1;
  int64_t score = 0;

  bool operator==(const Bi22Row&) const = default;
};

std::vector<Bi22Row> RunBi22(const Graph& graph, const Bi22Params& params);

// ---------------------------------------------------------------------------
// BI 23 — Holiday destinations. [reconstructed]
// Messages by persons living in $country but located in a different country
// ("travel posts"), grouped by (destination country, month of creation).
// Sort: messageCount ↓, destination ↑, month ↑. Limit 100.
// ---------------------------------------------------------------------------

struct Bi23Params {
  std::string country;
};

struct Bi23Row {
  int64_t message_count = 0;
  std::string destination;
  int32_t month = 0;

  bool operator==(const Bi23Row&) const = default;
};

std::vector<Bi23Row> RunBi23(const Graph& graph, const Bi23Params& params);

// ---------------------------------------------------------------------------
// BI 24 — Messages by topic and continent. [reconstructed]
// Messages with a tag of $tagClass (direct), grouped by (year, month,
// continent of the message's location): messageCount and likeCount (likes
// received by those messages). Sort: year ↑, month ↑, continent ↑.
// Limit 100.
// ---------------------------------------------------------------------------

struct Bi24Params {
  std::string tag_class;
};

struct Bi24Row {
  int64_t message_count = 0;
  int64_t like_count = 0;
  int32_t year = 0;
  int32_t month = 0;
  std::string continent;

  bool operator==(const Bi24Row&) const = default;
};

std::vector<Bi24Row> RunBi24(const Graph& graph, const Bi24Params& params);

// ---------------------------------------------------------------------------
// BI 25 — Trusted connection paths. [reconstructed]
// All shortest knows-paths between $person1 and $person2, weighted by the
// interactions of consecutive pairs *restricted to forums created in
// [startDate, endDate]*: each direct reply to a post +1.0, each direct reply
// to a comment +0.5 (both directions; a comment's forum is its thread
// root's). Sort: weight ↓, then the path's person-id sequence ↑ (the spec
// leaves equal-weight order unspecified; lexicographic keeps it
// deterministic). No limit.
// ---------------------------------------------------------------------------

struct Bi25Params {
  core::Id person1_id = 0;
  core::Id person2_id = 0;
  core::Date start_date = 0;
  core::Date end_date = 0;
};

struct Bi25Row {
  std::vector<core::Id> person_ids;
  double weight = 0;

  bool operator==(const Bi25Row&) const = default;
};

std::vector<Bi25Row> RunBi25(const Graph& graph, const Bi25Params& params);

}  // namespace snb::bi

#endif  // SNB_BI_BI_H_

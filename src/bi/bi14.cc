#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/bound.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi14Row> RunBi14(const Graph& graph, const Bi14Params& params) {
  const core::DateTime begin = core::DateTimeFromDate(params.begin);
  const core::DateTime end =
      core::DateTimeFromDate(params.end) + core::kMillisPerDay;  // inclusive

  struct Agg {
    int64_t threads = 0;
    int64_t messages = 0;
  };
  std::unordered_map<uint32_t, Agg> by_person;

  // Both passes scan only the [begin, end) slice of the creation-date
  // index (CP-2.2/2.3) instead of the full post/comment tables.
  // Pass 1 — window posts: thread roots. A post contributes to its creator.
  CancelPoller poll;
  std::vector<bool> post_in_window(graph.NumPosts(), false);
  graph.ForEachMessageInRange(begin, end, [&](uint32_t msg) {
    poll.Tick();
    if (!Graph::IsPost(msg)) return;
    uint32_t post = Graph::AsPost(msg);
    post_in_window[post] = true;
    Agg& a = by_person[graph.PostCreator(post)];
    ++a.threads;
    ++a.messages;
  });
  // Pass 2 — window comments whose thread root is a window post credit the
  // initiator (precomputed root; CP-7.2/7.3 transitive replyOf* collapsed
  // at load).
  graph.ForEachMessageInRange(begin, end, [&](uint32_t msg) {
    poll.Tick();
    if (Graph::IsPost(msg)) return;
    uint32_t root = graph.CommentRootPost(Graph::AsComment(msg));
    if (!post_in_window[root]) return;
    ++by_person[graph.PostCreator(root)].messages;
  });

  // Top-k finisher with CP-1.3 bound pushdown: the message count alone
  // decides all but ties, so a person strictly below the k-th count is
  // dropped before their Person record is touched; names materialize only
  // for the final ≤100 rows.
  struct Cand {
    uint32_t person;
    core::Id person_id;
    int64_t threads;
    int64_t messages;
  };
  auto better = [](const Cand& a, const Cand& b) {
    if (a.messages != b.messages) return a.messages > b.messages;
    return a.person_id < b.person_id;
  };
  engine::BoundRef bound;
  auto key_of = [](const Cand& c) { return c.messages; };
  engine::TopK<Cand, decltype(better)> top(100, better);
  for (const auto& [person, a] : by_person) {
    if (bound.CannotPlace(a.messages)) {
      storage::CountRowsSkippedBound(1);
      continue;
    }
    Cand c{person, graph.PersonAt(person).id, a.threads, a.messages};
    if (top.Add(c)) top.PublishBound(bound, key_of);
  }

  std::vector<Bi14Row> rows;
  for (const Cand& c : top.Take()) {
    const core::Person& rec = graph.PersonAt(c.person);
    rows.push_back(
        {rec.id, rec.first_name, rec.last_name, c.threads, c.messages});
  }
  return rows;
}

}  // namespace snb::bi

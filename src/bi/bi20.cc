#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi20Row> RunBi20(const Graph& graph, const Bi20Params& params) {
  std::vector<Bi20Row> rows;
  rows.reserve(params.tag_classes.size());
  for (const std::string& class_name : params.tag_classes) {
    if (graph.TagClassByName(class_name) == storage::kNoIdx) continue;
    std::vector<bool> tags =
        internal::TagsOfClass(graph, class_name, /*transitive=*/true);
    int64_t count = 0;
    CancelPoller poll;
    graph.ForEachMessage([&](uint32_t msg) {
      poll.Tick();
      bool match = false;
      graph.ForEachMessageTag(msg, [&](uint32_t tag) {
        if (tags[tag]) match = true;
      });
      if (match) ++count;  // distinct messages, not tag occurrences
    });
    rows.push_back({class_name, count});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi20Row& a, const Bi20Row& b) {
        if (a.message_count != b.message_count) {
          return a.message_count > b.message_count;
        }
        return a.tag_class < b.tag_class;
      },
      100);
  return rows;
}

}  // namespace snb::bi

#include <unordered_map>
#include <unordered_set>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi7Row> RunBi7(const Graph& graph, const Bi7Params& params) {
  CancelPoller poll;
  std::vector<Bi7Row> rows;
  const uint32_t tag = graph.TagByName(params.tag);
  if (tag == storage::kNoIdx) return rows;

  // popularity(q): total likes received across all of q's messages,
  // memoized (CP-5.3: intra-query result reuse).
  std::vector<int64_t> popularity_memo(graph.NumPersons(), -1);
  auto popularity = [&](uint32_t q) {
    if (popularity_memo[q] >= 0) return popularity_memo[q];
    int64_t total = 0;
    graph.PersonPosts().ForEach(q, [&](uint32_t post) {
      total += static_cast<int64_t>(graph.PostLikers().Degree(post));
    });
    graph.PersonComments().ForEach(q, [&](uint32_t comment) {
      total += static_cast<int64_t>(graph.CommentLikers().Degree(comment));
    });
    popularity_memo[q] = total;
    return total;
  };

  // Distinct likers of tag-carrying messages per author.
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> likers_of_author;
  auto handle = [&](uint32_t msg) {
    uint32_t author = graph.MessageCreator(msg);
    auto& likers = likers_of_author[author];
    auto visit = [&](uint32_t liker, core::DateTime) {
      poll.Tick();
      likers.insert(liker);
    };
    if (Graph::IsPost(msg)) {
      graph.PostLikers().ForEachDated(msg, visit);
    } else {
      graph.CommentLikers().ForEachDated(Graph::AsComment(msg), visit);
    }
  };
  graph.TagPosts().ForEach(
      tag, [&](uint32_t post) { handle(Graph::MessageOfPost(post)); });
  graph.TagComments().ForEach(tag, [&](uint32_t comment) {
    handle(Graph::MessageOfComment(comment));
  });

  rows.reserve(likers_of_author.size());
  for (const auto& [author, likers] : likers_of_author) {
    int64_t score = 0;
    for (uint32_t q : likers) {
      poll.Tick();
      score += popularity(q);
    }
    rows.push_back({graph.PersonAt(author).id, score});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi7Row& a, const Bi7Row& b) {
        if (a.authority_score != b.authority_score) {
          return a.authority_score > b.authority_score;
        }
        return a.person_id < b.person_id;
      },
      100);
  return rows;
}

}  // namespace snb::bi

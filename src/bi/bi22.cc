#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi22Row> RunBi22(const Graph& graph, const Bi22Params& params) {
  using internal::CountryIdx;
  using internal::PairKey;
  using internal::PersonsOfCountry;
  std::vector<Bi22Row> rows;
  const uint32_t c1 = CountryIdx(graph, params.country1);
  const uint32_t c2 = CountryIdx(graph, params.country2);
  if (c1 == storage::kNoIdx || c2 == storage::kNoIdx) return rows;
  const std::vector<bool> in1 = PersonsOfCountry(graph, c1);
  const std::vector<bool> in2 = PersonsOfCountry(graph, c2);

  // Pair scores keyed by (p1 ∈ country1, p2 ∈ country2).
  std::unordered_map<uint64_t, int64_t> score;
  auto credit = [&](uint32_t a, uint32_t b, int64_t points) {
    if (in1[a] && in2[b] && a != b) score[PairKey(a, b)] += points;
    if (in1[b] && in2[a] && a != b) score[PairKey(b, a)] += points;
  };

  // Direct replies: +4 per reply, either direction.
  CancelPoller poll;
  for (uint32_t comment = 0; comment < graph.NumComments(); ++comment) {
    poll.Tick();
    uint32_t replier = graph.CommentCreator(comment);
    uint32_t target =
        graph.MessageCreator(graph.CommentReplyOf(comment));
    credit(replier, target, 4);
  }
  // Likes: +1 per like, either direction.
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (!in1[p] && !in2[p]) continue;
    graph.PersonLikes().ForEachDated(p, [&](uint32_t msg, core::DateTime) {
      credit(p, graph.MessageCreator(msg), 1);
    });
  }
  // Knows: +10 once per pair.
  for (uint32_t a = 0; a < graph.NumPersons(); ++a) {
    if (!in1[a]) continue;
    graph.Knows().ForEach(a, [&](uint32_t b) {
      poll.Tick();
      if (in2[b] && a != b) score[PairKey(a, b)] += 10;
    });
  }

  rows.reserve(score.size());
  for (const auto& [key, s] : score) {
    uint32_t p1 = static_cast<uint32_t>(key >> 32);
    uint32_t p2 = static_cast<uint32_t>(key);
    rows.push_back({graph.PersonAt(p1).id, graph.PersonAt(p2).id,
                    graph.PlaceAt(graph.PersonCity(p1)).name, s});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi22Row& a, const Bi22Row& b) {
        if (a.score != b.score) return a.score > b.score;
        if (a.person1_id != b.person1_id) return a.person1_id < b.person1_id;
        return a.person2_id < b.person2_id;
      },
      100);
  return rows;
}

}  // namespace snb::bi

#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/bfs.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi16Row> RunBi16(const Graph& graph, const Bi16Params& params) {
  using internal::CountryIdx;
  using internal::TagsOfClass;
  std::vector<Bi16Row> rows;
  const uint32_t start = graph.PersonIdx(params.person_id);
  const uint32_t country = CountryIdx(graph, params.country);
  if (start == storage::kNoIdx || country == storage::kNoIdx) return rows;
  const std::vector<bool> class_tags =
      TagsOfClass(graph, params.tag_class, /*transitive=*/false);

  // Depth-bounded BFS (see bi.h for the trail-semantics note: shortest
  // distance in [1, maxPathDistance] qualifies).
  std::vector<int32_t> dist =
      engine::BfsDistances(graph.Knows(), start, params.max_path_distance);

  CancelPoller poll;
  std::unordered_map<uint64_t, int64_t> counts;  // (person, tag) → messages
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    poll.Tick();
    if (p == start || dist[p] < 1 ||
        dist[p] > params.max_path_distance) {
      continue;
    }
    if (graph.PersonCountry(p) != country) continue;
    auto handle = [&](uint32_t msg) {
      poll.Tick();
      bool qualifies = false;
      graph.ForEachMessageTag(msg, [&](uint32_t tag) {
        if (class_tags[tag]) qualifies = true;
      });
      if (!qualifies) return;
      graph.ForEachMessageTag(msg, [&](uint32_t tag) {
        ++counts[internal::PairKey(p, tag)];
      });
    };
    graph.PersonPosts().ForEach(
        p, [&](uint32_t post) { handle(Graph::MessageOfPost(post)); });
    graph.PersonComments().ForEach(p, [&](uint32_t comment) {
      handle(Graph::MessageOfComment(comment));
    });
  }

  rows.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    uint32_t person = static_cast<uint32_t>(key >> 32);
    uint32_t tag = static_cast<uint32_t>(key);
    rows.push_back({graph.PersonAt(person).id, graph.TagAt(tag).name, count});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi16Row& a, const Bi16Row& b) {
        if (a.message_count != b.message_count) {
          return a.message_count > b.message_count;
        }
        if (a.tag != b.tag) return a.tag < b.tag;
        return a.person_id < b.person_id;
      },
      100);
  return rows;
}

}  // namespace snb::bi

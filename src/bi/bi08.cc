#include <vector>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi8Row> RunBi8(const Graph& graph, const Bi8Params& params) {
  std::vector<Bi8Row> rows;
  const uint32_t tag = graph.TagByName(params.tag);
  if (tag == storage::kNoIdx) return rows;

  CancelPoller poll;
  std::vector<int64_t> counts(graph.NumTags(), 0);
  graph.TagPosts().ForEach(tag, [&](uint32_t post) {
    graph.PostReplies().ForEach(post, [&](uint32_t comment) {
      poll.Tick();
      graph.CommentTags().ForEach(comment, [&](uint32_t related) {
        if (related != tag) ++counts[related];
      });
    });
  });

  for (uint32_t t = 0; t < graph.NumTags(); ++t) {
    if (counts[t] > 0) rows.push_back({graph.TagAt(t).name, counts[t]});
  }
  engine::SortAndLimit(
      rows,
      [](const Bi8Row& a, const Bi8Row& b) {
        if (a.count != b.count) return a.count > b.count;
        return a.related_tag < b.related_tag;
      },
      100);
  return rows;
}

}  // namespace snb::bi

// Cooperative query cancellation.
//
// The concurrent query-stream scheduler (src/sched/) must be able to abandon
// a BI read that exceeds its per-query deadline without killing the worker
// thread that runs it. Rather than widening all 25 (×2 engines) entry-point
// signatures — which would ripple through every test, bench and validation
// call site — the token is *ambient*: the scheduler installs a CancelToken
// for the current thread with a ScopedCancelToken guard, and the query
// implementations poll it at loop boundaries via PollCancel(). A poll with no
// installed token is a single thread-local load, so plain sequential callers
// pay essentially nothing.
//
// Cancellation is delivered as a QueryCancelled exception thrown from the
// poll site; the scheduler catches it at the query boundary and records the
// operation as cancelled. Queries allocate only RAII-managed state, so
// unwinding is safe mid-scan.

#ifndef SNB_BI_CANCEL_H_
#define SNB_BI_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace snb::bi {

/// Shared stop state: an explicit stop flag plus an optional deadline on the
/// steady clock. Safe to signal from any thread while a query polls it.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; the next poll throws.
  void RequestStop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  /// Sets an absolute deadline; polls after this instant throw.
  void SetDeadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline `ms` milliseconds from now.
  void SetDeadlineAfterMs(double ms) noexcept {
    SetDeadline(Clock::now() + std::chrono::nanoseconds(
                                   static_cast<int64_t>(ms * 1e6)));
  }

  bool StopRequested() const noexcept {
    if (stop_.load(std::memory_order_relaxed)) return true;
    int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 && Clock::now().time_since_epoch().count() >= d;
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> deadline_ns_{0};  // 0 = no deadline
};

/// Thrown from PollCancel() when the ambient token fired. Deliberately not a
/// std::exception: nothing below the scheduler should catch(...) it away.
struct QueryCancelled {};

namespace internal {
const CancelToken*& CurrentTokenSlot() noexcept;
}  // namespace internal

/// The token installed for this thread, or nullptr.
inline const CancelToken* CurrentCancelToken() noexcept {
  return internal::CurrentTokenSlot();
}

/// Throws QueryCancelled if the ambient token (if any) fired.
inline void PollCancel() {
  const CancelToken* token = internal::CurrentTokenSlot();
  if (token != nullptr && token->StopRequested()) throw QueryCancelled{};
}

/// RAII installer: while alive, `token` is the ambient token for queries
/// running on this thread. Nestable (restores the previous token).
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(const CancelToken* token) noexcept
      : prev_(internal::CurrentTokenSlot()) {
    internal::CurrentTokenSlot() = token;
  }
  ~ScopedCancelToken() { internal::CurrentTokenSlot() = prev_; }

  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  const CancelToken* prev_;
};

/// Amortizes the deadline clock read over `stride` iterations of a hot loop:
/// call Tick() per element; the token is polled once per stride.
class CancelPoller {
 public:
  explicit CancelPoller(uint32_t stride = 4096) : stride_(stride) {}
  void Tick() {
    if (++n_ >= stride_) {
      n_ = 0;
      PollCancel();
    }
  }

 private:
  uint32_t stride_;
  uint32_t n_ = 0;
};

}  // namespace snb::bi

#endif  // SNB_BI_CANCEL_H_

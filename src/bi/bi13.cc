#include <map>
#include <unordered_map>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/common.h"
#include "engine/top_k.h"

namespace snb::bi {

std::vector<Bi13Row> RunBi13(const Graph& graph, const Bi13Params& params) {
  using internal::CountryIdx;
  std::vector<Bi13Row> rows;
  const uint32_t country = CountryIdx(graph, params.country);
  if (country == storage::kNoIdx) return rows;

  // (year, month) → tag → count. The outer map keeps the output order
  // (year ↓, month ↑).
  struct MonthKey {
    int32_t year;
    int32_t month;
    bool operator<(const MonthKey& o) const {
      if (year != o.year) return year > o.year;
      return month < o.month;
    }
  };
  std::map<MonthKey, std::unordered_map<uint32_t, int64_t>> groups;

  CancelPoller poll;
  graph.ForEachMessage([&](uint32_t msg) {
    poll.Tick();
    if (graph.MessageCountry(msg) != country) return;
    core::DateTime created = graph.MessageCreationDate(msg);
    MonthKey key{core::Year(created), core::Month(created)};
    auto& tag_counts = groups[key];  // group exists even with no tags
    graph.ForEachMessageTag(msg, [&](uint32_t tag) { ++tag_counts[tag]; });
  });

  for (const auto& [key, tag_counts] : groups) {
    Bi13Row row;
    row.year = key.year;
    row.month = key.month;
    using TagCount = std::pair<std::string, int64_t>;
    auto better = [](const TagCount& a, const TagCount& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    };
    engine::TopK<TagCount, decltype(better)> top(5, better);
    for (const auto& [tag, count] : tag_counts) {
      top.Add({graph.TagAt(tag).name, count});
    }
    row.popular_tags = top.Take();
    rows.push_back(std::move(row));
    if (rows.size() == 100) break;
  }
  return rows;
}

}  // namespace snb::bi

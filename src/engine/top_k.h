// Bounded top-k selection with the spec's tie-break comparators —
// choke point CP-1.3 (top-k pushdown).
//
// TopK keeps the k best elements under a strict-weak "ranks before"
// comparator. WouldAccept lets scans skip work for rows that cannot enter
// the result (the pushdown); the ablation bench compares this against
// sort-everything.

#ifndef SNB_ENGINE_TOP_K_H_
#define SNB_ENGINE_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "engine/bound.h"
#include "util/check.h"

namespace snb::engine {

template <typename T, typename RanksBefore>
class TopK {
 public:
  explicit TopK(size_t k, RanksBefore ranks_before = RanksBefore())
      : k_(k), ranks_before_(std::move(ranks_before)) {
    SNB_CHECK(k_ > 0);
  }

  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  /// True when `item` would enter the current top k.
  bool WouldAccept(const T& item) const {
    return heap_.size() < k_ || ranks_before_(item, heap_.front());
  }

  /// Inserts if the item ranks in the top k; returns whether it entered.
  bool Add(T item) {
    if (heap_.size() < k_) {
      heap_.push_back(std::move(item));
      std::push_heap(heap_.begin(), heap_.end(), ranks_before_);
      return true;
    }
    if (!ranks_before_(item, heap_.front())) return false;
    std::pop_heap(heap_.begin(), heap_.end(), ranks_before_);
    heap_.back() = std::move(item);
    std::push_heap(heap_.begin(), heap_.end(), ranks_before_);
    return true;
  }

  /// The worst retained element (the k-th when full). Only meaningful while
  /// size() > 0.
  const T& worst() const {
    SNB_DCHECK(!heap_.empty());
    return heap_.front();
  }

  /// Publishes this heap's k-th primary sort key to a shared BoundRef once
  /// the heap is full. `key_of(row)` extracts the descending integer key
  /// (bigger = better). Call after a successful Add — the scan-side
  /// CannotPlace check then prunes strictly-worse candidates unseen.
  template <typename KeyOf>
  void PublishBound(BoundRef& bound, KeyOf&& key_of) const {
    if (full()) bound.Tighten(key_of(heap_.front()));
  }

  /// Returns the k best, ordered best-first; the container is consumed.
  std::vector<T> Take() {
    std::sort_heap(heap_.begin(), heap_.end(), ranks_before_);
    return std::move(heap_);
  }

 private:
  size_t k_;
  RanksBefore ranks_before_;
  // Max-heap keyed by ranks_before_: the *worst* retained element sits at
  // the front, ready to be evicted.
  std::vector<T> heap_;
};

/// Sorts `rows` with `ranks_before` and truncates to `limit` (0 = no limit).
/// The sort-everything baseline for the CP-1.3 ablation, and the finisher
/// for grouped results.
template <typename T, typename RanksBefore>
void SortAndLimit(std::vector<T>& rows, RanksBefore ranks_before,
                  size_t limit) {
  if (limit > 0 && rows.size() > limit) {
    std::partial_sort(rows.begin(), rows.begin() + limit, rows.end(),
                      ranks_before);
    rows.resize(limit);
  } else {
    std::sort(rows.begin(), rows.end(), ranks_before);
  }
}

}  // namespace snb::engine

#endif  // SNB_ENGINE_TOP_K_H_

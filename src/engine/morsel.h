// Morsel-driven intra-query parallelism (choke point CP-1.2: parallel
// high-cardinality group-by; the framework behind the BI engine's parallel
// query variants).
//
// An index range [0, n) is split into cache-friendly morsels that idle
// executors pull off a shared atomic counter — dynamic dispatch, so skewed
// per-element costs (hub vertices, hot tags) still balance. Executors are
// `pool.num_threads()` helper tasks *plus the calling thread*: the caller
// always participates and drains the counter itself if every pool worker is
// busy, so a query already running on a pool worker can morsel-parallelize
// over the same pool without deadlock and without oversubscribing it (the
// scheduler relies on this for power runs).
//
// Aggregation follows the partial-state + re-aggregation pattern: each
// executor slot lazily builds one private State, morsels fold into it
// lock-free, and after the join the caller merges the surviving states in
// ascending slot order. The merge order is fixed, and every BI aggregation
// merges commutative content (integer counts/sums, top-k sets under a total
// order), so results are bit-identical to the sequential engine at any
// thread count.
//
// Exceptions thrown by a body (most importantly bi::QueryCancelled from a
// per-morsel cancellation poll) stop the dispatch: remaining morsels are
// abandoned, every executor joins, and the first captured exception is
// rethrown on the calling thread.

#ifndef SNB_ENGINE_MORSEL_H_
#define SNB_ENGINE_MORSEL_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace snb::engine {

/// Default elements per morsel for flat column scans. Queries whose
/// per-element work is itself a scan (adjacency expansion, triangle probes)
/// should pass something far smaller.
constexpr size_t kDefaultMorselSize = 8192;

/// Minimum-work floor: inputs shorter than this many morsels never fan out
/// (slots collapses to 1 and the caller runs everything inline). Fan-out
/// costs two pool handoffs plus a join per helper; a query with a handful
/// of morsels pays that overhead for no overlap — the measured BI 17
/// regression (≈0.2× at 1200 persons) was exactly this shape.
constexpr size_t kMinMorselsForFanout = 8;

namespace internal {

/// Dispatch knobs, process-global. Tests override them: the TSan morsel
/// suite drops the fan-out floor to 1 so tiny fixtures still exercise the
/// parallel machinery, and the bound-race tests set `shuffle_seed` to
/// permute morsel issue order and hit different bound interleavings.
struct MorselTuning {
  size_t min_morsels_for_fanout = kMinMorselsForFanout;
  uint64_t shuffle_seed = 0;  // 0 = natural order
};

MorselTuning& GlobalMorselTuning();

/// Runs fn(morsel_index, slot) for every morsel in [0, num_morsels) on
/// `slots` executors: slots-1 pool helpers plus the calling thread (which
/// takes slot slots-1). Blocks until every executor finished; rethrows the
/// first exception any morsel raised.
void RunMorsels(util::ThreadPool& pool, size_t num_morsels, size_t slots,
                const std::function<void(size_t, size_t)>& fn);

/// Executor count for `num_morsels` morsels on `pool`, honouring the
/// minimum-work floor.
inline size_t SlotsFor(util::ThreadPool& pool, size_t num_morsels) {
  if (num_morsels < GlobalMorselTuning().min_morsels_for_fanout) return 1;
  return std::min(pool.num_threads() + 1, num_morsels);
}

}  // namespace internal

/// Parallel reduction over [0, n): `init() -> State` builds one partial
/// state per executor slot (lazily — idle slots never allocate),
/// `body(state, begin, end)` folds one morsel, and after the join
/// `merge(state)` is invoked on the calling thread once per surviving state
/// in ascending slot order.
template <typename Init, typename Body, typename Merge>
void ParallelAggregate(util::ThreadPool& pool, size_t n, Init&& init,
                       Body&& body, Merge&& merge,
                       size_t morsel_size = kDefaultMorselSize) {
  using State = std::decay_t<std::invoke_result_t<Init&>>;
  if (n == 0) return;
  const size_t num_morsels = (n + morsel_size - 1) / morsel_size;
  const size_t slots = internal::SlotsFor(pool, num_morsels);
  std::vector<std::optional<State>> states(slots);
  internal::RunMorsels(pool, num_morsels, slots,
                       [&](size_t morsel, size_t slot) {
                         std::optional<State>& state = states[slot];
                         if (!state) state.emplace(init());
                         const size_t begin = morsel * morsel_size;
                         body(*state, begin, std::min(n, begin + morsel_size));
                       });
  for (std::optional<State>& state : states) {
    if (state) merge(*state);
  }
}

/// Stateless parallel scan over [0, n): body(begin, end) per morsel. The
/// body must only perform writes that are disjoint across morsels (e.g.
/// filling element i of a shared column).
template <typename Body>
void ParallelScan(util::ThreadPool& pool, size_t n, Body&& body,
                  size_t morsel_size = kDefaultMorselSize) {
  if (n == 0) return;
  const size_t num_morsels = (n + morsel_size - 1) / morsel_size;
  const size_t slots = internal::SlotsFor(pool, num_morsels);
  internal::RunMorsels(pool, num_morsels, slots,
                       [&](size_t morsel, size_t) {
                         const size_t begin = morsel * morsel_size;
                         body(begin, std::min(n, begin + morsel_size));
                       });
}

}  // namespace snb::engine

#endif  // SNB_ENGINE_MORSEL_H_

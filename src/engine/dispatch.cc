#include "engine/dispatch.h"

#include <algorithm>
#include <chrono>

#include "engine/morsel.h"

namespace snb::engine {

namespace {

/// Entries the calibration walk touches at most: enough to average out
/// clock granularity, small enough to be free next to any real query.
constexpr size_t kCalibrationEntries = 1 << 18;

}  // namespace

DispatchModel::DispatchModel(size_t workers, unsigned hardware_threads)
    : workers_(workers), hardware_threads_(hardware_threads) {}

void DispatchModel::Calibrate(const storage::Graph& graph) {
  const storage::MessageDateIndex& index = graph.MessageIndex();
  const size_t n = std::min(index.base_size(), kCalibrationEntries);
  if (n == 0) return;  // keep the default until there is data to time
  const auto t0 = std::chrono::steady_clock::now();
  // The representative unit of scan work: decode a ref, touch a hot column.
  uint64_t checksum = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t ref = index.BaseAt(i);
    checksum += ref + static_cast<uint64_t>(graph.MessageCreator(ref));
  }
  const double elapsed_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - t0)
          .count() +
      static_cast<double>(checksum & 1);  // keep the walk observable
  // Clamp against clock jitter: the model only needs the order of
  // magnitude, and a wild outlier here would mis-dispatch every query.
  ns_per_element_ =
      std::clamp(elapsed_ns / static_cast<double>(n), 0.1, 1000.0);
}

DispatchDecision DispatchModel::Decide(int query, size_t elements,
                                       size_t morsel_size) const {
  DispatchDecision d;
  d.query = query;
  d.elements = elements;
  d.num_morsels =
      morsel_size == 0 ? 0 : (elements + morsel_size - 1) / morsel_size;

  // Smaller morsels mark per-element work that is itself a scan (adjacency
  // expansion); scale the cost estimate accordingly.
  const double weight =
      morsel_size == 0
          ? 1.0
          : static_cast<double>(kDefaultMorselSize) /
                static_cast<double>(morsel_size);
  const double t_seq =
      static_cast<double>(elements) * ns_per_element_ * weight;
  const size_t overlap = std::min(workers_ + 1, size_t{hardware_threads_});
  if (overlap >= 2) {
    const double t_par = t_seq / static_cast<double>(overlap) +
                         kFanoutOverheadNs * static_cast<double>(workers_);
    d.predicted_speedup = t_par > 0.0 ? t_seq / t_par : 1.0;
  } else {
    d.predicted_speedup = 0.0;  // no second core: parallelism can only lose
  }

  const bool above_floor =
      d.num_morsels >= internal::GlobalMorselTuning().min_morsels_for_fanout;
  d.choice = (overlap >= 2 && above_floor &&
              d.predicted_speedup >= kMinPredictedSpeedup)
                 ? DispatchChoice::kMorsel
                 : DispatchChoice::kSequential;
  return d;
}

}  // namespace snb::engine

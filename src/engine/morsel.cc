#include "engine/morsel.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace snb::engine::internal {

void RunMorsels(util::ThreadPool& pool, size_t num_morsels, size_t slots,
                const std::function<void(size_t, size_t)>& fn) {
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable done;
    size_t active_helpers = 0;
    std::exception_ptr error;
  } shared;

  auto run_loop = [&](size_t slot) {
    for (;;) {
      if (shared.failed.load(std::memory_order_relaxed)) return;
      const size_t morsel =
          shared.next.fetch_add(1, std::memory_order_relaxed);
      if (morsel >= num_morsels) return;
      try {
        fn(morsel, slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.mu);
        if (!shared.error) shared.error = std::current_exception();
        shared.failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const size_t helpers = slots - 1;
  shared.active_helpers = helpers;
  for (size_t h = 0; h < helpers; ++h) {
    // Helpers capture the stack frame by reference; the join below keeps it
    // alive until the last helper signalled completion.
    pool.Submit([&shared, &run_loop, h] {
      run_loop(h);
      std::lock_guard<std::mutex> lock(shared.mu);
      if (--shared.active_helpers == 0) shared.done.notify_all();
    });
  }

  // The caller always executes morsels itself: progress is guaranteed even
  // when every pool worker is busy with other queries (or when the caller
  // *is* a pool worker), so nesting on a shared pool cannot deadlock.
  run_loop(slots - 1);

  std::unique_lock<std::mutex> lock(shared.mu);
  shared.done.wait(lock, [&shared] { return shared.active_helpers == 0; });
  if (shared.error) std::rethrow_exception(shared.error);
}

}  // namespace snb::engine::internal

#include "engine/morsel.h"

#include <atomic>
#include <exception>
#include <numeric>
#include <vector>

#include "util/latch.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace snb::engine::internal {

MorselTuning& GlobalMorselTuning() {
  static MorselTuning tuning;
  return tuning;
}

namespace {

/// Seeded Fisher–Yates permutation of [0, n) — the bound-race test harness
/// uses it to issue morsels in shuffled order so shared-bound publications
/// interleave differently run to run (yet deterministically per seed).
std::vector<size_t> ShuffledOrder(size_t n, uint64_t seed) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  util::Rng rng(seed, 0x6d6f7273656cull);  // stream tag: "morsel"
  for (size_t i = n; i > 1; --i) {
    const size_t j = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

/// State shared between the calling thread and its pool helpers for one
/// RunMorsels dispatch. The morsel counter and failure flag are lock-free;
/// the first captured exception is guarded by `mu` (annotated, so lock
/// misuse is a compile error under clang). Helper completion goes through
/// a util::BlockingCounter — the blocking wait itself lives in util/, per
/// the lint rule that CondVar never appears outside it.
struct MorselShared {
  explicit MorselShared(size_t helpers) : done(helpers) {}

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  util::Mutex mu{SNB_LOCK_SITE("engine.morsel.error_mu")};
  util::BlockingCounter done;
  std::exception_ptr error SNB_GUARDED_BY(mu);
};

}  // namespace

void RunMorsels(util::ThreadPool& pool, size_t num_morsels, size_t slots,
                const std::function<void(size_t, size_t)>& fn) {
  const size_t helpers = slots - 1;
  MorselShared shared(helpers);

  // Test-only issue-order shuffle (see MorselTuning): counter ticket →
  // permuted morsel index. Results are order-insensitive by the merge
  // contract, so only the *interleaving* changes.
  const uint64_t shuffle_seed = GlobalMorselTuning().shuffle_seed;
  std::vector<size_t> order;
  if (shuffle_seed != 0) order = ShuffledOrder(num_morsels, shuffle_seed);

  auto run_loop = [&](size_t slot) {
    for (;;) {
      // relaxed: advisory early-out; the error itself is published under
      // shared.mu, and the pool join below is the real synchronization.
      if (shared.failed.load(std::memory_order_relaxed)) return;
      // relaxed: pure ticket counter — fetch_add's atomicity alone
      // guarantees unique tickets; no payload is published through it.
      const size_t ticket =
          shared.next.fetch_add(1, std::memory_order_relaxed);
      if (ticket >= num_morsels) return;
      const size_t morsel = order.empty() ? ticket : order[ticket];
      try {
        fn(morsel, slot);
      } catch (...) {
        util::MutexLock lock(shared.mu);
        if (!shared.error) shared.error = std::current_exception();
        // relaxed: flag only hastens shutdown; error is read after join.
        shared.failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  for (size_t h = 0; h < helpers; ++h) {
    // Helpers capture the stack frame by reference; the join below keeps it
    // alive until the last helper signalled completion.
    pool.Submit([&shared, &run_loop, h] {
      run_loop(h);
      shared.done.DecrementCount();
    });
  }

  // The caller always executes morsels itself: progress is guaranteed even
  // when every pool worker is busy with other queries (or when the caller
  // *is* a pool worker), so nesting on a shared pool cannot deadlock.
  run_loop(slots - 1);

  shared.done.Wait();
  std::exception_ptr error;
  {
    util::MutexLock lock(shared.mu);
    error = shared.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace snb::engine::internal

#include "engine/morsel.h"

#include <atomic>
#include <exception>

#include "util/latch.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::engine::internal {

namespace {

/// State shared between the calling thread and its pool helpers for one
/// RunMorsels dispatch. The morsel counter and failure flag are lock-free;
/// the first captured exception is guarded by `mu` (annotated, so lock
/// misuse is a compile error under clang). Helper completion goes through
/// a util::BlockingCounter — the blocking wait itself lives in util/, per
/// the lint rule that CondVar never appears outside it.
struct MorselShared {
  explicit MorselShared(size_t helpers) : done(helpers) {}

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  util::Mutex mu{SNB_LOCK_SITE("engine.morsel.error_mu")};
  util::BlockingCounter done;
  std::exception_ptr error SNB_GUARDED_BY(mu);
};

}  // namespace

void RunMorsels(util::ThreadPool& pool, size_t num_morsels, size_t slots,
                const std::function<void(size_t, size_t)>& fn) {
  const size_t helpers = slots - 1;
  MorselShared shared(helpers);

  auto run_loop = [&](size_t slot) {
    for (;;) {
      if (shared.failed.load(std::memory_order_relaxed)) return;
      const size_t morsel =
          shared.next.fetch_add(1, std::memory_order_relaxed);
      if (morsel >= num_morsels) return;
      try {
        fn(morsel, slot);
      } catch (...) {
        util::MutexLock lock(shared.mu);
        if (!shared.error) shared.error = std::current_exception();
        shared.failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  for (size_t h = 0; h < helpers; ++h) {
    // Helpers capture the stack frame by reference; the join below keeps it
    // alive until the last helper signalled completion.
    pool.Submit([&shared, &run_loop, h] {
      run_loop(h);
      shared.done.DecrementCount();
    });
  }

  // The caller always executes morsels itself: progress is guaranteed even
  // when every pool worker is busy with other queries (or when the caller
  // *is* a pool worker), so nesting on a shared pool cannot deadlock.
  run_loop(slots - 1);

  shared.done.Wait();
  std::exception_ptr error;
  {
    util::MutexLock lock(shared.mu);
    error = shared.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace snb::engine::internal

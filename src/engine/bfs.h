// Breadth-first traversal family over AdjacencyList graphs — the transitive
// machinery behind IC 13/14, BI 16/25 (choke points CP-7.2/7.3/7.4, CP-8.6).

#ifndef SNB_ENGINE_BFS_H_
#define SNB_ENGINE_BFS_H_

#include <cstdint>
#include <vector>

#include "storage/adjacency.h"

namespace snb::engine {

/// Distances from `src` (in hops) up to `max_depth` (-1 = unbounded);
/// -1 for unreachable nodes. O(V + E) with a dense visited array.
std::vector<int32_t> BfsDistances(const storage::AdjacencyList& adj,
                                  uint32_t src, int32_t max_depth = -1);

/// Length of the shortest path src→dst via bidirectional BFS;
/// -1 if disconnected, 0 when src == dst. Expands the smaller frontier
/// first — the termination-criteria choke point CP-7.4.
int32_t ShortestPathLength(const storage::AdjacencyList& adj, uint32_t src,
                           uint32_t dst);

/// Enumerates *all* shortest paths src→dst (each path as a node sequence,
/// src first). Empty when disconnected; the single path {src} when
/// src == dst. Caps the enumeration at `max_paths` to bound memory
/// (0 = unlimited).
std::vector<std::vector<uint32_t>> AllShortestPaths(
    const storage::AdjacencyList& adj, uint32_t src, uint32_t dst,
    size_t max_paths = 0);

}  // namespace snb::engine

#endif  // SNB_ENGINE_BFS_H_

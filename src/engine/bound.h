// Shared top-k bound for pushdown scans — choke point CP-1.3.
//
// A BoundRef carries the primary sort key of the k-th (worst retained)
// element of a TopK, published once the heap is full. Scans consult it
// *before* dereferencing vertices or strings: a candidate whose primary key
// is strictly worse than the bound cannot enter the result, whatever its
// tie-break columns say, so the row (or a whole zone-mapped block whose max
// key is strictly worse) is skipped unseen.
//
// The key convention is "bigger is better": every bound-pushdown BI query
// orders by a descending integer first (like count, message count, score,
// popularity difference), so the primary key is stored as that integer and
// CannotPlace(key) is `key < bound`. Ties (key == bound) are never pruned —
// they still run the full tie-break comparator, which keeps the pushdown
// engines bit-identical to the sort-everything oracle.
//
// Thread safety: the bound is a single relaxed atomic that only ever
// tightens (monotone non-decreasing via CAS-max). Morsel slots publish
// their private heap's bound here so late morsels start pre-pruned; a racy
// stale read is always a *looser* bound, which is merely less pruning,
// never a wrong result. This is the one sanctioned cross-slot atomic for
// query code — scripts/lint.sh bans raw std::atomic in src/bi/.

#ifndef SNB_ENGINE_BOUND_H_
#define SNB_ENGINE_BOUND_H_

#include <atomic>
#include <cstdint>
#include <limits>

namespace snb::engine {

class BoundRef {
 public:
  /// Sentinel meaning "no bound yet" (heap not full anywhere): compares
  /// below every real key, so CannotPlace is false until a publish.
  static constexpr int64_t kUnset = std::numeric_limits<int64_t>::min();

  BoundRef() = default;
  BoundRef(const BoundRef&) = delete;
  BoundRef& operator=(const BoundRef&) = delete;

  /// Raises the bound to `kth` if it is tighter than the current one.
  /// CAS-max keeps the bound monotone under concurrent publishes.
  void Tighten(int64_t kth) noexcept {
    int64_t cur = key_.load(std::memory_order_relaxed);
    while (kth > cur &&
           !key_.compare_exchange_weak(cur, kth, std::memory_order_relaxed)) {
    }
  }

  int64_t Get() const noexcept {
    return key_.load(std::memory_order_relaxed);
  }

  /// True when a candidate with primary key `key` is strictly worse than
  /// the k-th retained element everywhere — it cannot enter any top-k, so
  /// the scan may skip it before dereferencing anything. Equal keys return
  /// false: they must still run the tie-break comparator.
  bool CannotPlace(int64_t key) const noexcept { return key < Get(); }

 private:
  std::atomic<int64_t> key_{kUnset};
};

}  // namespace snb::engine

#endif  // SNB_ENGINE_BOUND_H_

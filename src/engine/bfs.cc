#include "engine/bfs.h"

#include <algorithm>

#include "util/check.h"

namespace snb::engine {

using storage::AdjacencyList;

std::vector<int32_t> BfsDistances(const AdjacencyList& adj, uint32_t src,
                                  int32_t max_depth) {
  std::vector<int32_t> dist(adj.num_nodes(), -1);
  SNB_CHECK_LT(src, adj.num_nodes());
  dist[src] = 0;
  std::vector<uint32_t> frontier{src};
  int32_t depth = 0;
  while (!frontier.empty() && (max_depth < 0 || depth < max_depth)) {
    ++depth;
    std::vector<uint32_t> next;
    for (uint32_t u : frontier) {
      adj.ForEach(u, [&](uint32_t v) {
        if (dist[v] < 0) {
          dist[v] = depth;
          next.push_back(v);
        }
      });
    }
    frontier = std::move(next);
  }
  return dist;
}

int32_t ShortestPathLength(const AdjacencyList& adj, uint32_t src,
                           uint32_t dst) {
  SNB_CHECK(src < adj.num_nodes() && dst < adj.num_nodes());
  if (src == dst) return 0;
  std::vector<int32_t> dist_f(adj.num_nodes(), -1);
  std::vector<int32_t> dist_b(adj.num_nodes(), -1);
  dist_f[src] = 0;
  dist_b[dst] = 0;
  std::vector<uint32_t> frontier_f{src}, frontier_b{dst};
  int32_t depth_f = 0, depth_b = 0;
  int32_t best = INT32_MAX;
  while (!frontier_f.empty() && !frontier_b.empty()) {
    // Once the levels completed on both sides cannot produce a shorter
    // meeting, the best seen so far is the answer (CP-7.4).
    if (best <= depth_f + depth_b) break;
    // Expand the smaller frontier.
    const bool fwd = frontier_f.size() <= frontier_b.size();
    std::vector<uint32_t>& frontier = fwd ? frontier_f : frontier_b;
    std::vector<int32_t>& dist_own = fwd ? dist_f : dist_b;
    std::vector<int32_t>& dist_other = fwd ? dist_b : dist_f;
    int32_t& depth = fwd ? depth_f : depth_b;
    ++depth;
    std::vector<uint32_t> next;
    for (uint32_t u : frontier) {
      adj.ForEach(u, [&](uint32_t v) {
        if (dist_own[v] < 0) {
          dist_own[v] = depth;
          if (dist_other[v] >= 0) {
            best = std::min(best, depth + dist_other[v]);
          }
          next.push_back(v);
        }
      });
    }
    frontier = std::move(next);
  }
  return best == INT32_MAX ? -1 : best;
}

std::vector<std::vector<uint32_t>> AllShortestPaths(const AdjacencyList& adj,
                                                    uint32_t src, uint32_t dst,
                                                    size_t max_paths) {
  std::vector<std::vector<uint32_t>> paths;
  if (src == dst) {
    paths.push_back({src});
    return paths;
  }
  // Forward BFS from src recording distances, stop once dst's layer is done.
  std::vector<int32_t> dist(adj.num_nodes(), -1);
  dist[src] = 0;
  std::vector<uint32_t> frontier{src};
  int32_t depth = 0;
  bool found = false;
  while (!frontier.empty() && !found) {
    ++depth;
    std::vector<uint32_t> next;
    for (uint32_t u : frontier) {
      adj.ForEach(u, [&](uint32_t v) {
        if (dist[v] < 0) {
          dist[v] = depth;
          if (v == dst) found = true;
          next.push_back(v);
        }
      });
    }
    frontier = std::move(next);
  }
  if (!found) return paths;

  // Backward DFS from dst following strictly-decreasing distances.
  std::vector<uint32_t> partial{dst};
  // Iterative stack of (node, neighbours yet to try).
  struct Frame {
    uint32_t node;
    std::vector<uint32_t> preds;
    size_t next = 0;
  };
  auto preds_of = [&](uint32_t node) {
    std::vector<uint32_t> preds;
    adj.ForEach(node, [&](uint32_t v) {
      if (dist[v] == dist[node] - 1) preds.push_back(v);
    });
    std::sort(preds.begin(), preds.end());
    // Parallel edges must not duplicate paths.
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    return preds;
  };
  std::vector<Frame> stack;
  stack.push_back({dst, preds_of(dst), 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.node == src) {
      std::vector<uint32_t> path;
      path.reserve(stack.size());
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        path.push_back(it->node);
      }
      paths.push_back(std::move(path));
      if (max_paths > 0 && paths.size() >= max_paths) return paths;
      stack.pop_back();
      continue;
    }
    if (top.next >= top.preds.size()) {
      stack.pop_back();
      continue;
    }
    uint32_t pred = top.preds[top.next++];
    stack.push_back({pred, pred == src ? std::vector<uint32_t>{} :
                                          preds_of(pred), 0});
  }
  return paths;
}

}  // namespace snb::engine

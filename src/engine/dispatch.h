// Adaptive sequential-vs-morsel dispatch.
//
// bench/BENCH_parallel.json showed morsel parallelism *losing* on several
// BI queries (BI 17 ≈ 0.2×): fan-out costs two pool handoffs plus a join
// per helper, and a query whose candidate set is a few morsels never
// amortizes that. The scheduler used to gate parallelism with one blanket
// flag; this model replaces it with a per-query decision.
//
// The decision is a classic cost model, deliberately tiny:
//
//   work        = elements × ns/element          (elements from zone-map
//                                                 candidate counts — free,
//                                                 the index already knows)
//   t_seq       = work × (kDefaultMorselSize / morsel_size)
//                                                 (smaller morsels mark
//                                                  heavier per-element work)
//   t_par       = t_seq / P + fanout_overhead × helpers
//   speedup     = t_seq / t_par
//
// and the scheduler refuses parallelism when the predicted speedup clears
// no margin, when the machine has no second core, or when the input is
// under the morsel fan-out floor. ns/element is calibrated once per graph
// epoch (one timed walk over the message-date index at Calibrate()); the
// constants are intentionally coarse — the model only has to separate
// "thousands of morsels of real work" from "three morsels of nothing",
// which are orders of magnitude apart.
//
// Every decision is recorded (query, estimate, predicted speedup, choice)
// so scheduler reports and BENCH_kernels.json can show *why* each query ran
// where it ran.

#ifndef SNB_ENGINE_DISPATCH_H_
#define SNB_ENGINE_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/graph.h"

namespace snb::engine {

enum class DispatchChoice : uint8_t { kSequential, kMorsel };

struct DispatchDecision {
  int query = 0;                    // BI query number
  size_t elements = 0;              // estimated candidate elements
  size_t num_morsels = 0;           // at the query's morsel size
  double predicted_speedup = 1.0;   // t_seq / t_par under the model
  DispatchChoice choice = DispatchChoice::kSequential;
};

class DispatchModel {
 public:
  /// `workers` = pool helper threads available to a morsel dispatch;
  /// `hardware_threads` = what the machine can actually overlap
  /// (std::thread::hardware_concurrency(); pass explicitly in tests).
  DispatchModel(size_t workers, unsigned hardware_threads);

  /// Calibrates ns/element once per graph epoch: times a bounded sequential
  /// walk over the creation-date index (the exact shape of the scans being
  /// dispatched). Cheap (≤256k entries); the measured value is clamped so
  /// clock jitter can only nudge decisions near the margin, where either
  /// choice is result-identical anyway.
  void Calibrate(const storage::Graph& graph);

  /// Costs one query: `elements` candidate elements scanned at
  /// `morsel_size` per morsel. Never chooses morsel when the machine
  /// cannot overlap (hardware_threads < 2), when no helper exists, when
  /// the input is under the fan-out floor, or when the predicted speedup
  /// misses the margin.
  DispatchDecision Decide(int query, size_t elements,
                          size_t morsel_size) const;

  double ns_per_element() const { return ns_per_element_; }
  size_t workers() const { return workers_; }
  unsigned hardware_threads() const { return hardware_threads_; }

  /// Model constants, exposed for tests and the bench report.
  static constexpr double kFanoutOverheadNs = 50000.0;  // per helper
  static constexpr double kMinPredictedSpeedup = 1.1;
  static constexpr double kDefaultNsPerElement = 5.0;   // pre-calibration

 private:
  size_t workers_;
  unsigned hardware_threads_;
  double ns_per_element_ = kDefaultNsPerElement;
};

}  // namespace snb::engine

#endif  // SNB_ENGINE_DISPATCH_H_

// Zipf-distributed sampling over ranked dictionaries.
//
// The property-dictionary model of spec §2.3.3.1 draws values from a fixed
// dictionary D through a ranking function R and a probability function F over
// ranks. F is Zipfian in real social data (names, tags), so this sampler is
// the F used throughout Datagen.

#ifndef SNB_UTIL_ZIPF_H_
#define SNB_UTIL_ZIPF_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace snb::util {

/// Samples ranks in [0, n) with P(rank = k) proportional to 1 / (k+1)^s.
/// Precomputes the CDF once; sampling is a binary search (O(log n)).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    SNB_CHECK(n > 0);
    double acc = 0.0;
    for (size_t k = 0; k < n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = acc;
    }
    const double total = acc;
    for (double& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against FP drift
  }

  size_t size() const { return cdf_.size(); }

  /// Returns a rank in [0, size()).
  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Probability mass of a given rank (for tests and curation statistics).
  double Pmf(size_t rank) const {
    SNB_DCHECK(rank < cdf_.size());
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace snb::util

#endif  // SNB_UTIL_ZIPF_H_

#include "util/csv.h"

#include <cstring>

#include "util/check.h"
#include "util/failpoint.h"

namespace snb::util {

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status CsvWriter::Open(const std::string& path,
                       const std::vector<std::string>& header) {
  SNB_CHECK(file_ == nullptr);
  SNB_FAILPOINT_STATUS("csv.open");
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  num_columns_ = header.size();
  WriteRow(header);
  rows_written_ = 0;  // header does not count as a row
  return Status::Ok();
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  SNB_CHECK(file_ != nullptr);
  SNB_CHECK_EQ(fields.size(), num_columns_);
  std::string line;
  size_t total = fields.size();
  for (const std::string& f : fields) total += f.size();
  line.reserve(total);
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back('|');
    line.append(fields[i]);
  }
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), file_);
  ++rows_written_;
}

void CsvWriter::WriteLine(std::string_view line) {
  SNB_CHECK(file_ != nullptr);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++rows_written_;
}

Status CsvWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  SNB_FAILPOINT_STATUS("csv.close");
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("fclose failed");
  return Status::Ok();
}

namespace {

std::vector<std::string> SplitLine(std::string_view line, char sep) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

}  // namespace

StatusOr<CsvTable> ReadCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  CsvTable table;
  std::string buffer;
  char chunk[1 << 16];
  while (std::fgets(chunk, sizeof(chunk), f) != nullptr) {
    buffer.append(chunk);
    if (!buffer.empty() && buffer.back() == '\n') {
      buffer.pop_back();
      if (!buffer.empty() && buffer.back() == '\r') buffer.pop_back();
      if (table.header.empty()) {
        table.header = SplitLine(buffer, '|');
      } else {
        auto row = SplitLine(buffer, '|');
        if (row.size() != table.header.size()) {
          std::fclose(f);
          return Status::Corruption("row width mismatch in " + path);
        }
        table.rows.push_back(std::move(row));
      }
      buffer.clear();
    }
  }
  std::fclose(f);
  if (!buffer.empty()) {
    // Final line without trailing newline.
    if (table.header.empty()) {
      table.header = SplitLine(buffer, '|');
    } else {
      auto row = SplitLine(buffer, '|');
      if (row.size() != table.header.size()) {
        return Status::Corruption("row width mismatch in " + path);
      }
      table.rows.push_back(std::move(row));
    }
  }
  if (table.header.empty()) {
    return Status::Corruption("empty CSV file: " + path);
  }
  return table;
}

std::vector<std::string> SplitMultiValued(std::string_view field) {
  if (field.empty()) return {};
  return SplitLine(field, ';');
}

std::string JoinMultiValued(const std::vector<std::string>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(';');
    out.append(values[i]);
  }
  return out;
}

std::string SanitizeField(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '|' || c == ';' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace snb::util

// Pipe-separated CSV reading/writing in the Datagen output dialect
// (spec §2.3.4.2): '|' as primary field separator, ';' for multi-valued
// attributes, first line is the header.

#ifndef SNB_UTIL_CSV_H_
#define SNB_UTIL_CSV_H_

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace snb::util {

/// Streaming writer for one pipe-separated CSV file.
class CsvWriter {
 public:
  CsvWriter() = default;
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Opens `path` for writing and emits the header row.
  Status Open(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; field count must match the header.
  void WriteRow(const std::vector<std::string>& fields);

  /// Low-level append of an already-joined line (no separator handling).
  void WriteLine(std::string_view line);

  Status Close();

  bool is_open() const { return file_ != nullptr; }
  size_t rows_written() const { return rows_written_; }

 private:
  std::FILE* file_ = nullptr;
  size_t num_columns_ = 0;
  size_t rows_written_ = 0;
};

/// Fully-parsed pipe-separated CSV file.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Reads an entire CSV file; the first line is interpreted as the header.
StatusOr<CsvTable> ReadCsv(const std::string& path);

/// Splits a single field containing a multi-valued attribute on ';'.
/// An empty input yields an empty vector (not one empty element).
std::vector<std::string> SplitMultiValued(std::string_view field);

/// Joins values with ';' for a multi-valued attribute field.
std::string JoinMultiValued(const std::vector<std::string>& values);

/// Replaces any separator characters ('|', ';', '\n') in generated free text
/// so that serialized rows stay parseable.
std::string SanitizeField(std::string_view text);

}  // namespace snb::util

#endif  // SNB_UTIL_CSV_H_

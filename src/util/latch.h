// Count-down completion latch.
//
// BlockingCounter is the repo's one-shot "wait until N workers signalled"
// primitive: initialise with the number of outstanding workers, each worker
// calls DecrementCount() exactly once, and the coordinating thread blocks
// in Wait() until the count hits zero. It packages the Mutex + CondVar +
// counter pattern so call sites (engine/morsel.cc's helper join, and any
// future fan-out) don't each hand-roll a condition wait — scripts/lint.sh
// bans CondVar outside src/util/ for exactly this reason: every blocking
// wait loop in the repo lives where the spurious-wakeup re-check and the
// deadlock-analyzer instrumentation can be audited in one place.

#ifndef SNB_UTIL_LATCH_H_
#define SNB_UTIL_LATCH_H_

#include <cstddef>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::util {

/// One-shot latch: starts at `initial_count`, DecrementCount() releases one
/// unit, Wait() blocks until zero. Decrementing below zero is a checked
/// error; Wait may be called by exactly one thread (the coordinator).
class BlockingCounter {
 public:
  explicit BlockingCounter(size_t initial_count)
      : count_(initial_count) {}

  BlockingCounter(const BlockingCounter&) = delete;
  BlockingCounter& operator=(const BlockingCounter&) = delete;

  void DecrementCount() SNB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    SNB_CHECK(count_ > 0);
    if (--count_ == 0) zero_.NotifyAll();
  }

  void Wait() SNB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (count_ != 0) zero_.Wait(mu_);  // re-check: wakeups may be spurious
  }

 private:
  Mutex mu_{SNB_LOCK_SITE("util.blocking_counter.mu")};
  CondVar zero_;
  size_t count_ SNB_GUARDED_BY(mu_);
};

}  // namespace snb::util

#endif  // SNB_UTIL_LATCH_H_

// Deterministic random number generation.
//
// Every random decision made by the data generator must be a pure function of
// (global seed, stream tag, entity id) so that the generated network is
// bit-identical regardless of thread count or generation order — the
// "Determinism" requirement of spec §2.3.3. The workhorse is a 64-bit
// SplitMix64-seeded xoshiro256** generator plus a stateless Mix() hash used to
// derive independent streams.

#ifndef SNB_UTIL_RNG_H_
#define SNB_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace snb::util {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines stream tags into a single 64-bit seed; order-sensitive.
constexpr uint64_t MixSeed(uint64_t a) { return Mix64(a); }
template <typename... Rest>
constexpr uint64_t MixSeed(uint64_t a, Rest... rest) {
  return Mix64(a ^ (MixSeed(static_cast<uint64_t>(rest)...) +
                    0x9e3779b97f4a7c15ULL));
}

/// xoshiro256** seeded via SplitMix64. Deterministic, fast, and statistically
/// strong enough for synthetic-data generation.
class Rng {
 public:
  /// Constructs a generator whose entire output is a pure function of the
  /// given stream tags (typically: global seed, a stream enum, an entity id).
  template <typename... Tags>
  explicit Rng(uint64_t seed, Tags... tags) {
    uint64_t s = MixSeed(seed, static_cast<uint64_t>(tags)...);
    for (auto& word : state_) {
      s += 0x9e3779b97f4a7c15ULL;
      word = Mix64(s);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SNB_DCHECK(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(NextU64());  // full range
    // Lemire's nearly-divisionless bounded sampling (bias negligible for the
    // ranges used here; multiply-shift keeps the hot path branch-free).
    unsigned __int128 m =
        static_cast<unsigned __int128>(NextU64()) * range;
    return lo + static_cast<int64_t>(static_cast<uint64_t>(m >> 64));
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Geometric distribution: number of failures before first success,
  /// success probability p in (0, 1]. Mean (1-p)/p.
  int64_t Geometric(double p) {
    SNB_DCHECK(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    double u = NextDouble();
    // Avoid log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return static_cast<int64_t>(std::floor(std::log(u) / std::log1p(-p)));
  }

  /// Discrete power-law sample on [xmin, xmax] with exponent alpha > 1 via
  /// inverse-CDF of the continuous Pareto, rounded down. Heavier tail for
  /// smaller alpha.
  int64_t PowerLaw(int64_t xmin, int64_t xmax, double alpha) {
    SNB_DCHECK(xmin >= 1 && xmax >= xmin && alpha > 1.0);
    double u = NextDouble();
    double a1 = 1.0 - alpha;
    double lo = std::pow(static_cast<double>(xmin), a1);
    double hi = std::pow(static_cast<double>(xmax) + 1.0, a1);
    double x = std::pow(lo + u * (hi - lo), 1.0 / a1);
    int64_t r = static_cast<int64_t>(x);
    if (r < xmin) r = xmin;
    if (r > xmax) r = xmax;
    return r;
  }

  /// Standard normal via Box–Muller (one value per call; simple and fully
  /// deterministic, no cached state).
  double Gaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace snb::util

#endif  // SNB_UTIL_RNG_H_

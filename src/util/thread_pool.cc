#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"
#include "util/failpoint.h"

namespace snb::util {

ThreadPool::ThreadPool(size_t num_threads) {
  SNB_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SNB_FAILPOINT("threadpool.submit");
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && tasks_.empty()) task_ready_.Wait(mu_);
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForShards(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForShards(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t shards = std::min(n, num_threads());
  const size_t block = (n + shards - 1) / shards;
  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = s * block;
    const size_t end = std::min(n, begin + block);
    if (begin >= end) break;
    Submit([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace snb::util

// Deterministic fault injection (fail points).
//
// A *site* is a named place in production code where a test may inject a
// failure: SNB_FAILPOINT("wal.append") for void paths (crash/delay modes),
// SNB_FAILPOINT_STATUS("wal.append") inside Status-returning functions
// (adds the *error* mode: the injected Status is returned to the caller).
// Sites are compiled into every build; when no point is armed the macro is
// a function-local static guard plus one relaxed atomic load and a
// predictable branch — cheap enough for I/O paths (not for per-tuple query
// loops, which is why no site lives inside a BI kernel).
//
// Arming happens per-test through failpoint::Arm(name, spec) — scripts/
// lint.sh restricts the arming API to tests/ — or process-wide through the
// SNB_FAILPOINTS environment variable:
//
//   SNB_FAILPOINTS="wal.append=error;refresh.apply=delay:50;wal.commit=crash@3"
//
// Grammar per entry: name=mode[:arg][@nth][xCount]
//   mode  error | crash | delay | off
//   arg   error: transient (default) | corruption | io — the Status code
//         delay: milliseconds to sleep (default 10)
//   @nth  fire only on the nth hit after arming (1-based); default: every
//         hit from the first on
//   xN    auto-disarm after N firings (default: unlimited)
//
// Modes:
//   error  Hit() returns the injected Status (SNB_FAILPOINT_STATUS
//          propagates it; plain SNB_FAILPOINT ignores it)
//   crash  simulated power loss: the process dies via _Exit(CrashExitCode())
//          without flushing stdio or running atexit handlers, so partially
//          written files stay torn exactly as the kernel saw them
//   delay  sleeps, then continues (races, timeout and backoff testing)
//
// The registry remembers every site the process has *executed* (registration
// is the macro's local static), so a test can rehearse a code path once,
// enumerate RegisteredSites(), and then loop "crash at every site on this
// path" — the pattern tests/wal_recovery_test.cc uses for the §6.3-style
// recovery audit.

#ifndef SNB_UTIL_FAILPOINT_H_
#define SNB_UTIL_FAILPOINT_H_

#include <atomic>
#include <string>
#include <vector>

#include "util/status.h"

namespace snb::util::failpoint {

enum class Mode : uint8_t { kOff = 0, kError, kCrash, kDelay };

/// What an armed point does when hit. Defaults describe the common case:
/// an unconditional injected transient error.
struct Spec {
  Mode mode = Mode::kError;

  /// Status code carried by an injected error (kTransient drives the
  /// refresh retry loop; kCorruption and kIoError are terminal).
  StatusCode error_code = StatusCode::kTransient;

  /// Message of the injected Status; empty = "injected failure at <site>".
  std::string message;

  /// Sleep length for kDelay.
  int delay_ms = 10;

  /// Fire only on the nth hit after arming (1-based). 0 = every hit.
  int nth = 0;

  /// Auto-disarm after this many firings; -1 = unlimited.
  int max_fires = -1;
};

/// Remembers `name` in the registry. Called by the SNB_FAILPOINT macros via
/// a function-local static; idempotent and safe to call directly for sites
/// that need hand-rolled injection logic (see wal.cc's torn-write site).
bool RegisterSite(const char* name);

/// Arms a point. The site does not need to be registered yet (arming first
/// and executing later is the normal test order).
void Arm(const std::string& name, Spec spec);

/// Disarms one point / every point. DisarmAll() is what test fixtures call
/// in TearDown so armed points never leak across tests.
void Disarm(const std::string& name);
void DisarmAll();

/// Parses an SNB_FAILPOINTS-grammar string and arms each entry. With
/// nullptr, reads the SNB_FAILPOINTS environment variable (no-op when
/// unset). Returns kInvalidArgument on grammar errors, naming the entry.
Status ArmFromSpecString(const char* spec_string);

/// Every site name this process has registered, sorted.
std::vector<std::string> RegisteredSites();

/// True if `name` currently has an armed spec attached.
bool IsArmed(const std::string& name);

/// Hits observed at `name` since process start. Only counted while at least
/// one point (any point) is armed — the disarmed fast path skips all
/// bookkeeping by design.
size_t HitCount(const std::string& name);

/// Exit status of a kCrash firing; child-process tests assert on it.
int CrashExitCode();

namespace internal {
/// Count of currently armed points; the macros' fast-path gate.
extern std::atomic<int> g_armed_points;
}  // namespace internal

/// Fast path: false in any process that never armed a point.
inline bool AnyArmed() {
  // relaxed: hint only — a stale read sends the caller through Hit(),
  // which re-checks under the registry mutex.
  return internal::g_armed_points.load(std::memory_order_relaxed) != 0;
}

/// Slow path: records the hit and fires the armed spec, if any. Returns the
/// injected Status in kError mode, Ok otherwise (kCrash does not return).
Status Hit(const char* name);

}  // namespace snb::util::failpoint

/// Declares a fail-point site on a void path. kError firings are swallowed
/// (use SNB_FAILPOINT_STATUS where the caller can propagate a Status).
#define SNB_FAILPOINT(name)                                        \
  do {                                                             \
    static const bool snb_fp_reg =                                 \
        ::snb::util::failpoint::RegisterSite(name);                \
    (void)snb_fp_reg;                                              \
    if (::snb::util::failpoint::AnyArmed()) {                      \
      (void)::snb::util::failpoint::Hit(name);                     \
    }                                                              \
  } while (0)

/// Declares a fail-point site inside a util::Status-returning function;
/// an injected error returns from the enclosing function.
#define SNB_FAILPOINT_STATUS(name)                                 \
  do {                                                             \
    static const bool snb_fp_reg =                                 \
        ::snb::util::failpoint::RegisterSite(name);                \
    (void)snb_fp_reg;                                              \
    if (::snb::util::failpoint::AnyArmed()) {                      \
      ::snb::util::Status snb_fp_status =                          \
          ::snb::util::failpoint::Hit(name);                       \
      if (!snb_fp_status.ok()) return snb_fp_status;               \
    }                                                              \
  } while (0)

#endif  // SNB_UTIL_FAILPOINT_H_

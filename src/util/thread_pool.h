// Fixed-size thread pool with a blocking ParallelFor.
//
// Used to parallelize datagen passes and query evaluation. Work partitioning
// is deterministic (static block assignment), so parallel execution never
// changes results — only wall-clock time.
//
// Locking discipline (machine-checked under clang -Wthread-safety): the task
// queue, the in-flight counter and the shutdown flag are guarded by `mu_`;
// `workers_` is written only during construction/destruction and is safe to
// read without the lock.

#ifndef SNB_UTIL_THREAD_POOL_H_
#define SNB_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::util {

/// A minimal fixed-size worker pool. Tasks are std::function<void()>; Wait()
/// blocks until all submitted tasks completed.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task) SNB_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void Wait() SNB_EXCLUDES(mu_);

  /// Runs fn(i) for i in [0, n), partitioned into contiguous blocks across
  /// the pool; blocks until complete. fn must be safe to call concurrently
  /// for distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs fn(begin, end) over contiguous shards of [0, n); blocks until done.
  void ParallelForShards(
      size_t n, const std::function<void(size_t, size_t)>& fn);

  /// Returns a process-wide default pool sized to the hardware concurrency.
  static ThreadPool& Default();

 private:
  void WorkerLoop() SNB_EXCLUDES(mu_);

  // snb-lint-allow(guarded-by): written in the constructor and joined in
  // the destructor only; never touched while workers run
  std::vector<std::thread> workers_;
  /// Level 20: the pool queue lock is the declared *upper* end of the
  /// scheduler → pool ordering (sched/scheduler.cc holds its level-10
  /// admission mutex while Submit() takes this one).
  Mutex mu_{SNB_LOCK_LEVEL("util.thread_pool.mu", 20)};
  std::queue<std::function<void()>> tasks_ SNB_GUARDED_BY(mu_);
  CondVar task_ready_;
  CondVar all_done_;
  size_t in_flight_ SNB_GUARDED_BY(mu_) = 0;
  bool shutdown_ SNB_GUARDED_BY(mu_) = false;
};

}  // namespace snb::util

#endif  // SNB_UTIL_THREAD_POOL_H_

// Clang thread-safety annotations (-Wthread-safety).
//
// The engine's locking discipline is machine-checked: every mutex-protected
// member is declared SNB_GUARDED_BY its mutex, functions that expect a lock
// held declare SNB_REQUIRES, and the clang build turns violations into
// compile errors (-Werror=thread-safety, see the top-level CMakeLists).
// Under GCC and other compilers the macros expand to nothing, so the
// annotations cost nothing off-clang.
//
// The macro set mirrors the names used by the clang documentation and by
// Abseil; apply them through util/mutex.h's annotated Mutex/MutexLock/CondVar
// wrappers rather than raw std::mutex (libstdc++'s std::mutex carries no
// capability attributes, so the analysis cannot see through it —
// scripts/lint.sh rejects raw std::mutex outside util/mutex.h for exactly
// this reason).

#ifndef SNB_UTIL_THREAD_ANNOTATIONS_H_
#define SNB_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SNB_NO_THREAD_SAFETY_ANNOTATIONS)
#define SNB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SNB_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define SNB_CAPABILITY(x) SNB_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SNB_SCOPED_CAPABILITY SNB_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member is protected by the given capability; reads
/// and writes require it to be held.
#define SNB_GUARDED_BY(x) SNB_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the *pointee* of a pointer member is protected.
#define SNB_PT_GUARDED_BY(x) SNB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define SNB_ACQUIRED_BEFORE(...) \
  SNB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SNB_ACQUIRED_AFTER(...) \
  SNB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function must be called with the capabilities held (and does not
/// release them).
#define SNB_REQUIRES(...) \
  SNB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SNB_REQUIRES_SHARED(...) \
  SNB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capability.
#define SNB_ACQUIRE(...) SNB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SNB_ACQUIRE_SHARED(...) \
  SNB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SNB_RELEASE(...) SNB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SNB_RELEASE_SHARED(...) \
  SNB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function attempts the acquisition; `b` is the success return value.
#define SNB_TRY_ACQUIRE(...) \
  SNB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The function must be called with the capability NOT held.
#define SNB_EXCLUDES(...) SNB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code paths the static
/// analysis cannot follow).
#define SNB_ASSERT_CAPABILITY(x) \
  SNB_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability.
#define SNB_RETURN_CAPABILITY(x) SNB_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis. Every use must carry a comment
/// explaining which external contract makes the unchecked access safe
/// (e.g. the store's single-writer / multi-reader discipline).
#define SNB_NO_THREAD_SAFETY_ANALYSIS \
  SNB_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SNB_UTIL_THREAD_ANNOTATIONS_H_

// Minimal Status/StatusOr for recoverable errors (file I/O, parsing).
//
// The library avoids exceptions; functions that can fail in ways the caller
// should handle return Status (or StatusOr<T>).

#ifndef SNB_UTIL_STATUS_H_
#define SNB_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

/// Applied to the Status/StatusOr class types, so *every* function that
/// returns one by value is nodiscard without per-declaration annotation.
/// The compiler gate resolves overloads by type; snb_lint's token-level
/// unchecked-status check covers the unambiguous names and the rationale
/// requirement on explicit (void) discards. A macro (not bare
/// [[nodiscard]]) so a single site documents the policy and future
/// attribute arguments ("use SNB_RETURN_IF_ERROR") have one home.
#define SNB_NODISCARD [[nodiscard]]

namespace snb::util {

/// Error taxonomy. Callers branch on the code, never on message text:
///   kInvalidArgument — caller bug; retrying cannot help.
///   kNotFound        — the named thing does not exist.
///   kIoError         — the environment failed (open/short write/fsync);
///                      terminal unless the caller knows better.
///   kCorruption      — data on disk contradicts its checksum or format;
///                      terminal, needs recovery from a good copy.
///   kTransient       — the operation may succeed if simply retried (the
///                      refresh retry loop keys on exactly this code).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kCorruption = 4,
  kTransient = 5,
};

/// Stable name for log lines and test assertions.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kTransient: return "TRANSIENT";
  }
  return "UNKNOWN";
}

/// Result of an operation that may fail; cheap to copy when OK.
/// Class-level nodiscard: discarding any by-value Status is a -Werror
/// build break under SNB_DEV. Genuinely ignorable results take
/// `(void)` plus an adjacent `// snb-lint-allow(unchecked-status):`
/// with the reason — the analyzer rejects a bare (void).
class SNB_NODISCARD Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Transient(std::string m) {
    return Status(StatusCode::kTransient, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Retry-loop predicate: true only for errors that a plain retry can fix.
  bool IsTransient() const { return code_ == StatusCode::kTransient; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Access to the value requires ok().
template <typename T>
class SNB_NODISCARD StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    SNB_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SNB_CHECK(ok());
    return value_;
  }
  T& value() & {
    SNB_CHECK(ok());
    return value_;
  }
  T&& value() && {
    SNB_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

#define SNB_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::snb::util::Status _st = (expr);      \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace snb::util

#endif  // SNB_UTIL_STATUS_H_

// Minimal Status/StatusOr for recoverable errors (file I/O, parsing).
//
// The library avoids exceptions; functions that can fail in ways the caller
// should handle return Status (or StatusOr<T>).

#ifndef SNB_UTIL_STATUS_H_
#define SNB_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace snb::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kCorruptData = 4,
};

/// Result of an operation that may fail; cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status CorruptData(std::string m) {
    return Status(StatusCode::kCorruptData, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Access to the value requires ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    SNB_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SNB_CHECK(ok());
    return value_;
  }
  T& value() & {
    SNB_CHECK(ok());
    return value_;
  }
  T&& value() && {
    SNB_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

#define SNB_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::snb::util::Status _st = (expr);      \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace snb::util

#endif  // SNB_UTIL_STATUS_H_

// CRC-32C (Castagnoli polynomial, the iSCSI/ext4 checksum) — the WAL's
// record checksum. Table-driven software implementation; the table is built
// at compile time, so there is no init-order dependency and no runtime
// setup. Byte-at-a-time is plenty for WAL record sizes (hundreds of bytes);
// a slicing-by-8 or SSE4.2 variant can slot in behind the same signature if
// the log ever becomes checksum-bound.

#ifndef SNB_UTIL_CRC32C_H_
#define SNB_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace snb::util {

namespace internal {

struct Crc32cTable {
  uint32_t entries[256];
  constexpr Crc32cTable() : entries{} {
    constexpr uint32_t kReflectedPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kReflectedPoly : 0u);
      }
      entries[i] = crc;
    }
  }
};

inline constexpr Crc32cTable kCrc32cTable{};

}  // namespace internal

/// CRC-32C of `n` bytes. Pass a previous result as `seed` to checksum data
/// arriving in chunks; 0 for a fresh computation.
inline uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = internal::kCrc32cTable.entries[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace snb::util

#endif  // SNB_UTIL_CRC32C_H_

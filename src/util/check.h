// Lightweight invariant-checking macros (CHECK-style, Google conventions).
//
// The snb library does not use exceptions: unrecoverable invariant violations
// abort the process with a file:line diagnostic, recoverable I/O failures
// travel through snb::util::Status (see status.h). These macros are the ONE
// sanctioned way to abort — scripts/lint.sh rejects raw assert()/abort()
// outside this header so every invariant failure reports the same way.

#ifndef SNB_UTIL_CHECK_H_
#define SNB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace snb::util {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const char* message = nullptr) {
  if (message != nullptr) {
    std::fprintf(stderr, "SNB_CHECK failed at %s:%d: %s — %s\n", file, line,
                 expr, message);
  } else {
    std::fprintf(stderr, "SNB_CHECK failed at %s:%d: %s\n", file, line, expr);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace snb::util

/// Aborts with a diagnostic when `cond` is false. Always enabled (the cost of
/// a predictable branch is negligible next to the cost of silent corruption
/// in a data generator whose output must be bit-reproducible).
#define SNB_CHECK(cond)                                      \
  do {                                                       \
    if (!(cond)) {                                           \
      ::snb::util::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                        \
  } while (0)

/// SNB_CHECK with an explanatory message (a const char* or std::string
/// c_str(); evaluated only on failure).
#define SNB_CHECK_MSG(cond, msg)                                \
  do {                                                          \
    if (!(cond)) {                                              \
      ::snb::util::CheckFailed(__FILE__, __LINE__, #cond, msg); \
    }                                                           \
  } while (0)

#define SNB_CHECK_EQ(a, b) SNB_CHECK((a) == (b))
#define SNB_CHECK_NE(a, b) SNB_CHECK((a) != (b))
#define SNB_CHECK_LT(a, b) SNB_CHECK((a) < (b))
#define SNB_CHECK_LE(a, b) SNB_CHECK((a) <= (b))
#define SNB_CHECK_GT(a, b) SNB_CHECK((a) > (b))
#define SNB_CHECK_GE(a, b) SNB_CHECK((a) >= (b))

/// Aborts when a util::Status (or StatusOr's status()) is not ok, printing
/// its ToString(). For tools and benches where an I/O failure is fatal.
#define SNB_CHECK_OK(status_expr)                            \
  do {                                                       \
    const auto& snb_check_ok_status = (status_expr);         \
    if (!snb_check_ok_status.ok()) {                         \
      ::snb::util::CheckFailed(                              \
          __FILE__, __LINE__, #status_expr,                  \
          snb_check_ok_status.ToString().c_str());           \
    }                                                        \
  } while (0)

/// Marks a branch the program logic rules out (e.g. an exhaustive switch's
/// default). Replaces the old `SNB_CHECK(false)` idiom with a diagnostic
/// that says what it means.
#define SNB_UNREACHABLE()                                             \
  ::snb::util::CheckFailed(__FILE__, __LINE__, "unreachable branch",  \
                           "control flow reached code ruled out by "  \
                           "construction")

/// Checks that are only active in debug builds (hot loops). The disabled
/// form still names `cond` in a never-taken branch so variables used only
/// in DCHECKs don't become unused-warnings in release builds.
#ifdef NDEBUG
#define SNB_DCHECK(cond)    \
  do {                      \
    if (false) (void)(cond); \
  } while (0)
#else
#define SNB_DCHECK(cond) SNB_CHECK(cond)
#endif

#endif  // SNB_UTIL_CHECK_H_

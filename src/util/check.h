// Lightweight invariant-checking macros (CHECK-style, Google conventions).
//
// The snb library does not use exceptions: unrecoverable invariant violations
// abort the process with a diagnostic, recoverable I/O failures travel through
// snb::util::Status (see status.h).

#ifndef SNB_UTIL_CHECK_H_
#define SNB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace snb::util {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "SNB_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace snb::util

/// Aborts with a diagnostic when `cond` is false. Always enabled (the cost of
/// a predictable branch is negligible next to the cost of silent corruption
/// in a data generator whose output must be bit-reproducible).
#define SNB_CHECK(cond)                                      \
  do {                                                       \
    if (!(cond)) {                                           \
      ::snb::util::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                        \
  } while (0)

#define SNB_CHECK_EQ(a, b) SNB_CHECK((a) == (b))
#define SNB_CHECK_NE(a, b) SNB_CHECK((a) != (b))
#define SNB_CHECK_LT(a, b) SNB_CHECK((a) < (b))
#define SNB_CHECK_LE(a, b) SNB_CHECK((a) <= (b))
#define SNB_CHECK_GT(a, b) SNB_CHECK((a) > (b))
#define SNB_CHECK_GE(a, b) SNB_CHECK((a) >= (b))

/// Checks that are only active in debug builds (hot loops).
#ifdef NDEBUG
#define SNB_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define SNB_DCHECK(cond) SNB_CHECK(cond)
#endif

#endif  // SNB_UTIL_CHECK_H_

// Capability-annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable that carry the
// clang thread-safety attributes (util/thread_annotations.h). libstdc++'s
// std::mutex has no capability annotations, so locking it directly is
// invisible to -Wthread-safety; routing every lock through these wrappers is
// what makes SNB_GUARDED_BY members actually checkable. scripts/lint.sh
// enforces that raw std::mutex does not appear outside this header.
//
// Usage pattern:
//
//   util::Mutex mu_;
//   size_t in_flight_ SNB_GUARDED_BY(mu_) = 0;
//
//   void Tick() {
//     util::MutexLock lock(mu_);
//     ++in_flight_;                 // OK: lock held
//   }
//
// Condition waits take the Mutex directly (CondVar::Wait requires it held)
// and use explicit while-loops rather than predicate lambdas: clang's
// analysis does not propagate capabilities into lambda bodies, so a
// predicate closure reading guarded members would trip -Werror.

#ifndef SNB_UTIL_MUTEX_H_
#define SNB_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace snb::util {

class CondVar;

/// An exclusive capability. Prefer MutexLock over manual Lock/Unlock pairs.
class SNB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SNB_ACQUIRE() { mu_.lock(); }
  void Unlock() SNB_RELEASE() { mu_.unlock(); }
  bool TryLock() SNB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock guard for Mutex (the annotated analogue of std::lock_guard).
class SNB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SNB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SNB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Wait atomically releases the mutex,
/// blocks, and reacquires before returning — so from the analysis' point of
/// view the capability is held across the call, which is exactly the
/// contract the caller's while-loop relies on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SNB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the re-acquired mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace snb::util

#endif  // SNB_UTIL_MUTEX_H_

// Capability-annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable that carry the
// clang thread-safety attributes (util/thread_annotations.h). libstdc++'s
// std::mutex has no capability annotations, so locking it directly is
// invisible to -Wthread-safety; routing every lock through these wrappers is
// what makes SNB_GUARDED_BY members actually checkable. scripts/lint.sh
// enforces that raw std::mutex does not appear outside this header, and
// that CondVar is used only inside src/util/ — higher layers express
// waiting through util primitives (ThreadPool, BlockingCounter) so every
// blocking pattern in the repo lives in one auditable place.
//
// Usage pattern:
//
//   util::Mutex mu_{SNB_LOCK_SITE("mylib.mu")};
//   size_t in_flight_ SNB_GUARDED_BY(mu_) = 0;
//
//   void Tick() {
//     util::MutexLock lock(mu_);
//     ++in_flight_;                 // OK: lock held
//   }
//
// SNB_LOCK_SITE names the mutex's creation site for the lock-order
// analyzer (src/analysis/lock_graph.h). In SNB_DEADLOCK_DETECT builds
// every acquisition records held→acquired edges into a global graph and a
// cycle check reports *potential* deadlocks (inconsistent lock order) even
// when the fatal interleaving never executes; CondVar waits additionally
// assert that no unrelated mutex is held across the block. In regular
// builds the macros collapse to nullptr and the hooks compile away — the
// wrappers are exactly as cheap as the raw primitives.
//
// Condition waits take the Mutex directly (CondVar::Wait requires it held)
// and use explicit while-loops rather than predicate lambdas: clang's
// analysis does not propagate capabilities into lambda bodies, so a
// predicate closure reading guarded members would trip -Werror. The
// while-loop form is also what makes spurious wakeups harmless — both
// Wait and WaitFor may return with the predicate still false, and every
// caller re-checks before proceeding.

#ifndef SNB_UTIL_MUTEX_H_
#define SNB_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "analysis/lock_site.h"
#include "util/thread_annotations.h"

#ifdef SNB_DEADLOCK_DETECT
#include "analysis/lock_graph.h"

/// Declares the identity of a mutex creation site; all instances
/// constructed at this line share one node in the lock-order graph.
#define SNB_LOCK_SITE(site_name)                                      \
  ([]() -> const ::snb::analysis::LockSiteInfo* {                     \
    static const ::snb::analysis::LockSiteInfo info{                  \
        site_name, __FILE__, __LINE__, ::snb::analysis::kNoLevel};    \
    return &info;                                                     \
  }())

/// Like SNB_LOCK_SITE but with a declared lock level: acquisitions across
/// levelled sites must go strictly upward, and holding a lower level
/// across a CondVar wait on a higher one is explicitly permitted — the
/// escape hatch for known-good orderings such as scheduler → thread pool.
#define SNB_LOCK_LEVEL(site_name, lvl)                                \
  ([]() -> const ::snb::analysis::LockSiteInfo* {                     \
    static const ::snb::analysis::LockSiteInfo info{site_name,        \
                                                    __FILE__,         \
                                                    __LINE__, (lvl)}; \
    return &info;                                                     \
  }())
#else
#define SNB_LOCK_SITE(site_name) nullptr
#define SNB_LOCK_LEVEL(site_name, lvl) nullptr
#endif

namespace snb::util {

class CondVar;

/// An exclusive capability. Prefer MutexLock over manual Lock/Unlock pairs.
class SNB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Takes the site handle produced by SNB_LOCK_SITE / SNB_LOCK_LEVEL;
  /// ignored (and nullptr) when detection is compiled out.
  explicit Mutex(const analysis::LockSiteInfo* site) {
#ifdef SNB_DEADLOCK_DETECT
    dbg_.static_site = site;
#else
    (void)site;
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SNB_ACQUIRE() {
#ifdef SNB_DEADLOCK_DETECT
    analysis::OnLockAttempt(&dbg_);
#endif
    mu_.lock();
#ifdef SNB_DEADLOCK_DETECT
    analysis::OnLocked(&dbg_);
#endif
  }

  void Unlock() SNB_RELEASE() {
#ifdef SNB_DEADLOCK_DETECT
    analysis::OnUnlock(&dbg_);
#endif
    mu_.unlock();
  }

  bool TryLock() SNB_TRY_ACQUIRE(true) {
    bool acquired = mu_.try_lock();
#ifdef SNB_DEADLOCK_DETECT
    // A try-lock cannot block, hence records no ordering edge; but while
    // held it still orders everything acquired after it.
    if (acquired) analysis::OnTryLocked(&dbg_);
#endif
    return acquired;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef SNB_DEADLOCK_DETECT
  analysis::MutexDebug dbg_;
#endif
};

/// RAII lock guard for Mutex (the annotated analogue of std::lock_guard).
class SNB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SNB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SNB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Wait atomically releases the mutex,
/// blocks, and reacquires before returning — so from the analysis' point of
/// view the capability is held across the call, which is exactly the
/// contract the caller's while-loop relies on.
///
/// Both Wait and WaitFor may return spuriously; callers MUST loop:
///
///   while (!predicate) cv.Wait(mu);                 // plain wait
///   while (!predicate) {
///     if (!cv.WaitFor(mu, budget)) break;           // timed out
///   }
///   // re-check predicate here — a timeout does not imply it is false
///   // forever, and a wakeup does not imply it is true.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SNB_REQUIRES(mu) {
#ifdef SNB_DEADLOCK_DETECT
    analysis::OnCondVarWait(&mu.dbg_);
#endif
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the re-acquired mutex
  }

  /// Timed wait: blocks for at most `timeout`, returns false on timeout and
  /// true on a notify (possibly spurious — re-check the predicate either
  /// way). The mutex is held again whenever this returns.
  bool WaitFor(Mutex& mu, std::chrono::milliseconds timeout)
      SNB_REQUIRES(mu) {
#ifdef SNB_DEADLOCK_DETECT
    analysis::OnCondVarWait(&mu.dbg_);
#endif
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();  // the caller still owns the re-acquired mutex
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace snb::util

#endif  // SNB_UTIL_MUTEX_H_

#include "util/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::util::failpoint {

namespace internal {
std::atomic<int> g_armed_points{0};
}  // namespace internal

namespace {

struct SiteState {
  bool armed = false;
  Spec spec;
  size_t hits = 0;        // hits while any point was armed (see header)
  size_t armed_hits = 0;  // hits since this site was last armed
  size_t fires = 0;       // firings since this site was last armed
};

struct Registry {
  Mutex mu;
  // std::map: RegisteredSites() comes out sorted for free, and the site
  // count is tiny (tens), so node churn is irrelevant.
  std::map<std::string, SiteState> sites SNB_GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all sites
  return *registry;
}

/// One-time SNB_FAILPOINTS pickup, piggybacked on the first registration or
/// arming so env-armed points are live before any site can be hit. An
/// atomic exchange (not a static initializer) guards it because parsing
/// itself calls Arm(), which re-enters here — a function-local static would
/// deadlock on its own init guard.
void InitFromEnvOnce() {
  static std::atomic<bool> started{false};
  if (started.exchange(true)) return;
  Status st = ArmFromSpecString(nullptr);
  if (!st.ok()) {
    std::fprintf(stderr, "SNB_FAILPOINTS ignored: %s\n",
                 st.ToString().c_str());
  }
}

void DisarmLocked(SiteState& state) {
  if (!state.armed) return;
  state.armed = false;
  // relaxed: fast-path hint only; arming is published by registry.mu, and
  // a stale non-zero read just takes the locked slow path once more.
  internal::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace

bool RegisterSite(const char* name) {
  InitFromEnvOnce();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.sites.try_emplace(name);
  return true;
}

void Arm(const std::string& name, Spec spec) {
  InitFromEnvOnce();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  SiteState& state = registry.sites[name];
  if (!state.armed) {
    // relaxed: fast-path hint; the spec itself is published by registry.mu.
    internal::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  }
  state.armed = true;
  state.spec = std::move(spec);
  state.armed_hits = 0;
  state.fires = 0;
}

void Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.sites.find(name);
  if (it != registry.sites.end()) DisarmLocked(it->second);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  for (auto& [name, state] : registry.sites) DisarmLocked(state);
}

std::vector<std::string> RegisteredSites() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.sites.size());
  for (const auto& [name, state] : registry.sites) names.push_back(name);
  return names;
}

bool IsArmed(const std::string& name) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.sites.find(name);
  return it != registry.sites.end() && it->second.armed;
}

size_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.sites.find(name);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

int CrashExitCode() { return 86; }

Status Hit(const char* name) {
  Spec fired;
  bool fire = false;
  {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mu);
    SiteState& state = registry.sites[name];
    ++state.hits;
    if (!state.armed) return Status::Ok();
    ++state.armed_hits;
    if (state.spec.nth > 0 &&
        state.armed_hits != static_cast<size_t>(state.spec.nth)) {
      // Past the one-shot trigger point: restore the zero-cost fast path.
      if (state.armed_hits > static_cast<size_t>(state.spec.nth)) {
        DisarmLocked(state);
      }
      return Status::Ok();
    }
    fire = true;
    fired = state.spec;
    ++state.fires;
    bool exhausted = state.spec.max_fires >= 0 &&
                     state.fires >= static_cast<size_t>(state.spec.max_fires);
    if (state.spec.nth > 0 || exhausted) DisarmLocked(state);
  }
  if (!fire) return Status::Ok();

  switch (fired.mode) {
    case Mode::kOff:
      return Status::Ok();
    case Mode::kError: {
      std::string message = fired.message.empty()
                                ? "injected failure at " + std::string(name)
                                : fired.message;
      return Status(fired.error_code, std::move(message));
    }
    case Mode::kCrash:
      // Simulated power loss: no stdio flush, no atexit, no destructors —
      // whatever reached the kernel is what recovery will find. _Exit is
      // the point of the crash mode; SNB_CHECK-style abort would run
      // libc teardown and flush buffers a real power cut never flushes.
      std::fprintf(stderr, "SNB_FAILPOINT crash at %s\n", name);
      std::fflush(stderr);
      std::_Exit(CrashExitCode());
    case Mode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
      return Status::Ok();
  }
  return Status::Ok();
}

namespace {

/// Parses one `name=mode[:arg][@nth][xCount]` entry.
Status ParseEntry(const std::string& entry) {
  size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("fail-point entry without name=mode: '" +
                                   entry + "'");
  }
  std::string name = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);

  auto all_digits = [](const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
    }
    return true;
  };

  Spec spec;
  size_t xpos = rest.rfind('x');
  if (xpos != std::string::npos && all_digits(rest.substr(xpos + 1))) {
    spec.max_fires = std::atoi(rest.c_str() + xpos + 1);
    rest.resize(xpos);
  }
  size_t apos = rest.rfind('@');
  if (apos != std::string::npos) {
    if (!all_digits(rest.substr(apos + 1))) {
      return Status::InvalidArgument("bad @nth in fail-point entry '" +
                                     entry + "'");
    }
    spec.nth = std::atoi(rest.c_str() + apos + 1);
    rest.resize(apos);
  }
  std::string arg;
  size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    arg = rest.substr(colon + 1);
    rest.resize(colon);
  }

  if (rest == "error") {
    spec.mode = Mode::kError;
    if (arg.empty() || arg == "transient") {
      spec.error_code = StatusCode::kTransient;
    } else if (arg == "corruption") {
      spec.error_code = StatusCode::kCorruption;
    } else if (arg == "io") {
      spec.error_code = StatusCode::kIoError;
    } else {
      return Status::InvalidArgument("unknown error code '" + arg +
                                     "' in fail-point entry '" + entry + "'");
    }
  } else if (rest == "crash") {
    spec.mode = Mode::kCrash;
  } else if (rest == "delay") {
    spec.mode = Mode::kDelay;
    if (!arg.empty()) {
      if (!all_digits(arg)) {
        return Status::InvalidArgument("bad delay ms in fail-point entry '" +
                                       entry + "'");
      }
      spec.delay_ms = std::atoi(arg.c_str());
    }
  } else if (rest == "off") {
    Disarm(name);
    return Status::Ok();
  } else {
    return Status::InvalidArgument("unknown fail-point mode '" + rest +
                                   "' in entry '" + entry + "'");
  }
  Arm(name, std::move(spec));
  return Status::Ok();
}

}  // namespace

Status ArmFromSpecString(const char* spec_string) {
  const char* text = spec_string;
  if (text == nullptr) {
    text = std::getenv("SNB_FAILPOINTS");
    if (text == nullptr) return Status::Ok();
  }
  std::string all(text);
  size_t start = 0;
  while (start <= all.size()) {
    size_t end = all.find(';', start);
    if (end == std::string::npos) end = all.size();
    std::string entry = all.substr(start, end - start);
    if (!entry.empty()) SNB_RETURN_IF_ERROR(ParseEntry(entry));
    start = end + 1;
  }
  return Status::Ok();
}

}  // namespace snb::util::failpoint

// Parameter curation (spec §3.3).
//
// Substitution parameters must give every instance of a query template
// similar runtime behaviour (properties P1–P3). The two-stage procedure of
// the spec is implemented directly:
//   1. count collection — for every candidate binding, the size of the
//      intermediate results its query would touch (friend count, two-hop
//      size, messages-of-friends for persons; message counts for tags;
//      person counts for countries);
//   2. greedy selection — bindings whose count vectors lie closest to the
//      candidate median are selected, so the selected set has bounded
//      variance (P1) and a stable distribution across samples (P2).
//
// The module produces typed parameter lists for all 39 read queries (used
// by the driver and the benches) and serializes them in the
// substitution_parameters/ layout of spec §2.3.4.4.

#ifndef SNB_PARAMS_PARAMETER_CURATION_H_
#define SNB_PARAMS_PARAMETER_CURATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bi/bi.h"
#include "interactive/interactive.h"
#include "storage/graph.h"
#include "util/status.h"

namespace snb::params {

struct CurationConfig {
  uint64_t seed = 42;
  /// Bindings generated per query template.
  size_t per_query = 20;
  /// Candidates within this relative distance of the median count vector
  /// are eligible (the greedy stage widens it if too few qualify).
  double tolerance = 0.25;
  /// Simulated period (for date parameters).
  int32_t start_year = 2010;
  int32_t num_years = 3;
};

/// Per-person counts collected in stage 1.
struct PersonCounts {
  uint32_t person = 0;
  int64_t friends = 0;
  int64_t two_hop = 0;
  int64_t friend_messages = 0;
};

/// Curated person bindings plus the count statistics, for the P1 test and
/// the curation bench.
struct CuratedPersons {
  std::vector<PersonCounts> selected;
  double selected_friend_stddev = 0;
  double population_friend_stddev = 0;
};

/// Stage 1 + 2 for person parameters.
CuratedPersons CuratePersons(const storage::Graph& graph,
                             const CurationConfig& config);

/// Typed parameter lists for every read query template.
struct WorkloadParameters {
  std::vector<interactive::Ic1Params> ic1;
  std::vector<interactive::Ic2Params> ic2;
  std::vector<interactive::Ic3Params> ic3;
  std::vector<interactive::Ic4Params> ic4;
  std::vector<interactive::Ic5Params> ic5;
  std::vector<interactive::Ic6Params> ic6;
  std::vector<interactive::Ic7Params> ic7;
  std::vector<interactive::Ic8Params> ic8;
  std::vector<interactive::Ic9Params> ic9;
  std::vector<interactive::Ic10Params> ic10;
  std::vector<interactive::Ic11Params> ic11;
  std::vector<interactive::Ic12Params> ic12;
  std::vector<interactive::Ic13Params> ic13;
  std::vector<interactive::Ic14Params> ic14;

  std::vector<bi::Bi1Params> bi1;
  std::vector<bi::Bi2Params> bi2;
  std::vector<bi::Bi3Params> bi3;
  std::vector<bi::Bi4Params> bi4;
  std::vector<bi::Bi5Params> bi5;
  std::vector<bi::Bi6Params> bi6;
  std::vector<bi::Bi7Params> bi7;
  std::vector<bi::Bi8Params> bi8;
  std::vector<bi::Bi9Params> bi9;
  std::vector<bi::Bi10Params> bi10;
  std::vector<bi::Bi11Params> bi11;
  std::vector<bi::Bi12Params> bi12;
  std::vector<bi::Bi13Params> bi13;
  std::vector<bi::Bi14Params> bi14;
  std::vector<bi::Bi15Params> bi15;
  std::vector<bi::Bi16Params> bi16;
  std::vector<bi::Bi17Params> bi17;
  std::vector<bi::Bi18Params> bi18;
  std::vector<bi::Bi19Params> bi19;
  std::vector<bi::Bi20Params> bi20;
  std::vector<bi::Bi21Params> bi21;
  std::vector<bi::Bi22Params> bi22;
  std::vector<bi::Bi23Params> bi23;
  std::vector<bi::Bi24Params> bi24;
  std::vector<bi::Bi25Params> bi25;
};

/// Runs the full curation for all query templates.
WorkloadParameters CurateParameters(const storage::Graph& graph,
                                    const CurationConfig& config);

/// Writes {interactive|bi}_<n>_param.txt files with JSON-formatted bindings
/// (spec §2.3.4.4) under `dir`.
util::Status WriteSubstitutionParameters(const WorkloadParameters& params,
                                         const std::string& dir);

}  // namespace snb::params

#endif  // SNB_PARAMS_PARAMETER_CURATION_H_

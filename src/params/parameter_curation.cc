#include "params/parameter_curation.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <unordered_set>

#include "core/date_time.h"
#include "util/check.h"
#include "util/rng.h"

namespace snb::params {

using storage::Graph;
using storage::kNoIdx;

namespace {

double StdDev(const std::vector<int64_t>& values) {
  if (values.empty()) return 0;
  double mean = 0;
  for (int64_t v : values) mean += static_cast<double>(v);
  mean /= static_cast<double>(values.size());
  double var = 0;
  for (int64_t v : values) {
    double d = static_cast<double>(v) - mean;
    var += d * d;
  }
  return std::sqrt(var / static_cast<double>(values.size()));
}

/// Greedy stage: items whose count lies within `tolerance` of the median,
/// widening the band until `want` items qualify.
template <typename GetCount>
std::vector<uint32_t> SelectNearMedian(const std::vector<uint32_t>& candidates,
                                       GetCount get_count, size_t want,
                                       double tolerance) {
  if (candidates.empty()) return {};
  std::vector<uint32_t> sorted = candidates;
  std::sort(sorted.begin(), sorted.end(), [&](uint32_t a, uint32_t b) {
    int64_t ca = get_count(a);
    int64_t cb = get_count(b);
    return ca != cb ? ca < cb : a < b;
  });
  const double median =
      static_cast<double>(get_count(sorted[sorted.size() / 2]));
  std::vector<uint32_t> selected;
  double band = tolerance;
  while (selected.size() < want && band < 1e6) {
    selected.clear();
    double lo = median * (1.0 - band) - band;
    double hi = median * (1.0 + band) + band;
    for (uint32_t c : sorted) {
      double v = static_cast<double>(get_count(c));
      if (v >= lo && v <= hi) selected.push_back(c);
      if (selected.size() == want) break;
    }
    band *= 2;
  }
  return selected;
}

}  // namespace

CuratedPersons CuratePersons(const Graph& graph,
                             const CurationConfig& config) {
  CuratedPersons out;
  const size_t n = graph.NumPersons();
  if (n == 0) return out;

  // Stage 1: count collection.
  std::vector<PersonCounts> counts(n);
  std::vector<int64_t> population_friends;
  population_friends.reserve(n);
  for (uint32_t p = 0; p < n; ++p) {
    PersonCounts& c = counts[p];
    c.person = p;
    c.friends = static_cast<int64_t>(graph.Knows().Degree(p));
    population_friends.push_back(c.friends);
    std::unordered_set<uint32_t> two_hop;
    graph.Knows().ForEach(p, [&](uint32_t f) {
      c.friend_messages +=
          static_cast<int64_t>(graph.PersonPosts().Degree(f)) +
          static_cast<int64_t>(graph.PersonComments().Degree(f));
      graph.Knows().ForEach(f, [&](uint32_t ff) {
        if (ff != p) two_hop.insert(ff);
      });
    });
    c.two_hop = static_cast<int64_t>(two_hop.size());
  }

  // Stage 2: greedy selection near the median friend-count among persons
  // with at least one friend.
  std::vector<uint32_t> candidates;
  for (uint32_t p = 0; p < n; ++p) {
    if (counts[p].friends > 0) candidates.push_back(p);
  }
  std::vector<uint32_t> selected = SelectNearMedian(
      candidates, [&](uint32_t p) { return counts[p].friends; },
      config.per_query, config.tolerance);

  std::vector<int64_t> selected_friends;
  for (uint32_t p : selected) {
    out.selected.push_back(counts[p]);
    selected_friends.push_back(counts[p].friends);
  }
  out.selected_friend_stddev = StdDev(selected_friends);
  out.population_friend_stddev = StdDev(population_friends);
  return out;
}

WorkloadParameters CurateParameters(const Graph& graph,
                                    const CurationConfig& config) {
  WorkloadParameters out;
  util::Rng rng(config.seed, uint64_t{0x9a7a});
  const size_t k = config.per_query;

  CuratedPersons persons = CuratePersons(graph, config);
  std::vector<core::Id> person_ids;
  for (const PersonCounts& c : persons.selected) {
    person_ids.push_back(graph.PersonAt(c.person).id);
  }
  if (person_ids.empty() && graph.NumPersons() > 0) {
    person_ids.push_back(graph.PersonAt(0).id);
  }
  auto person_at = [&](size_t i) {
    return person_ids[i % person_ids.size()];
  };

  // Curated tags: message count near the nonzero median.
  std::vector<uint32_t> tag_candidates;
  auto tag_count = [&](uint32_t t) {
    return static_cast<int64_t>(graph.TagPosts().Degree(t)) +
           static_cast<int64_t>(graph.TagComments().Degree(t));
  };
  for (uint32_t t = 0; t < graph.NumTags(); ++t) {
    if (tag_count(t) > 0) tag_candidates.push_back(t);
  }
  std::vector<uint32_t> tags =
      SelectNearMedian(tag_candidates, tag_count, k, config.tolerance);
  if (tags.empty() && graph.NumTags() > 0) tags.push_back(0);
  auto tag_at = [&](size_t i) {
    return graph.TagAt(tags[i % tags.size()]).name;
  };

  // Curated countries: population near the nonzero median.
  std::vector<uint32_t> country_candidates;
  auto country_count = [&](uint32_t place) {
    return static_cast<int64_t>(graph.CountryPersons().Degree(place));
  };
  for (uint32_t place = 0; place < graph.NumPlaces(); ++place) {
    if (graph.PlaceAt(place).type == core::PlaceType::kCountry &&
        country_count(place) > 0) {
      country_candidates.push_back(place);
    }
  }
  std::vector<uint32_t> countries = SelectNearMedian(
      country_candidates, country_count, k, config.tolerance);
  SNB_CHECK(!countries.empty());
  auto country_at = [&](size_t i) {
    return graph.PlaceAt(countries[i % countries.size()]).name;
  };

  // Tag classes with at least one tag, rotated.
  std::vector<uint32_t> classes;
  for (uint32_t tc = 0; tc < graph.NumTagClasses(); ++tc) {
    if (graph.TagClassTags().Degree(tc) > 0) classes.push_back(tc);
  }
  SNB_CHECK(!classes.empty());
  auto class_at = [&](size_t i) {
    return graph.TagClassAt(classes[i % classes.size()]).name;
  };

  // Dates inside the simulated period.
  const core::Date sim_start = core::DateFromCivil(config.start_year, 1, 1);
  const core::Date sim_end =
      core::DateFromCivil(config.start_year + config.num_years, 1, 1);
  const core::Date mid = sim_start + (sim_end - sim_start) / 2;
  auto date_at = [&](size_t i) {
    // Spread over the middle half of the simulation for stable selectivity.
    core::Date span = (sim_end - sim_start) / 2;
    return sim_start + span / 2 +
           static_cast<core::Date>((i * 37) % std::max<core::Date>(span, 1));
  };

  // Person pairs at knows-distance ≥ 2 for the path queries.
  std::vector<std::pair<core::Id, core::Id>> pairs;
  for (size_t i = 0; i < k && person_ids.size() >= 2; ++i) {
    core::Id a = person_at(i);
    core::Id b = person_at(i + person_ids.size() / 2);
    if (a == b) b = person_at(i + 1);
    pairs.emplace_back(a, b);
  }
  if (pairs.empty() && !person_ids.empty()) {
    pairs.emplace_back(person_ids[0], person_ids[0]);
  }

  const std::vector<std::string> sample_first_names = {"Chen", "Maria",
                                                       "John", "Mei", "Ali"};
  const std::vector<std::string> sample_languages = {"en", "zh", "es"};

  for (size_t i = 0; i < k; ++i) {
    out.ic1.push_back(
        {person_at(i), sample_first_names[i % sample_first_names.size()]});
    out.ic2.push_back({person_at(i), date_at(i)});
    out.ic3.push_back({person_at(i), country_at(i), country_at(i + 1),
                       date_at(i), 30 + static_cast<int32_t>(i % 3) * 15});
    out.ic4.push_back(
        {person_at(i), date_at(i), 30 + static_cast<int32_t>(i % 3) * 15});
    out.ic5.push_back({person_at(i), date_at(i)});
    out.ic6.push_back({person_at(i), tag_at(i)});
    out.ic7.push_back({person_at(i)});
    out.ic8.push_back({person_at(i)});
    out.ic9.push_back({person_at(i), date_at(i)});
    out.ic10.push_back(
        {person_at(i), static_cast<int32_t>(1 + (i % 12))});
    out.ic11.push_back({person_at(i), country_at(i),
                        config.start_year - static_cast<int32_t>(i % 10)});
    out.ic12.push_back({person_at(i), class_at(i)});
    out.ic13.push_back({pairs[i % pairs.size()].first,
                        pairs[i % pairs.size()].second});
    out.ic14.push_back({pairs[i % pairs.size()].first,
                        pairs[i % pairs.size()].second});

    out.bi1.push_back({date_at(i)});
    out.bi2.push_back({sim_start, date_at(i), country_at(i),
                       country_at(i + 1), sim_end, 0});
    out.bi3.push_back(
        {config.start_year + static_cast<int32_t>(i % config.num_years),
         static_cast<int32_t>(1 + (i % 11))});
    out.bi4.push_back({class_at(i), country_at(i)});
    out.bi5.push_back({country_at(i)});
    out.bi6.push_back({tag_at(i)});
    out.bi7.push_back({tag_at(i)});
    out.bi8.push_back({tag_at(i)});
    out.bi9.push_back({class_at(i), class_at(i + 1),
                       static_cast<int64_t>(1 + i % 5)});
    out.bi10.push_back({tag_at(i), date_at(i)});
    out.bi11.push_back({country_at(i), {"about", "never"}});
    out.bi12.push_back({date_at(i), static_cast<int64_t>(i % 4)});
    out.bi13.push_back({country_at(i)});
    out.bi14.push_back({date_at(i), date_at(i) + 90});
    out.bi15.push_back({country_at(i)});
    out.bi16.push_back({person_at(i), country_at(i), class_at(i), 1,
                        static_cast<int32_t>(2 + i % 2)});
    out.bi17.push_back({country_at(i)});
    out.bi18.push_back({date_at(i), 100 + static_cast<int32_t>(i % 4) * 30,
                        sample_languages});
    out.bi19.push_back({core::DateFromCivil(1970 + static_cast<int32_t>(i % 20),
                                            1, 1),
                        class_at(i), class_at(i + 1)});
    out.bi20.push_back({{class_at(i), class_at(i + 1), class_at(i + 2)}});
    out.bi21.push_back({country_at(i), mid + static_cast<core::Date>(i * 7)});
    out.bi22.push_back({country_at(i), country_at(i + 1)});
    out.bi23.push_back({country_at(i)});
    out.bi24.push_back({class_at(i)});
    out.bi25.push_back({pairs[i % pairs.size()].first,
                        pairs[i % pairs.size()].second, sim_start, sim_end});
  }
  (void)rng;
  return out;
}

namespace {

util::Status WriteParamFile(const std::string& dir, const std::string& name,
                            const std::vector<std::string>& lines) {
  std::FILE* f = std::fopen((dir + "/" + name).c_str(), "w");
  if (f == nullptr) return util::Status::IoError("cannot open " + name);
  for (const std::string& line : lines) {
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
  }
  if (std::fclose(f) != 0) return util::Status::IoError("close " + name);
  return util::Status::Ok();
}

std::string J(const std::string& key, const std::string& value, bool str) {
  if (str) return "\"" + key + "\": \"" + value + "\"";
  return "\"" + key + "\": " + value;
}

}  // namespace

util::Status WriteSubstitutionParameters(const WorkloadParameters& params,
                                         const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return util::Status::IoError("cannot create " + dir);

  std::vector<std::string> lines;
  auto flush = [&](const std::string& name) {
    util::Status s = WriteParamFile(dir, name, lines);
    lines.clear();
    return s;
  };
  auto id = [](core::Id v) { return std::to_string(v); };
  auto i32 = [](int64_t v) { return std::to_string(v); };
  auto date = [](core::Date d) { return core::FormatDate(d); };
  auto obj = [](std::initializer_list<std::string> pairs) {
    std::string out = "{";
    bool first = true;
    for (const std::string& p : pairs) {
      if (!first) out += ", ";
      out += p;
      first = false;
    }
    out += "}";
    return out;
  };
  auto strs = [](const std::vector<std::string>& values) {
    std::string out = "[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + values[i] + "\"";
    }
    return out + "]";
  };

  // ---- Interactive complex reads (IC 1–14) --------------------------------
  for (const auto& p : params.ic1) {
    lines.push_back(obj({J("personId", id(p.person_id), false),
                         J("firstName", p.first_name, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_1_param.txt"));
  for (const auto& p : params.ic2) {
    lines.push_back(obj({J("personId", id(p.person_id), false),
                         J("maxDate", date(p.max_date), true)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_2_param.txt"));
  for (const auto& p : params.ic3) {
    lines.push_back(obj({J("personId", id(p.person_id), false),
                         J("countryXName", p.country_x, true),
                         J("countryYName", p.country_y, true),
                         J("startDate", date(p.start_date), true),
                         J("durationDays", i32(p.duration_days), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_3_param.txt"));
  for (const auto& p : params.ic4) {
    lines.push_back(obj({J("personId", id(p.person_id), false),
                         J("startDate", date(p.start_date), true),
                         J("durationDays", i32(p.duration_days), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_4_param.txt"));
  for (const auto& p : params.ic5) {
    lines.push_back(obj({J("personId", id(p.person_id), false),
                         J("minDate", date(p.min_date), true)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_5_param.txt"));
  for (const auto& p : params.ic6) {
    lines.push_back(obj({J("personId", id(p.person_id), false),
                         J("tagName", p.tag_name, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_6_param.txt"));
  for (const auto& p : params.ic7) {
    lines.push_back(obj({J("personId", id(p.person_id), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_7_param.txt"));
  for (const auto& p : params.ic8) {
    lines.push_back(obj({J("personId", id(p.person_id), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_8_param.txt"));
  for (const auto& p : params.ic9) {
    lines.push_back(obj({J("personId", id(p.person_id), false),
                         J("maxDate", date(p.max_date), true)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_9_param.txt"));
  for (const auto& p : params.ic10) {
    lines.push_back(obj({J("personId", id(p.person_id), false),
                         J("month", i32(p.month), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_10_param.txt"));
  for (const auto& p : params.ic11) {
    lines.push_back(obj({J("personId", id(p.person_id), false),
                         J("countryName", p.country_name, true),
                         J("workFromYear", i32(p.work_from_year), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_11_param.txt"));
  for (const auto& p : params.ic12) {
    lines.push_back(obj({J("personId", id(p.person_id), false),
                         J("tagClassName", p.tag_class_name, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_12_param.txt"));
  for (const auto& p : params.ic13) {
    lines.push_back(obj({J("person1Id", id(p.person1_id), false),
                         J("person2Id", id(p.person2_id), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_13_param.txt"));
  for (const auto& p : params.ic14) {
    lines.push_back(obj({J("person1Id", id(p.person1_id), false),
                         J("person2Id", id(p.person2_id), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("interactive_14_param.txt"));

  // ---- BI reads (BI 1–25) ---------------------------------------------------
  for (const auto& p : params.bi1) {
    lines.push_back(obj({J("date", date(p.date), true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_1_param.txt"));
  for (const auto& p : params.bi2) {
    lines.push_back(obj({J("startDate", date(p.start_date), true),
                         J("endDate", date(p.end_date), true),
                         J("country1", p.country1, true),
                         J("country2", p.country2, true),
                         J("threshold", i32(p.threshold), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_2_param.txt"));
  for (const auto& p : params.bi3) {
    lines.push_back(obj({J("year", i32(p.year), false),
                         J("month", i32(p.month), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_3_param.txt"));
  for (const auto& p : params.bi4) {
    lines.push_back(obj({J("tagClass", p.tag_class, true),
                         J("country", p.country, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_4_param.txt"));
  for (const auto& p : params.bi5) {
    lines.push_back(obj({J("country", p.country, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_5_param.txt"));
  for (const auto& p : params.bi6) {
    lines.push_back(obj({J("tag", p.tag, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_6_param.txt"));
  for (const auto& p : params.bi7) {
    lines.push_back(obj({J("tag", p.tag, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_7_param.txt"));
  for (const auto& p : params.bi8) {
    lines.push_back(obj({J("tag", p.tag, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_8_param.txt"));
  for (const auto& p : params.bi9) {
    lines.push_back(obj({J("tagClass1", p.tag_class1, true),
                         J("tagClass2", p.tag_class2, true),
                         J("threshold", i32(p.threshold), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_9_param.txt"));
  for (const auto& p : params.bi10) {
    lines.push_back(obj({J("tag", p.tag, true),
                         J("date", date(p.date), true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_10_param.txt"));
  for (const auto& p : params.bi11) {
    lines.push_back(obj({J("country", p.country, true),
                         J("blacklist", strs(p.blacklist), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_11_param.txt"));
  for (const auto& p : params.bi12) {
    lines.push_back(obj({J("date", date(p.date), true),
                         J("likeThreshold", i32(p.like_threshold), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_12_param.txt"));
  for (const auto& p : params.bi13) {
    lines.push_back(obj({J("country", p.country, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_13_param.txt"));
  for (const auto& p : params.bi14) {
    lines.push_back(obj({J("begin", date(p.begin), true),
                         J("end", date(p.end), true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_14_param.txt"));
  for (const auto& p : params.bi15) {
    lines.push_back(obj({J("country", p.country, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_15_param.txt"));
  for (const auto& p : params.bi16) {
    lines.push_back(obj(
        {J("personId", id(p.person_id), false),
         J("country", p.country, true), J("tagClass", p.tag_class, true),
         J("minPathDistance", i32(p.min_path_distance), false),
         J("maxPathDistance", i32(p.max_path_distance), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_16_param.txt"));
  for (const auto& p : params.bi17) {
    lines.push_back(obj({J("country", p.country, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_17_param.txt"));
  for (const auto& p : params.bi18) {
    lines.push_back(obj(
        {J("date", date(p.date), true),
         J("lengthThreshold", i32(p.length_threshold), false),
         J("languages", strs(p.languages), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_18_param.txt"));
  for (const auto& p : params.bi19) {
    lines.push_back(obj({J("date", date(p.date), true),
                         J("tagClass1", p.tag_class1, true),
                         J("tagClass2", p.tag_class2, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_19_param.txt"));
  for (const auto& p : params.bi20) {
    lines.push_back(obj({J("tagClasses", strs(p.tag_classes), false)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_20_param.txt"));
  for (const auto& p : params.bi21) {
    lines.push_back(obj({J("country", p.country, true),
                         J("endDate", date(p.end_date), true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_21_param.txt"));
  for (const auto& p : params.bi22) {
    lines.push_back(obj({J("country1", p.country1, true),
                         J("country2", p.country2, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_22_param.txt"));
  for (const auto& p : params.bi23) {
    lines.push_back(obj({J("country", p.country, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_23_param.txt"));
  for (const auto& p : params.bi24) {
    lines.push_back(obj({J("tagClass", p.tag_class, true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_24_param.txt"));
  for (const auto& p : params.bi25) {
    lines.push_back(obj({J("person1Id", id(p.person1_id), false),
                         J("person2Id", id(p.person2_id), false),
                         J("startDate", date(p.start_date), true),
                         J("endDate", date(p.end_date), true)}));
  }
  SNB_RETURN_IF_ERROR(flush("bi_25_param.txt"));

  return util::Status::Ok();
}

}  // namespace snb::params

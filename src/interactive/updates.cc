#include "interactive/updates.h"

#include "util/check.h"

namespace snb::interactive {

using datagen::UpdateEvent;
using datagen::UpdateKind;

void ApplyUpdate(storage::Graph& graph, const UpdateEvent& event) {
  switch (event.kind) {
    case UpdateKind::kAddPerson:
      graph.AddPerson(std::get<core::Person>(event.payload));
      return;
    case UpdateKind::kAddLikePost: {
      const core::Like& like = std::get<core::Like>(event.payload);
      SNB_CHECK(like.is_post);
      graph.AddLikePost(like.person, like.message, like.creation_date);
      return;
    }
    case UpdateKind::kAddLikeComment: {
      const core::Like& like = std::get<core::Like>(event.payload);
      SNB_CHECK(!like.is_post);
      graph.AddLikeComment(like.person, like.message, like.creation_date);
      return;
    }
    case UpdateKind::kAddForum:
      graph.AddForum(std::get<core::Forum>(event.payload));
      return;
    case UpdateKind::kAddMembership: {
      const core::ForumMembership& m =
          std::get<core::ForumMembership>(event.payload);
      graph.AddMembership(m.person, m.forum, m.join_date);
      return;
    }
    case UpdateKind::kAddPost:
      graph.AddPost(std::get<core::Post>(event.payload));
      return;
    case UpdateKind::kAddComment:
      graph.AddComment(std::get<core::Comment>(event.payload));
      return;
    case UpdateKind::kAddKnows: {
      const core::Knows& k = std::get<core::Knows>(event.payload);
      graph.AddKnows(k.person1, k.person2, k.creation_date);
      return;
    }
  }
  SNB_UNREACHABLE();
}

}  // namespace snb::interactive

#include "interactive/updates.h"

#include "util/check.h"

namespace snb::interactive {

using datagen::UpdateEvent;
using datagen::UpdateKind;

util::Status ApplyUpdate(storage::Graph& graph, const UpdateEvent& event) {
  switch (event.kind) {
    case UpdateKind::kAddPerson:
      graph.AddPerson(std::get<core::Person>(event.payload));
      return util::Status::Ok();
    case UpdateKind::kAddLikePost: {
      const core::Like& like = std::get<core::Like>(event.payload);
      SNB_CHECK(like.is_post);
      graph.AddLikePost(like.person, like.message, like.creation_date);
      return util::Status::Ok();
    }
    case UpdateKind::kAddLikeComment: {
      const core::Like& like = std::get<core::Like>(event.payload);
      SNB_CHECK(!like.is_post);
      graph.AddLikeComment(like.person, like.message, like.creation_date);
      return util::Status::Ok();
    }
    case UpdateKind::kAddForum:
      graph.AddForum(std::get<core::Forum>(event.payload));
      return util::Status::Ok();
    case UpdateKind::kAddMembership: {
      const core::ForumMembership& m =
          std::get<core::ForumMembership>(event.payload);
      graph.AddMembership(m.person, m.forum, m.join_date);
      return util::Status::Ok();
    }
    case UpdateKind::kAddPost:
      graph.AddPost(std::get<core::Post>(event.payload));
      return util::Status::Ok();
    case UpdateKind::kAddComment:
      graph.AddComment(std::get<core::Comment>(event.payload));
      return util::Status::Ok();
    case UpdateKind::kAddKnows: {
      const core::Knows& k = std::get<core::Knows>(event.payload);
      graph.AddKnows(k.person1, k.person2, k.creation_date);
      return util::Status::Ok();
    }
    case UpdateKind::kDelPerson:
      return graph.DeletePerson(std::get<datagen::Delete>(event.payload).a);
    case UpdateKind::kDelLikePost: {
      const datagen::Delete& d = std::get<datagen::Delete>(event.payload);
      return graph.DeleteLikePost(d.a, d.b);
    }
    case UpdateKind::kDelLikeComment: {
      const datagen::Delete& d = std::get<datagen::Delete>(event.payload);
      return graph.DeleteLikeComment(d.a, d.b);
    }
    case UpdateKind::kDelForum:
      return graph.DeleteForum(std::get<datagen::Delete>(event.payload).a);
    case UpdateKind::kDelMembership: {
      const datagen::Delete& d = std::get<datagen::Delete>(event.payload);
      return graph.DeleteMembership(d.a, d.b);
    }
    case UpdateKind::kDelPost:
      return graph.DeletePost(std::get<datagen::Delete>(event.payload).a);
    case UpdateKind::kDelComment:
      return graph.DeleteComment(std::get<datagen::Delete>(event.payload).a);
    case UpdateKind::kDelKnows: {
      const datagen::Delete& d = std::get<datagen::Delete>(event.payload);
      return graph.DeleteKnows(d.a, d.b);
    }
  }
  SNB_UNREACHABLE();
}

}  // namespace snb::interactive

// Interactive update operations IU 1–8 and deep deletes DEL 1–8: application
// of Datagen-produced update events to a live graph store.

#ifndef SNB_INTERACTIVE_UPDATES_H_
#define SNB_INTERACTIVE_UPDATES_H_

#include "datagen/datagen.h"
#include "storage/graph.h"
#include "util/status.h"

namespace snb::interactive {

/// Applies one update event to the graph. For inserts (IU 1–8) referenced
/// entities must already exist — the driver enforces dependency ordering via
/// the events' dependency timestamps — and the return is always Ok. For
/// deletes (DEL 1–8) missing targets are Ok no-ops (idempotent replay); a
/// non-Ok return means a cascade was torn mid-flight (injected fault) and
/// the graph must be discarded, not retried in place.
util::Status ApplyUpdate(storage::Graph& graph,
                         const datagen::UpdateEvent& event);

}  // namespace snb::interactive

#endif  // SNB_INTERACTIVE_UPDATES_H_

// Interactive update operations IU 1–8 (spec §4.3): application of
// Datagen-produced update events to a live graph store.

#ifndef SNB_INTERACTIVE_UPDATES_H_
#define SNB_INTERACTIVE_UPDATES_H_

#include "datagen/datagen.h"
#include "storage/graph.h"

namespace snb::interactive {

/// Applies one update event (IU 1–8) to the graph. Referenced entities must
/// already exist — the driver enforces dependency ordering via the events'
/// dependency timestamps.
void ApplyUpdate(storage::Graph& graph, const datagen::UpdateEvent& event);

}  // namespace snb::interactive

#endif  // SNB_INTERACTIVE_UPDATES_H_

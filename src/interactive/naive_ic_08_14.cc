// Naive engine, IC 8–14.

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "bi/naive_common.h"
#include "interactive/naive.h"

namespace snb::interactive::naive {

namespace internal = snb::bi::naive::internal;
using internal::kNoIdx;

namespace {

std::vector<int32_t> EdgeListBfs(const Graph& graph, uint32_t src,
                                 int32_t max_depth) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    edges.emplace_back(a, b);
  });
  std::vector<int32_t> dist(graph.NumPersons(), -1);
  dist[src] = 0;
  for (int32_t depth = 1; max_depth < 0 || depth <= max_depth; ++depth) {
    bool changed = false;
    for (const auto& [a, b] : edges) {
      if (dist[a] == depth - 1 && dist[b] < 0) {
        dist[b] = depth;
        changed = true;
      }
      if (dist[b] == depth - 1 && dist[a] < 0) {
        dist[a] = depth;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

}  // namespace

std::vector<Ic8Row> RunIc8(const Graph& graph, const Ic8Params& params) {
  std::vector<Ic8Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    uint32_t parent = internal::ReplyOfSlow(graph, c);
    if (graph.MessageCreator(parent) != start) continue;
    const core::Comment& comment = graph.CommentAt(c);
    const core::Person& author =
        graph.PersonAt(graph.PersonIdx(comment.creator));
    rows.push_back({author.id, author.first_name, author.last_name,
                    comment.creation_date, comment.id, comment.content});
  }
  std::sort(rows.begin(), rows.end(), [](const Ic8Row& a, const Ic8Row& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.comment_id < b.comment_id;
  });
  if (rows.size() > 20) rows.resize(20);
  return rows;
}

std::vector<Ic9Row> RunIc9(const Graph& graph, const Ic9Params& params) {
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return {};
  std::vector<int32_t> dist = EdgeListBfs(graph, start, 2);
  const core::DateTime before = core::DateTimeFromDate(params.max_date);
  std::vector<Ic9Row> rows;
  graph.ForEachMessage([&](uint32_t msg) {
    uint32_t creator = graph.MessageCreator(msg);
    if (creator == start || dist[creator] < 1) return;
    core::DateTime created = graph.MessageCreationDate(msg);
    if (created >= before) return;
    const core::Person& rec = graph.PersonAt(creator);
    rows.push_back({rec.id, rec.first_name, rec.last_name,
                    graph.MessageId(msg), graph.MessageContent(msg),
                    created});
  });
  std::sort(rows.begin(), rows.end(), [](const Ic9Row& a, const Ic9Row& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.message_id < b.message_id;
  });
  if (rows.size() > 20) rows.resize(20);
  return rows;
}

std::vector<Ic10Row> RunIc10(const Graph& graph, const Ic10Params& params) {
  std::vector<Ic10Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;
  std::vector<int32_t> dist = EdgeListBfs(graph, start, 2);

  int32_t next_month = params.month == 12 ? 1 : params.month + 1;
  std::set<core::Id> interests(graph.PersonAt(start).interests.begin(),
                               graph.PersonAt(start).interests.end());

  // Post statistics per candidate from one post scan.
  std::unordered_map<uint32_t, std::pair<int64_t, int64_t>> common_uncommon;
  for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
    const core::Post& p = graph.PostAt(post);
    uint32_t creator = graph.PersonIdx(p.creator);
    if (dist[creator] != 2) continue;
    bool common = false;
    for (core::Id t : p.tags) {
      if (interests.contains(t)) common = true;
    }
    if (common) {
      ++common_uncommon[creator].first;
    } else {
      ++common_uncommon[creator].second;
    }
  }

  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (dist[p] != 2) continue;
    const core::Person& rec = graph.PersonAt(p);
    core::CivilDate b = core::CivilFromDate(rec.birthday);
    bool in_window = (b.month == params.month && b.day >= 21) ||
                     (b.month == next_month && b.day < 22);
    if (!in_window) continue;
    auto it = common_uncommon.find(p);
    int64_t score =
        it == common_uncommon.end() ? 0 : it->second.first - it->second.second;
    rows.push_back(
        {rec.id, rec.first_name, rec.last_name, score, rec.gender,
         graph.PlaceAt(graph.PlaceIdx(rec.city)).name});
  }
  std::sort(rows.begin(), rows.end(), [](const Ic10Row& a, const Ic10Row& b) {
    if (a.common_interest_score != b.common_interest_score) {
      return a.common_interest_score > b.common_interest_score;
    }
    return a.person_id < b.person_id;
  });
  if (rows.size() > 10) rows.resize(10);
  return rows;
}

std::vector<Ic11Row> RunIc11(const Graph& graph, const Ic11Params& params) {
  std::vector<Ic11Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  uint32_t country = graph.PlaceByName(params.country_name);
  if (start == kNoIdx || country == kNoIdx) return rows;
  std::vector<int32_t> dist = EdgeListBfs(graph, start, 2);
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (p == start || dist[p] < 1) continue;
    const core::Person& rec = graph.PersonAt(p);
    for (const core::WorkAt& w : rec.work_at) {
      if (w.work_from >= params.work_from_year) continue;
      const core::Organisation& org =
          graph.OrganisationAt(graph.OrganisationIdx(w.company));
      if (graph.PlaceIdx(org.place) != country) continue;
      rows.push_back(
          {rec.id, rec.first_name, rec.last_name, org.name, w.work_from});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Ic11Row& a, const Ic11Row& b) {
    if (a.work_from != b.work_from) return a.work_from < b.work_from;
    if (a.person_id != b.person_id) return a.person_id < b.person_id;
    return a.company_name > b.company_name;
  });
  if (rows.size() > 10) rows.resize(10);
  return rows;
}

std::vector<Ic12Row> RunIc12(const Graph& graph, const Ic12Params& params) {
  std::vector<Ic12Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;
  bool class_exists = false;
  for (uint32_t tc = 0; tc < graph.NumTagClasses(); ++tc) {
    if (graph.TagClassAt(tc).name == params.tag_class_name) {
      class_exists = true;
    }
  }
  if (!class_exists) return rows;
  std::vector<bool> class_tags =
      internal::TagsOfClassSlow(graph, params.tag_class_name, true);

  std::vector<bool> friends(graph.NumPersons(), false);
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    if (a == start) friends[b] = true;
    if (b == start) friends[a] = true;
  });

  struct Agg {
    int64_t replies = 0;
    std::set<std::string> tags;
  };
  std::unordered_map<uint32_t, Agg> by_friend;
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    const core::Comment& comment = graph.CommentAt(c);
    if (comment.reply_of_post == core::kNoId) continue;
    uint32_t author = graph.PersonIdx(comment.creator);
    if (!friends[author]) continue;
    const core::Post& post =
        graph.PostAt(graph.PostIdx(comment.reply_of_post));
    bool qualifies = false;
    std::vector<std::string> matched;
    for (core::Id t : post.tags) {
      uint32_t tag = graph.TagIdx(t);
      if (class_tags[tag]) {
        qualifies = true;
        matched.push_back(graph.TagAt(tag).name);
      }
    }
    if (!qualifies) continue;
    Agg& agg = by_friend[author];
    ++agg.replies;
    for (std::string& name : matched) agg.tags.insert(std::move(name));
  }
  for (const auto& [fr, agg] : by_friend) {
    const core::Person& rec = graph.PersonAt(fr);
    rows.push_back({rec.id, rec.first_name, rec.last_name,
                    {agg.tags.begin(), agg.tags.end()}, agg.replies});
  }
  std::sort(rows.begin(), rows.end(), [](const Ic12Row& a, const Ic12Row& b) {
    if (a.reply_count != b.reply_count) return a.reply_count > b.reply_count;
    return a.person_id < b.person_id;
  });
  if (rows.size() > 20) rows.resize(20);
  return rows;
}

Ic13Row RunIc13(const Graph& graph, const Ic13Params& params) {
  uint32_t p1 = graph.PersonIdx(params.person1_id);
  uint32_t p2 = graph.PersonIdx(params.person2_id);
  if (p1 == kNoIdx || p2 == kNoIdx) return {-1};
  if (p1 == p2) return {0};
  std::vector<int32_t> dist = EdgeListBfs(graph, p1, -1);
  return {dist[p2]};
}

std::vector<Ic14Row> RunIc14(const Graph& graph, const Ic14Params& params) {
  std::vector<Ic14Row> rows;
  uint32_t p1 = graph.PersonIdx(params.person1_id);
  uint32_t p2 = graph.PersonIdx(params.person2_id);
  if (p1 == kNoIdx || p2 == kNoIdx) return rows;

  std::vector<std::pair<uint32_t, uint32_t>> edges;
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    edges.emplace_back(a, b);
  });
  std::vector<int32_t> dist(graph.NumPersons(), -1);
  dist[p1] = 0;
  for (int32_t depth = 1;; ++depth) {
    bool changed = false;
    for (const auto& [a, b] : edges) {
      if (dist[a] == depth - 1 && dist[b] < 0) {
        dist[b] = depth;
        changed = true;
      }
      if (dist[b] == depth - 1 && dist[a] < 0) {
        dist[a] = depth;
        changed = true;
      }
    }
    if (!changed || dist[p2] >= 0) break;
  }
  if (p1 != p2 && dist[p2] < 0) return rows;

  std::vector<std::vector<uint32_t>> paths;
  if (p1 == p2) {
    paths.push_back({p1});
  } else {
    std::vector<uint32_t> current{p2};
    std::function<void(uint32_t)> dfs = [&](uint32_t node) {
      if (node == p1) {
        paths.emplace_back(current.rbegin(), current.rend());
        return;
      }
      std::vector<uint32_t> preds;
      for (const auto& [a, b] : edges) {
        if (a == node && dist[b] == dist[node] - 1) preds.push_back(b);
        if (b == node && dist[a] == dist[node] - 1) preds.push_back(a);
      }
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
      for (uint32_t pred : preds) {
        current.push_back(pred);
        dfs(pred);
        current.pop_back();
      }
    };
    dfs(p2);
  }

  auto pair_weight = [&](uint32_t a, uint32_t b) {
    double w = 0;
    for (uint32_t c = 0; c < graph.NumComments(); ++c) {
      uint32_t replier = graph.PersonIdx(graph.CommentAt(c).creator);
      if (replier != a && replier != b) continue;
      uint32_t parent = internal::ReplyOfSlow(graph, c);
      uint32_t author = graph.MessageCreator(parent);
      if ((replier == a && author == b) || (replier == b && author == a)) {
        w += Graph::IsPost(parent) ? 1.0 : 0.5;
      }
    }
    return w;
  };
  for (const std::vector<uint32_t>& path : paths) {
    Ic14Row row;
    for (uint32_t p : path) {
      row.person_ids_in_path.push_back(graph.PersonAt(p).id);
    }
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      row.path_weight += pair_weight(path[i], path[i + 1]);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Ic14Row& a, const Ic14Row& b) {
    if (a.path_weight != b.path_weight) return a.path_weight > b.path_weight;
    return a.person_ids_in_path < b.person_ids_in_path;
  });
  return rows;
}

}  // namespace snb::interactive::naive

// Internal helpers for the Interactive complex reads.

#ifndef SNB_INTERACTIVE_IC_COMMON_H_
#define SNB_INTERACTIVE_IC_COMMON_H_

#include <string>
#include <vector>

#include "engine/bfs.h"
#include "storage/graph.h"

namespace snb::interactive::internal {

using storage::Graph;
using storage::kNoIdx;

/// BFS distances over knows, bounded by `max_depth`.
inline std::vector<int32_t> KnowsDistances(const Graph& graph, uint32_t start,
                                           int32_t max_depth) {
  return engine::BfsDistances(graph.Knows(), start, max_depth);
}

/// Persons at knows-distance in [1, 2] from start (friends + foafs).
inline std::vector<uint32_t> FriendsAndFoafs(const Graph& graph,
                                             uint32_t start) {
  std::vector<int32_t> dist = KnowsDistances(graph, start, 2);
  std::vector<uint32_t> out;
  for (uint32_t p = 0; p < dist.size(); ++p) {
    if (p != start && dist[p] >= 1) out.push_back(p);
  }
  return out;
}

inline std::string CityName(const Graph& graph, uint32_t person) {
  return graph.PlaceAt(graph.PersonCity(person)).name;
}

}  // namespace snb::interactive::internal

#endif  // SNB_INTERACTIVE_IC_COMMON_H_

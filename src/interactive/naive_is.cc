// Naive engine, short reads IS 1–7 (declared in interactive/naive.h):
// record chasing and full scans only, identical outputs to the optimized
// short reads.

#include <algorithm>

#include "bi/naive_common.h"
#include "interactive/naive.h"

namespace snb::interactive::naive {

namespace internal = snb::bi::naive::internal;
using internal::kNoIdx;

std::vector<Is1Row> RunIs1(const Graph& graph, core::Id person_id) {
  uint32_t p = graph.PersonIdx(person_id);
  if (p == kNoIdx) return {};
  const core::Person& rec = graph.PersonAt(p);
  return {{rec.first_name, rec.last_name, rec.birthday, rec.location_ip,
           rec.browser_used, graph.PlaceAt(graph.PlaceIdx(rec.city)).id,
           rec.gender, rec.creation_date}};
}

std::vector<Is2Row> RunIs2(const Graph& graph, core::Id person_id) {
  uint32_t p = graph.PersonIdx(person_id);
  if (p == kNoIdx) return {};
  std::vector<Is2Row> rows;
  graph.ForEachMessage([&](uint32_t msg) {
    if (graph.MessageCreator(msg) != p) return;
    Is2Row row;
    row.message_id = graph.MessageId(msg);
    row.creation_date = graph.MessageCreationDate(msg);
    row.content = graph.MessageContent(msg);
    uint32_t root = Graph::IsPost(msg)
                        ? Graph::AsPost(msg)
                        : internal::RootPostSlow(graph, Graph::AsComment(msg));
    row.original_post_id = graph.PostAt(root).id;
    const core::Person& author =
        graph.PersonAt(graph.PersonIdx(graph.PostAt(root).creator));
    row.original_post_author_id = author.id;
    row.original_post_author_first_name = author.first_name;
    row.original_post_author_last_name = author.last_name;
    rows.push_back(std::move(row));
  });
  std::sort(rows.begin(), rows.end(), [](const Is2Row& a, const Is2Row& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.message_id > b.message_id;
  });
  if (rows.size() > 10) rows.resize(10);
  return rows;
}

std::vector<Is3Row> RunIs3(const Graph& graph, core::Id person_id) {
  uint32_t p = graph.PersonIdx(person_id);
  if (p == kNoIdx) return {};
  std::vector<Is3Row> rows;
  // Full scan of the knows relation (dated).
  for (uint32_t a = 0; a < graph.NumPersons(); ++a) {
    graph.Knows().ForEachDated(a, [&](uint32_t b, core::DateTime when) {
      if (a != p || b == p) return;
      const core::Person& rec = graph.PersonAt(b);
      rows.push_back({rec.id, rec.first_name, rec.last_name, when});
    });
  }
  std::sort(rows.begin(), rows.end(), [](const Is3Row& a, const Is3Row& b) {
    if (a.friendship_creation_date != b.friendship_creation_date) {
      return a.friendship_creation_date > b.friendship_creation_date;
    }
    return a.person_id < b.person_id;
  });
  return rows;
}

namespace {

uint32_t ResolveMessage(const Graph& graph, core::Id message_id,
                        bool is_post) {
  if (is_post) {
    uint32_t post = graph.PostIdx(message_id);
    return post == kNoIdx ? kNoIdx : Graph::MessageOfPost(post);
  }
  uint32_t comment = graph.CommentIdx(message_id);
  return comment == kNoIdx ? kNoIdx : Graph::MessageOfComment(comment);
}

}  // namespace

std::vector<Is4Row> RunIs4(const Graph& graph, core::Id message_id,
                           bool is_post) {
  uint32_t msg = ResolveMessage(graph, message_id, is_post);
  if (msg == kNoIdx) return {};
  return {{graph.MessageCreationDate(msg), graph.MessageContent(msg)}};
}

std::vector<Is5Row> RunIs5(const Graph& graph, core::Id message_id,
                           bool is_post) {
  uint32_t msg = ResolveMessage(graph, message_id, is_post);
  if (msg == kNoIdx) return {};
  const core::Person& rec = graph.PersonAt(graph.MessageCreator(msg));
  return {{rec.id, rec.first_name, rec.last_name}};
}

std::vector<Is6Row> RunIs6(const Graph& graph, core::Id message_id,
                           bool is_post) {
  uint32_t msg = ResolveMessage(graph, message_id, is_post);
  if (msg == kNoIdx) return {};
  uint32_t root = Graph::IsPost(msg)
                      ? Graph::AsPost(msg)
                      : internal::RootPostSlow(graph, Graph::AsComment(msg));
  uint32_t forum = graph.ForumIdx(graph.PostAt(root).forum);
  const core::Forum& f = graph.ForumAt(forum);
  const core::Person& mod = graph.PersonAt(graph.PersonIdx(f.moderator));
  return {{f.id, f.title, mod.id, mod.first_name, mod.last_name}};
}

std::vector<Is7Row> RunIs7(const Graph& graph, core::Id message_id,
                           bool is_post) {
  uint32_t msg = ResolveMessage(graph, message_id, is_post);
  if (msg == kNoIdx) return {};
  uint32_t original_author = graph.MessageCreator(msg);

  std::vector<Is7Row> rows;
  for (uint32_t c = 0; c < graph.NumComments(); ++c) {
    if (internal::ReplyOfSlow(graph, c) != msg) continue;
    const core::Comment& comment = graph.CommentAt(c);
    uint32_t author = graph.PersonIdx(comment.creator);
    bool knows = false;
    internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
      if ((a == author && b == original_author) ||
          (b == author && a == original_author)) {
        knows = true;
      }
    });
    const core::Person& rec = graph.PersonAt(author);
    rows.push_back({comment.id, comment.content, comment.creation_date,
                    rec.id, rec.first_name, rec.last_name,
                    author != original_author && knows});
  }
  std::sort(rows.begin(), rows.end(), [](const Is7Row& a, const Is7Row& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.author_id < b.author_id;
  });
  return rows;
}

}  // namespace snb::interactive::naive

// Naive baseline engine for the Interactive complex reads IC 1–14: the
// same tuple-at-a-time, no-reverse-index ground rules as bi/naive.h
// (record chasing instead of precomputed columns, edge-list rescans instead
// of CSR BFS, full sorts instead of top-k pushdown). Outputs are
// bit-identical to the optimized engine; tests cross-validate both.

#ifndef SNB_INTERACTIVE_NAIVE_H_
#define SNB_INTERACTIVE_NAIVE_H_

#include "interactive/interactive.h"

namespace snb::interactive::naive {

std::vector<Ic1Row> RunIc1(const Graph& graph, const Ic1Params& params);
std::vector<Ic2Row> RunIc2(const Graph& graph, const Ic2Params& params);
std::vector<Ic3Row> RunIc3(const Graph& graph, const Ic3Params& params);
std::vector<Ic4Row> RunIc4(const Graph& graph, const Ic4Params& params);
std::vector<Ic5Row> RunIc5(const Graph& graph, const Ic5Params& params);
std::vector<Ic6Row> RunIc6(const Graph& graph, const Ic6Params& params);
std::vector<Ic7Row> RunIc7(const Graph& graph, const Ic7Params& params);
std::vector<Ic8Row> RunIc8(const Graph& graph, const Ic8Params& params);
std::vector<Ic9Row> RunIc9(const Graph& graph, const Ic9Params& params);
std::vector<Ic10Row> RunIc10(const Graph& graph, const Ic10Params& params);
std::vector<Ic11Row> RunIc11(const Graph& graph, const Ic11Params& params);
std::vector<Ic12Row> RunIc12(const Graph& graph, const Ic12Params& params);
Ic13Row RunIc13(const Graph& graph, const Ic13Params& params);
std::vector<Ic14Row> RunIc14(const Graph& graph, const Ic14Params& params);

// Short reads IS 1–7 (same signatures as the optimized engine).
std::vector<Is1Row> RunIs1(const Graph& graph, core::Id person_id);
std::vector<Is2Row> RunIs2(const Graph& graph, core::Id person_id);
std::vector<Is3Row> RunIs3(const Graph& graph, core::Id person_id);
std::vector<Is4Row> RunIs4(const Graph& graph, core::Id message_id,
                           bool is_post);
std::vector<Is5Row> RunIs5(const Graph& graph, core::Id message_id,
                           bool is_post);
std::vector<Is6Row> RunIs6(const Graph& graph, core::Id message_id,
                           bool is_post);
std::vector<Is7Row> RunIs7(const Graph& graph, core::Id message_id,
                           bool is_post);

}  // namespace snb::interactive::naive

#endif  // SNB_INTERACTIVE_NAIVE_H_

// Interactive short reads IS 1–7 (spec §4.2).

#include <algorithm>
#include <unordered_set>

#include "engine/top_k.h"
#include "interactive/ic_common.h"
#include "interactive/interactive.h"

namespace snb::interactive {

using internal::kNoIdx;

std::vector<Is1Row> RunIs1(const Graph& graph, core::Id person_id) {
  uint32_t p = graph.PersonIdx(person_id);
  if (p == kNoIdx) return {};
  const core::Person& rec = graph.PersonAt(p);
  return {{rec.first_name, rec.last_name, rec.birthday, rec.location_ip,
           rec.browser_used, graph.PlaceAt(graph.PersonCity(p)).id,
           rec.gender, rec.creation_date}};
}

std::vector<Is2Row> RunIs2(const Graph& graph, core::Id person_id) {
  uint32_t p = graph.PersonIdx(person_id);
  if (p == kNoIdx) return {};

  auto better = [](const Is2Row& a, const Is2Row& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.message_id > b.message_id;  // id descending per the card
  };
  engine::TopK<Is2Row, decltype(better)> top(10, better);
  auto handle = [&](uint32_t msg) {
    Is2Row row;
    row.message_id = graph.MessageId(msg);
    row.creation_date = graph.MessageCreationDate(msg);
    if (!top.WouldAccept(row)) return;
    row.content = graph.MessageContent(msg);
    uint32_t root = Graph::IsPost(msg)
                        ? Graph::AsPost(msg)
                        : graph.CommentRootPost(Graph::AsComment(msg));
    row.original_post_id = graph.PostAt(root).id;
    const core::Person& author = graph.PersonAt(graph.PostCreator(root));
    row.original_post_author_id = author.id;
    row.original_post_author_first_name = author.first_name;
    row.original_post_author_last_name = author.last_name;
    top.Add(std::move(row));
  };
  graph.PersonPosts().ForEach(
      p, [&](uint32_t post) { handle(Graph::MessageOfPost(post)); });
  graph.PersonComments().ForEach(p, [&](uint32_t comment) {
    handle(Graph::MessageOfComment(comment));
  });
  return top.Take();
}

std::vector<Is3Row> RunIs3(const Graph& graph, core::Id person_id) {
  uint32_t p = graph.PersonIdx(person_id);
  if (p == kNoIdx) return {};
  std::vector<Is3Row> rows;
  graph.Knows().ForEachDated(p, [&](uint32_t f, core::DateTime when) {
    const core::Person& rec = graph.PersonAt(f);
    rows.push_back({rec.id, rec.first_name, rec.last_name, when});
  });
  std::sort(rows.begin(), rows.end(), [](const Is3Row& a, const Is3Row& b) {
    if (a.friendship_creation_date != b.friendship_creation_date) {
      return a.friendship_creation_date > b.friendship_creation_date;
    }
    return a.person_id < b.person_id;
  });
  return rows;
}

namespace {

/// Resolves an external message id of a known type to a message reference.
uint32_t ResolveMessage(const Graph& graph, core::Id message_id,
                        bool is_post) {
  if (is_post) {
    uint32_t post = graph.PostIdx(message_id);
    return post == kNoIdx ? kNoIdx : Graph::MessageOfPost(post);
  }
  uint32_t comment = graph.CommentIdx(message_id);
  return comment == kNoIdx ? kNoIdx : Graph::MessageOfComment(comment);
}

}  // namespace

std::vector<Is4Row> RunIs4(const Graph& graph, core::Id message_id,
                           bool is_post) {
  uint32_t msg = ResolveMessage(graph, message_id, is_post);
  if (msg == kNoIdx) return {};
  return {{graph.MessageCreationDate(msg), graph.MessageContent(msg)}};
}

std::vector<Is5Row> RunIs5(const Graph& graph, core::Id message_id,
                           bool is_post) {
  uint32_t msg = ResolveMessage(graph, message_id, is_post);
  if (msg == kNoIdx) return {};
  const core::Person& rec = graph.PersonAt(graph.MessageCreator(msg));
  return {{rec.id, rec.first_name, rec.last_name}};
}

std::vector<Is6Row> RunIs6(const Graph& graph, core::Id message_id,
                           bool is_post) {
  uint32_t msg = ResolveMessage(graph, message_id, is_post);
  if (msg == kNoIdx) return {};
  uint32_t root = Graph::IsPost(msg)
                      ? Graph::AsPost(msg)
                      : graph.CommentRootPost(Graph::AsComment(msg));
  uint32_t forum = graph.PostForum(root);
  const core::Forum& f = graph.ForumAt(forum);
  const core::Person& mod = graph.PersonAt(graph.PersonIdx(f.moderator));
  return {{f.id, f.title, mod.id, mod.first_name, mod.last_name}};
}

std::vector<Is7Row> RunIs7(const Graph& graph, core::Id message_id,
                           bool is_post) {
  uint32_t msg = ResolveMessage(graph, message_id, is_post);
  if (msg == kNoIdx) return {};
  uint32_t original_author = graph.MessageCreator(msg);
  std::unordered_set<uint32_t> author_friends;
  graph.Knows().ForEach(original_author,
                        [&](uint32_t f) { author_friends.insert(f); });

  std::vector<Is7Row> rows;
  auto handle_reply = [&](uint32_t comment) {
    const core::Comment& c = graph.CommentAt(comment);
    uint32_t author = graph.CommentCreator(comment);
    const core::Person& rec = graph.PersonAt(author);
    rows.push_back({c.id, c.content, c.creation_date, rec.id, rec.first_name,
                    rec.last_name,
                    author != original_author &&
                        author_friends.contains(author)});
  };
  if (Graph::IsPost(msg)) {
    graph.PostReplies().ForEach(Graph::AsPost(msg), handle_reply);
  } else {
    graph.CommentReplies().ForEach(Graph::AsComment(msg), handle_reply);
  }
  std::sort(rows.begin(), rows.end(), [](const Is7Row& a, const Is7Row& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.author_id < b.author_id;
  });
  return rows;
}

}  // namespace snb::interactive

// Interactive complex reads IC 11–14.

#include <algorithm>
#include <set>
#include <unordered_map>

#include "engine/bfs.h"
#include "engine/top_k.h"
#include "interactive/ic_common.h"
#include "interactive/interactive.h"

namespace snb::interactive {

using internal::kNoIdx;

std::vector<Ic11Row> RunIc11(const Graph& graph, const Ic11Params& params) {
  std::vector<Ic11Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  uint32_t country = graph.PlaceByName(params.country_name);
  if (start == kNoIdx || country == kNoIdx) return rows;

  for (uint32_t p : internal::FriendsAndFoafs(graph, start)) {
    const core::Person& rec = graph.PersonAt(p);
    for (const core::WorkAt& w : rec.work_at) {
      if (w.work_from >= params.work_from_year) continue;
      uint32_t org = graph.OrganisationIdx(w.company);
      if (graph.PlaceIdx(graph.OrganisationAt(org).place) != country) {
        continue;
      }
      rows.push_back({rec.id, rec.first_name, rec.last_name,
                      graph.OrganisationAt(org).name, w.work_from});
    }
  }
  engine::SortAndLimit(
      rows,
      [](const Ic11Row& a, const Ic11Row& b) {
        if (a.work_from != b.work_from) return a.work_from < b.work_from;
        if (a.person_id != b.person_id) return a.person_id < b.person_id;
        return a.company_name > b.company_name;  // descending per the card
      },
      10);
  return rows;
}

std::vector<Ic12Row> RunIc12(const Graph& graph, const Ic12Params& params) {
  std::vector<Ic12Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  uint32_t root_class = graph.TagClassByName(params.tag_class_name);
  if (start == kNoIdx || root_class == kNoIdx) return rows;

  // Tag bitmap of the class and its descendants.
  std::vector<bool> class_tags(graph.NumTags(), false);
  std::vector<uint32_t> classes{root_class};
  for (size_t i = 0; i < classes.size(); ++i) {
    graph.TagClassChildren().ForEach(
        classes[i], [&](uint32_t child) { classes.push_back(child); });
  }
  for (uint32_t tc : classes) {
    graph.TagClassTags().ForEach(tc,
                                 [&](uint32_t t) { class_tags[t] = true; });
  }

  struct Agg {
    int64_t replies = 0;
    std::set<std::string> tags;
  };
  std::unordered_map<uint32_t, Agg> by_friend;
  graph.Knows().ForEach(start, [&](uint32_t fr) {
    graph.PersonComments().ForEach(fr, [&](uint32_t comment) {
      uint32_t parent = graph.CommentReplyOf(comment);
      if (!Graph::IsPost(parent)) return;  // direct replies to posts only
      bool qualifies = false;
      std::vector<std::string> matched;
      graph.PostTags().ForEach(Graph::AsPost(parent), [&](uint32_t tag) {
        if (class_tags[tag]) {
          qualifies = true;
          matched.push_back(graph.TagAt(tag).name);
        }
      });
      if (!qualifies) return;
      Agg& agg = by_friend[fr];
      ++agg.replies;
      for (std::string& name : matched) agg.tags.insert(std::move(name));
    });
  });

  rows.reserve(by_friend.size());
  for (const auto& [fr, agg] : by_friend) {
    const core::Person& rec = graph.PersonAt(fr);
    rows.push_back({rec.id, rec.first_name, rec.last_name,
                    {agg.tags.begin(), agg.tags.end()}, agg.replies});
  }
  engine::SortAndLimit(
      rows,
      [](const Ic12Row& a, const Ic12Row& b) {
        if (a.reply_count != b.reply_count) {
          return a.reply_count > b.reply_count;
        }
        return a.person_id < b.person_id;
      },
      20);
  return rows;
}

Ic13Row RunIc13(const Graph& graph, const Ic13Params& params) {
  uint32_t p1 = graph.PersonIdx(params.person1_id);
  uint32_t p2 = graph.PersonIdx(params.person2_id);
  if (p1 == kNoIdx || p2 == kNoIdx) return {-1};
  return {engine::ShortestPathLength(graph.Knows(), p1, p2)};
}

std::vector<Ic14Row> RunIc14(const Graph& graph, const Ic14Params& params) {
  std::vector<Ic14Row> rows;
  uint32_t p1 = graph.PersonIdx(params.person1_id);
  uint32_t p2 = graph.PersonIdx(params.person2_id);
  if (p1 == kNoIdx || p2 == kNoIdx) return rows;

  std::vector<std::vector<uint32_t>> paths =
      engine::AllShortestPaths(graph.Knows(), p1, p2, /*max_paths=*/10000);
  if (paths.empty()) return rows;

  // Pair weight: direct replies to posts 1.0, to comments 0.5, both
  // directions; memoized per unordered pair.
  std::unordered_map<uint64_t, double> memo;
  auto pair_weight = [&](uint32_t a, uint32_t b) {
    uint64_t key = (static_cast<uint64_t>(std::min(a, b)) << 32) |
                   std::max(a, b);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    double w = 0;
    auto scan = [&](uint32_t replier, uint32_t author) {
      graph.PersonComments().ForEach(replier, [&](uint32_t comment) {
        uint32_t parent = graph.CommentReplyOf(comment);
        if (graph.MessageCreator(parent) != author) return;
        w += Graph::IsPost(parent) ? 1.0 : 0.5;
      });
    };
    scan(a, b);
    scan(b, a);
    memo[key] = w;
    return w;
  };

  rows.reserve(paths.size());
  for (const std::vector<uint32_t>& path : paths) {
    Ic14Row row;
    for (uint32_t p : path) {
      row.person_ids_in_path.push_back(graph.PersonAt(p).id);
    }
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      row.path_weight += pair_weight(path[i], path[i + 1]);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Ic14Row& a, const Ic14Row& b) {
    if (a.path_weight != b.path_weight) return a.path_weight > b.path_weight;
    return a.person_ids_in_path < b.person_ids_in_path;
  });
  return rows;
}

}  // namespace snb::interactive

// Interactive complex reads IC 1–5.

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "engine/top_k.h"
#include "interactive/ic_common.h"
#include "interactive/interactive.h"

namespace snb::interactive {

using internal::kNoIdx;

std::vector<Ic1Row> RunIc1(const Graph& graph, const Ic1Params& params) {
  std::vector<Ic1Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;
  std::vector<int32_t> dist = internal::KnowsDistances(graph, start, 3);

  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (p == start || dist[p] < 1) continue;
    const core::Person& rec = graph.PersonAt(p);
    if (rec.first_name != params.first_name) continue;
    Ic1Row row;
    row.friend_id = rec.id;
    row.last_name = rec.last_name;
    row.distance = dist[p];
    row.birthday = rec.birthday;
    row.creation_date = rec.creation_date;
    row.gender = rec.gender;
    row.browser_used = rec.browser_used;
    row.location_ip = rec.location_ip;
    row.emails = rec.emails;
    row.languages = rec.speaks;
    row.city_name = internal::CityName(graph, p);
    for (const core::StudyAt& s : rec.study_at) {
      uint32_t org = graph.OrganisationIdx(s.university);
      uint32_t city = graph.PlaceIdx(graph.OrganisationAt(org).place);
      row.universities.emplace_back(graph.OrganisationAt(org).name,
                                    s.class_year, graph.PlaceAt(city).name);
    }
    for (const core::WorkAt& w : rec.work_at) {
      uint32_t org = graph.OrganisationIdx(w.company);
      uint32_t country = graph.PlaceIdx(graph.OrganisationAt(org).place);
      row.companies.emplace_back(graph.OrganisationAt(org).name, w.work_from,
                                 graph.PlaceAt(country).name);
    }
    std::sort(row.universities.begin(), row.universities.end());
    std::sort(row.companies.begin(), row.companies.end());
    rows.push_back(std::move(row));
  }
  engine::SortAndLimit(
      rows,
      [](const Ic1Row& a, const Ic1Row& b) {
        if (a.distance != b.distance) return a.distance < b.distance;
        if (a.last_name != b.last_name) return a.last_name < b.last_name;
        return a.friend_id < b.friend_id;
      },
      20);
  return rows;
}

namespace {

/// Shared engine of IC 2 / IC 9: most recent messages of a person cohort.
std::vector<Ic2Row> RecentMessagesOf(const Graph& graph,
                                     const std::vector<uint32_t>& cohort,
                                     core::Date max_date) {
  const core::DateTime before = core::DateTimeFromDate(max_date);
  auto better = [](const Ic2Row& a, const Ic2Row& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.message_id < b.message_id;
  };
  engine::TopK<Ic2Row, decltype(better)> top(20, better);
  for (uint32_t p : cohort) {
    const core::Person& rec = graph.PersonAt(p);
    auto handle = [&](uint32_t msg) {
      core::DateTime created = graph.MessageCreationDate(msg);
      if (created >= before) return;
      Ic2Row row;
      row.creation_date = created;
      row.message_id = graph.MessageId(msg);
      if (!top.WouldAccept(row)) return;
      row.person_id = rec.id;
      row.first_name = rec.first_name;
      row.last_name = rec.last_name;
      row.content = graph.MessageContent(msg);
      top.Add(std::move(row));
    };
    graph.PersonPosts().ForEach(
        p, [&](uint32_t post) { handle(Graph::MessageOfPost(post)); });
    graph.PersonComments().ForEach(p, [&](uint32_t comment) {
      handle(Graph::MessageOfComment(comment));
    });
  }
  return top.Take();
}

}  // namespace

std::vector<Ic2Row> RunIc2(const Graph& graph, const Ic2Params& params) {
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return {};
  std::vector<uint32_t> friends = graph.Knows().Collect(start);
  return RecentMessagesOf(graph, friends, params.max_date);
}

std::vector<Ic3Row> RunIc3(const Graph& graph, const Ic3Params& params) {
  std::vector<Ic3Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  uint32_t country_x = graph.PlaceByName(params.country_x);
  uint32_t country_y = graph.PlaceByName(params.country_y);
  if (start == kNoIdx || country_x == kNoIdx || country_y == kNoIdx) {
    return rows;
  }
  const core::DateTime window_start =
      core::DateTimeFromDate(params.start_date);
  const core::DateTime window_end =
      window_start + params.duration_days * core::kMillisPerDay;

  for (uint32_t p : internal::FriendsAndFoafs(graph, start)) {
    uint32_t home = graph.PersonCountry(p);
    if (home == country_x || home == country_y) continue;  // not foreign
    int64_t x = 0, y = 0;
    auto handle = [&](uint32_t msg) {
      core::DateTime created = graph.MessageCreationDate(msg);
      if (created < window_start || created >= window_end) return;
      uint32_t where = graph.MessageCountry(msg);
      if (where == country_x) ++x;
      if (where == country_y) ++y;
    };
    graph.PersonPosts().ForEach(
        p, [&](uint32_t post) { handle(Graph::MessageOfPost(post)); });
    graph.PersonComments().ForEach(p, [&](uint32_t comment) {
      handle(Graph::MessageOfComment(comment));
    });
    if (x > 0 && y > 0) {
      const core::Person& rec = graph.PersonAt(p);
      rows.push_back({rec.id, rec.first_name, rec.last_name, x, y, x + y});
    }
  }
  engine::SortAndLimit(
      rows,
      [](const Ic3Row& a, const Ic3Row& b) {
        if (a.x_count != b.x_count) return a.x_count > b.x_count;
        return a.person_id < b.person_id;
      },
      20);
  return rows;
}

std::vector<Ic4Row> RunIc4(const Graph& graph, const Ic4Params& params) {
  std::vector<Ic4Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;
  const core::DateTime window_start =
      core::DateTimeFromDate(params.start_date);
  const core::DateTime window_end =
      window_start + params.duration_days * core::kMillisPerDay;

  std::unordered_map<uint32_t, int64_t> in_window;
  std::unordered_set<uint32_t> before_window;
  graph.Knows().ForEach(start, [&](uint32_t fr) {
    graph.PersonPosts().ForEach(fr, [&](uint32_t post) {
      core::DateTime created = graph.PostCreation(post);
      if (created >= window_end) return;
      bool in = created >= window_start;
      graph.PostTags().ForEach(post, [&](uint32_t tag) {
        if (in) {
          ++in_window[tag];
        } else {
          before_window.insert(tag);
        }
      });
    });
  });
  for (const auto& [tag, count] : in_window) {
    if (before_window.contains(tag)) continue;
    rows.push_back({graph.TagAt(tag).name, count});
  }
  engine::SortAndLimit(
      rows,
      [](const Ic4Row& a, const Ic4Row& b) {
        if (a.post_count != b.post_count) return a.post_count > b.post_count;
        return a.tag_name < b.tag_name;
      },
      10);
  return rows;
}

std::vector<Ic5Row> RunIc5(const Graph& graph, const Ic5Params& params) {
  std::vector<Ic5Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;
  const core::DateTime min_date = core::DateTimeFromDate(params.min_date);

  std::vector<uint32_t> cohort = internal::FriendsAndFoafs(graph, start);
  std::vector<bool> in_cohort(graph.NumPersons(), false);
  for (uint32_t p : cohort) in_cohort[p] = true;

  // Forum → cohort members who joined after minDate.
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> joiners;
  for (uint32_t p : cohort) {
    graph.PersonForums().ForEachDated(
        p, [&](uint32_t forum, core::DateTime join) {
          if (join > min_date) joiners[forum].insert(p);
        });
  }
  for (const auto& [forum, members] : joiners) {
    int64_t post_count = 0;
    graph.ForumPosts().ForEach(forum, [&](uint32_t post) {
      if (members.contains(graph.PostCreator(post))) ++post_count;
    });
    rows.push_back(
        {graph.ForumAt(forum).title, graph.ForumAt(forum).id, post_count});
  }
  engine::SortAndLimit(
      rows,
      [](const Ic5Row& a, const Ic5Row& b) {
        if (a.post_count != b.post_count) return a.post_count > b.post_count;
        return a.forum_id < b.forum_id;
      },
      20);
  return rows;
}

}  // namespace snb::interactive

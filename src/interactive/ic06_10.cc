// Interactive complex reads IC 6–10.

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "engine/top_k.h"
#include "interactive/ic_common.h"
#include "interactive/interactive.h"

namespace snb::interactive {

using internal::kNoIdx;

std::vector<Ic6Row> RunIc6(const Graph& graph, const Ic6Params& params) {
  std::vector<Ic6Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  uint32_t tag = graph.TagByName(params.tag_name);
  if (start == kNoIdx || tag == kNoIdx) return rows;

  std::vector<int32_t> dist = internal::KnowsDistances(graph, start, 2);
  std::unordered_map<uint32_t, int64_t> counts;
  graph.TagPosts().ForEach(tag, [&](uint32_t post) {
    uint32_t creator = graph.PostCreator(post);
    if (creator == start || dist[creator] < 1) return;
    graph.PostTags().ForEach(post, [&](uint32_t other) {
      if (other != tag) ++counts[other];
    });
  });
  for (const auto& [t, count] : counts) {
    rows.push_back({graph.TagAt(t).name, count});
  }
  engine::SortAndLimit(
      rows,
      [](const Ic6Row& a, const Ic6Row& b) {
        if (a.post_count != b.post_count) return a.post_count > b.post_count;
        return a.tag_name < b.tag_name;
      },
      10);
  return rows;
}

std::vector<Ic7Row> RunIc7(const Graph& graph, const Ic7Params& params) {
  std::vector<Ic7Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;

  struct Best {
    core::DateTime like_date = -1;
    uint32_t msg = 0;
    core::Id message_id = 0;
    core::DateTime message_date = 0;
  };
  std::unordered_map<uint32_t, Best> best_like;  // liker → latest like

  auto handle = [&](uint32_t msg) {
    core::Id message_id = graph.MessageId(msg);
    core::DateTime message_date = graph.MessageCreationDate(msg);
    auto visit = [&](uint32_t liker, core::DateTime when) {
      Best& b = best_like[liker];
      if (when > b.like_date ||
          (when == b.like_date && message_id < b.message_id)) {
        b = {when, msg, message_id, message_date};
      }
    };
    if (Graph::IsPost(msg)) {
      graph.PostLikers().ForEachDated(msg, visit);
    } else {
      graph.CommentLikers().ForEachDated(Graph::AsComment(msg), visit);
    }
  };
  graph.PersonPosts().ForEach(
      start, [&](uint32_t post) { handle(Graph::MessageOfPost(post)); });
  graph.PersonComments().ForEach(start, [&](uint32_t comment) {
    handle(Graph::MessageOfComment(comment));
  });

  std::unordered_set<uint32_t> friends;
  graph.Knows().ForEach(start, [&](uint32_t f) { friends.insert(f); });

  rows.reserve(best_like.size());
  for (const auto& [liker, b] : best_like) {
    const core::Person& rec = graph.PersonAt(liker);
    Ic7Row row;
    row.person_id = rec.id;
    row.first_name = rec.first_name;
    row.last_name = rec.last_name;
    row.like_creation_date = b.like_date;
    row.message_id = b.message_id;
    row.content = graph.MessageContent(b.msg);
    row.minutes_latency =
        core::MinutesBetween(b.message_date, b.like_date);
    row.is_new = !friends.contains(liker);
    rows.push_back(std::move(row));
  }
  engine::SortAndLimit(
      rows,
      [](const Ic7Row& a, const Ic7Row& b) {
        if (a.like_creation_date != b.like_creation_date) {
          return a.like_creation_date > b.like_creation_date;
        }
        return a.person_id < b.person_id;
      },
      20);
  return rows;
}

std::vector<Ic8Row> RunIc8(const Graph& graph, const Ic8Params& params) {
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return {};

  auto better = [](const Ic8Row& a, const Ic8Row& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.comment_id < b.comment_id;
  };
  engine::TopK<Ic8Row, decltype(better)> top(20, better);
  auto handle_reply = [&](uint32_t comment) {
    Ic8Row row;
    row.creation_date = graph.CommentCreation(comment);
    row.comment_id = graph.CommentAt(comment).id;
    if (!top.WouldAccept(row)) return;
    const core::Person& author =
        graph.PersonAt(graph.CommentCreator(comment));
    row.person_id = author.id;
    row.first_name = author.first_name;
    row.last_name = author.last_name;
    row.content = graph.CommentAt(comment).content;
    top.Add(std::move(row));
  };
  graph.PersonPosts().ForEach(start, [&](uint32_t post) {
    graph.PostReplies().ForEach(post, handle_reply);
  });
  graph.PersonComments().ForEach(start, [&](uint32_t comment) {
    graph.CommentReplies().ForEach(comment, handle_reply);
  });
  return top.Take();
}

std::vector<Ic9Row> RunIc9(const Graph& graph, const Ic9Params& params) {
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return {};
  std::vector<uint32_t> cohort = internal::FriendsAndFoafs(graph, start);

  // Same engine as IC 2 over the two-hop cohort.
  const core::DateTime before = core::DateTimeFromDate(params.max_date);
  auto better = [](const Ic9Row& a, const Ic9Row& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.message_id < b.message_id;
  };
  engine::TopK<Ic9Row, decltype(better)> top(20, better);
  for (uint32_t p : cohort) {
    const core::Person& rec = graph.PersonAt(p);
    auto handle = [&](uint32_t msg) {
      core::DateTime created = graph.MessageCreationDate(msg);
      if (created >= before) return;
      Ic9Row row;
      row.creation_date = created;
      row.message_id = graph.MessageId(msg);
      if (!top.WouldAccept(row)) return;
      row.person_id = rec.id;
      row.first_name = rec.first_name;
      row.last_name = rec.last_name;
      row.content = graph.MessageContent(msg);
      top.Add(std::move(row));
    };
    graph.PersonPosts().ForEach(
        p, [&](uint32_t post) { handle(Graph::MessageOfPost(post)); });
    graph.PersonComments().ForEach(p, [&](uint32_t comment) {
      handle(Graph::MessageOfComment(comment));
    });
  }
  return top.Take();
}

std::vector<Ic10Row> RunIc10(const Graph& graph, const Ic10Params& params) {
  std::vector<Ic10Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;

  // Birthday window: on/after the 21st of $month, or before the 22nd of the
  // next month (any year).
  int32_t next_month = params.month == 12 ? 1 : params.month + 1;
  auto birthday_matches = [&](core::Date birthday) {
    core::CivilDate c = core::CivilFromDate(birthday);
    return (c.month == params.month && c.day >= 21) ||
           (c.month == next_month && c.day < 22);
  };

  // Start person's interests as a bitmap.
  std::vector<bool> interest(graph.NumTags(), false);
  graph.PersonInterests().ForEach(start,
                                  [&](uint32_t tag) { interest[tag] = true; });

  std::vector<int32_t> dist = internal::KnowsDistances(graph, start, 2);
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (dist[p] != 2) continue;  // exactly friends-of-friends
    const core::Person& rec = graph.PersonAt(p);
    if (!birthday_matches(rec.birthday)) continue;
    int64_t common = 0, uncommon = 0;
    graph.PersonPosts().ForEach(p, [&](uint32_t post) {
      bool has_common = false;
      graph.PostTags().ForEach(post, [&](uint32_t tag) {
        if (interest[tag]) has_common = true;
      });
      if (has_common) {
        ++common;
      } else {
        ++uncommon;
      }
    });
    rows.push_back({rec.id, rec.first_name, rec.last_name, common - uncommon,
                    rec.gender, internal::CityName(graph, p)});
  }
  engine::SortAndLimit(
      rows,
      [](const Ic10Row& a, const Ic10Row& b) {
        if (a.common_interest_score != b.common_interest_score) {
          return a.common_interest_score > b.common_interest_score;
        }
        return a.person_id < b.person_id;
      },
      10);
  return rows;
}

}  // namespace snb::interactive

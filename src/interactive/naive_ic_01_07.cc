// Naive engine, IC 1–7. Reuses the record-chasing helpers of the BI naive
// engine (bi/naive_common.h is header-only and storage-layer only).

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "bi/naive_common.h"
#include "interactive/naive.h"

namespace snb::interactive::naive {

namespace internal = snb::bi::naive::internal;
using internal::kNoIdx;

namespace {

/// BFS over the knows relation by rescanning the full edge list per level.
std::vector<int32_t> EdgeListBfs(const Graph& graph, uint32_t src,
                                 int32_t max_depth) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    edges.emplace_back(a, b);
  });
  std::vector<int32_t> dist(graph.NumPersons(), -1);
  dist[src] = 0;
  for (int32_t depth = 1; max_depth < 0 || depth <= max_depth; ++depth) {
    bool changed = false;
    for (const auto& [a, b] : edges) {
      if (dist[a] == depth - 1 && dist[b] < 0) {
        dist[b] = depth;
        changed = true;
      }
      if (dist[b] == depth - 1 && dist[a] < 0) {
        dist[a] = depth;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

std::string CityNameSlow(const Graph& graph, uint32_t person) {
  return graph.PlaceAt(graph.PlaceIdx(graph.PersonAt(person).city)).name;
}

}  // namespace

std::vector<Ic1Row> RunIc1(const Graph& graph, const Ic1Params& params) {
  std::vector<Ic1Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;
  std::vector<int32_t> dist = EdgeListBfs(graph, start, 3);
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (p == start || dist[p] < 1) continue;
    const core::Person& rec = graph.PersonAt(p);
    if (rec.first_name != params.first_name) continue;
    Ic1Row row;
    row.friend_id = rec.id;
    row.last_name = rec.last_name;
    row.distance = dist[p];
    row.birthday = rec.birthday;
    row.creation_date = rec.creation_date;
    row.gender = rec.gender;
    row.browser_used = rec.browser_used;
    row.location_ip = rec.location_ip;
    row.emails = rec.emails;
    row.languages = rec.speaks;
    row.city_name = CityNameSlow(graph, p);
    for (const core::StudyAt& s : rec.study_at) {
      const core::Organisation& org =
          graph.OrganisationAt(graph.OrganisationIdx(s.university));
      row.universities.emplace_back(
          org.name, s.class_year,
          graph.PlaceAt(graph.PlaceIdx(org.place)).name);
    }
    for (const core::WorkAt& w : rec.work_at) {
      const core::Organisation& org =
          graph.OrganisationAt(graph.OrganisationIdx(w.company));
      row.companies.emplace_back(
          org.name, w.work_from,
          graph.PlaceAt(graph.PlaceIdx(org.place)).name);
    }
    std::sort(row.universities.begin(), row.universities.end());
    std::sort(row.companies.begin(), row.companies.end());
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Ic1Row& a, const Ic1Row& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    if (a.last_name != b.last_name) return a.last_name < b.last_name;
    return a.friend_id < b.friend_id;
  });
  if (rows.size() > 20) rows.resize(20);
  return rows;
}

namespace {

std::vector<Ic2Row> MessagesOfCohort(const Graph& graph,
                                     const std::vector<bool>& cohort,
                                     core::Date max_date) {
  const core::DateTime before = core::DateTimeFromDate(max_date);
  std::vector<Ic2Row> rows;
  graph.ForEachMessage([&](uint32_t msg) {
    uint32_t creator = graph.MessageCreator(msg);
    if (!cohort[creator]) return;
    core::DateTime created = graph.MessageCreationDate(msg);
    if (created >= before) return;
    const core::Person& rec = graph.PersonAt(creator);
    rows.push_back({rec.id, rec.first_name, rec.last_name,
                    graph.MessageId(msg), graph.MessageContent(msg),
                    created});
  });
  std::sort(rows.begin(), rows.end(), [](const Ic2Row& a, const Ic2Row& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.message_id < b.message_id;
  });
  if (rows.size() > 20) rows.resize(20);
  return rows;
}

}  // namespace

std::vector<Ic2Row> RunIc2(const Graph& graph, const Ic2Params& params) {
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return {};
  std::vector<bool> cohort(graph.NumPersons(), false);
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    if (a == start) cohort[b] = true;
    if (b == start) cohort[a] = true;
  });
  return MessagesOfCohort(graph, cohort, params.max_date);
}

std::vector<Ic3Row> RunIc3(const Graph& graph, const Ic3Params& params) {
  std::vector<Ic3Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  uint32_t country_x = graph.PlaceByName(params.country_x);
  uint32_t country_y = graph.PlaceByName(params.country_y);
  if (start == kNoIdx || country_x == kNoIdx || country_y == kNoIdx) {
    return rows;
  }
  const core::DateTime window_start =
      core::DateTimeFromDate(params.start_date);
  const core::DateTime window_end =
      window_start + params.duration_days * core::kMillisPerDay;

  std::vector<int32_t> dist = EdgeListBfs(graph, start, 2);
  std::unordered_map<uint32_t, std::pair<int64_t, int64_t>> counts;
  graph.ForEachMessage([&](uint32_t msg) {
    uint32_t creator = graph.MessageCreator(msg);
    if (creator == start || dist[creator] < 1) return;
    uint32_t home = internal::PersonCountrySlow(graph, creator);
    if (home == country_x || home == country_y) return;
    core::DateTime created = graph.MessageCreationDate(msg);
    if (created < window_start || created >= window_end) return;
    uint32_t where = internal::MessageCountrySlow(graph, msg);
    if (where == country_x) ++counts[creator].first;
    if (where == country_y) ++counts[creator].second;
  });
  for (const auto& [p, xy] : counts) {
    if (xy.first > 0 && xy.second > 0) {
      const core::Person& rec = graph.PersonAt(p);
      rows.push_back({rec.id, rec.first_name, rec.last_name, xy.first,
                      xy.second, xy.first + xy.second});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Ic3Row& a, const Ic3Row& b) {
    if (a.x_count != b.x_count) return a.x_count > b.x_count;
    return a.person_id < b.person_id;
  });
  if (rows.size() > 20) rows.resize(20);
  return rows;
}

std::vector<Ic4Row> RunIc4(const Graph& graph, const Ic4Params& params) {
  std::vector<Ic4Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;
  const core::DateTime window_start =
      core::DateTimeFromDate(params.start_date);
  const core::DateTime window_end =
      window_start + params.duration_days * core::kMillisPerDay;

  std::vector<bool> friends(graph.NumPersons(), false);
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    if (a == start) friends[b] = true;
    if (b == start) friends[a] = true;
  });
  std::unordered_map<std::string, int64_t> in_window;
  std::unordered_set<std::string> before_window;
  for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
    const core::Post& p = graph.PostAt(post);
    if (!friends[graph.PersonIdx(p.creator)]) continue;
    if (p.creation_date >= window_end) continue;
    bool in = p.creation_date >= window_start;
    for (core::Id t : p.tags) {
      const std::string& name = graph.TagAt(graph.TagIdx(t)).name;
      if (in) {
        ++in_window[name];
      } else {
        before_window.insert(name);
      }
    }
  }
  for (const auto& [tag, count] : in_window) {
    if (!before_window.contains(tag)) rows.push_back({tag, count});
  }
  std::sort(rows.begin(), rows.end(), [](const Ic4Row& a, const Ic4Row& b) {
    if (a.post_count != b.post_count) return a.post_count > b.post_count;
    return a.tag_name < b.tag_name;
  });
  if (rows.size() > 10) rows.resize(10);
  return rows;
}

std::vector<Ic5Row> RunIc5(const Graph& graph, const Ic5Params& params) {
  std::vector<Ic5Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;
  const core::DateTime min_date = core::DateTimeFromDate(params.min_date);

  std::vector<int32_t> dist = EdgeListBfs(graph, start, 2);
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> joiners;
  internal::ForEachMembership(
      graph, [&](uint32_t forum, uint32_t person, core::DateTime join) {
        if (person != start && dist[person] >= 1 && join > min_date) {
          joiners[forum].insert(person);
        }
      });
  for (const auto& [forum, members] : joiners) {
    int64_t post_count = 0;
    for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
      if (graph.ForumIdx(graph.PostAt(post).forum) != forum) continue;
      if (members.contains(graph.PersonIdx(graph.PostAt(post).creator))) {
        ++post_count;
      }
    }
    rows.push_back(
        {graph.ForumAt(forum).title, graph.ForumAt(forum).id, post_count});
  }
  std::sort(rows.begin(), rows.end(), [](const Ic5Row& a, const Ic5Row& b) {
    if (a.post_count != b.post_count) return a.post_count > b.post_count;
    return a.forum_id < b.forum_id;
  });
  if (rows.size() > 20) rows.resize(20);
  return rows;
}

std::vector<Ic6Row> RunIc6(const Graph& graph, const Ic6Params& params) {
  std::vector<Ic6Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  uint32_t tag = graph.TagByName(params.tag_name);
  if (start == kNoIdx || tag == kNoIdx) return rows;
  std::vector<int32_t> dist = EdgeListBfs(graph, start, 2);

  std::unordered_map<std::string, int64_t> counts;
  for (uint32_t post = 0; post < graph.NumPosts(); ++post) {
    const core::Post& p = graph.PostAt(post);
    uint32_t creator = graph.PersonIdx(p.creator);
    if (creator == start || dist[creator] < 1) continue;
    bool has_tag = false;
    for (core::Id t : p.tags) {
      if (graph.TagIdx(t) == tag) has_tag = true;
    }
    if (!has_tag) continue;
    for (core::Id t : p.tags) {
      uint32_t other = graph.TagIdx(t);
      if (other != tag) ++counts[graph.TagAt(other).name];
    }
  }
  for (const auto& [name, count] : counts) rows.push_back({name, count});
  std::sort(rows.begin(), rows.end(), [](const Ic6Row& a, const Ic6Row& b) {
    if (a.post_count != b.post_count) return a.post_count > b.post_count;
    return a.tag_name < b.tag_name;
  });
  if (rows.size() > 10) rows.resize(10);
  return rows;
}

std::vector<Ic7Row> RunIc7(const Graph& graph, const Ic7Params& params) {
  std::vector<Ic7Row> rows;
  uint32_t start = graph.PersonIdx(params.person_id);
  if (start == kNoIdx) return rows;

  struct Best {
    core::DateTime like_date = -1;
    uint32_t msg = 0;
    core::Id message_id = 0;
    core::DateTime message_date = 0;
  };
  std::unordered_map<uint32_t, Best> best_like;
  internal::ForEachLike(
      graph, [&](uint32_t liker, uint32_t msg, core::DateTime when) {
        if (graph.MessageCreator(msg) != start) return;
        core::Id id = graph.MessageId(msg);
        Best& b = best_like[liker];
        if (when > b.like_date ||
            (when == b.like_date && id < b.message_id)) {
          b = {when, msg, id, graph.MessageCreationDate(msg)};
        }
      });

  std::vector<bool> friends(graph.NumPersons(), false);
  internal::ForEachKnowsEdge(graph, [&](uint32_t a, uint32_t b) {
    if (a == start) friends[b] = true;
    if (b == start) friends[a] = true;
  });
  for (const auto& [liker, b] : best_like) {
    const core::Person& rec = graph.PersonAt(liker);
    rows.push_back({rec.id, rec.first_name, rec.last_name, b.like_date,
                    b.message_id, graph.MessageContent(b.msg),
                    core::MinutesBetween(b.message_date, b.like_date),
                    !friends[liker]});
  }
  std::sort(rows.begin(), rows.end(), [](const Ic7Row& a, const Ic7Row& b) {
    if (a.like_creation_date != b.like_creation_date) {
      return a.like_creation_date > b.like_creation_date;
    }
    return a.person_id < b.person_id;
  });
  if (rows.size() > 20) rows.resize(20);
  return rows;
}

}  // namespace snb::interactive::naive

// The Interactive workload (spec §4): complex reads IC 1–14, short reads
// IS 1–7 and update operations IU 1–8, implemented against the graph store.
//
// Conventions follow the query cards: every complex/short read returns rows
// in the card's sort order with the card's limit applied. Where a card
// leaves a tie unspecified, the official reference ordering (ascending id)
// is used and noted.

#ifndef SNB_INTERACTIVE_INTERACTIVE_H_
#define SNB_INTERACTIVE_INTERACTIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/date_time.h"
#include "core/schema.h"
#include "storage/graph.h"

namespace snb::interactive {

using storage::Graph;

// ---- IC 1: Friends with certain name --------------------------------------

struct Ic1Params {
  core::Id person_id = 0;
  std::string first_name;
};

struct Ic1Row {
  core::Id friend_id = 0;
  std::string last_name;
  int32_t distance = 0;
  core::Date birthday = 0;
  core::DateTime creation_date = 0;
  std::string gender;
  std::string browser_used;
  std::string location_ip;
  std::vector<std::string> emails;     // as stored
  std::vector<std::string> languages;  // as stored
  std::string city_name;
  // (university name, class year, city name), sorted for determinism.
  std::vector<std::tuple<std::string, int32_t, std::string>> universities;
  // (company name, work from, country name), sorted for determinism.
  std::vector<std::tuple<std::string, int32_t, std::string>> companies;

  bool operator==(const Ic1Row&) const = default;
};

/// Persons with the given first name within 3 knows-hops of the start
/// person (excluded). Sort: distance ↑, lastName ↑, id ↑. Limit 20.
std::vector<Ic1Row> RunIc1(const Graph& graph, const Ic1Params& params);

// ---- IC 2: Recent messages by your friends ---------------------------------

struct Ic2Params {
  core::Id person_id = 0;
  core::Date max_date = 0;  // messages strictly before this day
};

struct Ic2Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;
  core::Id message_id = 0;
  std::string content;  // content or imageFile
  core::DateTime creation_date = 0;

  bool operator==(const Ic2Row&) const = default;
};

/// Sort: creationDate ↓, message id ↑. Limit 20.
std::vector<Ic2Row> RunIc2(const Graph& graph, const Ic2Params& params);

// ---- IC 3: Friends within two hops that have been to given countries -------

struct Ic3Params {
  core::Id person_id = 0;
  std::string country_x;
  std::string country_y;
  core::Date start_date = 0;
  int32_t duration_days = 0;
};

struct Ic3Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;
  int64_t x_count = 0;
  int64_t y_count = 0;
  int64_t count = 0;

  bool operator==(const Ic3Row&) const = default;
};

/// Friends and friends-of-friends foreign to both countries who posted in
/// both within the window. Sort: xCount ↓, id ↑. Limit 20.
std::vector<Ic3Row> RunIc3(const Graph& graph, const Ic3Params& params);

// ---- IC 4: New topics -------------------------------------------------------

struct Ic4Params {
  core::Id person_id = 0;
  core::Date start_date = 0;
  int32_t duration_days = 0;
};

struct Ic4Row {
  std::string tag_name;
  int64_t post_count = 0;

  bool operator==(const Ic4Row&) const = default;
};

/// Tags on friends' posts inside the window that never appeared on friends'
/// posts before it. Sort: postCount ↓, tagName ↑. Limit 10.
std::vector<Ic4Row> RunIc4(const Graph& graph, const Ic4Params& params);

// ---- IC 5: New groups --------------------------------------------------------

struct Ic5Params {
  core::Id person_id = 0;
  core::Date min_date = 0;
};

struct Ic5Row {
  std::string forum_title;
  core::Id forum_id = 0;
  int64_t post_count = 0;

  bool operator==(const Ic5Row&) const = default;
};

/// Forums joined by friends/friends-of-friends after minDate; postCount
/// counts the posts those joiners made in the forum. Sort: postCount ↓,
/// forum id ↑. Limit 20.
std::vector<Ic5Row> RunIc5(const Graph& graph, const Ic5Params& params);

// ---- IC 6: Tag co-occurrence ---------------------------------------------

struct Ic6Params {
  core::Id person_id = 0;
  std::string tag_name;
};

struct Ic6Row {
  std::string tag_name;
  int64_t post_count = 0;

  bool operator==(const Ic6Row&) const = default;
};

/// Other tags on posts with the given tag created by friends or friends of
/// friends. Sort: postCount ↓, tagName ↑. Limit 10.
std::vector<Ic6Row> RunIc6(const Graph& graph, const Ic6Params& params);

// ---- IC 7: Recent likers ----------------------------------------------------

struct Ic7Params {
  core::Id person_id = 0;
};

struct Ic7Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;
  core::DateTime like_creation_date = 0;
  core::Id message_id = 0;
  std::string content;
  int32_t minutes_latency = 0;
  bool is_new = false;  // true when the liker is not a friend

  bool operator==(const Ic7Row&) const = default;
};

/// Most recent like per liker of the person's messages (ties: lowest
/// message id). Sort: like date ↓, liker id ↑. Limit 20.
std::vector<Ic7Row> RunIc7(const Graph& graph, const Ic7Params& params);

// ---- IC 8: Recent replies ----------------------------------------------------

struct Ic8Params {
  core::Id person_id = 0;
};

struct Ic8Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;
  core::DateTime creation_date = 0;
  core::Id comment_id = 0;
  std::string content;

  bool operator==(const Ic8Row&) const = default;
};

/// Direct replies to the person's messages. Sort: creationDate ↓,
/// comment id ↑. Limit 20.
std::vector<Ic8Row> RunIc8(const Graph& graph, const Ic8Params& params);

// ---- IC 9: Recent messages by friends or friends of friends -------------------

struct Ic9Params {
  core::Id person_id = 0;
  core::Date max_date = 0;
};

using Ic9Row = Ic2Row;

/// Sort: creationDate ↓, message id ↑. Limit 20.
std::vector<Ic9Row> RunIc9(const Graph& graph, const Ic9Params& params);

// ---- IC 10: Friend recommendation ---------------------------------------------

struct Ic10Params {
  core::Id person_id = 0;
  int32_t month = 0;  // 1..12
};

struct Ic10Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;
  int64_t common_interest_score = 0;
  std::string gender;
  std::string city_name;

  bool operator==(const Ic10Row&) const = default;
};

/// Friends of friends (distance exactly 2) born on/after the 21st of the
/// month or before the 22nd of the next month. Sort: score ↓, id ↑.
/// Limit 10.
std::vector<Ic10Row> RunIc10(const Graph& graph, const Ic10Params& params);

// ---- IC 11: Job referral ---------------------------------------------------

struct Ic11Params {
  core::Id person_id = 0;
  std::string country_name;
  int32_t work_from_year = 0;
};

struct Ic11Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;
  std::string company_name;
  int32_t work_from = 0;

  bool operator==(const Ic11Row&) const = default;
};

/// Friends / friends of friends working at a company in the country with
/// workFrom < workFromYear. Sort: workFrom ↑, id ↑, companyName ↓.
/// Limit 10.
std::vector<Ic11Row> RunIc11(const Graph& graph, const Ic11Params& params);

// ---- IC 12: Expert search ---------------------------------------------------

struct Ic12Params {
  core::Id person_id = 0;
  std::string tag_class_name;
};

struct Ic12Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;
  std::vector<std::string> tag_names;  // sorted ascending
  int64_t reply_count = 0;

  bool operator==(const Ic12Row&) const = default;
};

/// Friends whose comments directly reply to posts tagged within the tag
/// class or its descendants. Sort: replyCount ↓, id ↑. Limit 20.
std::vector<Ic12Row> RunIc12(const Graph& graph, const Ic12Params& params);

// ---- IC 13: Single shortest path ---------------------------------------------

struct Ic13Params {
  core::Id person1_id = 0;
  core::Id person2_id = 0;
};

struct Ic13Row {
  int32_t shortest_path_length = -1;

  bool operator==(const Ic13Row&) const = default;
};

Ic13Row RunIc13(const Graph& graph, const Ic13Params& params);

// ---- IC 14: Trusted connection paths -------------------------------------------

struct Ic14Params {
  core::Id person1_id = 0;
  core::Id person2_id = 0;
};

struct Ic14Row {
  std::vector<core::Id> person_ids_in_path;
  double path_weight = 0;

  bool operator==(const Ic14Row&) const = default;
};

/// All shortest paths, weighted: direct reply to a post 1.0, to a comment
/// 0.5 (both directions per consecutive pair). Sort: weight ↓, then path
/// ids ↑ for determinism.
std::vector<Ic14Row> RunIc14(const Graph& graph, const Ic14Params& params);

// ---- Short reads IS 1–7 ------------------------------------------------------

struct Is1Row {
  std::string first_name;
  std::string last_name;
  core::Date birthday = 0;
  std::string location_ip;
  std::string browser_used;
  core::Id city_id = 0;
  std::string gender;
  core::DateTime creation_date = 0;

  bool operator==(const Is1Row&) const = default;
};

/// IS 1: profile of a person (empty vector when the person is unknown).
std::vector<Is1Row> RunIs1(const Graph& graph, core::Id person_id);

struct Is2Row {
  core::Id message_id = 0;
  std::string content;
  core::DateTime creation_date = 0;
  core::Id original_post_id = 0;
  core::Id original_post_author_id = 0;
  std::string original_post_author_first_name;
  std::string original_post_author_last_name;

  bool operator==(const Is2Row&) const = default;
};

/// IS 2: the person's 10 most recent messages with their thread-root posts.
/// Sort: creationDate ↓, message id ↓.
std::vector<Is2Row> RunIs2(const Graph& graph, core::Id person_id);

struct Is3Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;
  core::DateTime friendship_creation_date = 0;

  bool operator==(const Is3Row&) const = default;
};

/// IS 3: all friends with friendship dates. Sort: date ↓, id ↑.
std::vector<Is3Row> RunIs3(const Graph& graph, core::Id person_id);

struct Is4Row {
  core::DateTime creation_date = 0;
  std::string content;

  bool operator==(const Is4Row&) const = default;
};

/// IS 4: content and creation date of a message (post when `is_post`).
std::vector<Is4Row> RunIs4(const Graph& graph, core::Id message_id,
                           bool is_post);

struct Is5Row {
  core::Id person_id = 0;
  std::string first_name;
  std::string last_name;

  bool operator==(const Is5Row&) const = default;
};

/// IS 5: creator of a message.
std::vector<Is5Row> RunIs5(const Graph& graph, core::Id message_id,
                           bool is_post);

struct Is6Row {
  core::Id forum_id = 0;
  std::string forum_title;
  core::Id moderator_id = 0;
  std::string moderator_first_name;
  std::string moderator_last_name;

  bool operator==(const Is6Row&) const = default;
};

/// IS 6: forum of a message (the thread root's container for comments).
std::vector<Is6Row> RunIs6(const Graph& graph, core::Id message_id,
                           bool is_post);

struct Is7Row {
  core::Id comment_id = 0;
  std::string content;
  core::DateTime creation_date = 0;
  core::Id author_id = 0;
  std::string author_first_name;
  std::string author_last_name;
  bool knows = false;

  bool operator==(const Is7Row&) const = default;
};

/// IS 7: direct replies to a message, with a flag for whether the reply
/// author knows the original author. Sort: date ↓, author id ↑ (per card).
std::vector<Is7Row> RunIs7(const Graph& graph, core::Id message_id,
                           bool is_post);

}  // namespace snb::interactive

#endif  // SNB_INTERACTIVE_INTERACTIVE_H_

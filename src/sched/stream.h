// Query streams: permuted sequences of the 25 BI reads.
//
// The BI workload's throughput run executes several independent query
// streams against the same snapshot; each stream issues every read template
// with curated substitution parameters, in a per-stream permuted order so
// that concurrent streams do not march through the templates in lockstep
// (paper §6: "concurrent query streams ... each executing a permutation of
// the query sequence"). The permutation is a pure function of
// (seed, stream id), so runs are reproducible.
//
// ExecuteStreamOp is the single dispatch point the scheduler uses: it runs
// one (template, binding) pair under an optional cancellation token and
// reduces the typed result rows to (row count, order-sensitive fingerprint)
// so results from concurrent runs can be compared bit-for-bit against a
// sequential reference without retaining the rows.

#ifndef SNB_SCHED_STREAM_H_
#define SNB_SCHED_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bi/cancel.h"
#include "engine/dispatch.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"
#include "util/thread_pool.h"

namespace snb::sched {

/// One unit of stream work: BI template `query` (1-based) with the
/// `binding`-th curated parameter binding.
struct StreamOp {
  int query = 0;       // 1..25
  size_t binding = 0;  // index into the template's curated binding list
};

/// Operation name as reported in driver statistics ("BI 7").
std::string StreamOpName(const StreamOp& op);

/// Number of curated bindings available for BI template `query` (1-based).
size_t BindingCount(const params::WorkloadParameters& params, int query);

/// Outcome of one executed stream operation.
struct OpOutcome {
  StreamOp op;
  size_t rows = 0;
  /// FNV-1a hash over every field of every result row, in result order.
  /// Equal results ⇒ equal fingerprints; used by the determinism tests.
  uint64_t fingerprint = 0;
  double latency_ms = 0;
  bool cancelled = false;
  /// Set when an intra-query pool was offered and the template has a morsel
  /// variant: the cost-model verdict that picked the engine (always kMorsel
  /// when no model was supplied — the unconditional policy).
  bool dispatch_considered = false;
  engine::DispatchDecision dispatch;
};

/// Runs one operation against the (shared, read-only) graph. When `token`
/// is non-null it is installed as the ambient cancellation token for the
/// duration of the call; a query abandoned by the token returns
/// cancelled = true with rows = 0. latency_ms is left 0 (the scheduler
/// owns timing).
///
/// When `intra_pool` is non-null, the scan-dominated templates with a
/// morsel-parallel variant (BI 1, 2, 3, 6, 12, 13, 14, 17, 20, 23, 24)
/// may run on that pool; the rest always run sequentially. The scheduler
/// passes the pool only for power runs (a single stream), never for
/// throughput runs — the calling thread participates in the morsel loop,
/// so the pool is never oversubscribed either way. When `dispatch` is also
/// non-null, its cost model arbitrates per query: the morsel variant runs
/// only when the predicted speedup clears the model's margin (CP-1.2 work
/// sizing); a null model means fan out unconditionally.
OpOutcome ExecuteStreamOp(const storage::Graph& graph,
                          const params::WorkloadParameters& params,
                          const StreamOp& op, const bi::CancelToken* token,
                          util::ThreadPool* intra_pool = nullptr,
                          const engine::DispatchModel* dispatch = nullptr);

/// A stream's full op sequence: every template with bindings
/// [0, min(bindings_per_query, available)), Fisher–Yates-permuted by
/// (seed, stream_id).
class QueryStream {
 public:
  QueryStream(size_t stream_id, const params::WorkloadParameters& params,
              size_t bindings_per_query, uint64_t seed);

  size_t stream_id() const { return stream_id_; }
  const std::vector<StreamOp>& ops() const { return ops_; }

 private:
  size_t stream_id_;
  std::vector<StreamOp> ops_;
};

}  // namespace snb::sched

#endif  // SNB_SCHED_STREAM_H_

#include "sched/score.h"

#include <cmath>

namespace snb::sched {

PowerScore ComputePowerScore(const ScheduleResult& run, double scale_factor) {
  PowerScore score;
  score.scale_factor = scale_factor;
  score.cancelled = run.total_cancelled;

  // Geometric mean via the mean of logs: robust against the ~10^3 latency
  // spread between the cheapest and the most expensive BI template.
  double log_sum = 0;
  for (const auto& [name, hist] : run.per_query) {
    if (hist.count() == 0) continue;
    double mean_seconds = hist.MeanMs() / 1000.0;
    // Clamp to the clock's practical resolution so a template measuring 0 ms
    // on a micro scale factor cannot zero the whole geomean.
    if (mean_seconds < 1e-9) mean_seconds = 1e-9;
    log_sum += std::log(mean_seconds);
    ++score.templates_scored;
  }
  if (score.templates_scored == 0) return score;
  score.geomean_seconds =
      std::exp(log_sum / static_cast<double>(score.templates_scored));
  score.power_at_sf = 3600.0 / score.geomean_seconds * scale_factor;
  return score;
}

ThroughputScore ComputeThroughputScore(const ScheduleResult& run,
                                       double scale_factor) {
  ThroughputScore score;
  score.scale_factor = scale_factor;
  score.num_streams = run.streams.size();
  score.wall_seconds = run.wall_seconds;
  score.completed = run.total_completed;
  score.cancelled = run.total_cancelled;
  score.queries_per_hour = run.QueriesPerHour();
  if (run.wall_seconds > 0) {
    score.throughput_at_sf = static_cast<double>(score.num_streams) * 3600.0 /
                             run.wall_seconds * scale_factor;
  }
  return score;
}

}  // namespace snb::sched

#include "sched/scheduler.h"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace snb::sched {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Mutable per-stream scheduling state: the admission cursor, the in-flight
/// count and the accumulating result. Every field is touched only under the
/// scheduler mutex (annotated on StreamScheduler::progress_); the stream's
/// immutable op list lives separately in StreamScheduler::streams_ so that
/// workers can read ops without locking.
struct StreamProgress {
  size_t next = 0;       // next op index to admit
  size_t in_flight = 0;  // ops currently executing
  StreamResult result;
};

/// One throughput/power run. The graph is shared read-only; `mu_` guards the
/// admission state, and clang's thread-safety analysis verifies that every
/// access to `progress_` holds it.
class StreamScheduler {
 public:
  StreamScheduler(const storage::Graph& graph,
                  const params::WorkloadParameters& params,
                  const SchedulerConfig& config)
      : graph_(graph), params_(params), config_(config) {
    SNB_CHECK(config.num_streams > 0);
    SNB_CHECK(config.max_in_flight_per_stream > 0);
    workers_ = config.num_workers > 0
                   ? config.num_workers
                   : std::max<size_t>(1, std::thread::hardware_concurrency());
    streams_.reserve(config.num_streams);
    progress_.resize(config.num_streams);
    for (size_t s = 0; s < config.num_streams; ++s) {
      streams_.emplace_back(
          QueryStream(s, params, config.bindings_per_query, config.seed));
      progress_[s].result.stream_id = s;
      progress_[s].result.outcomes.resize(streams_[s].ops().size());
    }
  }

  ScheduleResult Run() {
    util::ThreadPool pool(workers_);
    // Power runs (one stream, several workers) parallelize *within* the one
    // running query: the executing worker participates in the morsel loop
    // and the remaining workers serve as helpers. Throughput runs keep
    // streams-only parallelism — every worker runs a whole query.
    intra_pool_ = (config_.dispatch != DispatchPolicy::kSequential &&
                   config_.num_streams == 1 && workers_ > 1)
                      ? &pool
                      : nullptr;
    // Adaptive dispatch: calibrate the cost model once per run (the graph
    // is immutable for the run's duration — one epoch), then let it arbitrate
    // every morsel-capable query. kMorsel keeps the old unconditional fan-out.
    if (intra_pool_ && config_.dispatch == DispatchPolicy::kAdaptive) {
      dispatch_model_.emplace(workers_ - 1,
                              std::thread::hardware_concurrency());
      dispatch_model_->Calibrate(graph_);
    }
    t0_ = Clock::now();
    {
      util::MutexLock lock(mu_);
      for (size_t s = 0; s < streams_.size(); ++s) Admit(s, pool);
    }
    pool.Wait();
    return Collect();
  }

 private:
  /// Tops stream `s` up to its in-flight bound. A finishing op re-admits its
  /// own stream, so each stream advances as a chain of at most
  /// max_in_flight_per_stream concurrent links.
  void Admit(size_t s, util::ThreadPool& pool) SNB_REQUIRES(mu_) {
    StreamProgress& st = progress_[s];
    while (st.in_flight < config_.max_in_flight_per_stream &&
           st.next < streams_[s].ops().size()) {
      size_t index = st.next++;
      ++st.in_flight;
      pool.Submit([this, &pool, s, index] { RunOne(pool, s, index); });
    }
  }

  /// Executes one admitted op on a pool worker, then records the outcome and
  /// re-admits under the lock.
  void RunOne(util::ThreadPool& pool, size_t s, size_t index)
      SNB_EXCLUDES(mu_) {
    const StreamOp op = streams_[s].ops()[index];
    bi::CancelToken token;
    if (config_.query_deadline_ms > 0) {
      token.SetDeadlineAfterMs(config_.query_deadline_ms);
    }
    const double start_ms = MsSince(t0_);
    OpOutcome outcome =
        ExecuteStreamOp(graph_, params_, op, &token, intra_pool_,
                        dispatch_model_ ? &*dispatch_model_ : nullptr);
    outcome.latency_ms = MsSince(t0_) - start_ms;

    util::MutexLock lock(mu_);
    StreamProgress& st = progress_[s];
    if (outcome.cancelled) {
      ++st.result.cancelled;
    } else {
      ++st.result.completed;
      st.result.latencies.Record(outcome.latency_ms);
    }
    st.result.outcomes[index] = outcome;
    --st.in_flight;
    Admit(s, pool);
  }

  /// Merges the per-stream accounting; runs after pool.Wait(), when no
  /// worker can touch progress_ anymore (the lock is still taken so the
  /// analysis can prove the access).
  ScheduleResult Collect() SNB_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    ScheduleResult result;
    result.wall_seconds = MsSince(t0_) / 1000.0;
    result.workers_used = workers_;
    result.streams.reserve(progress_.size());
    for (StreamProgress& st : progress_) {
      result.total_completed += st.result.completed;
      result.total_cancelled += st.result.cancelled;
      for (const OpOutcome& o : st.result.outcomes) {
        if (!o.cancelled) {
          result.per_query[StreamOpName(o.op)].Record(o.latency_ms);
        }
        if (o.dispatch_considered) {
          result.dispatch_decisions.push_back(o.dispatch);
          if (o.dispatch.choice == engine::DispatchChoice::kMorsel) {
            ++result.morsel_chosen;
          } else {
            ++result.morsel_refused;
          }
        }
      }
      result.streams.push_back(std::move(st.result));
    }
    return result;
  }

  const storage::Graph& graph_;
  const params::WorkloadParameters& params_;
  const SchedulerConfig& config_;
  // snb-lint-allow(guarded-by): set once in Run() before worker admission
  size_t workers_ = 0;
  // snb-lint-allow(guarded-by): set once before workers start
  util::ThreadPool* intra_pool_ = nullptr;
  /// Engaged for adaptive power runs; calibrated once before admission and
  /// read-only afterwards, so workers consult it without locking.
  // snb-lint-allow(guarded-by): immutable once workers are admitted
  std::optional<engine::DispatchModel> dispatch_model_;
  // snb-lint-allow(guarded-by): stamped once at run start, read-only after
  Clock::time_point t0_;

  /// Immutable after construction; read by workers without the lock.
  // snb-lint-allow(guarded-by): immutable after construction
  std::vector<QueryStream> streams_;

  /// Level 10: held across pool.Submit() in Admit(), i.e. ordered strictly
  /// below the level-20 thread-pool queue lock — the one deliberate
  /// holding-one-while-taking-the-other pattern in the repo, declared so
  /// the deadlock analyzer treats it as a checked invariant rather than an
  /// incidental edge.
  util::Mutex mu_{SNB_LOCK_LEVEL("sched.stream_mu", 10)};
  std::vector<StreamProgress> progress_ SNB_GUARDED_BY(mu_);
};

}  // namespace

ScheduleResult RunStreams(const storage::Graph& graph,
                          const params::WorkloadParameters& params,
                          const SchedulerConfig& config) {
  return StreamScheduler(graph, params, config).Run();
}

}  // namespace snb::sched

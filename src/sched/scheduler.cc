#include "sched/scheduler.h"

#include <chrono>
#include <functional>
#include <mutex>
#include <thread>

#include "util/check.h"
#include "util/thread_pool.h"

namespace snb::sched {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Mutable per-stream scheduling state. The stream's op list is immutable;
/// `next` and `in_flight` are only touched under the scheduler mutex.
struct StreamState {
  explicit StreamState(QueryStream s) : stream(std::move(s)) {
    result.stream_id = stream.stream_id();
    result.outcomes.resize(stream.ops().size());
  }

  QueryStream stream;
  size_t next = 0;       // next op index to admit
  size_t in_flight = 0;  // ops currently executing
  StreamResult result;
};

}  // namespace

ScheduleResult RunStreams(const storage::Graph& graph,
                          const params::WorkloadParameters& params,
                          const SchedulerConfig& config) {
  SNB_CHECK(config.num_streams > 0);
  SNB_CHECK(config.max_in_flight_per_stream > 0);

  const size_t workers =
      config.num_workers > 0
          ? config.num_workers
          : std::max<size_t>(1, std::thread::hardware_concurrency());

  std::vector<StreamState> states;
  states.reserve(config.num_streams);
  for (size_t s = 0; s < config.num_streams; ++s) {
    states.emplace_back(
        QueryStream(s, params, config.bindings_per_query, config.seed));
  }

  util::ThreadPool pool(workers);
  // Power runs (one stream, several workers) parallelize *within* the one
  // running query: the executing worker participates in the morsel loop and
  // the remaining workers serve as helpers. Throughput runs keep
  // streams-only parallelism — every worker runs a whole query.
  util::ThreadPool* intra_pool =
      (config.intra_query_parallelism && config.num_streams == 1 &&
       workers > 1)
          ? &pool
          : nullptr;
  std::mutex mu;
  const Clock::time_point t0 = Clock::now();

  // run_one executes an admitted op on a pool worker; admit (called under
  // `mu`) tops a stream up to its in-flight bound. A finishing op re-admits
  // its own stream, so each stream advances as a chain of at most
  // max_in_flight_per_stream concurrent links.
  std::function<void(size_t, size_t)> run_one;
  auto admit = [&](size_t s) {
    StreamState& st = states[s];
    while (st.in_flight < config.max_in_flight_per_stream &&
           st.next < st.stream.ops().size()) {
      size_t index = st.next++;
      ++st.in_flight;
      pool.Submit([&run_one, s, index] { run_one(s, index); });
    }
  };

  run_one = [&](size_t s, size_t index) {
    const StreamOp op = states[s].stream.ops()[index];
    bi::CancelToken token;
    if (config.query_deadline_ms > 0) {
      token.SetDeadlineAfterMs(config.query_deadline_ms);
    }
    const double start_ms = MsSince(t0);
    OpOutcome outcome = ExecuteStreamOp(graph, params, op, &token, intra_pool);
    outcome.latency_ms = MsSince(t0) - start_ms;

    std::lock_guard<std::mutex> lock(mu);
    StreamState& st = states[s];
    if (outcome.cancelled) {
      ++st.result.cancelled;
    } else {
      ++st.result.completed;
      st.result.latencies.Record(outcome.latency_ms);
    }
    st.result.outcomes[index] = outcome;
    --st.in_flight;
    admit(s);
  };

  {
    std::lock_guard<std::mutex> lock(mu);
    for (size_t s = 0; s < states.size(); ++s) admit(s);
  }
  pool.Wait();

  ScheduleResult result;
  result.wall_seconds = MsSince(t0) / 1000.0;
  result.workers_used = workers;
  result.streams.reserve(states.size());
  for (StreamState& st : states) {
    result.total_completed += st.result.completed;
    result.total_cancelled += st.result.cancelled;
    for (const OpOutcome& o : st.result.outcomes) {
      if (!o.cancelled) {
        result.per_query[StreamOpName(o.op)].Record(o.latency_ms);
      }
    }
    result.streams.push_back(std::move(st.result));
  }
  return result;
}

}  // namespace snb::sched

// Fixed-bucket log-scale latency histogram.
//
// The driver's per-operation statistics used to keep every latency sample in
// an unbounded std::vector for percentile computation — O(ops) memory and an
// O(n log n) sort per percentile query, which does not survive "millions of
// users" workloads. LatencyHistogram replaces it: a fixed array of buckets
// whose bounds grow geometrically (16 buckets per decade over
// [1 µs, 10 000 s]), so any percentile is answered in O(buckets) with a
// bounded relative error of one bucket ratio (10^(1/16) ≈ 15.5 %). Count,
// total, min and max are tracked exactly, so means are exact.
//
// Not internally synchronized: record into per-thread/per-stream instances
// and Merge() them, which is also how the scheduler aggregates streams.

#ifndef SNB_SCHED_HISTOGRAM_H_
#define SNB_SCHED_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace snb::sched {

class LatencyHistogram {
 public:
  /// Geometric bucketing: kBucketsPerDecade buckets per power of ten.
  static constexpr int kBucketsPerDecade = 16;
  /// Lowest finite bucket bound, in milliseconds (1 µs).
  static constexpr double kMinMs = 1e-3;
  /// Decades covered above kMinMs: [1e-3 ms, 1e7 ms) ≈ [1 µs, 2.8 h).
  static constexpr int kDecades = 10;
  /// Finite buckets plus an underflow and an overflow bucket.
  static constexpr int kNumBuckets = kBucketsPerDecade * kDecades + 2;

  /// Upper/lower bound ratio of one bucket: 10^(1/kBucketsPerDecade).
  /// Percentiles are exact up to this relative factor.
  static double BucketRatio() {
    static const double ratio = std::pow(10.0, 1.0 / kBucketsPerDecade);
    return ratio;
  }

  void Record(double ms) {
    ++count_;
    total_ms_ += ms;
    max_ms_ = std::max(max_ms_, ms);
    min_ms_ = std::min(min_ms_, ms);
    ++buckets_[BucketIndex(ms)];
  }

  void Merge(const LatencyHistogram& other) {
    count_ += other.count_;
    total_ms_ += other.total_ms_;
    max_ms_ = std::max(max_ms_, other.max_ms_);
    min_ms_ = std::min(min_ms_, other.min_ms_);
    for (int b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

  size_t count() const { return count_; }
  double total_ms() const { return total_ms_; }
  double max_ms() const { return count_ == 0 ? 0.0 : max_ms_; }
  double min_ms() const { return count_ == 0 ? 0.0 : min_ms_; }

  /// Exact mean (count and total are tracked outside the buckets).
  double MeanMs() const {
    return count_ == 0 ? 0.0 : total_ms_ / static_cast<double>(count_);
  }

  /// Latency of the rank-floor(p·count) sample (the rank convention of the
  /// old sorted-vector percentile), reported as the enclosing bucket's upper
  /// bound clamped to the exact max — so the result is ≥ the exact
  /// percentile and ≤ BucketRatio()× above it.
  double PercentileMs(double p) const {
    if (count_ == 0) return 0.0;
    size_t rank = static_cast<size_t>(p * static_cast<double>(count_));
    if (rank >= count_) rank = count_ - 1;
    size_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b];
      if (seen > rank) {
        // The underflow bucket (sub-µs samples) reports the observed
        // minimum; the overflow bucket has no finite bound, so clamp every
        // bucket to the exact observed maximum.
        if (b == 0) return min_ms_;
        return std::min(BucketUpperBoundMs(b), max_ms_);
      }
    }
    return max_ms_;  // unreachable
  }

 private:
  static int BucketIndex(double ms) {
    if (!(ms > kMinMs)) return 0;  // underflow (also NaN-safe)
    int idx = 1 + static_cast<int>(std::floor(std::log10(ms / kMinMs) *
                                              kBucketsPerDecade));
    return std::min(idx, kNumBuckets - 1);
  }

  /// Upper bound of bucket b: kMinMs·ratio^b for the finite range; the
  /// overflow bucket has no finite bound (callers clamp to max_ms_).
  static double BucketUpperBoundMs(int b) {
    if (b >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
    return kMinMs * std::pow(10.0, static_cast<double>(b) / kBucketsPerDecade);
  }

  std::array<uint64_t, kNumBuckets> buckets_{};
  size_t count_ = 0;
  double total_ms_ = 0;
  double max_ms_ = 0;
  double min_ms_ = std::numeric_limits<double>::infinity();
};

}  // namespace snb::sched

#endif  // SNB_SCHED_HISTOGRAM_H_

#include "sched/stream.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "bi/bi.h"
#include "bi/parallel.h"
#include "engine/morsel.h"
#include "util/check.h"
#include "util/rng.h"

namespace snb::sched {

namespace {

/// Order-sensitive FNV-1a over the fields of the result rows. The digest is
/// a pure function of the typed result, so two executions returning equal
/// row vectors produce equal digests.
class Hasher {
 public:
  void Add(uint64_t v) { Bytes(&v, sizeof(v)); }
  void Add(int64_t v) { Add(static_cast<uint64_t>(v)); }
  void Add(int32_t v) { Add(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  void Add(uint32_t v) { Add(static_cast<uint64_t>(v)); }
  void Add(bool v) { Add(static_cast<uint64_t>(v)); }
  void Add(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    Add(bits);
  }
  void Add(const std::string& s) {
    Add(static_cast<uint64_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  template <typename A, typename B>
  void Add(const std::pair<A, B>& p) {
    Add(p.first);
    Add(p.second);
  }
  template <typename T>
  void Add(const std::vector<T>& v) {
    Add(static_cast<uint64_t>(v.size()));
    for (const T& x : v) Add(x);
  }

  uint64_t digest() const { return h_; }

 private:
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) h_ = (h_ ^ p[i]) * 0x100000001b3ULL;
  }

  uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

template <typename... Fields>
void AddFields(Hasher& h, const Fields&... fields) {
  (h.Add(fields), ...);
}

/// Runs one query, folding the rows into (count, fingerprint).
template <typename Bindings, typename RunFn, typename FieldsFn>
OpOutcome RunAndHash(const storage::Graph& graph, const Bindings& bindings,
                     size_t binding, RunFn&& run, FieldsFn&& fields) {
  SNB_CHECK(binding < bindings.size());
  OpOutcome out;
  auto rows = run(graph, bindings[binding]);
  Hasher hasher;
  for (const auto& row : rows) fields(hasher, row);
  out.rows = rows.size();
  out.fingerprint = hasher.digest();
  return out;
}

}  // namespace

std::string StreamOpName(const StreamOp& op) {
  return "BI " + std::to_string(op.query);
}

size_t BindingCount(const params::WorkloadParameters& params, int query) {
  switch (query) {
    case 1: return params.bi1.size();
    case 2: return params.bi2.size();
    case 3: return params.bi3.size();
    case 4: return params.bi4.size();
    case 5: return params.bi5.size();
    case 6: return params.bi6.size();
    case 7: return params.bi7.size();
    case 8: return params.bi8.size();
    case 9: return params.bi9.size();
    case 10: return params.bi10.size();
    case 11: return params.bi11.size();
    case 12: return params.bi12.size();
    case 13: return params.bi13.size();
    case 14: return params.bi14.size();
    case 15: return params.bi15.size();
    case 16: return params.bi16.size();
    case 17: return params.bi17.size();
    case 18: return params.bi18.size();
    case 19: return params.bi19.size();
    case 20: return params.bi20.size();
    case 21: return params.bi21.size();
    case 22: return params.bi22.size();
    case 23: return params.bi23.size();
    case 24: return params.bi24.size();
    case 25: return params.bi25.size();
    default: SNB_UNREACHABLE();
  }
}

OpOutcome ExecuteStreamOp(const storage::Graph& graph,
                          const params::WorkloadParameters& params,
                          const StreamOp& op, const bi::CancelToken* token,
                          util::ThreadPool* intra_pool,
                          const engine::DispatchModel* dispatch) {
  bi::ScopedCancelToken scoped(token);
  bool considered = false;
  engine::DispatchDecision decision;
  // Sequential-or-morsel dispatch: run(g, b) picks the parallel variant iff
  // an intra-query pool was supplied and — when a cost model arbitrates —
  // the predicted speedup clears its margin. `estimate(g, b)` prices the
  // query's scan from zone-map candidate counts (already maintained by the
  // index, so pricing is ~free); `morsel_size` is the variant's actual
  // morsel size, which the model reads as per-element weight. Results are
  // bit-identical whichever engine runs.
  auto seq_or_par = [&](auto estimate, size_t morsel_size, auto seq,
                        auto par) {
    return [&, estimate, morsel_size, seq, par](const storage::Graph& g,
                                                const auto& b) {
      if (!intra_pool) return seq(g, b);
      considered = true;
      if (!dispatch) {  // unconditional policy: always fan out
        decision = {op.query, 0, 0, 0.0, engine::DispatchChoice::kMorsel};
        return par(g, b, *intra_pool);
      }
      decision = dispatch->Decide(op.query, estimate(g, b), morsel_size);
      return decision.choice == engine::DispatchChoice::kMorsel
                 ? par(g, b, *intra_pool)
                 : seq(g, b);
    };
  };
  // Scan-size estimators for the morsel-capable templates.
  auto all_messages = [](const storage::Graph& g, const auto&) {
    return g.NumMessages();
  };
  OpOutcome out;
  try {
    // Entry poll: a query admitted past its deadline is abandoned before any
    // work, even if its implementation never polls.
    bi::PollCancel();
    switch (op.query) {
      case 1:
        out = RunAndHash(graph, params.bi1, op.binding,
                         seq_or_par(
                             [](const storage::Graph& g,
                                const bi::Bi1Params& b) {
                               return g.MessageIndex().CandidatesInRange(
                                   storage::kMinMessageDate,
                                   core::DateTimeFromDate(b.date));
                             },
                             engine::kDefaultMorselSize, bi::RunBi1,
                             bi::parallel::RunBi1),
                         [](Hasher& h, const bi::Bi1Row& r) {
                           AddFields(h, r.year, r.is_comment,
                                     r.length_category, r.message_count,
                                     r.average_message_length,
                                     r.sum_message_length,
                                     r.percentage_of_messages);
                         });
        break;
      case 2:
        out = RunAndHash(graph, params.bi2, op.binding,
                         seq_or_par(
                             [](const storage::Graph& g,
                                const bi::Bi2Params& b) {
                               size_t n = 0;
                               uint32_t c1 = g.PlaceByName(b.country1);
                               uint32_t c2 = g.PlaceByName(b.country2);
                               if (c1 != storage::kNoIdx) {
                                 n += g.CountryPersons().Degree(c1);
                               }
                               if (c2 != storage::kNoIdx && c2 != c1) {
                                 n += g.CountryPersons().Degree(c2);
                               }
                               return n;
                             },
                             /*morsel_size=*/256, bi::RunBi2,
                             bi::parallel::RunBi2),
                         [](Hasher& h, const bi::Bi2Row& r) {
                           AddFields(h, r.country, r.month, r.gender,
                                     r.age_group, r.tag, r.message_count);
                         });
        break;
      case 3:
        out = RunAndHash(graph, params.bi3, op.binding,
                         seq_or_par(
                             [](const storage::Graph& g,
                                const bi::Bi3Params& b) {
                               int32_t y = b.year, m = b.month + 2;
                               while (m > 12) {
                                 m -= 12;
                                 ++y;
                               }
                               return g.MessageIndex().CandidatesInRange(
                                   core::DateTimeFromCivil(b.year, b.month, 1),
                                   core::DateTimeFromCivil(y, m, 1));
                             },
                             engine::kDefaultMorselSize, bi::RunBi3,
                             bi::parallel::RunBi3),
                         [](Hasher& h, const bi::Bi3Row& r) {
                           AddFields(h, r.tag, r.count_month1, r.count_month2,
                                     r.diff);
                         });
        break;
      case 4:
        out = RunAndHash(graph, params.bi4, op.binding, bi::RunBi4,
                         [](Hasher& h, const bi::Bi4Row& r) {
                           AddFields(h, r.forum_id, r.forum_title,
                                     r.forum_creation_date, r.moderator_id,
                                     r.post_count);
                         });
        break;
      case 5:
        out = RunAndHash(graph, params.bi5, op.binding, bi::RunBi5,
                         [](Hasher& h, const bi::Bi5Row& r) {
                           AddFields(h, r.person_id, r.first_name, r.last_name,
                                     r.creation_date, r.post_count);
                         });
        break;
      case 6:
        out = RunAndHash(graph, params.bi6, op.binding,
                         seq_or_par(
                             [](const storage::Graph& g,
                                const bi::Bi6Params& b) -> size_t {
                               uint32_t tag = g.TagByName(b.tag);
                               if (tag == storage::kNoIdx) return 0;
                               return g.TagPosts().Degree(tag) +
                                      g.TagComments().Degree(tag);
                             },
                             /*morsel_size=*/1024, bi::RunBi6,
                             bi::parallel::RunBi6),
                         [](Hasher& h, const bi::Bi6Row& r) {
                           AddFields(h, r.person_id, r.reply_count,
                                     r.like_count, r.message_count, r.score);
                         });
        break;
      case 7:
        out = RunAndHash(graph, params.bi7, op.binding, bi::RunBi7,
                         [](Hasher& h, const bi::Bi7Row& r) {
                           AddFields(h, r.person_id, r.authority_score);
                         });
        break;
      case 8:
        out = RunAndHash(graph, params.bi8, op.binding, bi::RunBi8,
                         [](Hasher& h, const bi::Bi8Row& r) {
                           AddFields(h, r.related_tag, r.count);
                         });
        break;
      case 9:
        out = RunAndHash(graph, params.bi9, op.binding, bi::RunBi9,
                         [](Hasher& h, const bi::Bi9Row& r) {
                           AddFields(h, r.forum_id, r.count1, r.count2);
                         });
        break;
      case 10:
        out = RunAndHash(graph, params.bi10, op.binding, bi::RunBi10,
                         [](Hasher& h, const bi::Bi10Row& r) {
                           AddFields(h, r.person_id, r.score, r.friends_score);
                         });
        break;
      case 11:
        out = RunAndHash(graph, params.bi11, op.binding, bi::RunBi11,
                         [](Hasher& h, const bi::Bi11Row& r) {
                           AddFields(h, r.person_id, r.tag, r.like_count,
                                     r.reply_count);
                         });
        break;
      case 12:
        out = RunAndHash(graph, params.bi12, op.binding,
                         seq_or_par(
                             [](const storage::Graph& g,
                                const bi::Bi12Params& b) {
                               return g.MessageIndex().CandidatesInRange(
                                   core::DateTimeFromDate(b.date) +
                                       core::kMillisPerDay,
                                   storage::kMaxMessageDate);
                             },
                             engine::kDefaultMorselSize, bi::RunBi12,
                             bi::parallel::RunBi12),
                         [](Hasher& h, const bi::Bi12Row& r) {
                           AddFields(h, r.message_id, r.creation_date,
                                     r.creator_first_name,
                                     r.creator_last_name, r.like_count);
                         });
        break;
      case 13:
        out = RunAndHash(graph, params.bi13, op.binding,
                         seq_or_par(all_messages, engine::kDefaultMorselSize,
                                    bi::RunBi13, bi::parallel::RunBi13),
                         [](Hasher& h, const bi::Bi13Row& r) {
                           AddFields(h, r.year, r.month, r.popular_tags);
                         });
        break;
      case 14:
        out = RunAndHash(graph, params.bi14, op.binding,
                         seq_or_par(
                             [](const storage::Graph& g,
                                const bi::Bi14Params& b) {
                               return g.MessageIndex().CandidatesInRange(
                                   core::DateTimeFromDate(b.begin),
                                   core::DateTimeFromDate(b.end) +
                                       core::kMillisPerDay);
                             },
                             engine::kDefaultMorselSize, bi::RunBi14,
                             bi::parallel::RunBi14),
                         [](Hasher& h, const bi::Bi14Row& r) {
                           AddFields(h, r.person_id, r.first_name, r.last_name,
                                     r.thread_count, r.message_count);
                         });
        break;
      case 15:
        out = RunAndHash(graph, params.bi15, op.binding, bi::RunBi15,
                         [](Hasher& h, const bi::Bi15Row& r) {
                           AddFields(h, r.person_id, r.count);
                         });
        break;
      case 16:
        out = RunAndHash(graph, params.bi16, op.binding, bi::RunBi16,
                         [](Hasher& h, const bi::Bi16Row& r) {
                           AddFields(h, r.person_id, r.tag, r.message_count);
                         });
        break;
      case 17:
        out = RunAndHash(graph, params.bi17, op.binding,
                         seq_or_par(
                             [](const storage::Graph& g,
                                const bi::Bi17Params&) {
                               return g.NumPersons();
                             },
                             /*morsel_size=*/256, bi::RunBi17,
                             bi::parallel::RunBi17),
                         [](Hasher& h, const bi::Bi17Row& r) {
                           AddFields(h, r.count);
                         });
        break;
      case 18:
        out = RunAndHash(graph, params.bi18, op.binding, bi::RunBi18,
                         [](Hasher& h, const bi::Bi18Row& r) {
                           AddFields(h, r.message_count, r.person_count);
                         });
        break;
      case 19:
        out = RunAndHash(graph, params.bi19, op.binding, bi::RunBi19,
                         [](Hasher& h, const bi::Bi19Row& r) {
                           AddFields(h, r.person_id, r.stranger_count,
                                     r.interaction_count);
                         });
        break;
      case 20:
        out = RunAndHash(graph, params.bi20, op.binding,
                         seq_or_par(all_messages, engine::kDefaultMorselSize,
                                    bi::RunBi20, bi::parallel::RunBi20),
                         [](Hasher& h, const bi::Bi20Row& r) {
                           AddFields(h, r.tag_class, r.message_count);
                         });
        break;
      case 21:
        out = RunAndHash(graph, params.bi21, op.binding, bi::RunBi21,
                         [](Hasher& h, const bi::Bi21Row& r) {
                           AddFields(h, r.zombie_id, r.zombie_like_count,
                                     r.total_like_count, r.zombie_score);
                         });
        break;
      case 22:
        out = RunAndHash(graph, params.bi22, op.binding, bi::RunBi22,
                         [](Hasher& h, const bi::Bi22Row& r) {
                           AddFields(h, r.person1_id, r.person2_id, r.city1,
                                     r.score);
                         });
        break;
      case 23:
        out = RunAndHash(graph, params.bi23, op.binding,
                         seq_or_par(all_messages, engine::kDefaultMorselSize,
                                    bi::RunBi23, bi::parallel::RunBi23),
                         [](Hasher& h, const bi::Bi23Row& r) {
                           AddFields(h, r.message_count, r.destination,
                                     r.month);
                         });
        break;
      case 24:
        out = RunAndHash(graph, params.bi24, op.binding,
                         seq_or_par(all_messages, engine::kDefaultMorselSize,
                                    bi::RunBi24, bi::parallel::RunBi24),
                         [](Hasher& h, const bi::Bi24Row& r) {
                           AddFields(h, r.message_count, r.like_count, r.year,
                                     r.month, r.continent);
                         });
        break;
      case 25:
        out = RunAndHash(graph, params.bi25, op.binding, bi::RunBi25,
                         [](Hasher& h, const bi::Bi25Row& r) {
                           AddFields(h, r.person_ids, r.weight);
                         });
        break;
      default:
        SNB_UNREACHABLE();
    }
  } catch (const bi::QueryCancelled&) {
    out = OpOutcome{};
    out.cancelled = true;
  }
  out.op = op;
  out.dispatch_considered = considered;
  if (considered) out.dispatch = decision;
  return out;
}

QueryStream::QueryStream(size_t stream_id,
                         const params::WorkloadParameters& params,
                         size_t bindings_per_query, uint64_t seed)
    : stream_id_(stream_id) {
  for (int q = 1; q <= 25; ++q) {
    size_t n = std::min(bindings_per_query, BindingCount(params, q));
    for (size_t b = 0; b < n; ++b) {
      ops_.push_back({q, b});
    }
  }
  // Fisher–Yates keyed on (seed, stream id): every stream gets its own
  // deterministic permutation of the full op set.
  util::Rng rng(seed, uint64_t{0x57ea3}, static_cast<uint64_t>(stream_id));
  for (size_t i = ops_.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(ops_[i - 1], ops_[j]);
  }
}

}  // namespace snb::sched

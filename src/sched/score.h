// Benchmark scoring: Power@SF and Throughput@SF.
//
// The BI paper defines two headline metrics (§6 "Scoring"):
//
//   power@SF      = 3600 / geomean_q(t_q) · SF
//       from a single sequential stream, where t_q is the mean execution
//       time, in seconds, of query template q over its parameter bindings.
//       The geometric mean keeps one slow heavy-hitter from drowning the
//       24 other templates, and 3600/· expresses it as queries per hour.
//
//   throughput@SF = n_streams · 3600 / t_total · SF
//       from a run of n concurrent streams finishing in t_total wall
//       seconds: stream-batches per hour, scaled by SF. We also report the
//       raw completed-queries-per-hour figure, which is the quantity the
//       driver's multi-stream mode optimizes.
//
// Scores scale with SF so results on different scale factors are
// comparable; cancelled queries make a run unscoreable (ok() == false)
// rather than silently inflating the score.

#ifndef SNB_SCHED_SCORE_H_
#define SNB_SCHED_SCORE_H_

#include <string>

#include "sched/scheduler.h"

namespace snb::sched {

struct PowerScore {
  double scale_factor = 0;
  /// Geometric mean over query templates of the mean latency, seconds.
  double geomean_seconds = 0;
  /// 3600 / geomean_seconds · scale_factor.
  double power_at_sf = 0;
  /// Templates that contributed (completed at least one binding).
  size_t templates_scored = 0;
  size_t cancelled = 0;

  /// False when no template completed or any query was cancelled.
  bool ok() const { return templates_scored > 0 && cancelled == 0; }
};

struct ThroughputScore {
  double scale_factor = 0;
  size_t num_streams = 0;
  double wall_seconds = 0;
  /// Completed queries per wall-clock hour, all streams combined.
  double queries_per_hour = 0;
  /// num_streams · 3600 / wall_seconds · scale_factor.
  double throughput_at_sf = 0;
  size_t completed = 0;
  size_t cancelled = 0;

  bool ok() const { return completed > 0 && cancelled == 0; }
};

/// Scores a power (single-stream) run. `scale_factor` is the numeric SF of
/// the dataset (e.g. 0.1); multi-stream runs are rejected via ok() == false
/// only when nothing completed — the caller is trusted to pass a
/// single-stream run for an auditable power figure.
PowerScore ComputePowerScore(const ScheduleResult& run, double scale_factor);

/// Scores a throughput (multi-stream) run.
ThroughputScore ComputeThroughputScore(const ScheduleResult& run,
                                       double scale_factor);

}  // namespace snb::sched

#endif  // SNB_SCHED_SCORE_H_

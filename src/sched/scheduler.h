// Concurrent query-stream scheduler (the paper's throughput run, §6).
//
// Runs N independent BI query streams — each a permuted sequence of the 25
// reads with curated substitution parameters — against one shared read-only
// storage::Graph on a fixed worker pool. Three mechanisms keep the run
// well-behaved under load:
//
//   * admission control: at most `max_in_flight_per_stream` queries of a
//     stream execute at once (1 = the paper's sequential-per-stream model);
//     a finished query admits its stream's next op, so streams interleave on
//     the pool without any stream monopolizing it;
//   * cooperative cancellation: each query gets a CancelToken armed with
//     `query_deadline_ms`; BI implementations poll it at loop boundaries
//     (bi/cancel.h) and over-deadline queries unwind and are recorded as
//     cancelled rather than wedging a worker;
//   * bounded accounting: latencies land in fixed-bucket log-scale
//     histograms (sched/histogram.h), per stream and per query template, so
//     memory is O(streams + templates) regardless of run length.
//
// The result feeds sched/score.h, which turns a single-stream run into
// Power@SF and a multi-stream run into Throughput@SF.

#ifndef SNB_SCHED_SCHEDULER_H_
#define SNB_SCHED_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/dispatch.h"
#include "params/parameter_curation.h"
#include "sched/histogram.h"
#include "sched/stream.h"
#include "storage/graph.h"

namespace snb::sched {

/// How power runs pick between the sequential and morsel engines for the
/// templates that have both.
enum class DispatchPolicy : uint8_t {
  kSequential,  ///< never fan out (the old intra_query_parallelism = false)
  kMorsel,      ///< always fan out when a pool is available (the old = true)
  kAdaptive,    ///< engine::DispatchModel decides per query from a cost model
};

struct SchedulerConfig {
  /// Number of concurrent query streams (1 = the power run).
  size_t num_streams = 1;

  /// Worker threads executing queries; 0 = hardware concurrency.
  size_t num_workers = 0;

  /// Admission bound: queries of one stream in flight at once. 1 keeps each
  /// stream sequential (the benchmark's model); larger values overlap
  /// queries within a stream.
  size_t max_in_flight_per_stream = 1;

  /// Curated bindings executed per query template per stream (clamped to
  /// the number available).
  size_t bindings_per_query = 1;

  /// Per-query deadline in milliseconds; 0 disables. Over-deadline queries
  /// are cooperatively cancelled and recorded, not retried.
  double query_deadline_ms = 0;

  /// Engine choice for power runs. With a single stream and more than one
  /// worker, the otherwise idle workers can execute morsels of the one
  /// running query; with multiple streams the workers are already saturated
  /// running whole queries, so intra-query parallelism is never engaged
  /// there (the pool is never oversubscribed). kAdaptive calibrates an
  /// engine::DispatchModel once per run and refuses fan-out for queries the
  /// cost model predicts would not gain from it.
  DispatchPolicy dispatch = DispatchPolicy::kAdaptive;

  /// Seed for the per-stream permutations.
  uint64_t seed = 42;
};

/// Everything recorded about one stream of a run.
struct StreamResult {
  size_t stream_id = 0;
  /// Outcomes in the stream's (permuted) issue order.
  std::vector<OpOutcome> outcomes;
  /// Latencies of completed (non-cancelled) queries.
  LatencyHistogram latencies;
  size_t completed = 0;
  size_t cancelled = 0;
};

struct ScheduleResult {
  std::vector<StreamResult> streams;
  /// Completed-query latencies per template ("BI 1".."BI 25"), merged over
  /// all streams.
  std::map<std::string, LatencyHistogram> per_query;
  double wall_seconds = 0;
  size_t total_completed = 0;
  size_t total_cancelled = 0;
  size_t workers_used = 0;

  /// Every cost-model decision taken (adaptive power runs only), in stream
  /// issue order, plus the tally — the run report logs these so refused
  /// fan-outs are visible rather than silent.
  std::vector<engine::DispatchDecision> dispatch_decisions;
  size_t morsel_chosen = 0;
  size_t morsel_refused = 0;

  /// Completed queries per wall-clock hour across all streams.
  double QueriesPerHour() const {
    return wall_seconds == 0
               ? 0
               : static_cast<double>(total_completed) * 3600.0 / wall_seconds;
  }
};

/// Runs the configured streams to completion and returns the merged
/// accounting. The graph is shared read-only across all workers.
ScheduleResult RunStreams(const storage::Graph& graph,
                          const params::WorkloadParameters& params,
                          const SchedulerConfig& config);

}  // namespace snb::sched

#endif  // SNB_SCHED_SCHEDULER_H_

#include "datagen/update_stream.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "core/date_time.h"
#include "util/check.h"
#include "util/csv.h"

namespace snb::datagen {

namespace {

constexpr char kPersonStreamFile[] = "/updateStream_0_0_person.csv";
constexpr char kForumStreamFile[] = "/updateStream_0_0_forum.csv";
// DEL 1–8 ride in their own stream file so insert-only consumers (and the
// streaming-datagen byte-identity oracle) never see a layout change: the
// file exists only when the generator actually emitted deletes.
constexpr char kDeleteStreamFile[] = "/updateStream_0_0_delete.csv";

std::string I(core::Id id) { return std::to_string(id); }

std::string JoinIds(const std::vector<core::Id>& ids) {
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (core::Id id : ids) parts.push_back(std::to_string(id));
  return util::JoinMultiValued(parts);
}

}  // namespace

std::vector<std::string> UpdateEventFields(const UpdateEvent& event) {
  switch (event.kind) {
    case UpdateKind::kAddPerson: {
      const auto& p = std::get<core::Person>(event.payload);
      std::vector<std::string> study, work;
      for (const core::StudyAt& s : p.study_at) {
        study.push_back(std::to_string(s.university) + "," +
                        std::to_string(s.class_year));
      }
      for (const core::WorkAt& w : p.work_at) {
        work.push_back(std::to_string(w.company) + "," +
                       std::to_string(w.work_from));
      }
      return {I(p.id),
              p.first_name,
              p.last_name,
              p.gender,
              core::FormatDate(p.birthday),
              core::FormatDateTime(p.creation_date),
              p.location_ip,
              p.browser_used,
              I(p.city),
              util::JoinMultiValued(p.speaks),
              util::JoinMultiValued(p.emails),
              JoinIds(p.interests),
              util::JoinMultiValued(study),
              util::JoinMultiValued(work)};
    }
    case UpdateKind::kAddLikePost:
    case UpdateKind::kAddLikeComment: {
      const auto& l = std::get<core::Like>(event.payload);
      return {I(l.person), I(l.message),
              core::FormatDateTime(l.creation_date)};
    }
    case UpdateKind::kAddForum: {
      const auto& f = std::get<core::Forum>(event.payload);
      return {I(f.id), util::SanitizeField(f.title),
              core::FormatDateTime(f.creation_date), I(f.moderator),
              JoinIds(f.tags)};
    }
    case UpdateKind::kAddMembership: {
      const auto& m = std::get<core::ForumMembership>(event.payload);
      return {I(m.person), I(m.forum), core::FormatDateTime(m.join_date)};
    }
    case UpdateKind::kAddPost: {
      const auto& p = std::get<core::Post>(event.payload);
      return {I(p.id),
              p.image_file,
              core::FormatDateTime(p.creation_date),
              p.location_ip,
              p.browser_used,
              p.language,
              util::SanitizeField(p.content),
              std::to_string(p.length),
              I(p.creator),
              I(p.forum),
              I(p.country),
              JoinIds(p.tags)};
    }
    case UpdateKind::kAddComment: {
      const auto& c = std::get<core::Comment>(event.payload);
      return {I(c.id),
              core::FormatDateTime(c.creation_date),
              c.location_ip,
              c.browser_used,
              util::SanitizeField(c.content),
              std::to_string(c.length),
              I(c.creator),
              I(c.country),
              I(c.reply_of_post),     // -1 when replying to a comment
              I(c.reply_of_comment),  // -1 when replying to a post
              JoinIds(c.tags)};
    }
    case UpdateKind::kAddKnows: {
      const auto& k = std::get<core::Knows>(event.payload);
      return {I(k.person1), I(k.person2),
              core::FormatDateTime(k.creation_date)};
    }
    case UpdateKind::kDelPerson:
    case UpdateKind::kDelForum:
    case UpdateKind::kDelPost:
    case UpdateKind::kDelComment: {
      const auto& d = std::get<Delete>(event.payload);
      return {I(d.a)};
    }
    case UpdateKind::kDelLikePost:
    case UpdateKind::kDelLikeComment:
    case UpdateKind::kDelMembership:
    case UpdateKind::kDelKnows: {
      const auto& d = std::get<Delete>(event.payload);
      return {I(d.a), I(d.b)};
    }
  }
  SNB_UNREACHABLE();
}

std::string FormatUpdateEventLine(const UpdateEvent& event) {
  std::string line = std::to_string(event.timestamp) + "|" +
                     std::to_string(event.dependency) + "|" +
                     std::to_string(static_cast<int>(event.kind));
  for (const std::string& field : UpdateEventFields(event)) {
    line.push_back('|');
    line.append(field);
  }
  return line;
}

util::Status WriteUpdateStreams(const std::vector<UpdateEvent>& updates,
                                const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return util::Status::IoError("cannot create directory " + dir);

  std::FILE* person_stream =
      std::fopen((dir + kPersonStreamFile).c_str(), "w");
  if (person_stream == nullptr) {
    return util::Status::IoError("cannot open person update stream");
  }
  std::FILE* forum_stream =
      std::fopen((dir + kForumStreamFile).c_str(), "w");
  if (forum_stream == nullptr) {
    std::fclose(person_stream);
    return util::Status::IoError("cannot open forum update stream");
  }
  // Opened lazily: a delete-free stream set produces exactly the two
  // classic files, byte-identical to the pre-delete dialect.
  std::FILE* delete_stream = nullptr;

  for (const UpdateEvent& e : updates) {
    std::string line = FormatUpdateEventLine(e);
    line.push_back('\n');
    std::FILE* target;
    if (IsDeleteKind(e.kind)) {
      if (delete_stream == nullptr) {
        delete_stream = std::fopen((dir + kDeleteStreamFile).c_str(), "w");
        if (delete_stream == nullptr) {
          std::fclose(person_stream);
          std::fclose(forum_stream);
          return util::Status::IoError("cannot open delete update stream");
        }
      }
      target = delete_stream;
    } else {
      target =
          e.kind == UpdateKind::kAddPerson ? person_stream : forum_stream;
    }
    std::fwrite(line.data(), 1, line.size(), target);
  }

  int rc1 = std::fclose(person_stream);
  int rc2 = std::fclose(forum_stream);
  int rc3 = delete_stream != nullptr ? std::fclose(delete_stream) : 0;
  if (rc1 != 0 || rc2 != 0 || rc3 != 0) {
    return util::Status::IoError("fclose failed for update streams");
  }
  return util::Status::Ok();
}


namespace {

core::Id ParseId(const std::string& s) {
  return std::strtoll(s.c_str(), nullptr, 10);
}

int32_t ParseI32(const std::string& s) {
  return static_cast<int32_t>(std::strtol(s.c_str(), nullptr, 10));
}

std::vector<core::Id> ParseIds(const std::string& field) {
  std::vector<core::Id> out;
  for (const std::string& part : util::SplitMultiValued(field)) {
    out.push_back(ParseId(part));
  }
  return out;
}

util::Status ParseDateTimeOr(const std::string& text, core::DateTime* out) {
  if (!core::ParseDateTime(text, out)) {
    return util::Status::Corruption("bad datetime in update stream: " + text);
  }
  return util::Status::Ok();
}

}  // namespace

util::Status ParseUpdateEventLine(const std::string& line, UpdateEvent* out) {
  std::vector<std::string> f;
  size_t start = 0;
  while (true) {
    size_t pos = line.find('|', start);
    if (pos == std::string::npos) {
      f.push_back(line.substr(start));
      break;
    }
    f.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  if (f.size() < 4) return util::Status::Corruption("short stream line");
  out->timestamp = std::strtoll(f[0].c_str(), nullptr, 10);
  out->dependency = std::strtoll(f[1].c_str(), nullptr, 10);
  int op = ParseI32(f[2]);
  auto field = [&](size_t i) -> const std::string& { return f[3 + i]; };
  switch (op) {
    case 1: {
      if (f.size() != 3 + 14) return util::Status::Corruption("IU1 width");
      core::Person p;
      p.id = ParseId(field(0));
      p.first_name = field(1);
      p.last_name = field(2);
      p.gender = field(3);
      if (!core::ParseDate(field(4), &p.birthday)) {
        return util::Status::Corruption("bad birthday");
      }
      SNB_RETURN_IF_ERROR(ParseDateTimeOr(field(5), &p.creation_date));
      p.location_ip = field(6);
      p.browser_used = field(7);
      p.city = ParseId(field(8));
      p.speaks = util::SplitMultiValued(field(9));
      p.emails = util::SplitMultiValued(field(10));
      p.interests = ParseIds(field(11));
      for (const std::string& pair : util::SplitMultiValued(field(12))) {
        size_t comma = pair.find(',');
        p.study_at.push_back({ParseId(pair.substr(0, comma)),
                              ParseI32(pair.substr(comma + 1))});
      }
      for (const std::string& pair : util::SplitMultiValued(field(13))) {
        size_t comma = pair.find(',');
        p.work_at.push_back({ParseId(pair.substr(0, comma)),
                             ParseI32(pair.substr(comma + 1))});
      }
      out->kind = UpdateKind::kAddPerson;
      out->payload = std::move(p);
      return util::Status::Ok();
    }
    case 2:
    case 3: {
      if (f.size() != 3 + 3) return util::Status::Corruption("IU2/3 width");
      core::Like l;
      l.person = ParseId(field(0));
      l.message = ParseId(field(1));
      l.is_post = op == 2;
      SNB_RETURN_IF_ERROR(ParseDateTimeOr(field(2), &l.creation_date));
      out->kind = op == 2 ? UpdateKind::kAddLikePost
                          : UpdateKind::kAddLikeComment;
      out->payload = l;
      return util::Status::Ok();
    }
    case 4: {
      if (f.size() != 3 + 5) return util::Status::Corruption("IU4 width");
      core::Forum forum;
      forum.id = ParseId(field(0));
      forum.title = field(1);
      SNB_RETURN_IF_ERROR(ParseDateTimeOr(field(2), &forum.creation_date));
      forum.moderator = ParseId(field(3));
      forum.tags = ParseIds(field(4));
      forum.kind = forum.title.rfind("Wall", 0) == 0
                       ? core::ForumKind::kWall
                   : forum.title.rfind("Album", 0) == 0
                       ? core::ForumKind::kAlbum
                       : core::ForumKind::kGroup;
      out->kind = UpdateKind::kAddForum;
      out->payload = std::move(forum);
      return util::Status::Ok();
    }
    case 5: {
      if (f.size() != 3 + 3) return util::Status::Corruption("IU5 width");
      core::ForumMembership m;
      m.person = ParseId(field(0));
      m.forum = ParseId(field(1));
      SNB_RETURN_IF_ERROR(ParseDateTimeOr(field(2), &m.join_date));
      out->kind = UpdateKind::kAddMembership;
      out->payload = m;
      return util::Status::Ok();
    }
    case 6: {
      if (f.size() != 3 + 12) return util::Status::Corruption("IU6 width");
      core::Post p;
      p.id = ParseId(field(0));
      p.image_file = field(1);
      SNB_RETURN_IF_ERROR(ParseDateTimeOr(field(2), &p.creation_date));
      p.location_ip = field(3);
      p.browser_used = field(4);
      p.language = field(5);
      p.content = field(6);
      p.length = ParseI32(field(7));
      p.creator = ParseId(field(8));
      p.forum = ParseId(field(9));
      p.country = ParseId(field(10));
      p.tags = ParseIds(field(11));
      out->kind = UpdateKind::kAddPost;
      out->payload = std::move(p);
      return util::Status::Ok();
    }
    case 7: {
      if (f.size() != 3 + 11) return util::Status::Corruption("IU7 width");
      core::Comment c;
      c.id = ParseId(field(0));
      SNB_RETURN_IF_ERROR(ParseDateTimeOr(field(1), &c.creation_date));
      c.location_ip = field(2);
      c.browser_used = field(3);
      c.content = field(4);
      c.length = ParseI32(field(5));
      c.creator = ParseId(field(6));
      c.country = ParseId(field(7));
      c.reply_of_post = ParseId(field(8));
      c.reply_of_comment = ParseId(field(9));
      c.tags = ParseIds(field(10));
      out->kind = UpdateKind::kAddComment;
      out->payload = std::move(c);
      return util::Status::Ok();
    }
    case 8: {
      if (f.size() != 3 + 3) return util::Status::Corruption("IU8 width");
      core::Knows k;
      k.person1 = ParseId(field(0));
      k.person2 = ParseId(field(1));
      SNB_RETURN_IF_ERROR(ParseDateTimeOr(field(2), &k.creation_date));
      out->kind = UpdateKind::kAddKnows;
      out->payload = k;
      return util::Status::Ok();
    }
    case 9:   // DEL 1 remove person
    case 12:  // DEL 4 remove forum
    case 14:  // DEL 6 remove post
    case 15: {  // DEL 7 remove comment
      if (f.size() != 3 + 1) {
        return util::Status::Corruption("DEL vertex width");
      }
      Delete d;
      d.a = ParseId(field(0));
      out->kind = static_cast<UpdateKind>(op);
      out->payload = d;
      return util::Status::Ok();
    }
    case 10:  // DEL 2 remove like-post
    case 11:  // DEL 3 remove like-comment
    case 13:  // DEL 5 remove membership
    case 16: {  // DEL 8 remove friendship
      if (f.size() != 3 + 2) {
        return util::Status::Corruption("DEL edge width");
      }
      Delete d;
      d.a = ParseId(field(0));
      d.b = ParseId(field(1));
      out->kind = static_cast<UpdateKind>(op);
      out->payload = d;
      return util::Status::Ok();
    }
    default:
      return util::Status::Corruption("unknown opId " + f[2]);
  }
}

namespace {

util::Status ReadStreamFile(const std::string& path,
                            std::vector<UpdateEvent>* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  std::string buffer;
  char chunk[1 << 16];
  util::Status status = util::Status::Ok();
  while (std::fgets(chunk, sizeof(chunk), f) != nullptr) {
    buffer.append(chunk);
    if (buffer.empty() || buffer.back() != '\n') continue;
    buffer.pop_back();
    UpdateEvent event;
    status = ParseUpdateEventLine(buffer, &event);
    if (!status.ok()) break;
    out->push_back(std::move(event));
    buffer.clear();
  }
  std::fclose(f);
  return status;
}

}  // namespace

util::StatusOr<std::vector<UpdateEvent>> ReadUpdateStreams(
    const std::string& dir) {
  std::vector<UpdateEvent> events;
  SNB_RETURN_IF_ERROR(ReadStreamFile(dir + kPersonStreamFile, &events));
  SNB_RETURN_IF_ERROR(ReadStreamFile(dir + kForumStreamFile, &events));
  // The delete stream is optional: insert-only datasets never write it.
  if (std::filesystem::exists(dir + kDeleteStreamFile)) {
    SNB_RETURN_IF_ERROR(ReadStreamFile(dir + kDeleteStreamFile, &events));
  }
  // Stable merge: in-file order is generation order for equal keys. Kind is
  // the tie-break, so same-timestamp inserts (opIds 1–8) sort before the
  // deletes (9–16) that may reference them.
  std::stable_sort(events.begin(), events.end(),
                   [](const UpdateEvent& a, const UpdateEvent& b) {
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     return static_cast<int>(a.kind) <
                            static_cast<int>(b.kind);
                   });
  return events;
}

}  // namespace snb::datagen

// Spill-backed stable external merge sort, the bounded-memory workhorse of
// the streaming datagen (spec §2.3.3's MapReduce shuffle, rebuilt as a
// single-machine run-sort-merge): records accumulate in an in-memory run
// until the configured budget is exceeded, the run is sorted and spilled to
// a file under `spill_dir`, and Merge() streams all runs back in
// (key1, key2, insertion-order) order.
//
// Records are a fixed (uint64_t, uint64_t) key pair plus an arbitrary byte
// payload — wide enough for "(date, generation index)" id-assignment sorts,
// "(new id, 0) → CSV line" emission sorts, and "(timestamp, kind·2⁵⁶ + seq)
// → stream line" update-event sorts without per-use-case formats.
//
// Crash safety: spill files are written as `<tag>.<n>.spill.tmp` and renamed
// to `.spill` only when complete, so a crash mid-spill leaves a `.tmp` that
// RemoveOrphanSpills() deletes on the next run; the destructor removes this
// sorter's own files. Fail-point sites `datagen.spill.open`,
// `datagen.spill.write` and `datagen.spill.finish` let tests inject errors
// or simulated power loss at each stage.

#ifndef SNB_DATAGEN_EXTERNAL_SORT_H_
#define SNB_DATAGEN_EXTERNAL_SORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace snb::datagen {

class ExternalSorter {
 public:
  struct Options {
    std::string spill_dir;                     // must exist or be creatable
    std::string tag = "sort";                  // spill-file name prefix
    size_t memory_budget_bytes = 32u << 20;    // per-sorter in-memory run cap
  };

  explicit ExternalSorter(Options options);
  ~ExternalSorter();  // removes this sorter's spill files

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Adds one record. Returns an error when a spill write fails (after which
  /// the sorter is unusable).
  SNB_NODISCARD util::Status Add(uint64_t key1, uint64_t key2, std::string_view payload);
  SNB_NODISCARD util::Status Add(uint64_t key1, uint64_t key2) {
    return Add(key1, key2, std::string_view());
  }

  /// Streams every record in ascending (key1, key2, insertion-order). Can be
  /// called once; the sorter is drained afterwards.
  SNB_NODISCARD util::Status Merge(
      const std::function<void(uint64_t key1, uint64_t key2,
                               std::string_view payload)>& emit);

  size_t size() const { return added_; }
  size_t spill_runs() const { return spilled_runs_; }
  size_t buffered_bytes() const { return run_bytes_; }

  /// Deletes every `*.spill` / `*.spill.tmp` file under `dir` — orphans of a
  /// crashed earlier run. Reports how many were removed. Missing `dir` is ok.
  SNB_NODISCARD static util::Status RemoveOrphanSpills(const std::string& dir,
                                         size_t* removed = nullptr);

 private:
  struct Record {
    uint64_t key1;
    uint64_t key2;
    uint64_t seq;
    std::string payload;
  };

  util::Status SpillRun();

  Options options_;
  std::vector<Record> run_;
  std::vector<std::string> runs_;  // live spill-file paths
  size_t spilled_runs_ = 0;        // lifetime spill count (survives Merge)
  size_t run_bytes_ = 0;
  size_t added_ = 0;
  uint64_t next_seq_ = 0;
  bool merged_ = false;
  bool broken_ = false;  // a spill failed; further use is an error
};

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_EXTERNAL_SORT_H_

// CsvComposite / CsvCompositeMergeForeign serializers (spec Tables
// 2.15/2.16): the CsvBasic / CsvMergeForeign layouts with the two
// multi-valued Person attributes (email, speaks) folded into ';'-composite
// columns of the person file, dropping their standalone files.

#include <filesystem>

#include "core/date_time.h"
#include "datagen/serializer.h"
#include "util/csv.h"

namespace snb::datagen {

using core::SocialNetwork;
using util::CsvWriter;
using util::Status;

namespace {

std::string I(core::Id id) { return std::to_string(id); }

Status OpenFile(CsvWriter& w, const std::string& dir, const std::string& sub,
                const std::string& stem,
                const std::vector<std::string>& header) {
  std::error_code ec;
  std::filesystem::create_directories(dir + "/" + sub, ec);
  if (ec) return Status::IoError("cannot create directory " + dir);
  return w.Open(dir + "/" + sub + "/" + stem + "_0_0.csv", header);
}

/// Removes `drop` stems from a base stem list.
std::vector<std::string> Without(const std::vector<std::string>& base,
                                 const std::vector<std::string>& drop) {
  std::vector<std::string> out;
  for (const std::string& stem : base) {
    bool dropped = false;
    for (const std::string& d : drop) {
      if (stem == d) dropped = true;
    }
    if (!dropped) out.push_back(stem);
  }
  return out;
}

const std::vector<std::string> kCompositeDropped = {
    "person_email_emailaddress", "person_speaks_language"};

/// Writes the composite person file (the only file that differs from the
/// non-composite variant besides the two dropped attribute files).
Status WriteCompositePersons(CsvWriter& w, const SocialNetwork& net,
                             const std::string& dir, bool merge_foreign) {
  std::vector<std::string> header = {"id",           "firstName",
                                     "lastName",     "gender",
                                     "birthday",     "creationDate",
                                     "locationIP",   "browserUsed"};
  if (merge_foreign) header.push_back("place");
  header.push_back("language");
  header.push_back("emails");
  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "person", header));
  for (const auto& p : net.persons) {
    std::vector<std::string> row = {I(p.id),
                                    p.first_name,
                                    p.last_name,
                                    p.gender,
                                    core::FormatDate(p.birthday),
                                    core::FormatDateTime(p.creation_date),
                                    p.location_ip,
                                    p.browser_used};
    if (merge_foreign) row.push_back(I(p.city));
    row.push_back(util::JoinMultiValued(p.speaks));
    row.push_back(util::JoinMultiValued(p.emails));
    w.WriteRow(row);
  }
  return w.Close();
}

/// Deletes the two standalone multi-valued attribute files a base-format
/// writer produced, leaving the composite layout.
Status DropAttributeFiles(const std::string& dir) {
  for (const std::string& stem : kCompositeDropped) {
    std::error_code ec;
    std::filesystem::remove(dir + "/dynamic/" + stem + "_0_0.csv", ec);
    if (ec) return Status::IoError("cannot drop " + stem);
  }
  return Status::Ok();
}

}  // namespace

const std::vector<std::string>& CsvCompositeFileStems() {
  static const std::vector<std::string>* kStems = new std::vector<std::string>(
      Without(CsvBasicFileStems(), kCompositeDropped));
  return *kStems;
}

const std::vector<std::string>& CsvCompositeMergeForeignFileStems() {
  static const std::vector<std::string>* kStems = new std::vector<std::string>(
      Without(CsvMergeForeignFileStems(), kCompositeDropped));
  return *kStems;
}

Status WriteCsvComposite(const SocialNetwork& net, const std::string& dir) {
  // The non-person files are identical to CsvBasic; write that layout, then
  // replace the person file and drop the attribute files.
  SNB_RETURN_IF_ERROR(WriteCsvBasic(net, dir));
  SNB_RETURN_IF_ERROR(DropAttributeFiles(dir));
  CsvWriter w;
  return WriteCompositePersons(w, net, dir, /*merge_foreign=*/false);
}

Status WriteCsvCompositeMergeForeign(const SocialNetwork& net,
                                     const std::string& dir) {
  SNB_RETURN_IF_ERROR(WriteCsvMergeForeign(net, dir));
  SNB_RETURN_IF_ERROR(DropAttributeFiles(dir));
  CsvWriter w;
  return WriteCompositePersons(w, net, dir, /*merge_foreign=*/true);
}

// ---------------------------------------------------------------------------
// Turtle (RDF)
// ---------------------------------------------------------------------------

namespace {

/// Escapes a literal for Turtle double-quoted strings.
std::string TtlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Lit(const std::string& text) {
  return "\"" + TtlEscape(text) + "\"";
}

std::string DateTimeLit(core::DateTime dt) {
  return "\"" + core::FormatDateTime(dt) +
         "\"^^xsd:dateTime";
}

constexpr char kPrefixes[] =
    "@prefix snvoc: <http://snb.example.org/vocabulary/> .\n"
    "@prefix sn: <http://snb.example.org/data/> .\n"
    "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\n";

}  // namespace

Status WriteTurtle(const SocialNetwork& net, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create directory " + dir);

  // ---- static part ----------------------------------------------------------
  std::FILE* f =
      std::fopen((dir + "/0_ldbc_socialnet_static_dbp.ttl").c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open static turtle file");
  std::fputs(kPrefixes, f);
  for (const auto& p : net.places) {
    const char* type = p.type == core::PlaceType::kCity      ? "City"
                       : p.type == core::PlaceType::kCountry ? "Country"
                                                             : "Continent";
    std::fprintf(f, "sn:place%lld a snvoc:%s ;\n    snvoc:name %s",
                 static_cast<long long>(p.id), type, Lit(p.name).c_str());
    if (p.part_of != core::kNoId) {
      std::fprintf(f, " ;\n    snvoc:isPartOf sn:place%lld",
                   static_cast<long long>(p.part_of));
    }
    std::fputs(" .\n", f);
  }
  for (const auto& tc : net.tag_classes) {
    std::fprintf(f, "sn:tagclass%lld a snvoc:TagClass ;\n    snvoc:name %s",
                 static_cast<long long>(tc.id), Lit(tc.name).c_str());
    if (tc.parent != core::kNoId) {
      std::fprintf(f, " ;\n    snvoc:isSubclassOf sn:tagclass%lld",
                   static_cast<long long>(tc.parent));
    }
    std::fputs(" .\n", f);
  }
  for (const auto& t : net.tags) {
    std::fprintf(f,
                 "sn:tag%lld a snvoc:Tag ;\n    snvoc:name %s ;\n"
                 "    snvoc:hasType sn:tagclass%lld .\n",
                 static_cast<long long>(t.id), Lit(t.name).c_str(),
                 static_cast<long long>(t.tag_class));
  }
  for (const auto& o : net.organisations) {
    std::fprintf(f,
                 "sn:organisation%lld a snvoc:%s ;\n    snvoc:name %s ;\n"
                 "    snvoc:isLocatedIn sn:place%lld .\n",
                 static_cast<long long>(o.id),
                 o.type == core::OrganisationType::kUniversity ? "University"
                                                               : "Company",
                 Lit(o.name).c_str(), static_cast<long long>(o.place));
  }
  if (std::fclose(f) != 0) return Status::IoError("static turtle close");

  // ---- dynamic part ----------------------------------------------------------
  f = std::fopen((dir + "/0_ldbc_socialnet.ttl").c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open dynamic turtle file");
  std::fputs(kPrefixes, f);
  for (const auto& p : net.persons) {
    std::fprintf(f,
                 "sn:pers%lld a snvoc:Person ;\n    snvoc:firstName %s ;\n"
                 "    snvoc:lastName %s ;\n    snvoc:gender %s ;\n"
                 "    snvoc:creationDate %s ;\n"
                 "    snvoc:isLocatedIn sn:place%lld",
                 static_cast<long long>(p.id), Lit(p.first_name).c_str(),
                 Lit(p.last_name).c_str(), Lit(p.gender).c_str(),
                 DateTimeLit(p.creation_date).c_str(),
                 static_cast<long long>(p.city));
    for (const std::string& email : p.emails) {
      std::fprintf(f, " ;\n    snvoc:email %s", Lit(email).c_str());
    }
    for (const std::string& lang : p.speaks) {
      std::fprintf(f, " ;\n    snvoc:speaks %s", Lit(lang).c_str());
    }
    for (core::Id tag : p.interests) {
      std::fprintf(f, " ;\n    snvoc:hasInterest sn:tag%lld",
                   static_cast<long long>(tag));
    }
    std::fputs(" .\n", f);
  }
  for (const auto& k : net.knows) {
    std::fprintf(f, "sn:pers%lld snvoc:knows sn:pers%lld .\n",
                 static_cast<long long>(k.person1),
                 static_cast<long long>(k.person2));
  }
  for (const auto& forum : net.forums) {
    std::fprintf(f,
                 "sn:forum%lld a snvoc:Forum ;\n    snvoc:title %s ;\n"
                 "    snvoc:hasModerator sn:pers%lld .\n",
                 static_cast<long long>(forum.id),
                 Lit(forum.title).c_str(),
                 static_cast<long long>(forum.moderator));
  }
  for (const auto& p : net.posts) {
    std::fprintf(f,
                 "sn:post%lld a snvoc:Post ;\n    snvoc:creationDate %s ;\n"
                 "    snvoc:hasCreator sn:pers%lld ;\n"
                 "    snvoc:containerOf sn:forum%lld",
                 static_cast<long long>(p.id),
                 DateTimeLit(p.creation_date).c_str(),
                 static_cast<long long>(p.creator),
                 static_cast<long long>(p.forum));
    if (!p.content.empty()) {
      std::fprintf(f, " ;\n    snvoc:content %s", Lit(p.content).c_str());
    }
    for (core::Id tag : p.tags) {
      std::fprintf(f, " ;\n    snvoc:hasTag sn:tag%lld",
                   static_cast<long long>(tag));
    }
    std::fputs(" .\n", f);
  }
  for (const auto& c : net.comments) {
    std::fprintf(f,
                 "sn:comm%lld a snvoc:Comment ;\n    snvoc:creationDate %s ;\n"
                 "    snvoc:hasCreator sn:pers%lld ;\n    snvoc:replyOf sn:%s%lld .\n",
                 static_cast<long long>(c.id),
                 DateTimeLit(c.creation_date).c_str(),
                 static_cast<long long>(c.creator),
                 c.reply_of_post != core::kNoId ? "post" : "comm",
                 static_cast<long long>(c.reply_of_post != core::kNoId
                                            ? c.reply_of_post
                                            : c.reply_of_comment));
  }
  for (const auto& l : net.likes) {
    std::fprintf(f, "sn:pers%lld snvoc:likes sn:%s%lld .\n",
                 static_cast<long long>(l.person), l.is_post ? "post" : "comm",
                 static_cast<long long>(l.message));
  }
  if (std::fclose(f) != 0) return Status::IoError("dynamic turtle close");
  return Status::Ok();
}

}  // namespace snb::datagen

#include "datagen/flashmob.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace snb::datagen {

namespace {
constexpr uint64_t kStreamFlashmob = 401;
}  // namespace

FlashmobSchedule::FlashmobSchedule(const DatagenConfig& config,
                                   const Dictionaries& dicts)
    : sim_start_(config.SimulationStart()), sim_end_(config.SimulationEnd()) {
  util::Rng rng(config.seed, kStreamFlashmob);
  // Event count grows with network size: roughly one event per 100 persons,
  // at least one per simulated month.
  size_t num_events =
      std::max<size_t>(static_cast<size_t>(config.num_years) * 12,
                       config.num_persons / 100);
  events_.reserve(num_events);
  double acc = 0;
  for (size_t e = 0; e < num_events; ++e) {
    FlashmobEvent ev;
    ev.tag = dicts.SampleUniformTag(rng);
    ev.time = sim_start_ + rng.UniformInt(0, sim_end_ - sim_start_ - 1);
    // Heavy-tailed repercussion: most events are small, a few are global.
    ev.intensity = static_cast<double>(rng.PowerLaw(1, 100, 2.0));
    events_.push_back(ev);
    acc += ev.intensity;
    intensity_cdf_.push_back(acc);
  }
  for (double& c : intensity_cdf_) c /= acc;
  intensity_cdf_.back() = 1.0;
}

const FlashmobEvent& FlashmobSchedule::SampleEvent(util::Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(intensity_cdf_.begin(), intensity_cdf_.end(), u);
  return events_[static_cast<size_t>(it - intensity_cdf_.begin())];
}

core::DateTime FlashmobSchedule::SamplePostTime(
    util::Rng& rng, const FlashmobEvent& event,
    core::DateTime not_before) const {
  // Two-sided exponential around the peak; scale grows mildly with
  // intensity (big events reverberate longer). Mean offset ≈ 6–18 hours.
  double scale_ms = (6.0 + std::log1p(event.intensity) * 4.0) *
                    static_cast<double>(core::kMillisPerHour);
  double u = rng.NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  double magnitude = -std::log(u) * scale_ms;
  double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
  core::DateTime t =
      event.time + static_cast<core::DateTime>(sign * magnitude);
  if (t < not_before) t = not_before;
  if (t >= sim_end_) t = sim_end_ - 1;
  return t;
}

}  // namespace snb::datagen

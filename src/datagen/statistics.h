// Dataset statistics: the measurable artefacts behind spec Table 2.12
// (node/edge counts), the Facebook-like degree distribution, the flashmob
// activity timeline, and the homophily of the knows graph. Consumed by
// tests and by the table/figure regenerator benches.

#ifndef SNB_DATAGEN_STATISTICS_H_
#define SNB_DATAGEN_STATISTICS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/schema.h"

namespace snb::datagen {

struct DatasetStatistics {
  size_t num_persons = 0;
  size_t num_forums = 0;
  size_t num_posts = 0;
  size_t num_comments = 0;
  size_t num_knows = 0;
  size_t num_likes = 0;
  size_t num_memberships = 0;
  size_t num_nodes = 0;  // Table 2.12 definition: all entities
  size_t num_edges = 0;  // Table 2.12 definition: all relation rows

  double avg_degree = 0;  // knows graph
  uint32_t max_degree = 0;

  /// Degree histogram, log2 buckets: bucket b counts persons with degree in
  /// [2^b, 2^(b+1)).
  std::vector<size_t> degree_histogram_log2;

  /// Homophily: fraction of knows edges whose endpoints share…
  double frac_same_country = 0;
  double frac_same_university = 0;
  double frac_common_interest = 0;

  /// Expected values of the same fractions under random pairing (baseline
  /// for the correlation figure).
  double random_same_country = 0;
  double random_same_university = 0;
  double random_common_interest = 0;

  /// Posts per simulated day (flashmob spike figure).
  std::map<core::Date, size_t> posts_per_day;
};

/// Computes all statistics over a (bulk) network.
DatasetStatistics ComputeStatistics(const core::SocialNetwork& net);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_STATISTICS_H_

// Update-stream serialization (spec §2.3.4.3, Tables 2.17–2.18).
//
// Two files: updateStream_0_0_person.csv carries IU 1 (add person) and
// updateStream_0_0_forum.csv carries IU 2–8. Each line is
// `t|t_d|opId|<operation fields…>` where t is the simulation timestamp and
// t_d the dependency timestamp (latest creation among referenced entities).
//
// Deep deletes (DEL 1–8, arXiv 2307.04820) travel in a third, optional file
// updateStream_0_0_delete.csv with opIds 9–16 in the same line dialect.
// The file exists only when the generator emitted deletes, so insert-only
// runs stay byte-identical to the classic two-file layout.

#ifndef SNB_DATAGEN_UPDATE_STREAM_H_
#define SNB_DATAGEN_UPDATE_STREAM_H_

#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "util/status.h"

namespace snb::datagen {

/// Serializes one update event into its Table 2.18 field list (excluding the
/// leading t|t_d|opId triple).
std::vector<std::string> UpdateEventFields(const UpdateEvent& event);

/// Formats a whole event as one stream line `t|t_d|opId|fields…` (no
/// trailing newline). Shared by the update-stream files and the WAL's
/// record payloads, so both speak the same Table 2.18 dialect.
std::string FormatUpdateEventLine(const UpdateEvent& event);

/// Parses one stream line; inverse of FormatUpdateEventLine (exact for
/// generated data, which is millisecond-precise).
util::Status ParseUpdateEventLine(const std::string& line, UpdateEvent* out);

/// Writes the stream files under `dir` (the delete file only when `updates`
/// contains delete events).
util::Status WriteUpdateStreams(const std::vector<UpdateEvent>& updates,
                                const std::string& dir);

/// Reads the stream files back into a single timestamp-ordered event list —
/// the driver-side consumer of the Datagen artefacts. Inverse of
/// WriteUpdateStreams up to sub-millisecond text truncation (exact for
/// generated data, which is millisecond-precise). Same-timestamp inserts
/// sort before deletes that may reference them.
util::StatusOr<std::vector<UpdateEvent>> ReadUpdateStreams(
    const std::string& dir);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_UPDATE_STREAM_H_

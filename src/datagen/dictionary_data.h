// Raw embedded dictionary data (synthetic stand-in for the DBpedia resource
// files of spec Table 2.11). Data-only: the property-dictionary logic lives
// in dictionaries.h/.cc.

#ifndef SNB_DATAGEN_DICTIONARY_DATA_H_
#define SNB_DATAGEN_DICTIONARY_DATA_H_

#include <cstddef>
#include <cstdint>

namespace snb::datagen::data {

/// One country row: name, continent, relative population weight (millions),
/// cities (nullptr-terminated), languages (nullptr-terminated).
struct CountryRow {
  const char* name;
  const char* continent;
  double population;          // in millions; used as the sampling weight
  const char* const* cities;  // nullptr-terminated
  const char* const* languages;
};

extern const CountryRow kCountries[];
extern const size_t kNumCountries;

extern const char* const kContinents[];
extern const size_t kNumContinents;

extern const char* const kMaleNames[];
extern const size_t kNumMaleNames;
extern const char* const kFemaleNames[];
extern const size_t kNumFemaleNames;
extern const char* const kSurnames[];
extern const size_t kNumSurnames;

/// Browser dictionary with usage probabilities (sums to 1).
struct BrowserRow {
  const char* name;
  double probability;
};
extern const BrowserRow kBrowsers[];
extern const size_t kNumBrowsers;

extern const char* const kEmailProviders[];
extern const size_t kNumEmailProviders;

/// Company-name sectors, composed with country names.
extern const char* const kCompanySectors[];
extern const size_t kNumCompanySectors;

/// One tag-class row of the hierarchy; parent == nullptr marks the root.
struct TagClassRow {
  const char* name;
  const char* parent;
};
extern const TagClassRow kTagClasses[];
extern const size_t kNumTagClasses;

/// One tag row: name and the (leaf) tag class it belongs to.
struct TagRow {
  const char* name;
  const char* tag_class;
};
extern const TagRow kTags[];
extern const size_t kNumTags;

/// Vocabulary for synthesizing message text (the "Tag Text" resource).
extern const char* const kTextWords[];
extern const size_t kNumTextWords;

}  // namespace snb::datagen::data

#endif  // SNB_DATAGEN_DICTIONARY_DATA_H_

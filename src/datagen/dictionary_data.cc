#include "datagen/dictionary_data.h"

namespace snb::datagen::data {

namespace {

const char* const kCitiesChina[] = {"Beijing", "Shanghai", "Guangzhou",
                                    "Shenzhen", "Chengdu", "Wuhan",
                                    "Xian", "Hangzhou", nullptr};
const char* const kLangsChina[] = {"zh", "en", nullptr};

const char* const kCitiesIndia[] = {"Mumbai", "Delhi", "Bangalore",
                                    "Chennai", "Kolkata", "Hyderabad",
                                    "Pune", nullptr};
const char* const kLangsIndia[] = {"hi", "en", nullptr};

const char* const kCitiesUsa[] = {"New York", "Los Angeles", "Chicago",
                                  "Houston", "Philadelphia", "San Francisco",
                                  "Seattle", "Boston", nullptr};
const char* const kLangsUsa[] = {"en", nullptr};

const char* const kCitiesIndonesia[] = {"Jakarta", "Surabaya", "Bandung",
                                        "Medan", nullptr};
const char* const kLangsIndonesia[] = {"id", "en", nullptr};

const char* const kCitiesBrazil[] = {"Sao Paulo", "Rio de Janeiro",
                                     "Brasilia", "Salvador", "Fortaleza",
                                     nullptr};
const char* const kLangsBrazil[] = {"pt", "en", nullptr};

const char* const kCitiesPakistan[] = {"Karachi", "Lahore", "Faisalabad",
                                       nullptr};
const char* const kLangsPakistan[] = {"ur", "en", nullptr};

const char* const kCitiesNigeria[] = {"Lagos", "Kano", "Ibadan", "Abuja",
                                      nullptr};
const char* const kLangsNigeria[] = {"en", nullptr};

const char* const kCitiesRussia[] = {"Moscow", "Saint Petersburg",
                                     "Novosibirsk", "Yekaterinburg", nullptr};
const char* const kLangsRussia[] = {"ru", "en", nullptr};

const char* const kCitiesJapan[] = {"Tokyo", "Osaka", "Nagoya", "Sapporo",
                                    "Fukuoka", nullptr};
const char* const kLangsJapan[] = {"ja", "en", nullptr};

const char* const kCitiesMexico[] = {"Mexico City", "Guadalajara",
                                     "Monterrey", "Puebla", nullptr};
const char* const kLangsMexico[] = {"es", "en", nullptr};

const char* const kCitiesGermany[] = {"Berlin", "Hamburg", "Munich",
                                      "Cologne", "Frankfurt", nullptr};
const char* const kLangsGermany[] = {"de", "en", nullptr};

const char* const kCitiesFrance[] = {"Paris", "Marseille", "Lyon",
                                     "Toulouse", "Nice", nullptr};
const char* const kLangsFrance[] = {"fr", "en", nullptr};

const char* const kCitiesUk[] = {"London", "Birmingham", "Manchester",
                                 "Glasgow", "Leeds", nullptr};
const char* const kLangsUk[] = {"en", nullptr};

const char* const kCitiesItaly[] = {"Rome", "Milan", "Naples", "Turin",
                                    nullptr};
const char* const kLangsItaly[] = {"it", "en", nullptr};

const char* const kCitiesSpain[] = {"Madrid", "Barcelona", "Valencia",
                                    "Seville", nullptr};
const char* const kLangsSpain[] = {"es", "en", nullptr};

const char* const kCitiesArgentina[] = {"Buenos Aires", "Cordoba",
                                        "Rosario", nullptr};
const char* const kLangsArgentina[] = {"es", "en", nullptr};

const char* const kCitiesCanada[] = {"Toronto", "Montreal", "Vancouver",
                                     "Calgary", nullptr};
const char* const kLangsCanada[] = {"en", "fr", nullptr};

const char* const kCitiesAustralia[] = {"Sydney", "Melbourne", "Brisbane",
                                        "Perth", nullptr};
const char* const kLangsAustralia[] = {"en", nullptr};

const char* const kCitiesEgypt[] = {"Cairo", "Alexandria", "Giza", nullptr};
const char* const kLangsEgypt[] = {"ar", "en", nullptr};

const char* const kCitiesTurkey[] = {"Istanbul", "Ankara", "Izmir", nullptr};
const char* const kLangsTurkey[] = {"tr", "en", nullptr};

const char* const kCitiesVietnam[] = {"Ho Chi Minh City", "Hanoi",
                                      "Da Nang", nullptr};
const char* const kLangsVietnam[] = {"vi", "en", nullptr};

const char* const kCitiesPhilippines[] = {"Manila", "Quezon City", "Davao",
                                          nullptr};
const char* const kLangsPhilippines[] = {"tl", "en", nullptr};

const char* const kCitiesSouthKorea[] = {"Seoul", "Busan", "Incheon",
                                         nullptr};
const char* const kLangsSouthKorea[] = {"ko", "en", nullptr};

const char* const kCitiesNetherlands[] = {"Amsterdam", "Rotterdam",
                                          "The Hague", "Utrecht", nullptr};
const char* const kLangsNetherlands[] = {"nl", "en", nullptr};

const char* const kCitiesPoland[] = {"Warsaw", "Krakow", "Wroclaw", nullptr};
const char* const kLangsPoland[] = {"pl", "en", nullptr};

const char* const kCitiesSweden[] = {"Stockholm", "Gothenburg", "Malmo",
                                     nullptr};
const char* const kLangsSweden[] = {"sv", "en", nullptr};

const char* const kCitiesKenya[] = {"Nairobi", "Mombasa", nullptr};
const char* const kLangsKenya[] = {"sw", "en", nullptr};

const char* const kCitiesColombia[] = {"Bogota", "Medellin", "Cali",
                                       nullptr};
const char* const kLangsColombia[] = {"es", "en", nullptr};

const char* const kCitiesChile[] = {"Santiago", "Valparaiso", nullptr};
const char* const kLangsChile[] = {"es", "en", nullptr};

const char* const kCitiesHungary[] = {"Budapest", "Debrecen", "Szeged",
                                      nullptr};
const char* const kLangsHungary[] = {"hu", "en", nullptr};

const char* const kCitiesNewZealand[] = {"Auckland", "Wellington",
                                         "Christchurch", nullptr};
const char* const kLangsNewZealand[] = {"en", nullptr};

const char* const kCitiesSouthAfrica[] = {"Johannesburg", "Cape Town",
                                          "Durban", nullptr};
const char* const kLangsSouthAfrica[] = {"en", "af", nullptr};

}  // namespace

// Population weights in millions; the Countries resource file of Table 2.11.
const CountryRow kCountries[] = {
    {"China", "Asia", 1370, kCitiesChina, kLangsChina},
    {"India", "Asia", 1300, kCitiesIndia, kLangsIndia},
    {"United States", "North America", 320, kCitiesUsa, kLangsUsa},
    {"Indonesia", "Asia", 260, kCitiesIndonesia, kLangsIndonesia},
    {"Brazil", "South America", 205, kCitiesBrazil, kLangsBrazil},
    {"Pakistan", "Asia", 200, kCitiesPakistan, kLangsPakistan},
    {"Nigeria", "Africa", 185, kCitiesNigeria, kLangsNigeria},
    {"Russia", "Europe", 145, kCitiesRussia, kLangsRussia},
    {"Japan", "Asia", 127, kCitiesJapan, kLangsJapan},
    {"Mexico", "North America", 120, kCitiesMexico, kLangsMexico},
    {"Philippines", "Asia", 103, kCitiesPhilippines, kLangsPhilippines},
    {"Vietnam", "Asia", 93, kCitiesVietnam, kLangsVietnam},
    {"Egypt", "Africa", 92, kCitiesEgypt, kLangsEgypt},
    {"Germany", "Europe", 82, kCitiesGermany, kLangsGermany},
    {"Turkey", "Asia", 79, kCitiesTurkey, kLangsTurkey},
    {"France", "Europe", 67, kCitiesFrance, kLangsFrance},
    {"United Kingdom", "Europe", 65, kCitiesUk, kLangsUk},
    {"Italy", "Europe", 60, kCitiesItaly, kLangsItaly},
    {"South Africa", "Africa", 55, kCitiesSouthAfrica, kLangsSouthAfrica},
    {"South Korea", "Asia", 51, kCitiesSouthKorea, kLangsSouthKorea},
    {"Colombia", "South America", 48, kCitiesColombia, kLangsColombia},
    {"Spain", "Europe", 46, kCitiesSpain, kLangsSpain},
    {"Argentina", "South America", 43, kCitiesArgentina, kLangsArgentina},
    {"Kenya", "Africa", 47, kCitiesKenya, kLangsKenya},
    {"Poland", "Europe", 38, kCitiesPoland, kLangsPoland},
    {"Canada", "North America", 36, kCitiesCanada, kLangsCanada},
    {"Australia", "Oceania", 24, kCitiesAustralia, kLangsAustralia},
    {"Chile", "South America", 18, kCitiesChile, kLangsChile},
    {"Netherlands", "Europe", 17, kCitiesNetherlands, kLangsNetherlands},
    {"Sweden", "Europe", 10, kCitiesSweden, kLangsSweden},
    {"Hungary", "Europe", 10, kCitiesHungary, kLangsHungary},
    {"New Zealand", "Oceania", 5, kCitiesNewZealand, kLangsNewZealand},
};
const size_t kNumCountries = sizeof(kCountries) / sizeof(kCountries[0]);

const char* const kContinents[] = {"Asia",          "Europe",
                                   "North America", "South America",
                                   "Africa",        "Oceania"};
const size_t kNumContinents = sizeof(kContinents) / sizeof(kContinents[0]);

const char* const kMaleNames[] = {
    "James",   "John",    "Robert",  "Michael", "David",  "Wei",
    "Jun",     "Hao",     "Lei",     "Chen",    "Rahul",  "Amit",
    "Raj",     "Arjun",   "Vikram",  "Carlos",  "Jose",   "Luis",
    "Miguel",  "Juan",    "Ahmed",   "Mohamed", "Ali",    "Omar",
    "Hassan",  "Hans",    "Karl",    "Otto",    "Fritz",  "Jurgen",
    "Pierre",  "Jean",    "Michel",  "Louis",   "Andre",  "Ivan",
    "Dmitry",  "Sergey",  "Alexei",  "Nikolai", "Hiroshi", "Takeshi",
    "Kenji",   "Yuki",    "Akira",   "Emeka",   "Chidi",  "Oluwaseun",
    "Kwame",   "Tunde",   "Lars",    "Erik",    "Anders", "Bjorn",
    "Sven",    "Marco",   "Giovanni", "Luca",   "Paolo",  "Antonio",
};
const size_t kNumMaleNames = sizeof(kMaleNames) / sizeof(kMaleNames[0]);

const char* const kFemaleNames[] = {
    "Mary",     "Patricia", "Jennifer", "Linda",   "Elizabeth", "Mei",
    "Li",       "Xia",      "Yan",      "Jing",    "Priya",     "Ananya",
    "Divya",    "Kavya",    "Sita",     "Maria",   "Ana",       "Carmen",
    "Lucia",    "Sofia",    "Fatima",   "Aisha",   "Layla",     "Zainab",
    "Noor",     "Anna",     "Greta",    "Ingrid",  "Ursula",    "Heidi",
    "Marie",    "Sophie",   "Camille",  "Claire",  "Julie",     "Olga",
    "Natasha",  "Svetlana", "Irina",    "Elena",   "Yuko",      "Sakura",
    "Hana",     "Aiko",     "Emi",      "Ngozi",   "Amara",     "Chiamaka",
    "Ada",      "Folake",   "Astrid",   "Freya",   "Sigrid",    "Linnea",
    "Elsa",     "Giulia",   "Francesca", "Chiara", "Valentina", "Alessandra",
};
const size_t kNumFemaleNames = sizeof(kFemaleNames) / sizeof(kFemaleNames[0]);

const char* const kSurnames[] = {
    "Smith",    "Johnson",  "Williams", "Brown",    "Jones",    "Wang",
    "Li",       "Zhang",    "Liu",      "Chen",     "Yang",     "Huang",
    "Singh",    "Kumar",    "Sharma",   "Patel",    "Gupta",    "Khan",
    "Garcia",   "Rodriguez", "Martinez", "Hernandez", "Lopez",  "Gonzalez",
    "Silva",    "Santos",   "Oliveira", "Souza",    "Pereira",  "Costa",
    "Mueller",  "Schmidt",  "Schneider", "Fischer", "Weber",    "Meyer",
    "Martin",   "Bernard",  "Dubois",   "Thomas",   "Robert",   "Petit",
    "Ivanov",   "Smirnov",  "Kuznetsov", "Popov",   "Volkov",   "Petrov",
    "Sato",     "Suzuki",   "Takahashi", "Tanaka",  "Watanabe", "Ito",
    "Kim",      "Lee",      "Park",     "Choi",     "Jung",     "Kang",
    "Nguyen",   "Tran",     "Pham",     "Hoang",    "Okafor",   "Adeyemi",
    "Okonkwo",  "Eze",      "Abubakar", "Mohammed", "Andersson", "Johansson",
    "Karlsson", "Nilsson",  "Eriksson", "Larsson",  "Rossi",    "Russo",
    "Ferrari",  "Esposito", "Bianchi",  "Romano",   "Kowalski", "Nowak",
    "Wisniewski", "Kaminski", "Yilmaz",  "Kaya",    "Demir",    "Celik",
    "Nagy",     "Kovacs",   "Toth",     "Szabo",    "Horvath",  "Varga",
    "De Jong",  "Jansen",   "De Vries", "Van den Berg", "Bakker", "Visser",
};
const size_t kNumSurnames = sizeof(kSurnames) / sizeof(kSurnames[0]);

// The Browsers resource file (Table 2.11): probabilities sum to 1.
const BrowserRow kBrowsers[] = {
    {"Chrome", 0.47},  {"Firefox", 0.24}, {"Internet Explorer", 0.13},
    {"Safari", 0.09},  {"Opera", 0.07},
};
const size_t kNumBrowsers = sizeof(kBrowsers) / sizeof(kBrowsers[0]);

const char* const kEmailProviders[] = {
    "gmail.com",  "yahoo.com",   "hotmail.com", "outlook.com",
    "gmx.com",    "zoho.com",    "mail.com",    "yandex.ru",
    "163.com",    "qq.com",      "web.de",      "orange.fr",
};
const size_t kNumEmailProviders =
    sizeof(kEmailProviders) / sizeof(kEmailProviders[0]);

const char* const kCompanySectors[] = {
    "Airlines", "Software",  "Motors",   "Bank",     "Foods",
    "Energy",   "Telecom",   "Media",    "Pharma",   "Logistics",
    "Steel",    "Insurance", "Retail",   "Chemical", "Shipping",
};
const size_t kNumCompanySectors =
    sizeof(kCompanySectors) / sizeof(kCompanySectors[0]);

// The Tag Classes / Tag Hierarchies resource files: a DBpedia-like ontology.
const TagClassRow kTagClasses[] = {
    {"Thing", nullptr},
    {"Agent", "Thing"},
    {"Person", "Agent"},
    {"Musician", "Person"},
    {"Politician", "Person"},
    {"Athlete", "Person"},
    {"Writer", "Person"},
    {"Scientist", "Person"},
    {"Organisation", "Agent"},
    {"Band", "Organisation"},
    {"Work", "Thing"},
    {"Album", "Work"},
    {"Film", "Work"},
    {"Book", "Work"},
    {"MusicGenre", "Work"},
    {"Sport", "Thing"},
    {"Technology", "Thing"},
    {"Event", "Thing"},
    {"Cuisine", "Thing"},
};
const size_t kNumTagClasses = sizeof(kTagClasses) / sizeof(kTagClasses[0]);

const TagRow kTags[] = {
    // Musicians
    {"Wolfgang Amadeus Mozart", "Musician"},
    {"Ludwig van Beethoven", "Musician"},
    {"Johann Sebastian Bach", "Musician"},
    {"Elvis Presley", "Musician"},
    {"John Lennon", "Musician"},
    {"David Bowie", "Musician"},
    {"Bob Dylan", "Musician"},
    {"Frank Sinatra", "Musician"},
    {"Aretha Franklin", "Musician"},
    {"Jimi Hendrix", "Musician"},
    {"Miles Davis", "Musician"},
    {"Ravi Shankar", "Musician"},
    {"Umm Kulthum", "Musician"},
    {"Fela Kuti", "Musician"},
    {"Edith Piaf", "Musician"},
    {"Enrico Caruso", "Musician"},
    {"Maria Callas", "Musician"},
    {"Freddie Mercury", "Musician"},
    {"Johnny Cash", "Musician"},
    {"Nina Simone", "Musician"},
    // Politicians
    {"Abraham Lincoln", "Politician"},
    {"Winston Churchill", "Politician"},
    {"Mahatma Gandhi", "Politician"},
    {"Nelson Mandela", "Politician"},
    {"Napoleon Bonaparte", "Politician"},
    {"Julius Caesar", "Politician"},
    {"George Washington", "Politician"},
    {"Otto von Bismarck", "Politician"},
    {"Simon Bolivar", "Politician"},
    {"Sun Yat-sen", "Politician"},
    {"Kwame Nkrumah", "Politician"},
    {"Jawaharlal Nehru", "Politician"},
    {"Charles de Gaulle", "Politician"},
    {"Ataturk", "Politician"},
    {"Jose de San Martin", "Politician"},
    {"Queen Victoria", "Politician"},
    {"Catherine the Great", "Politician"},
    {"Emperor Meiji", "Politician"},
    // Athletes
    {"Pele", "Athlete"},
    {"Diego Maradona", "Athlete"},
    {"Muhammad Ali", "Athlete"},
    {"Michael Jordan", "Athlete"},
    {"Usain Bolt", "Athlete"},
    {"Serena Williams", "Athlete"},
    {"Roger Federer", "Athlete"},
    {"Sachin Tendulkar", "Athlete"},
    {"Jesse Owens", "Athlete"},
    {"Nadia Comaneci", "Athlete"},
    {"Ayrton Senna", "Athlete"},
    {"Babe Ruth", "Athlete"},
    {"Johan Cruyff", "Athlete"},
    {"Zinedine Zidane", "Athlete"},
    // Writers
    {"William Shakespeare", "Writer"},
    {"Leo Tolstoy", "Writer"},
    {"Fyodor Dostoevsky", "Writer"},
    {"Jane Austen", "Writer"},
    {"Charles Dickens", "Writer"},
    {"Gabriel Garcia Marquez", "Writer"},
    {"Rabindranath Tagore", "Writer"},
    {"Chinua Achebe", "Writer"},
    {"Victor Hugo", "Writer"},
    {"Johann Wolfgang von Goethe", "Writer"},
    {"Miguel de Cervantes", "Writer"},
    {"Franz Kafka", "Writer"},
    {"Virginia Woolf", "Writer"},
    {"Haruki Murakami", "Writer"},
    {"Naguib Mahfouz", "Writer"},
    {"Pablo Neruda", "Writer"},
    // Scientists
    {"Albert Einstein", "Scientist"},
    {"Isaac Newton", "Scientist"},
    {"Marie Curie", "Scientist"},
    {"Charles Darwin", "Scientist"},
    {"Nikola Tesla", "Scientist"},
    {"Galileo Galilei", "Scientist"},
    {"Ada Lovelace", "Scientist"},
    {"Alan Turing", "Scientist"},
    {"Srinivasa Ramanujan", "Scientist"},
    {"Dmitri Mendeleev", "Scientist"},
    {"Louis Pasteur", "Scientist"},
    {"Niels Bohr", "Scientist"},
    {"Rosalind Franklin", "Scientist"},
    {"Ibn al-Haytham", "Scientist"},
    // Bands
    {"The Beatles", "Band"},
    {"The Rolling Stones", "Band"},
    {"Queen", "Band"},
    {"Pink Floyd", "Band"},
    {"Led Zeppelin", "Band"},
    {"ABBA", "Band"},
    {"U2", "Band"},
    {"Radiohead", "Band"},
    {"Nirvana", "Band"},
    {"Metallica", "Band"},
    {"The Beach Boys", "Band"},
    {"Kraftwerk", "Band"},
    // Albums
    {"Abbey Road", "Album"},
    {"The Dark Side of the Moon", "Album"},
    {"Thriller", "Album"},
    {"Kind of Blue", "Album"},
    {"Pet Sounds", "Album"},
    {"Rumours", "Album"},
    {"Nevermind", "Album"},
    {"OK Computer", "Album"},
    // Films
    {"Citizen Kane", "Film"},
    {"Casablanca", "Film"},
    {"The Godfather", "Film"},
    {"Seven Samurai", "Film"},
    {"Metropolis", "Film"},
    {"La Dolce Vita", "Film"},
    {"Bicycle Thieves", "Film"},
    {"Rashomon", "Film"},
    {"The Wizard of Oz", "Film"},
    {"Battleship Potemkin", "Film"},
    {"Pather Panchali", "Film"},
    {"City Lights", "Film"},
    // Books
    {"War and Peace", "Book"},
    {"Don Quixote", "Book"},
    {"Moby-Dick", "Book"},
    {"Pride and Prejudice", "Book"},
    {"One Hundred Years of Solitude", "Book"},
    {"Crime and Punishment", "Book"},
    {"The Odyssey", "Book"},
    {"Things Fall Apart", "Book"},
    {"The Tale of Genji", "Book"},
    {"Les Miserables", "Book"},
    // Music genres
    {"Jazz", "MusicGenre"},
    {"Blues", "MusicGenre"},
    {"Rock and roll", "MusicGenre"},
    {"Hip hop", "MusicGenre"},
    {"Reggae", "MusicGenre"},
    {"Classical music", "MusicGenre"},
    {"Electronic music", "MusicGenre"},
    {"Folk music", "MusicGenre"},
    {"Samba", "MusicGenre"},
    {"Flamenco", "MusicGenre"},
    {"K-pop", "MusicGenre"},
    {"Bollywood music", "MusicGenre"},
    // Sports
    {"Football", "Sport"},
    {"Basketball", "Sport"},
    {"Cricket", "Sport"},
    {"Tennis", "Sport"},
    {"Baseball", "Sport"},
    {"Rugby", "Sport"},
    {"Formula One", "Sport"},
    {"Chess", "Sport"},
    {"Table tennis", "Sport"},
    {"Volleyball", "Sport"},
    {"Swimming", "Sport"},
    {"Athletics", "Sport"},
    {"Boxing", "Sport"},
    {"Golf", "Sport"},
    // Technology
    {"Artificial intelligence", "Technology"},
    {"World Wide Web", "Technology"},
    {"Smartphone", "Technology"},
    {"Linux", "Technology"},
    {"Photography", "Technology"},
    {"Space exploration", "Technology"},
    {"Renewable energy", "Technology"},
    {"Robotics", "Technology"},
    {"Cryptography", "Technology"},
    {"Quantum computing", "Technology"},
    {"3D printing", "Technology"},
    {"Electric vehicles", "Technology"},
    // Events
    {"Olympic Games", "Event"},
    {"FIFA World Cup", "Event"},
    {"Carnival of Rio", "Event"},
    {"Oktoberfest", "Event"},
    {"Diwali", "Event"},
    {"Chinese New Year", "Event"},
    {"Eurovision Song Contest", "Event"},
    {"Tour de France", "Event"},
    {"Cannes Film Festival", "Event"},
    {"Burning Man", "Event"},
    // Cuisines
    {"Sushi", "Cuisine"},
    {"Pizza", "Cuisine"},
    {"Curry", "Cuisine"},
    {"Tacos", "Cuisine"},
    {"Dim sum", "Cuisine"},
    {"Paella", "Cuisine"},
    {"Croissant", "Cuisine"},
    {"Kebab", "Cuisine"},
    {"Pho", "Cuisine"},
    {"Jollof rice", "Cuisine"},
    {"Borscht", "Cuisine"},
    {"Feijoada", "Cuisine"},
};
const size_t kNumTags = sizeof(kTags) / sizeof(kTags[0]);

// Vocabulary for message-text synthesis (the Tag Text resource). Neutral
// filler words; the generator mixes them with the tag name.
const char* const kTextWords[] = {
    "about",   "maybe",   "really",   "photo",    "great",    "amazing",
    "today",   "think",   "people",   "world",    "found",    "interesting",
    "article", "read",    "watch",    "listen",   "concert",  "game",
    "match",   "season",  "history",  "culture",  "classic",  "modern",
    "favorite", "best",   "ever",     "never",    "always",   "sometimes",
    "friend",  "family",  "travel",   "visit",    "city",     "country",
    "music",   "film",    "book",     "story",    "science",  "discovery",
    "news",    "share",   "thanks",   "love",     "enjoy",    "remember",
    "moment",  "beautiful", "wonderful", "incredible", "opinion", "question",
    "answer",  "discussion", "review", "recommend", "weekend", "morning",
    "evening", "night",   "year",     "month",    "week",     "day",
};
const size_t kNumTextWords = sizeof(kTextWords) / sizeof(kTextWords[0]);

}  // namespace snb::datagen::data

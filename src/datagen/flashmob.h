// Flashmob events (spec §2.3.3.2): globally generated events with a tag, an
// occurrence time and an intensity; a fraction of all posts clusters around
// these events, reproducing the spiky time-correlation of real social
// activity (volume model after Leskovec et al. [17]). The remaining posts
// are uniformly distributed over the simulated period.

#ifndef SNB_DATAGEN_FLASHMOB_H_
#define SNB_DATAGEN_FLASHMOB_H_

#include <cstdint>
#include <vector>

#include "core/date_time.h"
#include "datagen/config.h"
#include "datagen/dictionaries.h"
#include "util/rng.h"

namespace snb::datagen {

struct FlashmobEvent {
  size_t tag = 0;            // tag index
  core::DateTime time = 0;   // peak instant
  double intensity = 1.0;    // repercussion; sampling weight
};

/// The global flashmob timetable of one Datagen run.
class FlashmobSchedule {
 public:
  FlashmobSchedule(const DatagenConfig& config, const Dictionaries& dicts);

  const std::vector<FlashmobEvent>& events() const { return events_; }

  /// Picks an event, weighted by intensity.
  const FlashmobEvent& SampleEvent(util::Rng& rng) const;

  /// Samples a post creation instant clustered around the event peak
  /// (two-sided exponential decay, hours-scale), clamped to
  /// [not_before, sim_end).
  core::DateTime SamplePostTime(util::Rng& rng, const FlashmobEvent& event,
                                core::DateTime not_before) const;

 private:
  core::DateTime sim_start_;
  core::DateTime sim_end_;
  std::vector<FlashmobEvent> events_;
  std::vector<double> intensity_cdf_;
};

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_FLASHMOB_H_

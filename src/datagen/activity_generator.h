// Person-activity generation (spec Fig. 2.2, step "user activity"): forums
// (personal walls, interest groups, image albums), memberships, posts with
// flashmob/uniform time correlation, comment reply trees, likes, and
// tag assignments enriched through the tag-correlation matrix.
//
// People with more friends are more active (more posts, larger comment
// threads), reproducing the degree–activity correlation of §2.3.3.2.

#ifndef SNB_DATAGEN_ACTIVITY_GENERATOR_H_
#define SNB_DATAGEN_ACTIVITY_GENERATOR_H_

#include <vector>

#include "core/schema.h"
#include "datagen/config.h"
#include "datagen/dictionaries.h"
#include "datagen/flashmob.h"
#include "datagen/person_generator.h"

namespace snb::datagen {

/// Raw activity with generator-internal references:
///  - forum.moderator, membership.person, post.creator, comment.creator and
///    like.person hold *person indices*;
///  - membership.forum and post.forum hold *forum indices*;
///  - comment.reply_of_post / like on post hold *post indices*;
///  - comment.reply_of_comment / like on comment hold *comment indices*;
///  - all static references (tags, countries) hold final ids.
/// Final dynamic ids are assigned by the Datagen orchestrator.
struct ActivityData {
  std::vector<core::Forum> forums;
  std::vector<core::ForumMembership> memberships;
  std::vector<core::Post> posts;
  std::vector<core::Comment> comments;
  std::vector<core::Like> likes;
};

ActivityData GenerateActivity(const DatagenConfig& config,
                              const Dictionaries& dicts,
                              const std::vector<PersonDraft>& drafts,
                              const FlashmobSchedule& flashmobs);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_ACTIVITY_GENERATOR_H_

// Person-activity generation (spec Fig. 2.2, step "user activity"): forums
// (personal walls, interest groups, image albums), memberships, posts with
// flashmob/uniform time correlation, comment reply trees, likes, and
// tag assignments enriched through the tag-correlation matrix.
//
// People with more friends are more active (more posts, larger comment
// threads), reproducing the degree–activity correlation of §2.3.3.2.
//
// The generator is split into two stages so that the streaming datagen can
// run it in bounded memory:
//   - GenerateForums materializes the forum phase (forums, memberships and
//     the per-person posting rights) — the compact state every message
//     decision depends on;
//   - GenerateMessages streams posts, comments and likes into a MessageSink
//     without retaining them. Posts draw from per-person RNG streams and
//     each post's comment thread and likes from a per-post stream, so the
//     emission order (posts in creation order per person; a post's thread
//     directly after it) assigns the same generation indices as the
//     original phase-B-then-phase-C formulation — callers see bit-identical
//     entities whether they collect everything (GenerateActivity) or write
//     each message out and drop it (the streaming serializer).

#ifndef SNB_DATAGEN_ACTIVITY_GENERATOR_H_
#define SNB_DATAGEN_ACTIVITY_GENERATOR_H_

#include <utility>
#include <vector>

#include "core/schema.h"
#include "datagen/config.h"
#include "datagen/dictionaries.h"
#include "datagen/flashmob.h"
#include "datagen/person_generator.h"

namespace snb::datagen {

/// Raw activity with generator-internal references:
///  - forum.moderator, membership.person, post.creator, comment.creator and
///    like.person hold *person indices*;
///  - membership.forum and post.forum hold *forum indices*;
///  - comment.reply_of_post / like on post hold *post indices*;
///  - comment.reply_of_comment / like on comment hold *comment indices*;
///  - all static references (tags, countries) hold final ids.
/// Final dynamic ids are assigned by the Datagen orchestrator.
struct ActivityData {
  std::vector<core::Forum> forums;
  std::vector<core::ForumMembership> memberships;
  std::vector<core::Post> posts;
  std::vector<core::Comment> comments;
  std::vector<core::Like> likes;
};

/// Forum-phase output: everything the message stream needs to decide where
/// a person may post and who participates in a thread.
struct ForumPhase {
  std::vector<core::Forum> forums;
  std::vector<core::ForumMembership> memberships;
  /// Per forum: members and their join dates (moderator not included; the
  /// spec allows moderator posts regardless).
  std::vector<std::vector<std::pair<uint32_t, core::DateTime>>> members;
  /// Per person: forums they may post into, with the earliest post time.
  std::vector<std::vector<std::pair<uint32_t, core::DateTime>>> postable;
  /// Per person: their image albums (forum indices).
  std::vector<std::vector<uint32_t>> albums_of;
};

/// Receives the message stream of GenerateMessages in generation order.
/// Indices are generation indices (the id-assignment keys); `parent_date` /
/// `message_date` carry the creation date of the referenced parent message
/// so a streaming consumer can compute update-dependency timestamps without
/// retaining messages.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void OnPost(uint32_t post_index, const core::Post& post) = 0;
  virtual void OnComment(uint32_t comment_index, const core::Comment& comment,
                         core::DateTime parent_date) = 0;
  virtual void OnLike(const core::Like& like, core::DateTime message_date) = 0;
};

/// Phase A: forums + memberships.
ForumPhase GenerateForums(const DatagenConfig& config,
                          const Dictionaries& dicts,
                          const std::vector<PersonDraft>& drafts);

/// Phases B+C fused: posts with their comment threads and likes, streamed
/// into `sink` and never retained here.
void GenerateMessages(const DatagenConfig& config, const Dictionaries& dicts,
                      const std::vector<PersonDraft>& drafts,
                      const FlashmobSchedule& flashmobs,
                      const ForumPhase& forum_phase, MessageSink& sink);

/// Convenience wrapper: runs both stages and collects every entity (the
/// in-memory Generate() path).
ActivityData GenerateActivity(const DatagenConfig& config,
                              const Dictionaries& dicts,
                              const std::vector<PersonDraft>& drafts,
                              const FlashmobSchedule& flashmobs);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_ACTIVITY_GENERATOR_H_

#include "datagen/external_sort.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <queue>

#include "util/check.h"
#include "util/failpoint.h"

namespace snb::datagen {

namespace {

// Per-record spill overhead: 3×8-byte keys + 4-byte payload length.
constexpr size_t kRecordHeaderBytes = 28;
// Approximate in-memory cost of a buffered Record beyond its payload.
constexpr size_t kRecordMemoryBytes = sizeof(uint64_t) * 3 + 32;

bool RecordLess(uint64_t ak1, uint64_t ak2, uint64_t aseq, uint64_t bk1,
                uint64_t bk2, uint64_t bseq) {
  if (ak1 != bk1) return ak1 < bk1;
  if (ak2 != bk2) return ak2 < bk2;
  return aseq < bseq;
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

/// Streaming reader over one completed spill file.
class SpillReader {
 public:
  explicit SpillReader(const std::string& path)
      : file_(std::fopen(path.c_str(), "rb")), path_(path) {}
  ~SpillReader() {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Reads the next record; false at a clean end of file.
  util::StatusOr<bool> Next(uint64_t* k1, uint64_t* k2, uint64_t* seq,
                            std::string* payload) {
    uint8_t header[kRecordHeaderBytes];
    size_t got = std::fread(header, 1, sizeof(header), file_);
    if (got == 0 && std::feof(file_)) return false;
    if (got != sizeof(header)) {
      return util::Status::Corruption("torn spill record in " + path_);
    }
    auto u64 = [&](size_t at) {
      uint64_t v = 0;
      for (int i = 7; i >= 0; --i) v = (v << 8) | header[at + i];
      return v;
    };
    *k1 = u64(0);
    *k2 = u64(8);
    *seq = u64(16);
    uint32_t len = 0;
    for (int i = 3; i >= 0; --i) len = (len << 8) | header[24 + i];
    payload->resize(len);
    if (len != 0 && std::fread(payload->data(), 1, len, file_) != len) {
      return util::Status::Corruption("torn spill payload in " + path_);
    }
    return true;
  }

 private:
  std::FILE* file_;
  std::string path_;
};

}  // namespace

ExternalSorter::ExternalSorter(Options options)
    : options_(std::move(options)) {
  SNB_CHECK(!options_.spill_dir.empty());
  if (options_.memory_budget_bytes < 1u << 16) {
    options_.memory_budget_bytes = 1u << 16;  // floor: one sane run
  }
}

ExternalSorter::~ExternalSorter() {
  std::error_code ec;
  for (const std::string& path : runs_) {
    std::filesystem::remove(path, ec);
  }
}

util::Status ExternalSorter::Add(uint64_t key1, uint64_t key2,
                                 std::string_view payload) {
  SNB_CHECK(!merged_);
  if (broken_) return util::Status::IoError("sorter broken by earlier spill");
  run_.push_back(Record{key1, key2, next_seq_++, std::string(payload)});
  run_bytes_ += kRecordMemoryBytes + payload.size();
  ++added_;
  if (run_bytes_ >= options_.memory_budget_bytes) {
    util::Status s = SpillRun();
    if (!s.ok()) {
      broken_ = true;
      return s;
    }
  }
  return util::Status::Ok();
}

util::Status ExternalSorter::SpillRun() {
  if (run_.empty()) return util::Status::Ok();
  std::sort(run_.begin(), run_.end(), [](const Record& a, const Record& b) {
    return RecordLess(a.key1, a.key2, a.seq, b.key1, b.key2, b.seq);
  });

  std::error_code ec;
  std::filesystem::create_directories(options_.spill_dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create spill dir " +
                                 options_.spill_dir);
  }
  const std::string final_path = options_.spill_dir + "/" + options_.tag +
                                 "." + std::to_string(runs_.size()) + ".spill";
  const std::string tmp_path = final_path + ".tmp";

  SNB_FAILPOINT_STATUS("datagen.spill.open");
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open spill file " + tmp_path);
  }
  std::string buf;
  for (const Record& r : run_) {
    buf.clear();
    PutU64(buf, r.key1);
    PutU64(buf, r.key2);
    PutU64(buf, r.seq);
    uint32_t len = static_cast<uint32_t>(r.payload.size());
    for (int i = 0; i < 4; ++i) buf.push_back(static_cast<char>(len >> (8 * i)));
    buf.append(r.payload);
    SNB_FAILPOINT("datagen.spill.write");
    if (std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
      std::fclose(f);
      std::filesystem::remove(tmp_path, ec);
      return util::Status::IoError("short write to spill file " + tmp_path);
    }
  }
  SNB_FAILPOINT_STATUS("datagen.spill.finish");
  if (std::fclose(f) != 0) {
    std::filesystem::remove(tmp_path, ec);
    return util::Status::IoError("fclose failed for spill file " + tmp_path);
  }
  // The rename publishes the run: a crash before this point leaves only a
  // .tmp that RemoveOrphanSpills reclaims.
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return util::Status::IoError("cannot publish spill file " + final_path);
  }
  runs_.push_back(final_path);
  ++spilled_runs_;
  run_.clear();
  run_bytes_ = 0;
  return util::Status::Ok();
}

util::Status ExternalSorter::Merge(
    const std::function<void(uint64_t, uint64_t, std::string_view)>& emit) {
  SNB_CHECK(!merged_);
  merged_ = true;
  if (broken_) return util::Status::IoError("sorter broken by earlier spill");

  // The final (possibly only) run stays in memory and merges alongside the
  // spilled ones.
  std::sort(run_.begin(), run_.end(), [](const Record& a, const Record& b) {
    return RecordLess(a.key1, a.key2, a.seq, b.key1, b.key2, b.seq);
  });
  if (runs_.empty()) {
    for (const Record& r : run_) emit(r.key1, r.key2, r.payload);
    run_.clear();
    run_bytes_ = 0;
    return util::Status::Ok();
  }

  struct Cursor {
    uint64_t k1 = 0, k2 = 0, seq = 0;
    std::string payload;
    size_t source;  // index into readers, or SIZE_MAX for the in-memory run
  };
  auto cursor_greater = [](const Cursor& a, const Cursor& b) {
    return RecordLess(b.k1, b.k2, b.seq, a.k1, a.k2, a.seq);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cursor_greater)>
      heap(cursor_greater);

  std::vector<std::unique_ptr<SpillReader>> readers;
  readers.reserve(runs_.size());
  for (const std::string& path : runs_) {
    readers.push_back(std::make_unique<SpillReader>(path));
    if (!readers.back()->ok()) {
      return util::Status::IoError("cannot reopen spill file " + path);
    }
    Cursor c;
    c.source = readers.size() - 1;
    auto more = readers.back()->Next(&c.k1, &c.k2, &c.seq, &c.payload);
    SNB_RETURN_IF_ERROR(more.status());
    if (more.value()) heap.push(std::move(c));
  }
  size_t mem_pos = 0;
  auto push_mem = [&]() {
    if (mem_pos >= run_.size()) return;
    const Record& r = run_[mem_pos++];
    heap.push(Cursor{r.key1, r.key2, r.seq, r.payload, SIZE_MAX});
  };
  push_mem();

  while (!heap.empty()) {
    Cursor top = heap.top();
    heap.pop();
    emit(top.k1, top.k2, top.payload);
    if (top.source == SIZE_MAX) {
      push_mem();
    } else {
      Cursor c;
      c.source = top.source;
      auto more = readers[top.source]->Next(&c.k1, &c.k2, &c.seq, &c.payload);
      SNB_RETURN_IF_ERROR(more.status());
      if (more.value()) heap.push(std::move(c));
    }
  }
  run_.clear();
  run_bytes_ = 0;
  // A completed merge owns its runs: close the readers, then reclaim the
  // files (the destructor is only the failure-path fallback).
  readers.clear();
  std::error_code rm_ec;
  for (const std::string& path : runs_) {
    std::filesystem::remove(path, rm_ec);
  }
  runs_.clear();
  return util::Status::Ok();
}

util::Status ExternalSorter::RemoveOrphanSpills(const std::string& dir,
                                                size_t* removed) {
  if (removed != nullptr) *removed = 0;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return util::Status::Ok();
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const bool spill = name.size() > 6 && name.ends_with(".spill");
    const bool torn = name.size() > 10 && name.ends_with(".spill.tmp");
    if (!spill && !torn) continue;
    std::error_code rm_ec;
    if (std::filesystem::remove(entry.path(), rm_ec) && removed != nullptr) {
      ++*removed;
    }
  }
  if (ec) return util::Status::IoError("cannot scan spill dir " + dir);
  return util::Status::Ok();
}

}  // namespace snb::datagen

#include "datagen/activity_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"

namespace snb::datagen {

namespace {

constexpr uint64_t kStreamForums = 501;
constexpr uint64_t kStreamPosts = 502;
constexpr uint64_t kStreamThreads = 503;

/// Message length sampler matching the BI 1 length categories:
/// short [0,40), one-liner [40,80), tweet [80,160), long [160, 2000].
int32_t SampleContentLength(util::Rng& rng) {
  double u = rng.NextDouble();
  if (u < 0.35) return static_cast<int32_t>(rng.UniformInt(10, 39));
  if (u < 0.65) return static_cast<int32_t>(rng.UniformInt(40, 79));
  if (u < 0.90) return static_cast<int32_t>(rng.UniformInt(80, 159));
  // Long messages: mostly moderate, rare essays up to the 2000-char cap.
  if (rng.Bernoulli(0.9)) {
    return static_cast<int32_t>(rng.UniformInt(160, 500));
  }
  return static_cast<int32_t>(rng.UniformInt(500, 2000));
}

/// Samples a message country: usually home, occasionally travelling.
core::Id MessageCountry(util::Rng& rng, const Dictionaries& dicts,
                        size_t home_country) {
  size_t c = home_country;
  if (rng.Bernoulli(0.1)) c = dicts.SampleCountry(rng);
  return dicts.places()[dicts.CountryPlace(c)].id;
}

/// Collects the full message stream into an ActivityData (the in-memory
/// Generate() path).
class VectorSink final : public MessageSink {
 public:
  explicit VectorSink(ActivityData& out) : out_(out) {}

  void OnPost(uint32_t post_index, const core::Post& post) override {
    SNB_DCHECK(post_index == out_.posts.size());
    out_.posts.push_back(post);
  }
  void OnComment(uint32_t comment_index, const core::Comment& comment,
                 core::DateTime /*parent_date*/) override {
    SNB_DCHECK(comment_index == out_.comments.size());
    out_.comments.push_back(comment);
  }
  void OnLike(const core::Like& like,
              core::DateTime /*message_date*/) override {
    out_.likes.push_back(like);
  }

 private:
  ActivityData& out_;
};

}  // namespace

ForumPhase GenerateForums(const DatagenConfig& config,
                          const Dictionaries& dicts,
                          const std::vector<PersonDraft>& drafts) {
  ForumPhase out;
  const size_t n = drafts.size();
  const core::DateTime sim_end = config.SimulationEnd();
  const double mean_degree =
      std::max(1.0, MeanDegreeForNetworkSize(config.num_persons));

  // Tag → interested persons index, used to fill interest groups.
  std::vector<std::vector<uint32_t>> interested(dicts.tags().size());
  for (size_t p = 0; p < n; ++p) {
    for (core::Id tag : drafts[p].record.interests) {
      interested[static_cast<size_t>(tag)].push_back(
          static_cast<uint32_t>(p));
    }
  }

  out.postable.resize(n);
  out.albums_of.resize(n);

  auto add_member = [&](uint32_t forum, uint32_t person,
                        core::DateTime join) {
    out.memberships.push_back(
        {static_cast<core::Id>(forum), static_cast<core::Id>(person), join});
    out.members[forum].emplace_back(person, join);
    out.postable[person].emplace_back(forum, join);
  };

  for (size_t p = 0; p < n; ++p) {
    util::Rng rng(config.seed, kStreamForums, p);
    const PersonDraft& d = drafts[p];
    const core::Person& person = d.record;

    // Personal wall.
    {
      core::Forum wall;
      wall.id = static_cast<core::Id>(out.forums.size());
      wall.title = "Wall of " + person.first_name + " " + person.last_name;
      wall.creation_date =
          person.creation_date + rng.UniformInt(0, core::kMillisPerHour);
      wall.moderator = static_cast<core::Id>(p);
      wall.kind = core::ForumKind::kWall;
      size_t num_tags =
          std::min<size_t>(person.interests.size(),
                           static_cast<size_t>(rng.UniformInt(1, 2)));
      for (size_t t = 0; t < num_tags; ++t) {
        wall.tags.push_back(person.interests[t]);
      }
      uint32_t wall_idx = static_cast<uint32_t>(out.forums.size());
      out.forums.push_back(std::move(wall));
      out.members.emplace_back();
      // The owner can always post (as moderator).
      out.postable[p].emplace_back(wall_idx,
                                   out.forums[wall_idx].creation_date);
      // Friends join the wall when the friendship forms.
      for (size_t f = 0; f < d.friends.size(); ++f) {
        core::DateTime join = std::max(d.friend_dates[f],
                                       out.forums[wall_idx].creation_date);
        add_member(wall_idx, d.friends[f], join);
      }
    }

    // Image albums (0–3).
    int num_albums = static_cast<int>(rng.UniformInt(0, 3));
    for (int a = 0; a < num_albums; ++a) {
      core::Forum album;
      album.id = static_cast<core::Id>(out.forums.size());
      album.title = "Album " + std::to_string(a + 1) + " of " +
                    person.first_name + " " + person.last_name;
      core::DateTime lower = person.creation_date;
      album.creation_date = lower + rng.UniformInt(0, sim_end - 1 - lower);
      album.moderator = static_cast<core::Id>(p);
      album.kind = core::ForumKind::kAlbum;
      album.tags.push_back(
          person.interests[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(person.interests.size()) - 1))]);
      uint32_t album_idx = static_cast<uint32_t>(out.forums.size());
      out.forums.push_back(std::move(album));
      out.members.emplace_back();
      out.albums_of[p].push_back(album_idx);
    }

    // Interest groups: activity scales with connectivity.
    double group_prob =
        std::min(0.9, 0.05 + 0.15 * static_cast<double>(d.friends.size()) /
                                 mean_degree);
    if (rng.Bernoulli(group_prob)) {
      size_t topic = d.main_interest;
      if (rng.Bernoulli(0.4)) {
        auto extra = dicts.SampleCorrelatedTags(rng, topic, 1);
        if (!extra.empty()) topic = extra[0];
      }
      core::Forum group;
      group.id = static_cast<core::Id>(out.forums.size());
      group.title = "Group for " + dicts.tags()[topic].name;
      core::DateTime lower = person.creation_date;
      group.creation_date = lower + rng.UniformInt(0, sim_end - 1 - lower);
      group.moderator = static_cast<core::Id>(p);
      group.kind = core::ForumKind::kGroup;
      group.tags.push_back(dicts.tags()[topic].id);
      for (size_t extra :
           dicts.SampleCorrelatedTags(rng, topic,
                                      static_cast<int>(rng.UniformInt(0, 2)))) {
        group.tags.push_back(dicts.tags()[extra].id);
      }
      uint32_t group_idx = static_cast<uint32_t>(out.forums.size());
      core::DateTime group_created = group.creation_date;
      out.forums.push_back(std::move(group));
      out.members.emplace_back();
      out.postable[p].emplace_back(group_idx, group_created);

      std::unordered_set<uint32_t> joined{static_cast<uint32_t>(p)};
      auto try_join = [&](uint32_t member, core::DateTime earliest) {
        if (joined.contains(member)) return;
        core::DateTime lo =
            std::max({earliest, group_created,
                      drafts[member].record.creation_date});
        if (lo >= sim_end - 1) return;
        double u = rng.NextDouble();
        core::DateTime join =
            lo + static_cast<core::DateTime>(
                     std::pow(u, 1.5) * static_cast<double>(sim_end - 1 - lo));
        joined.insert(member);
        add_member(group_idx, member, join);
      };
      // Friends of the moderator join eagerly…
      for (size_t f = 0; f < d.friends.size(); ++f) {
        if (rng.Bernoulli(0.6)) {
          try_join(d.friends[f], d.friend_dates[f]);
        }
      }
      // …plus strangers who share the group's interest.
      const std::vector<uint32_t>& pool = interested[topic];
      if (!pool.empty()) {
        size_t invites = std::min<size_t>(
            pool.size(),
            static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(2.0 * mean_degree))));
        for (size_t k = 0; k < invites; ++k) {
          uint32_t member = pool[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
          try_join(member, drafts[member].record.creation_date);
        }
      }
    }
  }
  return out;
}

void GenerateMessages(const DatagenConfig& config, const Dictionaries& dicts,
                      const std::vector<PersonDraft>& drafts,
                      const FlashmobSchedule& flashmobs,
                      const ForumPhase& fp, MessageSink& sink) {
  const size_t n = drafts.size();
  const core::DateTime sim_end = config.SimulationEnd();
  const double comment_mean = 2.6 * config.activity_scale;
  const double post_like_mean = 2.2 * config.activity_scale;
  const double comment_like_mean = 0.6 * config.activity_scale;

  // Generation indices. Posts draw their thread RNG from their own index, so
  // running the thread directly after its post assigns the same indices as
  // the all-posts-then-all-threads order did.
  uint32_t post_counter = 0;
  uint32_t comment_counter = 0;

  for (size_t p = 0; p < n; ++p) {
    util::Rng rng(config.seed, kStreamPosts, p);
    const PersonDraft& d = drafts[p];
    const core::Person& person = d.record;
    const std::string language =
        person.speaks[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(person.speaks.size()) - 1))];

    int budget = std::max(
        1, static_cast<int>(std::lround(config.activity_scale * 3.2 *
                                        static_cast<double>(
                                            d.friends.size()))));
    for (int b = 0; b < budget; ++b) {
      core::Post post;
      post.creator = static_cast<core::Id>(p);
      post.browser_used = person.browser_used;

      double kind_u = rng.NextDouble();
      bool image_post = false;
      uint32_t forum_idx;
      core::DateTime earliest;
      if (kind_u < 0.15 && !fp.albums_of[p].empty()) {
        forum_idx = fp.albums_of[p][static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(fp.albums_of[p].size()) - 1))];
        earliest = fp.forums[forum_idx].creation_date;
        image_post = true;
      } else {
        const auto& options = fp.postable[p];
        // options[0] is always the own wall; later entries are groups and
        // walls of friends joined.
        size_t pick = 0;
        if (options.size() > 1 && rng.Bernoulli(0.5)) {
          pick = static_cast<size_t>(rng.UniformInt(
              1, static_cast<int64_t>(options.size()) - 1));
        }
        forum_idx = options[pick].first;
        earliest = options[pick].second;
      }
      post.forum = static_cast<core::Id>(forum_idx);
      const core::Forum& forum = fp.forums[forum_idx];

      // Topic: forum tag most of the time, enriched via the tag matrix.
      size_t topic;
      if (!forum.tags.empty() && rng.Bernoulli(0.7)) {
        topic = static_cast<size_t>(forum.tags[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(forum.tags.size()) - 1))]);
      } else {
        topic = d.main_interest;
      }

      // Time: flashmob or uniform background.
      earliest = std::max(earliest, person.creation_date);
      if (earliest >= sim_end - 1) continue;
      bool is_flashmob =
          !image_post && rng.Bernoulli(config.flashmob_post_fraction);
      if (is_flashmob) {
        const FlashmobEvent& ev = flashmobs.SampleEvent(rng);
        post.creation_date = flashmobs.SamplePostTime(rng, ev, earliest);
        topic = ev.tag;
      } else {
        post.creation_date =
            earliest + rng.UniformInt(0, sim_end - 1 - earliest);
      }

      post.tags.push_back(dicts.tags()[topic].id);
      for (size_t extra : dicts.SampleCorrelatedTags(
               rng, topic, static_cast<int>(rng.UniformInt(0, 2)))) {
        post.tags.push_back(dicts.tags()[extra].id);
      }

      post.country = MessageCountry(rng, dicts, d.country);
      post.location_ip = person.location_ip;
      if (image_post) {
        post.image_file = "photo" + std::to_string(forum_idx) + "_" +
                          std::to_string(b) + ".jpg";
        post.length = 0;
      } else {
        post.language = language;
        post.length = SampleContentLength(rng);
        post.content = dicts.MakeText(rng, topic, post.length);
      }
      const uint32_t post_idx = post_counter++;
      sink.OnPost(post_idx, post);

      // --- The post's comment thread and likes (its own RNG stream) ------
      util::Rng trng(config.seed, kStreamThreads, post_idx);
      const uint32_t creator = static_cast<uint32_t>(p);

      // Participant pool: the post creator's friends plus forum members.
      std::vector<uint32_t> pool;
      pool.reserve(d.friends.size() + fp.members[forum_idx].size());
      for (uint32_t f : d.friends) pool.push_back(f);
      for (const auto& [member, join] : fp.members[forum_idx]) {
        if (member != creator) pool.push_back(member);
      }

      // Comments (none under image albums — photo streams get likes only).
      bool is_album = forum.kind == core::ForumKind::kAlbum;
      if (!pool.empty() && !is_album && comment_mean > 0) {
        int num_comments = static_cast<int>(
            trng.Geometric(1.0 / (1.0 + comment_mean)));
        core::DateTime clock = post.creation_date;
        std::vector<uint32_t> thread;  // comment gen indices of this thread
        std::vector<core::DateTime> thread_dates;
        std::vector<uint32_t> thread_creators;
        for (int c = 0; c < num_comments; ++c) {
          double u = trng.NextDouble();
          if (u <= 0.0) u = 0x1.0p-53;
          clock += static_cast<core::DateTime>(
              -std::log(u) * 6.0 * core::kMillisPerHour) + 1;
          if (clock >= sim_end) break;
          uint32_t commenter = pool[static_cast<size_t>(
              trng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
          if (drafts[commenter].record.creation_date > clock) continue;

          core::Comment comment;
          comment.creator = static_cast<core::Id>(commenter);
          comment.creation_date = clock;
          core::DateTime parent_date;
          if (thread.empty() || trng.Bernoulli(0.55)) {
            comment.reply_of_post = static_cast<core::Id>(post_idx);
            parent_date = post.creation_date;
          } else {
            size_t parent = static_cast<size_t>(trng.UniformInt(
                0, static_cast<int64_t>(thread.size()) - 1));
            comment.reply_of_comment = static_cast<core::Id>(thread[parent]);
            parent_date = thread_dates[parent];
          }
          comment.browser_used = drafts[commenter].record.browser_used;
          comment.location_ip = drafts[commenter].record.location_ip;
          comment.country =
              MessageCountry(trng, dicts, drafts[commenter].country);
          comment.length = SampleContentLength(trng);
          size_t topic2 = post.tags.empty()
                              ? drafts[commenter].main_interest
                              : static_cast<size_t>(post.tags[0]);
          comment.content = dicts.MakeText(trng, topic2, comment.length);
          if (trng.Bernoulli(0.3)) {
            comment.tags.push_back(dicts.tags()[topic2].id);
            for (size_t extra : dicts.SampleCorrelatedTags(
                     trng, topic2, trng.Bernoulli(0.3) ? 1 : 0)) {
              comment.tags.push_back(dicts.tags()[extra].id);
            }
          }
          const uint32_t comment_idx = comment_counter++;
          thread.push_back(comment_idx);
          thread_dates.push_back(comment.creation_date);
          thread_creators.push_back(commenter);
          sink.OnComment(comment_idx, comment, parent_date);
        }

        // Likes on this thread's comments.
        for (size_t t = 0; t < thread.size(); ++t) {
          int num_likes = static_cast<int>(
              trng.Geometric(1.0 / (1.0 + comment_like_mean)));
          if (num_likes <= 0) continue;
          std::unordered_set<uint32_t> likers;
          for (int l = 0; l < num_likes && l < 32; ++l) {
            uint32_t liker = pool[static_cast<size_t>(
                trng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
            if (liker == thread_creators[t] || likers.contains(liker)) {
              continue;
            }
            core::DateTime when =
                std::max(thread_dates[t],
                         drafts[liker].record.creation_date) +
                trng.UniformInt(1, 2 * core::kMillisPerDay);
            if (when >= sim_end) continue;
            likers.insert(liker);
            sink.OnLike({static_cast<core::Id>(liker),
                         static_cast<core::Id>(thread[t]), false, when},
                        thread_dates[t]);
          }
        }
      }

      // Likes on the post itself.
      if (!pool.empty() && post_like_mean > 0) {
        int num_likes = static_cast<int>(
            trng.Geometric(1.0 / (1.0 + post_like_mean)));
        std::unordered_set<uint32_t> likers;
        for (int l = 0; l < num_likes && l < 64; ++l) {
          uint32_t liker = pool[static_cast<size_t>(
              trng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
          if (liker == creator || likers.contains(liker)) continue;
          core::DateTime when =
              std::max(post.creation_date,
                       drafts[liker].record.creation_date) +
              trng.UniformInt(1, 2 * core::kMillisPerDay);
          if (when >= sim_end) continue;
          likers.insert(liker);
          sink.OnLike({static_cast<core::Id>(liker),
                       static_cast<core::Id>(post_idx), true, when},
                      post.creation_date);
        }
      }
    }
  }
}

ActivityData GenerateActivity(const DatagenConfig& config,
                              const Dictionaries& dicts,
                              const std::vector<PersonDraft>& drafts,
                              const FlashmobSchedule& flashmobs) {
  ActivityData out;
  ForumPhase fp = GenerateForums(config, dicts, drafts);
  VectorSink sink(out);
  GenerateMessages(config, dicts, drafts, flashmobs, fp, sink);
  out.forums = std::move(fp.forums);
  out.memberships = std::move(fp.memberships);
  return out;
}

}  // namespace snb::datagen

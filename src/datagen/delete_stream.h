// Delete-stream derivation (DEL 1–8, arXiv 2307.04820).
//
// The classic generator is insert-only; deep deletes are derived *from* a
// generated network after the fact: a deterministic sample of its persons,
// forums, messages, and edges becomes a timestamp-ordered DEL event stream.
// Cascade closure is the storage layer's job — the stream only names the
// roots (deleting a person implies its forums/messages/likes downstream).

#ifndef SNB_DATAGEN_DELETE_STREAM_H_
#define SNB_DATAGEN_DELETE_STREAM_H_

#include <vector>

#include "core/schema.h"
#include "datagen/datagen.h"

namespace snb::datagen {

/// Knobs for DeriveDeleteStream. Fractions are per-entity sampling
/// probabilities; `days` spreads the delete timestamps over that many
/// simulated days after the network's newest creation date, so every delete
/// lands strictly after the insert it targets.
struct DeleteStreamOptions {
  uint64_t seed = 42;
  int32_t days = 7;
  double person_fraction = 0.02;      // DEL 1 (full cascade roots)
  double forum_fraction = 0.02;       // DEL 4
  double post_fraction = 0.01;        // DEL 6
  double comment_fraction = 0.01;     // DEL 7
  double like_fraction = 0.01;        // DEL 2 / DEL 3
  double membership_fraction = 0.01;  // DEL 5
  double knows_fraction = 0.01;       // DEL 8
};

/// Derives a deterministic DEL 1–8 event stream from `net`. Pure function of
/// (net, options); events come back sorted by (timestamp, kind) like
/// ReadUpdateStreams output. May name the same entity twice through
/// different ops (e.g. a sampled post whose creator is also sampled) —
/// cascades are idempotent, so overlap is legal.
std::vector<UpdateEvent> DeriveDeleteStream(const core::SocialNetwork& net,
                                            const DeleteStreamOptions& options);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_DELETE_STREAM_H_

// Datagen orchestration (spec Fig. 2.2): dictionaries → persons → three
// knows passes → activity → id assignment → bulk/update-stream split.
//
// Output ids are assigned in creation-date order per entity type, giving the
// time-correlated identifier locality the benchmark's choke point CP-3.2
// (dimensional clustering) expects.

#ifndef SNB_DATAGEN_DATAGEN_H_
#define SNB_DATAGEN_DATAGEN_H_

#include <variant>
#include <vector>

#include "core/schema.h"
#include "datagen/config.h"

namespace snb::datagen {

/// Insert operations of the update streams (spec Table 2.18).
/// IU 1 add person, IU 2 add like to post, IU 3 add like to comment,
/// IU 4 add forum, IU 5 add forum membership, IU 6 add post,
/// IU 7 add comment, IU 8 add friendship.
///
/// Delete operations mirror the Interactive v2 deep deletes (DEL 1–8,
/// arXiv 2307.04820) in the same opId order: DEL 1 remove person,
/// DEL 2/3 remove like, DEL 4 remove forum, DEL 5 remove membership,
/// DEL 6 remove post, DEL 7 remove comment, DEL 8 remove friendship.
/// Their stream opIds continue the insert numbering (9–16) so one dialect
/// carries both families.
enum class UpdateKind : uint8_t {
  kAddPerson = 1,
  kAddLikePost = 2,
  kAddLikeComment = 3,
  kAddForum = 4,
  kAddMembership = 5,
  kAddPost = 6,
  kAddComment = 7,
  kAddKnows = 8,
  kDelPerson = 9,
  kDelLikePost = 10,
  kDelLikeComment = 11,
  kDelForum = 12,
  kDelMembership = 13,
  kDelPost = 14,
  kDelComment = 15,
  kDelKnows = 16,
};

/// True for the DEL 1–8 family (stream opIds 9–16).
inline bool IsDeleteKind(UpdateKind kind) {
  return static_cast<uint8_t>(kind) >= static_cast<uint8_t>(
                                           UpdateKind::kDelPerson);
}

/// Payload of a delete operation: the target's external id(s). Vertex
/// deletes (DEL 1/4/6/7) use `a` alone; edge deletes name both endpoints —
/// DEL 2/3 (person, message), DEL 5 (person, forum), DEL 8 (person, person).
struct Delete {
  core::Id a = core::kNoId;
  core::Id b = core::kNoId;
};

struct UpdateEvent {
  UpdateKind kind;
  core::DateTime timestamp;    // when the event happened in the simulation
  core::DateTime dependency;   // latest creation among referenced entities
  std::variant<core::Person, core::Like, core::Forum, core::ForumMembership,
               core::Post, core::Comment, core::Knows, Delete>
      payload;
};

/// A full Datagen run: the bulk-load dataset (~90 % of simulated time) plus
/// the update streams (remaining ~10 %), both with final ids.
struct GeneratedData {
  core::SocialNetwork network;
  std::vector<UpdateEvent> updates;

  /// The actual bulk/update boundary: the (1 - update_fraction) quantile of
  /// all dynamic-event timestamps (spec §2.3.4: update streams are ~10 % of
  /// the generated *dataset*, so the cut is by event volume, not by
  /// simulated time).
  core::DateTime split_time = 0;

  /// Convenience totals over bulk + updates (for Table 2.12 statistics).
  size_t total_persons = 0;
  size_t total_forums = 0;
  size_t total_posts = 0;
  size_t total_comments = 0;
  size_t total_knows = 0;
  size_t total_likes = 0;
  size_t total_memberships = 0;
};

/// Runs the whole generator. Deterministic in `config` alone.
GeneratedData Generate(const DatagenConfig& config);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_DATAGEN_H_
